(* Fault tolerance in action: the airline workload rides out a network
   partition that splits the cluster in half and then heals.

   While the cut is up, cross-partition messages are buffered; on heal
   they flush in FIFO order and the protocol simply continues — the
   periodic audit observes a single token and compatible modes the whole
   way through, at the price of latency during the outage. A second run
   with the same seed reproduces the identical event trace (digest).

   Run with:  dune exec examples/partition.exe *)

let base_config () =
  let cfg = Core.Experiment.default_config ~driver:Core.Experiment.Hierarchical ~nodes:16 in
  {
    cfg with
    Core.Experiment.seed = 7L;
    workload = { cfg.Core.Experiment.workload with Core.Airline.ops_per_node = 30 };
  }

let run ?chaos () =
  let cfg = { (base_config ()) with Core.Experiment.chaos } in
  let trace = Core.Trace.create ~capacity:64 ~enabled:true () in
  let result = Core.Experiment.run ~trace cfg in
  (result, Core.Trace.digest trace)

let () =
  let healthy, _ = run () in
  let horizon = Core.Experiment.horizon_estimate (base_config ()) in
  let plan =
    match Core.Fault_plan.named ~nodes:16 ~horizon "heal-partition" with
    | Some p -> p
    | None -> assert false
  in
  Printf.printf "Fault plan:\n%s\n" (Core.Fault_plan.to_string plan);
  let partitioned, digest = run ~chaos:(Core.Experiment.chaos plan) () in
  let report = Option.get partitioned.Core.Experiment.chaos_report in
  Printf.printf "Healthy run:     mean latency %7.1f ms, p95 %7.1f ms\n"
    healthy.Core.Experiment.mean_latency_ms healthy.Core.Experiment.p95_latency_ms;
  Printf.printf "Partitioned run: mean latency %7.1f ms, p95 %7.1f ms\n"
    partitioned.Core.Experiment.mean_latency_ms partitioned.Core.Experiment.p95_latency_ms;
  Printf.printf "Audit: %d samples, %d violations — every operation still completed.\n"
    report.Core.Experiment.audit_samples
    (List.length report.Core.Experiment.audit_violations);
  List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) report.Core.Experiment.audit_violations;
  let rerun, digest' = run ~chaos:(Core.Experiment.chaos plan) () in
  ignore rerun;
  Printf.printf "Same seed, same plan: digest %Lx %s %Lx — deterministic replay.\n" digest
    (if Int64.equal digest digest' then "=" else "<>")
    digest'
