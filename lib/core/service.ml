module Mode = Dcs_modes.Mode
module Dist = Dcs_sim.Dist
module Cell = Dcs_shard.Cell
module Hlock_cluster = Dcs_runtime.Hlock_cluster
module Node = Dcs_hlock.Node

  type ticket = {
    node : int;
    lock : int;
    mutable seq : int;
    mutable state : [ `Held | `Released | `Abandoned ];
  }

  (* The service is a naming facade over one shard execution cell
     ({!Dcs_shard.Cell}): the cell owns the clock, the network, the
     protocol cluster and the outstanding-request watchdog; the service
     keeps the name table and the ticket discipline. The sharded router
     pools the same cells across lock sets — a single-service program is
     the one-cell, one-reset special case. *)
  type t = { cell : Cell.t; names : string list; index : (string, int) Hashtbl.t }

  let create ?config ?latency ?(seed = 42L) ?(oracle = false) ~nodes ~locks () =
    if locks = [] then invalid_arg "Service.create: need at least one lock name";
    let index = Hashtbl.create 16 in
    List.iteri
      (fun i name ->
        if Hashtbl.mem index name then
          invalid_arg (Printf.sprintf "Service.create: duplicate lock name %S" name);
        Hashtbl.replace index name i)
      locks;
    let cell = Cell.create ?latency ~nodes () in
    Cell.reset ?config ~oracle cell ~seed ~locks:(List.length locks);
    { cell; names = locks; index }

  let lock_names t = t.names

  let lock_id t name =
    match Hashtbl.find_opt t.index name with Some i -> i | None -> raise Not_found

  let lock ?priority t ~node ~name ~mode k =
    let lock = lock_id t name in
    (* The grant may fire synchronously inside [request], before we know
       the ticket number: bind it through the ticket record. *)
    let ticket = { node; lock; seq = -1; state = `Held } in
    let granted_early = ref false in
    let seq =
      Cell.request ?priority t.cell ~node ~lock ~mode ~on_granted:(fun () ->
          if ticket.seq >= 0 then k ticket else granted_early := true)
    in
    ticket.seq <- seq;
    if !granted_early then k ticket

  let try_lock t ~node ~name ~mode ~timeout k =
    let lock = lock_id t name in
    let answered = ref false in
    let ticket = { node; lock; seq = -1; state = `Held } in
    let granted_early = ref false in
    let on_grant () =
      if !answered then begin
        (* The caller already gave up: release the late grant. *)
        ticket.state <- `Abandoned;
        Cell.release t.cell ~node ~lock ~seq:ticket.seq
      end
      else begin
        answered := true;
        k (Some ticket)
      end
    in
    let seq =
      Cell.request t.cell ~node ~lock ~mode ~on_granted:(fun () ->
          if ticket.seq >= 0 then on_grant () else granted_early := true)
    in
    ticket.seq <- seq;
    if !granted_early then on_grant ();
    Cell.schedule t.cell ~after:timeout (fun () ->
        if not !answered then begin
          answered := true;
          k None
        end)

  let unlock t ticket =
    (match ticket.state with
    | `Held -> ()
    | `Released | `Abandoned -> invalid_arg "Service.unlock: ticket already released");
    ticket.state <- `Released;
    Cell.release t.cell ~node:ticket.node ~lock:ticket.lock ~seq:ticket.seq

  let change_mode t ticket ~mode k =
    if not (Mode.equal mode Mode.W) then
      invalid_arg "Service.change_mode: only the U->W upgrade is supported";
    (match ticket.state with
    | `Held -> ()
    | `Released | `Abandoned -> invalid_arg "Service.change_mode: ticket not held");
    Cell.upgrade t.cell ~node:ticket.node ~lock:ticket.lock ~seq:ticket.seq
      ~on_upgraded:(fun () -> k ())

  let now t = Cell.now t.cell

  let schedule t ~after f = Cell.schedule t.cell ~after f

  let run t =
    match Cell.drain t.cell with
    | Ok () -> ()
    | Error `Undrained -> failwith "Service.run: simulation did not drain"
    | Error (`Stuck n) -> failwith (Printf.sprintf "Service.run: %d requests never granted" n)

  let message_counters t = Cell.message_counters t.cell

  let mean_latency t = Cell.mean_latency t.cell

  (* {1 Enumeration and stats} *)

  type lock_stats = {
    name : string;
    held : (int * Mode.t) list;
    waiting : int;
    cached_nodes : int;
    token_node : int;
    messages : Dcs_proto.Counters.t;
  }

  let lock_count t = List.length t.names

  let stats_of t ~lock ~name =
    let cluster = Cell.cluster t.cell in
    let nodes = Cell.nodes t.cell in
    let held = ref [] and waiting = ref 0 and cached_nodes = ref 0 and token_node = ref (-1) in
    for node = nodes - 1 downto 0 do
      let n = Hlock_cluster.node cluster ~lock ~node in
      List.iter (fun (_seq, mode) -> held := (node, mode) :: !held) (Node.held n);
      waiting := !waiting + List.length (Node.queue n) + (if Node.pending n = None then 0 else 1);
      if Node.cached n <> [] then incr cached_nodes;
      if Node.is_token n then token_node := node
    done;
    {
      name;
      held = !held;
      waiting = !waiting;
      cached_nodes = !cached_nodes;
      token_node = !token_node;
      messages = Hlock_cluster.lock_counters cluster ~lock;
    }

  let stats t ~name = stats_of t ~lock:(lock_id t name) ~name

  let all_stats t = List.mapi (fun lock name -> stats_of t ~lock ~name) t.names
