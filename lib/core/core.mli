(** Public facade of the distributed concurrency services library.

    [Core] re-exports every subsystem and adds {!Service}, a CORBA-style
    lock-set API (the OMG Concurrency Service surface the paper targets:
    [lock] / [try_lock] / [unlock] / [change_mode]) over a simulated
    cluster, so applications can be written against named hierarchical
    locks without touching protocol internals.

    {2 Quickstart}

    {[
      let svc = Core.Service.create ~nodes:8 ~locks:[ "table"; "row:1" ] () in
      Core.Service.lock svc ~node:3 ~name:"table" ~mode:Core.Mode.IR
        (fun table ->
          Core.Service.lock svc ~node:3 ~name:"row:1" ~mode:Core.Mode.R
            (fun row ->
              (* ... critical section: schedule work, then release ... *)
              Core.Service.unlock svc row;
              Core.Service.unlock svc table));
      Core.Service.run svc
    ]} *)

(** {1 Re-exports} *)

module Mode = Dcs_modes.Mode
module Mode_set = Dcs_modes.Mode_set
module Compat = Dcs_modes.Compat
module Rng = Dcs_sim.Rng
module Dist = Dcs_sim.Dist
module Engine = Dcs_sim.Engine
module Trace = Dcs_sim.Trace
module Topology = Dcs_sim.Topology
module Msg_class = Dcs_proto.Msg_class
module Counters = Dcs_proto.Counters
module Hlock = Dcs_hlock.Node
module Hlock_msg = Dcs_hlock.Msg
module Naimi = Dcs_naimi.Naimi
module Fault_plan = Dcs_fault.Plan
module Reliable = Dcs_fault.Reliable
module Audit = Dcs_fault.Audit
module Net = Dcs_runtime.Net
module Hlock_cluster = Dcs_runtime.Hlock_cluster
module Naimi_cluster = Dcs_runtime.Naimi_cluster
module Experiment = Dcs_runtime.Experiment
module Airline = Dcs_workload.Airline
module Obs_event = Dcs_obs.Event
module Recorder = Dcs_obs.Recorder
module Jsonl = Dcs_obs.Jsonl
module Fuzz = Dcs_check.Fuzz
module Fuzz_script = Dcs_check.Script
module Fuzz_oracle = Dcs_check.Oracle
module Fuzz_corpus = Dcs_check.Corpus
module Fuzz_shrink = Dcs_check.Shrink
module Summary = Dcs_stats.Summary
module Sample = Dcs_stats.Sample
module Fit = Dcs_stats.Fit
module Histogram = Dcs_stats.Histogram
module Stats_table = Dcs_stats.Table

(** {1 The concurrency service} *)

module Service = Service

(** Multi-granularity lock trees; see {!Hierarchy}. *)
module Hierarchy = Hierarchy
