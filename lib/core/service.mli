(** The CORBA-style lock-set service over a simulated cluster; see
    {!Core.Service} for the overview. *)

module Mode = Dcs_modes.Mode
module Dist = Dcs_sim.Dist

  type t

  (** A granted lock, to be passed to {!unlock} or {!change_mode}. *)
  type ticket

  (** [create ~nodes ~locks ()] builds a simulated cluster of [nodes]
      application nodes sharing the named lock objects. [latency] is the
      point-to-point message delay model (default: uniform around 150 ms,
      the paper's LAN), [seed] makes runs reproducible, [config] selects
      protocol ablations, and [oracle] enables the runtime safety
      checker. Duplicate names are rejected. *)
  val create :
    ?config:Dcs_hlock.Node.config ->
    ?latency:Dist.t ->
    ?seed:int64 ->
    ?oracle:bool ->
    nodes:int ->
    locks:string list ->
    unit ->
    t

  (** Lock names supplied at creation. *)
  val lock_names : t -> string list

  (** [lock t ~node ~name ~mode k] requests [name] in [mode] on behalf of
      [node]; [k ticket] runs when granted (possibly immediately).
      [priority] (default 0, non-negative) is served first from contended
      queues. Raises [Not_found] for unknown names. *)
  val lock :
    ?priority:int -> t -> node:int -> name:string -> mode:Mode.t -> (ticket -> unit) -> unit

  (** [try_lock] is [lock] that gives up if the grant has not arrived
      within [timeout] simulated ms: [k (Some ticket)] on grant, [k None]
      on timeout (a late grant is then released automatically). *)
  val try_lock :
    t -> node:int -> name:string -> mode:Mode.t -> timeout:float -> (ticket option -> unit) -> unit

  (** Release a granted lock. A ticket can be released once; reuse raises
      [Invalid_argument]. *)
  val unlock : t -> ticket -> unit

  (** [change_mode t ticket ~mode k]: the OMG change-mode operation,
      supported for the U→W upgrade (Rule 7); [k ()] runs when the ticket
      is held in [W]. Raises [Invalid_argument] for other conversions. *)
  val change_mode : t -> ticket -> mode:Mode.t -> (unit -> unit) -> unit

  (** {2 Simulation control} *)

  (** Current simulated time (ms). *)
  val now : t -> float

  (** Schedule work on the simulated clock (e.g. the body of a critical
      section). *)
  val schedule : t -> after:float -> (unit -> unit) -> unit

  (** Run until the event queue drains; raises [Failure] if requests remain
      unserved (liveness) or the oracle finds damage. *)
  val run : t -> unit

  (** Messages sent so far, by class. *)
  val message_counters : t -> Dcs_proto.Counters.t

  (** Mean point-to-point latency of the configured model. *)
  val mean_latency : t -> float

  (** {2 Enumeration and stats}

      Administrative introspection over the service's lock sets, the
      per-set view the sharded router aggregates across shards. *)

  (** A point-in-time view of one lock object. *)
  type lock_stats = {
    name : string;
    held : (int * Mode.t) list;  (** (node, mode) per granted ticket *)
    waiting : int;  (** requests queued or pending across nodes *)
    cached_nodes : int;  (** nodes holding a non-empty copyset *)
    token_node : int;  (** current token holder *)
    messages : Dcs_proto.Counters.t;  (** this lock's protocol traffic *)
  }

  val lock_count : t -> int

  (** Stats for one named lock. Raises [Not_found] for unknown names. *)
  val stats : t -> name:string -> lock_stats

  (** Stats for every lock, in creation order. *)
  val all_stats : t -> lock_stats list
