(** The Naimi–Trehel–Arnold token-based mutual-exclusion protocol [14]
    (J. Parallel Distrib. Comput. 34(1), 1996) — the baseline the paper
    compares against.

    Exclusive, single-mode locking over a dynamic logical tree:

    - each node keeps a probable-owner pointer ([father]) and a [next]
      pointer forming a distributed FIFO queue of waiting requesters;
    - a request travels the [father] chain to the current root; every node
      on the path re-points [father] to the requester (path reversal /
      path compression), giving the O(log n) average message complexity;
    - the root either sends the token immediately (idle) or records the
      requester in [next] (the requester will receive the token on
      release).

    The engine is transport-agnostic exactly like {!Dcs_hlock.Node}. *)

open Dcs_proto

type msg =
  | Request of { requester : Node_id.t; seq : int }
      (** A request travelling the probable-owner chain. [(requester, seq)]
          is the request's span id ({!Dcs_obs.Event}): [seq] is assigned by
          the requester and unique per node, so events recorded at relaying
          nodes stitch into one timeline. *)
  | Token
      (** The token: permission to enter the critical section. The receiver
          knows which of its requests is being served (it has at most one
          outstanding), so the token carries no span id. *)

(** Figure-7 bucket of a message ([Request] or [Token_transfer]). *)
val class_of : msg -> Msg_class.t

val pp_msg : Format.formatter -> msg -> unit

type t

(** [create ~id ~is_root ~father ~send ~on_acquired ()] builds a node.
    Exactly one node has [is_root = true] (it starts with the token and
    [father = None]); all others point (directly or transitively) to it.
    [on_acquired ()] fires when this node's pending request obtains the
    token (possibly synchronously inside {!request}).

    [obs] receives request-lifecycle events exactly as in
    {!Dcs_hlock.Node.create}; Naimi requests are recorded as mode-[W]
    spans (the lock is exclusive). *)
val create :
  ?obs:(Dcs_obs.Event.scope -> Dcs_obs.Event.kind -> unit) ->
  id:Node_id.t ->
  is_root:bool ->
  father:Node_id.t option ->
  send:(dst:Node_id.t -> msg -> unit) ->
  on_acquired:(unit -> unit) ->
  unit ->
  t

(** Ask for the critical section. Raises [Invalid_argument] if this node is
    already requesting or inside its critical section (the protocol is not
    reentrant). *)
val request : t -> unit

(** Leave the critical section, passing the token to [next] if some node is
    waiting. Raises [Invalid_argument] if not inside the critical
    section. *)
val release : t -> unit

(** Deliver one protocol message. *)
val handle_msg : t -> src:Node_id.t -> msg -> unit

(** {1 Introspection} *)

val id : t -> Node_id.t

(** Physically holds the token right now. *)
val has_token : t -> bool

(** Inside the critical section. *)
val in_cs : t -> bool

(** Waiting for the token. *)
val requesting : t -> bool

val father : t -> Node_id.t option
val next : t -> Node_id.t option
val pp_state : Format.formatter -> t -> unit
