open Dcs_proto

type msg =
  | Request of { requester : Node_id.t; seq : int }
  | Token

let class_of = function
  | Request _ -> Msg_class.Request
  | Token -> Msg_class.Token_transfer

let pp_msg ppf = function
  | Request { requester; seq } -> Format.fprintf ppf "Request n%d#%d" requester seq
  | Token -> Format.pp_print_string ppf "Token"

type t = {
  id : Node_id.t;
  send : dst:Node_id.t -> msg -> unit;
  on_acquired : unit -> unit;
  obs : (Dcs_obs.Event.scope -> Dcs_obs.Event.kind -> unit) option;
  mutable father : Node_id.t option;
  mutable next : Node_id.t option;
  mutable token_present : bool;
  mutable requesting : bool;
  mutable in_cs : bool;
  mutable next_seq : int;
  mutable active : int;  (* seq of our outstanding/held request; -1 if none *)
}

let create ?obs ~id ~is_root ~father ~send ~on_acquired () =
  if is_root && father <> None then invalid_arg "Naimi.create: root with a father";
  if (not is_root) && father = None then invalid_arg "Naimi.create: non-root without father";
  { id; send; on_acquired; obs; father; next = None; token_present = is_root;
    requesting = false; in_cs = false; next_seq = 0; active = -1 }

let id t = t.id
let has_token t = t.token_present
let in_cs t = t.in_cs
let requesting t = t.requesting
let father t = t.father
let next t = t.next

let pp_state ppf t =
  Format.fprintf ppf "n%d%s father=%s next=%s%s%s" t.id
    (if t.token_present then "*" else "")
    (match t.father with None -> "_" | Some f -> string_of_int f)
    (match t.next with None -> "_" | Some n -> string_of_int n)
    (if t.requesting then " requesting" else "")
    (if t.in_cs then " in-cs" else "")

(* Naimi locks are exclusive: telemetry records them as mode W. *)
let observe t ~requester ~seq kind =
  match t.obs with None -> () | Some f -> f (Dcs_obs.Event.Span { requester; seq }) kind

let request t =
  if t.requesting || t.in_cs then invalid_arg "Naimi.request: already requesting or in CS";
  t.requesting <- true;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  t.active <- seq;
  observe t ~requester:t.id ~seq (Dcs_obs.Event.Requested { mode = Dcs_modes.Mode.W; priority = 0 });
  match t.father with
  | None ->
      (* We are the root holding an idle token: enter immediately. *)
      assert t.token_present;
      t.in_cs <- true;
      observe t ~requester:t.id ~seq
        (Dcs_obs.Event.Granted_local { mode = Dcs_modes.Mode.W; hops = 0 });
      t.on_acquired ()
  | Some f ->
      t.send ~dst:f (Request { requester = t.id; seq });
      t.father <- None

let release t =
  if not t.in_cs then invalid_arg "Naimi.release: not in CS";
  t.in_cs <- false;
  t.requesting <- false;
  observe t ~requester:t.id ~seq:t.active (Dcs_obs.Event.Released { mode = Dcs_modes.Mode.W });
  t.active <- -1;
  match t.next with
  | Some n ->
      t.token_present <- false;
      t.next <- None;
      t.send ~dst:n Token
  | None -> ()

let handle_msg t ~src:_ msg =
  match msg with
  | Token ->
      assert t.requesting;
      t.token_present <- true;
      t.in_cs <- true;
      observe t ~requester:t.id ~seq:t.active
        (Dcs_obs.Event.Granted_token { mode = Dcs_modes.Mode.W; hops = 0 });
      t.on_acquired ()
  | Request { requester; seq } -> (
      match t.father with
      | Some f ->
          observe t ~requester ~seq (Dcs_obs.Event.Forwarded { dst = f });
          t.send ~dst:f (Request { requester; seq });
          t.father <- Some requester
      | None ->
          if t.requesting || t.in_cs then begin
            (* We are the queue tail: the requester follows us. *)
            assert (t.next = None);
            observe t ~requester ~seq Dcs_obs.Event.Queued;
            t.next <- Some requester
          end
          else begin
            assert t.token_present;
            t.token_present <- false;
            t.send ~dst:requester Token
          end;
          t.father <- Some requester)
