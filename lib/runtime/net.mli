(** Simulated point-to-point network over the discrete-event engine.

    Models the paper's testbed: a full-duplex switched LAN where disjoint
    point-to-point transfers proceed in parallel. Each message is delayed by
    a draw from the latency distribution (paper mean: 150 ms), scaled by an
    optional {!Dcs_sim.Topology} factor for the pair (racks, star, custom). Delivery is
    FIFO per directed node pair — the property a TCP connection gives the
    real transport, and one the protocol's release/grant epoch logic
    assumes; cross-pair ordering is arbitrary.

    An injectable {!Dcs_proto.Link.fault} hook (see {!set_fault}) lets
    {!Dcs_fault.Plan} degrade the network deterministically: per-message
    latency scaling, message drop and duplication, and holding messages in
    a partition buffer that {!flush_held} later re-dispatches in send
    order. Faults never reorder a live link: the per-pair FIFO floor is
    applied after any fault-added delay. *)

type t

val create :
  engine:Dcs_sim.Engine.t ->
  latency:Dcs_sim.Dist.t ->
  ?topology:Dcs_sim.Topology.t ->
  rng:Dcs_sim.Rng.t ->
  ?trace:Dcs_sim.Trace.t ->
  unit ->
  t

(** Rewind to the just-created state — counters zeroed, per-link FIFO
    floors forgotten, fault hook cleared, held/drop/duplicate accounting
    reset — so a pooled net can carry many independent runs. The caller
    owns the engine, rng and trace and resets/reseeds them alongside. *)
val reset : t -> unit

(** [send t ~src ~dst ~cls ~describe deliver] counts one message of class
    [cls], and schedules [deliver ()] after a latency draw (kept FIFO with
    earlier [src]→[dst] messages). [describe] is forced only when tracing. *)
val send :
  t ->
  src:Dcs_proto.Node_id.t ->
  dst:Dcs_proto.Node_id.t ->
  cls:Dcs_proto.Msg_class.t ->
  describe:(unit -> string) ->
  (unit -> unit) ->
  unit

(** Message counts by class since creation. *)
val counters : t -> Dcs_proto.Counters.t

(** Current simulation time (the engine's clock) — lets embeddings
    timestamp telemetry without holding the engine. *)
val now : t -> float

(** Messages sent but not yet delivered (including held ones). *)
val in_flight : t -> int

(** {1 Fault injection} *)

(** Install the fault hook consulted on every subsequent send. *)
val set_fault : t -> Dcs_proto.Link.fault -> unit

(** Remove the fault hook (back to perfectly reliable delivery). *)
val clear_fault : t -> unit

(** Re-dispatch every held message, in original send order, through the
    current fault hook (messages whose links are still severed are held
    again, behind newer traffic on the same buffer). Call at heal /
    resume points — {!Dcs_fault.Plan} schedules this automatically. *)
val flush_held : t -> unit

(** Messages currently parked in the partition buffer. *)
val held_count : t -> int

(** Messages discarded by the fault hook since creation. *)
val dropped : t -> int

(** Extra copies injected by the fault hook since creation. *)
val duplicated : t -> int

(** Mean of the latency distribution (for latency-factor normalization). *)
val mean_latency : t -> float
