module Naimi = Dcs_naimi.Naimi

type lock_state = {
  mutable engines : Naimi.t array;
  acquired_cbs : (int, unit -> unit) Hashtbl.t;  (* node -> callback *)
  acquired_fired : (int, unit) Hashtbl.t;
  mutable tokens_in_flight : int;
}

type t = {
  net : Net.t;
  n : int;
  l : int;
  locks_arr : lock_state array;
  oracle : bool;
}

let nodes t = t.n
let locks t = t.l
let node t ~lock ~node = t.locks_arr.(lock).engines.(node)

let safety_violations_lock ls ~lock =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let in_cs = ref [] and holders = ref 0 in
  Array.iter
    (fun e ->
      if Naimi.in_cs e then in_cs := Naimi.id e :: !in_cs;
      if Naimi.has_token e then incr holders)
    ls.engines;
  if List.length !in_cs > 1 then
    add "lock %d: mutual exclusion violated, in CS: [%s]" lock
      (String.concat "," (List.map string_of_int !in_cs));
  let tokens = !holders + ls.tokens_in_flight in
  if tokens <> 1 then add "lock %d: token multiplicity %d" lock tokens;
  List.rev !violations

let safety_violations t ~lock = safety_violations_lock t.locks_arr.(lock) ~lock

let quiescent_violations t =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  for lock = 0 to t.l - 1 do
    let ls = t.locks_arr.(lock) in
    (match safety_violations t ~lock with [] -> () | vs -> List.iter (add "%s") vs);
    Array.iter
      (fun e ->
        if Naimi.requesting e then add "lock %d: n%d still requesting" lock (Naimi.id e);
        if Naimi.in_cs e then add "lock %d: n%d still in CS" lock (Naimi.id e);
        if Naimi.next e <> None then add "lock %d: n%d has a dangling next" lock (Naimi.id e))
      ls.engines
  done;
  List.rev !violations

let create ?(oracle = false) ?obs ~net ~nodes:n ~locks:l () =
  if n < 1 then invalid_arg "Naimi_cluster.create: need at least one node";
  let obs = match obs with Some r when Dcs_obs.Recorder.enabled r -> Some r | _ -> None in
  let t =
    {
      net;
      n;
      l;
      locks_arr =
        Array.init l (fun _ ->
            {
              engines = [||];
              acquired_cbs = Hashtbl.create 32;
              acquired_fired = Hashtbl.create 32;
              tokens_in_flight = 0;
            });
      oracle;
    }
  in
  for lock = 0 to l - 1 do
    let ls = t.locks_arr.(lock) in
    let engines =
      Array.init n (fun id ->
          let send ~dst msg =
            (match obs with
            | None -> ()
            | Some r ->
                Dcs_obs.Recorder.message r ~cls:(Naimi.class_of msg)
                  ~bytes:
                    (String.length
                       (Dcs_wire.Codec.encode
                          { Dcs_wire.Codec.src = id; lock; payload = Dcs_wire.Codec.Naimi msg })));
            (match msg with
            | Naimi.Token -> ls.tokens_in_flight <- ls.tokens_in_flight + 1
            | Naimi.Request _ -> ());
            Net.send net ~src:id ~dst ~cls:(Naimi.class_of msg)
              ~describe:(fun () -> Format.asprintf "lock%d %a" lock Naimi.pp_msg msg)
              (fun () ->
                (match msg with
                | Naimi.Token -> ls.tokens_in_flight <- ls.tokens_in_flight - 1
                | Naimi.Request _ -> ());
                Naimi.handle_msg ls.engines.(dst) ~src:id msg;
                if t.oracle then
                  match safety_violations_lock ls ~lock with
                  | [] -> ()
                  | vs -> failwith (String.concat "; " vs))
          in
          let on_acquired () =
            match Hashtbl.find_opt ls.acquired_cbs id with
            | Some cb ->
                Hashtbl.remove ls.acquired_cbs id;
                cb ()
            | None -> Hashtbl.replace ls.acquired_fired id ()
          in
          let node_obs =
            match obs with
            | None -> None
            | Some r ->
                Some
                  (fun scope kind ->
                    Dcs_obs.Recorder.record r ~time:(Net.now net) ~lock ~node:id scope kind)
          in
          Naimi.create ?obs:node_obs ~id ~is_root:(id = 0)
            ~father:(if id = 0 then None else Some 0)
            ~send ~on_acquired ())
    in
    ls.engines <- engines
  done;
  t

let request t ~node ~lock ~on_acquired =
  let ls = t.locks_arr.(lock) in
  Naimi.request ls.engines.(node);
  if Hashtbl.mem ls.acquired_fired node then begin
    Hashtbl.remove ls.acquired_fired node;
    on_acquired ()
  end
  else Hashtbl.replace ls.acquired_cbs node on_acquired

let release t ~node ~lock =
  let ls = t.locks_arr.(lock) in
  Naimi.release ls.engines.(node)
