(** End-to-end drivers for the paper's evaluation (§4).

    One experiment = one cluster size × one driver × the airline workload.
    The three drivers mirror the paper's comparison:

    - [Hierarchical]: the paper's protocol; entry accesses take the table
      lock in an intention mode plus the entry lock, table accesses take
      the single table lock in R/U/W.
    - [Naimi_same_work]: the baseline emulating the same functionality —
      entry accesses take the entry's (exclusive) lock; table accesses
      take {e every} entry lock one by one in ascending order (the paper's
      deadlock-avoiding total order).
    - [Naimi_pure]: the baseline in its original single-lock setting
      (every operation contends for one global exclusive lock); provides
      the protocol-overhead floor, not the same functionality. *)

open Dcs_modes
open Dcs_proto

type driver =
  | Hierarchical
  | Naimi_same_work
  | Naimi_pure

val driver_to_string : driver -> string

(** Chaos-mode settings: a fault plan plus how to survive and observe it.
    Only supported by the [Hierarchical] driver. *)
type chaos = {
  plan : Dcs_fault.Plan.t;
  reliable : bool;
      (** interpose {!Dcs_fault.Reliable} between protocol and net;
          mandatory when the plan drops or duplicates messages *)
  audit_period : float;  (** ms between {!Dcs_fault.Audit} samples; 0 = off *)
  rto : float;  (** shim retransmission timeout (ms) *)
}

type config = {
  nodes : int;
  driver : driver;
  workload : Dcs_workload.Airline.config;
  latency : Dcs_sim.Dist.t;  (** network latency; paper mean 150 ms *)
  topology : Dcs_sim.Topology.t;  (** per-pair latency scaling (default uniform) *)
  seed : int64;
  protocol : Dcs_hlock.Node.config;  (** hierarchical-protocol ablations *)
  oracle : bool;  (** re-check safety invariants after every message *)
  chaos : chaos option;  (** degraded-network mode (default [None]) *)
}

(** Paper-parameter configuration for a driver and cluster size. *)
val default_config : driver:driver -> nodes:int -> config

(** [chaos plan] with sane defaults: the shim exactly when the plan needs
    it ({!Dcs_fault.Plan.needs_shim}), audits every 2 s of simulated time,
    600 ms initial retransmission timeout. *)
val chaos :
  ?reliable:bool -> ?audit_period:float -> ?rto:float -> Dcs_fault.Plan.t -> chaos

(** Estimated busy-phase length of a run (ms) — for placing the windows of
    named fault plans ({!Dcs_fault.Plan.named}). An estimate: fault
    windows landing a factor of ~2 early or late still overlap live
    traffic. *)
val horizon_estimate : config -> float

(** What the fault machinery observed during a chaos run. *)
type chaos_report = {
  audit_samples : int;
  audit_violations : string list;
      (** sampled invariant violations plus end-of-run quiescence failures
          (cluster book-keeping, undrained shim channels, in-flight
          messages); empty = clean run *)
  reliable_stats : Dcs_fault.Reliable.stats option;  (** [None] = no shim *)
  shim_overhead : float;  (** (acks + retransmits) / protocol messages *)
  net_dropped : int;  (** messages the fault layer discarded *)
  net_duplicated : int;  (** extra copies the fault layer injected *)
}

type result = {
  cfg : config;
  ops : int;  (** completed application operations *)
  lock_requests : int;  (** individual lock acquisitions issued *)
  messages : (Msg_class.t * int) list;  (** breakdown (Figure 7) *)
  total_messages : int;
  msgs_per_op : float;  (** Figure 5's y-axis (per application request) *)
  msgs_per_lock_request : float;
  mean_latency_ms : float;  (** mean time from issue to all locks held *)
  latency_factor : float;  (** Figure 6's y-axis: mean latency / mean
                               point-to-point latency *)
  p95_latency_ms : float;
  per_class : (Mode.t * int * float) list;
      (** per request class: count and mean acquisition latency (ms) *)
  latencies : Dcs_stats.Sample.t;  (** raw per-operation acquisition latencies *)
  sim_duration_ms : float;
  events : int;
  chaos_report : chaos_report option;  (** [Some] iff [cfg.chaos] was set *)
}

(** Run to completion (all nodes finish their ops and the event queue
    drains). Raises [Failure] on liveness failure (operations that never
    complete), on oracle violations, and on residual structural damage
    detected at quiescence when [oracle] is set. Audit findings of a chaos
    run are {e reported} (in [chaos_report]), not raised, so harnesses can
    print them. [trace] (disabled by default) records every network event;
    its digest is the reproducibility check for chaos runs.

    [recorder], when given and enabled, captures full request-lifecycle
    telemetry ({!Dcs_obs}): span events and per-class wire bytes from the
    cluster, plus gauges (total queue depth, copyset size, frozen nodes,
    in-flight messages) sampled on the engine tick hook at roughly one
    sample per mean network latency. Recording is observation-only — it
    draws no randomness and schedules no events — so results and trace
    digests are identical with or without it. *)
val run : ?trace:Dcs_sim.Trace.t -> ?recorder:Dcs_obs.Recorder.t -> config -> result

(** One row of the experiment summary table. *)
val result_row : result -> string list

val row_header : string list
