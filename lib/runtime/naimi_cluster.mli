(** A simulated cluster running the Naimi–Trehel–Arnold baseline over a set
    of exclusive lock objects (the paper's comparison protocol). *)

type t

(** [obs] as in {!Hlock_cluster.create}: request-lifecycle events plus
    per-class message counts and wire byte sizes. *)
val create : ?oracle:bool -> ?obs:Dcs_obs.Recorder.t -> net:Net.t -> nodes:int -> locks:int -> unit -> t

val nodes : t -> int
val locks : t -> int
val node : t -> lock:int -> node:int -> Dcs_naimi.Naimi.t

(** Request the critical section for [lock]; [on_acquired] fires exactly
    once (possibly synchronously). The protocol allows one outstanding
    request per (node, lock). *)
val request : t -> node:int -> lock:int -> on_acquired:(unit -> unit) -> unit

(** Leave the critical section for [lock]. *)
val release : t -> node:int -> lock:int -> unit

(** Mutual exclusion and token-uniqueness violations visible right now. *)
val safety_violations : t -> lock:int -> string list

(** Structural invariants at full quiescence. *)
val quiescent_violations : t -> string list
