(** A simulated cluster of nodes sharing a set of hierarchical lock objects
    under the paper's protocol.

    Each lock object is an independent instance of the protocol (its own
    logical tree and token) over the same node population; messages travel
    through a shared {!Net}. Lock 0's token starts at node 0, as do all
    others — matching the paper's setup where the tree is initially a star
    rooted at the token node.

    An optional runtime oracle re-validates safety invariants after every
    delivered message (single token per lock, pairwise-compatible held
    modes); it is O(nodes) per message, so enable it in tests, not in
    large benchmark sweeps. *)

open Dcs_modes

type t

(** [transport] (default [Net.send net]) carries every protocol message;
    chaos experiments interpose {!Dcs_fault.Reliable.send} here so the
    engines keep their reliable-FIFO delivery contract over lossy links.

    [obs], when given and enabled, receives every node's request-lifecycle
    events (timestamped with the net's clock and tagged with lock and node
    ids) plus per-class message counts and {!Dcs_wire.Codec} byte sizes. A
    disabled recorder is equivalent to omitting it.

    [restore], when given, rebuilds every node from a prior
    {!export_lock} instead of the initial star (indexed
    [restore.(lock).(node)]; dimensions must match [locks] × [nodes]) —
    the receiving half of a shard handoff. *)
val create :
  ?config:Dcs_hlock.Node.config ->
  ?oracle:bool ->
  ?transport:Dcs_proto.Link.send ->
  ?obs:Dcs_obs.Recorder.t ->
  ?restore:Dcs_hlock.Node.snapshot array array ->
  net:Net.t ->
  nodes:int ->
  locks:int ->
  unit ->
  t

val nodes : t -> int
val locks : t -> int

(** Direct access to a node engine (tests and inspection). *)
val node : t -> lock:int -> node:int -> Dcs_hlock.Node.t

(** [request t ~node ~lock ~mode ~on_granted] issues a request and returns
    its ticket. [on_granted] fires exactly once — possibly before this
    function returns (message-free local acquisition). [priority]
    (default 0) orders queue service; see {!Dcs_hlock.Node.request}. *)
val request :
  ?priority:int -> t -> node:int -> lock:int -> mode:Mode.t -> on_granted:(unit -> unit) -> int

(** Release a granted ticket. *)
val release : t -> node:int -> lock:int -> seq:int -> unit

(** Upgrade a ticket held in [U] to [W] (Rule 7); [on_upgraded] fires
    exactly once, possibly synchronously. *)
val upgrade : t -> node:int -> lock:int -> seq:int -> on_upgraded:(unit -> unit) -> unit

(** Messages sent so far on behalf of one lock object, by class. *)
val lock_counters : t -> lock:int -> Dcs_proto.Counters.t

(** The sending half of a shard handoff: one lock object's whole per-node
    population as {!Dcs_hlock.Node.snapshot}s, ready to travel in a
    handoff message and be rebuilt with [create ~restore]. Requires
    quiescence for that lock — no token in flight, no waiting client
    callbacks, and {!Dcs_hlock.Node.export}'s per-node checks — and raises
    [Invalid_argument] otherwise. *)
val export_lock : t -> lock:int -> Dcs_hlock.Node.snapshot array

(** Per-lock global state snapshot for {!Dcs_fault.Audit} sampling: token
    holders and in-flight transfers, all held and cached modes, queue and
    pending totals. O(nodes × locks); meant for periodic sampling, not
    per-message use. *)
val audit_views : t -> Dcs_fault.Audit.lock_view list

(** Run the custody watchdog ({!Dcs_hlock.Node.kick}) on every node of
    every lock. Schedule this periodically (a few network round-trips
    apart) from the driver. *)
val kick_all : t -> unit

(** Record cluster-wide gauges into the recorder at the current simulation
    time: total local queue depth ([queue_depth]), total copyset records
    ([copyset_size]) and nodes with a non-empty frozen set
    ([frozen_nodes]). O(nodes × locks); call from a rate-limited engine
    tick hook, not per event. *)
val sample_gauges : t -> Dcs_obs.Recorder.t -> unit

(** {1 Invariant oracles} *)

(** Safety violations visible right now for one lock: token multiplicity
    (holders plus in-flight transfers must be 1) and mutual compatibility
    of all held modes. Empty list = no violation. *)
val safety_violations : t -> lock:int -> string list

(** Structural invariants that must hold once the simulation has drained
    and all clients released: unique token, empty queues, no pending
    requests, no held modes, and a mutually consistent copyset (each child
    record matches the child's owned mode and accounting pointer; retained
    cached modes pairwise compatible cluster-wide). Routing pointers are
    deliberately {e not} required to form a tree — stale cycles are benign
    because relayed requests carry their path and divert around them. *)
val quiescent_violations : t -> string list

(** Raise [Failure] with a readable report if any {!safety_violations}
    exist on any lock. *)
val assert_safe : t -> unit
