open Dcs_proto

type held = {
  h_src : Node_id.t;
  h_dst : Node_id.t;
  h_cls : Msg_class.t;
  h_describe : unit -> string;
  h_deliver : unit -> unit;
}

type t = {
  engine : Dcs_sim.Engine.t;
  latency : Dcs_sim.Dist.t;
  topology : Dcs_sim.Topology.t;
  rng : Dcs_sim.Rng.t;
  trace : Dcs_sim.Trace.t;
  counters : Counters.t;
  last_delivery : (Node_id.t * Node_id.t, float) Hashtbl.t;
  mutable in_flight : int;
  mutable fault : Link.fault option;
  held : held Queue.t;
  mutable dropped : int;
  mutable duplicated : int;
}

let create ~engine ~latency ?(topology = Dcs_sim.Topology.uniform) ~rng
    ?(trace = Dcs_sim.Trace.create ~enabled:false ()) () =
  {
    engine;
    latency;
    topology;
    rng;
    trace;
    counters = Counters.create ();
    last_delivery = Hashtbl.create 64;
    in_flight = 0;
    fault = None;
    held = Queue.create ();
    dropped = 0;
    duplicated = 0;
  }

let set_fault t fault = t.fault <- Some fault

let clear_fault t = t.fault <- None

(* FIFO per directed pair: never schedule a delivery before an earlier one
   on the same link (TCP semantics). The fault layer may scale or extend a
   draw, but the floor still applies, so faults never reorder a link. *)
let delivery_time t ~src ~dst ~delay_factor ~extra_delay =
  let now = Dcs_sim.Engine.now t.engine in
  let scale = Dcs_sim.Topology.factor t.topology ~src ~dst in
  let draw = scale *. Dcs_sim.Dist.sample t.latency t.rng in
  let naive = now +. (Float.max 1.0 delay_factor *. draw) +. Float.max 0.0 extra_delay in
  let floor =
    match Hashtbl.find_opt t.last_delivery (src, dst) with
    | None -> naive
    | Some last -> Float.max naive (last +. 1e-6)
  in
  Hashtbl.replace t.last_delivery (src, dst) floor;
  floor

let deliver_copy t ~src ~dst ~describe ~delay_factor ~extra_delay deliver =
  t.in_flight <- t.in_flight + 1;
  let time = delivery_time t ~src ~dst ~delay_factor ~extra_delay in
  Dcs_sim.Trace.record t.trace ~time:(Dcs_sim.Engine.now t.engine) (fun () ->
      Printf.sprintf "send n%d->n%d %s (eta %.3f)" src dst (describe ()) time);
  Dcs_sim.Engine.schedule_at t.engine ~time (fun () ->
      t.in_flight <- t.in_flight - 1;
      Dcs_sim.Trace.record t.trace ~time (fun () ->
          Printf.sprintf "recv n%d->n%d %s" src dst (describe ()));
      deliver ())

(* Consult the fault hook (if any) and act on its decision. Also the
   re-entry point for flushed held messages, hence no counting here. *)
let dispatch t ~src ~dst ~cls ~describe deliver =
  let decision =
    match t.fault with
    | None -> Link.pass
    | Some f -> f ~now:(Dcs_sim.Engine.now t.engine) ~src ~dst ~cls
  in
  match decision with
  | Link.Hold ->
      Dcs_sim.Trace.record t.trace ~time:(Dcs_sim.Engine.now t.engine) (fun () ->
          Printf.sprintf "hold n%d->n%d %s" src dst (describe ()));
      Queue.add
        { h_src = src; h_dst = dst; h_cls = cls; h_describe = describe; h_deliver = deliver }
        t.held
  | Link.Deliver { copies; delay_factor; extra_delay } ->
      if copies <= 0 then begin
        t.dropped <- t.dropped + 1;
        Dcs_sim.Trace.record t.trace ~time:(Dcs_sim.Engine.now t.engine) (fun () ->
            Printf.sprintf "drop n%d->n%d %s" src dst (describe ()))
      end
      else begin
        if copies > 1 then t.duplicated <- t.duplicated + (copies - 1);
        for _ = 1 to copies do
          deliver_copy t ~src ~dst ~describe ~delay_factor ~extra_delay deliver
        done
      end

let send t ~src ~dst ~cls ~describe deliver =
  Counters.incr t.counters cls;
  dispatch t ~src ~dst ~cls ~describe deliver

let flush_held t =
  (* Re-dispatch in send order; messages whose links are still faulted are
     re-held behind any newly held traffic, preserving FIFO per link. *)
  let pending = Queue.create () in
  Queue.transfer t.held pending;
  Queue.iter
    (fun h ->
      dispatch t ~src:h.h_src ~dst:h.h_dst ~cls:h.h_cls ~describe:h.h_describe h.h_deliver)
    pending

let counters t = t.counters

let in_flight t = t.in_flight + Queue.length t.held

let held_count t = Queue.length t.held

let dropped t = t.dropped

let duplicated t = t.duplicated

let mean_latency t = Dcs_sim.Dist.mean t.latency
