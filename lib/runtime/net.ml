open Dcs_proto

(* Single-field float record: per-link last-delivery floor updated in
   place (a [float ref] would re-box the float on every store, and tuple
   keys would allocate on every send; links are keyed by a packed int
   instead). *)
type floor_cell = { mutable floor : float }

type held = {
  h_src : Node_id.t;
  h_dst : Node_id.t;
  h_cls : Msg_class.t;
  h_describe : unit -> string;
  h_deliver : unit -> unit;
}

type t = {
  engine : Dcs_sim.Engine.t;
  latency : Dcs_sim.Dist.t;
  topology : Dcs_sim.Topology.t;
  rng : Dcs_sim.Rng.t;
  trace : Dcs_sim.Trace.t;
  counters : Counters.t;
  last_delivery : (int, floor_cell) Hashtbl.t;
  mutable in_flight : int;
  mutable fault : Link.fault option;
  held : held Queue.t;
  mutable dropped : int;
  mutable duplicated : int;
}

let create ~engine ~latency ?(topology = Dcs_sim.Topology.uniform) ~rng
    ?(trace = Dcs_sim.Trace.create ~enabled:false ()) () =
  {
    engine;
    latency;
    topology;
    rng;
    trace;
    counters = Counters.create ();
    last_delivery = Hashtbl.create 64;
    in_flight = 0;
    fault = None;
    held = Queue.create ();
    dropped = 0;
    duplicated = 0;
  }

let reset t =
  (* Back to the just-created state so one net can carry many independent
     runs (the engine, rng and trace are owned by the caller, which resets
     or reseeds them alongside). Per-link delivery floors must go: they
     are absolute times from the previous run's clock. *)
  Hashtbl.reset t.last_delivery;
  Counters.reset t.counters;
  t.in_flight <- 0;
  t.fault <- None;
  Queue.clear t.held;
  t.dropped <- 0;
  t.duplicated <- 0

let set_fault t fault = t.fault <- Some fault

let clear_fault t = t.fault <- None

(* FIFO per directed pair: never schedule a delivery before an earlier one
   on the same link (TCP semantics). The fault layer may scale or extend a
   draw, but the floor still applies, so faults never reorder a link. *)

(* Packed (src, dst) link key; node ids are small non-negative ints. *)
let link_key ~src ~dst = (src lsl 20) lor dst

let delivery_time t ~src ~dst ~delay_factor ~extra_delay =
  let now = Dcs_sim.Engine.now t.engine in
  let scale = Dcs_sim.Topology.factor t.topology ~src ~dst in
  let draw = scale *. Dcs_sim.Dist.sample t.latency t.rng in
  let naive = now +. (Float.max 1.0 delay_factor *. draw) +. Float.max 0.0 extra_delay in
  let key = link_key ~src ~dst in
  match Hashtbl.find t.last_delivery key with
  | cell ->
      let floor = Float.max naive (cell.floor +. 1e-6) in
      cell.floor <- floor;
      floor
  | exception Not_found ->
      Hashtbl.add t.last_delivery key { floor = naive };
      naive

(* The [record] thunks are only constructed when tracing is on: building
   the closure itself would otherwise cost an allocation per message even
   on untraced runs. *)
let deliver_copy t ~src ~dst ~describe ~delay_factor ~extra_delay deliver =
  t.in_flight <- t.in_flight + 1;
  let time = delivery_time t ~src ~dst ~delay_factor ~extra_delay in
  let traced = Dcs_sim.Trace.enabled t.trace in
  if traced then
    Dcs_sim.Trace.record t.trace ~time:(Dcs_sim.Engine.now t.engine) (fun () ->
        Printf.sprintf "send n%d->n%d %s (eta %.3f)" src dst (describe ()) time);
  Dcs_sim.Engine.schedule_at t.engine ~time (fun () ->
      t.in_flight <- t.in_flight - 1;
      if traced then
        Dcs_sim.Trace.record t.trace ~time (fun () ->
            Printf.sprintf "recv n%d->n%d %s" src dst (describe ()));
      deliver ())

(* Consult the fault hook (if any) and act on its decision. Also the
   re-entry point for flushed held messages, hence no counting here. *)
let dispatch t ~src ~dst ~cls ~describe deliver =
  let decision =
    match t.fault with
    | None -> Link.pass
    | Some f -> f ~now:(Dcs_sim.Engine.now t.engine) ~src ~dst ~cls
  in
  match decision with
  | Link.Hold ->
      if Dcs_sim.Trace.enabled t.trace then
        Dcs_sim.Trace.record t.trace ~time:(Dcs_sim.Engine.now t.engine) (fun () ->
            Printf.sprintf "hold n%d->n%d %s" src dst (describe ()));
      Queue.add
        { h_src = src; h_dst = dst; h_cls = cls; h_describe = describe; h_deliver = deliver }
        t.held
  | Link.Deliver { copies; delay_factor; extra_delay } ->
      if copies <= 0 then begin
        t.dropped <- t.dropped + 1;
        if Dcs_sim.Trace.enabled t.trace then
          Dcs_sim.Trace.record t.trace ~time:(Dcs_sim.Engine.now t.engine) (fun () ->
              Printf.sprintf "drop n%d->n%d %s" src dst (describe ()))
      end
      else begin
        if copies > 1 then t.duplicated <- t.duplicated + (copies - 1);
        for _ = 1 to copies do
          deliver_copy t ~src ~dst ~describe ~delay_factor ~extra_delay deliver
        done
      end

let send t ~src ~dst ~cls ~describe deliver =
  Counters.incr t.counters cls;
  dispatch t ~src ~dst ~cls ~describe deliver

let flush_held t =
  (* Re-dispatch in send order; messages whose links are still faulted are
     re-held behind any newly held traffic, preserving FIFO per link. *)
  let pending = Queue.create () in
  Queue.transfer t.held pending;
  Queue.iter
    (fun h ->
      dispatch t ~src:h.h_src ~dst:h.h_dst ~cls:h.h_cls ~describe:h.h_describe h.h_deliver)
    pending

let counters t = t.counters

let now t = Dcs_sim.Engine.now t.engine

let in_flight t = t.in_flight + Queue.length t.held

let held_count t = Queue.length t.held

let dropped t = t.dropped

let duplicated t = t.duplicated

let mean_latency t = Dcs_sim.Dist.mean t.latency
