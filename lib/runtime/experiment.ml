open Dcs_modes
open Dcs_proto
module Airline = Dcs_workload.Airline

type driver =
  | Hierarchical
  | Naimi_same_work
  | Naimi_pure

let driver_to_string = function
  | Hierarchical -> "hierarchical"
  | Naimi_same_work -> "naimi-same-work"
  | Naimi_pure -> "naimi-pure"

type chaos = {
  plan : Dcs_fault.Plan.t;
  reliable : bool;
  audit_period : float;
  rto : float;
}

type config = {
  nodes : int;
  driver : driver;
  workload : Airline.config;
  latency : Dcs_sim.Dist.t;
  topology : Dcs_sim.Topology.t;
  seed : int64;
  protocol : Dcs_hlock.Node.config;
  oracle : bool;
  chaos : chaos option;
}

let default_config ~driver ~nodes =
  {
    nodes;
    driver;
    workload = Airline.default_config;
    latency = Dcs_sim.Dist.uniform_around 150.0;
    topology = Dcs_sim.Topology.uniform;
    seed = 42L;
    protocol = Dcs_hlock.Node.default_config;
    oracle = false;
    chaos = None;
  }

let chaos ?reliable ?(audit_period = 2000.0) ?(rto = 600.0) plan =
  {
    plan;
    reliable = (match reliable with Some r -> r | None -> Dcs_fault.Plan.needs_shim plan);
    audit_period;
    rto;
  }

(* Rough expected length of the busy phase of a run (ms): idle + critical
   section + an acquisition term that grows with contention. Used only to
   place named fault windows inside the run; being off by 2x still lands
   every window in live traffic. *)
let horizon_estimate cfg =
  let wl = cfg.workload in
  let lat = Dcs_sim.Dist.mean cfg.latency in
  let per_op =
    Dcs_sim.Dist.mean wl.Airline.idle_time
    +. Dcs_sim.Dist.mean wl.Airline.cs_time
    +. (lat *. (1.0 +. (float_of_int cfg.nodes /. 16.0)))
  in
  float_of_int wl.Airline.ops_per_node *. per_op

type chaos_report = {
  audit_samples : int;
  audit_violations : string list;
  reliable_stats : Dcs_fault.Reliable.stats option;
  shim_overhead : float;
  net_dropped : int;
  net_duplicated : int;
}

type result = {
  cfg : config;
  ops : int;
  lock_requests : int;
  messages : (Msg_class.t * int) list;
  total_messages : int;
  msgs_per_op : float;
  msgs_per_lock_request : float;
  mean_latency_ms : float;
  latency_factor : float;
  p95_latency_ms : float;
  per_class : (Mode.t * int * float) list;
  latencies : Dcs_stats.Sample.t;
  sim_duration_ms : float;
  events : int;
  chaos_report : chaos_report option;
}

(* Shared measurement state threaded through the per-driver clients. *)
type meter = {
  mutable ops_done : int;
  mutable lock_requests : int;
  latencies : Dcs_stats.Sample.t;
  class_latencies : (Mode.t, Dcs_stats.Summary.t) Hashtbl.t;
}

let meter_create () =
  { ops_done = 0; lock_requests = 0; latencies = Dcs_stats.Sample.create (); class_latencies = Hashtbl.create 8 }

let record_acquired meter ~cls ~elapsed =
  Dcs_stats.Sample.add meter.latencies elapsed;
  let s =
    match Hashtbl.find_opt meter.class_latencies cls with
    | Some s -> s
    | None ->
        let s = Dcs_stats.Summary.create () in
        Hashtbl.replace meter.class_latencies cls s;
        s
  in
  Dcs_stats.Summary.add s elapsed

(* {1 The hierarchical driver} *)

let run_hierarchical ?transport ?obs cfg engine net meter =
  let wl = cfg.workload in
  let cluster =
    Hlock_cluster.create ~config:cfg.protocol ~oracle:cfg.oracle ?transport ?obs ~net
      ~nodes:cfg.nodes ~locks:(1 + wl.Airline.entries) ()
  in
  let master = Dcs_sim.Rng.create ~seed:cfg.seed in
  (* Custody watchdog: as long as work remains, kick every few round trips. *)
  let expected_ops = cfg.nodes * wl.Airline.ops_per_node in
  let kick_period = 400.0 *. Dcs_sim.Dist.mean cfg.latency in
  let rec kick_loop () =
    if meter.ops_done < expected_ops then begin
      Hlock_cluster.kick_all cluster;
      Dcs_sim.Engine.schedule engine ~after:kick_period kick_loop
    end
  in
  Dcs_sim.Engine.schedule engine ~after:kick_period kick_loop;
  let zipf = Airline.entry_zipf wl in
  let table = 0 and entry_lock e = 1 + e in
  for node = 0 to cfg.nodes - 1 do
    let rng = Dcs_sim.Rng.split master in
    let remaining = ref wl.Airline.ops_per_node in
    let rec idle_then_op () =
      if !remaining > 0 then
        Dcs_sim.Engine.schedule engine ~after:(Dcs_sim.Dist.sample wl.Airline.idle_time rng)
          start_op
    and start_op () =
      let op = Airline.sample_op ?zipf wl rng in
      let t0 = Dcs_sim.Engine.now engine in
      let acquired ~release =
        record_acquired meter ~cls:(Airline.op_class op) ~elapsed:(Dcs_sim.Engine.now engine -. t0);
        let cs = Dcs_sim.Dist.sample wl.Airline.cs_time rng in
        match op with
        | Airline.Table_op { upgrade = true; _ } ->
            (* Read under U for half the CS, then upgrade and write. *)
            Dcs_sim.Engine.schedule engine ~after:(cs /. 2.0) (fun () ->
                release ~upgrade_first:true ~after:(cs /. 2.0))
        | Airline.Table_op _ | Airline.Entry_op _ ->
            Dcs_sim.Engine.schedule engine ~after:cs (fun () ->
                release ~upgrade_first:false ~after:0.0)
      in
      let finish () =
        meter.ops_done <- meter.ops_done + 1;
        decr remaining;
        idle_then_op ()
      in
      match op with
      | Airline.Table_op { mode; _ } ->
          meter.lock_requests <- meter.lock_requests + 1;
          let seq = ref (-1) in
          seq :=
            Hlock_cluster.request cluster ~node ~lock:table ~mode ~on_granted:(fun () ->
                acquired ~release:(fun ~upgrade_first ~after ->
                    if upgrade_first then
                      Hlock_cluster.upgrade cluster ~node ~lock:table ~seq:!seq
                        ~on_upgraded:(fun () ->
                          Dcs_sim.Engine.schedule engine ~after (fun () ->
                              Hlock_cluster.release cluster ~node ~lock:table ~seq:!seq;
                              finish ()))
                    else begin
                      Hlock_cluster.release cluster ~node ~lock:table ~seq:!seq;
                      finish ()
                    end))
      | Airline.Entry_op { intent; entry_mode; entry } ->
          meter.lock_requests <- meter.lock_requests + 2;
          let table_seq = ref (-1) and entry_seq = ref (-1) in
          table_seq :=
            Hlock_cluster.request cluster ~node ~lock:table ~mode:intent ~on_granted:(fun () ->
                entry_seq :=
                  Hlock_cluster.request cluster ~node ~lock:(entry_lock entry) ~mode:entry_mode
                    ~on_granted:(fun () ->
                      acquired ~release:(fun ~upgrade_first:_ ~after:_ ->
                          Hlock_cluster.release cluster ~node ~lock:(entry_lock entry)
                            ~seq:!entry_seq;
                          Hlock_cluster.release cluster ~node ~lock:table ~seq:!table_seq;
                          finish ())))
    in
    idle_then_op ()
  done;
  ( (fun () -> if cfg.oracle then Hlock_cluster.quiescent_violations cluster else []),
    Some cluster )

(* {1 The Naimi drivers} *)

(* [Naimi_same_work]: entry ops take that entry's exclusive lock; table ops
   take every entry lock in ascending order (total order = no deadlock).
   [Naimi_pure]: one global lock for everything. *)
let run_naimi ?obs cfg engine net meter ~pure =
  let wl = cfg.workload in
  let locks = if pure then 1 else wl.Airline.entries in
  let cluster = Naimi_cluster.create ~oracle:cfg.oracle ?obs ~net ~nodes:cfg.nodes ~locks () in
  let master = Dcs_sim.Rng.create ~seed:cfg.seed in
  let zipf = Airline.entry_zipf wl in
  for node = 0 to cfg.nodes - 1 do
    let rng = Dcs_sim.Rng.split master in
    let remaining = ref wl.Airline.ops_per_node in
    let rec idle_then_op () =
      if !remaining > 0 then
        Dcs_sim.Engine.schedule engine ~after:(Dcs_sim.Dist.sample wl.Airline.idle_time rng)
          start_op
    and start_op () =
      let op = Airline.sample_op ?zipf wl rng in
      let t0 = Dcs_sim.Engine.now engine in
      let wanted =
        if pure then [ 0 ]
        else
          match op with
          | Airline.Entry_op { entry; _ } -> [ entry ]
          | Airline.Table_op _ -> List.init wl.Airline.entries (fun i -> i)
      in
      meter.lock_requests <- meter.lock_requests + List.length wanted;
      let rec acquire = function
        | [] ->
            record_acquired meter ~cls:(Airline.op_class op)
              ~elapsed:(Dcs_sim.Engine.now engine -. t0);
            let cs = Dcs_sim.Dist.sample wl.Airline.cs_time rng in
            Dcs_sim.Engine.schedule engine ~after:cs (fun () ->
                List.iter (fun lock -> Naimi_cluster.release cluster ~node ~lock) wanted;
                meter.ops_done <- meter.ops_done + 1;
                decr remaining;
                idle_then_op ())
        | lock :: rest ->
            Naimi_cluster.request cluster ~node ~lock ~on_acquired:(fun () -> acquire rest)
      in
      acquire wanted
    in
    idle_then_op ()
  done;
  ((fun () -> if cfg.oracle then Naimi_cluster.quiescent_violations cluster else []), None)

(* {1 Runner} *)

let run ?trace ?recorder cfg =
  let engine = Dcs_sim.Engine.create () in
  let net_rng = Dcs_sim.Rng.create ~seed:(Int64.add cfg.seed 0x9E37L) in
  let net =
    Net.create ~engine ~latency:cfg.latency ~topology:cfg.topology ~rng:net_rng ?trace ()
  in
  let meter = meter_create () in
  let expected = cfg.nodes * cfg.workload.Airline.ops_per_node in
  (* Chaos: install the fault plan on the net and (when the plan drops or
     duplicates) thread the Reliable shim between cluster and net. *)
  let shim =
    match cfg.chaos with
    | None -> None
    | Some { plan; reliable; rto; _ } ->
        (match cfg.driver with
        | Hierarchical -> ()
        | Naimi_same_work | Naimi_pure ->
            invalid_arg "Experiment.run: chaos is only wired for the Hierarchical driver");
        if Dcs_fault.Plan.needs_shim plan && not reliable then
          invalid_arg "Experiment.run: plan drops/duplicates but chaos.reliable is false";
        let plan_rng = Dcs_sim.Rng.create ~seed:(Int64.add cfg.seed 0x0FADL) in
        Dcs_fault.Plan.install plan ~engine ~rng:plan_rng ~set_fault:(Net.set_fault net)
          ~flush:(fun () -> Net.flush_held net);
        if reliable then
          Some (Dcs_fault.Reliable.create ~engine ~rto ~below:(Net.send net) ())
        else None
  in
  let transport = Option.map (fun s -> Dcs_fault.Reliable.send s) shim in
  let quiescent, cluster =
    match cfg.driver with
    | Hierarchical -> run_hierarchical ?transport ?obs:recorder cfg engine net meter
    | Naimi_same_work -> run_naimi ?obs:recorder cfg engine net meter ~pure:false
    | Naimi_pure -> run_naimi ?obs:recorder cfg engine net meter ~pure:true
  in
  (* Gauge sampling rides the engine tick hook, rate-limited to roughly one
     sample per mean network latency so dense event bursts don't flood the
     recorder. Observation only — no events scheduled, no RNG draws — so
     trace digests and results are unchanged. *)
  (match recorder with
  | Some r when Dcs_obs.Recorder.enabled r ->
      let period = Float.max 1.0 (Net.mean_latency net) in
      let last = ref neg_infinity in
      Dcs_sim.Engine.set_tick engine
        (Some
           (fun () ->
             let now = Dcs_sim.Engine.now engine in
             if now -. !last >= period then begin
               last := now;
               Dcs_obs.Recorder.gauge r ~time:now ~name:"in_flight"
                 ~value:(float_of_int (Net.in_flight net));
               match cluster with Some c -> Hlock_cluster.sample_gauges c r | None -> ()
             end))
  | _ -> ());
  let audit =
    match (cfg.chaos, cluster) with
    | Some { audit_period; _ }, Some cluster when audit_period > 0.0 ->
        Some
          (Dcs_fault.Audit.create ~engine ~period:audit_period
             ~max_queued:(2 * cfg.nodes)
             ~snapshot:(fun () -> Hlock_cluster.audit_views cluster)
             ~live:(fun () -> meter.ops_done < expected)
             ())
    | _ -> None
  in
  (match Dcs_sim.Engine.run engine with
  | Dcs_sim.Engine.Drained -> ()
  | Dcs_sim.Engine.Horizon_reached -> assert false
  | Dcs_sim.Engine.Event_limit -> failwith "Experiment.run: event limit hit (livelock?)");
  Dcs_sim.Engine.set_tick engine None;
  if meter.ops_done <> expected then
    failwith
      (Printf.sprintf "Experiment.run (%s, n=%d): %d/%d operations completed — liveness failure"
         (driver_to_string cfg.driver) cfg.nodes meter.ops_done expected);
  (match quiescent () with
  | [] -> ()
  | vs -> failwith ("Experiment.run: quiescence violations: " ^ String.concat "; " vs));
  let counters = Net.counters net in
  (* Final audit probe at quiescence: the engine has drained, so beyond the
     sampled invariants the cluster must also be fully at rest. *)
  let chaos_report =
    match cfg.chaos with
    | None -> None
    | Some _ ->
        let audit_samples, audit_findings =
          match audit with
          | None -> (0, [])
          | Some audit ->
              Dcs_fault.Audit.check_now audit;
              (Dcs_fault.Audit.samples audit, Dcs_fault.Audit.violations audit)
        in
        let quiescence_violations =
          (match cluster with
          | Some c -> Hlock_cluster.quiescent_violations c
          | None -> [])
          @ (match shim with Some s -> Dcs_fault.Reliable.quiescent_violations s | None -> [])
          @ (if Net.in_flight net = 0 then []
             else [ Printf.sprintf "net: %d messages still in flight" (Net.in_flight net) ])
        in
        let shim_msgs =
          Counters.get counters Msg_class.Ack + Counters.get counters Msg_class.Retransmit
        in
        let protocol_msgs = Counters.total counters - shim_msgs in
        Some
          {
            audit_samples;
            audit_violations = audit_findings @ quiescence_violations;
            reliable_stats = Option.map Dcs_fault.Reliable.stats shim;
            shim_overhead = float_of_int shim_msgs /. float_of_int (max 1 protocol_msgs);
            net_dropped = Net.dropped net;
            net_duplicated = Net.duplicated net;
          }
  in
  let total_messages = Counters.total counters in
  let ops = meter.ops_done in
  let mean_latency_ms = Dcs_stats.Sample.mean meter.latencies in
  let per_class =
    List.filter_map
      (fun m ->
        match Hashtbl.find_opt meter.class_latencies m with
        | None -> None
        | Some s -> Some (m, Dcs_stats.Summary.count s, Dcs_stats.Summary.mean s))
      Mode.all
  in
  {
    cfg;
    ops;
    lock_requests = meter.lock_requests;
    messages = Counters.to_list counters;
    total_messages;
    msgs_per_op = float_of_int total_messages /. float_of_int (max 1 ops);
    msgs_per_lock_request = float_of_int total_messages /. float_of_int (max 1 meter.lock_requests);
    mean_latency_ms;
    latency_factor = mean_latency_ms /. Net.mean_latency net;
    p95_latency_ms = Dcs_stats.Sample.percentile meter.latencies 95.0;
    per_class;
    latencies = meter.latencies;
    sim_duration_ms = Dcs_sim.Engine.now engine;
    events = Dcs_sim.Engine.events_processed engine;
    chaos_report;
  }

let row_header =
  [ "driver"; "nodes"; "ops"; "lock reqs"; "msgs"; "msg/op"; "msg/lockreq"; "lat ms"; "lat factor"; "p95 ms" ]

let result_row r =
  [
    driver_to_string r.cfg.driver;
    string_of_int r.cfg.nodes;
    string_of_int r.ops;
    string_of_int r.lock_requests;
    string_of_int r.total_messages;
    Printf.sprintf "%.2f" r.msgs_per_op;
    Printf.sprintf "%.2f" r.msgs_per_lock_request;
    Printf.sprintf "%.1f" r.mean_latency_ms;
    Printf.sprintf "%.1f" r.latency_factor;
    Printf.sprintf "%.1f" r.p95_latency_ms;
  ]
