open Dcs_modes
module Node = Dcs_hlock.Node
module Msg = Dcs_hlock.Msg

type lock_state = {
  mutable engines : Node.t array;
  granted_cbs : (int * int, unit -> unit) Hashtbl.t;  (* (node, seq) -> callback *)
  granted_fired : (int * int, unit) Hashtbl.t;
  upgraded_cbs : (int * int, unit -> unit) Hashtbl.t;
  upgraded_fired : (int * int, unit) Hashtbl.t;
  mutable tokens_in_flight : int;
  counters : Dcs_proto.Counters.t;
}

type t = {
  net : Net.t;
  n : int;
  l : int;
  locks_arr : lock_state array;
  oracle : bool;
}

let nodes t = t.n
let locks t = t.l

let node t ~lock ~node = t.locks_arr.(lock).engines.(node)

(* {1 Oracles} *)

let safety_violations_lock ls ~lock =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let holders = ref [] in
  Array.iter
    (fun e ->
      if Node.is_token e then holders := Node.id e :: !holders)
    ls.engines;
  let token_count = List.length !holders + ls.tokens_in_flight in
  if token_count <> 1 then
    add "lock %d: token multiplicity %d (holders [%s], in flight %d)" lock token_count
      (String.concat "," (List.map string_of_int !holders))
      ls.tokens_in_flight;
  (* All concurrently held modes across the cluster must be pairwise
     compatible (Rule 1 is the ground truth the protocol must enforce). *)
  let held =
    Array.to_list ls.engines
    |> List.concat_map (fun e -> List.map (fun (_, m) -> (Node.id e, m)) (Node.held e))
  in
  let rec pairs = function
    | [] -> ()
    | (n1, m1) :: rest ->
        List.iter
          (fun (n2, m2) ->
            if not (Compat.compatible m1 m2) then
              add "lock %d: incompatible concurrent holds n%d:%s vs n%d:%s" lock n1
                (Mode.to_string m1) n2 (Mode.to_string m2))
          rest;
        pairs rest
  in
  pairs held;
  List.rev !violations

let safety_violations t ~lock = safety_violations_lock t.locks_arr.(lock) ~lock

let assert_safe t =
  for lock = 0 to t.l - 1 do
    match safety_violations t ~lock with
    | [] -> ()
    | vs -> failwith (String.concat "; " vs)
  done

let quiescent_violations t =
  let violations = ref [] in
  let add fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  for lock = 0 to t.l - 1 do
    let ls = t.locks_arr.(lock) in
    (match safety_violations t ~lock with [] -> () | vs -> List.iter (add "%s") vs);
    let token_node = ref None in
    Array.iter (fun e -> if Node.is_token e then token_node := Some (Node.id e)) ls.engines;
    Array.iter
      (fun e ->
        let id = Node.id e in
        if Node.queue e <> [] then add "lock %d: n%d has %d queued requests" lock id (List.length (Node.queue e));
        if Node.pending e <> None then add "lock %d: n%d has a pending request" lock id;
        if Node.held e <> [] then add "lock %d: n%d still holds modes" lock id;
        (* Copyset records may persist at quiescence (cached copies), but
           they must be mutually consistent: each child record must match
           the child's actual owned mode and accounting pointer. *)
        List.iter
          (fun (c, m) ->
            let ce = ls.engines.(c) in
            (match Node.accounting ce with
            | Some (p, _) when p = id -> ()
            | _ -> add "lock %d: n%d records child n%d, which accounts elsewhere" lock id c);
            match Node.owned ce with
            | Some m' when Mode.equal m m' -> ()
            | o ->
                add "lock %d: n%d records n%d as %s but its owned mode is %s" lock id c
                  (Mode.to_string m)
                  (match o with None -> "_" | Some m' -> Mode.to_string m'))
          (Node.children e);
        (match Node.accounting e with
        | Some (p, _) ->
            if not (List.mem_assoc id (Node.children ls.engines.(p))) then
              add "lock %d: n%d claims accounting parent n%d, which has no record" lock id p
        | None ->
            if (not (Node.is_token e)) && Node.owned e <> None then
              add "lock %d: n%d owns %s with no accounting parent" lock id
                (match Node.owned e with Some m -> Mode.to_string m | None -> "_"));
        (* All retained modes (held or cached) must be mutually compatible
           cluster-wide; checked pairwise in safety_violations for held,
           here extended to caches. *)
        (* Routing parents may legitimately form stale cycles at quiescence
           (reversal and grant edges are heuristics; relays carry their
           path and divert around cycles), so only basic sanity is
           enforced: a parent pointer never aims at its own node. *)
        (match Node.parent e with
        | Some p when p = id -> add "lock %d: n%d is its own routing parent" lock id
        | Some _ | None -> ());
        ignore !token_node)
      ls.engines;
    (* Cached + held modes must be pairwise compatible cluster-wide. *)
    let retained =
      Array.to_list ls.engines
      |> List.concat_map (fun e ->
             List.map (fun (_, m) -> (Node.id e, m)) (Node.held e)
             @ List.map (fun m -> (Node.id e, m)) (Node.cached e))
    in
    let rec pairs2 = function
      | [] -> ()
      | (n1, m1) :: rest ->
          List.iter
            (fun (n2, m2) ->
              if not (Compat.compatible m1 m2) then
                add "lock %d: incompatible retained modes n%d:%s vs n%d:%s" lock n1
                  (Mode.to_string m1) n2 (Mode.to_string m2))
            rest;
          pairs2 rest
    in
    pairs2 retained
  done;
  List.rev !violations

(* {1 Construction} *)

let create ?(config = Node.default_config) ?(oracle = false) ?transport ?obs ?restore ~net
    ~nodes:n ~locks:l () =
  if n < 1 then invalid_arg "Hlock_cluster.create: need at least one node";
  (match restore with
  | None -> ()
  | Some (snaps : Node.snapshot array array) ->
      if Array.length snaps <> l then
        invalid_arg "Hlock_cluster.create: restore must cover every lock";
      Array.iter
        (fun per_node ->
          if Array.length per_node <> n then
            invalid_arg "Hlock_cluster.create: restore must cover every node")
        snaps);
  (* Protocol messages travel through [transport] (default: the raw net);
     chaos runs interpose the Dcs_fault.Reliable shim here. *)
  let transport : Dcs_proto.Link.send =
    match transport with Some s -> s | None -> Net.send net
  in
  (* A disabled recorder is dropped here, so the per-node engines see
     [None] and pay only the per-site branch. *)
  let obs = match obs with Some r when Dcs_obs.Recorder.enabled r -> Some r | _ -> None in
  let t =
    { net; n; l; locks_arr = Array.init l (fun _ ->
          {
            engines = [||];
            granted_cbs = Hashtbl.create 32;
            granted_fired = Hashtbl.create 32;
            upgraded_cbs = Hashtbl.create 8;
            upgraded_fired = Hashtbl.create 8;
            tokens_in_flight = 0;
            counters = Dcs_proto.Counters.create ();
          });
      oracle;
    }
  in
  for lock = 0 to l - 1 do
    let ls = t.locks_arr.(lock) in
    let engines =
      Array.init n (fun id ->
          let send ~dst msg =
            Dcs_proto.Counters.incr ls.counters (Msg.class_of msg);
            (match obs with
            | None -> ()
            | Some r ->
                (* Per-class wire bytes: the codec is the authority on what
                   this message costs on a real link. *)
                Dcs_obs.Recorder.message r ~cls:(Msg.class_of msg)
                  ~bytes:
                    (String.length
                       (Dcs_wire.Codec.encode
                          { Dcs_wire.Codec.src = id; lock; payload = Dcs_wire.Codec.Hlock msg })));
            (match msg with Msg.Token _ -> ls.tokens_in_flight <- ls.tokens_in_flight + 1 | _ -> ());
            transport ~src:id ~dst ~cls:(Msg.class_of msg)
              ~describe:(fun () -> Format.asprintf "lock%d %a" lock Msg.pp msg)
              (fun () ->
                (match msg with
                | Msg.Token _ -> ls.tokens_in_flight <- ls.tokens_in_flight - 1
                | _ -> ());
                Node.handle_msg ls.engines.(dst) ~src:id msg;
                if t.oracle then
                  match safety_violations_lock ls ~lock with
                  | [] -> ()
                  | vs -> failwith (String.concat "; " vs))
          in
          let on_granted (r : Msg.request) =
            let key = (id, r.seq) in
            match Hashtbl.find_opt ls.granted_cbs key with
            | Some cb ->
                Hashtbl.remove ls.granted_cbs key;
                cb ()
            | None -> Hashtbl.replace ls.granted_fired key ()
          in
          let on_upgraded seq =
            let key = (id, seq) in
            match Hashtbl.find_opt ls.upgraded_cbs key with
            | Some cb ->
                Hashtbl.remove ls.upgraded_cbs key;
                cb ()
            | None -> Hashtbl.replace ls.upgraded_fired key ()
          in
          let node_obs =
            match obs with
            | None -> None
            | Some r ->
                Some
                  (fun scope kind ->
                    Dcs_obs.Recorder.record r ~time:(Net.now net) ~lock ~node:id scope kind)
          in
          match restore with
          | None ->
              Node.create ~config ?obs:node_obs ~id ~peers:n ~is_token:(id = 0)
                ~parent:(if id = 0 then None else Some 0)
                ~send ~on_granted ~on_upgraded ()
          | Some snaps ->
              Node.restore ~config ?obs:node_obs ~id ~peers:n ~send ~on_granted ~on_upgraded
                snaps.(lock).(id))
    in
    (* Tie the recursive knot: send closures dereference [ls.engines]. *)
    ls.engines <- engines
  done;
  t

let lock_counters t ~lock = t.locks_arr.(lock).counters

(* The sending half of a shard handoff: the whole per-node population of
   one lock object as snapshots. Requires transport quiescence for that
   lock (no token in flight — a token crossing the handoff would be lost)
   and client quiescence at every node ({!Node.export}'s own checks); the
   callback tables must be drained too, since waiting continuations cannot
   travel. *)
let export_lock t ~lock =
  let ls = t.locks_arr.(lock) in
  if ls.tokens_in_flight <> 0 then
    invalid_arg "Hlock_cluster.export_lock: token in flight";
  if Hashtbl.length ls.granted_cbs > 0 || Hashtbl.length ls.upgraded_cbs > 0 then
    invalid_arg "Hlock_cluster.export_lock: clients still waiting";
  Array.map Node.export ls.engines

(* Global state probe for the sampled invariant auditor (chaos soaks). *)
let audit_views t =
  List.init t.l (fun lock ->
      let ls = t.locks_arr.(lock) in
      let token_holders = ref []
      and held = ref []
      and cached = ref []
      and queued = ref 0
      and pending = ref 0 in
      Array.iter
        (fun e ->
          let id = Node.id e in
          if Node.is_token e then token_holders := id :: !token_holders;
          List.iter (fun (_, m) -> held := (id, m) :: !held) (Node.held e);
          List.iter (fun m -> cached := (id, m) :: !cached) (Node.cached e);
          queued := !queued + List.length (Node.queue e);
          if Node.pending e <> None then incr pending)
        ls.engines;
      {
        Dcs_fault.Audit.lock;
        token_holders = List.rev !token_holders;
        tokens_in_flight = ls.tokens_in_flight;
        held = List.rev !held;
        cached = List.rev !cached;
        queued = !queued;
        pending = !pending;
      })

let kick_all t =
  Array.iter (fun ls -> Array.iter Node.kick ls.engines) t.locks_arr

(* Cheap cluster-wide gauges for the engine-tick sampler. *)
let sample_gauges t r =
  if Dcs_obs.Recorder.enabled r then begin
    let time = Net.now t.net in
    let queued = ref 0 and copyset = ref 0 and frozen = ref 0 in
    Array.iter
      (fun ls ->
        Array.iter
          (fun e ->
            queued := !queued + List.length (Node.queue e);
            copyset := !copyset + List.length (Node.children e);
            if not (Mode_set.is_empty (Node.frozen e)) then incr frozen)
          ls.engines)
      t.locks_arr;
    Dcs_obs.Recorder.gauge r ~time ~name:"queue_depth" ~value:(float_of_int !queued);
    Dcs_obs.Recorder.gauge r ~time ~name:"copyset_size" ~value:(float_of_int !copyset);
    Dcs_obs.Recorder.gauge r ~time ~name:"frozen_nodes" ~value:(float_of_int !frozen)
  end

(* {1 Client operations} *)

let request ?priority t ~node ~lock ~mode ~on_granted =
  let ls = t.locks_arr.(lock) in
  let seq = Node.request ?priority ls.engines.(node) ~mode in
  let key = (node, seq) in
  (if Hashtbl.mem ls.granted_fired key then begin
     Hashtbl.remove ls.granted_fired key;
     on_granted ()
   end
   else Hashtbl.replace ls.granted_cbs key on_granted);
  if t.oracle then assert_safe t;
  seq

let release t ~node ~lock ~seq =
  let ls = t.locks_arr.(lock) in
  Node.release ls.engines.(node) ~seq;
  if t.oracle then assert_safe t

let upgrade t ~node ~lock ~seq ~on_upgraded =
  let ls = t.locks_arr.(lock) in
  let key = (node, seq) in
  Node.upgrade ls.engines.(node) ~seq;
  (if Hashtbl.mem ls.upgraded_fired key then begin
     Hashtbl.remove ls.upgraded_fired key;
     on_upgraded ()
   end
   else Hashtbl.replace ls.upgraded_cbs key on_upgraded);
  if t.oracle then assert_safe t
