(** Regeneration of the paper's evaluation figures (§4).

    Each function runs the relevant simulations and returns both the raw
    series and a rendered report. The node counts default to a sweep up to
    the paper's 120; [quick] mode caps at 32 nodes for fast runs. *)

type point = {
  nodes : int;
  msgs_per_op : float;
  msgs_per_lock_request : float;
  latency_factor : float;
  breakdown : (Dcs_proto.Msg_class.t * float) list;  (** per operation *)
}

type series = {
  driver : Experiment.driver;
  points : point list;
}

(** Default sweep: 2, 4, 8, 16, 24, 32, 48, 64, 80, 96, 120. *)
val default_nodes : int list

val quick_nodes : int list

(** Run one driver over the node counts (paper workload unless
    overridden). Cells fan out over [jobs] domains (default
    {!Dcs_netkit.Parallel.default_jobs}); each cell's seed is derived
    from [seed] and the cell's (driver, node count) identity, so results
    are bit-identical for every [jobs]. *)
val sweep :
  ?workload:Dcs_workload.Airline.config ->
  ?protocol:Dcs_hlock.Node.config ->
  ?seed:int64 ->
  ?jobs:int ->
  driver:Experiment.driver ->
  nodes:int list ->
  unit ->
  series

(** Re-run one sweep cell with full telemetry: the configuration and seed
    are exactly what the (driver, nodes) cell would use inside a figure
    sweep (see {!sweep}), so the captured trace drills down into a figure
    point rather than describing a different run. The recorder receives
    events, message bytes and gauges as in {!Experiment.run}. *)
val traced_cell :
  ?workload:Dcs_workload.Airline.config ->
  ?protocol:Dcs_hlock.Node.config ->
  ?seed:int64 ->
  recorder:Dcs_obs.Recorder.t ->
  driver:Experiment.driver ->
  nodes:int ->
  unit ->
  Experiment.result

(** Figure 5: message overhead per lock request vs number of nodes, all
    three drivers, with a logarithmic fit for the scalable protocols. *)
val fig5 : ?nodes:int list -> ?seed:int64 -> ?jobs:int -> unit -> series list * string

(** Figure 6: request latency as a factor of point-to-point latency, with
    a linear fit for the hierarchical protocol. *)
val fig6 : ?nodes:int list -> ?seed:int64 -> ?jobs:int -> unit -> series list * string

(** Figure 7: message breakdown by type for the hierarchical protocol. *)
val fig7 : ?nodes:int list -> ?seed:int64 -> ?jobs:int -> unit -> series * string

(** All three figures from a single sweep per driver (cheaper than calling
    {!fig5}, {!fig6} and {!fig7} separately). *)
val full_report : ?nodes:int list -> ?seed:int64 -> ?jobs:int -> unit -> string

(** The four protocol decision tables (paper Tables 1a–2b), rendered. *)
val tables : unit -> string

(** Ablation study at a fixed size: protocol variants of DESIGN.md
    (caching off, freezing off, eager releases, routing knobs). *)
val ablations : ?nodes:int -> ?seed:int64 -> unit -> string

(** Locality study: the same workload under uniform, racked and star
    topologies (beyond the paper, whose testbed was one switched LAN). *)
val topology_study : ?nodes:int -> ?seed:int64 -> unit -> string

(** Table-size sensitivity: the same-work baseline vs ours as the (unstated
    in the paper) table size varies. *)
val entries_study : ?nodes:int -> ?sizes:int list -> ?seed:int64 -> unit -> string

(** Headline metrics as mean ± sd across seeds. *)
val seed_variance : ?nodes:int list -> ?seeds:int64 list -> unit -> string

(** CSV for a list of series (long format:
    driver,nodes,msgs_per_op,msgs_per_lockreq,latency_factor). *)
val to_csv : series list -> string
