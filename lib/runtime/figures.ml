open Dcs_proto

type point = {
  nodes : int;
  msgs_per_op : float;
  msgs_per_lock_request : float;
  latency_factor : float;
  breakdown : (Msg_class.t * float) list;
}

type series = {
  driver : Experiment.driver;
  points : point list;
}

let default_nodes = [ 2; 4; 8; 16; 24; 32; 48; 64; 80; 96; 120 ]

let quick_nodes = [ 2; 4; 8; 16; 32 ]

(* Stable semantic identity of a driver, used (with the node count) to
   derive each sweep cell's seed. Independent of sweep composition: the
   hierarchical slice of a three-driver grid equals a one-driver sweep. *)
let driver_index = function
  | Experiment.Hierarchical -> 0
  | Experiment.Naimi_pure -> 1
  | Experiment.Naimi_same_work -> 2

let cell_seed ~seed ~driver ~nodes =
  Dcs_netkit.Parallel.cell_seed ~base:seed ~salt:((driver_index driver lsl 16) lor nodes)

let run_cell ?workload ?protocol ~seed (driver, n) =
  let cfg = Experiment.default_config ~driver ~nodes:n in
  let cfg =
    {
      cfg with
      Experiment.seed = cell_seed ~seed ~driver ~nodes:n;
      workload = Option.value workload ~default:cfg.Experiment.workload;
      protocol = Option.value protocol ~default:cfg.Experiment.protocol;
    }
  in
  let r = Experiment.run cfg in
  {
    nodes = n;
    msgs_per_op = r.Experiment.msgs_per_op;
    msgs_per_lock_request = r.Experiment.msgs_per_lock_request;
    latency_factor = r.Experiment.latency_factor;
    breakdown =
      List.map
        (fun (c, k) -> (c, float_of_int k /. float_of_int (max 1 r.Experiment.ops)))
        r.Experiment.messages;
  }

(* One sweep cell re-run with full telemetry: exactly the configuration
   (and seed) the cell would have inside a figure sweep, so a dcs-trace
   capture is a drill-down into a published figure point, not a different
   experiment. *)
let traced_cell ?workload ?protocol ?(seed = 42L) ~recorder ~driver ~nodes () =
  let cfg = Experiment.default_config ~driver ~nodes in
  let cfg =
    {
      cfg with
      Experiment.seed = cell_seed ~seed ~driver ~nodes;
      workload = Option.value workload ~default:cfg.Experiment.workload;
      protocol = Option.value protocol ~default:cfg.Experiment.protocol;
    }
  in
  Experiment.run ~recorder cfg

(* Every sweep goes through this one grid: cells fan out over domains
   (largest node counts first, so with dynamic distribution the long
   cells start early and short ones fill the tail) and results return in
   input order. Each cell's seed depends only on its semantic identity,
   so the grid output is bit-identical for any [jobs]. *)
let grid ?workload ?protocol ~seed ?jobs cells =
  let m = Array.length cells in
  if m = 0 then [||]
  else begin
    let order = Array.init m Fun.id in
    Array.sort
      (fun a b ->
        let _, na = cells.(a) and _, nb = cells.(b) in
        if nb <> na then compare nb na else compare a b)
      order;
    let work = Array.map (fun i -> cells.(i)) order in
    let out = Dcs_netkit.Parallel.map ?jobs (run_cell ?workload ?protocol ~seed) work in
    let results = Array.make m out.(0) in
    Array.iteri (fun k i -> results.(i) <- out.(k)) order;
    results
  end

let sweep ?workload ?protocol ?(seed = 42L) ?jobs ~driver ~nodes () =
  let cells = Array.of_list (List.map (fun n -> (driver, n)) nodes) in
  { driver; points = Array.to_list (grid ?workload ?protocol ~seed ?jobs cells) }

let drivers = Experiment.[ Hierarchical; Naimi_pure; Naimi_same_work ]

(* One flat grid across drivers × nodes: better load balance than
   parallelizing each driver's sweep separately. *)
let all_sweeps ?(seed = 42L) ?jobs ~nodes () =
  let per_driver = List.length nodes in
  let cells =
    Array.of_list (List.concat_map (fun d -> List.map (fun n -> (d, n)) nodes) drivers)
  in
  let points = grid ~seed ?jobs cells in
  List.mapi
    (fun di driver ->
      { driver; points = Array.to_list (Array.sub points (di * per_driver) per_driver) })
    drivers

let float_points f points = List.map (fun p -> (float_of_int p.nodes, f p)) points

let fit_line b label points ~f =
  if List.length points >= 3 then begin
    let xy = float_points f points in
    let log_fit = Dcs_stats.Fit.logarithmic xy in
    let lin_fit = Dcs_stats.Fit.linear xy in
    Buffer.add_string b
      (Format.asprintf "  %-16s log fit: %a | linear fit: %a | better: %s@." label
         Dcs_stats.Fit.pp log_fit Dcs_stats.Fit.pp lin_fit
         (if log_fit.Dcs_stats.Fit.r2 >= lin_fit.Dcs_stats.Fit.r2 then "logarithmic"
          else "linear"))
  end

let render_series_table ~column ~f series_list =
  let nodes = (List.hd series_list).points |> List.map (fun p -> p.nodes) in
  let header = "nodes" :: List.map (fun s -> Experiment.driver_to_string s.driver) series_list in
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun s ->
               match List.find_opt (fun p -> p.nodes = n) s.points with
               | Some p -> Printf.sprintf "%.2f" (f p)
               | None -> "-")
             series_list)
      nodes
  in
  Printf.sprintf "%s\n%s" column (Dcs_stats.Table.render ~header rows)

let render_plot ~f series_list =
  Dcs_stats.Table.ascii_plot
    ~series:
      (List.map
         (fun s -> (Experiment.driver_to_string s.driver, float_points f s.points))
         series_list)
    ()

let render_fig5 series =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "Figure 5 — message overhead (messages per lock request) vs number of nodes\n\
     Paper: ours ~3 with a logarithmic asymptote; Naimi pure ~4; Naimi same-work higher and growing.\n\n";
  Buffer.add_string b (render_series_table ~column:"messages per lock request" ~f:(fun p -> p.msgs_per_lock_request) series);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (render_series_table ~column:"messages per application operation" ~f:(fun p -> p.msgs_per_op) series);
  Buffer.add_char b '\n';
  Buffer.add_string b (render_plot ~f:(fun p -> p.msgs_per_lock_request) series);
  Buffer.add_string b "\nAsymptote check (messages per lock request):\n";
  List.iter
    (fun s ->
      fit_line b (Experiment.driver_to_string s.driver) s.points ~f:(fun p -> p.msgs_per_lock_request))
    series;
  Buffer.contents b

let fig5 ?(nodes = default_nodes) ?seed ?jobs () =
  let series = all_sweeps ?seed ?jobs ~nodes () in
  (series, render_fig5 series)

let render_fig6 series =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "Figure 6 — request latency as a factor of point-to-point latency vs number of nodes\n\
     Paper: ours linear, ~90 at 120 nodes; Naimi same-work superlinear, ~160; pure in between.\n\n";
  Buffer.add_string b (render_series_table ~column:"latency factor" ~f:(fun p -> p.latency_factor) series);
  Buffer.add_char b '\n';
  Buffer.add_string b (render_plot ~f:(fun p -> p.latency_factor) series);
  Buffer.add_string b "\nGrowth check (latency factor):\n";
  List.iter
    (fun s ->
      fit_line b (Experiment.driver_to_string s.driver) s.points ~f:(fun p -> p.latency_factor))
    series;
  Buffer.contents b

let fig6 ?(nodes = default_nodes) ?seed ?jobs () =
  let series = all_sweeps ?seed ?jobs ~nodes () in
  (series, render_fig6 series)

let render_fig7 s =
  let b = Buffer.create 2048 in
  Buffer.add_string b
    "Figure 7 — message overhead breakdown by type (hierarchical protocol, per operation)\n\
     Paper: requests rise then flatten; transfers decline to a plateau; grants and releases\n\
     rise and stabilize; freezes stay bounded.\n\n";
  let header = "nodes" :: List.map Msg_class.to_string Msg_class.all in
  let rows =
    List.map
      (fun p ->
        string_of_int p.nodes
        :: List.map
             (fun c ->
               Printf.sprintf "%.2f" (try List.assoc c p.breakdown with Not_found -> 0.0))
             Msg_class.all)
      s.points
  in
  Buffer.add_string b (Dcs_stats.Table.render ~header rows);
  Buffer.add_char b '\n';
  Buffer.add_string b
    (Dcs_stats.Table.ascii_plot
       ~series:
         (List.map
            (fun c ->
              ( Msg_class.to_string c,
                List.map
                  (fun p ->
                    ( float_of_int p.nodes,
                      try List.assoc c p.breakdown with Not_found -> 0.0 ))
                  s.points ))
            Msg_class.all)
       ());
  Buffer.contents b

let fig7 ?(nodes = default_nodes) ?seed ?jobs () =
  let s = sweep ?seed ?jobs ~driver:Experiment.Hierarchical ~nodes () in
  (s, render_fig7 s)

let full_report ?(nodes = default_nodes) ?seed ?jobs () =
  (* One sweep per driver serves all three figures. *)
  let series = all_sweeps ?seed ?jobs ~nodes () in
  let ours = List.find (fun s -> s.driver = Experiment.Hierarchical) series in
  String.concat "
"
    [ render_fig5 series; render_fig6 series; render_fig7 ours ]

let tables () =
  String.concat "\n"
    [
      Dcs_modes.Compat.render_table `Compat;
      Dcs_modes.Compat.render_table `Child_grant;
      Dcs_modes.Compat.render_table `Queue_forward;
      Dcs_modes.Compat.render_table `Freeze;
    ]

let ablations ?(nodes = 32) ?(seed = 42L) () =
  let variants =
    [
      ("paper protocol", Dcs_hlock.Node.default_config);
      ("no caching", { Dcs_hlock.Node.default_config with Dcs_hlock.Node.caching = false });
      ("no freezing (nor caching)", { Dcs_hlock.Node.default_config with Dcs_hlock.Node.freezing = false });
      ("eager releases", { Dcs_hlock.Node.default_config with Dcs_hlock.Node.eager_release = true });
      ("no grant edges", { Dcs_hlock.Node.default_config with Dcs_hlock.Node.grant_edges = false });
      ("full path reversal", { Dcs_hlock.Node.default_config with Dcs_hlock.Node.reverse_all = true });
    ]
  in
  let rows =
    List.map
      (fun (label, protocol) ->
        let cfg = Experiment.default_config ~driver:Experiment.Hierarchical ~nodes in
        let cfg = { cfg with Experiment.protocol; seed } in
        let r = Experiment.run cfg in
        [
          label;
          Printf.sprintf "%.2f" r.Experiment.msgs_per_op;
          Printf.sprintf "%.2f" r.Experiment.msgs_per_lock_request;
          Printf.sprintf "%.1f" r.Experiment.latency_factor;
          Printf.sprintf "%.1f" r.Experiment.p95_latency_ms;
        ])
      variants
  in
  Printf.sprintf "Ablations (hierarchical driver, %d nodes, airline workload)\n%s" nodes
    (Dcs_stats.Table.render
       ~header:[ "variant"; "msg/op"; "msg/lockreq"; "latency factor"; "p95 ms" ]
       rows)

let topology_study ?(nodes = 32) ?(seed = 42L) () =
  let variants =
    [
      ("uniform LAN", Dcs_sim.Topology.uniform);
      ("2 racks, remote x4", Dcs_sim.Topology.racks ~rack_size:(max 1 (nodes / 2)) ~remote_factor:4.0);
      ("4 racks, remote x4", Dcs_sim.Topology.racks ~rack_size:(max 1 (nodes / 4)) ~remote_factor:4.0);
      ("star around node 0", Dcs_sim.Topology.star ~hub:0 ~spoke_factor:4.0);
    ]
  in
  let rows =
    List.map
      (fun (label, topology) ->
        let cfg = Experiment.default_config ~driver:Experiment.Hierarchical ~nodes in
        let cfg = { cfg with Experiment.topology; seed } in
        let r = Experiment.run cfg in
        [
          label;
          Printf.sprintf "%.2f" r.Experiment.msgs_per_op;
          Printf.sprintf "%.1f" r.Experiment.mean_latency_ms;
          Printf.sprintf "%.1f" r.Experiment.p95_latency_ms;
        ])
      variants
  in
  Printf.sprintf
    "Topology study (hierarchical driver, %d nodes; latency factors scale the base 150 ms)
%s"
    nodes
    (Dcs_stats.Table.render ~header:[ "topology"; "msg/op"; "mean ms"; "p95 ms" ] rows)

let entries_study ?(nodes = 48) ?(sizes = [ 3; 5; 10; 20 ]) ?(seed = 42L) () =
  (* The paper never states its table size; this sweep shows how it moves
     the Naimi same-work comparison while leaving the hierarchical
     protocol's costs nearly flat. *)
  let rows =
    List.concat_map
      (fun entries ->
        List.map
          (fun driver ->
            let cfg = Experiment.default_config ~driver ~nodes in
            let workload = { cfg.Experiment.workload with Dcs_workload.Airline.entries } in
            let r = Experiment.run { cfg with Experiment.workload; seed } in
            [
              string_of_int entries;
              Experiment.driver_to_string driver;
              Printf.sprintf "%.2f" r.Experiment.msgs_per_op;
              Printf.sprintf "%.1f" r.Experiment.latency_factor;
            ])
          Experiment.[ Hierarchical; Naimi_same_work ])
      sizes
  in
  Printf.sprintf
    "Table-size sensitivity (%d nodes): the paper omits its table size; the same-work
     baseline pays for it linearly while the hierarchical protocol does not.
%s"
    nodes
    (Dcs_stats.Table.render ~header:[ "entries"; "driver"; "msg/op"; "latency factor" ] rows)

(* Mean and standard deviation over seeds for the headline metrics. *)
let seed_variance ?(nodes = [ 16; 48; 96 ]) ?(seeds = [ 1L; 7L; 42L; 99L; 1234L ]) () =
  let rows =
    List.concat_map
      (fun driver ->
        List.map
          (fun n ->
            let msgs = Dcs_stats.Summary.create () and lat = Dcs_stats.Summary.create () in
            List.iter
              (fun seed ->
                let cfg = Experiment.default_config ~driver ~nodes:n in
                let r = Experiment.run { cfg with Experiment.seed } in
                Dcs_stats.Summary.add msgs r.Experiment.msgs_per_lock_request;
                Dcs_stats.Summary.add lat r.Experiment.latency_factor)
              seeds;
            [
              Experiment.driver_to_string driver;
              string_of_int n;
              Printf.sprintf "%.2f ± %.2f" (Dcs_stats.Summary.mean msgs) (Dcs_stats.Summary.stddev msgs);
              Printf.sprintf "%.1f ± %.1f" (Dcs_stats.Summary.mean lat) (Dcs_stats.Summary.stddev lat);
            ])
          nodes)
      drivers
  in
  Printf.sprintf "Seed variance over %d seeds (mean ± sd)
%s" (List.length seeds)
    (Dcs_stats.Table.render
       ~header:[ "driver"; "nodes"; "msg/lockreq"; "latency factor" ]
       rows)

let to_csv series_list =
  let rows =
    List.concat_map
      (fun s ->
        List.map
          (fun p ->
            [
              Experiment.driver_to_string s.driver;
              string_of_int p.nodes;
              Printf.sprintf "%.4f" p.msgs_per_op;
              Printf.sprintf "%.4f" p.msgs_per_lock_request;
              Printf.sprintf "%.4f" p.latency_factor;
            ])
          s.points)
      series_list
  in
  Dcs_stats.Table.csv
    ~header:[ "driver"; "nodes"; "msgs_per_op"; "msgs_per_lockreq"; "latency_factor" ]
    rows
