module Node = Dcs_hlock.Node
module Codec = Dcs_wire.Codec
module Buf = Dcs_wire.Buf
module Metrics = Dcs_obs.Metrics
module Mode = Dcs_modes.Mode

let src_log = Logs.Src.create "dcs.netkit" ~doc:"TCP cluster runner"

module Log = (val Logs.src_log src_log : Logs.LOG)

type outbound = {
  mutable queue : Codec.envelope Queue.t;  (* unencoded; the writer thread encodes *)
  mutable alive : bool;
  cond : Condition.t;
}

type t = {
  config : Cluster_config.t;
  self : int;
  (* Striped engine locks: one mutex per lock object, so independent lock
     engines dispatch concurrently instead of serializing on one global
     mutex. Each stripe also guards that lock's callback tables. *)
  stripes : Mutex.t array;
  mutable nodes : Node.t array;  (* one engine per lock *)
  granted_cbs : (int, unit -> unit) Hashtbl.t array;  (* per lock, seq-keyed *)
  granted_fired : (int, unit) Hashtbl.t array;
  upgraded_cbs : (int, unit -> unit) Hashtbl.t array;
  upgraded_fired : (int, unit) Hashtbl.t array;
  counters : Dcs_proto.Counters.t;
  counters_lock : Mutex.t;
  outbounds : (int, outbound) Hashtbl.t;  (* peer id -> writer state *)
  outbound_lock : Mutex.t;
  kick_interval : float;
  telemetry : Dcs_obs.Shard.t option;
  (* Live transport metrics ({!Dcs_obs.Metrics}): the handles are looked
     up once here so hot-path updates are a single atomic op. *)
  metrics : Metrics.t;
  m_frames_sent : Metrics.counter;
  m_bytes_sent : Metrics.counter;
  m_batches : Metrics.counter;
  m_partial_requeues : Metrics.counter;
  m_connects : Metrics.counter;
  m_reconnects : Metrics.counter;
  m_connect_retries : Metrics.counter;
  m_dropped : Metrics.counter;
  m_decode_errors : Metrics.counter;
  m_frames_received : Metrics.counter;
  m_bytes_received : Metrics.counter;
  m_backoff : Metrics.gauge;
  m_queue_depth : Metrics.gauge;
  m_grants : Metrics.counter array;  (* per Mode.index *)
  m_upgrades : Metrics.counter;
  mutable listener : Unix.file_descr option;
  mutable running : bool;
  mutable threads : Thread.t list;
}

let id t = t.self

let counters t = t.counters

let metrics t = t.metrics

type stats = {
  frames_sent : int;
  bytes_sent : int;
  batches : int;
  partial_requeues : int;
  connects : int;
  reconnects : int;
  connect_retries : int;
  backoff_ms : float;
  queued_frames : int;
  dropped_frames : int;
  decode_errors : int;
  frames_received : int;
  bytes_received : int;
}

let queued_frames t =
  Mutex.lock t.outbound_lock;
  let n = Hashtbl.fold (fun _ out acc -> acc + Queue.length out.queue) t.outbounds 0 in
  Mutex.unlock t.outbound_lock;
  n

let stats t =
  {
    frames_sent = Metrics.value t.m_frames_sent;
    bytes_sent = Metrics.value t.m_bytes_sent;
    batches = Metrics.value t.m_batches;
    partial_requeues = Metrics.value t.m_partial_requeues;
    connects = Metrics.value t.m_connects;
    reconnects = Metrics.value t.m_reconnects;
    connect_retries = Metrics.value t.m_connect_retries;
    backoff_ms = Metrics.gauge_value t.m_backoff;
    queued_frames = queued_frames t;
    dropped_frames = Metrics.value t.m_dropped;
    decode_errors = Metrics.value t.m_decode_errors;
    frames_received = Metrics.value t.m_frames_received;
    bytes_received = Metrics.value t.m_bytes_received;
  }

(* The span id a wire message belongs to, if it carries one. Release and
   Freeze messages are span-less bookkeeping. *)
let span_of_msg (msg : Dcs_hlock.Msg.t) =
  match msg with
  | Request r -> Some (r.requester, r.seq)
  | Grant { req; _ } -> Some (req.requester, req.seq)
  | Token { serving; _ } -> Some (serving.requester, serving.seq)
  | Release _ | Freeze _ -> None

(* Shard accounting for one frame that fully reached the kernel:
   per-class count/bytes, plus a Sent span event for causal alignment. *)
let record_written t ~dst (env : Codec.envelope) ~payload_bytes =
  match t.telemetry with
  | None -> ()
  | Some sh -> (
      match env.Codec.payload with
      | Codec.Hlock msg -> (
          let cls = Dcs_hlock.Msg.class_of msg in
          Dcs_obs.Shard.message sh ~cls ~bytes:payload_bytes;
          match span_of_msg msg with
          | Some (requester, seq) ->
              Dcs_obs.Shard.event sh ~lock:env.Codec.lock ~node:t.self
                (Dcs_obs.Event.Span { requester; seq })
                (Dcs_obs.Event.Sent { cls; dst })
          | None -> ())
      | Codec.Naimi _ | Codec.Shard _ -> ())

(* {1 Outbound connections: one writer thread per peer}

   Frames queue as unencoded envelopes; the writer thread drains the
   whole queue under one lock acquisition, encodes everything into one
   reusable flat buffer (4-byte big-endian length prefix per frame,
   frames back to back) and flushes the batch with a single write. On a
   write failure every frame the kernel did not fully accept is requeued
   in order and the connection is re-established with capped exponential
   backoff — frames are only ever dropped at shutdown, and then the
   exact count is logged. *)

let max_batch_bytes = 256 * 1024

(* Write [len] bytes, reporting partial progress on failure so the
   caller knows which whole frames the kernel accepted. *)
let write_all fd buf len =
  let off = ref 0 in
  try
    while !off < len do
      let k = Unix.write fd buf !off (len - !off) in
      off := !off + k
    done;
    Ok ()
  with e -> Error (!off, e)

let writer_loop t peer_id out =
  let peer = Cluster_config.peer t.config peer_id in
  let wbuf = Buf.writer ~capacity:8192 () in
  let drained = Queue.create () in  (* drained from out.queue, not yet on the wire *)
  let connected_before = ref false in
  let connect () =
    (* Retry while the runner lives: outbound frames wait in the queue
       instead of being dropped. *)
    let rec go delay attempts =
      if not (out.alive && t.running) then None
      else
        match
          let addr = Unix.ADDR_INET (Unix.inet_addr_of_string peer.host, peer.port) in
          let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
          (try
             Unix.setsockopt sock Unix.TCP_NODELAY true;
             Unix.connect sock addr;
             sock
           with e ->
             (try Unix.close sock with _ -> ());
             raise e)
        with
        | sock ->
            Metrics.incr t.m_connects;
            if !connected_before then Metrics.incr t.m_reconnects;
            connected_before := true;
            Metrics.set t.m_backoff 0.0;
            Some sock
        | exception _ ->
            Metrics.incr t.m_connect_retries;
            Metrics.set t.m_backoff (delay *. 1000.0);
            if attempts > 0 && attempts mod 50 = 0 then
              Log.warn (fun m ->
                  m "writer to %d: still unreachable after %d attempts" peer_id attempts);
            Thread.delay delay;
            go (Float.min 1.0 (delay *. 1.5)) (attempts + 1)
    in
    go 0.05 0
  in
  (* Put [envs] (oldest first) back ahead of everything still pending. *)
  let requeue envs =
    let q = Queue.create () in
    List.iter (fun e -> Queue.push e q) envs;
    Queue.transfer drained q;
    Queue.transfer q drained
  in
  let rec session () =
    match connect () with
    | None ->
        Mutex.lock t.outbound_lock;
        let dropped = Queue.length drained + Queue.length out.queue in
        Mutex.unlock t.outbound_lock;
        if dropped > 0 then begin
          Metrics.add t.m_dropped dropped;
          Log.err (fun m -> m "writer to %d: shut down with %d frame(s) unsent" peer_id dropped)
        end
    | Some fd -> pump fd
  and pump fd =
    if Queue.is_empty drained then begin
      Mutex.lock t.outbound_lock;
      while Queue.is_empty out.queue && out.alive do
        Condition.wait out.cond t.outbound_lock
      done;
      (* Batch drain: the whole outbound queue, one lock acquisition. *)
      Queue.transfer out.queue drained;
      Mutex.unlock t.outbound_lock
    end;
    if not out.alive then begin
      (try Unix.close fd with _ -> ());
      session ()  (* resolves to the shutdown branch; logs any drops *)
    end
    else begin
      Buf.reset wbuf;
      let batch = ref [] in  (* (envelope, end offset in wbuf), newest first *)
      while (not (Queue.is_empty drained)) && Buf.length wbuf < max_batch_bytes do
        let env = Queue.pop drained in
        let at = Buf.length wbuf in
        Buf.u32_be wbuf 0;
        Codec.write_envelope wbuf env;
        Buf.patch_u32_be wbuf ~at (Buf.length wbuf - at - 4);
        batch := (env, Buf.length wbuf) :: !batch
      done;
      (* Account frames the kernel fully accepted (all of them on Ok; the
         prefix up to [written] on a partial write). Per-frame payload size
         falls out of consecutive end offsets minus the 4-byte prefix. *)
      let account written frames =
        Metrics.incr t.m_batches;
        let sent, bytes =
          List.fold_left
            (fun (n, start) ((env : Codec.envelope), fin) ->
              if fin <= written then begin
                record_written t ~dst:peer_id env ~payload_bytes:(fin - start - 4);
                (n + 1, fin)
              end
              else (n, start))
            (0, 0) frames
        in
        Metrics.add t.m_frames_sent sent;
        Metrics.add t.m_bytes_sent bytes
      in
      match write_all fd (Buf.unsafe_bytes wbuf) (Buf.length wbuf) with
      | Ok () ->
          account (Buf.length wbuf) (List.rev !batch);
          pump fd
      | Error (written, e) ->
          account written (List.rev !batch);
          Metrics.incr t.m_partial_requeues;
          let unsent = List.rev (List.filter (fun (_, fin) -> fin > written) !batch) in
          requeue (List.map fst unsent);
          Log.err (fun m ->
              m "writer to %d: write failed after %d bytes (%s); requeued %d frame(s), reconnecting"
                peer_id written (Printexc.to_string e) (List.length unsent));
          (try Unix.close fd with _ -> ());
          session ()
    end
  in
  session ()

let outbound_for t peer_id =
  Mutex.lock t.outbound_lock;
  let out =
    match Hashtbl.find_opt t.outbounds peer_id with
    | Some out when out.alive -> out
    | _ ->
        let out = { queue = Queue.create (); alive = true; cond = Condition.create () } in
        Hashtbl.replace t.outbounds peer_id out;
        let th = Thread.create (fun () -> writer_loop t peer_id out) () in
        t.threads <- th :: t.threads;
        out
  in
  Mutex.unlock t.outbound_lock;
  out

let send_env t ~dst env =
  if dst = t.self then Log.err (fun m -> m "dropping self-addressed frame")
  else begin
    let out = outbound_for t dst in
    Mutex.lock t.outbound_lock;
    Queue.push env out.queue;
    Condition.signal out.cond;
    Mutex.unlock t.outbound_lock
  end

(* {1 Node construction} *)

let create ?(protocol = Node.default_config) ?(kick_interval = 1.0) ?telemetry ~config ~self () =
  let n = Cluster_config.size config in
  if self < 0 || self >= n then invalid_arg "Runner.create: self out of range";
  if kick_interval <= 0.0 then invalid_arg "Runner.create: kick_interval must be positive";
  let locks = config.Cluster_config.locks in
  let metrics = Metrics.create () in
  let c name = Metrics.counter metrics name and g name = Metrics.gauge metrics name in
  let t =
    {
      config;
      self;
      stripes = Array.init locks (fun _ -> Mutex.create ());
      nodes = [||];
      granted_cbs = Array.init locks (fun _ -> Hashtbl.create 32);
      granted_fired = Array.init locks (fun _ -> Hashtbl.create 32);
      upgraded_cbs = Array.init locks (fun _ -> Hashtbl.create 8);
      upgraded_fired = Array.init locks (fun _ -> Hashtbl.create 8);
      counters = Dcs_proto.Counters.create ();
      counters_lock = Mutex.create ();
      outbounds = Hashtbl.create 8;
      outbound_lock = Mutex.create ();
      kick_interval;
      telemetry;
      metrics;
      m_frames_sent = c "net.frames_sent";
      m_bytes_sent = c "net.bytes_sent";
      m_batches = c "net.batches";
      m_partial_requeues = c "net.partial_requeues";
      m_connects = c "net.connects";
      m_reconnects = c "net.reconnects";
      m_connect_retries = c "net.connect_retries";
      m_dropped = c "net.dropped_frames";
      m_decode_errors = c "net.decode_errors";
      m_frames_received = c "net.frames_received";
      m_bytes_received = c "net.bytes_received";
      m_backoff = g "net.backoff_ms";
      m_queue_depth = g "net.outbound_queue_depth";
      m_grants =
        Array.of_list (List.map (fun m -> c ("grants." ^ Mode.to_string m)) Mode.all);
      m_upgrades = c "grants.upgrades";
      listener = None;
      running = false;
      threads = [];
    }
  in
  let nodes =
    Array.init locks (fun lock ->
        let send ~dst msg =
          (* Counters are shared across stripes; guard the increment. *)
          Mutex.lock t.counters_lock;
          Dcs_proto.Counters.incr t.counters (Dcs_hlock.Msg.class_of msg);
          Mutex.unlock t.counters_lock;
          send_env t ~dst { Codec.src = self; lock; payload = Codec.Hlock msg }
        in
        let on_granted (r : Dcs_hlock.Msg.request) =
          match Hashtbl.find_opt t.granted_cbs.(lock) r.seq with
          | Some cb ->
              Hashtbl.remove t.granted_cbs.(lock) r.seq;
              cb ()
          | None -> Hashtbl.replace t.granted_fired.(lock) r.seq ()
        in
        let on_upgraded seq =
          match Hashtbl.find_opt t.upgraded_cbs.(lock) seq with
          | Some cb ->
              Hashtbl.remove t.upgraded_cbs.(lock) seq;
              cb ()
          | None -> Hashtbl.replace t.upgraded_fired.(lock) seq ()
        in
        (* Engine lifecycle hook: grant-mix counters always (the analyzer
           cross-checks them against merged spans), full event stream to
           the shard when one is attached. *)
        let obs scope kind =
          (match kind with
          | Dcs_obs.Event.Granted_local { mode; _ } | Dcs_obs.Event.Granted_token { mode; _ } ->
              Metrics.incr t.m_grants.(Mode.index mode)
          | Dcs_obs.Event.Upgraded -> Metrics.incr t.m_upgrades
          | _ -> ());
          match t.telemetry with
          | Some sh -> Dcs_obs.Shard.event sh ~lock ~node:self scope kind
          | None -> ()
        in
        Node.create ~config:protocol ~obs ~id:self ~peers:n ~is_token:(self = 0)
          ~parent:(if self = 0 then None else Some 0)
          ~send ~on_granted ~on_upgraded ())
  in
  t.nodes <- nodes;
  t

(* {1 Inbound} *)

let dispatch t (env : Codec.envelope) =
  match env.Codec.payload with
  | Codec.Hlock msg ->
      let lock = env.Codec.lock in
      if lock < 0 || lock >= Array.length t.nodes then
        Log.err (fun m -> m "message for unknown lock %d" lock)
      else begin
        let node = t.nodes.(lock) in
        Mutex.lock t.stripes.(lock);
        (try
           Node.with_send_batch node (fun () -> Node.handle_msg node ~src:env.Codec.src msg)
         with e -> Log.err (fun m -> m "handler raised: %s" (Printexc.to_string e)));
        Mutex.unlock t.stripes.(lock)
      end
  | Codec.Naimi _ -> Log.err (fun m -> m "unexpected Naimi payload")
  | Codec.Shard _ -> Log.err (fun m -> m "unexpected Shard payload")

(* Raw-socket framing (no buffered channels): read exactly [n] bytes. *)
let really_read fd buf n =
  let rec go off =
    if off < n then begin
      let k = Unix.read fd buf off (n - off) in
      if k = 0 then raise End_of_file;
      go (off + k)
    end
  in
  go 0

let reader_loop t fd =
  let header = Bytes.create 4 in
  (* One reusable inbound buffer per connection, grown to the largest
     frame seen; frames decode in place, no per-frame [Bytes.to_string]. *)
  let body = ref (Bytes.create 4096) in
  let rec go () =
    match really_read fd header 4 with
    | exception End_of_file -> ()
    | exception _ -> ()
    | () ->
        let len =
          (Char.code (Bytes.get header 0) lsl 24)
          lor (Char.code (Bytes.get header 1) lsl 16)
          lor (Char.code (Bytes.get header 2) lsl 8)
          lor Char.code (Bytes.get header 3)
        in
        if len > Codec.max_frame then begin
          Metrics.incr t.m_decode_errors;
          Log.err (fun m -> m "oversized frame (%d bytes)" len)
        end
        else begin
          if Bytes.length !body < len then begin
            let cap = ref (2 * Bytes.length !body) in
            while !cap < len do
              cap := 2 * !cap
            done;
            body := Bytes.create !cap
          end;
          match really_read fd !body len with
          | exception _ -> ()
          | () -> (
              match Codec.decode_sub !body ~off:0 ~len with
              | env ->
                  Metrics.incr t.m_frames_received;
                  Metrics.add t.m_bytes_received len;
                  (* The Received event must precede the events dispatch
                     produces, so the span's merged timeline orders the
                     arrival before its consequences. *)
                  (match t.telemetry with
                  | Some sh -> (
                      match env.Codec.payload with
                      | Codec.Hlock msg -> (
                          match span_of_msg msg with
                          | Some (requester, seq) ->
                              Dcs_obs.Shard.event sh ~lock:env.Codec.lock ~node:t.self
                                (Dcs_obs.Event.Span { requester; seq })
                                (Dcs_obs.Event.Received
                                   { cls = Dcs_hlock.Msg.class_of msg; src = env.Codec.src })
                          | None -> ())
                      | Codec.Naimi _ | Codec.Shard _ -> ())
                  | None -> ());
                  dispatch t env;
                  go ()
              | exception Dcs_wire.Buf.Malformed reason ->
                  Metrics.incr t.m_decode_errors;
                  Log.err (fun m -> m "malformed frame: %s" reason))
        end
  in
  go ()

let accept_loop t sock =
  while t.running do
    match Unix.accept sock with
    | conn, _ ->
        let th = Thread.create (fun () -> reader_loop t conn) () in
        t.threads <- th :: t.threads
    | exception _ -> ()
  done

let kick_loop t =
  while t.running do
    Thread.delay t.kick_interval;
    Array.iteri
      (fun lock node ->
        Mutex.lock t.stripes.(lock);
        Node.with_send_batch node (fun () -> Node.kick node);
        Mutex.unlock t.stripes.(lock))
      t.nodes;
    Metrics.set t.m_queue_depth (float_of_int (queued_frames t));
    match t.telemetry with Some sh -> Dcs_obs.Shard.snapshot sh t.metrics | None -> ()
  done

let start t =
  if t.running then ()
  else begin
    t.running <- true;
    (* A peer that dies between our connect and our write would otherwise
       kill the whole process with SIGPIPE; the writer loop turns the
       resulting EPIPE into a requeue-and-reconnect. *)
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    let me = Cluster_config.peer t.config t.self in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string me.Cluster_config.host, me.Cluster_config.port));
    Unix.listen sock 64;
    t.listener <- Some sock;
    t.threads <- Thread.create (fun () -> accept_loop t sock) () :: t.threads;
    t.threads <- Thread.create (fun () -> kick_loop t) () :: t.threads
  end

(* Startup barrier: probe every peer's listen port until it accepts. A
   successful connect is closed straight away — the peer's reader thread
   just sees EOF — so this only proves the socket is bound, which is all
   the first request storm needs (writer threads retry the real
   connections themselves). *)
let await_peers ?(timeout = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let probe peer =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with _ -> ())
      (fun () ->
        match
          Unix.connect sock
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string peer.Cluster_config.host, peer.Cluster_config.port))
        with
        | () -> true
        | exception _ -> false)
  in
  let rec wait_for pending =
    let pending = List.filter (fun p -> not (probe p)) pending in
    match pending with
    | [] -> Ok ()
    | _ when Unix.gettimeofday () >= deadline ->
        Error
          (Printf.sprintf "await_peers: %s unreachable after %.1fs"
             (String.concat ", "
                (List.map (fun p -> Printf.sprintf "node %d" p.Cluster_config.id) pending))
             timeout)
    | _ ->
        Thread.delay 0.05;
        wait_for pending
  in
  wait_for (List.filter (fun p -> p.Cluster_config.id <> t.self) t.config.Cluster_config.peers)

let stop t =
  if t.running then begin
    t.running <- false;
    (match t.listener with
    | Some sock -> ( try Unix.close sock with _ -> ())
    | None -> ());
    t.listener <- None;
    Mutex.lock t.outbound_lock;
    Hashtbl.iter
      (fun _ out ->
        out.alive <- false;
        Condition.broadcast out.cond)
      t.outbounds;
    Mutex.unlock t.outbound_lock;
    (* Closing shard lines: a final metrics snapshot, the per-class frame
       accounting, and the authoritative queued-message counters the
       analyzer cross-checks against. The creator still owns the shard
       and closes it. *)
    match t.telemetry with
    | Some sh ->
        Metrics.set t.m_queue_depth (float_of_int (queued_frames t));
        Dcs_obs.Shard.snapshot sh t.metrics;
        Dcs_obs.Shard.write_msgs sh;
        Dcs_obs.Shard.write_counters sh (Dcs_proto.Counters.to_list t.counters)
    | None -> ()
  end

(* {1 Client API} *)

let request ?priority t ~lock ~mode ~on_granted =
  Mutex.lock t.stripes.(lock);
  let node = t.nodes.(lock) in
  let seq = Node.with_send_batch node (fun () -> Node.request ?priority node ~mode) in
  (if Hashtbl.mem t.granted_fired.(lock) seq then begin
     Hashtbl.remove t.granted_fired.(lock) seq;
     on_granted ()
   end
   else Hashtbl.replace t.granted_cbs.(lock) seq on_granted);
  Mutex.unlock t.stripes.(lock);
  seq

let release t ~lock ~seq =
  Mutex.lock t.stripes.(lock);
  let node = t.nodes.(lock) in
  (try Node.with_send_batch node (fun () -> Node.release node ~seq)
   with e ->
     Mutex.unlock t.stripes.(lock);
     raise e);
  Mutex.unlock t.stripes.(lock)

let upgrade t ~lock ~seq ~on_upgraded =
  Mutex.lock t.stripes.(lock);
  let node = t.nodes.(lock) in
  (try
     Node.with_send_batch node (fun () -> Node.upgrade node ~seq);
     if Hashtbl.mem t.upgraded_fired.(lock) seq then begin
       Hashtbl.remove t.upgraded_fired.(lock) seq;
       on_upgraded ()
     end
     else Hashtbl.replace t.upgraded_cbs.(lock) seq on_upgraded
   with e ->
     Mutex.unlock t.stripes.(lock);
     raise e);
  Mutex.unlock t.stripes.(lock)

(* Blocking wrappers: a tiny one-shot latch. The grant callback may run on
   a reader thread (under the lock's stripe mutex) or synchronously in
   [request]; it only flips the latch, so holding the mutex is fine. *)
let request_sync ?priority t ~lock ~mode =
  let m = Mutex.create () and c = Condition.create () and done_ = ref false in
  let seq =
    request ?priority t ~lock ~mode ~on_granted:(fun () ->
        Mutex.lock m;
        done_ := true;
        Condition.signal c;
        Mutex.unlock m)
  in
  Mutex.lock m;
  while not !done_ do
    Condition.wait c m
  done;
  Mutex.unlock m;
  seq

let upgrade_sync t ~lock ~seq =
  let m = Mutex.create () and c = Condition.create () and done_ = ref false in
  upgrade t ~lock ~seq ~on_upgraded:(fun () ->
      Mutex.lock m;
      done_ := true;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while not !done_ do
    Condition.wait c m
  done;
  Mutex.unlock m
