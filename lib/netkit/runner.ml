module Node = Dcs_hlock.Node
module Codec = Dcs_wire.Codec

let src_log = Logs.Src.create "dcs.netkit" ~doc:"TCP cluster runner"

module Log = (val Logs.src_log src_log : Logs.LOG)

type outbound = {
  queue : string Queue.t;  (* encoded frames, body only *)
  mutable alive : bool;
  cond : Condition.t;
}

type t = {
  config : Cluster_config.t;
  self : int;
  state : Mutex.t;  (* guards nodes, callback tables *)
  mutable nodes : Node.t array;  (* one engine per lock *)
  granted_cbs : (int * int, unit -> unit) Hashtbl.t;  (* (lock, seq) *)
  granted_fired : (int * int, unit) Hashtbl.t;
  upgraded_cbs : (int * int, unit -> unit) Hashtbl.t;
  upgraded_fired : (int * int, unit) Hashtbl.t;
  counters : Dcs_proto.Counters.t;
  outbounds : (int, outbound) Hashtbl.t;  (* peer id -> writer state *)
  outbound_lock : Mutex.t;
  mutable listener : Unix.file_descr option;
  mutable running : bool;
  mutable threads : Thread.t list;
}

let id t = t.self

let counters t = t.counters

(* {1 Outbound connections: one writer thread per peer} *)

let writer_loop t peer_id out =
  let peer = Cluster_config.peer t.config peer_id in
  let rec connect attempts =
    if not out.alive then None
    else
      try
        let addr = Unix.ADDR_INET (Unix.inet_addr_of_string peer.host, peer.port) in
        let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        Unix.setsockopt sock Unix.TCP_NODELAY true;
        Unix.connect sock addr;
        Some sock
      with _ ->
        if attempts > 100 then None
        else begin
          Thread.delay 0.1;
          connect (attempts + 1)
        end
  in
  match connect 0 with
  | None -> Log.err (fun m -> m "writer to %d: could not connect" peer_id)
  | Some fd ->
      let really_write buf =
        let n = Bytes.length buf in
        let rec go off =
          if off < n then begin
            let k = Unix.write fd buf off (n - off) in
            go (off + k)
          end
        in
        go 0
      in
      let rec pump () =
        Mutex.lock t.outbound_lock;
        while Queue.is_empty out.queue && out.alive do
          Condition.wait out.cond t.outbound_lock
        done;
        if not out.alive then begin
          Mutex.unlock t.outbound_lock;
          (try Unix.close fd with _ -> ())
        end
        else begin
          let body = Queue.pop out.queue in
          Mutex.unlock t.outbound_lock;
          (try
             let len = String.length body in
             let frame = Bytes.create (4 + len) in
             Bytes.set frame 0 (Char.chr ((len lsr 24) land 0xff));
             Bytes.set frame 1 (Char.chr ((len lsr 16) land 0xff));
             Bytes.set frame 2 (Char.chr ((len lsr 8) land 0xff));
             Bytes.set frame 3 (Char.chr (len land 0xff));
             Bytes.blit_string body 0 frame 4 len;
             really_write frame
           with e ->
             Log.err (fun m -> m "writer to %d: write failed: %s" peer_id (Printexc.to_string e));
             out.alive <- false);
          pump ()
        end
      in
      pump ()

let outbound_for t peer_id =
  Mutex.lock t.outbound_lock;
  let out =
    match Hashtbl.find_opt t.outbounds peer_id with
    | Some out when out.alive -> out
    | _ ->
        let out = { queue = Queue.create (); alive = true; cond = Condition.create () } in
        Hashtbl.replace t.outbounds peer_id out;
        let th = Thread.create (fun () -> writer_loop t peer_id out) () in
        t.threads <- th :: t.threads;
        out
  in
  Mutex.unlock t.outbound_lock;
  out

let send_frame t ~dst body =
  if dst = t.self then Log.err (fun m -> m "dropping self-addressed frame")
  else begin
    let out = outbound_for t dst in
    Mutex.lock t.outbound_lock;
    Queue.push body out.queue;
    Condition.signal out.cond;
    Mutex.unlock t.outbound_lock
  end

(* {1 Node construction} *)

let create ?(protocol = Node.default_config) ~config ~self () =
  let n = Cluster_config.size config in
  if self < 0 || self >= n then invalid_arg "Runner.create: self out of range";
  let t =
    {
      config;
      self;
      state = Mutex.create ();
      nodes = [||];
      granted_cbs = Hashtbl.create 32;
      granted_fired = Hashtbl.create 32;
      upgraded_cbs = Hashtbl.create 8;
      upgraded_fired = Hashtbl.create 8;
      counters = Dcs_proto.Counters.create ();
      outbounds = Hashtbl.create 8;
      outbound_lock = Mutex.create ();
      listener = None;
      running = false;
      threads = [];
    }
  in
  let nodes =
    Array.init config.Cluster_config.locks (fun lock ->
        let send ~dst msg =
          Dcs_proto.Counters.incr t.counters (Dcs_hlock.Msg.class_of msg);
          let body =
            Codec.encode { Codec.src = self; lock; payload = Codec.Hlock msg }
          in
          send_frame t ~dst body
        in
        let on_granted (r : Dcs_hlock.Msg.request) =
          let key = (lock, r.seq) in
          match Hashtbl.find_opt t.granted_cbs key with
          | Some cb ->
              Hashtbl.remove t.granted_cbs key;
              cb ()
          | None -> Hashtbl.replace t.granted_fired key ()
        in
        let on_upgraded seq =
          let key = (lock, seq) in
          match Hashtbl.find_opt t.upgraded_cbs key with
          | Some cb ->
              Hashtbl.remove t.upgraded_cbs key;
              cb ()
          | None -> Hashtbl.replace t.upgraded_fired key ()
        in
        Node.create ~config:protocol ~id:self ~peers:n ~is_token:(self = 0)
          ~parent:(if self = 0 then None else Some 0)
          ~send ~on_granted ~on_upgraded ())
  in
  t.nodes <- nodes;
  t

(* {1 Inbound} *)

let dispatch t (env : Codec.envelope) =
  match env.Codec.payload with
  | Codec.Hlock msg ->
      if env.Codec.lock < 0 || env.Codec.lock >= Array.length t.nodes then
        Log.err (fun m -> m "message for unknown lock %d" env.Codec.lock)
      else begin
        Mutex.lock t.state;
        (try Node.handle_msg t.nodes.(env.Codec.lock) ~src:env.Codec.src msg
         with e ->
           Log.err (fun m -> m "handler raised: %s" (Printexc.to_string e)));
        Mutex.unlock t.state
      end
  | Codec.Naimi _ -> Log.err (fun m -> m "unexpected Naimi payload")

(* Raw-socket framing (no buffered channels): read exactly [n] bytes. *)
let really_read fd buf n =
  let rec go off =
    if off < n then begin
      let k = Unix.read fd buf off (n - off) in
      if k = 0 then raise End_of_file;
      go (off + k)
    end
  in
  go 0

let reader_loop t fd =
  let header = Bytes.create 4 in
  let rec go () =
    match really_read fd header 4 with
    | exception End_of_file -> ()
    | exception _ -> ()
    | () ->
        let len =
          (Char.code (Bytes.get header 0) lsl 24)
          lor (Char.code (Bytes.get header 1) lsl 16)
          lor (Char.code (Bytes.get header 2) lsl 8)
          lor Char.code (Bytes.get header 3)
        in
        if len > Codec.max_frame then Log.err (fun m -> m "oversized frame (%d bytes)" len)
        else begin
          let body = Bytes.create len in
          match really_read fd body len with
          | exception _ -> ()
          | () -> (
              match Codec.decode (Bytes.to_string body) with
              | env ->
                  dispatch t env;
                  go ()
              | exception Dcs_wire.Buf.Malformed reason ->
                  Log.err (fun m -> m "malformed frame: %s" reason))
        end
  in
  go ()

let accept_loop t sock =
  while t.running do
    match Unix.accept sock with
    | conn, _ ->
        let th = Thread.create (fun () -> reader_loop t conn) () in
        t.threads <- th :: t.threads
    | exception _ -> ()
  done

let kick_loop t =
  while t.running do
    Thread.delay 1.0;
    Mutex.lock t.state;
    Array.iter Node.kick t.nodes;
    Mutex.unlock t.state
  done

let start t =
  if t.running then ()
  else begin
    t.running <- true;
    let me = Cluster_config.peer t.config t.self in
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt sock Unix.SO_REUSEADDR true;
    Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string me.Cluster_config.host, me.Cluster_config.port));
    Unix.listen sock 64;
    t.listener <- Some sock;
    t.threads <- Thread.create (fun () -> accept_loop t sock) () :: t.threads;
    t.threads <- Thread.create (fun () -> kick_loop t) () :: t.threads
  end

(* Startup barrier: probe every peer's listen port until it accepts. A
   successful connect is closed straight away — the peer's reader thread
   just sees EOF — so this only proves the socket is bound, which is all
   the first request storm needs (writer threads retry the real
   connections themselves). *)
let await_peers ?(timeout = 10.0) t =
  let deadline = Unix.gettimeofday () +. timeout in
  let probe peer =
    let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Fun.protect
      ~finally:(fun () -> try Unix.close sock with _ -> ())
      (fun () ->
        match
          Unix.connect sock
            (Unix.ADDR_INET
               (Unix.inet_addr_of_string peer.Cluster_config.host, peer.Cluster_config.port))
        with
        | () -> true
        | exception _ -> false)
  in
  let rec wait_for pending =
    let pending = List.filter (fun p -> not (probe p)) pending in
    match pending with
    | [] -> Ok ()
    | _ when Unix.gettimeofday () >= deadline ->
        Error
          (Printf.sprintf "await_peers: %s unreachable after %.1fs"
             (String.concat ", "
                (List.map (fun p -> Printf.sprintf "node %d" p.Cluster_config.id) pending))
             timeout)
    | _ ->
        Thread.delay 0.05;
        wait_for pending
  in
  wait_for (List.filter (fun p -> p.Cluster_config.id <> t.self) t.config.Cluster_config.peers)

let stop t =
  if t.running then begin
    t.running <- false;
    (match t.listener with
    | Some sock -> ( try Unix.close sock with _ -> ())
    | None -> ());
    t.listener <- None;
    Mutex.lock t.outbound_lock;
    Hashtbl.iter
      (fun _ out ->
        out.alive <- false;
        Condition.broadcast out.cond)
      t.outbounds;
    Mutex.unlock t.outbound_lock
  end

(* {1 Client API} *)

let request ?priority t ~lock ~mode ~on_granted =
  Mutex.lock t.state;
  let seq = Node.request ?priority t.nodes.(lock) ~mode in
  let key = (lock, seq) in
  (if Hashtbl.mem t.granted_fired key then begin
     Hashtbl.remove t.granted_fired key;
     on_granted ()
   end
   else Hashtbl.replace t.granted_cbs key on_granted);
  Mutex.unlock t.state;
  seq

let release t ~lock ~seq =
  Mutex.lock t.state;
  (try Node.release t.nodes.(lock) ~seq
   with e ->
     Mutex.unlock t.state;
     raise e);
  Mutex.unlock t.state

let upgrade t ~lock ~seq ~on_upgraded =
  Mutex.lock t.state;
  (try
     Node.upgrade t.nodes.(lock) ~seq;
     let key = (lock, seq) in
     if Hashtbl.mem t.upgraded_fired key then begin
       Hashtbl.remove t.upgraded_fired key;
       on_upgraded ()
     end
     else Hashtbl.replace t.upgraded_cbs key on_upgraded
   with e ->
     Mutex.unlock t.state;
     raise e);
  Mutex.unlock t.state

(* Blocking wrappers: a tiny one-shot latch. The grant callback may run on
   a reader thread (under the state mutex) or synchronously in [request];
   it only flips the latch, so holding the mutex is fine. *)
let request_sync ?priority t ~lock ~mode =
  let m = Mutex.create () and c = Condition.create () and done_ = ref false in
  let seq =
    request ?priority t ~lock ~mode ~on_granted:(fun () ->
        Mutex.lock m;
        done_ := true;
        Condition.signal c;
        Mutex.unlock m)
  in
  Mutex.lock m;
  while not !done_ do
    Condition.wait c m
  done;
  Mutex.unlock m;
  seq

let upgrade_sync t ~lock ~seq =
  let m = Mutex.create () and c = Condition.create () and done_ = ref false in
  upgrade t ~lock ~seq ~on_upgraded:(fun () ->
      Mutex.lock m;
      done_ := true;
      Condition.signal c;
      Mutex.unlock m);
  Mutex.lock m;
  while not !done_ do
    Condition.wait c m
  done;
  Mutex.unlock m
