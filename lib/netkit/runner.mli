(** One node of a real TCP-connected cluster, running the hierarchical
    protocol for every configured lock object.

    Threads: one listener (accept loop), one reader per inbound connection,
    one writer per outbound peer (so protocol handlers never block on
    sockets), and one watchdog running the custody kick. Protocol state is
    {e striped}: each lock object's engine (and its grant/upgrade callback
    tables) has its own mutex, so traffic for independent locks dispatches
    concurrently. Grant callbacks run while that lock's stripe mutex is
    held and must not block or re-enter the same lock synchronously from
    another thread.

    The wire path is allocation-conscious: outbound messages queue as
    unencoded envelopes and a per-peer writer thread drains the whole
    queue under one lock acquisition, encodes the batch back-to-back into
    one reusable flat buffer (each frame 4-byte big-endian length prefix +
    envelope) and hands it to the kernel in a single write. Inbound frames
    decode in place from a per-connection reusable buffer. Every protocol
    entry point runs inside {!Dcs_hlock.Node.with_send_batch}, so
    superseded upward Release/Freeze traffic coalesces before it is
    queued.

    Writer connections reconnect with capped exponential backoff; on a
    failed write, frames the kernel did not fully accept are requeued in
    order (a partially-written trailing frame is resent whole — the peer
    discards the truncated copy at end-of-stream). Frames are dropped only
    at {!stop}, and then the exact count is logged.

    The token for every lock starts at node 0 — start node 0 first, or let
    connection retries smooth over the startup order. *)

type t

(** Build a runner for [self] in [config]. Does not touch the network.
    [kick_interval] (seconds, default 1.0, must be positive) is the period
    of the custody-kick watchdog: lower it to the order of a few network
    round trips for latency-sensitive deployments, raise it to quiet
    idle clusters.

    [telemetry], when given, streams this node's [dcs-obs/2] shard: every
    engine lifecycle event, a [Sent]/[Received] transport event per
    span-carrying frame (the causal edges [dcs-trace analyze] aligns
    clocks with), per-class frame accounting, periodic {!Dcs_obs.Metrics}
    snapshots (each kick), and closing [msgs]/[counters] lines at {!stop}.
    The caller keeps ownership and closes the shard after {!stop}. *)
val create :
  ?protocol:Dcs_hlock.Node.config ->
  ?kick_interval:float ->
  ?telemetry:Dcs_obs.Shard.t ->
  config:Cluster_config.t ->
  self:int ->
  unit ->
  t

(** Bind the listen port and start the service threads. Ignores SIGPIPE
    process-wide (a dead peer must surface as a write error the runner
    can retry, not kill the process). *)
val start : t -> unit

(** Block until every peer's listen port accepts a TCP connection (the
    probe connections are closed immediately; peers see them as empty
    sessions). Call after {!start} and before issuing requests so the
    first message storm never races peer startup. [Error] names the peers
    still unreachable when [timeout] (seconds, default 10) expires. *)
val await_peers : ?timeout:float -> t -> (unit, string) result

(** Stop the threads and close every socket. Idempotent. *)
val stop : t -> unit

(** {1 Asynchronous API (callbacks run under the lock's stripe mutex)} *)

val request : ?priority:int -> t -> lock:int -> mode:Dcs_modes.Mode.t -> on_granted:(unit -> unit) -> int
val release : t -> lock:int -> seq:int -> unit
val upgrade : t -> lock:int -> seq:int -> on_upgraded:(unit -> unit) -> unit

(** {1 Blocking convenience wrappers} *)

(** Acquire and wait for the grant; returns the ticket. *)
val request_sync : ?priority:int -> t -> lock:int -> mode:Dcs_modes.Mode.t -> int

(** Upgrade a held [U] ticket to [W] and wait. *)
val upgrade_sync : t -> lock:int -> seq:int -> unit

(** Messages sent by this node so far, by class. *)
val counters : t -> Dcs_proto.Counters.t

(** This node's id. *)
val id : t -> int

(** {1 Runtime observability} *)

(** The live metrics registry ([net.*] transport counters and gauges,
    [grants.*] grant-mix counters). Shared with the telemetry shard's
    periodic snapshots. *)
val metrics : t -> Dcs_obs.Metrics.t

(** A point-in-time view of the transport, queryable while running — the
    stop-time log line is no longer the only way to see drops. *)
type stats = {
  frames_sent : int;  (** frames fully handed to the kernel *)
  bytes_sent : int;  (** wire bytes of those frames (prefix included) *)
  batches : int;  (** batched writes attempted *)
  partial_requeues : int;  (** failed writes that requeued unsent frames *)
  connects : int;  (** successful outbound connections *)
  reconnects : int;  (** connects that replaced an earlier session *)
  connect_retries : int;  (** failed connection attempts *)
  backoff_ms : float;  (** current reconnect backoff (0 when connected) *)
  queued_frames : int;  (** frames waiting in outbound queues now *)
  dropped_frames : int;  (** frames abandoned at shutdown *)
  decode_errors : int;  (** malformed or oversized inbound frames *)
  frames_received : int;
  bytes_received : int;  (** payload bytes decoded *)
}

val stats : t -> stats
