(** One node of a real TCP-connected cluster, running the hierarchical
    protocol for every configured lock object.

    Threads: one listener (accept loop), one reader per inbound connection,
    one writer per outbound peer (so protocol handlers never block on
    sockets), and one watchdog running the custody kick. All protocol
    state is guarded by a single mutex; grant callbacks run while it is
    held and must not block or re-enter synchronously from another thread.

    The token for every lock starts at node 0 — start node 0 first, or let
    connection retries smooth over the startup order. *)

type t

(** Build a runner for [self] in [config]. Does not touch the network. *)
val create : ?protocol:Dcs_hlock.Node.config -> config:Cluster_config.t -> self:int -> unit -> t

(** Bind the listen port and start the service threads. *)
val start : t -> unit

(** Block until every peer's listen port accepts a TCP connection (the
    probe connections are closed immediately; peers see them as empty
    sessions). Call after {!start} and before issuing requests so the
    first message storm never races peer startup. [Error] names the peers
    still unreachable when [timeout] (seconds, default 10) expires. *)
val await_peers : ?timeout:float -> t -> (unit, string) result

(** Stop the threads and close every socket. Idempotent. *)
val stop : t -> unit

(** {1 Asynchronous API (callbacks run under the state mutex)} *)

val request : ?priority:int -> t -> lock:int -> mode:Dcs_modes.Mode.t -> on_granted:(unit -> unit) -> int
val release : t -> lock:int -> seq:int -> unit
val upgrade : t -> lock:int -> seq:int -> on_upgraded:(unit -> unit) -> unit

(** {1 Blocking convenience wrappers} *)

(** Acquire and wait for the grant; returns the ticket. *)
val request_sync : ?priority:int -> t -> lock:int -> mode:Dcs_modes.Mode.t -> int

(** Upgrade a held [U] ticket to [W] and wait. *)
val upgrade_sync : t -> lock:int -> seq:int -> unit

(** Messages sent by this node so far, by class. *)
val counters : t -> Dcs_proto.Counters.t

(** This node's id. *)
val id : t -> int
