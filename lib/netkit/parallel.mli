(** Domain-based fan-out for independent simulation cells.

    Experiment sweeps are embarrassingly parallel: each cell (a node
    count × protocol × seed triple) builds its own engine, RNGs and node
    tables, so cells share no mutable state. [map] fans an array of such
    cells over OCaml 5 domains with dynamic work distribution (an atomic
    next-cell counter, so long cells do not straggle behind a static
    partition) and writes each result into the slot of its input index —
    the output is therefore independent of domain count and completion
    order. Combined with {!cell_seed}, a parallel sweep is bit-identical
    to the sequential one. *)

val default_jobs : unit -> int
(** Number of workers used when [?jobs] is omitted:
    [Domain.recommended_domain_count ()]. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ?jobs f cells] is [Array.map f cells], computed by [jobs]
    domains (the calling domain participates, so [jobs - 1] are
    spawned). [f] must be safe to run concurrently with itself on
    distinct cells. [jobs <= 1] runs sequentially in the calling domain
    with no spawns at all. If any application of [f] raises, the first
    exception (in completion order) is re-raised after all domains have
    joined; remaining cells may be skipped. *)

val cell_seed : base:int64 -> salt:int -> int64
(** Deterministic per-cell seed: a SplitMix64 mix of the sweep's [base]
    seed and the cell's [salt]. The salt must identify the cell
    semantically (e.g. driver index and node count), never by its
    position in a work queue, so that the derived seed — and hence the
    cell's whole simulation — does not depend on scheduling. Distinct
    salts give decorrelated streams even for adjacent base seeds. *)
