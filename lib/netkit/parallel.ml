let default_jobs () = Domain.recommended_domain_count ()

(* SplitMix64 (Steele et al., "Fast splittable pseudorandom number
   generators"): the golden-ratio increment spaces the salts along the
   stream, and the mix finalizer decorrelates neighbouring inputs. The
   same constants drive Dcs_sim.Rng; reusing them here keeps every seed
   in the system drawn from one family. *)
let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let cell_seed ~base ~salt =
  (* salt + 1 so that salt 0 still displaces the base seed. *)
  mix64 (Int64.add base (Int64.mul (Int64.of_int (salt + 1)) golden_gamma))

let map ?jobs f cells =
  let n = Array.length cells in
  let jobs =
    match jobs with Some j -> max 1 (min j n) | None -> max 1 (min (default_jobs ()) n)
  in
  if jobs <= 1 then Array.map f cells
  else begin
    (* Per-index result slots: no two domains ever write the same slot,
       and the array is only read after every domain has joined, so no
       synchronization beyond the join is needed. *)
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let failed = Atomic.make None in
    let worker () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then continue := false
        else
          match Atomic.get failed with
          | Some _ -> continue := false
          | None -> (
              match f cells.(i) with
              | v -> results.(i) <- Some v
              | exception e ->
                  (* Keep the first failure; losers of the race just stop. *)
                  ignore (Atomic.compare_and_set failed None (Some e));
                  continue := false)
      done
    in
    let domains = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (match Atomic.get failed with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end
