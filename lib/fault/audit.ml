open Dcs_modes

type lock_view = {
  lock : int;
  token_holders : int list;
  tokens_in_flight : int;
  held : (int * Mode.t) list;
  cached : (int * Mode.t) list;
  queued : int;
  pending : int;
}

type t = {
  engine : Dcs_sim.Engine.t;
  period : float;
  max_queued : int;
  max_violations : int;
  snapshot : unit -> lock_view list;
  live : unit -> bool;
  mutable samples : int;
  mutable violations : string list;  (* newest first *)
  mutable suppressed : int;
}

let add t fmt =
  Printf.ksprintf
    (fun s ->
      if List.length t.violations < t.max_violations then
        t.violations <- Printf.sprintf "[%.1f ms] %s" (Dcs_sim.Engine.now t.engine) s :: t.violations
      else t.suppressed <- t.suppressed + 1)
    fmt

let check_pairwise t ~lock ~what retained =
  let rec pairs = function
    | [] -> ()
    | (n1, m1) :: rest ->
        List.iter
          (fun (n2, m2) ->
            if not (Compat.compatible m1 m2) then
              add t "lock %d: incompatible %s modes n%d:%s vs n%d:%s" lock what n1
                (Mode.to_string m1) n2 (Mode.to_string m2))
          rest;
        pairs rest
  in
  pairs retained

let check_view t v =
  let tokens = List.length v.token_holders + v.tokens_in_flight in
  if tokens <> 1 then
    add t "lock %d: token multiplicity %d (holders [%s], %d in flight)" v.lock tokens
      (String.concat "," (List.map string_of_int v.token_holders))
      v.tokens_in_flight;
  check_pairwise t ~lock:v.lock ~what:"retained" (v.held @ v.cached);
  if t.max_queued > 0 && v.queued > t.max_queued then
    add t "lock %d: %d queued requests exceed the %d bound" v.lock v.queued t.max_queued

let check_now t =
  t.samples <- t.samples + 1;
  List.iter (check_view t) (t.snapshot ())

let create ~engine ?(period = 2000.0) ?(max_queued = 0) ?(max_violations = 32) ~snapshot
    ~live () =
  if period <= 0.0 then invalid_arg "Audit.create: period must be positive";
  let t =
    {
      engine;
      period;
      max_queued;
      max_violations;
      snapshot;
      live;
      samples = 0;
      violations = [];
      suppressed = 0;
    }
  in
  let rec loop () =
    Dcs_sim.Engine.schedule engine ~after:t.period (fun () ->
        if t.live () then begin
          check_now t;
          loop ()
        end)
  in
  loop ();
  t

let samples t = t.samples

let violations t =
  let vs = List.rev t.violations in
  if t.suppressed > 0 then vs @ [ Printf.sprintf "(%d more violations suppressed)" t.suppressed ]
  else vs
