open Dcs_proto

type stats = {
  data_sent : int;
  retransmits : int;
  acks : int;
  duplicates_dropped : int;
  buffered_out_of_order : int;
  max_unacked : int;
}

(* One directed pair src->dst: sender-side window state (lives at src) and
   receiver-side reassembly state (lives at dst). The shim is a global
   object in the simulation, so both halves share a record. *)
type chan = {
  src : Node_id.t;
  dst : Node_id.t;
  mutable next_seq : int;
  mutable unacked : (int * Msg_class.t * (unit -> string) * (int -> unit)) list;
      (* ascending seq; last component is the data-arrival continuation *)
  mutable timer_armed : bool;
  mutable rto_cur : float;
  mutable expected : int;  (* receiver: next in-order seq *)
  mutable buffer : (int * (unit -> unit)) list;  (* out-of-order, ascending *)
}

type t = {
  engine : Dcs_sim.Engine.t;
  below : Link.send;
  rto : float;
  max_rto : float;
  chans : (Node_id.t * Node_id.t, chan) Hashtbl.t;
  mutable data_sent : int;
  mutable retransmits : int;
  mutable acks : int;
  mutable duplicates_dropped : int;
  mutable buffered_out_of_order : int;
  mutable max_unacked : int;
}

let create ~engine ?(rto = 600.0) ?max_rto ~below () =
  if rto <= 0.0 then invalid_arg "Reliable.create: rto must be positive";
  {
    engine;
    below;
    rto;
    max_rto = (match max_rto with Some m -> m | None -> 8.0 *. rto);
    chans = Hashtbl.create 64;
    data_sent = 0;
    retransmits = 0;
    acks = 0;
    duplicates_dropped = 0;
    buffered_out_of_order = 0;
    max_unacked = 0;
  }

let chan t ~src ~dst =
  match Hashtbl.find_opt t.chans (src, dst) with
  | Some ch -> ch
  | None ->
      let ch =
        {
          src;
          dst;
          next_seq = 0;
          unacked = [];
          timer_armed = false;
          rto_cur = t.rto;
          expected = 0;
          buffer = [];
        }
      in
      Hashtbl.replace t.chans (src, dst) ch;
      ch

let transmit t ch ~retx (seq, cls, describe, on_data) =
  let cls = if retx then Msg_class.Retransmit else cls in
  t.below ~src:ch.src ~dst:ch.dst ~cls
    ~describe:(fun () ->
      Printf.sprintf "%s #%d%s" (describe ()) seq (if retx then " retx" else ""))
    (fun () -> on_data seq)

(* Retransmit every unacked message of the channel, oldest first, backing
   the timeout off; the timer stays armed until the channel drains. *)
let rec arm_timer t ch =
  if (not ch.timer_armed) && ch.unacked <> [] then begin
    ch.timer_armed <- true;
    Dcs_sim.Engine.schedule t.engine ~after:ch.rto_cur (fun () ->
        ch.timer_armed <- false;
        if ch.unacked <> [] then begin
          List.iter
            (fun (seq, cls, describe, on_data) ->
              t.retransmits <- t.retransmits + 1;
              transmit t ch ~retx:true (seq, cls, describe, on_data))
            ch.unacked;
          ch.rto_cur <- Float.min (2.0 *. ch.rto_cur) t.max_rto;
          arm_timer t ch
        end)
  end

let send_ack t ch =
  (* Cumulative: acknowledges everything below the receiver's next
     expected sequence number, so acks are idempotent and loss-tolerant. *)
  let cum = ch.expected - 1 in
  t.acks <- t.acks + 1;
  t.below ~src:ch.dst ~dst:ch.src ~cls:Msg_class.Ack
    ~describe:(fun () -> Printf.sprintf "ack #%d" cum)
    (fun () ->
      ch.unacked <- List.filter (fun (seq, _, _, _) -> seq > cum) ch.unacked;
      if ch.unacked = [] then ch.rto_cur <- t.rto)

let rec drain t ch =
  match ch.buffer with
  | (seq, deliver) :: rest when seq = ch.expected ->
      ch.buffer <- rest;
      ch.expected <- ch.expected + 1;
      deliver ();
      drain t ch
  | _ -> ()

let on_data t ch ~deliver seq =
  if seq < ch.expected || List.mem_assoc seq ch.buffer then
    t.duplicates_dropped <- t.duplicates_dropped + 1
  else begin
    if seq <> ch.expected then t.buffered_out_of_order <- t.buffered_out_of_order + 1;
    ch.buffer <-
      List.merge (fun (a, _) (b, _) -> compare a b) [ (seq, deliver) ] ch.buffer;
    drain t ch
  end;
  send_ack t ch

let send t ~src ~dst ~cls ~describe deliver =
  let ch = chan t ~src ~dst in
  let seq = ch.next_seq in
  ch.next_seq <- seq + 1;
  let on_data = on_data t ch ~deliver in
  let entry = (seq, cls, describe, on_data) in
  ch.unacked <- ch.unacked @ [ entry ];
  t.data_sent <- t.data_sent + 1;
  t.max_unacked <- max t.max_unacked (List.length ch.unacked);
  transmit t ch ~retx:false entry;
  arm_timer t ch

let stats t =
  {
    data_sent = t.data_sent;
    retransmits = t.retransmits;
    acks = t.acks;
    duplicates_dropped = t.duplicates_dropped;
    buffered_out_of_order = t.buffered_out_of_order;
    max_unacked = t.max_unacked;
  }

let quiescent_violations t =
  Hashtbl.fold
    (fun (src, dst) ch acc ->
      let acc =
        if ch.unacked <> [] then
          Printf.sprintf "channel n%d->n%d: %d unacked messages" src dst
            (List.length ch.unacked)
          :: acc
        else acc
      in
      if ch.buffer <> [] then
        Printf.sprintf "channel n%d->n%d: receiver gap before %d buffered arrivals" src
          dst (List.length ch.buffer)
        :: acc
      else acc)
    t.chans []
  |> List.sort compare
