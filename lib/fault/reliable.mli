(** Reliable-FIFO delivery over a lossy, duplicating, reordering link.

    The protocol engines ({!Dcs_hlock.Node}, {!Dcs_naimi.Naimi}) require
    exactly-once, per-pair-FIFO delivery — what TCP gives the real
    transport and what {!Dcs_runtime.Net} gives the simulator. This shim
    restores that contract over a degraded link so fault plans may drop
    and duplicate messages underneath an unmodified protocol:

    - every data message carries a per-directed-pair sequence number;
    - the receiver delivers strictly in sequence order, buffering
      ahead-of-sequence arrivals and discarding duplicates;
    - every arrival (fresh or duplicate) is acknowledged cumulatively;
    - unacknowledged messages are retransmitted on a timer with
      exponential backoff (class {!Dcs_proto.Msg_class.Retransmit}, so the
      overhead is visible in every counter report, separately from the
      protocol's own classes; acks are class [Ack]).

    The shim is deterministic (no RNG: timers are fixed offsets on the
    simulation clock) and quiesces — once the underlying link stops losing
    messages, all channels drain and no timer re-arms, so the engine's
    event queue empties exactly as in a fault-free run. *)

type t

(** Cumulative shim-level traffic accounting. *)
type stats = {
  data_sent : int;  (** first transmissions accepted from the protocols *)
  retransmits : int;  (** timer-driven re-sends *)
  acks : int;  (** acknowledgements sent *)
  duplicates_dropped : int;  (** arrivals discarded by receiver dedup *)
  buffered_out_of_order : int;  (** arrivals parked waiting for a gap *)
  max_unacked : int;  (** high-water mark of any channel's send window *)
}

(** [create ~engine ~below ()] wraps the lossy [below] link. [rto] is the
    initial retransmission timeout in ms (default 600, four times the
    paper's mean latency); it backs off exponentially per channel up to
    [max_rto] (default [8 *. rto]) and resets when the channel drains. *)
val create :
  engine:Dcs_sim.Engine.t ->
  ?rto:float ->
  ?max_rto:float ->
  below:Dcs_proto.Link.send ->
  unit ->
  t

(** Drop-in replacement for {!Dcs_runtime.Net.send}: [send t] is a
    {!Dcs_proto.Link.send} delivering exactly once, in order, per directed
    pair — provided the underlying link eventually delivers some copy of
    every retransmitted message. *)
val send :
  t ->
  src:Dcs_proto.Node_id.t ->
  dst:Dcs_proto.Node_id.t ->
  cls:Dcs_proto.Msg_class.t ->
  describe:(unit -> string) ->
  (unit -> unit) ->
  unit

val stats : t -> stats

(** Channels that failed to drain: unacknowledged sends or receiver-side
    sequence gaps. Empty once the run has quiesced. *)
val quiescent_violations : t -> string list
