(** Runtime invariant auditing for long simulated runs.

    {!Dcs_mcheck} proves safety exhaustively, but only for 2–4 nodes; the
    64–120-node regimes where copysets, freezes and custody chains are
    actually stressed are far beyond exhaustive exploration. The audit is
    the sampled complement: a periodic global probe of the paper's safety
    invariants over a running cluster, cheap enough for 10k-request chaos
    soaks.

    Checked at every sample, per lock object:

    - {e single token}: token holders plus in-flight token transfers
      equal exactly one (Rule 3.2's conservation law);
    - {e mode compatibility}: all concurrently retained modes — held or
      cached — are pairwise compatible ({!Dcs_modes.Compat.compatible},
      Rule 1);
    - {e boundedness}: total queued requests per lock never exceed the
      configured ceiling (a custody cycle or absorbed-and-lost request
      shows up as unbounded queue growth long before a liveness timeout).

    The sampler stops rescheduling itself once [live] turns false, so it
    never prevents the engine from draining; the driver then calls
    {!check_now} one final time at quiescence. *)

type lock_view = {
  lock : int;
  token_holders : int list;  (** nodes whose engine holds the token *)
  tokens_in_flight : int;  (** token-transfer messages on the wire *)
  held : (int * Dcs_modes.Mode.t) list;  (** (node, held mode) *)
  cached : (int * Dcs_modes.Mode.t) list;  (** (node, cached mode) *)
  queued : int;  (** requests sitting in local queues *)
  pending : int;  (** nodes with an outstanding pending request *)
}

type t

(** [create ~engine ~snapshot ~live ()] starts sampling every [period] ms
    (default 2000) while [live ()] holds. [max_queued] bounds the total
    queue length per lock (default 0 = don't check). At most
    [max_violations] (default 32) messages are retained. *)
val create :
  engine:Dcs_sim.Engine.t ->
  ?period:float ->
  ?max_queued:int ->
  ?max_violations:int ->
  snapshot:(unit -> lock_view list) ->
  live:(unit -> bool) ->
  unit ->
  t

(** Take one sample immediately (also used for the final quiescence
    probe). *)
val check_now : t -> unit

(** Samples taken so far. *)
val samples : t -> int

(** Violations found so far, oldest first (capped). Empty = clean run. *)
val violations : t -> string list
