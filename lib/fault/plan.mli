(** Declarative, seed-deterministic fault schedules.

    A plan is a list of timed fault {!spec}s compiled ({!install}) into a
    {!Dcs_proto.Link.fault} hook plus heal timers on the discrete-event
    engine. All randomness (per-message drop / duplication draws) comes
    from the RNG handed to {!install}, so a run under a plan is exactly as
    reproducible as a fault-free run: same seed + same plan ⇒ same
    {!Dcs_sim.Trace.digest}.

    Fault vocabulary:

    - {e latency spike}: every affected message's latency draw is scaled
      by a factor for the window (degraded link, congestion).
    - {e partition}: messages crossing group boundaries are buffered by
      the network and flushed, in original send order, when the window
      ends (a healed partition; nothing is lost).
    - {e pause}: one node drops off the network — traffic to {e and} from
      it is buffered until resume (models a GC / scheduling stall; the
      node's local clock keeps running).
    - {e drop} / {e duplicate}: per-message Bernoulli loss / duplication.
      These break the reliable-FIFO contract the protocols require, so
      they are only legal behind {!Reliable} — {!needs_shim} tells the
      harness when the shim is mandatory.

    Crash-stop failures and token regeneration are deliberately out of
    scope (see DESIGN.md §7): every fault here is eventually healed and no
    protocol state is lost, so the paper's protocol must survive them
    {e unmodified}. *)

(** Active interval: [start, start +. duration) in simulated ms. *)
type window = { start : float; duration : float }

(** Which links a spec affects. *)
type scope =
  | All  (** every directed pair *)
  | Nodes of int list  (** only links with an endpoint in the list *)

type spec =
  | Latency_spike of { window : window; factor : float; scope : scope }
  | Partition of { window : window; groups : int list list }
      (** Nodes in different groups cannot exchange messages during the
          window; unlisted nodes are unaffected. *)
  | Pause_node of { window : window; node : int }
  | Drop of { window : window; prob : float; scope : scope }
  | Duplicate of { window : window; prob : float; scope : scope }

type t = spec list

(** True iff the plan drops or duplicates messages, i.e. the protocols
    must run behind {!Reliable} to keep their delivery contract. *)
val needs_shim : t -> bool

(** End of the last window (0 for the empty plan). *)
val horizon : t -> float

(** Compile the plan: installs the per-message hook via [set_fault] and
    schedules a [flush] at the end of every hold-type (partition / pause)
    window. [rng] drives the drop/duplicate draws and must be dedicated to
    the plan (splitting the experiment master keeps runs reproducible). *)
val install :
  t ->
  engine:Dcs_sim.Engine.t ->
  rng:Dcs_sim.Rng.t ->
  set_fault:(Dcs_proto.Link.fault -> unit) ->
  flush:(unit -> unit) ->
  unit

(** {1 Named plans (the shipped chaos scenarios)} *)

(** ["latency-spike"], ["heal-partition"], ["slow-node"], ["lossy-dup"]. *)
val names : string list

(** [named ~nodes ~horizon name] builds the named scenario scaled to a
    cluster of [nodes] and an expected run length of [horizon] ms; [None]
    for an unknown name. *)
val named : nodes:int -> horizon:float -> string -> t option

(** One-line description of a spec (reports, traces). *)
val spec_to_string : spec -> string

val to_string : t -> string
