open Dcs_proto

type window = { start : float; duration : float }

type scope = All | Nodes of int list

type spec =
  | Latency_spike of { window : window; factor : float; scope : scope }
  | Partition of { window : window; groups : int list list }
  | Pause_node of { window : window; node : int }
  | Drop of { window : window; prob : float; scope : scope }
  | Duplicate of { window : window; prob : float; scope : scope }

type t = spec list

let window_of = function
  | Latency_spike { window; _ }
  | Partition { window; _ }
  | Pause_node { window; _ }
  | Drop { window; _ }
  | Duplicate { window; _ } -> window

let active w ~now = now >= w.start && now < w.start +. w.duration

let in_scope scope ~src ~dst =
  match scope with
  | All -> true
  | Nodes l -> List.mem src l || List.mem dst l

let needs_shim plan =
  List.exists (function Drop _ | Duplicate _ -> true | _ -> false) plan

let horizon plan =
  List.fold_left
    (fun acc spec ->
      let w = window_of spec in
      Float.max acc (w.start +. w.duration))
    0.0 plan

(* A partition severs (src, dst) iff both endpoints are grouped and their
   groups differ. *)
let severed groups ~src ~dst =
  let group_of n =
    let rec go i = function
      | [] -> None
      | g :: rest -> if List.mem n g then Some i else go (i + 1) rest
    in
    go 0 groups
  in
  match (group_of src, group_of dst) with
  | Some a, Some b -> a <> b
  | _ -> false

let install plan ~engine ~rng ~set_fault ~flush =
  let decide ~now ~src ~dst ~cls:_ =
    let held =
      List.exists
        (function
          | Partition { window; groups } ->
              active window ~now && severed groups ~src ~dst
          | Pause_node { window; node } ->
              active window ~now && (src = node || dst = node)
          | _ -> false)
        plan
    in
    if held then Link.Hold
    else begin
      let copies = ref 1 and delay_factor = ref 1.0 in
      List.iter
        (fun spec ->
          match spec with
          | Latency_spike { window; factor; scope } ->
              if active window ~now && in_scope scope ~src ~dst then
                delay_factor := !delay_factor *. factor
          | Drop { window; prob; scope } ->
              if
                active window ~now && in_scope scope ~src ~dst
                && Dcs_sim.Rng.float rng < prob
              then copies := 0
          | Duplicate { window; prob; scope } ->
              if
                active window ~now && in_scope scope ~src ~dst
                && Dcs_sim.Rng.float rng < prob
              then if !copies > 0 then incr copies
          | Partition _ | Pause_node _ -> ())
        plan;
      Link.Deliver { copies = !copies; delay_factor = !delay_factor; extra_delay = 0.0 }
    end
  in
  set_fault decide;
  (* Heal timers: flush the hold buffer when each hold window closes. The
     decide hook no longer holds those links at that instant ([active] is
     half-open), so the flush re-schedules the buffered messages. *)
  List.iter
    (fun spec ->
      match spec with
      | Partition { window; _ } | Pause_node { window; _ } ->
          Dcs_sim.Engine.schedule_at engine ~time:(window.start +. window.duration)
            (fun () -> flush ())
      | _ -> ())
    plan

(* {1 Named scenarios} *)

let names = [ "latency-spike"; "heal-partition"; "slow-node"; "lossy-dup" ]

let halves nodes =
  let mid = nodes / 2 in
  [ List.init mid (fun i -> i); List.init (nodes - mid) (fun i -> mid + i) ]

let named ~nodes ~horizon name =
  let w ~at ~len = { start = at *. horizon; duration = len *. horizon } in
  match name with
  | "latency-spike" ->
      (* A global 6x spike, then a harsher one confined to the low half of
         the cluster (where the token starts). *)
      Some
        [
          Latency_spike { window = w ~at:0.15 ~len:0.15; factor = 6.0; scope = All };
          Latency_spike
            {
              window = w ~at:0.55 ~len:0.15;
              factor = 10.0;
              scope = Nodes (List.init (max 1 (nodes / 2)) (fun i -> i));
            };
        ]
  | "heal-partition" ->
      (* Split the cluster in half, heal, then briefly isolate node 0 (the
         initial token holder and tree root). *)
      Some
        [
          Partition { window = w ~at:0.2 ~len:0.15; groups = halves nodes };
          Partition
            {
              window = w ~at:0.6 ~len:0.08;
              groups = [ [ 0 ]; List.init (nodes - 1) (fun i -> i + 1) ];
            };
        ]
  | "slow-node" ->
      (* Two pauses: the initial root, then a mid-cluster node. *)
      Some
        [
          Pause_node { window = w ~at:0.2 ~len:0.1; node = 0 };
          Pause_node { window = w ~at:0.55 ~len:0.12; node = min (nodes - 1) (nodes / 2) };
        ]
  | "lossy-dup" ->
      (* Sustained 5% loss with a duplication burst inside it; only legal
         behind the Reliable shim. *)
      Some
        [
          Drop { window = w ~at:0.1 ~len:0.6; prob = 0.05; scope = All };
          Duplicate { window = w ~at:0.25 ~len:0.3; prob = 0.05; scope = All };
        ]
  | _ -> None

let scope_to_string = function
  | All -> "all"
  | Nodes l -> Printf.sprintf "nodes[%s]" (String.concat "," (List.map string_of_int l))

let spec_to_string spec =
  let w = window_of spec in
  let body =
    match spec with
    | Latency_spike { factor; scope; _ } ->
        Printf.sprintf "latency-spike x%.1f %s" factor (scope_to_string scope)
    | Partition { groups; _ } ->
        Printf.sprintf "partition %s"
          (String.concat "|"
             (List.map (fun g -> String.concat "," (List.map string_of_int g)) groups))
    | Pause_node { node; _ } -> Printf.sprintf "pause n%d" node
    | Drop { prob; scope; _ } ->
        Printf.sprintf "drop p=%.2f %s" prob (scope_to_string scope)
    | Duplicate { prob; scope; _ } ->
        Printf.sprintf "dup p=%.2f %s" prob (scope_to_string scope)
  in
  Printf.sprintf "[%.0f..%.0f ms] %s" w.start (w.start +. w.duration) body

let to_string plan = String.concat "; " (List.map spec_to_string plan)
