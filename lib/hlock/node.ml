open Dcs_modes
open Dcs_proto

type mutation = Weak_freeze | Ignore_frozen

type config = {
  eager_release : bool;
  freezing : bool;
  reverse_all : bool;
  grant_edges : bool;
  caching : bool;
  mutation : mutation option;
}

let default_config =
  {
    eager_release = false;
    freezing = true;
    reverse_all = false;
    grant_edges = true;
    caching = true;
    mutation = None;
  }

type t = {
  config : config;
  id : Node_id.t;
  peers : int;  (* cluster size; node ids are 0..peers-1 *)
  send : dst:Node_id.t -> Msg.t -> unit;
  on_granted : Msg.request -> unit;
  on_upgraded : int -> unit;
  (* Telemetry hook ({!Dcs_obs}): the embedding fills in time/lock/node.
     [None] costs one branch per lifecycle site and allocates nothing. *)
  obs : (Dcs_obs.Event.scope -> Dcs_obs.Event.kind -> unit) option;
  mutable token : bool;
  mutable parent : Node_id.t option;
  mutable parent_stamp : int;  (* token-tenure knowledge when [parent] was set *)
  (* The node whose children-map currently accounts our subtree, and the
     epoch of that record. Usually equals [parent]; [None] when we own ⊥ or
     hold the token. *)
  mutable accounted_parent : Node_id.t option;
  mutable accounted_epoch : int;
  (* Best-effort mirror of the mode the accounting parent records for us;
     Rule 5.2 sends a release exactly when owned drops below it. *)
  mutable last_reported : Mode.t option;
  (* Held instances, seq → mode. A Hashtbl (not an assoc list) so release
     and upgrade are O(1) under many concurrently held grants; the
     per-mode multiset [held_counts] (indexed by Mode.index) makes the
     strongest-held computation an allocation-free 5-slot scan. *)
  held : (int, Mode.t) Hashtbl.t;
  held_counts : int array;
  (* Modes granted to this node that no local client currently holds, kept
     in the copyset Li/Hudak-style so re-acquisition is message-free
     (Rule 2); dropped on freeze/conflict (revocation). *)
  mutable cached : Mode_set.t;
  children : (Node_id.t, Mode.t * int) Hashtbl.t;
  mutable queue : Msg.request list;  (* FIFO, head first *)
  mutable pending : Msg.request option;
  (* first hop our pending request took; rejected elder requests follow it *)
  mutable pending_trail : Node_id.t option;
  mutable frozen : Mode_set.t;
  sent_freeze : (Node_id.t, Mode_set.t) Hashtbl.t;
  mutable kick_marks : (Node_id.t * int) list;
  mutable tenure : int;  (* valid while we hold or last held the token *)
  mutable hint : int * Node_id.t;  (* freshest known (tenure, token owner) *)
  mutable last_granter : Node_id.t option;
  (* Approximate accounting ancestry (nearest first), piggybacked on grants;
     used to refuse grants to our own ancestors (ring prevention, second
     line of defence). *)
  mutable ancestry : Node_id.t list;
  (* Adaptive routing signal: was our own last service a token transfer?
     Transfer-dominated locks (fine-grained, low-concurrency) behave like
     Naimi and want full path reversal; copy-dominated locks (coarse,
     read-shared) want stable routes to the granting region. *)
  mutable saw_transfer : bool;
  mutable served_ever : bool;
  mutable next_seq : int;
  mutable clock : int;  (* Lamport *)
  mutable epoch_counter : int;
  (* Send batching ({!with_send_batch}): while [batch_depth > 0] emissions
     are buffered (newest first) instead of sent, and flushed — after
     coalescing superseded Release/Freeze messages — when the outermost
     scope exits. Zero-cost when no scope is active. *)
  mutable batch_depth : int;
  mutable batched : (Node_id.t * Msg.t) list;
}

let create ?(config = default_config) ?obs ~id ~peers ~is_token ~parent ~send ~on_granted ~on_upgraded () =
  (* Freezes are the cache-revocation channel: without them a cached mode
     could block a conflicting writer forever. *)
  let config = if config.freezing then config else { config with caching = false } in
  if is_token && parent <> None then invalid_arg "Hlock.Node.create: token node with a parent";
  if (not is_token) && parent = None then invalid_arg "Hlock.Node.create: non-token node without parent";
  if peers < 1 || id < 0 || id >= peers then invalid_arg "Hlock.Node.create: id out of range";
  {
    config;
    id;
    peers;
    send;
    on_granted;
    on_upgraded;
    obs;
    token = is_token;
    parent;
    parent_stamp = 0;
    accounted_parent = None;
    accounted_epoch = 0;
    last_reported = None;
    held = Hashtbl.create 8;
    held_counts = Array.make 5 0;
    cached = Mode_set.empty;
    children = Hashtbl.create 8;
    queue = [];
    pending = None;
    pending_trail = None;
    frozen = Mode_set.empty;
    sent_freeze = Hashtbl.create 8;
    kick_marks = [];
    tenure = 0;
    hint = (0, (if is_token then id else match parent with Some p -> p | None -> id));
    last_granter = None;
    ancestry = [];
    saw_transfer = false;
    served_ever = false;
    next_seq = 0;
    clock = 0;
    epoch_counter = 0;
    batch_depth = 0;
    batched = [];
  }

(* {1 Views} *)

let id t = t.id
let is_token t = t.token
let parent t = t.parent

let held t =
  Hashtbl.fold (fun seq m acc -> (seq, m) :: acc) t.held []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let queue t = t.queue
let frozen t = t.frozen
let pending t = t.pending

(* Held-multiset maintenance: every mutation of [t.held] goes through
   these so [held_counts] can never drift. *)

let held_add t seq m =
  (match Hashtbl.find_opt t.held seq with
  | Some old -> t.held_counts.(Mode.index old) <- t.held_counts.(Mode.index old) - 1
  | None -> ());
  Hashtbl.replace t.held seq m;
  t.held_counts.(Mode.index m) <- t.held_counts.(Mode.index m) + 1

let held_remove t seq =
  match Hashtbl.find_opt t.held seq with
  | None -> None
  | Some m ->
      Hashtbl.remove t.held seq;
      t.held_counts.(Mode.index m) <- t.held_counts.(Mode.index m) - 1;
      Some m

let accounting t =
  match t.accounted_parent with None -> None | Some p -> Some (p, t.accounted_epoch)

let children t =
  Hashtbl.fold (fun c (m, _) acc -> (c, m) :: acc) t.children []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let cached t = Mode_set.to_list t.cached

(* Owned mode (Definition 3) as a Decision code, allocation-free. The
   held/cached scan walks mode indices in descending order, which is
   non-increasing strength (W, IW, U, R, IR), so the first hit is the
   strongest; a correctly maintained copyset never holds the equal-strength
   U and IW together (they conflict), so the tie order is immaterial. *)
let owned_code t =
  let best = ref 0 in
  let i = ref 4 in
  while !best = 0 && !i >= 0 do
    if t.held_counts.(!i) > 0 || Mode_set.mem (Mode.of_index !i) t.cached then best := !i + 1;
    decr i
  done;
  Hashtbl.iter
    (fun _ (m, _) ->
      let c = Decision.code_of_mode m in
      if Decision.strength_of_code c > Decision.strength_of_code !best then best := c)
    t.children;
  !best

let owned t = Decision.decode_owned (owned_code t)

(* Owned code as seen when evaluating request [r]: an upgrade request masks
   the requester's own U contribution (Rule 7). Only one U exists system-wide
   (U conflicts with U), so masking by mode is unambiguous. *)
let owned_code_for t (r : Msg.request) =
  if not r.upgrade then owned_code t
  else begin
    let skip_idx =
      if r.requester = t.id then
        match Hashtbl.find_opt t.held r.seq with Some m -> Mode.index m | None -> -1
      else -1
    in
    let best = ref 0 in
    let i = ref 4 in
    while !best = 0 && !i >= 0 do
      let n = t.held_counts.(!i) in
      let n = if !i = skip_idx then n - 1 else n in
      if n > 0 || Mode_set.mem (Mode.of_index !i) t.cached then best := !i + 1;
      decr i
    done;
    Hashtbl.iter
      (fun c (m, _) ->
        if not (c = r.requester && Mode.equal m Mode.U) then begin
          let code = Decision.code_of_mode m in
          if Decision.strength_of_code code > Decision.strength_of_code !best then best := code
        end)
      t.children;
    !best
  end

let is_frozen t m =
  t.config.freezing
  && t.config.mutation <> Some Ignore_frozen
  && Mode_set.mem m t.frozen

(* Every assignment of [t.frozen] funnels through here so telemetry sees the
   set deltas as Frozen/Unfrozen node events. *)
let set_frozen t next =
  let prev = t.frozen in
  t.frozen <- next;
  match t.obs with
  | None -> ()
  | Some f ->
      let added = Mode_set.diff next prev in
      let removed = Mode_set.diff prev next in
      if not (Mode_set.is_empty added) then f Dcs_obs.Event.Node (Dcs_obs.Event.Frozen added);
      if not (Mode_set.is_empty removed) then
        f Dcs_obs.Event.Node (Dcs_obs.Event.Unfrozen removed)

(* Drop cached (unheld) modes that conflict with [m]; returns true if any
   were dropped. A cache is a convenience copy — any conflicting request
   outranks it. *)
let revoke_conflicting t m =
  let doomed = Mode_set.inter t.cached (Decision.incompatible_bits m) in
  if Mode_set.is_empty doomed then false
  else begin
    t.cached <- Mode_set.diff t.cached doomed;
    true
  end

let pp_owned ppf = function
  | None -> Format.pp_print_string ppf "_"
  | Some m -> Mode.pp ppf m

let pp_state ppf t =
  Format.fprintf ppf "n%d%s parent=%s owned=%a held=[%s] children=[%s] |q|=%d frozen=%a pending=%s"
    t.id
    (if t.token then "*" else "")
    (match t.parent with None -> "_" | Some p -> string_of_int p)
    pp_owned (owned t)
    (String.concat ","
       (List.map (fun (seq, m) -> Printf.sprintf "#%d:%s" seq (Mode.to_string m)) (held t)))
    (String.concat ","
       (List.map (fun (c, m) -> Printf.sprintf "n%d:%s" c (Mode.to_string m)) (children t)))
    (List.length t.queue) Mode_set.pp t.frozen
    (match t.pending with None -> "_" | Some r -> Format.asprintf "%a" Msg.pp_request r)

(* {1 Emission helpers} *)

let emit t dst msg =
  if t.batch_depth > 0 then t.batched <- (dst, msg) :: t.batched
  else t.send ~dst msg

(* Wire messages saved by batch coalescing (diagnostic, like [diversions]). *)
let coalesced = ref 0

(* Flush a batch, dropping messages that a later message to the same
   destination provably supersedes. Only per-destination-adjacent pairs
   are considered (links are FIFO per pair; nothing may be reordered
   relative to other traffic on the same link):

   - Freeze after Freeze: frozen sets sent to a child are cumulative
     ([refresh_freezes] unions with everything previously sent, and any
     event that resets the relationship — a grant, a transfer — puts a
     Grant/Token between the two freezes), so the later set contains the
     earlier one and Table 1 decisions at the child are unchanged.
   - Release after Release at the same epoch: the child record ends in
     the same state either way — a [None] is terminal for its epoch
     (the sender detaches and cannot report under it again), so the
     collapsed pair never resurrects a removed record.

   Requests, grants and tokens are never dropped or reordered. *)
let flush_batch t =
  match t.batched with
  | [] -> ()
  | [ (dst, m) ] ->
      t.batched <- [];
      t.send ~dst m
  | batched ->
      t.batched <- [];
      let msgs = Array.of_list (List.rev batched) in
      let n = Array.length msgs in
      let drop = Array.make n false in
      let last_for_dst = Hashtbl.create 8 in
      for i = 0 to n - 1 do
        let dst, m = msgs.(i) in
        (match Hashtbl.find_opt last_for_dst dst with
        | Some j -> (
            match snd msgs.(j), m with
            | Msg.Freeze _, Msg.Freeze _ ->
                drop.(j) <- true;
                incr coalesced
            | Msg.Release { epoch = e1; _ }, Msg.Release { epoch = e2; _ } when e1 = e2 ->
                drop.(j) <- true;
                incr coalesced
            | _ -> ())
        | None -> ());
        Hashtbl.replace last_for_dst dst i
      done;
      Array.iteri (fun i (dst, m) -> if not drop.(i) then t.send ~dst m) msgs

let with_send_batch t f =
  t.batch_depth <- t.batch_depth + 1;
  let finish () =
    t.batch_depth <- t.batch_depth - 1;
    if t.batch_depth = 0 then flush_batch t
  in
  match f () with
  | v ->
      finish ();
      v
  | exception e ->
      finish ();
      raise e

let fresh_epoch t =
  t.epoch_counter <- t.epoch_counter + 1;
  t.epoch_counter

(* Record epochs at one node come from TWO counters: [grant_copy] draws from
   ours, but a token handoff records the sender at an epoch drawn from the
   sender's counter. The stale-release guard in [handle_release] compares by
   equality, so it is sound only if successive epochs for the same pair never
   collide. Lamport-merge every epoch received in a relationship-establishing
   message before we next draw: then any later draw, by either side, is
   strictly greater than every earlier epoch of the pair. Without this, a
   grant re-using a token-era epoch lets the pre-grant weakening release
   through, leaving the parent's record under the child's owned mode — and a
   record that under-covers narrows freezes past the very mode a queued
   writer needs revoked, so it starves. *)
let absorb_epoch t e = if e > t.epoch_counter then t.epoch_counter <- e

let tick t =
  t.clock <- t.clock + 1;
  t.clock

let observe_clock t ts = t.clock <- max t.clock ts + 1

let my_hint t = if t.token then (t.tenure, t.id) else t.hint

let observe_hint t h = if fst h > fst (my_hint t) then t.hint <- h

let set_parent t p ~stamp =
  t.parent <- Some p;
  t.parent_stamp <- stamp

(* {1 Freezing (Rule 6)} *)

(* Recompute (token node) and propagate the frozen set. A child is notified
   only of the frozen modes it could actually grant given the mode we record
   for it; notifications are diffed against what was last sent, so both
   freezing and un-freezing travel, and only when something changed. *)
let refresh_freezes t =
  if t.config.freezing then begin
    if t.token then begin
      let fs =
        List.fold_left
          (fun acc (r : Msg.request) ->
            Mode_set.union acc (Decision.freeze_set ~owned:(owned_code_for t r) r.mode))
          Mode_set.empty t.queue
      in
      let fs =
        match t.config.mutation with
        | Some Weak_freeze -> (
            (* Seeded fault (Dcs_check): weakened Table 2(b) — the strongest
               mode every queued request needs frozen is left grantable. *)
            match Compat.strongest (Mode_set.to_list fs) with
            | Some m -> Mode_set.remove m fs
            | None -> fs)
        | _ -> fs
      in
      set_frozen t fs
    end;
    (* Nothing frozen here and nothing ever sent: no child notification
       can result (relevant and previous are both empty for every child),
       so skip the children walk — it is on the grant hot path. *)
    if not (Mode_set.is_empty t.frozen && Hashtbl.length t.sent_freeze = 0) then begin
    let kids = children t in
    List.iter
      (fun (c, cm) ->
        (* Additive only (the paper: "a mode, once frozen, will not be sent
           a freeze message again"): no explicit un-freeze traffic. A stale
           frozen mode merely makes a child forward instead of granting,
           and clears itself when the child leaves the copyset or changes
           accounting parent. *)
        let relevant =
          (* Anything the child could grant, or could be caching somewhere
             in its subtree (no stronger than its recorded mode), must be
             frozen there — freezing both stops grants and revokes
             caches. *)
          Mode_set.inter t.frozen (Decision.le_strength_bits cm)
        in
        let previous =
          match Hashtbl.find_opt t.sent_freeze c with None -> Mode_set.empty | Some s -> s
        in
        let combined = Mode_set.union relevant previous in
        if not (Mode_set.equal combined previous) then begin
          Hashtbl.replace t.sent_freeze c combined;
          emit t c (Msg.Freeze { frozen = combined })
        end)
      kids
    end
  end

(* {1 Release reporting (Rule 5.2)} *)

(* Send owned-mode changes to the accounting parent: mandatory on weakening
   (Rule 5.2), on every release under the eager ablation, and on the rare
   strengthening repair after a grant overtook an in-flight release. *)
let report_owned t ~force =
  if not t.token then begin
    match t.accounted_parent with
    | None -> ()
    | Some q ->
        let oc = owned_code t in
        let lc = Decision.owned_code t.last_reported in
        let weakened = Decision.strength_of_code oc < Decision.strength_of_code lc in
        let strengthened = Decision.strength_of_code lc < Decision.strength_of_code oc in
        if weakened || strengthened || force then begin
          let o = Decision.decode_owned oc in
          t.last_reported <- o;
          emit t q (Msg.Release { new_owned = o; epoch = t.accounted_epoch });
          if o = None then begin
            t.accounted_parent <- None;
            t.last_reported <- None;
            (* Detached from the copyset: no freeze duties remain, and no
               un-freeze would reach us; drop any stale frozen set. *)
            set_frozen t Mode_set.empty
          end
        end
  end

(* {1 Grant paths} *)

let clear_pending_if_match t (r : Msg.request) =
  match t.pending with
  | Some p when Msg.request_same p r -> t.pending <- None
  | _ -> ()

(* Grant to a local client: enter the critical section. [via_token] marks
   grants delivered by a token transfer (Rule 3.2) for telemetry; every
   other path — Rule 2 message-free, Rule 3/3.1 copy grants, token-node
   local service — counts as a local grant. *)
let grant_self ?(via_token = false) t (r : Msg.request) =
  clear_pending_if_match t r;
  held_add t r.seq r.mode;
  (match t.obs with
  | None -> ()
  | Some f ->
      f
        (Dcs_obs.Event.Span { requester = r.requester; seq = r.seq })
        (if via_token then Dcs_obs.Event.Granted_token { mode = r.mode; hops = r.hops }
         else Dcs_obs.Event.Granted_local { mode = r.mode; hops = r.hops }));
  t.on_granted r

let complete_upgrade t (r : Msg.request) =
  clear_pending_if_match t r;
  if Hashtbl.mem t.held r.seq then held_add t r.seq Mode.W;
  (match t.obs with
  | None -> ()
  | Some f ->
      f (Dcs_obs.Event.Span { requester = r.requester; seq = r.seq }) Dcs_obs.Event.Upgraded);
  t.on_upgraded r.seq

(* Copy grant (Rule 3): adopt the requester as a child at (at least) the
   granted mode and notify it. *)
let grant_copy t (r : Msg.request) =
  let epoch = fresh_epoch t in
  (* Fresh grant = fresh freeze relationship: the child (re)sets its frozen
     state when it adopts us as accounting parent, so anything we believe
     we already sent must be re-sent. *)
  Hashtbl.remove t.sent_freeze r.requester;
  let mode =
    (* Never let the record under-cover: a stronger previous record is
       carried over because its weakening release may still be in flight
       (safety depends on records covering descendants). The grant tells
       the child what we recorded, so if the release really did cross —
       and is about to be dropped as stale-epoch — the child re-reports
       the weakening under the fresh epoch instead. *)
    match Hashtbl.find_opt t.children r.requester with
    | Some (m, _) -> if Mode.stronger_eq m r.mode then m else r.mode
    | None -> r.mode
  in
  Hashtbl.replace t.children r.requester (mode, epoch);
  let ancestry = if t.token then [] else t.ancestry in
  emit t r.requester
    (Msg.Grant { req = { r with Msg.hint = my_hint t }; epoch; recorded = mode; ancestry });
  refresh_freezes t

(* Token transfer (Rule 3.2 operational): hand over the token, our queue and
   the frozen set; stay in the tree as a child if we still own something. *)
let transfer_token t (r : Msg.request) =
  Hashtbl.remove t.children r.requester;
  Hashtbl.remove t.sent_freeze r.requester;
  let residual = owned t in
  let sender_epoch = fresh_epoch t in
  let tok =
    let serving = { r with Msg.hint = (t.tenure + 1, r.Msg.requester) } in
    Msg.Token { serving; sender_owned = residual; sender_epoch; queue = t.queue; frozen = t.frozen }
  in
  t.hint <- (t.tenure + 1, r.Msg.requester);
  (* Point at the queue's future *last* owner (Naimi's tail), not the next
     one: new requests arriving here must go where the token will be last,
     or they walk the whole service chain hop by hop. Only U/W entries are
     certain future owners; fall back to the immediate transfer target. *)
  let tail =
    let certain (q : Msg.request) =
      q.requester <> t.id && (Mode.equal q.mode Mode.U || Mode.equal q.mode Mode.W)
    in
    let remote (q : Msg.request) = q.requester <> t.id in
    match List.rev (List.filter certain t.queue) with
    | last :: _ -> last.requester
    | [] -> (
        (* No certain future owner queued: the last remote requester is the
           best tail guess — on transfer-dominated locks it will own the
           token; on copy-dominated ones it will at worst be a child of the
           new token node (one extra hop). *)
        match List.rev (List.filter remote t.queue) with
        | last :: _ -> last.requester
        | [] -> r.requester)
  in
  t.queue <- [];
  t.token <- false;
  set_parent t tail ~stamp:(t.tenure + 1);
  t.accounted_parent <- (if residual = None then None else Some r.requester);
  t.accounted_epoch <- sender_epoch;
  t.last_reported <- residual;
  set_frozen t Mode_set.empty;
  emit t r.requester tok;
  (* Un-freeze our remaining children; the new token node re-freezes as
     needed once it recomputes from the merged queue. *)
  refresh_freezes t

let enqueue t (r : Msg.request) =
  if r.requester = t.id then clear_pending_if_match t r;
  t.queue <- Msg.insert_by_service_order r t.queue;
  (match t.obs with
  | None -> ()
  | Some f -> f (Dcs_obs.Event.Span { requester = r.requester; seq = r.seq }) Dcs_obs.Event.Queued);
  refresh_freezes t

(* Global diagnostic counters (reset by tests/benches as needed). *)
let diversions = ref 0
let sweep_restarts = ref 0
let relays = ref 0

(* Relay a request one hop toward the token. Normally that hop is our
   routing parent; if the parent has already seen this request (a transient
   routing cycle — stale reversal and grant edges can briefly form one),
   divert: prefer live copyset links (accounting chains end at the token),
   then the lowest-id unvisited node. The path grows at every hop, so a
   diverted request sweeps the membership in at most [peers] hops and must
   reach a node that takes custody — the token holder in the worst case. *)
let forward_onward ?via t (r : Msg.request) =
  incr relays;
  let r =
    {
      r with
      Msg.hops = r.Msg.hops + 1;
      path = (if List.mem t.id r.Msg.path then r.Msg.path else t.id :: r.Msg.path);
    }
  in
  let r = { r with Msg.hint = (if fst (my_hint t) > fst r.Msg.hint then my_hint t else r.Msg.hint) } in
  let unvisited p = not (List.mem p r.Msg.path) in
  let hinted = snd r.Msg.hint in
  let live_links () =
    List.filter_map (fun x -> x) [ via; Some hinted; t.accounted_parent; t.last_granter ]
  in
  let by_freshness =
    (* Order candidate hops by how fresh our knowledge of them is: an
       explicit override first, then the stamped parent edge versus the
       gossiped token hint, then the copyset links. *)
    let parentc = match t.parent with Some p -> [ (t.parent_stamp, p) ] | None -> [] in
    let hintc = [ (fst (my_hint t), snd (my_hint t)) ] in
    let ranked = List.sort (fun (a, _) (b, _) -> compare b a) (parentc @ hintc) in
    (match via with Some v -> [ v ] | None -> []) @ List.map snd ranked
  in
  let dst =
    match List.find_opt unvisited by_freshness with
    | Some p -> Some p
    | None ->
        incr diversions;
        let rec first i =
          if i >= t.peers then None else if unvisited i then Some i else first (i + 1)
        in
        (match List.find_opt unvisited (live_links ()) with Some p -> Some p | None -> first 0)
  in
  let dst =
    match dst with
    | Some p -> Some p
    | None ->
        (* Everyone visited without custody: the token kept moving ahead of
           the sweep. Restart it; randomized latencies make repeated
           evasion vanishingly unlikely. *)
        incr sweep_restarts;
        Some
          (match t.parent with
          | Some p -> p
          | None -> (t.id + 1) mod t.peers)
  in
  match dst with
  | Some p ->
      (* Resetting the sweep must NOT keep the requester excluded: the
         token can land at the requester while its request is mid-sweep
         (a token transfer serving another of its requests), and a
         request without local custody — forwarded past an unrelated
         pending — exists only in flight. Excluding the requester then
         makes the sweep skip the one node that can serve it, forever. *)
      let r = if r.Msg.hops > 0 && List.length r.Msg.path >= t.peers then { r with Msg.path = [ t.id ] } else r in
      (if Msg.request_same r (match t.pending with Some p -> p | None -> { r with Msg.seq = -1 }) then
         t.pending_trail <- Some p);
      (match t.obs with
      | None -> ()
      | Some f ->
          f
            (Dcs_obs.Event.Span { requester = r.Msg.requester; seq = r.Msg.seq })
            (Dcs_obs.Event.Forwarded { dst = p }));
      emit t p (Msg.Request r)
  | None -> assert false


(* {1 Queue service (Rule 4 operational, Rule 5.1)} *)

(* Strictly FIFO: serve the head while servable, stop at the first head that
   is not. The frozen set never blocks the head — freezing exists to protect
   queued requests from newcomers, and a later entry's freeze set may well
   contain the head's mode. *)
let rec serve_queue t =
  match t.queue with
  | [] -> ()
  | r :: rest ->
      if t.token then begin
        if revoke_conflicting t r.mode then refresh_freezes t;
        let mo = owned_code_for t r in
        if Decision.token_can_grant ~owned:mo r.mode then begin
          t.queue <- rest;
          refresh_freezes t;
          if r.upgrade && r.requester = t.id then complete_upgrade t r
          else if r.requester = t.id then grant_self t r
          else if Decision.token_must_transfer ~owned:mo r.mode then transfer_token t r
          else grant_copy t r;
          if t.token then serve_queue t
        end
        else refresh_freezes t
      end
      else begin
        let mo = owned_code t in
        let remote_grant_ok =
          r.requester = t.id
          || ((not r.token_only) && not (List.mem r.requester t.ancestry))
        in
        if Decision.can_child_grant ~owned:mo r.mode && (not (is_frozen t r.mode)) && remote_grant_ok
        then begin
          t.queue <- rest;
          if r.requester = t.id then grant_self t r else grant_copy t r;
          serve_queue t
        end
        else if t.pending = None then begin
          (* Nothing further will come through to serve these locally;
             push the whole queue toward the token (liveness). *)
          let stranded = t.queue in
          t.queue <- [];
          List.iter (fun r -> forward_onward t r) stranded;
          refresh_freezes t
        end
      end

(* Any change to held/children modes may enable queued grants, change freeze
   sets, and require an upward report. *)
let after_owned_change t =
  if t.token then begin
    refresh_freezes t;
    serve_queue t
  end
  else begin
    report_owned t ~force:t.config.eager_release;
    refresh_freezes t;
    serve_queue t
  end

(* {1 Request handling (Rules 2, 3, 4)} *)

let handle_request t (r : Msg.request) =
  (* Any request — including our own — outranks cached convenience copies
     that conflict with it. *)
  let revoked = revoke_conflicting t r.mode in
  if t.token then begin
    let mo = owned_code_for t r in
    if Decision.token_can_grant ~owned:mo r.mode && not (is_frozen t r.mode) then begin
      if r.upgrade && r.requester = t.id then complete_upgrade t r
      else if r.requester = t.id then grant_self t r
      else if Decision.token_must_transfer ~owned:mo r.mode then transfer_token t r
      else grant_copy t r;
      if t.token then begin refresh_freezes t; serve_queue t end
    end
    else begin
      enqueue t r;
      (* The revocation may have unblocked the existing queue head. *)
      if revoked then serve_queue t
    end
  end
  else if r.requester = t.id then begin
    (* Rule 2, local request at a non-token node. *)
    let mo = owned_code t in
    (match t.pending with
    | Some p when Msg.request_same p r ->
        (* Our own pending request was relayed back to us (transient cycle
           while a token is in flight): keep it moving. *)
        forward_onward t r
    | _ ->
        if Decision.can_child_grant ~owned:mo r.mode && not (is_frozen t r.mode) then
          (* Message-free local acquisition. *)
          grant_self t r
        else begin
          let r =
            if Decision.can_child_grant ~owned:mo r.mode && is_frozen t r.mode then
              { r with Msg.token_only = true }
            else r
          in
          match t.pending with
          | None ->
              t.pending <- Some r;
              forward_onward t r
          | Some p ->
              if Decision.queueable ~pending:(Decision.code_of_mode p.mode) r.mode then enqueue t r
              else forward_onward t r
        end);
    (* Every path above must surface the revocation — including the
       relayed-back escape: our request may circle for a while, and until
       the weakening is reported the old granter's record of us blocks
       exactly the conflicting mode we are asking for. *)
    if revoked then begin
      report_owned t ~force:false;
      refresh_freezes t
    end
  end
  else if r.token_only then begin
    (* Token-bound: relay without granting or absorbing (see Msg.request). *)
    forward_onward t r;
    if revoked then begin
      report_owned t ~force:false;
      refresh_freezes t
    end
  end
  else begin
    (* Rule 3.1 / Rule 4.1 at a non-token node. *)
    let mo = owned_code t in
    (if
       Decision.can_child_grant ~owned:mo r.mode
       && (not (is_frozen t r.mode))
       && not (List.mem r.requester t.ancestry)
     then grant_copy t r
     else
      match t.pending with
      | Some p
        when Decision.queueable ~pending:(Decision.code_of_mode p.mode) r.mode
             && ((not (Mode.equal p.mode r.mode)) || Msg.request_lt p r) ->
          (* Rule 4.1 / Table 2(a): take custody until our own pending
             request comes through. Custody edges must not cycle (that
             would deadlock both requests): cross-mode absorption descends
             the mode hierarchy strictly, and same-mode absorption is
             restricted to requests younger than our pending — so every
             custody chain ends at the token or at a serving node. Higher
             priorities are never absorbed: holding them hostage behind a
             lower-priority pending would be a distributed priority
             inversion; they keep moving toward the token's queue. *)
          enqueue t r
      | Some _ ->
          (* Older same-mode request: it is ahead of us in the global
             order; send it along the trail our own request took — the
             liveliest route toward the token we know. *)
          let target = if fst (my_hint t) >= fst r.Msg.hint then snd (my_hint t) else snd r.Msg.hint in
          forward_onward ~via:target t r
      | None ->
          forward_onward t r;
          (* Dynamic path reversal (the §2 tree mechanics the protocol is
             built on), applied to requests certain to end in a token
             transfer: no owned mode can copy-grant U or W, so their
             requester is the future root — Naimi's re-pointing invariant.
             Reversing toward copy-grant requesters too floods the graph
             with transient cycles and turns most relays into diversion
             sweeps. Any cycles this still leaves are rendered harmless by
             path-carrying relays (see forward_onward). *)
          let stamp = max (fst r.Msg.hint) (fst (my_hint t)) in
          (match r.mode with
          | Mode.U | Mode.W -> set_parent t r.Msg.requester ~stamp
          | Mode.IR | Mode.R | Mode.IW ->
              if t.config.reverse_all || t.saw_transfer || not t.served_ever then
                set_parent t r.Msg.requester ~stamp));
    (* A revoked cache weakened our owned mode: tell the copyset parent so
       the conflicting request stops waiting on us. *)
    if revoked then begin
      report_owned t ~force:false;
      refresh_freezes t
    end
  end

(* {1 Message handlers} *)

let detach_from_old_parent t ~src =
  match t.accounted_parent with
  | Some q when q <> src ->
      emit t q (Msg.Release { new_owned = None; epoch = t.accounted_epoch })
  | _ -> ()

let rec handle_grant t ~src (r : Msg.request) ~epoch ~recorded ~ancestry =
  observe_clock t r.timestamp;
  observe_hint t r.hint;
  absorb_epoch t epoch;
  if t.token then begin
    (* A copy grant can race a token transfer: this request was still
       circulating when the token reached us (serving a younger request of
       ours). Recording [src] as accounting parent would make the root a
       child of a non-token node — a copyset cycle in which every node's
       owned mode is justified only by the next, so no freeze or release
       can ever unwind it and conflicting requests starve. Cancel the
       granter's child record and serve the request ourselves: we are the
       root now, Rule 3.2 applies. *)
    emit t src (Msg.Release { new_owned = None; epoch });
    clear_pending_if_match t r;
    handle_request t r
  end
  else handle_grant_at_child t ~src r ~epoch ~recorded ~ancestry

and handle_grant_at_child t ~src (r : Msg.request) ~epoch ~recorded ~ancestry =
  if Hashtbl.mem t.children src then begin
    (* The granter is currently OUR child (e.g. a token handoff left us
       its residual record while our request still circulated): adopting
       it as accounting parent would close a two-node copyset cycle in
       which each node's owned mode is justified only by the other, so
       every release one sends flips the other's owned mode and triggers
       a release back — an unbounded Release ping-pong (and no freeze
       can unwind it either). Same cure as the token-race above: cancel
       the granter's fresh record of us instead of adopting it. Our own
       record of [src] is what justified its grant, so our owned mode
       usually covers the request — serve it ourselves; otherwise keep
       it moving toward the token. *)
    emit t src (Msg.Release { new_owned = None; epoch });
    let mo = owned_code t in
    if Decision.can_child_grant ~owned:mo r.mode && not (is_frozen t r.mode) then grant_self t r
    else forward_onward t r
  end
  else begin
  t.ancestry <- src :: ancestry;
  let same_parent = t.accounted_parent = Some src in
  detach_from_old_parent t ~src;
  (* A new accounting parent owns our freeze state from now on; stale sets
     from the old one must not linger (they would never be un-frozen). *)
  if not same_parent then set_frozen t Mode_set.empty;
  t.accounted_parent <- Some src;
  t.accounted_epoch <- epoch;
  t.last_granter <- Some src;
  t.saw_transfer <- false;
  t.served_ever <- true;
  (* Deliberate departure from Figure 4's "Parent <- Sender": a copy grant
     updates only the copyset (accounting) relation, never the routing
     parent. Grant edges point backward toward old roots; mixed with path
     reversal they can close a routing cycle that traps the grantee's own
     next U/W request in an eternal two-node relay (see DESIGN.md §2 for
     the counterexample). Routing pointers move only on U/W reversal and
     token transfer — Naimi's proven discipline. *)
  (* [recorded] is exactly what the granter wrote into its record for us —
     [r.mode], or a stronger carried-over mode whose release may have
     crossed this grant and be headed for a stale-epoch drop. Adopting it
     makes the repair below bidirectional. *)
  t.last_reported <- Decision.some_mode recorded;
  grant_self t r;
  (* Repair both crossing directions: strengthen if we own more than the
     record (a release crossed the grant and already landed), weaken if we
     own less (our release is about to be dropped as stale — without this
     the carried-over record pins a mode nobody owns and the conflicting
     request it blocks starves). *)
  report_owned t ~force:false;
  refresh_freezes t;
  serve_queue t
  end

let handle_token t ~src (m : Msg.t) =
  match m with
  | Msg.Token { serving; sender_owned; sender_epoch; queue; frozen } ->
      observe_clock t serving.timestamp;
      absorb_epoch t sender_epoch;
      detach_from_old_parent t ~src;
      t.accounted_parent <- None;
      t.last_reported <- None;
      t.token <- true;
      t.parent <- None;
      t.ancestry <- [];
      t.saw_transfer <- true;
      t.served_ever <- true;
      t.last_granter <- Some src;
      t.tenure <- max (fst serving.Msg.hint) (fst t.hint + 1);
      (match sender_owned with
      | Some m -> Hashtbl.replace t.children src (m, sender_epoch)
      | None -> Hashtbl.remove t.children src);
      t.queue <- Msg.merge_queues queue t.queue;
      set_frozen t frozen;
      grant_self ~via_token:true t serving;
      refresh_freezes t;
      serve_queue t
  | _ -> assert false

let handle_release t ~src ~new_owned ~epoch =
  match Hashtbl.find_opt t.children src with
  | Some (_, e) when e = epoch -> (
      (match new_owned with
      | None ->
          Hashtbl.remove t.children src;
          Hashtbl.remove t.sent_freeze src
      | Some m -> Hashtbl.replace t.children src (m, e));
      after_owned_change t)
  | Some _ | None -> ()  (* stale epoch or unknown child: superseded *)

let handle_freeze t ~src ~frozen =
  if t.config.freezing && not t.token then begin
    (* Cache revocation honours any freeze — even one that crossed a detach
       in flight: dropping a convenience copy is always safe and keeps
       writers from waiting on phantom records. *)
    let dropped = not (Mode_set.is_empty (Mode_set.inter t.cached frozen)) in
    t.cached <- Mode_set.diff t.cached frozen;
    (* The granting restriction, however, follows the live copyset: only
       the current accounting parent may extend our frozen set. *)
    if t.accounted_parent = Some src then begin
      set_frozen t (Mode_set.union t.frozen frozen);
      refresh_freezes t
    end;
    if dropped then after_owned_change t else serve_queue t
  end

let handle_msg t ~src msg =
  match msg with
  | Msg.Request r ->
      observe_clock t r.timestamp;
      observe_hint t r.hint;
      handle_request t r
  | Msg.Grant { req; epoch; recorded; ancestry } ->
      handle_grant t ~src req ~epoch ~recorded ~ancestry
  | Msg.Token _ -> handle_token t ~src msg
  | Msg.Release { new_owned; epoch } -> handle_release t ~src ~new_owned ~epoch
  | Msg.Freeze { frozen } -> handle_freeze t ~src ~frozen

(* {1 Client API} *)

let request ?(priority = 0) t ~mode =
  if priority < 0 then invalid_arg "Hlock.Node.request: negative priority";
  let seq = t.next_seq in
  t.next_seq <- t.next_seq + 1;
  let r =
    { Msg.requester = t.id; seq; mode; upgrade = false; timestamp = tick t; priority;
      hops = 0; token_only = false; hint = my_hint t; path = [ t.id ] }
  in
  (match t.obs with
  | None -> ()
  | Some f ->
      f (Dcs_obs.Event.Span { requester = t.id; seq }) (Dcs_obs.Event.Requested { mode; priority }));
  handle_request t r;
  seq

let release t ~seq =
  match held_remove t seq with
  | None -> invalid_arg (Printf.sprintf "Hlock.Node.release: #%d not held at node %d" seq t.id)
  | Some m ->
      (match t.obs with
      | None -> ()
      | Some f ->
          f (Dcs_obs.Event.Span { requester = t.id; seq }) (Dcs_obs.Event.Released { mode = m }));
      if t.config.caching && not (is_frozen t m) then t.cached <- Mode_set.add m t.cached;
      after_owned_change t

let upgrade t ~seq =
  match Hashtbl.find_opt t.held seq with
  | Some Mode.U ->
      if not t.token then
        invalid_arg "Hlock.Node.upgrade: protocol invariant violated (U holder must be the token node)";
      let r =
        {
          Msg.requester = t.id;
          seq;
          mode = Mode.W;
          upgrade = true;
          timestamp = tick t;
          priority = 0;
          hops = 0;
          token_only = false;
          hint = my_hint t;
          path = [ t.id ];
        }
      in
      (* The upgrade re-opens the held instance's span as a W request. *)
      (match t.obs with
      | None -> ()
      | Some f ->
          f
            (Dcs_obs.Event.Span { requester = t.id; seq })
            (Dcs_obs.Event.Requested { mode = Mode.W; priority = 0 }));
      ignore (revoke_conflicting t Mode.W);
      let mo = owned_code_for t r in
      if Decision.token_can_grant ~owned:mo Mode.W then begin
        complete_upgrade t r;
        refresh_freezes t;
        serve_queue t
      end
      else
        (* Rule 7: the upgrade outranks every queued request — holding U is
           a reservation for the next write. The service order places
           upgrades ahead of everything, so it is served as soon as the
           remaining readers drain; everything else freezes meanwhile. *)
        enqueue t r
  | Some m ->
      invalid_arg
        (Printf.sprintf "Hlock.Node.upgrade: #%d held in %s, not U" seq (Mode.to_string m))
  | None -> invalid_arg (Printf.sprintf "Hlock.Node.upgrade: #%d not held" seq)

(* Watchdog against custody stalls: crossing requests can leave two pending
   nodes holding each other's requests (a mutual-absorption cycle the
   paper's Table 2(a) does not address). Re-circulating absorbed remote
   requests lets them reach the token node — which always takes custody and
   serves strictly by its queue — so any cycle unwinds. Drivers call this
   periodically on nodes that look stalled; it is a no-op otherwise. *)
let kick t =
  if (not t.token) && t.pending <> None then begin
    (* Two-phase: only re-circulate requests that were already in custody at
       the previous kick — anything younger has waited less than one kick
       period and is almost certainly fine. *)
    let marked (r : Msg.request) = List.mem (r.requester, r.seq) t.kick_marks in
    let stale, keep =
      List.partition (fun (r : Msg.request) -> r.requester <> t.id && marked r) t.queue
    in
    if stale <> [] then begin
      t.queue <- keep;
      List.iter (fun r -> forward_onward t r) stale;
      refresh_freezes t
    end;
    t.kick_marks <-
      List.filter_map
        (fun (r : Msg.request) -> if r.requester <> t.id then Some (r.requester, r.seq) else None)
        t.queue
  end
  else t.kick_marks <- []

(* {1 State snapshots (shard migration)}

   A snapshot is the node's complete persistent protocol state — routing
   and accounting tree anchors, the copyset with its epochs, cached and
   frozen mode sets, the local queue, clocks and counters — as plain data,
   so a lock object's whole per-node population can travel in a shard
   handoff message and be rebuilt on the receiving shard. Only quiescent
   nodes export: locally held instances and the in-flight pending request
   reference live client callbacks, which cannot cross a process boundary;
   the sharding layer parks and replays the traffic around the handoff
   instead. Transient fields ([kick_marks], [pending_trail], send-batch
   buffers) are deliberately dropped — the first holds staleness marks for
   a pending request that must be [None] at export, the second is only
   ever assigned, and the last must be empty outside a batch scope. *)

type snapshot = {
  s_token : bool;
  s_parent : Node_id.t option;
  s_parent_stamp : int;
  s_accounted_parent : Node_id.t option;
  s_accounted_epoch : int;
  s_last_reported : Mode.t option;
  s_cached : Mode_set.t;
  s_children : (Node_id.t * Mode.t * int) list;
  s_queue : Msg.request list;
  s_frozen : Mode_set.t;
  s_sent_freeze : (Node_id.t * Mode_set.t) list;
  s_tenure : int;
  s_hint : int * Node_id.t;
  s_last_granter : Node_id.t option;
  s_ancestry : Node_id.t list;
  s_saw_transfer : bool;
  s_served_ever : bool;
  s_next_seq : int;
  s_clock : int;
  s_epoch_counter : int;
}

let export t =
  if Hashtbl.length t.held > 0 then
    invalid_arg "Hlock.Node.export: node holds granted instances";
  if t.pending <> None then invalid_arg "Hlock.Node.export: node has a pending request";
  if t.batch_depth > 0 then invalid_arg "Hlock.Node.export: open send batch";
  {
    s_token = t.token;
    s_parent = t.parent;
    s_parent_stamp = t.parent_stamp;
    s_accounted_parent = t.accounted_parent;
    s_accounted_epoch = t.accounted_epoch;
    s_last_reported = t.last_reported;
    s_cached = t.cached;
    s_children =
      Hashtbl.fold (fun c (m, e) acc -> (c, m, e) :: acc) t.children []
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b);
    s_queue = t.queue;
    s_frozen = t.frozen;
    s_sent_freeze =
      Hashtbl.fold (fun c ms acc -> (c, ms) :: acc) t.sent_freeze []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    s_tenure = t.tenure;
    s_hint = t.hint;
    s_last_granter = t.last_granter;
    s_ancestry = t.ancestry;
    s_saw_transfer = t.saw_transfer;
    s_served_ever = t.served_ever;
    s_next_seq = t.next_seq;
    s_clock = t.clock;
    s_epoch_counter = t.epoch_counter;
  }

let restore ?(config = default_config) ?obs ~id ~peers ~send ~on_granted ~on_upgraded
    (s : snapshot) =
  let config = if config.freezing then config else { config with caching = false } in
  if peers < 1 || id < 0 || id >= peers then invalid_arg "Hlock.Node.restore: id out of range";
  let t =
    {
      config;
      id;
      peers;
      send;
      on_granted;
      on_upgraded;
      obs;
      token = s.s_token;
      parent = s.s_parent;
      parent_stamp = s.s_parent_stamp;
      accounted_parent = s.s_accounted_parent;
      accounted_epoch = s.s_accounted_epoch;
      last_reported = s.s_last_reported;
      held = Hashtbl.create 8;
      held_counts = Array.make 5 0;
      cached = s.s_cached;
      children = Hashtbl.create 8;
      queue = s.s_queue;
      pending = None;
      pending_trail = None;
      frozen = s.s_frozen;
      sent_freeze = Hashtbl.create 8;
      kick_marks = [];
      tenure = s.s_tenure;
      hint = s.s_hint;
      last_granter = s.s_last_granter;
      ancestry = s.s_ancestry;
      saw_transfer = s.s_saw_transfer;
      served_ever = s.s_served_ever;
      next_seq = s.s_next_seq;
      clock = s.s_clock;
      epoch_counter = s.s_epoch_counter;
      batch_depth = 0;
      batched = [];
    }
  in
  List.iter (fun (c, m, e) -> Hashtbl.replace t.children c (m, e)) s.s_children;
  List.iter (fun (c, ms) -> Hashtbl.replace t.sent_freeze c ms) s.s_sent_freeze;
  t
