open Dcs_modes
open Dcs_proto

type request = {
  requester : Node_id.t;
  seq : int;
  mode : Mode.t;
  upgrade : bool;
  timestamp : int;
  priority : int;
  hops : int;
  token_only : bool;
  hint : int * Node_id.t;
  path : Node_id.t list;
}

type t =
  | Request of request
  | Grant of { req : request; epoch : int; recorded : Mode.t; ancestry : Node_id.t list }
  | Token of {
      serving : request;
      sender_owned : Mode.t option;
      sender_epoch : int;
      queue : request list;
      frozen : Mode_set.t;
    }
  | Release of { new_owned : Mode.t option; epoch : int }
  | Freeze of { frozen : Mode_set.t }

let class_of = function
  | Request _ -> Msg_class.Request
  | Grant _ -> Msg_class.Copy_grant
  | Token _ -> Msg_class.Token_transfer
  | Release _ -> Msg_class.Release
  | Freeze _ -> Msg_class.Freeze

let pp_request ppf r =
  Format.fprintf ppf "{n%d#%d %a%s @@%d%s}" r.requester r.seq Mode.pp r.mode
    (if r.upgrade then "^" else "")
    r.timestamp
    (if r.priority = 0 then "" else Printf.sprintf " p%d" r.priority)

let pp_owned ppf = function
  | None -> Format.pp_print_string ppf "_"
  | Some m -> Mode.pp ppf m

let pp ppf = function
  | Request r -> Format.fprintf ppf "Request %a" pp_request r
  | Grant { req; epoch; recorded; ancestry } ->
      Format.fprintf ppf "Grant %a e%d rec=%a anc=[%s]" pp_request req epoch Mode.pp recorded
        (String.concat "," (List.map string_of_int ancestry))
  | Token { serving; sender_owned; sender_epoch; queue; frozen } ->
      Format.fprintf ppf "Token serving=%a sender_owned=%a e%d |queue|=%d frozen=%a" pp_request
        serving pp_owned sender_owned sender_epoch (List.length queue) Mode_set.pp frozen
  | Release { new_owned; epoch } ->
      Format.fprintf ppf "Release new_owned=%a e%d" pp_owned new_owned epoch
  | Freeze { frozen } -> Format.fprintf ppf "Freeze %a" Mode_set.pp frozen

let request_same a b = a.requester = b.requester && a.seq = b.seq

let request_key r = (r.timestamp, r.requester, r.seq)

let request_lt a b = request_key a < request_key b

let service_key r = ((if r.upgrade then 0 else 1), -r.priority, request_key r)

let service_order a b = compare (service_key a) (service_key b)

let insert_by_service_order r queue =
  let rec go = function
    | [] -> [ r ]
    | head :: rest as q -> if service_order r head < 0 then r :: q else head :: go rest
  in
  go queue

let merge_queues a b =
  (* Stable sort by the service order: priorities first, then Lamport key,
     so causally ordered requests keep their order within a priority level
     and concurrent ones get a deterministic total order. *)
  List.stable_sort service_order (a @ b)
