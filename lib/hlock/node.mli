(** Per-node protocol engine for one hierarchical lock object.

    This is the paper's contribution (Rules 1–7 and the Figure-4
    pseudocode), written as a transport-agnostic state machine: the node
    never performs I/O itself; it calls the [send] callback to emit
    messages and [on_granted] / [on_upgraded] to wake local clients. The
    same engine therefore runs unchanged on the discrete-event simulator
    ({!Dcs_runtime}) and on the real TCP transport ({!Dcs_netkit}).

    {2 State model}

    Each node keeps: a [parent] pointer (routing tree, rooted at the token
    node), the [children] copyset (child → that child's owned mode), the
    multiset of locally [held] modes, a FIFO local [queue] of requests it
    could not serve, at most one [pending] request sent to its parent, and
    the current [frozen] mode set. The {e owned} mode (Definition 3) is the
    strongest of held and children modes and is recomputed on demand.

    {2 Interpretations of under-specified corners} (full catalogue with
    rationale in DESIGN.md §2)

    - Client releases keep the granted mode {e cached} in the copyset
      (Li/Hudak semantics): re-acquisition is message-free until a freeze
      or a conflicting request revokes the copy.
    - Routing and accounting are separate parent relations: releases and
      freezes follow the {e accounting} parent (who granted us, guarded by
      epochs against messages crossing in flight); request routing follows
      pointers moved by transfers (to the queue tail), adaptive Naimi path
      reversal, and grant edges — and is allowed to be transiently cyclic,
      because every relayed request carries its visited path and diverts
      around nodes it has already seen (a sweep must reach the token).
    - Custody (Table 2a queueing at pending nodes) is acyclic by
      construction: cross-mode absorption descends the mode hierarchy and
      same-mode absorption only takes Lamport-younger requests; the
      {!kick} watchdog re-circulates custody as a belt-and-braces measure.
    - Upgrades (Rule 7) always execute at the token node (no owned mode
      can child-grant [U], so [U] is always served by transfer) and
      outrank every queued request.
    - Requests carry priorities: queues serve by descending priority, FIFO
      within a level — exact at the token node, inverted by at most the
      custodian's own wait inside custody chains. *)

open Dcs_modes
open Dcs_proto

(** Deliberately-broken protocol variants, for validating correctness
    tooling ({!Dcs_check}): a checker worth trusting must catch these.
    Never enabled by {!default_config}. *)
type mutation =
  | Weak_freeze
      (** The token node computes every Table 2(b) freeze set one mode
          short (the strongest member is dropped), so the caches blocking a
          queued writer are never revoked — the writer starves. *)
  | Ignore_frozen
      (** Grant decisions skip the frozen-set check entirely (Rule 6's
          gating off): newcomers overtake queued conflicting requests
          without bound, and retained caches can block a writer forever. *)

(** Ablation switches; the paper's protocol is {!default_config}. *)
type config = {
  eager_release : bool;
      (** When true, send a release message upward on {e every} local or
          child release even if the owned mode did not weaken — the "more
          eager variant" the paper compares against conceptually (§3.2).
          Default false (Rule 5.2: only on weakening). *)
  freezing : bool;
      (** When false, Rule 6 is disabled: no freeze bookkeeping or
          messages, so compatible newcomers may starve queued requests;
          caching is forcibly disabled too, because freezes are the
          cache-revocation channel. Default true. *)
  reverse_all : bool;
      (** Routing ablation: when true, relayers re-point to the requester
          for every mode (full Naimi reversal); when false (default) only
          for [U]/[W] requests, whose requesters are certain future token
          owners. *)
  grant_edges : bool;
      (** Routing ablation: when true (default), a copy grant re-points the
          grantee's routing parent at the granter (Figure 4's
          "Parent <- Sender"). *)
  caching : bool;
      (** When true (default), a client release keeps the granted mode in
          the copyset as a {e cached} copy (the Li/Hudak copyset semantics
          the paper generalizes): re-acquisition is message-free (Rule 2)
          until the copy is revoked by a freeze or by a conflicting request
          passing through. When false, every release relinquishes the mode
          immediately. *)
  mutation : mutation option;
      (** Seeded protocol fault for differential testing; [None] (the
          default) is the faithful protocol. See {!mutation}. *)
}

val default_config : config

type t

(** [create ~config ~id ~peers ~is_token ~parent ~send ~on_granted
    ~on_upgraded ()] makes a node engine for a population of [peers] nodes
    with ids [0..peers-1]. Exactly one node of a lock-object's population must
    have [is_token = true] (and [parent = None]); every other node needs
    [parent] pointing (directly or transitively) toward it. [send dst msg]
    must deliver [msg] to node [dst]'s {!handle_msg} (reliably, in any
    order). [on_granted r] fires when local request [r] is granted;
    [on_upgraded seq] when a local U→W upgrade completes.

    [obs], when given, receives every request-lifecycle event this node
    produces ({!Dcs_obs.Event.scope} and [kind]); the embedding supplies
    time, lock and node identity when it records. Request events carry
    [Span {requester; seq}]; frozen-set events carry [Node]. When absent,
    instrumentation costs one branch per site and allocates nothing. *)
val create :
  ?config:config ->
  ?obs:(Dcs_obs.Event.scope -> Dcs_obs.Event.kind -> unit) ->
  id:Node_id.t ->
  peers:int ->
  is_token:bool ->
  parent:Node_id.t option ->
  send:(dst:Node_id.t -> Msg.t -> unit) ->
  on_granted:(Msg.request -> unit) ->
  on_upgraded:(int -> unit) ->
  unit ->
  t

(** {1 Client operations} *)

(** [request t ~mode] issues a local lock request; returns its [seq]
    (unique per node). The grant arrives via [on_granted] — possibly
    synchronously, inside this call, when Rule 2 allows a message-free
    local acquisition. [priority] (default 0, non-negative) orders queue
    service: higher priorities are served first, FIFO within a level —
    the prioritized-token extension of the authors' earlier work
    [Mueller 98, 99] that the paper's FIFO model subsumes. *)
val request : ?priority:int -> t -> mode:Mode.t -> int

(** [release t ~seq] releases the held instance granted for [seq].
    Raises [Invalid_argument] if [seq] is not currently held. *)
val release : t -> seq:int -> unit

(** [upgrade t ~seq] upgrades a held [U] instance to [W] (Rule 7).
    Completion is signalled via [on_upgraded seq] (possibly synchronously).
    Raises [Invalid_argument] if [seq] is not held in mode [U].

    Per the protocol, the [U] holder is necessarily the token node; the
    upgrade never releases [U] and is served as soon as every other held
    mode is released. *)
val upgrade : t -> seq:int -> unit

(** [kick t] re-circulates absorbed remote requests when this node is
    still waiting for its own pending request — the watchdog that unwinds
    mutual-custody cycles (two pending nodes holding each other's requests
    after a message crossing). Call it periodically (order of a few network
    round trips); it is cheap and a no-op when the node is not in the
    vulnerable state. *)
val kick : t -> unit

(** {1 Transport hook} *)

(** Deliver one protocol message from node [src]. *)
val handle_msg : t -> src:Node_id.t -> Msg.t -> unit

(** [with_send_batch t f] buffers every message [f] emits and flushes the
    batch when the outermost scope exits (scopes nest), after coalescing
    messages a later message to the same destination provably supersedes:
    a Freeze followed by another Freeze (sent sets are cumulative), and a
    Release followed by another Release at the same epoch (the final
    owned report is what the parent's record ends at either way). Only
    per-destination-adjacent pairs coalesce, so nothing is reordered
    relative to other traffic on the same link, and requests, grants and
    tokens are never dropped.

    This is an opt-in transport-level hook: real transports (the TCP
    runner) wrap each message delivery / client call in it so compatible
    local grants batch their upward Release/Freeze traffic into one wire
    message; the simulator does not use it, keeping simulated message
    counts and determinism digests exactly at the protocol's baseline. *)
val with_send_batch : t -> (unit -> 'a) -> 'a

(** Wire messages saved by {!with_send_batch} coalescing (process-wide). *)
val coalesced : int ref

(** {1 Introspection (tests, invariant checkers, tracing)} *)

val id : t -> Node_id.t
val is_token : t -> bool
val parent : t -> Node_id.t option

(** Strongest of held and children modes (Definition 3); [None] = ⊥. *)
val owned : t -> Mode.t option

(** Locally held instances as [(seq, mode)]. *)
val held : t -> (int * Mode.t) list

(** Copyset: children and their recorded owned modes. *)
val children : t -> (Node_id.t * Mode.t) list

(** Cached (granted but unheld) modes retained for message-free
    re-acquisition; see [config.caching]. *)
val cached : t -> Mode.t list

(** The node currently accounting us in its copyset, with the epoch of the
    relationship; [None] when we own ⊥ or hold the token. *)
val accounting : t -> (Node_id.t * int) option

(** Local FIFO queue of unserved requests. *)
val queue : t -> Msg.request list

val frozen : t -> Mode_set.t
val pending : t -> Msg.request option

(** One-line state summary for traces. *)
val pp_state : Format.formatter -> t -> unit

(** {1 State snapshots (shard migration)}

    The node's complete persistent protocol state as plain data, so a
    lock object's per-node population can travel inside a shard-handoff
    wire message ({!Dcs_wire.Codec}) and be rebuilt on the receiving
    shard. Fields mirror the state model above; [s_children] and
    [s_sent_freeze] are sorted by node id so equal states export equal
    snapshots regardless of hash-table history. *)

type snapshot = {
  s_token : bool;
  s_parent : Node_id.t option;
  s_parent_stamp : int;
  s_accounted_parent : Node_id.t option;
  s_accounted_epoch : int;
  s_last_reported : Mode.t option;
  s_cached : Mode_set.t;
  s_children : (Node_id.t * Mode.t * int) list;  (** copyset: (child, mode, epoch) *)
  s_queue : Msg.request list;
  s_frozen : Mode_set.t;
  s_sent_freeze : (Node_id.t * Mode_set.t) list;
  s_tenure : int;
  s_hint : int * Node_id.t;
  s_last_granter : Node_id.t option;
  s_ancestry : Node_id.t list;
  s_saw_transfer : bool;
  s_served_ever : bool;
  s_next_seq : int;
  s_clock : int;
  s_epoch_counter : int;
}

(** Capture this node's persistent state. The node must be client-quiescent:
    no locally held instances, no pending request, no open send batch —
    raises [Invalid_argument] otherwise. (Queued {e remote} requests and
    copyset state are part of the snapshot; only live client callbacks
    cannot cross a shard boundary.) *)
val export : t -> snapshot

(** Rebuild a node from a snapshot with fresh transport and client hooks —
    the receiving end of a shard handoff. [restore (export t)] behaves
    identically to [t] for every subsequent input. *)
val restore :
  ?config:config ->
  ?obs:(Dcs_obs.Event.scope -> Dcs_obs.Event.kind -> unit) ->
  id:Node_id.t ->
  peers:int ->
  send:(dst:Node_id.t -> Msg.t -> unit) ->
  on_granted:(Msg.request -> unit) ->
  on_upgraded:(int -> unit) ->
  snapshot ->
  t

(** {1 Global diagnostic counters}

    Process-wide tallies of routing behaviour, for experiments and tests:
    total request relays, relays that had to divert around an
    already-visited hop, and full sweep restarts. *)

val relays : int ref
val diversions : int ref
val sweep_restarts : int ref
