(** Wire messages of the hierarchical-locking protocol (one lock object).

    Six message kinds drive the protocol (paper §3.4 "receiving request,
    grant, token, release, freeze and update messages"); the paper's
    "update" is subsumed here by {!Release} carrying the child's new owned
    mode (including [None] = detach). *)

open Dcs_modes
open Dcs_proto

(** A lock request as it travels the tree toward a granter. *)
type request = {
  requester : Node_id.t;  (** the node that wants the lock *)
  seq : int;  (** requester-local sequence number; [(requester, seq)] is a
                  globally unique request id, echoed back in grants *)
  mode : Mode.t;  (** requested mode *)
  upgrade : bool;  (** Rule 7: a [W] request by the holder of the [U] lock;
                       the requester's own [U] is masked when checking
                       grantability *)
  timestamp : int;  (** Lamport time at issue; used to merge local queues
                        FIFO-consistently on token transfer *)
  priority : int;  (** request priority (0 = default; larger = more
                       urgent). Queues serve strictly by descending
                       priority, FIFO (Lamport order) within a priority
                       level — the prioritized-token semantics of the
                       authors' earlier protocols [11, 12] that this
                       paper's FIFO model generalizes. Non-negative. *)
  hops : int;  (** relay hops so far; when it exceeds twice the population
                   the request switches to sweep routing *)
  token_only : bool;
      (** Serve this request only at the token node. Set when the requester
          already owns a covering compatible mode and is blocked purely by
          a frozen-mode drain: letting a node inside the requester's own
          accounting subtree grant it could close an accounting ring that
          disconnects a whole group of holders from the token (a safety
          hazard); queueing it at the token is also what FIFO fairness
          wants. *)
  hint : int * Dcs_proto.Node_id.t;
      (** the freshest token location the sender knows, as
          [(tenure, owner)] — tenure increments at every token transfer.
          Receivers keep the max-tenure hint they have seen; requests that
          cannot make progress along tree pointers jump to the hinted
          owner, which is at worst a few transfer edges behind the token. *)
  path : Dcs_proto.Node_id.t list;
      (** nodes visited (requester and relayers, newest first), used by
          sweep routing. Under normal routing requests simply follow
          parent pointers — revisits are fine because pointers mutate
          underneath. A request whose hop count exceeds [2·peers] is
          assumed trapped in a transient routing cycle and switches to a
          sweep: lowest-id unvisited node next, which must reach a node
          that takes custody (the token holder in the worst case). *)
}

type t =
  | Request of request
      (** A request being issued or relayed up parent links (Rules 2, 4). *)
  | Grant of {
      req : request;
      epoch : int;
      recorded : Mode.t;
      ancestry : Dcs_proto.Node_id.t list;
    }
      (** Copy grant: the sender granted [req] and adopted the requester as
          its child (Rule 3). Sent directly to [req.requester]. [epoch] is
          the granter's fresh epoch for this parent/child relationship;
          the child echoes it in every {!Release} so the granter can drop
          release messages that crossed the grant in flight. [recorded] is
          the child mode the granter wrote into its copyset record — at
          least [req.mode], and stronger when a previous record was carried
          over because its release may still be in flight; the child adopts
          it as its last-reported mode so any gap between the record and
          what it really owns is repaired by its next report rather than
          silently lost with the stale-epoch release. [ancestry] is the
          granter's accounting-ancestor chain (nearest first, granter not
          included); the grantee prepends the granter and adopts it, so it
          can refuse to child-grant to its own (approximate) ancestors. *)
  | Token of {
      serving : request;  (** the request answered by this transfer *)
      sender_owned : Mode.t option;
          (** sender's residual owned mode; [Some m] makes the sender a
              child of the new token node, [None] detaches it *)
      sender_epoch : int;
          (** epoch pairing the sender-as-child with the new token node *)
      queue : request list;  (** sender's local queue, FIFO order *)
      frozen : Mode_set.t;  (** frozen modes at handover *)
    }  (** Token transfer (Rule 3.2 operational, Rule 4's queue handoff). *)
  | Release of { new_owned : Mode.t option; epoch : int }
      (** The sending child's owned mode changed to [new_owned]; [None]
          removes it from the copyset (Rule 5.2). Also used as a detach
          notice when a child is re-parented by a grant from a different
          node, and (rarely) as a strengthening "update" after a grant
          raced a release. Applied by the parent only when [epoch] matches
          its current record for the child. *)
  | Freeze of { frozen : Mode_set.t }
      (** Full replacement of the receiver's frozen-mode set (Rule 6);
          a shrinking set un-freezes. *)

(** Figure-7 bucket of a message. *)
val class_of : t -> Msg_class.t

val pp_request : Format.formatter -> request -> unit
val pp : Format.formatter -> t -> unit

(** Requests are equal iff their [(requester, seq)] ids are. *)
val request_same : request -> request -> bool

(** Total order on requests by [(timestamp, requester, seq)] — the global
    serialization order used for the absorption rule (a node only queues
    same-mode requests {e younger} than its own pending one; older requests
    are relayed onward, so custody chains always point from younger to
    older and the globally oldest request can never be captured in a
    circular wait). Deliberately ignores priority: custody acyclicity needs
    a priority-independent order. *)
val request_lt : request -> request -> bool

(** Queue service order: upgrades first (Rule 7), then by descending
    priority, then the {!request_lt} FIFO order. *)
val service_order : request -> request -> int

(** Insert into a queue kept sorted by {!service_order} (stable: equal
    keys keep arrival order). *)
val insert_by_service_order : request -> request list -> request list

(** FIFO-merge two queues by [(timestamp, requester, seq)]; both inputs must
    be sorted the same way (they are, being FIFO queues of Lamport-stamped
    requests). *)
val merge_queues : request list -> request list -> request list
