(** Bounded exhaustive model checking of the hierarchical-locking protocol.

    For a small node population and a fixed script of client actions, the
    checker explores {e every} order in which in-flight messages can be
    delivered (per-link FIFO is preserved, matching the transport
    contract), deduplicating states by a structural digest. In every
    reachable state it asserts the safety invariants:

    - all concurrently retained (held or cached) modes are pairwise
      compatible,
    - exactly one token exists (holders plus in-flight transfers).

    In every {e terminal} state (no messages left) it additionally asserts
    liveness for the script — every request was granted, every upgrade
    completed, and all clients released — and grant-order fairness: a
    node's own requests for the same mode are granted in issue order
    (cross-node and cross-mode overtaking is legitimate under Rule 2
    caching, so only the same-node same-mode discipline is FIFO-checkable
    without false positives).

    Clients are modelled as release-on-grant: each scripted acquisition
    releases as soon as it is granted (after upgrading, for upgrade
    actions), so terminal states are fully quiescent.

    This is replay-based (each explored path re-executes the protocol from
    scratch), so it suits populations of 2–4 nodes and scripts of 2–5
    actions — which is exactly where the historical protocol bugs lived
    (crossing requests, mutual absorption, upgrade deadlocks). *)

type action =
  | Acquire of { node : int; mode : Dcs_modes.Mode.t }
      (** request, then release as soon as granted *)
  | Acquire_upgrade of { node : int }
      (** request [U]; upgrade to [W] on grant; release when upgraded *)

type result = {
  states : int;  (** distinct states visited *)
  terminals : int;  (** quiescent states reached *)
  truncated : bool;  (** hit [max_states] before finishing *)
  violations : string list;  (** empty = all checks passed *)
}

val explore :
  ?config:Dcs_hlock.Node.config ->
  ?max_states:int ->
  nodes:int ->
  actions:action list ->
  unit ->
  result

val pp_result : Format.formatter -> result -> unit
