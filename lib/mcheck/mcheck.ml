open Dcs_modes
module Node = Dcs_hlock.Node
module Msg = Dcs_hlock.Msg

type action =
  | Acquire of { node : int; mode : Mode.t }
  | Acquire_upgrade of { node : int }

type result = {
  states : int;
  terminals : int;
  truncated : bool;
  violations : string list;
}

(* One replayed execution: the scripted actions are injected up front, then
   the messages are delivered according to [path] (a list of directed links;
   each step delivers the head of that link's FIFO — the transport
   contract). *)
type run = {
  mutable nodes_arr : Node.t array;
  wire : ((int * int) * Msg.t Queue.t) list ref;  (* per-link FIFO *)
  mutable granted : int;
  mutable upgraded : int;
  mutable outstanding : int;  (* requests not yet fully finished *)
  mutable tokens_in_flight : int;
  mutable grant_log : (int * int * Mode.t) list;  (* (node, seq, mode), newest first *)
}

let link run src dst =
  match List.assoc_opt (src, dst) !(run.wire) with
  | Some q -> q
  | None ->
      let q = Queue.create () in
      run.wire := ((src, dst), q) :: !(run.wire);
      q

let replay ?config ~nodes ~actions path =
  let run =
    { nodes_arr = [||]; wire = ref []; granted = 0; upgraded = 0; outstanding = 0;
      tokens_in_flight = 0; grant_log = [] }
  in
  (* Plan lookup: what the client at [node] does with grant [seq]. *)
  let plans : (int * int, [ `Release | `Upgrade ]) Hashtbl.t = Hashtbl.create 8 in
  let arr =
    Array.init nodes (fun id ->
        let send ~dst msg =
          (match msg with Msg.Token _ -> run.tokens_in_flight <- run.tokens_in_flight + 1 | _ -> ());
          Queue.push msg (link run id dst)
        in
        let rec node () = run.nodes_arr.(id)
        and on_granted (r : Msg.request) =
          run.granted <- run.granted + 1;
          run.grant_log <- (id, r.seq, r.mode) :: run.grant_log;
          match Hashtbl.find_opt plans (id, r.seq) with
          | Some `Release ->
              run.outstanding <- run.outstanding - 1;
              Node.release (node ()) ~seq:r.seq
          | Some `Upgrade -> Node.upgrade (node ()) ~seq:r.seq
          | None -> ()
        and on_upgraded seq =
          run.upgraded <- run.upgraded + 1;
          run.outstanding <- run.outstanding - 1;
          Node.release (node ()) ~seq
        in
        Node.create ?config ~id ~peers:nodes ~is_token:(id = 0)
          ~parent:(if id = 0 then None else Some 0)
          ~send ~on_granted ~on_upgraded ())
  in
  run.nodes_arr <- arr;
  (* Inject the script. A request may be granted synchronously inside
     [Node.request], before the seq is returned, so the client plan is
     registered in advance under the predicted seq (they are assigned
     densely per node). *)
  List.iter
    (fun action ->
      run.outstanding <- run.outstanding + 1;
      match action with
      | Acquire { node; mode } ->
          (* Predict the seq: the engine numbers requests 0,1,2,... per
             node; track how many this node has issued so far. *)
          let issued = Hashtbl.fold (fun (n, _) _ acc -> if n = node then acc + 1 else acc) plans 0 in
          Hashtbl.replace plans (node, issued) `Release;
          let seq = Node.request arr.(node) ~mode in
          assert (seq = issued)
      | Acquire_upgrade { node } ->
          let issued = Hashtbl.fold (fun (n, _) _ acc -> if n = node then acc + 1 else acc) plans 0 in
          Hashtbl.replace plans (node, issued) `Upgrade;
          let seq = Node.request arr.(node) ~mode:Mode.U in
          assert (seq = issued))
    actions;
  (* Deliver per path. *)
  List.iter
    (fun (src, dst) ->
      let q = link run src dst in
      if Queue.is_empty q then failwith "mcheck: path delivers from an empty link"
      else begin
        let msg = Queue.pop q in
        (match msg with Msg.Token _ -> run.tokens_in_flight <- run.tokens_in_flight - 1 | _ -> ());
        Node.handle_msg arr.(dst) ~src msg
      end)
    path;
  run

let nonempty_links run =
  List.filter_map
    (fun ((src, dst), q) -> if Queue.is_empty q then None else Some (src, dst))
    !(run.wire)
  |> List.sort compare

let digest run =
  let b = Buffer.create 512 in
  Array.iter
    (fun e ->
      Buffer.add_string b (Format.asprintf "%a" Node.pp_state e);
      Buffer.add_string b
        (String.concat "," (List.map Mode.to_string (Node.cached e)));
      (match Node.accounting e with
      | Some (p, ep) -> Buffer.add_string b (Printf.sprintf "acct%d.%d" p ep)
      | None -> Buffer.add_string b "acct_");
      Buffer.add_char b '|')
    run.nodes_arr;
  List.iter
    (fun ((src, dst), q) ->
      Buffer.add_string b (Printf.sprintf "[%d>%d:" src dst);
      Queue.iter (fun m -> Buffer.add_string b (Format.asprintf "%a;" Msg.pp m)) q;
      Buffer.add_char b ']')
    (List.sort compare !(run.wire));
  Digest.string (Buffer.contents b)

let safety_violations run =
  let out = ref [] in
  let add fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let retained =
    Array.to_list run.nodes_arr
    |> List.concat_map (fun e ->
           List.map (fun (_, m) -> (Node.id e, m)) (Node.held e)
           @ List.map (fun m -> (Node.id e, m)) (Node.cached e))
  in
  let rec pairs = function
    | [] -> ()
    | (n1, m1) :: rest ->
        List.iter
          (fun (n2, m2) ->
            if not (Compat.compatible m1 m2) then
              add "incompatible retained: n%d:%s vs n%d:%s" n1 (Mode.to_string m1) n2
                (Mode.to_string m2))
          rest;
        pairs rest
  in
  pairs retained;
  let holders = Array.to_list run.nodes_arr |> List.filter Node.is_token |> List.length in
  if holders + run.tokens_in_flight <> 1 then
    add "token multiplicity %d" (holders + run.tokens_in_flight);
  !out

(* Grant-order fairness, checked only in terminal states: a node's own
   requests for the same mode must be granted in issue (seq) order. This is
   the strongest FIFO property the protocol actually promises — cache
   grants may legitimately overtake remote requests of other modes until
   the freeze propagates, but two identical local requests take the same
   path (both self-granted, or both absorbed into the same FIFO queue), so
   reordering them means a queue discipline bug. *)
let grant_order_violations run =
  let out = ref [] in
  let last : (int * Mode.t, int) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun (node, seq, mode) ->
      (match Hashtbl.find_opt last (node, mode) with
      | Some prev when prev > seq ->
          out :=
            Printf.sprintf "grant order: n%d granted %s seq %d after seq %d" node
              (Mode.to_string mode) seq prev
            :: !out
      | _ -> ());
      Hashtbl.replace last (node, mode) seq)
    (List.rev run.grant_log);
  !out

let explore ?config ?(max_states = 100_000) ~nodes ~actions () =
  let seen = Hashtbl.create 4096 in
  let violations = ref [] in
  let terminals = ref 0 in
  let states = ref 0 in
  let truncated = ref false in
  let queue = Queue.create () in
  Queue.push [] queue;
  let expected_grants =
    List.length actions
  and expected_upgrades =
    List.length (List.filter (function Acquire_upgrade _ -> true | _ -> false) actions)
  in
  while (not (Queue.is_empty queue)) && not !truncated do
    let path = Queue.pop queue in
    let run = replay ?config ~nodes ~actions (List.rev path) in
    let d = digest run in
    if not (Hashtbl.mem seen d) then begin
      Hashtbl.replace seen d ();
      incr states;
      if !states >= max_states then truncated := true;
      (match safety_violations run with
      | [] -> ()
      | vs ->
          if List.length !violations < 5 then
            violations := (String.concat "; " vs) :: !violations);
      match nonempty_links run with
      | [] ->
          incr terminals;
          if run.granted < expected_grants then
            violations :=
              Printf.sprintf "terminal state with %d/%d grants (liveness)" run.granted
                expected_grants
              :: !violations;
          if run.upgraded < expected_upgrades then
            violations :=
              Printf.sprintf "terminal state with %d/%d upgrades" run.upgraded expected_upgrades
              :: !violations;
          if run.outstanding > 0 then
            violations :=
              Printf.sprintf "terminal state with %d unfinished clients" run.outstanding
              :: !violations;
          if List.length !violations < 5 then
            List.iter (fun v -> violations := v :: !violations) (grant_order_violations run)
      | links -> List.iter (fun l -> Queue.push (l :: path) queue) links
    end
  done;
  { states = !states; terminals = !terminals; truncated = !truncated; violations = !violations }

let pp_result ppf r =
  Format.fprintf ppf "states=%d terminals=%d%s %s" r.states r.terminals
    (if r.truncated then " (truncated)" else "")
    (match r.violations with
    | [] -> "no violations"
    | vs -> "VIOLATIONS: " ^ String.concat " / " vs)
