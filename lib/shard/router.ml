(* The shard router: partitions the lock-set namespace into buckets,
   homes each bucket at exactly one shard (Directory), executes the
   namespace's request bursts round by round — every shard serving its
   own buckets on its own pooled Cell, fanned over domains with
   Dcs_netkit.Parallel — and migrates buckets between shards live at
   round boundaries.

   Between bursts a lock set's whole protocol state rests as one encoded
   blob (Codec.encode_cluster_state) in its bucket's store; a burst
   decodes it, runs to quiescence, and writes the new blob back. A
   migration therefore only has to move blobs: the source's bucket store
   travels inside a real Handoff wire message (encoded and re-decoded
   through Dcs_wire.Codec, exactly the bytes a cross-process handoff
   ships), together with the jobs that arrived for the bucket while it
   was migrating — parked, carried in the handoff, and replayed in
   arrival order by the new home before any of its next-round work.

   Determinism: the plan and every burst's content derive from
   (seed, set, burst ordinal) only — never from plan position, executing
   shard or domain — and a reset Cell is observationally fresh, so the
   final per-set states, grant counts and digests are invariant under
   shard count, bucket count, worker count and migration schedule. The
   unsharded service is literally the shards = buckets = 1 case. *)

module Rng = Dcs_sim.Rng
module Dist = Dcs_sim.Dist
module Codec = Dcs_wire.Codec
module Shard_msg = Dcs_wire.Shard_msg
module Parallel = Dcs_netkit.Parallel

type config = {
  shards : int;
  buckets : int;
  lock_sets : int;
  nodes : int;
  rounds : int;
  jobs_per_round : int;
  ops_per_burst : int;
  skew : float;
  seed : int64;
  latency : Dist.t;
}

let default_config =
  {
    shards = 1;
    buckets = 8;
    lock_sets = 16;
    nodes = 8;
    rounds = 4;
    jobs_per_round = 8;
    ops_per_burst = 4;
    skew = 0.0;
    seed = 42L;
    latency = Dist.uniform_around 150.0;
  }

type migration = { round : int; bucket : int; dst : int }

type shard_stat = { shard : int; bursts : int; grants : int; msgs : int; buckets_owned : int }

type result = {
  digest : int64;
  bucket_digests : (int * int64) list;
  bursts : int;
  grants : int;
  upgrades : int;
  msgs : int;
  shard_stats : shard_stat list;
  migrations_applied : int;
  parked_replayed : int;
  handoff_bytes : int;
  rounds_run : int;
}

(* At-rest record for one lock set: encoded cluster state plus the
   accounting that travels with it in a handoff. *)
type set_state = {
  mutable state : string;
  mutable s_bursts : int;
  mutable s_grants : int;
  mutable s_msgs : int;
}

let bucket_of_set = Directory.bucket_of_set

(* {1 Digests} *)

let fnv_offset = 0xcbf29ce484222325L
let fnv_prime = 0x100000001b3L
let mix h x = Int64.mul (Int64.logxor h x) fnv_prime
let mix_int h i = mix h (Int64.of_int i)
let mix_string h s = String.fold_left (fun h c -> mix_int h (Char.code c)) h s

let mix_set h set (st : set_state) =
  let h = mix_int h set in
  let h = mix_int h st.s_bursts in
  let h = mix_int h st.s_grants in
  let h = mix_int h st.s_msgs in
  mix_string h st.state

let digest_of_store ~lock_sets find =
  let digest = ref fnv_offset in
  for set = 0 to lock_sets - 1 do
    match find set with None -> () | Some st -> digest := mix_set !digest set st
  done;
  !digest

(* {1 Handoff conversions}

   A set's at-rest record and its wire form are interconvertible with no
   information to spare: the wire entry carries (set, bursts, grants,
   msgs, state) and the at-rest record keeps exactly those, so state that
   leaves through one and returns through the other is bit-identical. *)

let set_state_of_entry (e : Shard_msg.handoff_entry) =
  {
    state = Codec.encode_cluster_state e.Shard_msg.state;
    s_bursts = e.Shard_msg.bursts;
    s_grants = e.Shard_msg.grants;
    s_msgs = e.Shard_msg.msgs;
  }

let entry_of_set_state ~set (st : set_state) =
  {
    Shard_msg.set;
    bursts = st.s_bursts;
    grants = st.s_grants;
    msgs = st.s_msgs;
    state = Codec.decode_cluster_state st.state;
  }

(* Bucket store contents as sorted wire entries — handoff send order. *)
let entries_of_store tbl =
  let sets = Hashtbl.fold (fun set st acc -> (set, st) :: acc) tbl [] in
  let sets = List.sort (fun (a, _) (b, _) -> compare a b) sets in
  List.map (fun (set, st) -> entry_of_set_state ~set st) sets

(* {1 One burst}

   A pure function of (config.seed, job, prior state): reset the cell to
   the burst's seed and restored state, schedule the burst's ops, run to
   quiescence, export. [Cell.drain] returning [Ok] proves every request
   was granted — a burst cannot silently lose grants. *)

let run_burst cfg cell tbl (job : Traffic.job) =
  let prior = Hashtbl.find_opt tbl job.Traffic.set in
  (match prior with
  | Some p when p.s_bursts <> job.Traffic.burst ->
      failwith
        (Printf.sprintf "Router: set %d expected burst %d, got %d (ordering violated)"
           job.Traffic.set p.s_bursts job.Traffic.burst)
  | None when job.Traffic.burst <> 0 ->
      failwith
        (Printf.sprintf "Router: set %d first burst has ordinal %d (handoff lost state?)"
           job.Traffic.set job.Traffic.burst)
  | _ -> ());
  let restore = Option.map (fun p -> [| Codec.decode_cluster_state p.state |]) prior in
  let burst_seed = Parallel.cell_seed ~base:cfg.seed ~salt:(Traffic.salt_of_job job) in
  Cell.reset ?restore cell ~seed:(Int64.add burst_seed 0x9E37L) ~locks:1;
  let ops = Traffic.burst_ops ~seed:burst_seed ~nodes:cfg.nodes ~ops:cfg.ops_per_burst in
  let upgrades = ref 0 in
  List.iter
    (fun (op : Traffic.op) ->
      Cell.schedule cell ~after:op.at (fun () ->
          let seq = ref (-1) in
          seq :=
            Cell.request ~priority:op.priority cell ~node:op.node ~lock:0 ~mode:op.mode
              ~on_granted:(fun () ->
                if op.upgrade then
                  Cell.schedule cell ~after:(op.hold /. 2.0) (fun () ->
                      Cell.upgrade cell ~node:op.node ~lock:0 ~seq:!seq ~on_upgraded:(fun () ->
                          incr upgrades;
                          Cell.schedule cell ~after:(op.hold /. 2.0) (fun () ->
                              Cell.release cell ~node:op.node ~lock:0 ~seq:!seq)))
                else
                  Cell.schedule cell ~after:op.hold (fun () ->
                      Cell.release cell ~node:op.node ~lock:0 ~seq:!seq))))
    ops;
  (match Cell.drain cell with
  | Ok () -> ()
  | Error `Undrained ->
      failwith (Printf.sprintf "Router: burst (%d, %d) did not drain" job.Traffic.set job.Traffic.burst)
  | Error (`Stuck n) ->
      failwith
        (Printf.sprintf "Router: burst (%d, %d) lost %d grants" job.Traffic.set job.Traffic.burst n));
  let bytes = Codec.encode_cluster_state (Cell.export_lock cell ~lock:0) in
  let burst_msgs = Dcs_proto.Counters.total (Cell.message_counters cell) in
  let burst_grants = List.length ops in
  (match prior with
  | Some p ->
      p.state <- bytes;
      p.s_bursts <- p.s_bursts + 1;
      p.s_grants <- p.s_grants + burst_grants;
      p.s_msgs <- p.s_msgs + burst_msgs
  | None ->
      Hashtbl.replace tbl job.Traffic.set
        { state = bytes; s_bursts = 1; s_grants = burst_grants; s_msgs = burst_msgs });
  (burst_grants, !upgrades, burst_msgs)

(* {1 The round loop} *)

let validate_migrations cfg migrations =
  List.iter
    (fun m ->
      if m.round < 0 || m.round >= cfg.rounds then
        invalid_arg (Printf.sprintf "Router.run: migration round %d out of range" m.round);
      if m.bucket < 0 || m.bucket >= cfg.buckets then
        invalid_arg (Printf.sprintf "Router.run: migration bucket %d out of range" m.bucket);
      if m.dst < 0 || m.dst >= cfg.shards then
        invalid_arg (Printf.sprintf "Router.run: migration dst %d out of range" m.dst))
    migrations;
  (* Replay the schedule against the ownership map it produces: a bucket
     migrated to its current home, or twice in one round, would otherwise
     only surface as a [Directory.begin_migration] failure deep inside the
     round loop — and, cross-process, inside every worker at once. *)
  let home = Array.init cfg.buckets (fun b -> b mod cfg.shards) in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun m ->
      if Hashtbl.mem seen (m.round, m.bucket) then
        invalid_arg
          (Printf.sprintf "Router.run: bucket %d migrated twice in round %d" m.bucket m.round);
      Hashtbl.add seen (m.round, m.bucket) ();
      if home.(m.bucket) = m.dst then
        invalid_arg
          (Printf.sprintf "Router.run: round %d migrates bucket %d to shard %d, its current home"
             m.round m.bucket m.dst);
      home.(m.bucket) <- m.dst)
    (List.stable_sort (fun a b -> compare a.round b.round) migrations)

let run ?jobs ?(migrations = []) cfg =
  if cfg.shards < 1 then invalid_arg "Router.run: need at least one shard";
  if cfg.buckets < 1 then invalid_arg "Router.run: need at least one bucket";
  if cfg.nodes < 1 then invalid_arg "Router.run: need at least one node";
  if cfg.ops_per_burst < 1 then invalid_arg "Router.run: need at least one op per burst";
  validate_migrations cfg migrations;
  let plan =
    Traffic.plan ~skew:cfg.skew ~seed:cfg.seed ~lock_sets:cfg.lock_sets ~rounds:cfg.rounds
      ~jobs_per_round:cfg.jobs_per_round ()
  in
  let dir = Directory.create ~buckets:cfg.buckets ~shards:cfg.shards in
  let cells = Array.init cfg.shards (fun _ -> Cell.create ~latency:cfg.latency ~nodes:cfg.nodes ()) in
  let stores = Array.init cfg.buckets (fun _ -> Hashtbl.create 16) in
  (* Cumulative per-shard accounting (the balance table). *)
  let sh_bursts = Array.make cfg.shards 0 in
  let sh_grants = Array.make cfg.shards 0 in
  let sh_msgs = Array.make cfg.shards 0 in
  let total_upgrades = ref 0 in
  let migrations_applied = ref 0 in
  let parked_replayed = ref 0 in
  let handoff_bytes = ref 0 in
  (* Jobs a committed handoff carried, to replay at the new home before
     its own next-round work; in park order. *)
  let replays : Traffic.job list array = Array.make cfg.shards [] in
  let have_replays () = Array.exists (fun l -> l <> []) replays in
  let rounds_run = ref 0 in
  let r = ref 0 in
  while !r < cfg.rounds || have_replays () do
    let round = !r in
    incr rounds_run;
    (* Migrations scheduled for this round start now: their buckets stop
       accepting work, so this round's jobs for them are parked. *)
    List.iter
      (fun m -> if m.round = round then Directory.begin_migration dir ~bucket:m.bucket ~dst:m.dst)
      migrations;
    (* Distribute: handoff replays first (they are older), then this
       round's plan, preserving issue order; migrating buckets park. *)
    let per_shard : Traffic.job list array = Array.make cfg.shards [] in
    let parked : Traffic.job list array = Array.make cfg.buckets [] in
    let route (job : Traffic.job) =
      let bucket = bucket_of_set ~buckets:cfg.buckets job.Traffic.set in
      match Directory.migrating dir ~bucket with
      | Some _ -> parked.(bucket) <- job :: parked.(bucket)
      | None ->
          let home = Directory.home dir ~bucket in
          per_shard.(home) <- job :: per_shard.(home)
    in
    let pending = Array.copy replays in
    Array.fill replays 0 cfg.shards [];
    Array.iter (List.iter route) pending;
    if round < cfg.rounds then Array.iter route plan.Traffic.rounds.(round);
    let per_shard = Array.map List.rev per_shard in
    (* Fan the round over domains; each shard touches only the stores of
       buckets it homes, so the workers are disjoint, and the join below
       is the happens-before barrier the next round (and any handoff)
       reads behind. *)
    let round_stats =
      Parallel.map ?jobs
        (fun s ->
          List.fold_left
            (fun (b, g, u, m) job ->
              let bucket = bucket_of_set ~buckets:cfg.buckets job.Traffic.set in
              let grants, upgrades, msgs = run_burst cfg cells.(s) stores.(bucket) job in
              (b + 1, g + grants, u + upgrades, m + msgs))
            (0, 0, 0, 0) per_shard.(s))
        (Array.init cfg.shards (fun s -> s))
    in
    Array.iteri
      (fun s (b, g, u, m) ->
        sh_bursts.(s) <- sh_bursts.(s) + b;
        sh_grants.(s) <- sh_grants.(s) + g;
        sh_msgs.(s) <- sh_msgs.(s) + m;
        total_upgrades := !total_upgrades + u)
      round_stats;
    (* Commit this round's migrations: full bucket state plus the parked
       jobs travel in one Handoff, through the real wire codec. *)
    List.iter
      (fun mg ->
        if mg.round = round then begin
          let bucket = mg.bucket in
          let src = Directory.home dir ~bucket in
          let entries = entries_of_store stores.(bucket) in
          let parked_jobs = List.rev parked.(bucket) in
          let handoff =
            Shard_msg.Handoff
              {
                bucket;
                version = Directory.version dir ~bucket + 1;
                entries;
                parked = List.map (fun (j : Traffic.job) -> (j.Traffic.set, j.Traffic.burst)) parked_jobs;
              }
          in
          let frame = Codec.encode { Codec.src; lock = 0; payload = Codec.Shard handoff } in
          handoff_bytes := !handoff_bytes + String.length frame;
          (* The receiving side sees only the bytes: everything a set's
             future behaviour depends on must round-trip through them.
             That is why upgrades are not part of the at-rest record —
             the wire entry carries (bursts, grants, msgs, state) and
             nothing else. *)
          (match (Codec.decode frame).Codec.payload with
          | Codec.Shard (Shard_msg.Handoff { bucket = b2; entries = entries2; parked = parked2; _ }) ->
              Hashtbl.reset stores.(b2);
              List.iter
                (fun (e : Shard_msg.handoff_entry) ->
                  Hashtbl.replace stores.(b2) e.Shard_msg.set (set_state_of_entry e))
                entries2;
              replays.(mg.dst) <-
                replays.(mg.dst)
                @ List.map (fun (set, burst) -> { Traffic.set; burst }) parked2;
              parked_replayed := !parked_replayed + List.length parked2
          | _ -> failwith "Router: handoff did not decode as a Handoff");
          Directory.commit_migration dir ~bucket;
          incr migrations_applied;
          match Directory.validate dir with
          | [] -> ()
          | problems -> failwith ("Router: directory invalid: " ^ String.concat "; " problems)
        end)
      migrations;
    incr r
  done;
  (* Final digests. The global digest folds sets in namespace order —
     independent of bucketing and placement; per-bucket digests fold each
     bucket's sets in set order — the balance/migration fingerprint. *)
  let bucket_digests =
    List.init cfg.buckets (fun b ->
        let sets = Hashtbl.fold (fun set st acc -> (set, st) :: acc) stores.(b) [] in
        let sets = List.sort (fun (a, _) (b, _) -> compare a b) sets in
        (b, List.fold_left (fun h (set, st) -> mix_set h set st) fnv_offset sets))
  in
  let digest =
    digest_of_store ~lock_sets:cfg.lock_sets (fun set ->
        Hashtbl.find_opt stores.(bucket_of_set ~buckets:cfg.buckets set) set)
  in
  let owned = Array.make cfg.shards 0 in
  for b = 0 to cfg.buckets - 1 do
    let h = Directory.home dir ~bucket:b in
    owned.(h) <- owned.(h) + 1
  done;
  {
    digest;
    bucket_digests;
    bursts = Array.fold_left ( + ) 0 sh_bursts;
    grants = Array.fold_left ( + ) 0 sh_grants;
    upgrades = !total_upgrades;
    msgs = Array.fold_left ( + ) 0 sh_msgs;
    shard_stats =
      List.init cfg.shards (fun s ->
          {
            shard = s;
            bursts = sh_bursts.(s);
            grants = sh_grants.(s);
            msgs = sh_msgs.(s);
            buckets_owned = owned.(s);
          });
    migrations_applied = !migrations_applied;
    parked_replayed = !parked_replayed;
    handoff_bytes = !handoff_bytes;
    rounds_run = !rounds_run;
  }
