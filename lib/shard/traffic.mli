(** Deterministic traffic for the sharded lock-namespace service.

    The plan is drawn once against the namespace — before any placement
    decision — and burst contents derive from per-(set, burst) seeds, so
    neither depends on shard count, bucket count, executing domain or
    migration schedule. That independence is what lets the router promise
    digest-identical results across placements. *)

type job = { set : int; burst : int  (** per-set burst ordinal, 0-based *) }

type t = {
  lock_sets : int;
  rounds : job array array;  (** [rounds.(r)] in issue order *)
  total_bursts : int;
}

(** Bursts per set are capped at [2^20] so (set, burst) injects into the
    seed salt space. *)
val max_bursts_per_set : int

(** Semantic salt identifying one burst, for
    {!Dcs_netkit.Parallel.cell_seed}: position-independent, unique per
    (set, burst). *)
val salt_of_job : job -> int

(** Draw a plan: [rounds] rounds of [jobs_per_round] bursts each, lock
    sets chosen uniformly or Zipf-skewed by [skew] (theta in [0,1);
    {!Dcs_workload.Zipf}). Equal arguments give equal plans. *)
val plan : ?skew:float -> seed:int64 -> lock_sets:int -> rounds:int -> jobs_per_round:int -> unit -> t

(** One client operation inside a burst. *)
type op = {
  at : float;  (** issue time, ms from burst start *)
  node : int;
  mode : Dcs_modes.Mode.t;
  upgrade : bool;  (** U ops only: upgrade to W mid-hold (Rule 7) *)
  hold : float;
  priority : int;
}

(** The burst's operations, a pure function of [seed] (derive it from
    {!salt_of_job}); conflict-heavy mode mix, bursty arrivals. *)
val burst_ops : seed:int64 -> nodes:int -> ops:int -> op list
