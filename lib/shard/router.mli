(** The sharded lock-namespace service: lock sets hash to buckets
    ({!Directory.bucket_of_set}), every bucket has exactly one home shard
    ({!Directory}), and shards execute their buckets' request bursts on
    pooled {!Cell}s, fanned over domains with {!Dcs_netkit.Parallel}.

    Execution proceeds in rounds. Between bursts a lock set's whole
    protocol state rests as an encoded blob
    ({!Dcs_wire.Codec.encode_cluster_state}); at a round boundary a
    bucket can migrate: its store travels in a real
    {!Dcs_wire.Shard_msg.Handoff} wire message — encoded and re-decoded
    through the codec, exactly the bytes a cross-process handoff ships —
    together with the requests that arrived while it was migrating, which
    the new home replays in arrival order before its own next-round work.

    Everything a burst does derives from [(seed, set, burst ordinal)]
    and the set's restored state, so {!result.digest} is invariant under
    [shards], [buckets], worker count and migration schedule; the
    unsharded service is the [shards = buckets = 1] case. *)

type config = {
  shards : int;
  buckets : int;  (** namespace partitions; every participant must agree *)
  lock_sets : int;
  nodes : int;  (** population serving each lock set *)
  rounds : int;
  jobs_per_round : int;  (** bursts issued per round *)
  ops_per_burst : int;
  skew : float;  (** Zipf theta over lock sets; 0 = uniform *)
  seed : int64;
  latency : Dcs_sim.Dist.t;
}

(** 1 shard, 8 buckets, 16 lock sets of 8 nodes, 4 rounds × 8 bursts of
    4 ops, uniform, seed 42, the paper's LAN latency. *)
val default_config : config

(** Move [bucket] to shard [dst] at the boundary of [round]: jobs for it
    during [round] are parked and travel in the handoff. *)
type migration = { round : int; bucket : int; dst : int }

type shard_stat = {
  shard : int;
  bursts : int;
  grants : int;
  msgs : int;
  buckets_owned : int;  (** at the end of the run *)
}

type result = {
  digest : int64;
      (** folds every set's (id, bursts, grants, msgs, state bytes) in
          namespace order — placement-independent *)
  bucket_digests : (int * int64) list;  (** same fold per bucket *)
  bursts : int;  (** always the plan's total: no burst is lost *)
  grants : int;
  upgrades : int;
  msgs : int;
  shard_stats : shard_stat list;  (** the balance table *)
  migrations_applied : int;
  parked_replayed : int;
  handoff_bytes : int;  (** encoded Handoff frames *)
  rounds_run : int;  (** ≥ [rounds]: parked work may need extra rounds *)
}

val bucket_of_set : buckets:int -> int -> int

(** {2 Building blocks}

    The pieces a cross-process shard worker reuses so the distributed
    service and the in-process router share one execution path, one
    at-rest format and one digest. *)

(** One lock set's at-rest record between bursts: its encoded cluster
    state ({!Dcs_wire.Codec.encode_cluster_state}) and the accounting
    that travels with it in a handoff. Deliberately nothing more — the
    receiving side of a handoff sees only the wire entry. *)
type set_state = {
  mutable state : string;
  mutable s_bursts : int;
  mutable s_grants : int;
  mutable s_msgs : int;
}

val set_state_of_entry : Dcs_wire.Shard_msg.handoff_entry -> set_state
val entry_of_set_state : set:int -> set_state -> Dcs_wire.Shard_msg.handoff_entry

(** A bucket store's contents as wire entries, in ascending set order —
    the handoff send order. *)
val entries_of_store : (int, set_state) Hashtbl.t -> Dcs_wire.Shard_msg.handoff_entry list

(** Run one burst on [cell] against the set's prior state in the store,
    updating the store in place. Returns (grants, upgrades, msgs).
    Raises [Failure] if the burst does not drain, loses grants, or
    arrives out of order (its ordinal must equal the set's burst count —
    the invariant migrations and replays must preserve). *)
val run_burst : config -> Cell.t -> (int, set_state) Hashtbl.t -> Traffic.job -> int * int * int

(** Fold the namespace digest over whatever store the caller has:
    [find set] returns the set's at-rest record if it ever ran. *)
val digest_of_store : lock_sets:int -> (int -> set_state option) -> int64

(** Check a migration schedule against [cfg] without running it: raises
    [Invalid_argument] on out-of-range ids, a bucket migrated twice in
    one round, or a migration to the bucket's current home under the
    ownership map the earlier entries produce. *)
val validate_migrations : config -> migration list -> unit

(** Execute the whole plan. [jobs] caps the worker domains per round
    (default {!Dcs_netkit.Parallel.default_jobs}); results do not depend
    on it. Raises [Failure] if a burst fails to drain or loses grants,
    or [Invalid_argument] for malformed configs/migrations (see
    {!validate_migrations}). *)
val run : ?jobs:int -> ?migrations:migration list -> config -> result
