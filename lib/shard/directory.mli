(** The bucket-ownership directory of the sharded lock-namespace service.

    The lock-set namespace is partitioned into a fixed number of buckets;
    every bucket has exactly one home shard at all times. A migration is
    a two-step transition — {!begin_migration} marks the bucket (requests
    for it are parked from that moment) and {!commit_migration} flips the
    home and bumps the bucket's version once the state handoff landed.
    Replicas in other processes converge through
    {!Dcs_wire.Shard_msg.Dir_update} messages applied with
    {!apply_update}, which is version-monotone and therefore insensitive
    to delivery order. *)

type t

(** Stable set → bucket hash (multiplicative); every participant must use
    the same [buckets]. With [buckets = 1] everything maps to bucket 0. *)
val bucket_of_set : buckets:int -> int -> int

(** Initial placement homes bucket [b] at shard [b mod shards], version 0,
    no migration in progress. *)
val create : buckets:int -> shards:int -> t

val buckets : t -> int
val shards : t -> int

(** The unique home shard of [bucket] right now. *)
val home : t -> bucket:int -> int

(** Ownership-transition count for [bucket] (0 at creation). *)
val version : t -> bucket:int -> int

(** Destination shard if a migration is in progress, else [None]. *)
val migrating : t -> bucket:int -> int option

(** Mark [bucket] as migrating to [dst]. Raises [Invalid_argument] if a
    migration is already in progress or [dst] is the current home. *)
val begin_migration : t -> bucket:int -> dst:int -> unit

(** Complete the in-progress migration: home becomes the destination and
    the version bumps by one. Raises [Invalid_argument] if none is in
    progress. *)
val commit_migration : t -> bucket:int -> unit

(** Wire row for one bucket / all buckets, for [Dir_update] broadcasts. *)
val entry : t -> bucket:int -> Dcs_wire.Shard_msg.dir_entry

val entries : t -> Dcs_wire.Shard_msg.dir_entry list

(** Merge a received directory row: [`Applied] if strictly newer,
    [`Stale] if not, [`Conflict] if the same version names a different
    home (split-brain; the caller must surface it). *)
val apply_update : t -> Dcs_wire.Shard_msg.dir_entry -> [ `Applied | `Stale | `Conflict ]

(** Internal-consistency check (homes and migration targets in range,
    no self-migration, non-negative versions); empty = healthy. *)
val validate : t -> string list
