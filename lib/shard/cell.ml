(* One shard's execution cell: the engine room that used to live inside
   Core.Service (simulated clock + network + protocol cluster + the
   outstanding-request watchdog), extracted so it can be pooled. A shard
   serves its lock sets as a sequence of bursts; [reset] rewinds the
   clock, the network and the RNG in place and rebuilds the protocol
   cluster — from the initial star, or from a handoff snapshot — without
   reallocating the engine's event heap or the network's delivery
   tables. A reset cell is observationally identical to a freshly built
   one, which is what makes burst execution a pure function of
   (seed, restored state) and hence shard placement irrelevant to
   results. *)

module Rng = Dcs_sim.Rng
module Dist = Dcs_sim.Dist
module Engine = Dcs_sim.Engine
module Net = Dcs_runtime.Net
module Hlock_cluster = Dcs_runtime.Hlock_cluster

type t = {
  engine : Engine.t;
  rng : Rng.t;  (* drives network latency draws; reseeded per burst *)
  net : Net.t;
  nodes : int;
  mutable cluster : Hlock_cluster.t;
  mutable outstanding : int;
  kick_scheduled : bool ref;
}

(* Construction mirrors the original Service.create order exactly:
   engine, rng, net, cluster. *)
let create ?(latency = Dist.uniform_around 150.0) ~nodes () =
  if nodes < 1 then invalid_arg "Cell.create: need at least one node";
  let engine = Engine.create () in
  let rng = Rng.create ~seed:0L in
  let net = Net.create ~engine ~latency ~rng () in
  let cluster = Hlock_cluster.create ~net ~nodes ~locks:1 () in
  { engine; rng; net; nodes; cluster; outstanding = 0; kick_scheduled = ref false }

let reset ?config ?(oracle = false) ?restore t ~seed ~locks =
  if locks < 1 then invalid_arg "Cell.reset: need at least one lock";
  Engine.reset t.engine;
  Rng.reseed t.rng ~seed;
  Net.reset t.net;
  t.outstanding <- 0;
  t.kick_scheduled := false;
  t.cluster <- Hlock_cluster.create ?config ~oracle ?restore ~net:t.net ~nodes:t.nodes ~locks ()

let engine t = t.engine
let net t = t.net
let cluster t = t.cluster
let nodes t = t.nodes
let outstanding t = t.outstanding
let now t = Engine.now t.engine
let schedule t ~after f = Engine.schedule t.engine ~after f
let mean_latency t = Net.mean_latency t.net
let message_counters t = Net.counters t.net

(* The custody watchdog runs while requests are outstanding. *)
let rec ensure_kicking t =
  if not !(t.kick_scheduled) then begin
    t.kick_scheduled := true;
    Engine.schedule t.engine ~after:(8.0 *. Net.mean_latency t.net) (fun () ->
        t.kick_scheduled := false;
        if t.outstanding > 0 then begin
          Hlock_cluster.kick_all t.cluster;
          ensure_kicking t
        end)
  end

let request ?priority t ~node ~lock ~mode ~on_granted =
  t.outstanding <- t.outstanding + 1;
  ensure_kicking t;
  Hlock_cluster.request ?priority t.cluster ~node ~lock ~mode ~on_granted:(fun () ->
      t.outstanding <- t.outstanding - 1;
      on_granted ())

let release t ~node ~lock ~seq = Hlock_cluster.release t.cluster ~node ~lock ~seq

let upgrade t ~node ~lock ~seq ~on_upgraded =
  t.outstanding <- t.outstanding + 1;
  ensure_kicking t;
  Hlock_cluster.upgrade t.cluster ~node ~lock ~seq ~on_upgraded:(fun () ->
      t.outstanding <- t.outstanding - 1;
      on_upgraded ())

let drain t =
  match Engine.run t.engine with
  | Engine.Horizon_reached | Engine.Event_limit -> Error `Undrained
  | Engine.Drained -> if t.outstanding > 0 then Error (`Stuck t.outstanding) else Ok ()

let export_lock t ~lock = Hlock_cluster.export_lock t.cluster ~lock

let quiescent_violations t = Hlock_cluster.quiescent_violations t.cluster
