(* The bucket-ownership directory: which shard is home for each bucket
   of the lock-set namespace, and where each bucket is in its migration
   lifecycle. Replicas synchronize through Dir_update wire messages
   (Shard_msg); versions are per-bucket and bump exactly once per
   ownership transition, so replicas converge regardless of delivery
   order and stale updates are detectable. *)

type status = Ready | Migrating of { dst : int }

type entry = { mutable home : int; mutable version : int; mutable status : status }

type t = { entries : entry array; shards : int }

(* Multiplicative (Fibonacci) hashing spreads consecutive set ids across
   buckets; with buckets = 1 every set lands in bucket 0, making the
   unsharded service the B = 1 special case of the sharded one. *)
let bucket_of_set ~buckets set =
  if buckets <= 0 then invalid_arg "Directory.bucket_of_set: buckets must be positive";
  if set < 0 then invalid_arg "Directory.bucket_of_set: negative set";
  (set * 0x9E3779B1) land max_int mod buckets

let create ~buckets ~shards =
  if buckets <= 0 then invalid_arg "Directory.create: buckets must be positive";
  if shards <= 0 then invalid_arg "Directory.create: shards must be positive";
  {
    entries = Array.init buckets (fun b -> { home = b mod shards; version = 0; status = Ready });
    shards;
  }

let buckets t = Array.length t.entries
let shards t = t.shards

let check_bucket t b fn =
  if b < 0 || b >= Array.length t.entries then
    invalid_arg (Printf.sprintf "Directory.%s: bucket %d out of range" fn b)

let home t ~bucket =
  check_bucket t bucket "home";
  t.entries.(bucket).home

let version t ~bucket =
  check_bucket t bucket "version";
  t.entries.(bucket).version

let migrating t ~bucket =
  check_bucket t bucket "migrating";
  match t.entries.(bucket).status with Ready -> None | Migrating { dst } -> Some dst

let begin_migration t ~bucket ~dst =
  check_bucket t bucket "begin_migration";
  if dst < 0 || dst >= t.shards then
    invalid_arg (Printf.sprintf "Directory.begin_migration: shard %d out of range" dst);
  let e = t.entries.(bucket) in
  (match e.status with
  | Migrating _ -> invalid_arg (Printf.sprintf "Directory.begin_migration: bucket %d already migrating" bucket)
  | Ready -> ());
  if dst = e.home then
    invalid_arg (Printf.sprintf "Directory.begin_migration: bucket %d already homed at %d" bucket dst);
  e.status <- Migrating { dst }

let commit_migration t ~bucket =
  check_bucket t bucket "commit_migration";
  let e = t.entries.(bucket) in
  match e.status with
  | Ready -> invalid_arg (Printf.sprintf "Directory.commit_migration: bucket %d not migrating" bucket)
  | Migrating { dst } ->
      e.home <- dst;
      e.version <- e.version + 1;
      e.status <- Ready

let entry t ~bucket : Dcs_wire.Shard_msg.dir_entry =
  check_bucket t bucket "entry";
  let e = t.entries.(bucket) in
  { bucket; home = e.home; version = e.version }

let entries t = List.init (Array.length t.entries) (fun b -> entry t ~bucket:b)

(* Version-monotone replica convergence: an update wins only if strictly
   newer. Equal versions must agree (same transition history), so a
   disagreeing equal-version update reports [`Conflict] — a directory
   split-brain the caller must surface, not paper over. *)
let apply_update t (d : Dcs_wire.Shard_msg.dir_entry) =
  check_bucket t d.bucket "apply_update";
  if d.home < 0 || d.home >= t.shards then
    invalid_arg (Printf.sprintf "Directory.apply_update: shard %d out of range" d.home);
  let e = t.entries.(d.bucket) in
  if d.version > e.version then begin
    e.home <- d.home;
    e.version <- d.version;
    e.status <- Ready;
    `Applied
  end
  else if d.version = e.version && d.home <> e.home then `Conflict
  else `Stale

let validate t =
  let problems = ref [] in
  Array.iteri
    (fun b e ->
      if e.home < 0 || e.home >= t.shards then
        problems := Printf.sprintf "bucket %d homed at out-of-range shard %d" b e.home :: !problems;
      if e.version < 0 then
        problems := Printf.sprintf "bucket %d has negative version %d" b e.version :: !problems;
      match e.status with
      | Ready -> ()
      | Migrating { dst } ->
          if dst < 0 || dst >= t.shards then
            problems :=
              Printf.sprintf "bucket %d migrating to out-of-range shard %d" b dst :: !problems
          else if dst = e.home then
            problems := Printf.sprintf "bucket %d migrating to its own home %d" b dst :: !problems)
    t.entries;
  List.rev !problems
