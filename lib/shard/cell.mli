(** A pooled shard execution cell: simulated clock, network, protocol
    cluster and the outstanding-request bookkeeping that
    {!Core.Service} is a facade over.

    A cell is allocated once per shard and rewound with {!reset} between
    bursts: the event heap, the network's delivery tables and the
    latency RNG are reset in place, and the cluster is rebuilt — from
    the initial star, or from handoff snapshots via [restore]. A reset
    cell behaves identically to a freshly created one, so a burst's
    outcome is a pure function of its seed and restored state,
    independent of which shard (or domain, or process) runs it. *)

open Dcs_modes

type t

(** [latency] defaults to the paper's LAN (uniform around 150 ms);
    [nodes] is the population every lock object is served over. *)
val create : ?latency:Dcs_sim.Dist.t -> nodes:int -> unit -> t

(** Rewind the cell and rebuild its cluster with [locks] lock objects.
    [seed] drives the network latency draws; [restore] rebuilds nodes
    from {!export_lock} snapshots (indexed lock × node) instead of the
    initial star; [config]/[oracle] as in
    {!Dcs_runtime.Hlock_cluster.create}. *)
val reset :
  ?config:Dcs_hlock.Node.config ->
  ?oracle:bool ->
  ?restore:Dcs_hlock.Node.snapshot array array ->
  t ->
  seed:int64 ->
  locks:int ->
  unit

val engine : t -> Dcs_sim.Engine.t
val net : t -> Dcs_runtime.Net.t
val cluster : t -> Dcs_runtime.Hlock_cluster.t
val nodes : t -> int

(** Requests issued but not yet granted. *)
val outstanding : t -> int

val now : t -> float
val schedule : t -> after:float -> (unit -> unit) -> unit
val mean_latency : t -> float
val message_counters : t -> Dcs_proto.Counters.t

(** Issue a request; tracks it as outstanding and keeps the custody
    watchdog ({!Dcs_runtime.Hlock_cluster.kick_all}) scheduled while any
    request is. [on_granted] may fire synchronously. Returns the
    ticket's sequence number. *)
val request :
  ?priority:int -> t -> node:int -> lock:int -> mode:Mode.t -> on_granted:(unit -> unit) -> int

val release : t -> node:int -> lock:int -> seq:int -> unit

(** U→W upgrade; tracked as outstanding like {!request}. *)
val upgrade : t -> node:int -> lock:int -> seq:int -> on_upgraded:(unit -> unit) -> unit

(** Run the simulation until the event queue drains. [`Undrained] if the
    engine stopped early (horizon/event limit), [`Stuck n] if [n]
    requests were never granted. *)
val drain : t -> (unit, [ `Undrained | `Stuck of int ]) result

(** {!Dcs_runtime.Hlock_cluster.export_lock} on the current cluster:
    the sending half of a bucket handoff. Requires quiescence. *)
val export_lock : t -> lock:int -> Dcs_hlock.Node.snapshot array

val quiescent_violations : t -> string list
