(* Deterministic sharded-service traffic.

   The namespace-level plan is rounds of jobs; a job is one request
   burst against one lock set. Which sets get traffic is drawn once,
   globally, before any shard placement decision — optionally Zipf-skewed
   toward hot sets — so the plan (and every burst's content) is identical
   whatever the shard count, bucket count or migration schedule. Burst
   contents are derived from a per-(set, burst) seed, never from plan
   position or executing shard. *)

module Rng = Dcs_sim.Rng
module Mode = Dcs_modes.Mode

type job = { set : int; burst : int }

type t = { lock_sets : int; rounds : job array array; total_bursts : int }

(* Bursts per set are bounded by the salt stride below so (set, burst)
   pairs stay injective into the seed space. *)
let max_bursts_per_set = 1 lsl 20

let salt_of_job { set; burst } =
  if burst >= max_bursts_per_set then invalid_arg "Traffic.salt_of_job: burst index too large";
  (set * max_bursts_per_set) + burst

let plan ?(skew = 0.0) ~seed ~lock_sets ~rounds ~jobs_per_round () =
  if lock_sets < 1 then invalid_arg "Traffic.plan: need at least one lock set";
  if rounds < 0 || jobs_per_round < 0 then invalid_arg "Traffic.plan: negative plan size";
  let rng = Rng.create ~seed:(Dcs_netkit.Parallel.cell_seed ~base:seed ~salt:999983) in
  let draw_set =
    if skew <= 0.0 then fun () -> Rng.int rng ~bound:lock_sets
    else
      let z = Dcs_workload.Zipf.create ~n:lock_sets ~theta:skew in
      fun () -> Dcs_workload.Zipf.sample z rng
  in
  let bursts_seen = Hashtbl.create 1024 in
  let next_burst set =
    let b = match Hashtbl.find_opt bursts_seen set with None -> 0 | Some b -> b in
    if b + 1 >= max_bursts_per_set then invalid_arg "Traffic.plan: too many bursts for one set";
    Hashtbl.replace bursts_seen set (b + 1);
    b
  in
  let round _ =
    Array.init jobs_per_round (fun _ ->
        let set = draw_set () in
        { set; burst = next_burst set })
  in
  { lock_sets; rounds = Array.init rounds round; total_bursts = rounds * jobs_per_round }

(* {1 Burst contents} *)

type op = { at : float; node : int; mode : Mode.t; upgrade : bool; hold : float; priority : int }

(* The fuzzer's conflict-heavy mix (Script.draw_mode): writers and
   updaters oversampled relative to the paper's airline mix, because a
   burst should exercise transfers and freezes, not just cache hits. *)
let draw_mode rng =
  let r = Rng.int rng ~bound:100 in
  if r < 20 then Mode.IR
  else if r < 50 then Mode.R
  else if r < 65 then Mode.U
  else if r < 80 then Mode.IW
  else Mode.W

let burst_ops ~seed ~nodes ~ops =
  if nodes < 1 || ops < 0 then invalid_arg "Traffic.burst_ops";
  let rng = Rng.create ~seed in
  let t = ref 0.0 in
  List.init ops (fun _ ->
      t := !t +. Rng.exponential rng ~mean:30.0;
      let mode = draw_mode rng in
      let upgrade = mode = Mode.U && Rng.bool rng in
      let priority = if Rng.int rng ~bound:10 = 0 then 1 + Rng.int rng ~bound:3 else 0 in
      let hold = Float.min 200.0 (Rng.exponential rng ~mean:15.0) in
      { at = !t; node = Rng.int rng ~bound:nodes; mode; upgrade; hold; priority })
