(* Control messages for the sharded lock-namespace service
   ({!Dcs_shard}): bucket-ownership directory traffic and the live
   bucket-migration handoff. They ride the existing envelope as a third
   payload arm alongside the hlock and Naimi protocol messages
   ({!Codec}), so shard processes and protocol nodes share one framing,
   one decoder and one validation path. *)

(* One bucket-ownership directory row: [bucket] is homed at shard [home]
   as of directory [version]. Versions increase by one per ownership
   transition, so stale updates are detectable. *)
type dir_entry = { bucket : int; home : int; version : int }

(* One lock set travelling in a handoff: its accumulated service
   accounting and the full per-node protocol state
   ({!Dcs_hlock.Node.snapshot} — tree anchors, copysets, queues, frozen
   sets). *)
type handoff_entry = {
  set : int;
  bursts : int;  (* request bursts served so far *)
  grants : int;  (* grants issued so far *)
  msgs : int;  (* protocol messages sent so far *)
  state : Dcs_hlock.Node.snapshot array;
}

type t =
  | Dir_lookup of { bucket : int }  (* who homes this bucket? *)
  | Dir_info of dir_entry  (* lookup answer *)
  | Dir_update of dir_entry  (* ownership transition broadcast *)
  | Handoff of {
      bucket : int;
      version : int;  (* directory version the migration commits at *)
      entries : handoff_entry list;
      parked : (int * int) list;
          (* (set, burst) requests parked during the migration, to be
             replayed in order by the new home *)
    }
  | Handoff_ack of { bucket : int; version : int }
  | Round_done of { shard : int; round : int; bursts : int; grants : int }
      (* end-of-round barrier between shard processes *)

let pp ppf = function
  | Dir_lookup { bucket } -> Format.fprintf ppf "Dir_lookup b%d" bucket
  | Dir_info { bucket; home; version } ->
      Format.fprintf ppf "Dir_info b%d->s%d v%d" bucket home version
  | Dir_update { bucket; home; version } ->
      Format.fprintf ppf "Dir_update b%d->s%d v%d" bucket home version
  | Handoff { bucket; version; entries; parked } ->
      Format.fprintf ppf "Handoff b%d v%d |sets|=%d |parked|=%d" bucket version
        (List.length entries) (List.length parked)
  | Handoff_ack { bucket; version } -> Format.fprintf ppf "Handoff_ack b%d v%d" bucket version
  | Round_done { shard; round; bursts; grants } ->
      Format.fprintf ppf "Round_done s%d r%d bursts=%d grants=%d" shard round bursts grants
