(** Primitive binary encoding: LEB128 varints, booleans, strings.

    All integers on the wire are non-negative; signed values are mapped by
    the callers. Decoding raises {!Malformed} on truncated or invalid
    input — never an out-of-bounds exception.

    The writer is a reusable flat [Bytes.t] buffer: it grows once
    (amortized doubling) and {!reset} rewinds it between frames without
    freeing, so steady-state encoding allocates nothing. The reader is a
    zero-copy cursor over a caller-owned [Bytes.t] slice; {!attach}
    re-aims an existing reader so steady-state decoding allocates only
    what the decoded value itself needs. The historical [Buffer]-backed
    implementation survives as {!Legacy} for differential testing. *)

exception Malformed of string

(** {1 Writing} *)

type writer

(** [writer ?capacity ()] allocates a fresh flat buffer (default 64
    bytes); it doubles as needed and never shrinks. *)
val writer : ?capacity:int -> unit -> writer

(** Rewind to empty, retaining the underlying storage. *)
val reset : writer -> unit

(** Bytes written since creation or the last {!reset}. *)
val length : writer -> int

(** Copy the written prefix out as a fresh string. *)
val contents : writer -> string

(** The underlying storage; only the first {!length} bytes are
    meaningful, and any write to the writer may replace it (growth).
    For transports that hand the bytes straight to a syscall. *)
val unsafe_bytes : writer -> Bytes.t

(** [blit w dst pos] copies the written prefix into [dst] at [pos]. *)
val blit : writer -> Bytes.t -> int -> unit

val u8 : writer -> int -> unit

(** Unsigned LEB128; accepts any non-negative OCaml int. Raises
    [Invalid_argument] on negatives. *)
val varint : writer -> int -> unit

val bool : writer -> bool -> unit

(** Length-prefixed bytes. *)
val string : writer -> string -> unit

(** [list w f l] writes a varint count then the elements. *)
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit

(** Fixed-width big-endian u32, the stream-framing length prefix. *)
val u32_be : writer -> int -> unit

(** [patch_u32_be w ~at v] overwrites 4 bytes previously written at
    offset [at] — reserve with {!u32_be} [w 0], encode the body, then
    patch the real length in. Raises [Invalid_argument] if [at+4]
    exceeds {!length}. *)
val patch_u32_be : writer -> at:int -> int -> unit

(** {1 Reading} *)

type reader

(** Cursor over a whole string (zero-copy; the string must not be
    mutated through other aliases). *)
val reader : string -> reader

(** [reader_sub b ~off ~len] is a cursor over [b.[off .. off+len-1]].
    Raises [Invalid_argument] on an out-of-range slice. *)
val reader_sub : Bytes.t -> off:int -> len:int -> reader

(** Re-aim an existing reader at a new slice, allocating nothing. *)
val attach : reader -> Bytes.t -> off:int -> len:int -> unit

(** True when every byte of the slice has been consumed. *)
val at_end : reader -> bool

val read_u8 : reader -> int
val read_varint : reader -> int
val read_bool : reader -> bool
val read_string : reader -> string
val read_u32_be : reader -> int

(** [read_list r f] reads a varint count then [count] elements. *)
val read_list : reader -> (reader -> 'a) -> 'a list

(** [skip_list r f] reads and validates a varint count then [count]
    elements via [f], materializing nothing. *)
val skip_list : reader -> (reader -> unit) -> unit

(** {1 Writer abstraction}

    The encoder primitives as a signature, so codecs can be written once
    and instantiated against both the flat writer (production) and the
    {!Legacy} [Buffer] writer (differential tests). *)

module type WRITER = sig
  type writer

  val u8 : writer -> int -> unit
  val varint : writer -> int -> unit
  val bool : writer -> bool -> unit
  val string : writer -> string -> unit
  val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
end

(** The original [Buffer]-backed writer, kept only as the reference
    implementation for differential tests of the flat path. *)
module Legacy : sig
  include WRITER with type writer = Buffer.t

  val writer : unit -> writer
  val contents : writer -> string
end
