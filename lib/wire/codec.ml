open Dcs_modes
module Msg = Dcs_hlock.Msg

type payload =
  | Hlock of Msg.t
  | Naimi of Dcs_naimi.Naimi.msg
  | Shard of Shard_msg.t

type envelope = {
  src : Dcs_proto.Node_id.t;
  lock : int;
  payload : payload;
}

let version = 4
(* v2: request carries a priority; v3: naimi request carries a span seq;
   v4: grant carries the granter's recorded child mode. The shard payload
   arm (directory + handoff traffic) is versioned alongside v4: same
   envelope version, a third payload tag — pre-shard decoders reject it
   as a bad payload tag rather than silently misreading it. *)

(* {1 Encoding}

   The encoders are written once against {!Buf.WRITER} and instantiated
   twice: against the flat writer (the production path) and against the
   legacy [Buffer] writer, which exists only so tests can check the flat
   path byte-for-byte against the historical implementation. *)

module Enc (W : Buf.WRITER) = struct
  (* Node-id list items are encoded through this named function: an
     anonymous [fun w n -> W.varint w n] at the use sites would capture
     [W] and allocate a closure per message (no flambda). *)
  let varint_item w (n : int) = W.varint w n

  let mode w (m : Mode.t) = W.u8 w (Mode.index m)

  let mode_opt w = function
    | None -> W.u8 w 255
    | Some m -> mode w m

  let mode_set w s = W.u8 w (Mode_set.to_bits s)

  let request w (r : Msg.request) =
    W.varint w r.requester;
    W.varint w r.seq;
    mode w r.mode;
    W.bool w r.upgrade;
    W.varint w r.timestamp;
    W.varint w r.priority;
    W.varint w r.hops;
    W.bool w r.token_only;
    W.varint w (fst r.hint);
    W.varint w (snd r.hint);
    W.list w varint_item r.path

  let hlock_msg w (m : Msg.t) =
    match m with
    | Msg.Request req ->
        W.u8 w 0;
        request w req
    | Msg.Grant { req; epoch; recorded; ancestry } ->
        W.u8 w 1;
        request w req;
        W.varint w epoch;
        mode w recorded;
        W.list w varint_item ancestry
    | Msg.Token { serving; sender_owned; sender_epoch; queue; frozen } ->
        W.u8 w 2;
        request w serving;
        mode_opt w sender_owned;
        W.varint w sender_epoch;
        W.list w request queue;
        mode_set w frozen
    | Msg.Release { new_owned; epoch } ->
        W.u8 w 3;
        mode_opt w new_owned;
        W.varint w epoch
    | Msg.Freeze { frozen } ->
        W.u8 w 4;
        mode_set w frozen

  (* Optional node id as a biased varint (0 = None): node ids are small
     and non-negative, so the +1 bias never widens the encoding. *)
  let node_id_opt w = function
    | None -> W.varint w 0
    | Some n -> W.varint w (n + 1)

  let child_item w ((c, m, e) : int * Mode.t * int) =
    W.varint w c;
    mode w m;
    W.varint w e

  let sent_freeze_item w ((c, ms) : int * Mode_set.t) =
    W.varint w c;
    mode_set w ms

  let node_snapshot w (s : Dcs_hlock.Node.snapshot) =
    W.bool w s.s_token;
    node_id_opt w s.s_parent;
    W.varint w s.s_parent_stamp;
    node_id_opt w s.s_accounted_parent;
    W.varint w s.s_accounted_epoch;
    mode_opt w s.s_last_reported;
    mode_set w s.s_cached;
    W.list w child_item s.s_children;
    W.list w request s.s_queue;
    mode_set w s.s_frozen;
    W.list w sent_freeze_item s.s_sent_freeze;
    W.varint w s.s_tenure;
    W.varint w (fst s.s_hint);
    W.varint w (snd s.s_hint);
    node_id_opt w s.s_last_granter;
    W.list w varint_item s.s_ancestry;
    W.bool w s.s_saw_transfer;
    W.bool w s.s_served_ever;
    W.varint w s.s_next_seq;
    W.varint w s.s_clock;
    W.varint w s.s_epoch_counter

  let handoff_entry w (e : Shard_msg.handoff_entry) =
    W.varint w e.set;
    W.varint w e.bursts;
    W.varint w e.grants;
    W.varint w e.msgs;
    W.list w node_snapshot (Array.to_list e.state)

  let parked_item w ((set, burst) : int * int) =
    W.varint w set;
    W.varint w burst

  let dir_entry w (d : Shard_msg.dir_entry) =
    W.varint w d.bucket;
    W.varint w d.home;
    W.varint w d.version

  let shard_msg w (m : Shard_msg.t) =
    match m with
    | Shard_msg.Dir_lookup { bucket } ->
        W.u8 w 0;
        W.varint w bucket
    | Shard_msg.Dir_info d ->
        W.u8 w 1;
        dir_entry w d
    | Shard_msg.Dir_update d ->
        W.u8 w 2;
        dir_entry w d
    | Shard_msg.Handoff { bucket; version; entries; parked } ->
        W.u8 w 3;
        W.varint w bucket;
        W.varint w version;
        W.list w handoff_entry entries;
        W.list w parked_item parked
    | Shard_msg.Handoff_ack { bucket; version } ->
        W.u8 w 4;
        W.varint w bucket;
        W.varint w version
    | Shard_msg.Round_done { shard; round; bursts; grants } ->
        W.u8 w 5;
        W.varint w shard;
        W.varint w round;
        W.varint w bursts;
        W.varint w grants

  let naimi_msg w (m : Dcs_naimi.Naimi.msg) =
    match m with
    | Dcs_naimi.Naimi.Request { requester; seq } ->
        W.u8 w 0;
        W.varint w requester;
        W.varint w seq
    | Dcs_naimi.Naimi.Token -> W.u8 w 1

  let envelope w e =
    W.u8 w version;
    W.varint w e.src;
    W.varint w e.lock;
    match e.payload with
    | Hlock m ->
        W.u8 w 0;
        hlock_msg w m
    | Naimi m ->
        W.u8 w 1;
        naimi_msg w m
    | Shard m ->
        W.u8 w 2;
        shard_msg w m
end

module Flat = Enc (Buf)
module Legacy = Enc (Buf.Legacy)

let write_envelope w e = Flat.envelope w e

let encode e =
  let w = Buf.writer ~capacity:128 () in
  Flat.envelope w e;
  Buf.contents w

let encode_legacy e =
  let w = Buf.Legacy.writer () in
  Legacy.envelope w e;
  Buf.Legacy.contents w

(* {1 Decoding} *)

let read_mode r =
  let i = Buf.read_u8 r in
  if i < 0 || i > 4 then raise (Buf.Malformed (Printf.sprintf "bad mode %d" i));
  Mode.of_index i

let read_mode_opt r =
  match Buf.read_u8 r with
  | 255 -> None
  | i when i >= 0 && i <= 4 -> Some (Mode.of_index i)
  | i -> raise (Buf.Malformed (Printf.sprintf "bad mode option %d" i))

let read_mode_set r =
  let bits = Buf.read_u8 r in
  if bits land lnot 0b11111 <> 0 then raise (Buf.Malformed "bad mode set");
  Mode_set.of_bits bits

let read_request r : Msg.request =
  let requester = Buf.read_varint r in
  let seq = Buf.read_varint r in
  let mode = read_mode r in
  let upgrade = Buf.read_bool r in
  let timestamp = Buf.read_varint r in
  let priority = Buf.read_varint r in
  let hops = Buf.read_varint r in
  let token_only = Buf.read_bool r in
  let tenure = Buf.read_varint r in
  let owner = Buf.read_varint r in
  let path = Buf.read_list r Buf.read_varint in
  { requester; seq; mode; upgrade; timestamp; priority; hops; token_only; hint = (tenure, owner); path }

let read_hlock_msg r : Msg.t =
  match Buf.read_u8 r with
  | 0 -> Msg.Request (read_request r)
  | 1 ->
      let req = read_request r in
      let epoch = Buf.read_varint r in
      let recorded = read_mode r in
      let ancestry = Buf.read_list r Buf.read_varint in
      Msg.Grant { req; epoch; recorded; ancestry }
  | 2 ->
      let serving = read_request r in
      let sender_owned = read_mode_opt r in
      let sender_epoch = Buf.read_varint r in
      let queue = Buf.read_list r read_request in
      let frozen = read_mode_set r in
      Msg.Token { serving; sender_owned; sender_epoch; queue; frozen }
  | 3 ->
      let new_owned = read_mode_opt r in
      let epoch = Buf.read_varint r in
      Msg.Release { new_owned; epoch }
  | 4 -> Msg.Freeze { frozen = read_mode_set r }
  | t -> raise (Buf.Malformed (Printf.sprintf "bad hlock tag %d" t))

let read_node_id_opt r =
  match Buf.read_varint r with 0 -> None | n -> Some (n - 1)

let read_child_item r =
  let c = Buf.read_varint r in
  let m = read_mode r in
  let e = Buf.read_varint r in
  (c, m, e)

let read_sent_freeze_item r =
  let c = Buf.read_varint r in
  let ms = read_mode_set r in
  (c, ms)

let read_node_snapshot r : Dcs_hlock.Node.snapshot =
  let s_token = Buf.read_bool r in
  let s_parent = read_node_id_opt r in
  let s_parent_stamp = Buf.read_varint r in
  let s_accounted_parent = read_node_id_opt r in
  let s_accounted_epoch = Buf.read_varint r in
  let s_last_reported = read_mode_opt r in
  let s_cached = read_mode_set r in
  let s_children = Buf.read_list r read_child_item in
  let s_queue = Buf.read_list r read_request in
  let s_frozen = read_mode_set r in
  let s_sent_freeze = Buf.read_list r read_sent_freeze_item in
  let s_tenure = Buf.read_varint r in
  let hint_tenure = Buf.read_varint r in
  let hint_owner = Buf.read_varint r in
  let s_last_granter = read_node_id_opt r in
  let s_ancestry = Buf.read_list r Buf.read_varint in
  let s_saw_transfer = Buf.read_bool r in
  let s_served_ever = Buf.read_bool r in
  let s_next_seq = Buf.read_varint r in
  let s_clock = Buf.read_varint r in
  let s_epoch_counter = Buf.read_varint r in
  {
    s_token;
    s_parent;
    s_parent_stamp;
    s_accounted_parent;
    s_accounted_epoch;
    s_last_reported;
    s_cached;
    s_children;
    s_queue;
    s_frozen;
    s_sent_freeze;
    s_tenure;
    s_hint = (hint_tenure, hint_owner);
    s_last_granter;
    s_ancestry;
    s_saw_transfer;
    s_served_ever;
    s_next_seq;
    s_clock;
    s_epoch_counter;
  }

let read_handoff_entry r : Shard_msg.handoff_entry =
  let set = Buf.read_varint r in
  let bursts = Buf.read_varint r in
  let grants = Buf.read_varint r in
  let msgs = Buf.read_varint r in
  let state = Array.of_list (Buf.read_list r read_node_snapshot) in
  { set; bursts; grants; msgs; state }

let read_parked_item r =
  let set = Buf.read_varint r in
  let burst = Buf.read_varint r in
  (set, burst)

let read_dir_entry r : Shard_msg.dir_entry =
  let bucket = Buf.read_varint r in
  let home = Buf.read_varint r in
  let version = Buf.read_varint r in
  { bucket; home; version }

let read_shard_msg r : Shard_msg.t =
  match Buf.read_u8 r with
  | 0 -> Shard_msg.Dir_lookup { bucket = Buf.read_varint r }
  | 1 -> Shard_msg.Dir_info (read_dir_entry r)
  | 2 -> Shard_msg.Dir_update (read_dir_entry r)
  | 3 ->
      let bucket = Buf.read_varint r in
      let version = Buf.read_varint r in
      let entries = Buf.read_list r read_handoff_entry in
      let parked = Buf.read_list r read_parked_item in
      Shard_msg.Handoff { bucket; version; entries; parked }
  | 4 ->
      let bucket = Buf.read_varint r in
      let version = Buf.read_varint r in
      Shard_msg.Handoff_ack { bucket; version }
  | 5 ->
      let shard = Buf.read_varint r in
      let round = Buf.read_varint r in
      let bursts = Buf.read_varint r in
      let grants = Buf.read_varint r in
      Shard_msg.Round_done { shard; round; bursts; grants }
  | t -> raise (Buf.Malformed (Printf.sprintf "bad shard tag %d" t))

let read_naimi_msg r : Dcs_naimi.Naimi.msg =
  match Buf.read_u8 r with
  | 0 ->
      let requester = Buf.read_varint r in
      let seq = Buf.read_varint r in
      Dcs_naimi.Naimi.Request { requester; seq }
  | 1 -> Dcs_naimi.Naimi.Token
  | t -> raise (Buf.Malformed (Printf.sprintf "bad naimi tag %d" t))

let read_envelope r =
  let v = Buf.read_u8 r in
  if v <> version then raise (Buf.Malformed (Printf.sprintf "unsupported version %d" v));
  let src = Buf.read_varint r in
  let lock = Buf.read_varint r in
  let payload =
    match Buf.read_u8 r with
    | 0 -> Hlock (read_hlock_msg r)
    | 1 -> Naimi (read_naimi_msg r)
    | 2 -> Shard (read_shard_msg r)
    | t -> raise (Buf.Malformed (Printf.sprintf "bad payload tag %d" t))
  in
  if not (Buf.at_end r) then raise (Buf.Malformed "trailing bytes");
  { src; lock; payload }

let decode s = read_envelope (Buf.reader s)

let decode_sub b ~off ~len = read_envelope (Buf.reader_sub b ~off ~len)

(* {1 Skimming}

   The full decoder, minus materialization: every field is read and
   validated exactly as [read_envelope] would, but nothing is built, so
   a frame can be checked (or its class inspected) with zero allocation.
   Mirrors the readers above — extend both when the wire format grows. *)

let skim_mode r = ignore (read_mode r)

(* Not [ignore (read_mode_opt r)]: building the [Some] would allocate. *)
let skim_mode_opt r =
  match Buf.read_u8 r with
  | 255 -> ()
  | i when i >= 0 && i <= 4 -> ()
  | i -> raise (Buf.Malformed (Printf.sprintf "bad mode option %d" i))

let skim_mode_set r = ignore (read_mode_set r)

let skim_varint r = ignore (Buf.read_varint r)

let skim_request r =
  skim_varint r;
  skim_varint r;
  skim_mode r;
  ignore (Buf.read_bool r);
  skim_varint r;
  skim_varint r;
  skim_varint r;
  ignore (Buf.read_bool r);
  skim_varint r;
  skim_varint r;
  Buf.skip_list r skim_varint

let skim_node_snapshot r =
  ignore (Buf.read_bool r);
  skim_varint r;
  skim_varint r;
  skim_varint r;
  skim_varint r;
  skim_mode_opt r;
  skim_mode_set r;
  Buf.skip_list r (fun r ->
      skim_varint r;
      skim_mode r;
      skim_varint r);
  Buf.skip_list r skim_request;
  skim_mode_set r;
  Buf.skip_list r (fun r ->
      skim_varint r;
      skim_mode_set r);
  skim_varint r;
  skim_varint r;
  skim_varint r;
  skim_varint r;
  Buf.skip_list r skim_varint;
  ignore (Buf.read_bool r);
  ignore (Buf.read_bool r);
  skim_varint r;
  skim_varint r;
  skim_varint r

let skim_dir_entry r =
  skim_varint r;
  skim_varint r;
  skim_varint r

let skim_shard_msg r =
  match Buf.read_u8 r with
  | 0 -> skim_varint r
  | 1 | 2 -> skim_dir_entry r
  | 3 ->
      skim_varint r;
      skim_varint r;
      Buf.skip_list r (fun r ->
          skim_varint r;
          skim_varint r;
          skim_varint r;
          skim_varint r;
          Buf.skip_list r skim_node_snapshot);
      Buf.skip_list r (fun r ->
          skim_varint r;
          skim_varint r)
  | 4 ->
      skim_varint r;
      skim_varint r
  | 5 ->
      skim_varint r;
      skim_varint r;
      skim_varint r;
      skim_varint r
  | t -> raise (Buf.Malformed (Printf.sprintf "bad shard tag %d" t))

let skim_envelope r =
  let v = Buf.read_u8 r in
  if v <> version then raise (Buf.Malformed (Printf.sprintf "unsupported version %d" v));
  skim_varint r;
  skim_varint r;
  (match Buf.read_u8 r with
  | 0 -> (
      match Buf.read_u8 r with
      | 0 -> skim_request r
      | 1 ->
          skim_request r;
          skim_varint r;
          skim_mode r;
          Buf.skip_list r skim_varint
      | 2 ->
          skim_request r;
          skim_mode_opt r;
          skim_varint r;
          Buf.skip_list r skim_request;
          skim_mode_set r
      | 3 ->
          skim_mode_opt r;
          skim_varint r
      | 4 -> skim_mode_set r
      | t -> raise (Buf.Malformed (Printf.sprintf "bad hlock tag %d" t)))
  | 1 -> (
      match Buf.read_u8 r with
      | 0 ->
          skim_varint r;
          skim_varint r
      | 1 -> ()
      | t -> raise (Buf.Malformed (Printf.sprintf "bad naimi tag %d" t)))
  | 2 -> skim_shard_msg r
  | t -> raise (Buf.Malformed (Printf.sprintf "bad payload tag %d" t)));
  if not (Buf.at_end r) then raise (Buf.Malformed "trailing bytes")

(* {1 Stream framing} *)

let max_frame = 1 lsl 20

let write_frame oc e =
  let w = Buf.writer ~capacity:128 () in
  Buf.u32_be w 0;
  Flat.envelope w e;
  Buf.patch_u32_be w ~at:0 (Buf.length w - 4);
  output_bytes oc (Bytes.sub (Buf.unsafe_bytes w) 0 (Buf.length w));
  flush oc

let read_frame ic =
  match input_char ic with
  | exception End_of_file -> None
  | b0 ->
      (* Sequence the reads explicitly: tuple components evaluate
         right-to-left in OCaml, which would scramble the header. *)
      let next () =
        try input_char ic with End_of_file -> raise (Buf.Malformed "truncated frame header")
      in
      let b1 = next () in
      let b2 = next () in
      let b3 = next () in
      let len =
        (Char.code b0 lsl 24) lor (Char.code b1 lsl 16) lor (Char.code b2 lsl 8) lor Char.code b3
      in
      if len > max_frame then raise (Buf.Malformed "frame too large");
      let body = Bytes.create len in
      (try really_input ic body 0 len
       with End_of_file -> raise (Buf.Malformed "truncated frame body"));
      Some (decode_sub body ~off:0 ~len)

(* {1 Cluster-state blobs}

   A whole lock object's per-node population as one compact byte string —
   the storage format the shard router keeps per lock set between bursts,
   and exactly the bytes a handoff entry's state travels as. Round-trips
   through the same snapshot codec as the wire path, so stored state and
   migrated state can never diverge. *)

let encode_cluster_state (snaps : Dcs_hlock.Node.snapshot array) =
  let w = Buf.writer ~capacity:256 () in
  Buf.varint w (Array.length snaps);
  Array.iter (fun s -> Flat.node_snapshot w s) snaps;
  Buf.contents w

let decode_cluster_state s =
  let r = Buf.reader s in
  let n = Buf.read_varint r in
  let snaps = Array.init n (fun _ -> read_node_snapshot r) in
  if not (Buf.at_end r) then raise (Buf.Malformed "trailing bytes");
  snaps
