open Dcs_modes
module Msg = Dcs_hlock.Msg

type payload =
  | Hlock of Msg.t
  | Naimi of Dcs_naimi.Naimi.msg

type envelope = {
  src : Dcs_proto.Node_id.t;
  lock : int;
  payload : payload;
}

let version = 4
(* v2: request carries a priority; v3: naimi request carries a span seq;
   v4: grant carries the granter's recorded child mode *)

(* {1 Encoding}

   The encoders are written once against {!Buf.WRITER} and instantiated
   twice: against the flat writer (the production path) and against the
   legacy [Buffer] writer, which exists only so tests can check the flat
   path byte-for-byte against the historical implementation. *)

module Enc (W : Buf.WRITER) = struct
  (* Node-id list items are encoded through this named function: an
     anonymous [fun w n -> W.varint w n] at the use sites would capture
     [W] and allocate a closure per message (no flambda). *)
  let varint_item w (n : int) = W.varint w n

  let mode w (m : Mode.t) = W.u8 w (Mode.index m)

  let mode_opt w = function
    | None -> W.u8 w 255
    | Some m -> mode w m

  let mode_set w s = W.u8 w (Mode_set.to_bits s)

  let request w (r : Msg.request) =
    W.varint w r.requester;
    W.varint w r.seq;
    mode w r.mode;
    W.bool w r.upgrade;
    W.varint w r.timestamp;
    W.varint w r.priority;
    W.varint w r.hops;
    W.bool w r.token_only;
    W.varint w (fst r.hint);
    W.varint w (snd r.hint);
    W.list w varint_item r.path

  let hlock_msg w (m : Msg.t) =
    match m with
    | Msg.Request req ->
        W.u8 w 0;
        request w req
    | Msg.Grant { req; epoch; recorded; ancestry } ->
        W.u8 w 1;
        request w req;
        W.varint w epoch;
        mode w recorded;
        W.list w varint_item ancestry
    | Msg.Token { serving; sender_owned; sender_epoch; queue; frozen } ->
        W.u8 w 2;
        request w serving;
        mode_opt w sender_owned;
        W.varint w sender_epoch;
        W.list w request queue;
        mode_set w frozen
    | Msg.Release { new_owned; epoch } ->
        W.u8 w 3;
        mode_opt w new_owned;
        W.varint w epoch
    | Msg.Freeze { frozen } ->
        W.u8 w 4;
        mode_set w frozen

  let naimi_msg w (m : Dcs_naimi.Naimi.msg) =
    match m with
    | Dcs_naimi.Naimi.Request { requester; seq } ->
        W.u8 w 0;
        W.varint w requester;
        W.varint w seq
    | Dcs_naimi.Naimi.Token -> W.u8 w 1

  let envelope w e =
    W.u8 w version;
    W.varint w e.src;
    W.varint w e.lock;
    match e.payload with
    | Hlock m ->
        W.u8 w 0;
        hlock_msg w m
    | Naimi m ->
        W.u8 w 1;
        naimi_msg w m
end

module Flat = Enc (Buf)
module Legacy = Enc (Buf.Legacy)

let write_envelope w e = Flat.envelope w e

let encode e =
  let w = Buf.writer ~capacity:128 () in
  Flat.envelope w e;
  Buf.contents w

let encode_legacy e =
  let w = Buf.Legacy.writer () in
  Legacy.envelope w e;
  Buf.Legacy.contents w

(* {1 Decoding} *)

let read_mode r =
  let i = Buf.read_u8 r in
  if i < 0 || i > 4 then raise (Buf.Malformed (Printf.sprintf "bad mode %d" i));
  Mode.of_index i

let read_mode_opt r =
  match Buf.read_u8 r with
  | 255 -> None
  | i when i >= 0 && i <= 4 -> Some (Mode.of_index i)
  | i -> raise (Buf.Malformed (Printf.sprintf "bad mode option %d" i))

let read_mode_set r =
  let bits = Buf.read_u8 r in
  if bits land lnot 0b11111 <> 0 then raise (Buf.Malformed "bad mode set");
  Mode_set.of_bits bits

let read_request r : Msg.request =
  let requester = Buf.read_varint r in
  let seq = Buf.read_varint r in
  let mode = read_mode r in
  let upgrade = Buf.read_bool r in
  let timestamp = Buf.read_varint r in
  let priority = Buf.read_varint r in
  let hops = Buf.read_varint r in
  let token_only = Buf.read_bool r in
  let tenure = Buf.read_varint r in
  let owner = Buf.read_varint r in
  let path = Buf.read_list r Buf.read_varint in
  { requester; seq; mode; upgrade; timestamp; priority; hops; token_only; hint = (tenure, owner); path }

let read_hlock_msg r : Msg.t =
  match Buf.read_u8 r with
  | 0 -> Msg.Request (read_request r)
  | 1 ->
      let req = read_request r in
      let epoch = Buf.read_varint r in
      let recorded = read_mode r in
      let ancestry = Buf.read_list r Buf.read_varint in
      Msg.Grant { req; epoch; recorded; ancestry }
  | 2 ->
      let serving = read_request r in
      let sender_owned = read_mode_opt r in
      let sender_epoch = Buf.read_varint r in
      let queue = Buf.read_list r read_request in
      let frozen = read_mode_set r in
      Msg.Token { serving; sender_owned; sender_epoch; queue; frozen }
  | 3 ->
      let new_owned = read_mode_opt r in
      let epoch = Buf.read_varint r in
      Msg.Release { new_owned; epoch }
  | 4 -> Msg.Freeze { frozen = read_mode_set r }
  | t -> raise (Buf.Malformed (Printf.sprintf "bad hlock tag %d" t))

let read_naimi_msg r : Dcs_naimi.Naimi.msg =
  match Buf.read_u8 r with
  | 0 ->
      let requester = Buf.read_varint r in
      let seq = Buf.read_varint r in
      Dcs_naimi.Naimi.Request { requester; seq }
  | 1 -> Dcs_naimi.Naimi.Token
  | t -> raise (Buf.Malformed (Printf.sprintf "bad naimi tag %d" t))

let read_envelope r =
  let v = Buf.read_u8 r in
  if v <> version then raise (Buf.Malformed (Printf.sprintf "unsupported version %d" v));
  let src = Buf.read_varint r in
  let lock = Buf.read_varint r in
  let payload =
    match Buf.read_u8 r with
    | 0 -> Hlock (read_hlock_msg r)
    | 1 -> Naimi (read_naimi_msg r)
    | t -> raise (Buf.Malformed (Printf.sprintf "bad payload tag %d" t))
  in
  if not (Buf.at_end r) then raise (Buf.Malformed "trailing bytes");
  { src; lock; payload }

let decode s = read_envelope (Buf.reader s)

let decode_sub b ~off ~len = read_envelope (Buf.reader_sub b ~off ~len)

(* {1 Skimming}

   The full decoder, minus materialization: every field is read and
   validated exactly as [read_envelope] would, but nothing is built, so
   a frame can be checked (or its class inspected) with zero allocation.
   Mirrors the readers above — extend both when the wire format grows. *)

let skim_mode r = ignore (read_mode r)

(* Not [ignore (read_mode_opt r)]: building the [Some] would allocate. *)
let skim_mode_opt r =
  match Buf.read_u8 r with
  | 255 -> ()
  | i when i >= 0 && i <= 4 -> ()
  | i -> raise (Buf.Malformed (Printf.sprintf "bad mode option %d" i))

let skim_mode_set r = ignore (read_mode_set r)

let skim_varint r = ignore (Buf.read_varint r)

let skim_request r =
  skim_varint r;
  skim_varint r;
  skim_mode r;
  ignore (Buf.read_bool r);
  skim_varint r;
  skim_varint r;
  skim_varint r;
  ignore (Buf.read_bool r);
  skim_varint r;
  skim_varint r;
  Buf.skip_list r skim_varint

let skim_envelope r =
  let v = Buf.read_u8 r in
  if v <> version then raise (Buf.Malformed (Printf.sprintf "unsupported version %d" v));
  skim_varint r;
  skim_varint r;
  (match Buf.read_u8 r with
  | 0 -> (
      match Buf.read_u8 r with
      | 0 -> skim_request r
      | 1 ->
          skim_request r;
          skim_varint r;
          skim_mode r;
          Buf.skip_list r skim_varint
      | 2 ->
          skim_request r;
          skim_mode_opt r;
          skim_varint r;
          Buf.skip_list r skim_request;
          skim_mode_set r
      | 3 ->
          skim_mode_opt r;
          skim_varint r
      | 4 -> skim_mode_set r
      | t -> raise (Buf.Malformed (Printf.sprintf "bad hlock tag %d" t)))
  | 1 -> (
      match Buf.read_u8 r with
      | 0 ->
          skim_varint r;
          skim_varint r
      | 1 -> ()
      | t -> raise (Buf.Malformed (Printf.sprintf "bad naimi tag %d" t)))
  | t -> raise (Buf.Malformed (Printf.sprintf "bad payload tag %d" t)));
  if not (Buf.at_end r) then raise (Buf.Malformed "trailing bytes")

(* {1 Stream framing} *)

let max_frame = 1 lsl 20

let write_frame oc e =
  let w = Buf.writer ~capacity:128 () in
  Buf.u32_be w 0;
  Flat.envelope w e;
  Buf.patch_u32_be w ~at:0 (Buf.length w - 4);
  output_bytes oc (Bytes.sub (Buf.unsafe_bytes w) 0 (Buf.length w));
  flush oc

let read_frame ic =
  match input_char ic with
  | exception End_of_file -> None
  | b0 ->
      (* Sequence the reads explicitly: tuple components evaluate
         right-to-left in OCaml, which would scramble the header. *)
      let next () =
        try input_char ic with End_of_file -> raise (Buf.Malformed "truncated frame header")
      in
      let b1 = next () in
      let b2 = next () in
      let b3 = next () in
      let len =
        (Char.code b0 lsl 24) lor (Char.code b1 lsl 16) lor (Char.code b2 lsl 8) lor Char.code b3
      in
      if len > max_frame then raise (Buf.Malformed "frame too large");
      let body = Bytes.create len in
      (try really_input ic body 0 len
       with End_of_file -> raise (Buf.Malformed "truncated frame body"));
      Some (decode_sub body ~off:0 ~len)
