open Dcs_modes
module Msg = Dcs_hlock.Msg

type payload =
  | Hlock of Msg.t
  | Naimi of Dcs_naimi.Naimi.msg

type envelope = {
  src : Dcs_proto.Node_id.t;
  lock : int;
  payload : payload;
}

let version = 4
(* v2: request carries a priority; v3: naimi request carries a span seq;
   v4: grant carries the granter's recorded child mode *)

let mode w (m : Mode.t) = Buf.u8 w (Mode.index m)

let read_mode r =
  let i = Buf.read_u8 r in
  if i < 0 || i > 4 then raise (Buf.Malformed (Printf.sprintf "bad mode %d" i));
  Mode.of_index i

let mode_opt w = function
  | None -> Buf.u8 w 255
  | Some m -> mode w m

let read_mode_opt r =
  match Buf.read_u8 r with
  | 255 -> None
  | i when i >= 0 && i <= 4 -> Some (Mode.of_index i)
  | i -> raise (Buf.Malformed (Printf.sprintf "bad mode option %d" i))

let mode_set w s = Buf.u8 w (Mode_set.to_bits s)

let read_mode_set r =
  let bits = Buf.read_u8 r in
  if bits land lnot 0b11111 <> 0 then raise (Buf.Malformed "bad mode set");
  Mode_set.of_bits bits

let request w (r : Msg.request) =
  Buf.varint w r.requester;
  Buf.varint w r.seq;
  mode w r.mode;
  Buf.bool w r.upgrade;
  Buf.varint w r.timestamp;
  Buf.varint w r.priority;
  Buf.varint w r.hops;
  Buf.bool w r.token_only;
  Buf.varint w (fst r.hint);
  Buf.varint w (snd r.hint);
  Buf.list w (fun w n -> Buf.varint w n) r.path

let read_request r : Msg.request =
  let requester = Buf.read_varint r in
  let seq = Buf.read_varint r in
  let mode = read_mode r in
  let upgrade = Buf.read_bool r in
  let timestamp = Buf.read_varint r in
  let priority = Buf.read_varint r in
  let hops = Buf.read_varint r in
  let token_only = Buf.read_bool r in
  let tenure = Buf.read_varint r in
  let owner = Buf.read_varint r in
  let path = Buf.read_list r Buf.read_varint in
  { requester; seq; mode; upgrade; timestamp; priority; hops; token_only; hint = (tenure, owner); path }

let hlock_msg w (m : Msg.t) =
  match m with
  | Msg.Request req ->
      Buf.u8 w 0;
      request w req
  | Msg.Grant { req; epoch; recorded; ancestry } ->
      Buf.u8 w 1;
      request w req;
      Buf.varint w epoch;
      mode w recorded;
      Buf.list w (fun w n -> Buf.varint w n) ancestry
  | Msg.Token { serving; sender_owned; sender_epoch; queue; frozen } ->
      Buf.u8 w 2;
      request w serving;
      mode_opt w sender_owned;
      Buf.varint w sender_epoch;
      Buf.list w request queue;
      mode_set w frozen
  | Msg.Release { new_owned; epoch } ->
      Buf.u8 w 3;
      mode_opt w new_owned;
      Buf.varint w epoch
  | Msg.Freeze { frozen } ->
      Buf.u8 w 4;
      mode_set w frozen

let read_hlock_msg r : Msg.t =
  match Buf.read_u8 r with
  | 0 -> Msg.Request (read_request r)
  | 1 ->
      let req = read_request r in
      let epoch = Buf.read_varint r in
      let recorded = read_mode r in
      let ancestry = Buf.read_list r Buf.read_varint in
      Msg.Grant { req; epoch; recorded; ancestry }
  | 2 ->
      let serving = read_request r in
      let sender_owned = read_mode_opt r in
      let sender_epoch = Buf.read_varint r in
      let queue = Buf.read_list r read_request in
      let frozen = read_mode_set r in
      Msg.Token { serving; sender_owned; sender_epoch; queue; frozen }
  | 3 ->
      let new_owned = read_mode_opt r in
      let epoch = Buf.read_varint r in
      Msg.Release { new_owned; epoch }
  | 4 -> Msg.Freeze { frozen = read_mode_set r }
  | t -> raise (Buf.Malformed (Printf.sprintf "bad hlock tag %d" t))

let naimi_msg w (m : Dcs_naimi.Naimi.msg) =
  match m with
  | Dcs_naimi.Naimi.Request { requester; seq } ->
      Buf.u8 w 0;
      Buf.varint w requester;
      Buf.varint w seq
  | Dcs_naimi.Naimi.Token -> Buf.u8 w 1

let read_naimi_msg r : Dcs_naimi.Naimi.msg =
  match Buf.read_u8 r with
  | 0 ->
      let requester = Buf.read_varint r in
      let seq = Buf.read_varint r in
      Dcs_naimi.Naimi.Request { requester; seq }
  | 1 -> Dcs_naimi.Naimi.Token
  | t -> raise (Buf.Malformed (Printf.sprintf "bad naimi tag %d" t))

let encode e =
  let w = Buf.writer () in
  Buf.u8 w version;
  Buf.varint w e.src;
  Buf.varint w e.lock;
  (match e.payload with
  | Hlock m ->
      Buf.u8 w 0;
      hlock_msg w m
  | Naimi m ->
      Buf.u8 w 1;
      naimi_msg w m);
  Buf.contents w

let decode s =
  let r = Buf.reader s in
  let v = Buf.read_u8 r in
  if v <> version then raise (Buf.Malformed (Printf.sprintf "unsupported version %d" v));
  let src = Buf.read_varint r in
  let lock = Buf.read_varint r in
  let payload =
    match Buf.read_u8 r with
    | 0 -> Hlock (read_hlock_msg r)
    | 1 -> Naimi (read_naimi_msg r)
    | t -> raise (Buf.Malformed (Printf.sprintf "bad payload tag %d" t))
  in
  if not (Buf.at_end r) then raise (Buf.Malformed "trailing bytes");
  { src; lock; payload }

let max_frame = 1 lsl 20

let write_frame oc e =
  let body = encode e in
  let len = String.length body in
  output_char oc (Char.chr ((len lsr 24) land 0xff));
  output_char oc (Char.chr ((len lsr 16) land 0xff));
  output_char oc (Char.chr ((len lsr 8) land 0xff));
  output_char oc (Char.chr (len land 0xff));
  output_string oc body;
  flush oc

let read_frame ic =
  match input_char ic with
  | exception End_of_file -> None
  | b0 ->
      (* Sequence the reads explicitly: tuple components evaluate
         right-to-left in OCaml, which would scramble the header. *)
      let next () =
        try input_char ic with End_of_file -> raise (Buf.Malformed "truncated frame header")
      in
      let b1 = next () in
      let b2 = next () in
      let b3 = next () in
      let len =
        (Char.code b0 lsl 24) lor (Char.code b1 lsl 16) lor (Char.code b2 lsl 8) lor Char.code b3
      in
      if len > max_frame then raise (Buf.Malformed "frame too large");
      let body = Bytes.create len in
      (try really_input ic body 0 len
       with End_of_file -> raise (Buf.Malformed "truncated frame body"));
      Some (decode (Bytes.to_string body))
