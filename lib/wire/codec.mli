(** Wire format for protocol messages.

    An envelope identifies the sending node and the lock object; the
    payload is a hierarchical-protocol message, a Naimi baseline message,
    or a shard-service control message ({!Shard_msg} — directory traffic
    and bucket-migration handoffs, versioned alongside v4 as a third
    payload tag). Frames are versioned: decoding rejects unknown versions
    with {!Buf.Malformed}.

    Two encode/decode surfaces exist. The string API ({!encode} /
    {!decode}) is a thin convenience shim. The flat API
    ({!write_envelope} into a reusable {!Buf.writer}, {!read_envelope} /
    {!decode_sub} over caller-owned bytes, {!skim_envelope} for
    validation) is the zero-allocation transport path: with a reused
    writer and reader, encoding and skimming allocate nothing, and
    decoding allocates only the decoded message itself.

    Framing for stream transports is a 4-byte big-endian length prefix
    followed by the encoded envelope ({!write_frame} / {!read_frame});
    batched transports concatenate several such frames into one write. *)

type payload =
  | Hlock of Dcs_hlock.Msg.t
  | Naimi of Dcs_naimi.Naimi.msg
  | Shard of Shard_msg.t

type envelope = {
  src : Dcs_proto.Node_id.t;
  lock : int;
  payload : payload;
}

(** Current format version, encoded into every message. *)
val version : int

(** {1 Flat (zero-allocation) path} *)

(** Append one encoded envelope to the writer; allocates nothing. *)
val write_envelope : Buf.writer -> envelope -> unit

(** Decode one envelope from a reader positioned on it; the whole slice
    must be consumed. Raises {!Buf.Malformed} on garbage, truncation or
    version mismatch. *)
val read_envelope : Buf.reader -> envelope

(** [decode_sub b ~off ~len] decodes the envelope occupying exactly that
    slice. *)
val decode_sub : Bytes.t -> off:int -> len:int -> envelope

(** Validate without materializing: reads every field exactly as
    {!read_envelope} would — same {!Buf.Malformed} failures, including
    the trailing-bytes check — but builds nothing and allocates
    nothing. *)
val skim_envelope : Buf.reader -> unit

(** {1 String shim} *)

val encode : envelope -> string

(** Reference encoding through the legacy [Buffer] writer; must agree
    with {!encode} byte-for-byte. Exists for differential tests only. *)
val encode_legacy : envelope -> string

(** Raises {!Buf.Malformed} on garbage, truncation or version mismatch. *)
val decode : string -> envelope

(** {1 Stream framing} *)

(** Largest accepted frame (1 MiB); {!read_frame} rejects bigger ones. *)
val max_frame : int

(** Write one length-prefixed frame. *)
val write_frame : out_channel -> envelope -> unit

(** Read one frame; [None] on clean end-of-stream at a frame boundary.
    Raises {!Buf.Malformed} on mid-frame truncation or oversized frames. *)
val read_frame : in_channel -> envelope option

(** {1 Cluster-state blobs}

    One lock object's per-node population ({!Dcs_hlock.Node.snapshot}s,
    indexed by node id) as a compact byte string — the at-rest storage
    format the shard router keeps between bursts, using the same snapshot
    codec the handoff wire path uses, so stored and migrated state cannot
    diverge. *)

val encode_cluster_state : Dcs_hlock.Node.snapshot array -> string

(** Raises {!Buf.Malformed} on garbage or truncation. *)
val decode_cluster_state : string -> Dcs_hlock.Node.snapshot array
