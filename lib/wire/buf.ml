exception Malformed of string

(* {1 Flat writer} *)

type writer = { mutable buf : Bytes.t; mutable len : int }

let writer ?(capacity = 64) () =
  if capacity < 1 then invalid_arg "Buf.writer: capacity must be positive";
  { buf = Bytes.create capacity; len = 0 }

let reset w = w.len <- 0

let length w = w.len

let contents w = Bytes.sub_string w.buf 0 w.len

let unsafe_bytes w = w.buf

let blit w dst pos = Bytes.blit w.buf 0 dst pos w.len

(* Grow-once: double (at least) whenever the next write would overflow,
   so a writer reused across frames stops allocating as soon as it has
   seen its largest frame. *)
let grow w need =
  let cap = ref (2 * Bytes.length w.buf) in
  while !cap < need do
    cap := 2 * !cap
  done;
  let buf = Bytes.create !cap in
  Bytes.blit w.buf 0 buf 0 w.len;
  w.buf <- buf

let ensure w extra =
  let need = w.len + extra in
  if need > Bytes.length w.buf then grow w need

let u8 w v =
  ensure w 1;
  Bytes.unsafe_set w.buf w.len (Char.unsafe_chr (v land 0xff));
  w.len <- w.len + 1

let varint w v =
  if v < 0 then invalid_arg "Buf.varint: negative";
  (* Worst case: 63 significant bits / 7 per byte = 9 bytes. *)
  ensure w 9;
  let buf = w.buf in
  let pos = ref w.len in
  let v = ref v in
  while !v >= 0x80 do
    Bytes.unsafe_set buf !pos (Char.unsafe_chr (0x80 lor (!v land 0x7f)));
    incr pos;
    v := !v lsr 7
  done;
  Bytes.unsafe_set buf !pos (Char.unsafe_chr !v);
  w.len <- !pos + 1

let bool w b = u8 w (if b then 1 else 0)

let string w s =
  let n = String.length s in
  varint w n;
  ensure w n;
  Bytes.blit_string s 0 w.buf w.len n;
  w.len <- w.len + n

(* Hand-rolled iteration: [List.iter (f w)] would allocate a partial
   application per call (no flambda to eliminate it), and the encode
   path promises zero allocation. *)
let rec iter_items w f = function
  | [] -> ()
  | x :: tl ->
      f w x;
      iter_items w f tl

let list w f l =
  varint w (List.length l);
  iter_items w f l

let u32_be w v =
  ensure w 4;
  let buf = w.buf and p = w.len in
  Bytes.unsafe_set buf p (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set buf (p + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set buf (p + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set buf (p + 3) (Char.unsafe_chr (v land 0xff));
  w.len <- p + 4

let patch_u32_be w ~at v =
  if at < 0 || at + 4 > w.len then invalid_arg "Buf.patch_u32_be: out of range";
  let buf = w.buf in
  Bytes.unsafe_set buf at (Char.unsafe_chr ((v lsr 24) land 0xff));
  Bytes.unsafe_set buf (at + 1) (Char.unsafe_chr ((v lsr 16) land 0xff));
  Bytes.unsafe_set buf (at + 2) (Char.unsafe_chr ((v lsr 8) land 0xff));
  Bytes.unsafe_set buf (at + 3) (Char.unsafe_chr (v land 0xff))

(* {1 Zero-copy reader} *)

type reader = { mutable data : Bytes.t; mutable pos : int; mutable limit : int }

(* The string is never written through the alias, so the unsafe cast is a
   pure zero-copy view. *)
let reader s =
  { data = Bytes.unsafe_of_string s; pos = 0; limit = String.length s }

let reader_sub b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Buf.reader_sub: slice out of range";
  { data = b; pos = off; limit = off + len }

let attach r b ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length b then
    invalid_arg "Buf.attach: slice out of range";
  r.data <- b;
  r.pos <- off;
  r.limit <- off + len

let at_end r = r.pos >= r.limit

let read_u8 r =
  if r.pos >= r.limit then raise (Malformed "truncated u8");
  let v = Char.code (Bytes.unsafe_get r.data r.pos) in
  r.pos <- r.pos + 1;
  v

(* The loop lives at top level: an inner [let rec] capturing [r] would
   allocate its closure on every varint read. *)
let rec read_varint_at r shift acc =
  if shift > 62 then raise (Malformed "varint too long");
  let b = read_u8 r in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 = 0 then acc else read_varint_at r (shift + 7) acc

let read_varint r = read_varint_at r 0 0

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Malformed (Printf.sprintf "bad bool %d" n))

let read_string r =
  let len = read_varint r in
  if len < 0 || r.pos + len > r.limit then raise (Malformed "truncated string");
  let s = Bytes.sub_string r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_u32_be r =
  if r.pos + 4 > r.limit then raise (Malformed "truncated u32");
  let d = r.data and p = r.pos in
  r.pos <- p + 4;
  (Char.code (Bytes.unsafe_get d p) lsl 24)
  lor (Char.code (Bytes.unsafe_get d (p + 1)) lsl 16)
  lor (Char.code (Bytes.unsafe_get d (p + 2)) lsl 8)
  lor Char.code (Bytes.unsafe_get d (p + 3))

let read_list r f =
  let n = read_varint r in
  if n > 1_000_000 then raise (Malformed "list too long");
  List.init n (fun _ -> f r)

let skip_list r f =
  let n = read_varint r in
  if n > 1_000_000 then raise (Malformed "list too long");
  for _ = 1 to n do
    f r
  done

(* {1 Writer abstraction and the legacy reference} *)

module type WRITER = sig
  type writer

  val u8 : writer -> int -> unit
  val varint : writer -> int -> unit
  val bool : writer -> bool -> unit
  val string : writer -> string -> unit
  val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
end

module Legacy = struct
  type writer = Buffer.t

  let writer () = Buffer.create 64
  let contents = Buffer.contents
  let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

  let varint w v =
    if v < 0 then invalid_arg "Buf.varint: negative";
    let rec go v =
      if v < 0x80 then u8 w v
      else begin
        u8 w (0x80 lor (v land 0x7f));
        go (v lsr 7)
      end
    in
    go v

  let bool w b = u8 w (if b then 1 else 0)

  let string w s =
    varint w (String.length s);
    Buffer.add_string w s

  let list w f l =
    varint w (List.length l);
    List.iter (f w) l
end
