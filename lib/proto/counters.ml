type t = int array

let buckets = List.length Msg_class.all

let create () = Array.make buckets 0

let incr t c = t.(Msg_class.index c) <- t.(Msg_class.index c) + 1

let get t c = t.(Msg_class.index c)

let total t = Array.fold_left ( + ) 0 t

let merge_into ~dst ~src = Array.iteri (fun i v -> dst.(i) <- dst.(i) + v) src

let reset t = Array.fill t 0 buckets 0

let to_list t = List.map (fun c -> (c, get t c)) Msg_class.all

let diff a b = List.map (fun c -> (c, get a c - get b c)) Msg_class.all

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       (fun ppf (c, n) -> Format.fprintf ppf "%a=%d" Msg_class.pp c n))
    (to_list t)
