type t =
  | Request
  | Copy_grant
  | Token_transfer
  | Release
  | Freeze
  | Ack
  | Retransmit

let all = [ Request; Copy_grant; Token_transfer; Release; Freeze; Ack; Retransmit ]

let equal (a : t) (b : t) = a = b

let index = function
  | Request -> 0
  | Copy_grant -> 1
  | Token_transfer -> 2
  | Release -> 3
  | Freeze -> 4
  | Ack -> 5
  | Retransmit -> 6

let to_string = function
  | Request -> "request"
  | Copy_grant -> "grant"
  | Token_transfer -> "token"
  | Release -> "release"
  | Freeze -> "freeze"
  | Ack -> "ack"
  | Retransmit -> "retx"

let pp ppf t = Format.pp_print_string ppf (to_string t)
