(** Protocol-message taxonomy shared by all protocols.

    These are the categories of Figure 7 of the paper (message-overhead
    breakdown): request relays, copy grants, token transfers, releases and
    freeze notifications. The Naimi baseline only ever emits [Request] and
    [Token_transfer].

    [Ack] and [Retransmit] are emitted only by the reliable-delivery shim
    ({!Dcs_fault.Reliable}) when the protocols run over a lossy link: they
    let experiments report the shim's overhead separately from the
    protocol's own traffic (the five paper classes). *)

type t =
  | Request  (** lock request (initial send or relay hop) *)
  | Copy_grant  (** Rule 3 copy grant from a (token or non-token) node *)
  | Token_transfer  (** token handover (Rule 3.2 operational) *)
  | Release  (** upward owned-mode weakening / child detach (Rule 5) *)
  | Freeze  (** frozen-mode notification (Rule 6) *)
  | Ack  (** reliable-shim cumulative acknowledgement *)
  | Retransmit  (** reliable-shim retransmission of an unacked message *)

val all : t list
val equal : t -> t -> bool
val index : t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
