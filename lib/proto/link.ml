type decision =
  | Deliver of { copies : int; delay_factor : float; extra_delay : float }
  | Hold

let pass = Deliver { copies = 1; delay_factor = 1.0; extra_delay = 0.0 }

type fault =
  now:float -> src:Node_id.t -> dst:Node_id.t -> cls:Msg_class.t -> decision

type send =
  src:Node_id.t ->
  dst:Node_id.t ->
  cls:Msg_class.t ->
  describe:(unit -> string) ->
  (unit -> unit) ->
  unit
