(** Transport-layer signatures shared by the simulated network, the fault
    injector and the reliable-delivery shim.

    A [send] is the one verb every transport exposes: deliver an opaque
    message (represented by its [deliver] continuation) from [src] to [dst],
    counted under a {!Msg_class}. {!Dcs_runtime.Net.send}, partially
    applied, has exactly this type, and {!Dcs_fault.Reliable} both consumes
    and produces it — which is what lets the shim be layered between any
    protocol engine and any lossy link without either knowing.

    A [fault] hook is consulted by the network once per message send and
    returns a {!decision}: deliver normally (possibly delayed, dropped or
    duplicated) or hold the message in the network's partition buffer until
    a later {e flush}. The hook must be deterministic given its own RNG
    stream; {!Dcs_fault.Plan} compiles declarative fault schedules into
    hooks. *)

(** What the fault layer does with one message. *)
type decision =
  | Deliver of {
      copies : int;  (** 0 drops the message; 2+ delivers duplicates *)
      delay_factor : float;  (** scales the link's latency draw (spikes) *)
      extra_delay : float;  (** absolute extra delay in ms *)
    }
  | Hold
      (** Buffer the message (partition / paused node); it stays queued in
          send order until the owner of the hook flushes the network. *)

(** Normal delivery: one copy, unscaled, no extra delay. *)
val pass : decision

(** Per-message fault hook. *)
type fault =
  now:float -> src:Node_id.t -> dst:Node_id.t -> cls:Msg_class.t -> decision

(** Point-to-point message submission (see {!Dcs_runtime.Net.send}). *)
type send =
  src:Node_id.t ->
  dst:Node_id.t ->
  cls:Msg_class.t ->
  describe:(unit -> string) ->
  (unit -> unit) ->
  unit
