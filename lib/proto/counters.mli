(** Message counters, bucketed by {!Msg_class}. *)

type t

val create : unit -> t

(** Increment one bucket. *)
val incr : t -> Msg_class.t -> unit

(** Count in one bucket. *)
val get : t -> Msg_class.t -> int

(** Sum over all buckets. *)
val total : t -> int

(** Add [src] into [dst]. *)
val merge_into : dst:t -> src:t -> unit

(** Reset all buckets to zero. *)
val reset : t -> unit

(** [(class, count)] pairs in {!Msg_class.all} order. *)
val to_list : t -> (Msg_class.t * int) list

(** [diff now before] is the per-class delta [now - before], in
    {!Msg_class.all} order — lets experiments report per-phase message
    counts from cumulative snapshots. *)
val diff : t -> t -> (Msg_class.t * int) list

val pp : Format.formatter -> t -> unit
