(* The tables are built by enumerating the derivational predicates of
   Compat over every (owned code, request mode) cell, so Compat remains the
   single source of truth and this module cannot drift from it. *)

let n_modes = 5

let n_codes = n_modes + 1 (* ⊥ plus the five modes *)

let owned_code = function
  | None -> 0
  | Some m -> 1 + Mode.index m

let code_of_mode m = 1 + Mode.index m

let mode_of_code c = Mode.of_index (c - 1)

let decoded =
  Array.init n_codes (fun c -> if c = 0 then None else Some (mode_of_code c))

let decode_owned c =
  if c < 0 || c >= n_codes then invalid_arg (Printf.sprintf "Decision.decode_owned: %d" c);
  Array.unsafe_get decoded c

let some_mode m = Array.unsafe_get decoded (code_of_mode m)

let strengths =
  Array.init n_codes (fun c -> if c = 0 then 0 else Mode.strength (mode_of_code c))

let strength_of_code c = strengths.(c)

(* One 5-bit mask per row: bit [Mode.index m] answers the (row, m) cell. *)
let mask_table ~rows cell =
  Array.init rows (fun r ->
      List.fold_left
        (fun acc m -> if cell r m then acc lor (1 lsl Mode.index m) else acc)
        0 Mode.all)

let compat_masks = mask_table ~rows:n_modes (fun r m -> Compat.compatible (Mode.of_index r) m)

let child_grant_masks =
  mask_table ~rows:n_codes (fun c m -> Compat.can_child_grant ~owned:(decode_owned c) m)

let token_grant_masks =
  mask_table ~rows:n_codes (fun c m -> Compat.token_can_grant ~owned:(decode_owned c) m)

let token_transfer_masks =
  mask_table ~rows:n_codes (fun c m -> Compat.token_must_transfer ~owned:(decode_owned c) m)

let queueable_masks =
  mask_table ~rows:n_codes (fun c m -> Compat.queueable ~pending:(decode_owned c) m)

(* Table 2(b): a Mode_set bitmask per (owned code, request mode) cell. *)
let freeze_table =
  Array.init (n_codes * n_modes) (fun i ->
      let c = i / n_modes and m = Mode.of_index (i mod n_modes) in
      Mode_set.to_bits (Compat.freeze_set ~owned:(decode_owned c) m))

let le_strength_masks =
  mask_table ~rows:n_modes (fun r m -> Mode.strength m <= Mode.strength (Mode.of_index r))

let test_bit masks row m = (Array.unsafe_get masks row lsr Mode.index m) land 1 <> 0

let compatible a b = test_bit compat_masks (Mode.index a) b

let compatible_bits m = Mode_set.of_bits compat_masks.(Mode.index m)

let incompatible_bits m = Mode_set.of_bits (lnot compat_masks.(Mode.index m) land 0b11111)

let le_strength_bits m = Mode_set.of_bits le_strength_masks.(Mode.index m)

let can_child_grant ~owned m = test_bit child_grant_masks owned m

let token_can_grant ~owned m = test_bit token_grant_masks owned m

let token_must_transfer ~owned m = test_bit token_transfer_masks owned m

let queueable ~pending m = test_bit queueable_masks pending m

let freeze_set ~owned m =
  Mode_set.of_bits (Array.unsafe_get freeze_table ((owned * n_modes) + Mode.index m))

(* Initialization-time self-check: every cell of every table must agree
   with the derivational Compat predicate it was built from. Cheap (155
   cells) and turns any future encoding slip into a load-time failure. *)
let () =
  List.iter
    (fun m ->
      List.iter
        (fun m' -> assert (compatible m m' = Compat.compatible m m'))
        Mode.all)
    Mode.all;
  for c = 0 to n_codes - 1 do
    let o = decode_owned c in
    List.iter
      (fun m ->
        assert (can_child_grant ~owned:c m = Compat.can_child_grant ~owned:o m);
        assert (token_can_grant ~owned:c m = Compat.token_can_grant ~owned:o m);
        assert (token_must_transfer ~owned:c m = Compat.token_must_transfer ~owned:o m);
        assert (queueable ~pending:c m = Compat.queueable ~pending:o m);
        assert (Mode_set.equal (freeze_set ~owned:c m) (Compat.freeze_set ~owned:o m)))
      Mode.all
  done
