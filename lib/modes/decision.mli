(** Precomputed bitmask decision tables — the per-message fast path.

    {!Compat} implements every decision table of the paper (Tables 1a, 1b,
    2a, 2b) as a closed-form predicate over compatibility and strength.
    Those derivations are the specification; this module materializes them
    once, at module initialization, into immutable flat [int] arrays so
    that every decision taken on the protocol's per-message hot path
    ({!Dcs_hlock.Node}) is a single array index and bit test — no list
    walks, no closure or option allocation.

    {2 Owned codes}

    A possibly-absent mode ([Mode.t option], the paper's ⊥) is encoded as
    an {e owned code} in [0..5]: [0] is ⊥ and [1 + Mode.index m] is
    [Some m]. Codes let callers keep "current owned mode" as an unboxed
    [int] and decide without ever allocating an option. {!decode_owned}
    returns preallocated options, so converting back is allocation-free
    too.

    {2 Encoding}

    Each boolean table over (owned code × request mode) is one [int] array
    of length 6 whose element for code [c] is a 5-bit mask: bit
    [Mode.index m] is set iff the decision for ([c], [m]) is positive.
    Table 2(b) stores one {!Mode_set.t} bitmask per (code, mode) cell in a
    flat 30-element array. Agreement with the derivational {!Compat}
    functions on every cell is asserted at initialization time and
    cross-checked exhaustively by the test suite. *)

(** {1 Owned codes} *)

(** [owned_code o] is [0] for [None], [1 + Mode.index m] for [Some m]. *)
val owned_code : Mode.t option -> int

(** [code_of_mode m] = [1 + Mode.index m]. *)
val code_of_mode : Mode.t -> int

(** Preallocated [Some m] (or [None] for code 0); never allocates.
    Raises [Invalid_argument] outside [0..5]. *)
val decode_owned : int -> Mode.t option

(** [some_mode m] is a preallocated [Some m]. *)
val some_mode : Mode.t -> Mode.t option

(** Strength of a code: ⊥ → 0, otherwise [Mode.strength]. *)
val strength_of_code : int -> int

(** {1 Table 1(a) — compatibility} *)

(** Single bit test; agrees with {!Compat.compatible}. *)
val compatible : Mode.t -> Mode.t -> bool

(** All modes compatible with [m], as a bitmask. *)
val compatible_bits : Mode.t -> Mode_set.t

(** All modes incompatible with [m] (complement within the five modes);
    [Mode_set.inter held (incompatible_bits m)] is the conflict set. *)
val incompatible_bits : Mode.t -> Mode_set.t

(** Modes no stronger than [m]: [{ x | strength x <= strength m }]. *)
val le_strength_bits : Mode.t -> Mode_set.t

(** {1 Tables 1(b), 2(a), and Rule 3.2 — code-indexed decisions} *)

(** Table 1(b): agrees with {!Compat.can_child_grant}. *)
val can_child_grant : owned:int -> Mode.t -> bool

(** Rule 3.2: agrees with {!Compat.token_can_grant}. *)
val token_can_grant : owned:int -> Mode.t -> bool

(** Rule 3.2 operational: agrees with {!Compat.token_must_transfer}. *)
val token_must_transfer : owned:int -> Mode.t -> bool

(** Table 2(a): agrees with {!Compat.queueable} ([pending] is the code of
    the pending mode; code 0 = no pending request = always forward). *)
val queueable : pending:int -> Mode.t -> bool

(** {1 Table 2(b) — freeze sets} *)

(** Agrees with {!Compat.freeze_set}. *)
val freeze_set : owned:int -> Mode.t -> Mode_set.t
