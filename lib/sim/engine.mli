(** Deterministic discrete-event simulation engine.

    Time is a [float] in milliseconds (matching the paper's parameter
    units). Events scheduled for the same instant fire in scheduling order,
    so a run is fully determined by the seed-driven callbacks. The engine is
    deliberately minimal: processes are encoded as callbacks that schedule
    further events. *)

type t

(** Why {!run} returned. *)
type outcome =
  | Drained  (** no events left *)
  | Horizon_reached  (** simulated clock hit [until] *)
  | Event_limit  (** processed [max_events] events (runaway guard) *)

val create : unit -> t

(** Rewind to the just-created state — clock at 0, no queued events, event
    and sequence counters zeroed — retaining the heap's capacity, so a
    pooled engine can run many back-to-back simulations without
    re-growing. The tick hook is kept; callers that installed one manage
    it themselves. *)
val reset : t -> unit

(** Current simulated time (ms). 0 before any event fires. *)
val now : t -> float

(** [schedule t ~after f] runs [f ()] at [now t +. after]. Negative delays
    are clamped to 0 (fire "now", after currently queued same-time
    events). *)
val schedule : t -> after:float -> (unit -> unit) -> unit

(** [schedule_at t ~time f]: absolute-time variant; times in the past are
    clamped to [now]. *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** Run the event loop. [until] bounds the simulated clock;
    [max_events] (default 100 million) bounds total events processed. *)
val run : ?until:float -> ?max_events:int -> t -> outcome

(** Process a single event; [false] if the queue is empty. *)
val step : t -> bool

(** [set_tick t (Some hook)] installs a hook called after every processed
    event (with the clock at that event's time); [set_tick t None] removes
    it. Used by telemetry to sample gauges at simulated-time granularity
    without perturbing the event stream. The disabled case costs one branch
    per event. *)
val set_tick : t -> (unit -> unit) option -> unit

(** Number of queued events. *)
val pending : t -> int

(** Total events processed since creation. *)
val events_processed : t -> int
