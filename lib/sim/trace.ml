(* Entries live in a pair of parallel ring arrays (times unboxed). With a
   capacity, eviction is an O(1) overwrite of the oldest slot — the
   previous list-based implementation re-filtered the whole retained list
   on every capacity-evicted record. Without a capacity the arrays grow
   geometrically. The digest always covers every entry ever recorded,
   including evicted ones: it folds the raw IEEE bits of the timestamp
   (exact, no decimal re-rendering) and the entry text into FNV-1a. *)

type t = {
  enabled : bool;
  capacity : int option;
  mutable times : float array;
  mutable lines : string array;
  mutable total : int;  (* entries ever recorded *)
  mutable hash : int64;
}

let create ?capacity ~enabled () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.create: capacity <= 0"
  | _ -> ());
  { enabled; capacity; times = [||]; lines = [||]; total = 0; hash = 0xcbf29ce484222325L }

let enabled t = t.enabled

let reset t =
  (* Release the retained lines (they can root arbitrary strings) but keep
     the arrays themselves: a pooled trace restarts without reallocating. *)
  Array.fill t.lines 0 (Array.length t.lines) "";
  t.total <- 0;
  t.hash <- 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let hash_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) fnv_prime

let hash_string h s =
  let h = ref h in
  String.iter (fun c -> h := hash_byte !h (Char.code c)) s;
  !h

let hash_time h time =
  let bits = Int64.bits_of_float time in
  let h = ref h in
  for i = 0 to 7 do
    h := hash_byte !h (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done;
  !h

let retained t =
  match t.capacity with Some cap -> min t.total cap | None -> t.total

let length = retained

let total t = t.total

let evicted t = t.total - retained t

let ensure_room t =
  let cap = Array.length t.times in
  if t.total = cap then begin
    let cap' = if cap = 0 then 64 else 2 * cap in
    let times = Array.make cap' 0.0 in
    let lines = Array.make cap' "" in
    Array.blit t.times 0 times 0 t.total;
    Array.blit t.lines 0 lines 0 t.total;
    t.times <- times;
    t.lines <- lines
  end

let record t ~time msg =
  if t.enabled then begin
    let line = msg () in
    t.hash <- hash_string (hash_time t.hash time) line;
    (match t.capacity with
    | Some cap ->
        if Array.length t.times = 0 then begin
          t.times <- Array.make cap 0.0;
          t.lines <- Array.make cap ""
        end;
        let slot = t.total mod cap in
        t.times.(slot) <- time;
        t.lines.(slot) <- line
    | None ->
        ensure_room t;
        t.times.(t.total) <- time;
        t.lines.(t.total) <- line);
    t.total <- t.total + 1
  end

let entries t =
  let n = retained t in
  let start =
    match t.capacity with
    | Some cap when t.total > cap -> t.total mod cap
    | _ -> 0
  in
  let modulus = max 1 (Array.length t.times) in
  List.init n (fun i ->
      let slot = (start + i) mod modulus in
      (t.times.(slot), t.lines.(slot)))

let digest t = t.hash

let pp ppf t =
  let n = evicted t in
  if n > 0 then Format.fprintf ppf "... %d earlier entries evicted ...@." n;
  List.iter (fun (time, line) -> Format.fprintf ppf "[%10.3f] %s@." time line) (entries t)
