(** Mutable binary min-heap priority queue.

    A flat parallel-array heap (keys, insertion sequence numbers and
    values in three sentinel-filled arrays — no per-element boxing).
    Exposed for reuse; ties are broken by insertion order (the queue is
    stable), which deterministic event ordering relies on. *)

type ('k, 'v) t

(** [create ~compare] makes an empty queue ordered by [compare]. *)
val create : compare:('k -> 'k -> int) -> ('k, 'v) t

(** Number of stored elements. *)
val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

(** Insert a binding. O(log n). *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** Smallest binding, if any; does not remove. O(1). *)
val peek : ('k, 'v) t -> ('k * 'v) option

(** Remove and return the smallest binding. O(log n). *)
val pop : ('k, 'v) t -> ('k * 'v) option

(** {2 Allocation-free access}

    The [unsafe_*] pair plus {!remove_min} is [pop] split into
    non-allocating parts, for hot loops: read the minimum's key and value
    (undefined results if the queue is empty — check {!is_empty} first),
    then drop it. [remove_min] on an empty queue is a no-op. *)

val unsafe_min_key : ('k, 'v) t -> 'k
val unsafe_min_value : ('k, 'v) t -> 'v
val remove_min : ('k, 'v) t -> unit

(** Remove all elements. *)
val clear : ('k, 'v) t -> unit

(** Drain into a sorted list (destructive). *)
val drain : ('k, 'v) t -> ('k * 'v) list
