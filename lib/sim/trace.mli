(** Lightweight simulation traces.

    A trace records timestamped, pre-rendered entries. Recording is cheap
    when disabled (the formatter thunk is not forced). Traces serve two
    purposes: human inspection of protocol runs, and determinism checks
    (two runs with equal seeds must produce equal {!digest}s). *)

type t

(** [create ~enabled ()] makes a trace; when [capacity] is given, only the
    last [capacity] entries are retained (ring buffer). *)
val create : ?capacity:int -> enabled:bool -> unit -> t

val enabled : t -> bool

(** Forget every entry and restart the digest at its initial value,
    keeping the allocated ring so a pooled trace restarts for free. *)
val reset : t -> unit

(** [record t ~time msg] appends an entry; [msg] is forced only when the
    trace is enabled. *)
val record : t -> time:float -> (unit -> string) -> unit

(** Entries in chronological order (oldest first). *)
val entries : t -> (float * string) list

(** Number of retained entries. *)
val length : t -> int

(** Entries ever recorded, including any evicted from the ring;
    [total t = length t + evicted t]. *)
val total : t -> int

(** Entries overwritten by the ring ([0] without a capacity). Lets tools
    distinguish a partial trace from a full one. *)
val evicted : t -> int

(** FNV-1a hash over all entries ever recorded (including ones evicted from
    the ring). Equal runs give equal digests. Recording must be enabled for
    the digest to be meaningful. *)
val digest : t -> int64

(** Print entries as ["[%.3f] msg"] lines. When the ring wrapped, a
    ["... N earlier entries evicted ..."] header precedes them, so a
    truncated trace is never mistaken for a complete one. *)
val pp : Format.formatter -> t -> unit
