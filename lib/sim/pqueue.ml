(* Flat parallel-array binary heap. The previous implementation stored
   [entry option array] — one record plus one option box per element, and
   an option/tuple allocation on every [peek]/[pop]. Here keys, insertion
   sequence numbers and values live in three parallel arrays with no
   per-element boxing; slots at or beyond [size] hold stale sentinel
   copies of previously stored elements (harmless: they are overwritten
   before ever being read again, and [clear] drops the arrays so nothing
   is retained after a reset). The arrays are allocated lazily on the
   first [add], which supplies the sentinel filler. *)

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  mutable keys : 'k array;
  mutable seqs : int array;
  mutable vals : 'v array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare =
  { compare; keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let ensure_room t key value =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let cap' = if cap = 0 then 16 else 2 * cap in
    (* The incoming element doubles as the sentinel filler. *)
    let keys = Array.make cap' key in
    let seqs = Array.make cap' 0 in
    let vals = Array.make cap' value in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.seqs <- seqs;
    t.vals <- vals
  end

(* Ordering: key first, insertion order as the tie-break (stability).
   Both sifts move the hole instead of swapping — one array write per
   level per array instead of three — and index with [unsafe_get]/
   [unsafe_set]: every index is bounded by [t.size], which the
   surrounding code has already checked against the capacity. *)

let add t key value =
  ensure_room t key value;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let keys = t.keys and seqs = t.seqs and vals = t.vals in
  let i = ref t.size in
  t.size <- !i + 1;
  (* The new element carries the largest seq, so on a key tie it stays
     below the incumbent: no seq comparison needed on the way up. *)
  let sifting = ref true in
  while !sifting && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = Array.unsafe_get keys p in
    if t.compare key pk < 0 then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set vals !i (Array.unsafe_get vals p);
      i := p
    end
    else sifting := false
  done;
  Array.unsafe_set keys !i key;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i value

let unsafe_min_key t = t.keys.(0)

let unsafe_min_value t = t.vals.(0)

let remove_min t =
  if t.size > 0 then begin
    let last = t.size - 1 in
    t.size <- last;
    if last > 0 then begin
      let keys = t.keys and seqs = t.seqs and vals = t.vals in
      let key = Array.unsafe_get keys last in
      let seq = Array.unsafe_get seqs last in
      let value = Array.unsafe_get vals last in
      let i = ref 0 in
      let sifting = ref true in
      while !sifting do
        let l = (2 * !i) + 1 in
        if l >= last then sifting := false
        else begin
          let c =
            let r = l + 1 in
            if r < last then begin
              let ck = t.compare (Array.unsafe_get keys l) (Array.unsafe_get keys r) in
              if ck < 0 || (ck = 0 && Array.unsafe_get seqs l < Array.unsafe_get seqs r) then l
              else r
            end
            else l
          in
          let ckey = Array.unsafe_get keys c in
          let cc = t.compare ckey key in
          if cc < 0 || (cc = 0 && Array.unsafe_get seqs c < seq) then begin
            Array.unsafe_set keys !i ckey;
            Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
            Array.unsafe_set vals !i (Array.unsafe_get vals c);
            i := c
          end
          else sifting := false
        end
      done;
      Array.unsafe_set keys !i key;
      Array.unsafe_set seqs !i seq;
      Array.unsafe_set vals !i value
    end
  end

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.vals.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and v = t.vals.(0) in
    remove_min t;
    Some (k, v)
  end

let clear t =
  (* Drop the arrays entirely so stale sentinels cannot retain values. *)
  t.keys <- [||];
  t.seqs <- [||];
  t.vals <- [||];
  t.size <- 0

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some kv -> go (kv :: acc) in
  go []
