(* Flat parallel-array binary heap. The previous implementation stored
   [entry option array] — one record plus one option box per element, and
   an option/tuple allocation on every [peek]/[pop]. Here keys, insertion
   sequence numbers and values live in three parallel arrays with no
   per-element boxing; slots at or beyond [size] hold stale sentinel
   copies of previously stored elements (harmless: they are overwritten
   before ever being read again, and [clear] drops the arrays so nothing
   is retained after a reset). The arrays are allocated lazily on the
   first [add], which supplies the sentinel filler. *)

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  mutable keys : 'k array;
  mutable seqs : int array;
  mutable vals : 'v array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare =
  { compare; keys = [||]; seqs = [||]; vals = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

(* Ordering: key first, insertion order as the tie-break (stability). *)
let lt t i j =
  let c = t.compare t.keys.(i) t.keys.(j) in
  if c <> 0 then c < 0 else t.seqs.(i) < t.seqs.(j)

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t l !smallest then smallest := l;
  if r < t.size && lt t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_room t key value =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let cap' = if cap = 0 then 16 else 2 * cap in
    (* The incoming element doubles as the sentinel filler. *)
    let keys = Array.make cap' key in
    let seqs = Array.make cap' 0 in
    let vals = Array.make cap' value in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.seqs <- seqs;
    t.vals <- vals
  end

let add t key value =
  ensure_room t key value;
  let i = t.size in
  t.keys.(i) <- key;
  t.seqs.(i) <- t.next_seq;
  t.vals.(i) <- value;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let unsafe_min_key t = t.keys.(0)

let unsafe_min_value t = t.vals.(0)

let remove_min t =
  if t.size > 0 then begin
    t.size <- t.size - 1;
    if t.size > 0 then begin
      let last = t.size in
      t.keys.(0) <- t.keys.(last);
      t.seqs.(0) <- t.seqs.(last);
      t.vals.(0) <- t.vals.(last);
      sift_down t 0
    end
  end

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.vals.(0))

let pop t =
  if t.size = 0 then None
  else begin
    let k = t.keys.(0) and v = t.vals.(0) in
    remove_min t;
    Some (k, v)
  end

let clear t =
  (* Drop the arrays entirely so stale sentinels cannot retain values. *)
  t.keys <- [||];
  t.seqs <- [||];
  t.vals <- [||];
  t.size <- 0

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some kv -> go (kv :: acc) in
  go []
