(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic choice in the simulator draws from an explicit [t] so
    that simulations are reproducible from a seed, independent of the OCaml
    runtime's global RNG. SplitMix64 passes BigCrush and supports cheap
    stream splitting, which we use to give each simulated node an
    independent stream. *)

type t

(** [create ~seed] makes a generator; equal seeds yield equal streams. *)
val create : seed:int64 -> t

(** [reseed t ~seed] rewinds [t] to the state [create ~seed] would give,
    in place — pooled simulation cells reseed their generator between
    runs instead of allocating a fresh one. *)
val reseed : t -> seed:int64 -> unit

(** Next raw 64-bit value. *)
val next_int64 : t -> int64

(** Uniform float in [0, 1). *)
val float : t -> float

(** Uniform float in [lo, hi). Requires [lo <= hi]. *)
val uniform : t -> lo:float -> hi:float -> float

(** Uniform int in [0, bound). Requires [bound > 0]. *)
val int : t -> bound:int -> int

(** Fair coin. *)
val bool : t -> bool

(** Exponentially distributed float with the given mean (> 0). *)
val exponential : t -> mean:float -> float

(** [split t] derives an independent generator and advances [t]. *)
val split : t -> t

(** [pick t l] draws a uniformly random element; raises [Invalid_argument]
    on the empty list. *)
val pick : t -> 'a list -> 'a

(** [shuffle t a] permutes the array in place (Fisher–Yates). *)
val shuffle : t -> 'a array -> unit
