(* The event queue is a monomorphic float-keyed binary heap inlined here
   rather than an instance of the polymorphic {!Pqueue}: with the key
   array statically typed [float array] the heap stays flat (unboxed
   floats) and comparisons compile to primitive float compares, so
   scheduling and dispatching an event allocates nothing beyond the
   caller's callback closure. Ties are broken by schedule order (seqs),
   which deterministic runs rely on. *)

(* Single-field float record: a mutable simulation clock that updates in
   place instead of allocating a fresh box per event (a [mutable float]
   field in the mixed-type record below would re-box on every store). *)
type clock = { mutable time : float }

type t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
  clock : clock;
  mutable processed : int;
  mutable tick : (unit -> unit) option;
}

type outcome =
  | Drained
  | Horizon_reached
  | Event_limit

let nothing () = ()

let create () =
  {
    keys = [||];
    seqs = [||];
    vals = [||];
    size = 0;
    next_seq = 0;
    clock = { time = 0.0 };
    processed = 0;
    tick = None;
  }

let set_tick t hook = t.tick <- hook

let reset t =
  (* Drop queued callbacks explicitly so the retained capacity does not
     keep closures (and whatever they capture) alive across runs. *)
  if t.size > 0 then Array.fill t.vals 0 t.size nothing;
  t.size <- 0;
  t.next_seq <- 0;
  t.clock.time <- 0.0;
  t.processed <- 0

let now t = t.clock.time

let ensure_room t =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let cap' = if cap = 0 then 64 else 2 * cap in
    let keys = Array.make cap' 0.0 in
    let seqs = Array.make cap' 0 in
    let vals = Array.make cap' nothing in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.seqs <- seqs;
    t.vals <- vals
  end

(* Ordering: time first, schedule order (seqs) as the tie-break. Both
   sifts move the hole instead of swapping — one array write per level
   per array — and use [unsafe_get]/[unsafe_set]: every index is bounded
   by [t.size], already checked against the capacity. *)

let remove_min t =
  t.size <- t.size - 1;
  let last = t.size in
  let keys = t.keys and seqs = t.seqs and vals = t.vals in
  if last = 0 then
    (* Release the popped callback so the heap does not retain it. *)
    Array.unsafe_set vals 0 nothing
  else begin
    let key = Array.unsafe_get keys last in
    let seq = Array.unsafe_get seqs last in
    let v = Array.unsafe_get vals last in
    Array.unsafe_set vals last nothing;
    let i = ref 0 in
    let sifting = ref true in
    while !sifting do
      let l = (2 * !i) + 1 in
      if l >= last then sifting := false
      else begin
        let c =
          let r = l + 1 in
          if r < last then begin
            let kl = Array.unsafe_get keys l and kr = Array.unsafe_get keys r in
            if kl < kr || (kl = kr && Array.unsafe_get seqs l < Array.unsafe_get seqs r) then l
            else r
          end
          else l
        in
        let ckey = Array.unsafe_get keys c in
        if ckey < key || (ckey = key && Array.unsafe_get seqs c < seq) then begin
          Array.unsafe_set keys !i ckey;
          Array.unsafe_set seqs !i (Array.unsafe_get seqs c);
          Array.unsafe_set vals !i (Array.unsafe_get vals c);
          i := c
        end
        else sifting := false
      end
    done;
    Array.unsafe_set keys !i key;
    Array.unsafe_set seqs !i seq;
    Array.unsafe_set vals !i v
  end

let schedule_at t ~time f =
  let time = if time < t.clock.time then t.clock.time else time in
  ensure_room t;
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let keys = t.keys and seqs = t.seqs and vals = t.vals in
  let i = ref t.size in
  t.size <- !i + 1;
  (* The new event carries the largest seq, so on a time tie it sorts
     after the incumbent: no seq comparison needed on the way up. *)
  let sifting = ref true in
  while !sifting && !i > 0 do
    let p = (!i - 1) / 2 in
    let pk = Array.unsafe_get keys p in
    if time < pk then begin
      Array.unsafe_set keys !i pk;
      Array.unsafe_set seqs !i (Array.unsafe_get seqs p);
      Array.unsafe_set vals !i (Array.unsafe_get vals p);
      i := p
    end
    else sifting := false
  done;
  Array.unsafe_set keys !i time;
  Array.unsafe_set seqs !i seq;
  Array.unsafe_set vals !i f

let schedule t ~after f =
  let after = if after < 0.0 then 0.0 else after in
  schedule_at t ~time:(t.clock.time +. after) f

let step t =
  if t.size = 0 then false
  else begin
    let time = t.keys.(0) and f = t.vals.(0) in
    remove_min t;
    t.clock.time <- time;
    t.processed <- t.processed + 1;
    f ();
    (match t.tick with None -> () | Some g -> g ());
    true
  end

let run ?until ?(max_events = 100_000_000) t =
  match until with
  | None ->
      (* Unbounded-horizon fast path: no option probing per event. *)
      let rec loop budget =
        if budget = 0 then Event_limit
        else if t.size = 0 then Drained
        else begin
          ignore (step t);
          loop (budget - 1)
        end
      in
      loop max_events
  | Some horizon ->
      let rec loop budget =
        if budget = 0 then Event_limit
        else if t.size = 0 then Drained
        else if t.keys.(0) > horizon then begin
          t.clock.time <- horizon;
          Horizon_reached
        end
        else begin
          ignore (step t);
          loop (budget - 1)
        end
      in
      loop max_events

let pending t = t.size

let events_processed t = t.processed
