(* The event queue is a monomorphic float-keyed binary heap inlined here
   rather than an instance of the polymorphic {!Pqueue}: with the key
   array statically typed [float array] the heap stays flat (unboxed
   floats) and comparisons compile to primitive float compares, so
   scheduling and dispatching an event allocates nothing beyond the
   caller's callback closure. Ties are broken by schedule order (seqs),
   which deterministic runs rely on. *)

(* Single-field float record: a mutable simulation clock that updates in
   place instead of allocating a fresh box per event (a [mutable float]
   field in the mixed-type record below would re-box on every store). *)
type clock = { mutable time : float }

type t = {
  mutable keys : float array;
  mutable seqs : int array;
  mutable vals : (unit -> unit) array;
  mutable size : int;
  mutable next_seq : int;
  clock : clock;
  mutable processed : int;
  mutable tick : (unit -> unit) option;
}

type outcome =
  | Drained
  | Horizon_reached
  | Event_limit

let nothing () = ()

let create () =
  {
    keys = [||];
    seqs = [||];
    vals = [||];
    size = 0;
    next_seq = 0;
    clock = { time = 0.0 };
    processed = 0;
    tick = None;
  }

let set_tick t hook = t.tick <- hook

let now t = t.clock.time

let lt t i j =
  let ki = t.keys.(i) and kj = t.keys.(j) in
  if ki < kj then true else if ki > kj then false else t.seqs.(i) < t.seqs.(j)

let swap t i j =
  let k = t.keys.(i) in
  t.keys.(i) <- t.keys.(j);
  t.keys.(j) <- k;
  let s = t.seqs.(i) in
  t.seqs.(i) <- t.seqs.(j);
  t.seqs.(j) <- s;
  let v = t.vals.(i) in
  t.vals.(i) <- t.vals.(j);
  t.vals.(j) <- v

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t i parent then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && lt t l !smallest then smallest := l;
  if r < t.size && lt t r !smallest then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_room t =
  let cap = Array.length t.keys in
  if t.size = cap then begin
    let cap' = if cap = 0 then 64 else 2 * cap in
    let keys = Array.make cap' 0.0 in
    let seqs = Array.make cap' 0 in
    let vals = Array.make cap' nothing in
    Array.blit t.keys 0 keys 0 t.size;
    Array.blit t.seqs 0 seqs 0 t.size;
    Array.blit t.vals 0 vals 0 t.size;
    t.keys <- keys;
    t.seqs <- seqs;
    t.vals <- vals
  end

let remove_min t =
  t.size <- t.size - 1;
  let last = t.size in
  if last > 0 then begin
    t.keys.(0) <- t.keys.(last);
    t.seqs.(0) <- t.seqs.(last);
    t.vals.(0) <- t.vals.(last);
  end;
  (* Release the popped callback so the heap does not retain it. *)
  t.vals.(last) <- nothing;
  if last > 0 then sift_down t 0

let schedule_at t ~time f =
  let time = if time < t.clock.time then t.clock.time else time in
  ensure_room t;
  let i = t.size in
  t.keys.(i) <- time;
  t.seqs.(i) <- t.next_seq;
  t.vals.(i) <- f;
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t i

let schedule t ~after f =
  let after = if after < 0.0 then 0.0 else after in
  schedule_at t ~time:(t.clock.time +. after) f

let step t =
  if t.size = 0 then false
  else begin
    let time = t.keys.(0) and f = t.vals.(0) in
    remove_min t;
    t.clock.time <- time;
    t.processed <- t.processed + 1;
    f ();
    (match t.tick with None -> () | Some g -> g ());
    true
  end

let run ?until ?(max_events = 100_000_000) t =
  match until with
  | None ->
      (* Unbounded-horizon fast path: no option probing per event. *)
      let rec loop budget =
        if budget = 0 then Event_limit
        else if t.size = 0 then Drained
        else begin
          ignore (step t);
          loop (budget - 1)
        end
      in
      loop max_events
  | Some horizon ->
      let rec loop budget =
        if budget = 0 then Event_limit
        else if t.size = 0 then Drained
        else if t.keys.(0) > horizon then begin
          t.clock.time <- horizon;
          Horizon_reached
        end
        else begin
          ignore (step t);
          loop (budget - 1)
        end
      in
      loop max_events

let pending t = t.size

let events_processed t = t.processed
