type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = seed }

let reseed t ~seed = t.state <- seed

(* SplitMix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let float t =
  (* 53 high-quality bits into the unit interval. *)
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let uniform t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.uniform: lo > hi";
  lo +. ((hi -. lo) *. float t)

let int t ~bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Drop two bits so the value fits OCaml's 63-bit int and stays
     non-negative; modulo bias is negligible for bound << 2^62. *)
  let v = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0.0 then invalid_arg "Rng.exponential: mean <= 0";
  let u = 1.0 -. float t in
  -.mean *. log u

let split t =
  let seed = next_int64 t in
  { state = seed }

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t ~bound:(List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t ~bound:(i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
