(** The randomized-schedule fuzz driver.

    One {!case} bundles everything a run depends on — script, seed, fault
    plan, seeded protocol mutation, fairness bound — and {!run} is a pure
    function of it: the same case always produces the same {!verdict} and
    the same {!Dcs_sim.Trace} digest, so failures replay and shrink
    exactly.

    A run executes the script on a simulated cluster with the runtime
    safety oracle checking every delivered message
    ({!Dcs_runtime.Hlock_cluster} with [oracle:true]: single token,
    pairwise-compatible held modes), records the full
    {!Dcs_obs.Event.t} trace, and on completion checks:

    - quiescence structural invariants ({!Dcs_runtime.Hlock_cluster.quiescent_violations});
    - trace conformance against the reference semantics
      ({!Oracle.conformance});
    - liveness: every scripted operation granted, upgraded and released
      before the (generous) horizon. *)

type case = {
  seed : int64;  (** drives network latency draws and the fault plan *)
  script : Script.t;
  plan : string option;  (** a {!Dcs_fault.Plan.names} scenario *)
  mutation : Dcs_hlock.Node.mutation option;
  max_overtakes : int;  (** fairness bound, see {!Oracle.conformance} *)
}

type verdict = {
  case : case;
  violations : string list;  (** empty = pass *)
  completed : bool;  (** every op granted + upgraded + released *)
  outcome : Dcs_sim.Engine.outcome;
  grants : int;
  upgrades : int;
  releases : int;
  messages : int;
  sim_ms : float;
  engine_events : int;
  digest : int64;  (** network trace digest — the run's identity *)
  oracle : Oracle.report;
}

(** [case ~seed ~nodes ~locks ~ops ()] generates the script from the same
    seed. [max_overtakes] defaults to 100; [zipf] skews the lock choice
    (see {!Script.generate}). *)
val case :
  ?plan:string ->
  ?mutation:Dcs_hlock.Node.mutation ->
  ?max_overtakes:int ->
  ?zipf:float ->
  seed:int64 ->
  nodes:int ->
  locks:int ->
  ops:int ->
  unit ->
  case

val run : case -> verdict
val failed : verdict -> bool
val pp_verdict : Format.formatter -> verdict -> unit

(** Corpus/CLI names: ["weak-freeze"], ["ignore-frozen"]. *)
val mutation_to_string : Dcs_hlock.Node.mutation -> string

val mutation_of_string : string -> Dcs_hlock.Node.mutation option
