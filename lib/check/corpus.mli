(** Replayable fuzz-case files ([test/corpus/*.repro]).

    Line-oriented text, diff-friendly and hand-editable:

    {v
    dcs-fuzz/1
    expect fail
    seed 42
    nodes 6
    locks 1
    plan heal-partition        (omitted when none)
    mutation weak-freeze       (omitted when none)
    max-overtakes 100
    op at=0.000 node=3 lock=0 mode=R prio=0 hold=15.000 kind=acquire
    ...
    v}

    [expect] records the intended verdict so replay is a regression
    check in both directions: a pass-file that starts failing flags a
    protocol bug; a fail-file that starts passing flags a checker that
    went blind. Blank lines and [#]-comments are ignored. *)

type expect = Pass | Fail

type entry = { case : Fuzz.case; expect : expect }

val to_string : entry -> string
val of_string : string -> (entry, string) result
val write : path:string -> entry -> unit
val read : path:string -> (entry, string) result

(** [check entry] replays the case; [Ok verdict] iff it matches
    [expect]. *)
val check : entry -> (Fuzz.verdict, string * Fuzz.verdict) result
