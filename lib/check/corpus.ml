type expect = Pass | Fail
type entry = { case : Fuzz.case; expect : expect }

let magic = "dcs-fuzz/1"

let to_string { case; expect } =
  let b = Buffer.create 512 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b s; Buffer.add_char b '\n') fmt in
  line "%s" magic;
  line "expect %s" (match expect with Pass -> "pass" | Fail -> "fail");
  line "seed %Ld" case.Fuzz.seed;
  line "nodes %d" case.Fuzz.script.Script.nodes;
  line "locks %d" case.Fuzz.script.Script.locks;
  (match case.Fuzz.plan with None -> () | Some p -> line "plan %s" p);
  (match case.Fuzz.mutation with
  | None -> ()
  | Some m -> line "mutation %s" (Fuzz.mutation_to_string m));
  line "max-overtakes %d" case.Fuzz.max_overtakes;
  List.iter (fun o -> line "%s" (Script.op_to_line o)) case.Fuzz.script.Script.ops;
  Buffer.contents b

let of_string s =
  let lines =
    String.split_on_char '\n' s
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  match lines with
  | [] -> Error "empty corpus file"
  | hd :: rest when hd = magic -> (
      let expect = ref None
      and seed = ref None
      and nodes = ref None
      and locks = ref None
      and plan = ref None
      and mutation = ref None
      and max_overtakes = ref 100
      and ops = ref []
      and err = ref None in
      let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
      List.iter
        (fun l ->
          if !err = None then
            match String.index_opt l ' ' with
            | None -> fail "malformed line %S" l
            | Some i -> (
                let key = String.sub l 0 i in
                let v = String.sub l (i + 1) (String.length l - i - 1) in
                match key with
                | "expect" -> (
                    match v with
                    | "pass" -> expect := Some Pass
                    | "fail" -> expect := Some Fail
                    | _ -> fail "bad expect %S" v)
                | "seed" -> (
                    match Int64.of_string_opt v with
                    | Some x -> seed := Some x
                    | None -> fail "bad seed %S" v)
                | "nodes" -> (
                    match int_of_string_opt v with
                    | Some x when x > 0 -> nodes := Some x
                    | _ -> fail "bad nodes %S" v)
                | "locks" -> (
                    match int_of_string_opt v with
                    | Some x when x > 0 -> locks := Some x
                    | _ -> fail "bad locks %S" v)
                | "plan" ->
                    if v = "none" then plan := None
                    else if List.mem v Dcs_fault.Plan.names then plan := Some v
                    else fail "unknown plan %S" v
                | "mutation" -> (
                    if v = "none" then mutation := None
                    else
                      match Fuzz.mutation_of_string v with
                      | Some m -> mutation := Some m
                      | None -> fail "unknown mutation %S" v)
                | "max-overtakes" -> (
                    match int_of_string_opt v with
                    | Some x when x > 0 -> max_overtakes := x
                    | _ -> fail "bad max-overtakes %S" v)
                | "op" -> (
                    match Script.op_of_line l with
                    | Ok o -> ops := o :: !ops
                    | Error e -> fail "%s" e)
                | _ -> fail "unknown key %S" key))
        rest;
      match (!err, !expect, !seed, !nodes, !locks) with
      | Some e, _, _, _, _ -> Error e
      | None, Some expect, Some seed, Some nodes, Some locks -> (
          let script = { Script.nodes; locks; ops = List.rev !ops } in
          match Script.validate script with
          | Error e -> Error ("invalid script: " ^ e)
          | Ok () ->
              Ok
                {
                  case =
                    {
                      Fuzz.seed;
                      script;
                      plan = !plan;
                      mutation = !mutation;
                      max_overtakes = !max_overtakes;
                    };
                  expect;
                })
      | None, _, _, _, _ -> Error "missing expect/seed/nodes/locks header"
      )
  | hd :: _ -> Error (Printf.sprintf "bad magic %S (want %S)" hd magic)

let write ~path entry =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string entry))

let read ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

let check entry =
  let v = Fuzz.run entry.case in
  let failed = Fuzz.failed v in
  match (entry.expect, failed) with
  | Pass, false | Fail, true -> Ok v
  | Pass, true -> Error ("expected pass but run failed", v)
  | Fail, false -> Error ("expected fail but run passed", v)
