(** Seed-deterministic client workloads for the fuzzer.

    A script is a fixed list of timed client operations over a node
    population and a lock set — the "test input" half of a fuzz case
    ({!Fuzz.case}). Scripts are plain data: generation is a pure function
    of the seed, and the corpus format ({!Corpus}) round-trips them
    exactly, so a failing schedule can be replayed and shrunk
    byte-for-byte. *)

open Dcs_modes

type kind =
  | Acquire  (** request, hold, release *)
  | Acquire_upgrade
      (** request [U], hold, upgrade to [W] (Rule 7), hold, release *)

type op = {
  at : float;  (** issue time, simulated ms *)
  node : int;
  lock : int;
  mode : Mode.t;  (** [U] when [kind = Acquire_upgrade] *)
  priority : int;
  hold : float;  (** client hold time after the grant, ms *)
  kind : kind;
}

type t = {
  nodes : int;
  locks : int;
  ops : op list;  (** ascending [at] *)
}

(** [generate ~seed ~nodes ~locks ~ops ()] draws a conflict-heavy
    workload: bursty exponential arrivals, a mode mix skewed toward the
    conflicting end of Table 1, short exponential holds, occasional
    non-zero priorities, and upgrades on roughly half the [U] requests.
    [zipf] (theta in [0,1), default 0 = uniform) skews the lock choice
    toward hot locks ({!Dcs_workload.Zipf}), concentrating conflict on a
    few objects — the hot-entry regime sharded namespaces must survive.
    Equal arguments yield equal scripts. *)
val generate : ?zipf:float -> seed:int64 -> nodes:int -> locks:int -> ops:int -> unit -> t

(** Issue time of the last op (0 for the empty script). *)
val last_issue : t -> float

(** Structural sanity: node/lock ids in range, non-negative times and
    priorities, [Acquire_upgrade] implies mode [U], ops sorted by [at]. *)
val validate : t -> (unit, string) result

(** {1 Corpus line format}

    One op per line:
    [op at=12.500 node=3 lock=0 mode=R prio=0 hold=15.000 kind=acquire] *)

val op_to_line : op -> string
val op_of_line : string -> (op, string) result
val pp : Format.formatter -> t -> unit
