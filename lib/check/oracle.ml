open Dcs_modes
module Event = Dcs_obs.Event

module Sequential = struct
  (* One queue entry: [upgrade] entries re-request W on a held U. *)
  type entry = { id : int; mode : Mode.t; priority : int; upgrade : bool; arrival : int }

  type lock_state = {
    mutable granted : (int * Mode.t) list;  (** client id -> held mode *)
    mutable queue : entry list;  (** arrival order *)
    mutable tick : int;
  }

  type t = { locks : lock_state array }

  let create ~locks =
    if locks < 1 then invalid_arg "Sequential.create";
    { locks = Array.init locks (fun _ -> { granted = []; queue = []; tick = 0 }) }

  let lock t ~lock =
    if lock < 0 || lock >= Array.length t.locks then invalid_arg "Sequential: lock id";
    t.locks.(lock)

  (* Service order: upgrades outrank everything (Rule 7), then descending
     priority, then FIFO. *)
  let service_order q =
    List.stable_sort
      (fun a b ->
        match (a.upgrade, b.upgrade) with
        | true, false -> -1
        | false, true -> 1
        | _ ->
            if a.priority <> b.priority then compare b.priority a.priority
            else compare a.arrival b.arrival)
      q

  let grantable st e =
    (* Table 1 against every current holder (an upgrade masks its own U)
       and no overtaking of anyone ahead in service order: exactly the
       freeze discipline of Table 2(b), centralized. *)
    List.for_all
      (fun (id, m) -> (e.upgrade && id = e.id) || Compat.compatible m e.mode)
      st.granted
    && List.for_all
         (fun e' -> e'.arrival = e.arrival || Compat.compatible e.mode e'.mode)
         (let rec ahead = function
            | [] -> []
            | e' :: _ when e'.arrival = e.arrival -> []
            | e' :: rest -> e' :: ahead rest
          in
          ahead (service_order st.queue))

  let grant st e =
    st.queue <- List.filter (fun e' -> e'.arrival <> e.arrival) st.queue;
    if e.upgrade then
      st.granted <-
        List.map (fun (id, m) -> if id = e.id then (id, Mode.W) else (id, m)) st.granted
    else st.granted <- (e.id, e.mode) :: st.granted

  let rec serve st acc =
    match List.find_opt (grantable st) (service_order st.queue) with
    | Some e ->
        grant st e;
        serve st (e.id :: acc)
    | None -> List.rev acc

  let enqueue st ~id ~priority ~mode ~upgrade =
    st.tick <- st.tick + 1;
    st.queue <- st.queue @ [ { id; mode; priority; upgrade; arrival = st.tick } ]

  let request t ~lock:l ~id ?(priority = 0) ~mode () =
    let st = lock t ~lock:l in
    if List.mem_assoc id st.granted || List.exists (fun e -> e.id = id) st.queue then
      invalid_arg "Sequential.request: id already active";
    enqueue st ~id ~priority ~mode ~upgrade:false;
    serve st []

  let release t ~lock:l ~id =
    let st = lock t ~lock:l in
    if not (List.mem_assoc id st.granted) then invalid_arg "Sequential.release: not granted";
    st.granted <- List.remove_assoc id st.granted;
    serve st []

  let upgrade t ~lock:l ~id =
    let st = lock t ~lock:l in
    (match List.assoc_opt id st.granted with
    | Some Mode.U -> ()
    | _ -> invalid_arg "Sequential.upgrade: id does not hold U");
    enqueue st ~id ~priority:0 ~mode:Mode.W ~upgrade:true;
    serve st []

  let granted t ~lock:l = (lock t ~lock:l).granted
  let waiting t ~lock:l = List.map (fun e -> e.id) (service_order (lock t ~lock:l).queue)

  let frozen t ~lock:l =
    let st = lock t ~lock:l in
    let owned = Compat.strongest (List.map snd st.granted) in
    List.fold_left
      (fun acc e -> Mode_set.union acc (Compat.freeze_set ~owned e.mode))
      Mode_set.empty st.queue
end

(* ------------------------------------------------------------------ *)
(* Trace conformance                                                   *)

type span_state = Waiting | Granted | Upgrade_waiting | Released

type span = {
  key : int * int * int;  (** lock, requester, seq *)
  mutable state : span_state;
  mutable mode : Mode.t;  (** waiting: requested mode; granted: held mode *)
  mutable wait_mode : Mode.t;  (** mode being waited for (W while upgrading) *)
  mutable priority : int;
  mutable req_idx : int;  (** trace index of the live request *)
  mutable overtakes : int;
  mutable flagged : bool;  (** overtake violation already reported *)
}

type report = {
  events : int;
  spans : int;
  grants : int;
  upgrades : int;
  releases : int;
  max_overtakes_seen : int;
  ungranted : int;
  unreleased : int;
  violations : string list;
}

let max_reported = 20

let conformance ?(max_overtakes = 100) ?(require_complete = true) ~events () =
  let spans : (int * int * int, span) Hashtbl.t = Hashtbl.create 256 in
  (* Active (non-released) spans per lock, for concurrency checks. *)
  let active : (int, (int * int * int, span) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let active_for lock =
    match Hashtbl.find_opt active lock with
    | Some h -> h
    | None ->
        let h = Hashtbl.create 64 in
        Hashtbl.add active lock h;
        h
  in
  let violations = ref [] and n_violations = ref 0 in
  let violate fmt =
    Format.kasprintf
      (fun s ->
        incr n_violations;
        if !n_violations <= max_reported then violations := s :: !violations)
      fmt
  in
  let n_events = ref 0
  and n_grants = ref 0
  and n_upgrades = ref 0
  and n_releases = ref 0
  and max_ot = ref 0 in
  let span_name (l, r, s) = Printf.sprintf "lock %d node %d seq %d" l r s in
  let idx = ref 0 in
  List.iter
    (fun (e : Event.t) ->
      incr n_events;
      incr idx;
      match e.scope with
      | Event.Node -> ()
      | Event.Span { requester; seq } -> begin
        let key = (e.lock, requester, seq) in
        let sp = Hashtbl.find_opt spans key in
        match e.kind with
        | Event.Requested { mode; priority } -> (
            match sp with
            | None ->
                let sp =
                  {
                    key;
                    state = Waiting;
                    mode;
                    wait_mode = mode;
                    priority;
                    req_idx = !idx;
                    overtakes = 0;
                    flagged = false;
                  }
                in
                Hashtbl.replace spans key sp;
                Hashtbl.replace (active_for e.lock) key sp
            | Some sp when sp.state = Granted && sp.mode = Mode.U && mode = Mode.W ->
                (* Rule 7: upgrade re-opens the span as a W request. *)
                sp.state <- Upgrade_waiting;
                sp.wait_mode <- Mode.W;
                sp.req_idx <- !idx;
                sp.overtakes <- 0
            | Some _ -> violate "%s: duplicate request on open span" (span_name key))
        | Event.Granted_local { mode; _ } | Event.Granted_token { mode; _ } -> (
            incr n_grants;
            match sp with
            | None -> violate "%s: grant without a request" (span_name key)
            | Some sp when sp.state <> Waiting ->
                violate "%s: grant on a span that is not waiting (double grant?)"
                  (span_name key)
            | Some sp ->
                if mode <> sp.wait_mode then
                  violate "%s: granted %s but requested %s" (span_name key)
                    (Mode.to_string mode)
                    (Mode.to_string sp.wait_mode);
                Hashtbl.iter
                  (fun okey (o : span) ->
                    if okey <> key then begin
                      (match o.state with
                      | Granted | Upgrade_waiting ->
                          (* o holds o.mode (U while upgrading). *)
                          if not (Compat.compatible mode o.mode) then
                            violate
                              "lock %d: incompatible concurrent grants: node %d seq %d \
                               %s with node %d seq %d %s"
                              e.lock requester seq (Mode.to_string mode)
                              (let _, r, _ = okey in
                               r)
                              (let _, _, s = okey in
                               s)
                              (Mode.to_string o.mode)
                      | _ -> ());
                      (* Bounded-overtake fairness: an older waiter jumped by
                         an incompatible, non-outranking grant. *)
                      match o.state with
                      | (Waiting | Upgrade_waiting)
                        when o.req_idx < sp.req_idx
                             && (not (Compat.compatible mode o.wait_mode))
                             && sp.priority <= o.priority ->
                          o.overtakes <- o.overtakes + 1;
                          if o.overtakes > !max_ot then max_ot := o.overtakes;
                          if o.overtakes > max_overtakes && not o.flagged then begin
                            o.flagged <- true;
                            violate
                              "%s: overtaken %d times by incompatible grants (bound %d) \
                               — Rule 6 freezing is not containing newcomers"
                              (span_name okey) o.overtakes max_overtakes
                          end
                      | _ -> ()
                    end)
                  (active_for e.lock);
                sp.state <- Granted;
                sp.mode <- mode)
        | Event.Upgraded -> (
            incr n_upgrades;
            match sp with
            | Some sp when sp.state = Upgrade_waiting ->
                Hashtbl.iter
                  (fun okey (o : span) ->
                    if okey <> key then
                      match o.state with
                      | Granted | Upgrade_waiting ->
                          violate
                            "%s: upgrade completed while node %d seq %d still holds %s \
                             (Rule 7 atomicity)"
                            (span_name key)
                            (let _, r, _ = okey in
                             r)
                            (let _, _, s = okey in
                             s)
                            (Mode.to_string o.mode)
                      | _ -> ())
                  (active_for e.lock);
                sp.state <- Granted;
                sp.mode <- Mode.W;
                sp.wait_mode <- Mode.W
            | Some _ -> violate "%s: upgrade completion without a pending upgrade" (span_name key)
            | None -> violate "%s: upgrade completion on unknown span" (span_name key))
        | Event.Released { mode } -> (
            incr n_releases;
            match sp with
            | Some sp when sp.state = Granted ->
                if mode <> sp.mode then
                  violate "%s: released %s but held %s" (span_name key)
                    (Mode.to_string mode) (Mode.to_string sp.mode);
                sp.state <- Released;
                Hashtbl.remove (active_for e.lock) key
            | Some _ -> violate "%s: release of a span that is not granted" (span_name key)
            | None -> violate "%s: release without a request" (span_name key))
        | Event.Forwarded _ | Event.Queued | Event.Sent _ | Event.Received _ -> ()
        | Event.Frozen _ | Event.Unfrozen _ -> ()
      end)
    events;
  let ungranted = ref 0 and unreleased = ref 0 in
  Hashtbl.iter
    (fun key (sp : span) ->
      match sp.state with
      | Waiting | Upgrade_waiting ->
          incr ungranted;
          if require_complete then
            violate "%s: never granted (waiting for %s at end of trace)" (span_name key)
              (Mode.to_string sp.wait_mode)
      | Granted ->
          incr unreleased;
          if require_complete then
            violate "%s: granted %s but never released" (span_name key)
              (Mode.to_string sp.mode)
      | Released -> ())
    spans;
  if !n_violations > max_reported then
    violations :=
      Printf.sprintf "… and %d more violations" (!n_violations - max_reported)
      :: !violations;
  {
    events = !n_events;
    spans = Hashtbl.length spans;
    grants = !n_grants;
    upgrades = !n_upgrades;
    releases = !n_releases;
    max_overtakes_seen = !max_ot;
    ungranted = !ungranted;
    unreleased = !unreleased;
    violations = List.rev !violations;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>events=%d spans=%d grants=%d upgrades=%d releases=%d max-overtakes=%d \
     ungranted=%d unreleased=%d violations=%d"
    r.events r.spans r.grants r.upgrades r.releases r.max_overtakes_seen r.ungranted
    r.unreleased
    (List.length r.violations);
  List.iter (fun v -> Format.fprintf ppf "@,  %s" v) r.violations;
  Format.fprintf ppf "@]"
