type state = { mutable runs : int; budget : int; log : string -> unit }

let fails st (c : Fuzz.case) =
  if st.runs >= st.budget then false
  else begin
    st.runs <- st.runs + 1;
    match Script.validate c.script with
    | Error _ -> false
    | Ok () -> Fuzz.failed (Fuzz.run c)
  end

let with_ops (c : Fuzz.case) ops = { c with script = { c.script with Script.ops } }

(* Zeller–Hildebrandt ddmin over the op list. *)
let ddmin st (c : Fuzz.case) =
  let current = ref c in
  let ops = ref c.script.Script.ops in
  let n = ref (min 2 (max 1 (List.length !ops))) in
  let continue = ref (List.length !ops > 1) in
  while !continue do
    let len = List.length !ops in
    let chunk = max 1 (len / !n) in
    let complements =
      List.init !n (fun i ->
          let lo = i * chunk and hi = if i = !n - 1 then len else (i + 1) * chunk in
          List.filteri (fun j _ -> j < lo || j >= hi) !ops)
    in
    match
      List.find_opt
        (fun cand -> List.length cand < len && fails st (with_ops !current cand))
        complements
    with
    | Some cand ->
        st.log
          (Printf.sprintf "ddmin: %d -> %d ops" len (List.length cand));
        ops := cand;
        current := with_ops !current cand;
        n := max 2 (!n - 1);
        continue := List.length !ops > 1
    | None ->
        if !n >= len then continue := false
        else n := min len (2 * !n);
        if st.runs >= st.budget then continue := false
  done;
  !current

(* Whole-script candidate transforms, kept when the case still fails. *)
let structural st (c : Fuzz.case) =
  let try_candidate label cand c = if fails st cand then (st.log label; cand) else c in
  let c =
    match c.plan with
    | Some _ -> try_candidate "dropped fault plan" { c with plan = None } c
    | None -> c
  in
  let c =
    if c.script.Script.locks > 1 then
      let ops = List.map (fun (o : Script.op) -> { o with Script.lock = 0 }) c.script.Script.ops in
      try_candidate "collapsed to one lock"
        { c with script = { c.script with Script.locks = 1; ops } }
        c
    else c
  in
  let c =
    (* Compact the population to the participating nodes. Keep node 0 as
       the token home; map used nodes to 1.. (or 0 if already used). *)
    let used =
      List.sort_uniq compare (List.map (fun (o : Script.op) -> o.Script.node) c.script.Script.ops)
    in
    let mapping = List.mapi (fun i n -> (n, if List.mem 0 used then i else i + 1)) used in
    let nodes' = List.fold_left (fun acc (_, v) -> max acc (v + 1)) 1 mapping in
    if nodes' < c.script.Script.nodes then
      let ops =
        List.map
          (fun (o : Script.op) -> { o with Script.node = List.assoc o.Script.node mapping })
          c.script.Script.ops
      in
      try_candidate
        (Printf.sprintf "compacted %d -> %d nodes" c.script.Script.nodes nodes')
        { c with script = { c.script with Script.nodes = nodes'; ops } }
        c
    else c
  in
  let c =
    if List.exists (fun (o : Script.op) -> o.Script.priority > 0) c.script.Script.ops then
      let ops = List.map (fun (o : Script.op) -> { o with Script.priority = 0 }) c.script.Script.ops in
      try_candidate "zeroed priorities" (with_ops c ops) c
    else c
  in
  let c =
    if List.exists (fun (o : Script.op) -> o.Script.hold > 1.0) c.script.Script.ops then
      let ops = List.map (fun (o : Script.op) -> { o with Script.hold = 1.0 }) c.script.Script.ops in
      try_candidate "shortened holds" (with_ops c ops) c
    else c
  in
  let c =
    (* Compress the schedule: issue every 10 ms in original order. *)
    let ops =
      List.mapi (fun i (o : Script.op) -> { o with Script.at = float_of_int i *. 10.0 }) c.script.Script.ops
    in
    if ops <> c.script.Script.ops then try_candidate "compressed schedule" (with_ops c ops) c
    else c
  in
  c

let shrink ?(budget = 400) ?(log = fun _ -> ()) (c : Fuzz.case) =
  let st = { runs = 0; budget; log } in
  let rec fix c =
    let before = (List.length c.Fuzz.script.Script.ops, c.Fuzz.plan, c.Fuzz.script) in
    let c = ddmin st c in
    let c = structural st c in
    let after = (List.length c.Fuzz.script.Script.ops, c.Fuzz.plan, c.Fuzz.script) in
    if before = after || st.runs >= st.budget then c else fix c
  in
  fix c
