(** Counterexample minimization by delta debugging.

    Given a failing {!Fuzz.case}, {!shrink} searches for a smaller case
    that still fails ({!Fuzz.failed} on its verdict), using Zeller-style
    [ddmin] over the op list plus structural passes: drop the fault plan,
    collapse to one lock, compact the node population to the ops'
    participants, zero priorities, shorten holds, and compress the issue
    schedule. Passes repeat to a fixpoint, bounded by [budget] total
    {!Fuzz.run} invocations.

    Minimality is 1-minimal per pass, not global — standard for delta
    debugging — but in practice the seeded mutations shrink to 2–3 ops. *)

(** [shrink ?budget ?log case] returns the smallest failing case found
    (the input itself if nothing smaller fails). [budget] (default 400)
    caps fuzz runs; [log] receives one line per successful reduction. *)
val shrink : ?budget:int -> ?log:(string -> unit) -> Fuzz.case -> Fuzz.case
