(** The sequential reference oracle and the trace-conformance checker.

    {2 Reference semantics}

    {!Sequential} is the paper's protocol with all distribution removed: a
    single manager holding one FIFO queue per lock object. Grants obey
    Table 1 compatibility; waiting requests freeze exactly the
    Table 2(b) set ({!Dcs_modes.Compat.freeze_set}); service is strictly
    FIFO by descending priority (upgrades outrank everything, Rule 7). It
    is small enough to read against the paper directly and is both a unit
    target for the mode-algebra and the ground truth differential runs
    compare against.

    {2 Conformance ({!conformance})}

    The distributed protocol is {e not} observationally equal to the
    sequential manager: Rule 2 lets a node with a cached copy re-acquire
    message-free, legitimately overtaking an older conflicting request
    queued remotely until the Rule-6 freeze propagates to it. Strict
    FIFO-order checking would therefore reject correct runs. Conformance
    instead checks what the protocol does promise, on the
    {!Dcs_obs.Event.t} trace:

    - {e compatibility}: grant intervals concurrently open on one lock
      carry pairwise Table-1-compatible modes (hard safety);
    - {e upgrade atomicity}: when [Upgraded] fires, no other span holds a
      grant on that lock (Rule 7: [U]→[W] without releasing; hard);
    - {e well-formedness}: grants match a requested span and mode, no
      double grant, releases match the held mode (W after an upgrade),
      upgrades only on granted [U] spans with a pending upgrade request
      (hard);
    - {e bounded overtaking}: each waiting request counts the
      incompatible, non-outranking grants that jump it; the count must
      stay below [max_overtakes] (soft fairness — the window for legal
      overtaking is the freeze-propagation delay, so an unbounded count
      means Rule 6 is broken);
    - {e liveness} (when [require_complete]): every requested span is
      granted and released by end of trace. *)

open Dcs_modes

module Sequential : sig
  type t

  val create : locks:int -> t

  (** Client ids are arbitrary; each [id] may have at most one outstanding
      request or grant per lock. Each call returns the ids granted by it
      (the argument id and/or queued ids unblocked by a release), in grant
      order. *)

  val request : t -> lock:int -> id:int -> ?priority:int -> mode:Mode.t -> unit -> int list

  val release : t -> lock:int -> id:int -> int list

  (** [upgrade] re-requests [W] on a held [U] (Rule 7): outranks the
      queue, served when every other grant is released. *)
  val upgrade : t -> lock:int -> id:int -> int list

  val granted : t -> lock:int -> (int * Mode.t) list
  val waiting : t -> lock:int -> int list

  (** Union of Table 2(b) freeze sets of the waiting requests. *)
  val frozen : t -> lock:int -> Mode_set.t
end

type report = {
  events : int;
  spans : int;  (** distinct (lock, requester, seq) client spans *)
  grants : int;
  upgrades : int;
  releases : int;
  max_overtakes_seen : int;
  ungranted : int;  (** spans never granted (incl. pending upgrades) *)
  unreleased : int;  (** spans granted but never released *)
  violations : string list;
}

(** [conformance ~events ()] replays a chronological event trace against
    the rules above. [max_overtakes] defaults to 100;
    [require_complete] (default true) turns ungranted/unreleased spans
    into liveness violations. *)
val conformance :
  ?max_overtakes:int ->
  ?require_complete:bool ->
  events:Dcs_obs.Event.t list ->
  unit ->
  report

val pp_report : Format.formatter -> report -> unit
