module Engine = Dcs_sim.Engine
module Rng = Dcs_sim.Rng
module Net = Dcs_runtime.Net
module Cluster = Dcs_runtime.Hlock_cluster

type case = {
  seed : int64;
  script : Script.t;
  plan : string option;
  mutation : Dcs_hlock.Node.mutation option;
  max_overtakes : int;
}

type verdict = {
  case : case;
  violations : string list;
  completed : bool;
  outcome : Engine.outcome;
  grants : int;
  upgrades : int;
  releases : int;
  messages : int;
  sim_ms : float;
  engine_events : int;
  digest : int64;
  oracle : Oracle.report;
}

let mutation_to_string = function
  | Dcs_hlock.Node.Weak_freeze -> "weak-freeze"
  | Dcs_hlock.Node.Ignore_frozen -> "ignore-frozen"

let mutation_of_string = function
  | "weak-freeze" -> Some Dcs_hlock.Node.Weak_freeze
  | "ignore-frozen" -> Some Dcs_hlock.Node.Ignore_frozen
  | _ -> None

let case ?plan ?mutation ?(max_overtakes = 100) ?zipf ~seed ~nodes ~locks ~ops () =
  (match plan with
  | Some p when not (List.mem p Dcs_fault.Plan.names) ->
      invalid_arg ("Fuzz.case: unknown plan " ^ p)
  | _ -> ());
  { seed; script = Script.generate ?zipf ~seed ~nodes ~locks ~ops (); plan; mutation; max_overtakes }

let mean_latency_ms = 150.0

(* Deadline for declaring starvation. Worst case is fully serialized W
   traffic: each op may need a multi-hop token transfer (a few latencies)
   plus its hold time. Generous on purpose — a passing run drains long
   before it; only a genuinely stuck run reaches the horizon. *)
let deadline (c : case) ~plan_horizon =
  Script.last_issue c.script
  +. plan_horizon
  +. (float_of_int (List.length c.script.ops) *. (25.0 +. (8.0 *. mean_latency_ms)))
  +. 10_000.0

let run (c : case) =
  (match Script.validate c.script with
  | Ok () -> ()
  | Error e -> invalid_arg ("Fuzz.run: invalid script: " ^ e));
  let script = c.script in
  let n_ops = List.length script.ops in
  let engine = Engine.create () in
  let trace = Dcs_sim.Trace.create ~enabled:true () in
  let net_rng = Rng.create ~seed:(Int64.add c.seed 0x9E37L) in
  let net =
    Net.create ~engine ~latency:(Dcs_sim.Dist.uniform_around mean_latency_ms) ~rng:net_rng
      ~trace ()
  in
  (* Fault plan windows are placed inside the issue phase of the script. *)
  let plan =
    match c.plan with
    | None -> []
    | Some name -> (
        let horizon = Float.max 2_000.0 (Script.last_issue script) in
        match Dcs_fault.Plan.named ~nodes:script.nodes ~horizon name with
        | Some p -> p
        | None -> invalid_arg ("Fuzz.run: unknown plan " ^ name))
  in
  let plan_rng = Rng.create ~seed:(Int64.add c.seed 0x0FADL) in
  Dcs_fault.Plan.install plan ~engine ~rng:plan_rng ~set_fault:(Net.set_fault net)
    ~flush:(fun () -> Net.flush_held net);
  let shim =
    if Dcs_fault.Plan.needs_shim plan then
      Some (Dcs_fault.Reliable.create ~engine ~rto:(4.0 *. mean_latency_ms) ~below:(Net.send net) ())
    else None
  in
  let transport = Option.map Dcs_fault.Reliable.send shim in
  let recorder = Dcs_obs.Recorder.create ~events:true ~enabled:true () in
  let config = { Dcs_hlock.Node.default_config with mutation = c.mutation } in
  let cluster =
    Cluster.create ~config ~oracle:true ?transport ~obs:recorder ~net ~nodes:script.nodes
      ~locks:script.locks ()
  in
  let grants = ref 0 and upgrades = ref 0 and releases = ref 0 in
  let violations = ref [] in
  let aborted = ref false in
  (* The per-message safety oracle raises Failure from inside the event
     loop; catch it at the driver boundary and keep the partial trace. *)
  let expected_upgrades =
    List.length (List.filter (fun (o : Script.op) -> o.kind = Script.Acquire_upgrade) script.ops)
  in
  let done_ops () = !releases = n_ops in
  (* Much shorter than the benchmark harness's 400x: fuzz horizons are
     tight, so the custody watchdog must get several chances to unwind a
     crossing before the run is declared stuck. Kicks are cheap no-ops
     outside the vulnerable state. *)
  let kick_period = 20.0 *. mean_latency_ms in
  let rec kick_loop () =
    if not (done_ops ()) then begin
      Cluster.kick_all cluster;
      Engine.schedule engine ~after:kick_period kick_loop
    end
  in
  if n_ops > 0 then Engine.schedule engine ~after:kick_period kick_loop;
  List.iter
    (fun (o : Script.op) ->
      Engine.schedule_at engine ~time:o.at (fun () ->
          let seq = ref (-1) in
          seq :=
            Cluster.request ~priority:o.priority cluster ~node:o.node ~lock:o.lock
              ~mode:o.mode ~on_granted:(fun () ->
                incr grants;
                match o.kind with
                | Script.Acquire ->
                    Engine.schedule engine ~after:o.hold (fun () ->
                        Cluster.release cluster ~node:o.node ~lock:o.lock ~seq:!seq;
                        incr releases)
                | Script.Acquire_upgrade ->
                    Engine.schedule engine ~after:(o.hold /. 2.0) (fun () ->
                        Cluster.upgrade cluster ~node:o.node ~lock:o.lock ~seq:!seq
                          ~on_upgraded:(fun () ->
                            incr upgrades;
                            Engine.schedule engine ~after:(o.hold /. 2.0) (fun () ->
                                Cluster.release cluster ~node:o.node ~lock:o.lock
                                  ~seq:!seq;
                                incr releases))))))
    script.ops;
  let until = deadline c ~plan_horizon:(Dcs_fault.Plan.horizon plan) in
  let outcome =
    match Engine.run ~until ~max_events:20_000_000 engine with
    | o -> o
    | exception Failure msg ->
        aborted := true;
        violations := Printf.sprintf "safety: %s" msg :: !violations;
        Engine.Drained
  in
  (match outcome with
  | Engine.Event_limit -> violations := "engine event limit hit (livelock?)" :: !violations
  | Engine.Drained | Engine.Horizon_reached -> ());
  let completed =
    (not !aborted)
    && !grants = n_ops
    && !upgrades = expected_upgrades
    && !releases = n_ops
  in
  if (not completed) && not !aborted then
    violations :=
      Printf.sprintf
        "liveness: %d/%d grants, %d/%d upgrades, %d/%d releases completed by horizon %.0f ms"
        !grants n_ops !upgrades expected_upgrades !releases n_ops until
      :: !violations;
  if completed then
    List.iter
      (fun v -> violations := ("quiescence: " ^ v) :: !violations)
      (Cluster.quiescent_violations cluster
      @ (match shim with Some s -> Dcs_fault.Reliable.quiescent_violations s | None -> []));
  let oracle =
    Oracle.conformance ~max_overtakes:c.max_overtakes ~require_complete:(not !aborted)
      ~events:(Dcs_obs.Recorder.events recorder) ()
  in
  List.iter (fun v -> violations := ("oracle: " ^ v) :: !violations) oracle.Oracle.violations;
  {
    case = c;
    violations = List.rev !violations;
    completed;
    outcome;
    grants = !grants;
    upgrades = !upgrades;
    releases = !releases;
    messages = Dcs_proto.Counters.total (Net.counters net);
    sim_ms = Engine.now engine;
    engine_events = Engine.events_processed engine;
    digest = Dcs_sim.Trace.digest trace;
    oracle;
  }

let failed v = v.violations <> []

let pp_verdict ppf v =
  Format.fprintf ppf
    "@[<v>%s seed=%Ld nodes=%d locks=%d ops=%d plan=%s mutation=%s@,\
     grants=%d upgrades=%d releases=%d messages=%d sim=%.0fms digest=%016Lx"
    (if failed v then "FAIL" else "pass")
    v.case.seed v.case.script.Script.nodes v.case.script.Script.locks
    (List.length v.case.script.Script.ops)
    (Option.value v.case.plan ~default:"none")
    (match v.case.mutation with None -> "none" | Some m -> mutation_to_string m)
    v.grants v.upgrades v.releases v.messages v.sim_ms v.digest;
  List.iter (fun s -> Format.fprintf ppf "@,  %s" s) v.violations;
  Format.fprintf ppf "@]"
