open Dcs_modes
module Rng = Dcs_sim.Rng

type kind = Acquire | Acquire_upgrade

type op = {
  at : float;
  node : int;
  lock : int;
  mode : Mode.t;
  priority : int;
  hold : float;
  kind : kind;
}

type t = { nodes : int; locks : int; ops : op list }

(* Mode mix skewed toward conflict: writers and updaters are rare in real
   hierarchies but are where Rules 6/7 live, so oversample them. *)
let draw_mode rng =
  let r = Rng.int rng ~bound:100 in
  if r < 20 then Mode.IR
  else if r < 50 then Mode.R
  else if r < 65 then Mode.U
  else if r < 80 then Mode.IW
  else Mode.W

let generate ?(zipf = 0.0) ~seed ~nodes ~locks ~ops () =
  if nodes < 1 || locks < 1 || ops < 0 then invalid_arg "Script.generate";
  if zipf < 0.0 || zipf >= 1.0 then invalid_arg "Script.generate: zipf must be in [0, 1)";
  let rng = Rng.create ~seed in
  let draw_lock =
    if zipf <= 0.0 then fun () -> Rng.int rng ~bound:locks
    else
      let z = Dcs_workload.Zipf.create ~n:locks ~theta:zipf in
      fun () -> Dcs_workload.Zipf.sample z rng
  in
  let t = ref 0.0 in
  let make _ =
    (* Bursty arrivals: a short mean inter-arrival keeps several requests
       in flight against the ~150 ms simulated latency. *)
    t := !t +. Rng.exponential rng ~mean:30.0;
    let mode = draw_mode rng in
    let kind =
      if mode = Mode.U && Rng.bool rng then Acquire_upgrade else Acquire
    in
    let priority = if Rng.int rng ~bound:10 = 0 then 1 + Rng.int rng ~bound:3 else 0 in
    let hold = Float.min 200.0 (Rng.exponential rng ~mean:15.0) in
    {
      at = !t;
      node = Rng.int rng ~bound:nodes;
      lock = draw_lock ();
      mode;
      priority;
      hold;
      kind;
    }
  in
  { nodes; locks; ops = List.init ops make }

let last_issue t =
  List.fold_left (fun acc (o : op) -> Float.max acc o.at) 0.0 t.ops

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if t.nodes < 1 then err "nodes < 1"
  else if t.locks < 1 then err "locks < 1"
  else
    let rec go prev = function
      | [] -> Ok ()
      | o :: rest ->
          if o.node < 0 || o.node >= t.nodes then err "op node %d out of range" o.node
          else if o.lock < 0 || o.lock >= t.locks then err "op lock %d out of range" o.lock
          else if o.at < prev then err "ops not sorted by time at %g" o.at
          else if o.priority < 0 then err "negative priority"
          else if o.hold < 0.0 then err "negative hold"
          else if o.kind = Acquire_upgrade && o.mode <> Mode.U then
            err "upgrade op with mode %s" (Mode.to_string o.mode)
          else go o.at rest
    in
    go 0.0 t.ops

let kind_name = function Acquire -> "acquire" | Acquire_upgrade -> "upgrade"

let kind_of_name = function
  | "acquire" -> Some Acquire
  | "upgrade" -> Some Acquire_upgrade
  | _ -> None

let op_to_line o =
  Printf.sprintf "op at=%.3f node=%d lock=%d mode=%s prio=%d hold=%.3f kind=%s"
    o.at o.node o.lock (Mode.to_string o.mode) o.priority o.hold
    (kind_name o.kind)

let op_of_line line =
  let fields = String.split_on_char ' ' (String.trim line) in
  match fields with
  | "op" :: kvs -> (
      let tbl = Hashtbl.create 8 in
      let bad = ref None in
      List.iter
        (fun kv ->
          match String.index_opt kv '=' with
          | Some i ->
              Hashtbl.replace tbl
                (String.sub kv 0 i)
                (String.sub kv (i + 1) (String.length kv - i - 1))
          | None -> if !bad = None then bad := Some kv)
        kvs;
      match !bad with
      | Some kv -> Error (Printf.sprintf "malformed op field %S" kv)
      | None -> (
          let get k = Hashtbl.find_opt tbl k in
          let int k = Option.bind (get k) int_of_string_opt in
          let flt k = Option.bind (get k) float_of_string_opt in
          match
            ( flt "at",
              int "node",
              int "lock",
              Option.bind (get "mode") Mode.of_string,
              int "prio",
              flt "hold",
              Option.bind (get "kind") kind_of_name )
          with
          | Some at, Some node, Some lock, Some mode, Some priority, Some hold, Some kind
            ->
              Ok { at; node; lock; mode; priority; hold; kind }
          | _ -> Error (Printf.sprintf "malformed op line %S" line)))
  | _ -> Error (Printf.sprintf "not an op line: %S" line)

let pp ppf t =
  Format.fprintf ppf "@[<v>script nodes=%d locks=%d ops=%d" t.nodes t.locks
    (List.length t.ops);
  List.iter (fun o -> Format.fprintf ppf "@,%s" (op_to_line o)) t.ops;
  Format.fprintf ppf "@]"
