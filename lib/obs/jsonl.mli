(** Schema-versioned JSONL export of a {!Recorder}'s telemetry, and the
    matching parser used by the [dcs-trace] analyzer.

    Every line is a flat JSON object whose first field [k] names the line
    kind; within a kind the field order is fixed, so output is byte-for-byte
    deterministic for a deterministic run:

    - [meta] — first line of every file: [{"k":"meta","schema":"dcs-obs/1",
      ...caller pairs...}]. Callers record run parameters (driver, nodes,
      locks, seed, ops) here.
    - [ev] — one span/node event:
      [{"k":"ev","t":…,"lock":…,"node":…,"req":…,"seq":…,"ev":"requested",
      "mode":"R","arg":0,"set":""}]. [mode] is [""] for kinds without a
      mode; [arg] carries the kind's integer payload (priority, forward
      destination, hop count; 0 otherwise); [set] is a [+]-joined mode list
      ("IR+R") for frozen/unfrozen, [""] otherwise.
    - [gauge] — one sampled gauge: [{"k":"gauge","t":…,"name":…,"value":…}].
    - [msgs] — per-class traffic as counted by the recorder, one line per
      class in {!Msg_class.all} order (zero classes included):
      [{"k":"msgs","cls":"request","count":…,"bytes":…}].
    - [counters] — one line embedding the transport's authoritative
      {!Dcs_proto.Counters} totals, for the analyzer's exact cross-check:
      [{"k":"counters","request":…,…}] in {!Msg_class.all} order.

    The parser accepts any flat JSON object (whitespace-insensitive,
    fields in any order) — only the writer's ordering is canonical. *)

open Dcs_proto

(** Current schema tag: ["dcs-obs/1"]. *)
val schema : string

(** [write oc ~meta ?counters r] writes the whole file: meta line (with
    [schema] injected first), retained events in chronological order, gauge
    samples, per-class [msgs] lines, then the [counters] line if given. *)
val write :
  out_channel ->
  meta:(string * string) list ->
  ?counters:(Msg_class.t * int) list ->
  Recorder.t ->
  unit

type line =
  | Meta of (string * string) list  (** caller pairs, [schema] included *)
  | Ev of Event.t
  | Gauge of { time : float; name : string; value : float }
  | Msgs of { cls : Msg_class.t; count : int; bytes : int }
  | Counters of (Msg_class.t * int) list

(** Parse one line. Errors describe the first offending token. *)
val parse_line : string -> (line, string) result

(** Parse a whole file; enforces that the first line is a [meta] line
    carrying the current {!schema}. Errors are prefixed [line N: ]. *)
val read_file : string -> (line list, string) result
