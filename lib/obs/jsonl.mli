(** Schema-versioned JSONL export of telemetry, and the matching parser
    used by the [dcs-trace] analyzer.

    Every line is a flat JSON object whose first field [k] names the line
    kind; within a kind the field order is fixed, so output is byte-for-byte
    deterministic for a deterministic run:

    - [meta] — first line of every file: [{"k":"meta","schema":"dcs-obs/2",
      ...caller pairs...}]. Callers record run parameters (driver, node,
      nodes, locks, seed, ops) here.
    - [ev] — one event:
      [{"k":"ev","t":…,"lock":…,"node":…,"scope":"span","req":…,"seq":…,
      "ev":"requested","mode":"R","arg":0,"set":""}]. The [scope] field is
      the explicit span/node discriminator introduced by [dcs-obs/2]:
      ["span"] lines carry [req]/[seq], ["node"] lines (frozen/unfrozen)
      omit them. [mode] is [""] for kinds without a mode; [arg] carries the
      kind's integer payload (priority, forward destination, hop count,
      sent/received peer; 0 otherwise); [set] is a [+]-joined mode list
      ("IR+R") for frozen/unfrozen, [""] otherwise; sent/received lines
      append a ["cls"] message-class field.
    - [gauge] — one sampled gauge: [{"k":"gauge","t":…,"name":…,"value":…}].
    - [metric] — one registry snapshot row ({!Metrics.snapshot}):
      [{"k":"metric","t":…,"name":…,"mkind":"counter","value":…}].
    - [msgs] — per-class traffic as counted at the source, one line per
      class in {!Msg_class.all} order (zero classes included):
      [{"k":"msgs","cls":"request","count":…,"bytes":…}].
    - [counters] — one line embedding the transport's authoritative
      {!Dcs_proto.Counters} totals, for the analyzer's exact cross-check:
      [{"k":"counters","request":…,…}] in {!Msg_class.all} order.

    The parser accepts any flat JSON object (whitespace-insensitive, fields
    in any order) and reads both [dcs-obs/2] and legacy [dcs-obs/1] files:
    v1 [ev] lines have no [scope] field, so the old [req = seq = -1]
    node-event sentinel is decoded here — and only here — into
    {!Event.scope}. *)

open Dcs_proto

(** Current schema tag: ["dcs-obs/2"]. *)
val schema : string

(** Legacy schema tag still accepted by the parser: ["dcs-obs/1"]. *)
val schema_v1 : string

(** [write oc ~meta ?counters r] writes a whole {!Recorder} file: meta line
    (with [schema] injected first), retained events in chronological order,
    gauge samples, per-class [msgs] lines, then the [counters] line if
    given. *)
val write :
  out_channel ->
  meta:(string * string) list ->
  ?counters:(Msg_class.t * int) list ->
  Recorder.t ->
  unit

(** {1 Incremental emitters}

    The streaming building blocks [write] composes; {!Shard} uses them to
    emit lines live as a process runs. *)

val output_meta : out_channel -> (string * string) list -> unit
val output_event : out_channel -> Event.t -> unit
val output_gauge : out_channel -> time:float -> name:string -> value:float -> unit

val output_metric :
  out_channel -> time:float -> name:string -> mkind:[ `Counter | `Gauge ] -> value:float -> unit

val output_msgs :
  out_channel -> counts:(Msg_class.t * int) list -> bytes:(Msg_class.t * int) list -> unit

val output_counters : out_channel -> (Msg_class.t * int) list -> unit

type line =
  | Meta of (string * string) list  (** caller pairs, [schema] included *)
  | Ev of Event.t
  | Gauge of { time : float; name : string; value : float }
  | Metric of { time : float; name : string; mkind : [ `Counter | `Gauge ]; value : float }
  | Msgs of { cls : Msg_class.t; count : int; bytes : int }
  | Counters of (Msg_class.t * int) list

(** Parse one line. Errors describe the first offending token. *)
val parse_line : string -> (line, string) result

(** Parse a whole file; enforces that the first line is a [meta] line
    carrying a known schema ([dcs-obs/2] or [dcs-obs/1]). Errors are
    prefixed [line N: ]. *)
val read_file : string -> (line list, string) result
