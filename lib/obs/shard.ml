open Dcs_proto

let classes = List.length Msg_class.all

type t = {
  oc : out_channel;
  clock : Clock.t;
  mu : Mutex.t;
  counts : int array;
  bytes : int array;
  mutable closed : bool;
}

let create ~path ?clock ~meta () =
  let clock = match clock with Some c -> c | None -> Clock.wall () in
  let oc = open_out path in
  let t =
    {
      oc;
      clock;
      mu = Mutex.create ();
      counts = Array.make classes 0;
      bytes = Array.make classes 0;
      closed = false;
    }
  in
  Jsonl.output_meta oc meta;
  flush oc;
  t

let now t = t.clock ()

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () -> if not t.closed then f ()

let event t ~lock ~node scope kind =
  locked t @@ fun () ->
  Jsonl.output_event t.oc { Event.time = t.clock (); lock; node; scope; kind };
  flush t.oc

let message t ~cls ~bytes =
  (* Accumulated only; written as msgs lines by [write_msgs] (at stop).
     The per-message hot path touches two array cells under the mutex —
     no I/O, no allocation. *)
  locked t @@ fun () ->
  let i = Msg_class.index cls in
  t.counts.(i) <- t.counts.(i) + 1;
  t.bytes.(i) <- t.bytes.(i) + bytes

let snapshot t metrics =
  let rows = Metrics.snapshot metrics in
  locked t @@ fun () ->
  let time = t.clock () in
  List.iter (fun (name, mkind, value) -> Jsonl.output_metric t.oc ~time ~name ~mkind ~value) rows;
  flush t.oc

let write_msgs t =
  locked t @@ fun () ->
  let pick arr = List.map (fun c -> (c, arr.(Msg_class.index c))) Msg_class.all in
  Jsonl.output_msgs t.oc ~counts:(pick t.counts) ~bytes:(pick t.bytes);
  flush t.oc

let write_counters t cs =
  locked t @@ fun () ->
  Jsonl.output_counters t.oc cs;
  flush t.oc

let close t =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) @@ fun () ->
  if not t.closed then (
    t.closed <- true;
    close_out_noerr t.oc)
