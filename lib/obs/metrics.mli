(** Named live metrics: counters, gauges, log-scaled histograms.

    A registry is a process-wide bag of named instruments that hot paths
    update without allocating: look the handle up once ({!counter},
    {!gauge}, {!histogram} find-or-create by name under the registry
    lock), then {!incr}/{!set}/{!observe} it from any thread.
    {!snapshot} flattens everything to (name, kind, value) rows for
    periodic JSONL export ({!Shard.snapshot}) and the [dcs-trace top]
    live view. *)

type t
(** A metrics registry. Thread-safe. *)

type counter
(** A monotonically increasing integer. [incr]/[add] are a single
    [Atomic.fetch_and_add] — no lock, no allocation. *)

type gauge
(** A last-value-wins float (queue depth, current backoff). Unsynchronised
    single-word stores; racing writers can interleave but not tear. *)

type histogram
(** A log-scaled value distribution ({!Dcs_stats.Histogram}) behind its
    own mutex. *)

val create : unit -> t

val counter : t -> string -> counter
(** Find or create the counter with this name. *)

val gauge : t -> string -> gauge
val histogram : ?base:float -> ?min_value:float -> t -> string -> histogram

val incr : counter -> unit
val add : counter -> int -> unit
val value : counter -> int
val counter_name : counter -> string

val set : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_name : gauge -> string

val observe : histogram -> float -> unit
val quantile : histogram -> float -> float

val snapshot : t -> (string * [ `Counter | `Gauge ] * float) list
(** All instruments as (name, kind, value) rows, sorted by name. Each
    histogram expands to four rows: [<name>.count] (a counter) and
    [<name>.p50]/[.p95]/[.p99] (gauges). *)

(** {2 Shard labels}

    Sharded services ({!Dcs_shard}) run one registry per shard and label
    instrument names with the owning shard, so merged telemetry keeps the
    series apart and [dcs-trace] can tabulate shard balance. *)

val labelled : string -> shard:int -> string
(** [labelled "grants" ~shard:3] is ["grants{shard=3}"]. Raises
    [Invalid_argument] on a negative shard id. *)

val shard_label : string -> (string * int) option
(** Parse a labelled name back: [shard_label "grants{shard=3}"] is
    [Some ("grants", 3)]; [None] for unlabelled names or malformed
    labels. *)
