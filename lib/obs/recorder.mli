(** Structured telemetry recorder: the single sink every instrumented layer
    writes into.

    Zero-cost when disabled: instrumented code guards each emission with
    {!enabled} (or is handed no recorder at all), so a disabled run pays at
    most one branch per would-be event and allocates nothing.

    When enabled, the recorder ingests three streams —

    - {e span events} ({!record}): request-lifecycle events from the
      protocol engines, which it both retains (for JSONL export, unless
      [events:false]) and folds online into per-mode latency histograms
      ({!Dcs_stats.Histogram}), grant-path counters (local vs token vs
      message-free, Rule 3.1), per-span hop distributions and freeze-episode
      durations;
    - {e message accounting} ({!message}): per-class counts and encoded
      byte sizes ({!Dcs_wire} sizes, supplied by the transport wrapper);
    - {e gauges} ({!gauge}): values sampled on the engine tick hook (queue
      depth, copyset size, frozen nodes, in-flight messages), summarized
      per name and retained as samples for export.

    A recorder observes exactly one run (one engine): times are that run's
    simulation clock. Recording does not perturb the simulation — no RNG
    draws, no events scheduled — so trace digests are unchanged. *)

open Dcs_modes
open Dcs_proto

type t

(** [create ~enabled ()] — [events:false] (default [true]) keeps only the
    aggregate metrics and drops the per-event log, for long soaks where the
    full event stream would dwarf memory. *)
val create : ?events:bool -> enabled:bool -> unit -> t

val enabled : t -> bool

(** {1 Ingestion} *)

(** Record one lifecycle event under the given {!Event.scope}
    ([Span {requester; seq}] for request events, [Node] for
    {!Event.Frozen}/{!Event.Unfrozen}). No-op when disabled. *)
val record : t -> time:float -> lock:int -> node:Node_id.t -> Event.scope -> Event.kind -> unit

(** Count one protocol message of class [cls] with encoded size [bytes].
    No-op when disabled. *)
val message : t -> cls:Msg_class.t -> bytes:int -> unit

(** Record one gauge sample. No-op when disabled. *)
val gauge : t -> time:float -> name:string -> value:float -> unit

(** {1 Views} *)

(** Retained events, chronological. Empty when created with
    [events:false]. *)
val events : t -> Event.t list

(** Events ingested (even when not retained). *)
val event_count : t -> int

(** [Requested] events seen (= spans opened; an upgrade re-opens its
    instance's span). *)
val requested : t -> int

(** Grants plus completed upgrades (= spans closed). *)
val completed : t -> int

(** Spans currently open (requested, not yet granted). *)
val open_spans : t -> int

(** Per-class message counts, {!Msg_class.all} order. *)
val msg_counts : t -> (Msg_class.t * int) list

(** Per-class encoded byte totals, {!Msg_class.all} order. *)
val msg_bytes : t -> (Msg_class.t * int) list

(** Grant-path decomposition (the paper's token-path economics). *)
type grants = {
  local : int;  (** granted without a token transfer (Rules 2, 3, 3.1) *)
  token : int;  (** granted by token transfer (Rule 3.2) *)
  message_free : int;  (** subset of [local] with zero hops (Rule 2) *)
  upgrades : int;  (** completed Rule-7 upgrades *)
}

val grants : t -> grants

(** Exact hop-count distribution [(hops, grants)] ascending, for grants of
    the given path kind. *)
val hop_distribution : t -> [ `Local | `Token ] -> (int * int) list

(** Acquisition-latency summary per mode, only modes with grants, in
    {!Mode.all} order. Quantiles come from the log-bucketed histogram
    (upper bucket bounds); means are exact. *)
type mode_stat = {
  mode : Mode.t;
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

val mode_stats : t -> mode_stat list

(** The underlying latency histogram for one mode, if any grant of that
    mode was recorded. *)
val latency_histogram : t -> Mode.t -> Dcs_stats.Histogram.t option

(** Durations (ms) of closed freeze episodes — the span from a node's
    frozen set becoming non-empty to it draining empty (Rule 6 waits). *)
val freeze_durations : t -> Dcs_stats.Summary.t

(** Freeze episodes still open (non-empty frozen sets at observation end). *)
val open_freezes : t -> int

(** Per-name gauge summaries, name-sorted. *)
val gauge_stats : t -> (string * Dcs_stats.Summary.t) list

(** All gauge samples in recording order as [(time, name, value)]. Empty
    when created with [events:false]. *)
val gauge_samples : t -> (float * string * float) list
