open Dcs_modes
open Dcs_proto

type kind =
  | Requested of { mode : Mode.t; priority : int }
  | Forwarded of { dst : Node_id.t }
  | Queued
  | Granted_local of { mode : Mode.t; hops : int }
  | Granted_token of { mode : Mode.t; hops : int }
  | Upgraded
  | Released of { mode : Mode.t }
  | Sent of { cls : Msg_class.t; dst : Node_id.t }
  | Received of { cls : Msg_class.t; src : Node_id.t }
  | Frozen of Mode_set.t
  | Unfrozen of Mode_set.t

type scope = Span of { requester : Node_id.t; seq : int } | Node

type t = { time : float; lock : int; node : Node_id.t; scope : scope; kind : kind }

let kind_name = function
  | Requested _ -> "requested"
  | Forwarded _ -> "forwarded"
  | Queued -> "queued"
  | Granted_local _ -> "granted-local"
  | Granted_token _ -> "granted-token"
  | Upgraded -> "upgraded"
  | Released _ -> "released"
  | Sent _ -> "sent"
  | Received _ -> "received"
  | Frozen _ -> "frozen"
  | Unfrozen _ -> "unfrozen"

let is_node_event t = t.scope = Node

let is_grant = function Granted_local _ | Granted_token _ -> true | _ -> false

let pp_kind ppf = function
  | Requested { mode; priority } ->
      Format.fprintf ppf "requested %a%s" Mode.pp mode
        (if priority = 0 then "" else Printf.sprintf " p%d" priority)
  | Forwarded { dst } -> Format.fprintf ppf "forwarded ->n%d" dst
  | Queued -> Format.pp_print_string ppf "queued"
  | Granted_local { mode; hops } -> Format.fprintf ppf "granted-local %a hops=%d" Mode.pp mode hops
  | Granted_token { mode; hops } -> Format.fprintf ppf "granted-token %a hops=%d" Mode.pp mode hops
  | Upgraded -> Format.pp_print_string ppf "upgraded"
  | Released { mode } -> Format.fprintf ppf "released %a" Mode.pp mode
  | Sent { cls; dst } -> Format.fprintf ppf "sent %s ->n%d" (Msg_class.to_string cls) dst
  | Received { cls; src } -> Format.fprintf ppf "received %s <-n%d" (Msg_class.to_string cls) src
  | Frozen s -> Format.fprintf ppf "frozen %a" Mode_set.pp s
  | Unfrozen s -> Format.fprintf ppf "unfrozen %a" Mode_set.pp s

let pp ppf t =
  match t.scope with
  | Node -> Format.fprintf ppf "[%10.3f] lock%d n%d %a" t.time t.lock t.node pp_kind t.kind
  | Span { requester; seq } ->
      Format.fprintf ppf "[%10.3f] lock%d n%d {n%d#%d} %a" t.time t.lock t.node requester seq
        pp_kind t.kind
