(** Request-lifecycle event vocabulary.

    A {e span} is one lock request's life across the cluster, identified by
    [(lock, requester, seq)] — exactly the id every protocol message already
    carries ({!Dcs_hlock.Msg.request} fields [requester]/[seq], and the
    Naimi baseline's request/seq pair), so events emitted at different nodes
    stitch into one causal timeline without extra wire state.

    Events split by {!scope}: {e span events} ([Span {requester; seq}])
    belong to one request's timeline; {e node events} ([Node], i.e.
    [Frozen]/[Unfrozen]) describe per-node state with no owning request.
    The scope is an explicit constructor — there is no [-1] sentinel. *)

open Dcs_modes
open Dcs_proto

type kind =
  | Requested of { mode : Mode.t; priority : int }
      (** a client issued the request at [node] (also emitted for Rule-7
          upgrades, as a [W] request on the held instance's span) *)
  | Forwarded of { dst : Node_id.t }
      (** the request was relayed one hop from [node] to [dst]; the number
          of [Forwarded] events on a span is its hop count *)
  | Queued  (** the request entered [node]'s local FIFO queue *)
  | Granted_local of { mode : Mode.t; hops : int }
      (** granted without a token transfer: Rule 2 message-free acquisition
          ([hops = 0]) or a Rule 3/3.1 copy grant ([hops] = relay hops the
          request travelled) *)
  | Granted_token of { mode : Mode.t; hops : int }
      (** granted by token transfer (Rule 3.2 operational) *)
  | Upgraded  (** a Rule-7 U→W upgrade completed on this span *)
  | Released of { mode : Mode.t }  (** the client released the instance *)
  | Sent of { cls : Msg_class.t; dst : Node_id.t }
      (** a protocol message for this span left [node] on the wire
          (emitted by the TCP transport only; the simulator's virtual
          network has no distinct send/receive instants) *)
  | Received of { cls : Msg_class.t; src : Node_id.t }
      (** a protocol message for this span arrived at [node] off the wire;
          [Sent]/[Received] pairs on token-transfer edges are what the
          analyzer's causal clock alignment keys on *)
  | Frozen of Mode_set.t  (** modes added to [node]'s frozen set (Rule 6) *)
  | Unfrozen of Mode_set.t  (** modes removed from [node]'s frozen set *)

(** Who an event belongs to: one request's span, or the node itself. *)
type scope = Span of { requester : Node_id.t; seq : int } | Node

type t = {
  time : float;  (** clock time, ms (sim time or wall clock per source) *)
  lock : int;
  node : Node_id.t;  (** node at which the event happened *)
  scope : scope;
  kind : kind;
}

(** Canonical name: ["requested"], ["forwarded"], ["queued"],
    ["granted-local"], ["granted-token"], ["upgraded"], ["released"],
    ["sent"], ["received"], ["frozen"], ["unfrozen"]. *)
val kind_name : kind -> string

(** [true] iff [t.scope = Node]. *)
val is_node_event : t -> bool

(** Span events granted by either grant kind. *)
val is_grant : kind -> bool

val pp : Format.formatter -> t -> unit
