open Dcs_modes
open Dcs_proto

let schema = "dcs-obs/2"
let schema_v1 = "dcs-obs/1"

(* ---------- writing ---------- *)

let esc s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let set_to_string s = String.concat "+" (List.map Mode.to_string (Mode_set.to_list s))

(* (name, mode, integer payload, mode set, message class) — the flat
   projection of Event.kind that the fixed "ev" field layout carries. *)
let kind_fields = function
  | Event.Requested { mode; priority } -> ("requested", Mode.to_string mode, priority, "", "")
  | Forwarded { dst } -> ("forwarded", "", dst, "", "")
  | Queued -> ("queued", "", 0, "", "")
  | Granted_local { mode; hops } -> ("granted-local", Mode.to_string mode, hops, "", "")
  | Granted_token { mode; hops } -> ("granted-token", Mode.to_string mode, hops, "", "")
  | Upgraded -> ("upgraded", "", 0, "", "")
  | Released { mode } -> ("released", Mode.to_string mode, 0, "", "")
  | Sent { cls; dst } -> ("sent", "", dst, "", Msg_class.to_string cls)
  | Received { cls; src } -> ("received", "", src, "", Msg_class.to_string cls)
  | Frozen s -> ("frozen", "", 0, set_to_string s, "")
  | Unfrozen s -> ("unfrozen", "", 0, set_to_string s, "")

let output_meta oc meta =
  Printf.fprintf oc "{\"k\":\"meta\",\"schema\":\"%s\"" schema;
  List.iter (fun (k, v) -> Printf.fprintf oc ",\"%s\":\"%s\"" (esc k) (esc v)) meta;
  output_string oc "}\n"

let output_event oc (e : Event.t) =
  let name, mode, arg, set, cls = kind_fields e.kind in
  Printf.fprintf oc "{\"k\":\"ev\",\"t\":%.6f,\"lock\":%d,\"node\":%d" e.time e.lock e.node;
  (match e.scope with
  | Span { requester; seq } ->
      Printf.fprintf oc ",\"scope\":\"span\",\"req\":%d,\"seq\":%d" requester seq
  | Node -> output_string oc ",\"scope\":\"node\"");
  Printf.fprintf oc ",\"ev\":\"%s\",\"mode\":\"%s\",\"arg\":%d,\"set\":\"%s\"" name mode arg set;
  if cls <> "" then Printf.fprintf oc ",\"cls\":\"%s\"" cls;
  output_string oc "}\n"

let output_gauge oc ~time ~name ~value =
  Printf.fprintf oc "{\"k\":\"gauge\",\"t\":%.6f,\"name\":\"%s\",\"value\":%.6g}\n" time (esc name)
    value

let output_metric oc ~time ~name ~mkind ~value =
  Printf.fprintf oc "{\"k\":\"metric\",\"t\":%.6f,\"name\":\"%s\",\"mkind\":\"%s\",\"value\":%.6g}\n"
    time (esc name)
    (match mkind with `Counter -> "counter" | `Gauge -> "gauge")
    value

let output_msgs oc ~counts ~bytes =
  List.iter
    (fun (cls, count) ->
      Printf.fprintf oc "{\"k\":\"msgs\",\"cls\":\"%s\",\"count\":%d,\"bytes\":%d}\n"
        (Msg_class.to_string cls) count
        (List.assoc cls bytes))
    counts

let output_counters oc cs =
  output_string oc "{\"k\":\"counters\"";
  List.iter (fun (c, n) -> Printf.fprintf oc ",\"%s\":%d" (Msg_class.to_string c) n) cs;
  output_string oc "}\n"

let write oc ~meta ?counters r =
  output_meta oc meta;
  List.iter (output_event oc) (Recorder.events r);
  List.iter (fun (time, name, value) -> output_gauge oc ~time ~name ~value) (Recorder.gauge_samples r);
  output_msgs oc ~counts:(Recorder.msg_counts r) ~bytes:(Recorder.msg_bytes r);
  match counters with None -> () | Some cs -> output_counters oc cs

(* ---------- parsing ---------- *)

type line =
  | Meta of (string * string) list
  | Ev of Event.t
  | Gauge of { time : float; name : string; value : float }
  | Metric of { time : float; name : string; mkind : [ `Counter | `Gauge ]; value : float }
  | Msgs of { cls : Msg_class.t; count : int; bytes : int }
  | Counters of (Msg_class.t * int) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Bad msg)) fmt

type jvalue = S of string | F of float

(* Minimal flat-JSON-object reader: one level, string or number values. *)
let parse_obj s =
  let n = String.length s in
  let pos = ref 0 in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let expect c =
    skip_ws ();
    if peek () = Some c then incr pos else bad "expected '%c' at offset %d" c !pos
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then bad "unterminated string";
      let c = s.[!pos] in
      incr pos;
      if c = '"' then Buffer.contents b
      else if c = '\\' then (
        if !pos >= n then bad "truncated escape";
        let e = s.[!pos] in
        incr pos;
        Buffer.add_char b
          (match e with
          | '"' -> '"'
          | '\\' -> '\\'
          | '/' -> '/'
          | 'n' -> '\n'
          | 't' -> '\t'
          | _ -> bad "unsupported escape '\\%c'" e);
        go ())
      else (
        Buffer.add_char b c;
        go ())
    in
    go ()
  in
  let parse_number () =
    skip_ws ();
    let start = !pos in
    while
      !pos < n
      && match s.[!pos] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    do
      incr pos
    done;
    if !pos = start then bad "expected value at offset %d" !pos;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> bad "malformed number at offset %d" start
  in
  expect '{';
  let fields = ref [] in
  skip_ws ();
  (if peek () = Some '}' then incr pos
   else
     let rec loop () =
       skip_ws ();
       let key = parse_string () in
       expect ':';
       skip_ws ();
       let v = if peek () = Some '"' then S (parse_string ()) else F (parse_number ()) in
       fields := (key, v) :: !fields;
       skip_ws ();
       match peek () with
       | Some ',' ->
           incr pos;
           loop ()
       | Some '}' -> incr pos
       | _ -> bad "expected ',' or '}' at offset %d" !pos
     in
     loop ());
  skip_ws ();
  if !pos <> n then bad "trailing characters at offset %d" !pos;
  List.rev !fields

let sget fields k =
  match List.assoc_opt k fields with
  | Some (S s) -> s
  | Some (F _) -> bad "field %S: expected a string" k
  | None -> bad "missing field %S" k

let nget fields k =
  match List.assoc_opt k fields with
  | Some (F f) -> f
  | Some (S _) -> bad "field %S: expected a number" k
  | None -> bad "missing field %S" k

let iget fields k = int_of_float (nget fields k)

let mode_of fields =
  let s = sget fields "mode" in
  match Mode.of_string s with Some m -> m | None -> bad "unknown mode %S" s

let set_of fields =
  match sget fields "set" with
  | "" -> Mode_set.empty
  | s ->
      String.split_on_char '+' s
      |> List.map (fun w ->
             match Mode.of_string w with Some m -> m | None -> bad "unknown mode %S in set" w)
      |> Mode_set.of_list

let cls_of_string s =
  match List.find_opt (fun c -> Msg_class.to_string c = s) Msg_class.all with
  | Some c -> c
  | None -> bad "unknown message class %S" s

(* The scope discriminator. dcs-obs/2 carries it explicitly ("scope":
   "span"|"node"); dcs-obs/1 lines lack it, and node events are the
   req = seq = -1 sentinel — that special case lives only here now. *)
let scope_of fields =
  match List.assoc_opt "scope" fields with
  | Some (S "span") -> Event.Span { requester = iget fields "req"; seq = iget fields "seq" }
  | Some (S "node") -> Event.Node
  | Some (S other) -> bad "unknown scope %S" other
  | Some (F _) -> bad "field \"scope\": expected a string"
  | None ->
      let requester = iget fields "req" and seq = iget fields "seq" in
      if requester = -1 && seq = -1 then Event.Node else Event.Span { requester; seq }

let typed fields =
  match sget fields "k" with
  | "meta" ->
      Meta
        (List.filter_map
           (fun (k, v) ->
             if k = "k" then None
             else Some (k, match v with S s -> s | F f -> Printf.sprintf "%g" f))
           fields)
  | "ev" ->
      let kind =
        match sget fields "ev" with
        | "requested" -> Event.Requested { mode = mode_of fields; priority = iget fields "arg" }
        | "forwarded" -> Forwarded { dst = iget fields "arg" }
        | "queued" -> Queued
        | "granted-local" -> Granted_local { mode = mode_of fields; hops = iget fields "arg" }
        | "granted-token" -> Granted_token { mode = mode_of fields; hops = iget fields "arg" }
        | "upgraded" -> Upgraded
        | "released" -> Released { mode = mode_of fields }
        | "sent" -> Sent { cls = cls_of_string (sget fields "cls"); dst = iget fields "arg" }
        | "received" -> Received { cls = cls_of_string (sget fields "cls"); src = iget fields "arg" }
        | "frozen" -> Frozen (set_of fields)
        | "unfrozen" -> Unfrozen (set_of fields)
        | other -> bad "unknown event kind %S" other
      in
      Ev
        {
          time = nget fields "t";
          lock = iget fields "lock";
          node = iget fields "node";
          scope = scope_of fields;
          kind;
        }
  | "gauge" ->
      Gauge { time = nget fields "t"; name = sget fields "name"; value = nget fields "value" }
  | "metric" ->
      let mkind =
        match sget fields "mkind" with
        | "counter" -> `Counter
        | "gauge" -> `Gauge
        | other -> bad "unknown metric kind %S" other
      in
      Metric { time = nget fields "t"; name = sget fields "name"; mkind; value = nget fields "value" }
  | "msgs" ->
      Msgs { cls = cls_of_string (sget fields "cls"); count = iget fields "count"; bytes = iget fields "bytes" }
  | "counters" ->
      Counters
        (List.filter_map
           (fun (k, v) ->
             if k = "k" then None
             else
               match v with
               | F f -> Some (cls_of_string k, int_of_float f)
               | S _ -> bad "counters field %S: expected a number" k)
           fields)
  | other -> bad "unknown line kind %S" other

let parse_line s = match typed (parse_obj s) with v -> Ok v | exception Bad msg -> Error msg

let known_schema s = s = schema || s = schema_v1

let read_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec go acc lineno =
        match input_line ic with
        | exception End_of_file -> Ok (List.rev acc)
        | "" -> go acc (lineno + 1)
        | raw -> (
            match parse_line raw with
            | Ok l -> go (l :: acc) (lineno + 1)
            | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
      in
      let check_head = function
        | Ok (Meta pairs :: _) as ok -> (
            match List.assoc_opt "schema" pairs with
            | Some s when known_schema s -> ok
            | got ->
                Error
                  (Printf.sprintf "line 1: schema mismatch (want %S or %S, got %S)" schema
                     schema_v1
                     (Option.value ~default:"<none>" got)))
        | Ok _ -> Error "line 1: expected a meta line"
        | Error _ as e -> e
      in
      check_head (go [] 1)
