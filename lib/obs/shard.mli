(** A per-process telemetry shard: one [dcs-obs/2] JSONL file written live.

    Where {!Jsonl.write} dumps a finished {!Recorder} in one shot, a shard
    streams: the meta line goes out at {!create}, every {!event} is
    stamped with the shard's {!Clock.t} and flushed immediately (so a
    crashed process leaves a readable prefix and [dcs-trace top] can tail
    the file), {!snapshot} appends the current {!Metrics} registry as
    [metric] lines, and {!write_msgs}/{!write_counters} emit the closing
    accounting lines at stop. All entry points are thread-safe (one mutex
    around the channel) and become no-ops after {!close}.

    Each cluster process writes its own shard ([node-<id>.jsonl]); the
    {!Merge} module and [dcs-trace analyze] reassemble N shards into one
    causally-aligned timeline. *)

open Dcs_proto

type t

(** [create ~path ?clock ~meta ()] opens (truncates) [path] and writes the
    meta line. [meta] should include ["node"] (this process's node id —
    {!Merge} keys clock offsets on it) and ["nodes"]/["locks"]/["seed"] run
    parameters. Default clock: {!Clock.wall}. *)
val create : path:string -> ?clock:Clock.t -> meta:(string * string) list -> unit -> t

(** Current time on the shard's clock (ms). *)
val now : t -> float

(** Append one event, stamped now, and flush. *)
val event : t -> lock:int -> node:Node_id.t -> Event.scope -> Event.kind -> unit

(** Account one protocol message (written frame) of class [cls] carrying
    [bytes] payload bytes. Accumulated in memory; emitted by
    {!write_msgs}. *)
val message : t -> cls:Msg_class.t -> bytes:int -> unit

(** Append the registry's {!Metrics.snapshot} as [metric] lines, all
    stamped with one timestamp, and flush. *)
val snapshot : t -> Metrics.t -> unit

(** Append per-class [msgs] lines from the accumulated {!message} totals. *)
val write_msgs : t -> unit

(** Append the authoritative transport [counters] line. *)
val write_counters : t -> (Msg_class.t * int) list -> unit

(** Close the file. Idempotent; subsequent writes are no-ops. *)
val close : t -> unit
