type t = unit -> float

(* Monotonic clamp: gettimeofday can step backwards (NTP slew); telemetry
   spans must not. The benign race on [last] between threads can at worst
   return a slightly stale maximum, never a regression below a value this
   thread already observed. *)
let wall () =
  let last = ref neg_infinity in
  fun () ->
    let now = Unix.gettimeofday () *. 1000.0 in
    let v = if now > !last then now else !last in
    last := v;
    v

let of_fun f = f

let manual start =
  let now = ref start in
  ((fun () -> !now), fun t -> now := Float.max !now t)
