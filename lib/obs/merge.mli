(** Multi-shard reassembly: load N per-node telemetry shards, align their
    clocks causally, and decompose every request span into a critical path.

    {2 Clock alignment}

    Each shard is stamped with its own process's wall clock; clocks differ
    by an (assumed constant over the run) per-node skew. Every matched
    [Sent]/[Received] pair on an edge A→B measures an {e apparent delay}
    [d_ab = t_recv(B's clock) − t_send(A's clock) = delay + skew_B − skew_A].
    Taking the minimum [d_ab] over all pairs on the edge minimises the true
    delay term; with both directions measured, the symmetric-minimum-delay
    assumption gives [skew_B − skew_A = (min d_ab − min d_ba) / 2] (the
    classic NTP offset estimate), and a one-sided edge falls back to
    [min d_ab] (assume zero minimum delay). Relative skews propagate by BFS
    from the smallest node id of each connected component, whose offset is
    pinned to 0. Corrected time = local time − offset(node).

    {2 Critical paths}

    After merging, each span's [Requested..grant] segment is walked
    event-to-event and every gap is charged to exactly one bucket: [token]
    (cross-node gap closed by a token-transfer arrival), [net] (any other
    cross-node gap), [freeze] (queued time overlapping the queue node's
    frozen episodes, Rule 6), [queue] (remaining queued time), [local]
    (everything else). The buckets sum to the span's total wait. *)

open Dcs_modes
open Dcs_proto

type shard = {
  path : string;
  meta : (string * string) list;
  node : int;  (** meta ["node"], or [-1] (single-recorder sim traces) *)
  events : Event.t list;  (** file order = shard-local time order *)
  gauges : (float * string * float) list;
  metrics : (float * string * [ `Counter | `Gauge ] * float) list;
      (** metric snapshot rows, file order; values are cumulative *)
  msgs : (Msg_class.t * (int * int)) list;  (** class → (count, bytes) *)
  counters : (Msg_class.t * int) list option;
  truncated : bool;  (** final line was partial and was dropped *)
}

(** Load one shard. A parse failure on the final line marks the shard
    [truncated] (a killed process ends mid-line) instead of failing;
    failures anywhere else, an unknown schema, or a missing leading meta
    line are errors. *)
val load_shard : string -> (shard, string) result

(** Load several shards; fails on the first hard error, collects one
    warning string per truncated shard. *)
val load : string list -> (shard list * string list, string) result

(** Per-node clock offsets [(node, offset_ms)] from send/receive causality;
    subtract a node's offset from its timestamps to align. Nodes with no
    measured edge to their component root keep offset 0. *)
val align : shard list -> (int * float) list

(** All shards' events on one timeline, each shard's offset (keyed by its
    [node]) subtracted, stably sorted by corrected time. *)
val merged_events : ?offsets:(int * float) list -> shard list -> Event.t list

type breakdown = {
  b_lock : int;
  b_requester : int;
  b_seq : int;
  b_mode : Mode.t;
  b_kind : [ `Local | `Token | `Upgrade ];
  b_hops : int;
  b_start : float;  (** corrected time of the [Requested] event *)
  b_finish : float;  (** corrected time of the grant *)
  b_local_ms : float;
  b_queue_ms : float;
  b_freeze_ms : float;
  b_net_ms : float;
  b_token_ms : float;
  b_events : Event.t list;  (** the segment, time-ordered *)
}

(** Sum of the five buckets (≈ [b_finish − b_start] up to clock noise). *)
val total_wait : breakdown -> float

(** Decompose merged, time-ordered events into per-segment critical paths.
    Returns the breakdowns in first-seen span order plus the number of
    incomplete segments (requested, never granted). *)
val critical_paths : Event.t list -> breakdown list * int

(** Per-class (count, bytes) summed across shards, {!Msg_class.all} order. *)
val summed_msgs : shard list -> (Msg_class.t * (int * int)) list

(** Authoritative transport counters summed across the shards that carry
    them; [None] if none do. *)
val summed_counters : shard list -> (Msg_class.t * int) list option

(** Cluster-wide metric totals: each shard's {e last} snapshot value per
    name (metrics are cumulative within a shard), summed across shards,
    name-sorted. *)
val metric_totals : shard list -> (string * float) list
