open Dcs_modes
open Dcs_proto

type shard = {
  path : string;
  meta : (string * string) list;
  node : int;
  events : Event.t list;
  gauges : (float * string * float) list;
  metrics : (float * string * [ `Counter | `Gauge ] * float) list;
  msgs : (Msg_class.t * (int * int)) list;
  counters : (Msg_class.t * int) list option;
  truncated : bool;
}

(* ---------- loading ---------- *)

let read_lines path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec go acc =
        match input_line ic with exception End_of_file -> List.rev acc | l -> go (l :: acc)
      in
      Ok (go [])

(* A shard from a killed process legitimately ends mid-line; a parse
   failure anywhere else is corruption and stays a hard error. *)
let load_shard path =
  match read_lines path with
  | Error msg -> Error msg
  | Ok raws -> (
      let numbered =
        List.mapi (fun i l -> (i + 1, l)) raws |> List.filter (fun (_, l) -> l <> "")
      in
      let rec parse acc = function
        | [] -> Ok (List.rev acc, false)
        | [ (_, raw) ] -> (
            match Jsonl.parse_line raw with
            | Ok l -> Ok (List.rev (l :: acc), false)
            | Error _ -> Ok (List.rev acc, true))
        | (i, raw) :: rest -> (
            match Jsonl.parse_line raw with
            | Ok l -> parse (l :: acc) rest
            | Error msg -> Error (Printf.sprintf "line %d: %s" i msg))
      in
      match parse [] numbered with
      | Error msg -> Error msg
      | Ok (lines, truncated) -> (
          match lines with
          | Jsonl.Meta meta :: rest -> (
              match List.assoc_opt "schema" meta with
              | Some s when s = Jsonl.schema || s = Jsonl.schema_v1 ->
                  let node =
                    match List.assoc_opt "node" meta with
                    | Some s -> ( match int_of_string_opt s with Some n -> n | None -> -1)
                    | None -> -1
                  in
                  let events = ref []
                  and gauges = ref []
                  and metrics = ref []
                  and msgs = ref []
                  and counters = ref None in
                  List.iter
                    (function
                      | Jsonl.Meta _ -> ()
                      | Ev e -> events := e :: !events
                      | Gauge { time; name; value } -> gauges := (time, name, value) :: !gauges
                      | Metric { time; name; mkind; value } ->
                          metrics := (time, name, mkind, value) :: !metrics
                      | Msgs { cls; count; bytes } -> msgs := (cls, (count, bytes)) :: !msgs
                      | Counters cs -> counters := Some cs)
                    rest;
                  Ok
                    {
                      path;
                      meta;
                      node;
                      events = List.rev !events;
                      gauges = List.rev !gauges;
                      metrics = List.rev !metrics;
                      msgs = List.rev !msgs;
                      counters = !counters;
                      truncated;
                    }
              | got ->
                  Error
                    (Printf.sprintf "schema mismatch (want %S or %S, got %S)" Jsonl.schema
                       Jsonl.schema_v1
                       (Option.value ~default:"<none>" got)))
          | _ -> Error "first line is not a meta line"))

let load paths =
  let rec go shards warnings = function
    | [] -> Ok (List.rev shards, List.rev warnings)
    | path :: rest -> (
        match load_shard path with
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
        | Ok s ->
            let warnings =
              if s.truncated then
                Printf.sprintf "%s: truncated final line dropped (partial shard)" path :: warnings
              else warnings
            in
            go (s :: shards) warnings rest)
  in
  go [] [] paths

(* ---------- clock alignment ---------- *)

(* Minimum apparent one-way delay per directed node pair, from matched
   Sent/Received pairs. Matching key: the span id plus message class plus
   the (src, dst) pair plus a per-key occurrence index (k-th send of a key
   matches the k-th receive), so retransmitted-looking traffic cannot
   cross-pair. *)
let edge_delays shards =
  let occ = Hashtbl.create 64 in
  let next key =
    let n = Option.value ~default:0 (Hashtbl.find_opt occ key) in
    Hashtbl.replace occ key (n + 1);
    n
  in
  let sends = Hashtbl.create 256 and recvs = Hashtbl.create 256 in
  List.iter
    (fun s ->
      if s.node >= 0 then
        List.iter
          (fun (e : Event.t) ->
            match (e.scope, e.kind) with
            | Span { requester; seq }, Sent { cls; dst } ->
                let base = (e.lock, requester, seq, cls, s.node, dst) in
                Hashtbl.replace sends (base, next (`S, base)) e.time
            | Span { requester; seq }, Received { cls; src } ->
                let base = (e.lock, requester, seq, cls, src, s.node) in
                Hashtbl.replace recvs (base, next (`R, base)) e.time
            | _ -> ())
          s.events)
    shards;
  let delays = Hashtbl.create 16 in
  Hashtbl.iter
    (fun (((_, _, _, _, src, dst) as base), k) t_send ->
      match Hashtbl.find_opt recvs (base, k) with
      | None -> ()
      | Some t_recv ->
          let d = t_recv -. t_send in
          let edge = (src, dst) in
          let cur = Hashtbl.find_opt delays edge in
          if cur = None || d < Option.get cur then Hashtbl.replace delays edge d)
    sends;
  delays

let align shards =
  let nodes =
    List.filter_map (fun s -> if s.node >= 0 then Some s.node else None) shards
    |> List.sort_uniq compare
  in
  let delays = edge_delays shards in
  (* rel a b = skew(b) - skew(a): with both directions measured, symmetric
     minimum delay cancels ((d_ab - d_ba) / 2); one-sided, assume the
     minimum observed delay is all skew (biased by the true min delay,
     which TCP on one host keeps well under a millisecond). *)
  let rel a b =
    match (Hashtbl.find_opt delays (a, b), Hashtbl.find_opt delays (b, a)) with
    | Some d_ab, Some d_ba -> Some ((d_ab -. d_ba) /. 2.0)
    | Some d_ab, None -> Some d_ab
    | None, Some d_ba -> Some (-.d_ba)
    | None, None -> None
  in
  let offsets = Hashtbl.create 8 in
  List.iter
    (fun root ->
      if not (Hashtbl.mem offsets root) then begin
        Hashtbl.replace offsets root 0.0;
        let q = Queue.create () in
        Queue.push root q;
        while not (Queue.is_empty q) do
          let a = Queue.pop q in
          let oa = Hashtbl.find offsets a in
          List.iter
            (fun b ->
              if not (Hashtbl.mem offsets b) then
                match rel a b with
                | Some r ->
                    Hashtbl.replace offsets b (oa +. r);
                    Queue.push b q
                | None -> ())
            nodes
        done
      end)
    nodes;
  List.map (fun n -> (n, Option.value ~default:0.0 (Hashtbl.find_opt offsets n))) nodes

let merged_events ?(offsets = []) shards =
  let all =
    List.concat_map
      (fun s ->
        let off = Option.value ~default:0.0 (List.assoc_opt s.node offsets) in
        if off = 0.0 then s.events
        else List.map (fun (e : Event.t) -> { e with time = e.time -. off }) s.events)
      shards
  in
  List.stable_sort (fun (a : Event.t) (b : Event.t) -> compare a.time b.time) all

(* ---------- critical paths ---------- *)

type breakdown = {
  b_lock : int;
  b_requester : int;
  b_seq : int;
  b_mode : Mode.t;
  b_kind : [ `Local | `Token | `Upgrade ];
  b_hops : int;
  b_start : float;
  b_finish : float;
  b_local_ms : float;
  b_queue_ms : float;
  b_freeze_ms : float;
  b_net_ms : float;
  b_token_ms : float;
  b_events : Event.t list;
}

let total_wait b = b.b_local_ms +. b.b_queue_ms +. b.b_freeze_ms +. b.b_net_ms +. b.b_token_ms

(* Closed [start, stop) intervals during which (lock, node) had a
   non-empty frozen set; an unclosed episode extends to infinity. *)
let freeze_intervals events =
  let open_at = Hashtbl.create 8 and sets = Hashtbl.create 8 and acc = Hashtbl.create 8 in
  let push key iv = Hashtbl.replace acc key (iv :: Option.value ~default:[] (Hashtbl.find_opt acc key)) in
  List.iter
    (fun (e : Event.t) ->
      match e.kind with
      | Frozen s | Unfrozen s ->
          let key = (e.lock, e.node) in
          let cur = Option.value ~default:Mode_set.empty (Hashtbl.find_opt sets key) in
          let next =
            match e.kind with
            | Frozen _ -> Mode_set.union cur s
            | _ -> Mode_set.diff cur s
          in
          Hashtbl.replace sets key next;
          let was = not (Mode_set.is_empty cur) and is = not (Mode_set.is_empty next) in
          if (not was) && is then Hashtbl.replace open_at key e.time
          else if was && not is then (
            (match Hashtbl.find_opt open_at key with
            | Some t0 -> push key (t0, e.time)
            | None -> ());
            Hashtbl.remove open_at key)
      | _ -> ())
    events;
  Hashtbl.iter (fun key t0 -> push key (t0, infinity)) open_at;
  acc

let overlap intervals t0 t1 =
  List.fold_left
    (fun acc (a, b) -> acc +. Float.max 0.0 (Float.min t1 b -. Float.max t0 a))
    0.0 intervals

(* Walk a span's events (merged, time-ordered) from Requested to the next
   grant, charging each inter-event gap to one bucket:
   - cross-node gap ending in a token-transfer arrival (or a sim-trace
     Granted_token, which has no transport events) -> token
   - any other cross-node gap -> net
   - same-node gap out of Queued -> queue, minus the portion overlapping
     that (lock, node)'s frozen episodes -> freeze
   - any other same-node gap -> local *)
let classify ~freezes segment =
  let local = ref 0.0 and queue = ref 0.0 and freeze = ref 0.0 and net = ref 0.0 and token = ref 0.0 in
  let rec walk = function
    | (a : Event.t) :: ((b : Event.t) :: _ as rest) ->
        let dt = Float.max 0.0 (b.time -. a.time) in
        (if a.node <> b.node then
           match b.kind with
           | Received { cls = Msg_class.Token_transfer; _ } | Granted_token _ ->
               token := !token +. dt
           | _ -> net := !net +. dt
         else
           match a.kind with
           | Queued ->
               let ivs = Option.value ~default:[] (Hashtbl.find_opt freezes (a.lock, a.node)) in
               let fz = Float.min dt (overlap ivs a.time b.time) in
               freeze := !freeze +. fz;
               queue := !queue +. (dt -. fz)
           | _ -> local := !local +. dt);
        walk rest
    | _ -> ()
  in
  walk segment;
  (!local, !queue, !freeze, !net, !token)

let critical_paths events =
  let freezes = freeze_intervals events in
  let spans = Hashtbl.create 64 and order = ref [] in
  List.iter
    (fun (e : Event.t) ->
      match e.scope with
      | Node -> ()
      | Span { requester; seq } ->
          let key = (e.lock, requester, seq) in
          (match Hashtbl.find_opt spans key with
          | None ->
              order := key :: !order;
              Hashtbl.replace spans key [ e ]
          | Some es -> Hashtbl.replace spans key (e :: es)))
    events;
  let breakdowns = ref [] and incomplete = ref 0 in
  List.iter
    (fun ((lock, requester, seq) as key) ->
      let es = List.rev (Hashtbl.find spans key) in
      (* One breakdown per Requested..grant segment; an upgrade on the same
         span id yields a second segment. *)
      let rec scan = function
        | [] -> ()
        | (e : Event.t) :: rest when (match e.kind with Event.Requested _ -> true | _ -> false) ->
            let rec take acc = function
              | [] -> (None, List.rev acc, [])
              | (g : Event.t) :: tl -> (
                  match g.kind with
                  | Event.Granted_local { mode; hops } ->
                      (Some (`Local, mode, hops, g), List.rev (g :: acc), tl)
                  | Granted_token { mode; hops } ->
                      (Some (`Token, mode, hops, g), List.rev (g :: acc), tl)
                  | Upgraded -> (Some (`Upgrade, Mode.W, 0, g), List.rev (g :: acc), tl)
                  | Requested _ -> (None, List.rev acc, g :: tl)
                  | _ -> take (g :: acc) tl)
            in
            let grant, segment, rest' = take [ e ] rest in
            (match grant with
            | None -> incr incomplete
            | Some (b_kind, b_mode, b_hops, g) ->
                let local, queue, freeze, net, token = classify ~freezes segment in
                breakdowns :=
                  {
                    b_lock = lock;
                    b_requester = requester;
                    b_seq = seq;
                    b_mode;
                    b_kind;
                    b_hops;
                    b_start = e.time;
                    b_finish = g.time;
                    b_local_ms = local;
                    b_queue_ms = queue;
                    b_freeze_ms = freeze;
                    b_net_ms = net;
                    b_token_ms = token;
                    b_events = segment;
                  }
                  :: !breakdowns);
            scan rest'
        | _ :: rest -> scan rest
      in
      scan es)
    (List.rev !order);
  (List.rev !breakdowns, !incomplete)

(* ---------- cross-shard totals ---------- *)

let summed_msgs shards =
  List.map
    (fun cls ->
      let count, bytes =
        List.fold_left
          (fun (c, b) s ->
            match List.assoc_opt cls s.msgs with
            | Some (c', b') -> (c + c', b + b')
            | None -> (c, b))
          (0, 0) shards
      in
      (cls, (count, bytes)))
    Msg_class.all

let summed_counters shards =
  if List.for_all (fun s -> s.counters = None) shards then None
  else
    Some
      (List.map
         (fun cls ->
           ( cls,
             List.fold_left
               (fun acc s ->
                 match s.counters with
                 | Some cs -> acc + Option.value ~default:0 (List.assoc_opt cls cs)
                 | None -> acc)
               0 shards ))
         Msg_class.all)

(* Counters in a shard's metric stream are cumulative: the last snapshot
   per name is the shard's total; summing those across shards gives the
   cluster total. *)
let metric_totals shards =
  let totals = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let last = Hashtbl.create 32 in
      List.iter (fun (_, name, _, value) -> Hashtbl.replace last name value) s.metrics;
      Hashtbl.iter
        (fun name value ->
          Hashtbl.replace totals name (value +. Option.value ~default:0.0 (Hashtbl.find_opt totals name)))
        last)
    shards;
  Hashtbl.fold (fun name v acc -> (name, v) :: acc) totals []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
