module Histogram = Dcs_stats.Histogram

type counter = { c_name : string; c : int Atomic.t }

(* A mutable float record field is an unboxed float slot: stores are
   single word writes, so concurrent [set]s can interleave but never
   tear. Good enough for a telemetry gauge. *)
type gauge = { g_name : string; mutable g : float }

type histogram = { h_name : string; h_lock : Mutex.t; h : Histogram.t }

type t = {
  lock : Mutex.t;
  mutable counters : counter list; (* registration order, newest first *)
  mutable gauges : gauge list;
  mutable histograms : histogram list;
}

let create () = { lock = Mutex.create (); counters = []; gauges = []; histograms = [] }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let counter t name =
  with_lock t (fun () ->
      match List.find_opt (fun c -> c.c_name = name) t.counters with
      | Some c -> c
      | None ->
          let c = { c_name = name; c = Atomic.make 0 } in
          t.counters <- c :: t.counters;
          c)

let gauge t name =
  with_lock t (fun () ->
      match List.find_opt (fun g -> g.g_name = name) t.gauges with
      | Some g -> g
      | None ->
          let g = { g_name = name; g = 0.0 } in
          t.gauges <- g :: t.gauges;
          g)

let histogram ?(base = 1.25) ?(min_value = 0.01) t name =
  with_lock t (fun () ->
      match List.find_opt (fun h -> h.h_name = name) t.histograms with
      | Some h -> h
      | None ->
          let h =
            { h_name = name; h_lock = Mutex.create (); h = Histogram.create ~base ~min_value () }
          in
          t.histograms <- h :: t.histograms;
          h)

let incr c = ignore (Atomic.fetch_and_add c.c 1)
let add c n = ignore (Atomic.fetch_and_add c.c n)
let value c = Atomic.get c.c
let counter_name c = c.c_name

let set g v = g.g <- v
let gauge_value g = g.g
let gauge_name g = g.g_name

let observe h v =
  Mutex.lock h.h_lock;
  Histogram.add h.h v;
  Mutex.unlock h.h_lock

let quantile h q =
  Mutex.lock h.h_lock;
  let v = Histogram.quantile h.h q in
  Mutex.unlock h.h_lock;
  v

(* {1 Shard labels}

   A sharded service runs one registry per shard process; labelling the
   instrument name lets merged telemetry keep the per-shard series apart
   while staying ordinary (name, kind, value) rows for every existing
   consumer. *)

let labelled name ~shard =
  if shard < 0 then invalid_arg "Metrics.labelled: negative shard id";
  Printf.sprintf "%s{shard=%d}" name shard

let shard_label name =
  match String.index_opt name '{' with
  | None -> None
  | Some i ->
      let len = String.length name in
      let tag = "{shard=" in
      let tlen = String.length tag in
      if len > i + tlen && String.sub name i tlen = tag && name.[len - 1] = '}' then
        match int_of_string_opt (String.sub name (i + tlen) (len - i - tlen - 1)) with
        | Some shard when shard >= 0 -> Some (String.sub name 0 i, shard)
        | _ -> None
      else None

let snapshot t =
  let rows =
    with_lock t (fun () ->
        List.map (fun c -> (c.c_name, `Counter, float_of_int (Atomic.get c.c))) t.counters
        @ List.map (fun g -> (g.g_name, `Gauge, g.g)) t.gauges
        @ List.concat_map
            (fun h ->
              Mutex.lock h.h_lock;
              let count = float_of_int (Histogram.count h.h) in
              let p50 = Histogram.quantile h.h 0.5 in
              let p95 = Histogram.quantile h.h 0.95 in
              let p99 = Histogram.quantile h.h 0.99 in
              Mutex.unlock h.h_lock;
              [
                (h.h_name ^ ".count", `Counter, count);
                (h.h_name ^ ".p50", `Gauge, p50);
                (h.h_name ^ ".p95", `Gauge, p95);
                (h.h_name ^ ".p99", `Gauge, p99);
              ])
            t.histograms)
  in
  List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows
