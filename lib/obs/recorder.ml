open Dcs_modes
open Dcs_proto
module Histogram = Dcs_stats.Histogram
module Summary = Dcs_stats.Summary

type grants = { local : int; token : int; message_free : int; upgrades : int }

type mode_stat = {
  mode : Mode.t;
  count : int;
  mean_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
}

let classes = List.length Msg_class.all
let modes = List.length Mode.all

type t = {
  enabled : bool;
  keep_events : bool;
  mutable events : Event.t list; (* newest first *)
  mutable event_count : int;
  mutable requested : int;
  mutable grants_local : int;
  mutable grants_token : int;
  mutable message_free : int;
  mutable upgrades : int;
  (* open spans: (lock, requester, seq) -> request time *)
  spans : (int * int * int, float) Hashtbl.t;
  (* acquisition latency per mode *)
  lat_hist : Histogram.t array; (* indexed by Mode.index *)
  lat_sum : Summary.t array;
  (* exact hop distributions: hops -> grant count *)
  hops_local : (int, int) Hashtbl.t;
  hops_token : (int, int) Hashtbl.t;
  (* freeze episodes: (lock, node) -> (current set, since) *)
  freezes : (int * int, Mode_set.t * float) Hashtbl.t;
  freeze_sum : Summary.t;
  (* per-class message accounting *)
  counts : int array;
  bytes : int array;
  (* gauges *)
  mutable samples : (float * string * float) list; (* newest first *)
  gauges : (string, Summary.t) Hashtbl.t;
}

let create ?(events = true) ~enabled () =
  {
    enabled;
    keep_events = events;
    events = [];
    event_count = 0;
    requested = 0;
    grants_local = 0;
    grants_token = 0;
    message_free = 0;
    upgrades = 0;
    spans = Hashtbl.create 64;
    lat_hist = Array.init modes (fun _ -> Histogram.create ~base:1.25 ~min_value:0.01 ());
    lat_sum = Array.init modes (fun _ -> Summary.create ());
    hops_local = Hashtbl.create 8;
    hops_token = Hashtbl.create 8;
    freezes = Hashtbl.create 16;
    freeze_sum = Summary.create ();
    counts = Array.make classes 0;
    bytes = Array.make classes 0;
    samples = [];
    gauges = Hashtbl.create 8;
  }

let enabled t = t.enabled

let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))

let close_span t ~time ~lock ~requester ~seq mode =
  let key = (lock, requester, seq) in
  match Hashtbl.find_opt t.spans key with
  | None -> ()
  | Some started ->
      Hashtbl.remove t.spans key;
      let elapsed = time -. started in
      let i = Mode.index mode in
      Histogram.add t.lat_hist.(i) elapsed;
      Summary.add t.lat_sum.(i) elapsed

(* Freeze episodes: a node's frozen set going non-empty opens an episode;
   draining back to empty closes it and records the duration. *)
let freeze_change t ~time ~lock ~node ~add set =
  let key = (lock, node) in
  let cur, since =
    match Hashtbl.find_opt t.freezes key with
    | Some (c, s) -> (c, s)
    | None -> (Mode_set.empty, time)
  in
  let was_empty = Mode_set.is_empty cur in
  let next = if add then Mode_set.union cur set else Mode_set.diff cur set in
  if Mode_set.is_empty next then (
    Hashtbl.remove t.freezes key;
    if not was_empty then Summary.add t.freeze_sum (time -. since))
  else Hashtbl.replace t.freezes key (next, if was_empty then time else since)

let record t ~time ~lock ~node scope kind =
  if t.enabled then (
    t.event_count <- t.event_count + 1;
    if t.keep_events then t.events <- { Event.time; lock; node; scope; kind } :: t.events;
    match (scope, kind) with
    | Event.Span { requester; seq }, Event.Requested _ ->
        t.requested <- t.requested + 1;
        Hashtbl.replace t.spans (lock, requester, seq) time
    | Span { requester; seq }, Granted_local { mode; hops } ->
        t.grants_local <- t.grants_local + 1;
        if hops = 0 then t.message_free <- t.message_free + 1;
        bump t.hops_local hops;
        close_span t ~time ~lock ~requester ~seq mode
    | Span { requester; seq }, Granted_token { mode; hops } ->
        t.grants_token <- t.grants_token + 1;
        bump t.hops_token hops;
        close_span t ~time ~lock ~requester ~seq mode
    | Span { requester; seq }, Upgraded ->
        t.upgrades <- t.upgrades + 1;
        close_span t ~time ~lock ~requester ~seq Mode.W
    | _, Frozen set -> freeze_change t ~time ~lock ~node ~add:true set
    | _, Unfrozen set -> freeze_change t ~time ~lock ~node ~add:false set
    | _, (Requested _ | Granted_local _ | Granted_token _ | Upgraded)
    | _, (Forwarded _ | Queued | Released _ | Sent _ | Received _) ->
        ())

let message t ~cls ~bytes =
  if t.enabled then (
    let i = Msg_class.index cls in
    t.counts.(i) <- t.counts.(i) + 1;
    t.bytes.(i) <- t.bytes.(i) + bytes)

let gauge t ~time ~name ~value =
  if t.enabled then (
    if t.keep_events then t.samples <- (time, name, value) :: t.samples;
    let s =
      match Hashtbl.find_opt t.gauges name with
      | Some s -> s
      | None ->
          let s = Summary.create () in
          Hashtbl.add t.gauges name s;
          s
    in
    Summary.add s value)

let events t = List.rev t.events

let event_count t = t.event_count

let requested t = t.requested

let completed t = t.grants_local + t.grants_token + t.upgrades

let open_spans t = Hashtbl.length t.spans

let msg_counts t = List.map (fun c -> (c, t.counts.(Msg_class.index c))) Msg_class.all

let msg_bytes t = List.map (fun c -> (c, t.bytes.(Msg_class.index c))) Msg_class.all

let grants t =
  { local = t.grants_local; token = t.grants_token; message_free = t.message_free; upgrades = t.upgrades }

let hop_distribution t which =
  let tbl = match which with `Local -> t.hops_local | `Token -> t.hops_token in
  Hashtbl.fold (fun h n acc -> (h, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mode_stats t =
  List.filter_map
    (fun mode ->
      let i = Mode.index mode in
      let n = Summary.count t.lat_sum.(i) in
      if n = 0 then None
      else
        let h = t.lat_hist.(i) in
        Some
          {
            mode;
            count = n;
            mean_ms = Summary.mean t.lat_sum.(i);
            p50_ms = Histogram.quantile h 0.5;
            p95_ms = Histogram.quantile h 0.95;
            p99_ms = Histogram.quantile h 0.99;
          })
    Mode.all

let latency_histogram t mode =
  let i = Mode.index mode in
  if Histogram.count t.lat_hist.(i) = 0 then None else Some t.lat_hist.(i)

let freeze_durations t = t.freeze_sum

let open_freezes t = Hashtbl.length t.freezes

let gauge_stats t =
  Hashtbl.fold (fun name s acc -> (name, s) :: acc) t.gauges []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let gauge_samples t = List.rev t.samples
