(** Monotonic time sources for telemetry, in milliseconds.

    A clock is just [unit -> float]: the simulator passes its own
    simulation-time closure ([fun () -> Net.now net]), real transports use
    {!wall}. Everything downstream ({!Shard}, {!Metrics} snapshots, the
    [dcs-trace] analyzer) only ever sees the one interface, so sim-time
    and wall-clock telemetry share every code path. *)

(** Returns the current time in milliseconds. Must be monotonically
    non-decreasing per process. *)
type t = unit -> float

(** Wall clock: milliseconds since the Unix epoch, clamped monotonic
    (a backwards OS clock step repeats the last value instead of
    regressing). Shards of one machine therefore start out roughly
    aligned; cross-machine shards rely on the analyzer's causal
    alignment. *)
val wall : unit -> t

(** Adapt any millisecond source (e.g. simulation time). *)
val of_fun : (unit -> float) -> t

(** [manual start] is a hand-advanced clock for tests: the setter moves
    time forward (never backwards). *)
val manual : float -> t * (float -> unit)
