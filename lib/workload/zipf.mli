(** Zipfian element selection for skewed workloads (Gray's self-similar
    generator, the YCSB construction): element ranks [0, n) drawn with
    probability proportional to [1/(rank+1)^theta], rank 0 hottest.

    [theta = 0] is uniform; YCSB's default skew is [theta = 0.99], where a
    few hot elements absorb most of the traffic — the regime that stresses
    a sharded namespace's balance and the protocol's cache-revocation
    path. The normalizer is precomputed at {!create} (O(n) once), so every
    {!sample} is O(1) and allocation-free. *)

type t

(** Raises [Invalid_argument] unless [n > 0] and [0 <= theta < 1]. *)
val create : n:int -> theta:float -> t

val n : t -> int
val theta : t -> float

(** Draw one rank in [0, n) using the given stream; deterministic in the
    stream's state. *)
val sample : t -> Dcs_sim.Rng.t -> int
