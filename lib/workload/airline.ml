open Dcs_modes

type op =
  | Table_op of { mode : Mode.t; upgrade : bool }
  | Entry_op of { intent : Mode.t; entry_mode : Mode.t; entry : int }

type config = {
  entries : int;
  mix : float * float * float * float * float;
  upgrade_fraction : float;
  cs_time : Dcs_sim.Dist.t;
  idle_time : Dcs_sim.Dist.t;
  ops_per_node : int;
  skew : float;
}

let default_config =
  {
    entries = 10;
    mix = (0.80, 0.10, 0.04, 0.05, 0.01);
    upgrade_fraction = 0.5;
    cs_time = Dcs_sim.Dist.uniform_around 15.0;
    idle_time = Dcs_sim.Dist.uniform_around 150.0;
    ops_per_node = 20;
    skew = 0.0;
  }

let entry_zipf config =
  if config.skew <= 0.0 then None else Some (Zipf.create ~n:config.entries ~theta:config.skew)

let draw_entry ?zipf config rng =
  match zipf with
  | Some z -> Zipf.sample z rng
  | None -> Dcs_sim.Rng.int rng ~bound:config.entries

let sample_class config rng =
  let wir, wr, wu, wiw, ww = config.mix in
  let total = wir +. wr +. wu +. wiw +. ww in
  let x = Dcs_sim.Rng.float rng *. total in
  if x < wir then Mode.IR
  else if x < wir +. wr then Mode.R
  else if x < wir +. wr +. wu then Mode.U
  else if x < wir +. wr +. wu +. wiw then Mode.IW
  else Mode.W

let sample_op ?zipf config rng =
  match sample_class config rng with
  | Mode.IR -> Entry_op { intent = Mode.IR; entry_mode = Mode.R; entry = draw_entry ?zipf config rng }
  | Mode.IW -> Entry_op { intent = Mode.IW; entry_mode = Mode.W; entry = draw_entry ?zipf config rng }
  | Mode.R -> Table_op { mode = Mode.R; upgrade = false }
  | Mode.W -> Table_op { mode = Mode.W; upgrade = false }
  | Mode.U -> Table_op { mode = Mode.U; upgrade = Dcs_sim.Rng.float rng < config.upgrade_fraction }

let op_modes = function
  | Table_op { mode; _ } -> [ mode ]
  | Entry_op { intent; entry_mode; _ } -> [ intent; entry_mode ]

let op_to_string = function
  | Table_op { mode; upgrade = true } -> Printf.sprintf "%s->W(table)" (Mode.to_string mode)
  | Table_op { mode; upgrade = false } -> Printf.sprintf "%s(table)" (Mode.to_string mode)
  | Entry_op { intent; entry_mode; entry } ->
      Printf.sprintf "%s+%s(entry %d)" (Mode.to_string intent) (Mode.to_string entry_mode) entry

let op_class = function
  | Table_op { mode; _ } -> mode
  | Entry_op { intent; _ } -> intent
