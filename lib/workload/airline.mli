(** The paper's evaluation workload (§4): a multi-airline reservation
    system. Ticket prices live in a table shared by all nodes; each entry
    has its own lock and the whole table has a coarser lock.

    Every application request is either a whole-table access (issued with a
    table-level [R], [U] or [W]) or a single-entry access (issued with an
    intention mode on the table — [IR] or [IW] — plus [R] or [W] on the
    entry). The paper's mode mix IR/R/U/IW/W = 80/10/4/5/1 % therefore
    means: 80 % entry reads, 10 % table reads, 4 % table upgrade-reads,
    5 % entry writes, 1 % table writes. *)

open Dcs_modes

(** One application-level operation. *)
type op =
  | Table_op of { mode : Mode.t; upgrade : bool }
      (** Whole-table access in [R], [U] or [W]; when [upgrade] is set
          (only with [U]) the client upgrades to [W] mid-critical-section
          (Rule 7 exercise). *)
  | Entry_op of { intent : Mode.t; entry_mode : Mode.t; entry : int }
      (** Single-entry access: [intent] ([IR]/[IW]) on the table lock, then
          [entry_mode] ([R]/[W]) on lock of entry [entry]. *)

type config = {
  entries : int;  (** number of table entries (and entry locks) *)
  mix : (float * float * float * float * float);
      (** request-type weights for IR, R, U, IW, W; default .80/.10/.04/.05/.01 *)
  upgrade_fraction : float;
      (** fraction of [U] table operations that upgrade to [W] in-CS *)
  cs_time : Dcs_sim.Dist.t;  (** critical-section length (ms); paper mean 15 *)
  idle_time : Dcs_sim.Dist.t;  (** inter-request idle time (ms); paper mean 150 *)
  ops_per_node : int;  (** requests each node issues *)
  skew : float;
      (** Zipfian hot-entry skew (theta): 0 (the default) keeps the
          paper's uniform entry choice; larger values concentrate entry
          operations on a few hot entries ({!Zipf}, YCSB-style; 0.99 is
          the YCSB default). Table operations are unaffected. *)
}

(** The paper's parameters: 10 entries, 80/10/4/5/1 mix, half of U ops
    upgrade, CS ~ uniform around 15 ms, idle ~ uniform around 150 ms,
    20 ops per node, no skew. *)
val default_config : config

(** The sampler realizing [config.skew], built once (O(entries)); [None]
    when skew is 0. Pass it to every {!sample_op} call of a run. *)
val entry_zipf : config -> Zipf.t option

(** Draw one operation. [zipf] (from {!entry_zipf}) skews the entry
    choice; omitted, entries are uniform regardless of [config.skew]. *)
val sample_op : ?zipf:Zipf.t -> config -> Dcs_sim.Rng.t -> op

(** Modes this operation locks, table first: [Table_op] → one mode,
    [Entry_op] → intent then entry mode. *)
val op_modes : op -> Mode.t list

(** Human-readable label, e.g. ["IR+R(entry 3)"] or ["U->W(table)"]. *)
val op_to_string : op -> string

(** The paper's mode-class of an operation, i.e. which of the five request
    percentages it was drawn from (IR, R, U, IW or W). *)
val op_class : op -> Mode.t
