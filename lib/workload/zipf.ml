(* Zipfian sampler over [0, n): Gray et al.'s self-similar construction
   as popularized by YCSB. The zeta normalizer is precomputed at [create]
   so each draw is O(1); the two leading ranks are special-cased exactly
   and the tail uses the closed-form inverse. Rank 0 is the hottest
   element; for theta -> 0 the distribution approaches uniform. *)

type t = {
  n : int;
  theta : float;
  alpha : float;  (* 1 / (1 - theta) *)
  zetan : float;  (* sum_{i=1..n} 1/i^theta *)
  eta : float;
  half_pow_theta : float;  (* 0.5^theta, cached for the rank-1 cutoff *)
}

let zeta n theta =
  let acc = ref 0.0 in
  for i = 1 to n do
    acc := !acc +. (1.0 /. Float.pow (float_of_int i) theta)
  done;
  !acc

let create ~n ~theta =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if theta < 0.0 || theta >= 1.0 then invalid_arg "Zipf.create: theta must be in [0, 1)";
  let zetan = zeta n theta in
  let zeta2 = if n >= 2 then 1.0 +. Float.pow 0.5 theta else zetan in
  let eta =
    (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta)) /. (1.0 -. (zeta2 /. zetan))
  in
  { n; theta; alpha = 1.0 /. (1.0 -. theta); zetan; eta; half_pow_theta = Float.pow 0.5 theta }

let n t = t.n
let theta t = t.theta

let sample t rng =
  if t.n = 1 then 0
  else begin
    let u = Dcs_sim.Rng.float rng in
    let uz = u *. t.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. t.half_pow_theta then 1
    else begin
      let rank =
        int_of_float (float_of_int t.n *. Float.pow ((t.eta *. u) -. t.eta +. 1.0) t.alpha)
      in
      (* Float round-off can land exactly on n. *)
      if rank >= t.n then t.n - 1 else if rank < 0 then 0 else rank
    end
  end
