examples/document_store.ml: Core Format List Printf
