examples/realtime.mli:
