examples/airline.ml: Array Core List Printf Sys
