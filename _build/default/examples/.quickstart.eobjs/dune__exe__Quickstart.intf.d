examples/quickstart.mli:
