examples/quickstart.ml: Core Format Printf
