examples/realtime.ml: Core Printf
