examples/airline.mli:
