examples/fairness.mli:
