examples/fairness.ml: Core Printf
