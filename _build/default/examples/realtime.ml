(* Prioritized locking (the extension of Mueller [11,12] this protocol
   family supports): requests carry a priority; every queue serves by
   descending priority, FIFO within a level. Ordering is exact at the
   token node — where contended requests accumulate on read-mostly locks —
   and inverted by at most one custodian's wait inside custody chains.

   Eight readers keep a lock in R; four background writers and one
   latency-critical writer compete for W slots. The writers all queue at
   the (stationary) token, so the critical writer's priority 9 puts it at
   the head of every drain.

   Run with:  dune exec examples/realtime.exe *)

let () =
  let nodes = 13 in
  let svc = Core.Service.create ~nodes ~seed:77L ~locks:[ "resource" ] () in
  let horizon = 30_000.0 in
  let background = Core.Summary.create () in
  let critical = Core.Summary.create () in

  (* Readers 5..12: a steady shared-read load. *)
  for node = 5 to nodes - 1 do
    let rec loop () =
      if Core.Service.now svc < horizon then
        Core.Service.schedule svc ~after:120.0 (fun () ->
            Core.Service.lock svc ~node ~name:"resource" ~mode:Core.Mode.R (fun t ->
                Core.Service.schedule svc ~after:15.0 (fun () ->
                    Core.Service.unlock svc t;
                    loop ())))
    in
    loop ()
  done;

  (* Four background writers (priority 0). *)
  for node = 1 to 4 do
    let rec loop () =
      if Core.Service.now svc < horizon then
        Core.Service.schedule svc ~after:600.0 (fun () ->
            let t0 = Core.Service.now svc in
            Core.Service.lock svc ~node ~name:"resource" ~mode:Core.Mode.W (fun t ->
                Core.Summary.add background (Core.Service.now svc -. t0);
                Core.Service.schedule svc ~after:15.0 (fun () ->
                    Core.Service.unlock svc t;
                    loop ())))
    in
    loop ()
  done;

  (* The critical writer (priority 9). *)
  let rec critical_loop () =
    if Core.Service.now svc < horizon then
      Core.Service.schedule svc ~after:1500.0 (fun () ->
          let t0 = Core.Service.now svc in
          Core.Service.lock ~priority:9 svc ~node:0 ~name:"resource" ~mode:Core.Mode.W
            (fun t ->
              Core.Summary.add critical (Core.Service.now svc -. t0);
              Core.Service.schedule svc ~after:15.0 (fun () ->
                  Core.Service.unlock svc t;
                  critical_loop ())))
  in
  critical_loop ();

  Core.Service.run svc;
  Printf.printf "background writes: %4d acquisitions, mean wait %7.0f ms, max %7.0f ms\n"
    (Core.Summary.count background) (Core.Summary.mean background) (Core.Summary.max background);
  Printf.printf "critical  writes: %4d acquisitions, mean wait %7.0f ms, max %7.0f ms\n"
    (Core.Summary.count critical) (Core.Summary.mean critical) (Core.Summary.max critical);
  if Core.Summary.mean critical < Core.Summary.mean background then
    Printf.printf "\nPriority queueing cut the critical writer's mean wait by %.1fx.\n"
      (Core.Summary.mean background /. Core.Summary.mean critical)
  else
    Printf.printf "\n(Priority did not pay off under this schedule.)\n"
