(* Rule 6 in action: mode freezing prevents writer starvation.

   A writer requests W on a lock that a stream of readers keeps busy. With
   freezing (the paper's protocol), the queued W freezes R at the token:
   readers arriving after the writer wait, and the writer gets in as soon
   as the current readers drain. With freezing disabled (ablation), new
   compatible readers keep overtaking and the writer waits far longer.

   Run with:  dune exec examples/fairness.exe *)

let run_one ~freezing =
  let config = { Core.Hlock.default_config with Core.Hlock.freezing } in
  let nodes = 12 in
  let svc = Core.Service.create ~config ~nodes ~seed:5L ~locks:[ "data" ] () in
  let writer_issued = ref 0.0 and writer_served = ref None in
  let reads = ref 0 in
  (* Readers 1..11 read repeatedly. *)
  for node = 1 to nodes - 1 do
    let rec loop () =
      if Core.Service.now svc < 6000.0 then
        Core.Service.schedule svc ~after:60.0 (fun () ->
            Core.Service.lock svc ~node ~name:"data" ~mode:Core.Mode.R (fun t ->
                incr reads;
                Core.Service.schedule svc ~after:40.0 (fun () ->
                    Core.Service.unlock svc t;
                    loop ())))
    in
    loop ()
  done;
  (* The writer arrives at t=500. *)
  Core.Service.schedule svc ~after:500.0 (fun () ->
      writer_issued := Core.Service.now svc;
      Core.Service.lock svc ~node:0 ~name:"data" ~mode:Core.Mode.W (fun t ->
          writer_served := Some (Core.Service.now svc);
          Core.Service.schedule svc ~after:20.0 (fun () -> Core.Service.unlock svc t)));
  Core.Service.run svc;
  let wait =
    match !writer_served with
    | Some t -> t -. !writer_issued
    | None -> infinity
  in
  (wait, !reads)

let () =
  let wait_frozen, reads_frozen = run_one ~freezing:true in
  let wait_free, reads_free = run_one ~freezing:false in
  Printf.printf "Writer wait with freezing (Rule 6):    %8.0f ms  (%d reads completed)\n"
    wait_frozen reads_frozen;
  Printf.printf "Writer wait with freezing disabled:    %8.0f ms  (%d reads completed)\n"
    wait_free reads_free;
  if wait_frozen < wait_free then
    Printf.printf "\nFreezing cut the writer's wait by %.1fx.\n" (wait_free /. wait_frozen)
  else
    Printf.printf "\n(Unexpected: freezing did not help under this schedule.)\n"
