(* A three-level hierarchy: store -> collections -> documents, built on
   the Core.Hierarchy planner (Gray et al.'s multi-granularity protocol):

   * reading a document takes   IR(store) . IR(collection) . R(doc)
   * editing a document takes   IW(store) . IW(collection) . W(doc)
   * reindexing a collection    IR(store) . R(collection)  - blocks edits
     in that collection but not elsewhere
   * a store-wide backup takes  R(store)  - concurrent with all reads,
     blocks all writes everywhere
   * schema migration takes     W(store)  - fully exclusive.

   Run with:  dune exec examples/document_store.exe *)

module H = Core.Hierarchy

let collections = [ "users"; "orders" ]
let docs_per_collection = 3

let doc_name c d = Printf.sprintf "%s/doc%d" c d

let hierarchy =
  H.create
    (("store", None)
    :: List.map (fun c -> (c, Some "store")) collections
    @ List.concat_map
        (fun c -> List.init docs_per_collection (fun d -> (doc_name c d, Some c)))
        collections)

let () =
  let nodes = 10 in
  let svc = Core.Service.create ~nodes ~seed:20260706L ~oracle:true ~locks:(H.names hierarchy) () in
  let log fmt =
    Printf.ksprintf (fun s -> Printf.printf "[%8.1f ms] %s\n" (Core.Service.now svc) s) fmt
  in
  let completed = ref 0 in
  let finish what = incr completed; log "%s" what in

  let op node ~name ~access ~hold what =
    H.acquire hierarchy svc ~node ~name ~access (fun g ->
        Core.Service.schedule svc ~after:hold (fun () ->
            H.release svc g;
            finish what))
  in
  let read_doc node c d =
    op node ~name:(doc_name c d) ~access:H.Read ~hold:10.0
      (Printf.sprintf "node %d read %s" node (doc_name c d))
  in
  let edit_doc node c d =
    op node ~name:(doc_name c d) ~access:H.Write ~hold:20.0
      (Printf.sprintf "node %d edited %s" node (doc_name c d))
  in
  let reindex node c =
    op node ~name:c ~access:H.Read ~hold:40.0 (Printf.sprintf "node %d reindexed %s" node c)
  in
  let backup node =
    op node ~name:"store" ~access:H.Read ~hold:60.0
      (Printf.sprintf "node %d completed a store backup" node)
  in
  let migrate node =
    op node ~name:"store" ~access:H.Write ~hold:30.0
      (Printf.sprintf "node %d ran the schema migration" node)
  in

  (* A mixed schedule. *)
  let rng = Core.Rng.create ~seed:99L in
  for node = 0 to nodes - 1 do
    for i = 0 to 3 do
      Core.Service.schedule svc
        ~after:(Core.Rng.uniform rng ~lo:0.0 ~hi:800.0)
        (fun () ->
          let c = Core.Rng.pick rng collections in
          let d = Core.Rng.int rng ~bound:docs_per_collection in
          match (node + i) mod 10 with
          | 0 | 1 | 2 | 3 | 4 | 5 -> read_doc node c d
          | 6 | 7 -> edit_doc node c d
          | 8 -> reindex node c
          | _ -> ())
    done
  done;
  Core.Service.schedule svc ~after:300.0 (fun () -> backup 0);
  Core.Service.schedule svc ~after:700.0 (fun () -> migrate 1);

  Core.Service.run svc;
  Printf.printf "\n%d operations completed by t=%.1f ms; messages: %s\n" !completed
    (Core.Service.now svc)
    (Format.asprintf "%a" Core.Counters.pp (Core.Service.message_counters svc))
