(* Quickstart: eight nodes share one hierarchically locked table.

   Readers take IR on the table plus R on a row; a writer takes W on the
   whole table. The protocol keeps readers concurrent, serializes the
   writer, and (thanks to cached grants) repeat reads cost no messages.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  let nodes = 8 in
  let svc =
    Core.Service.create ~nodes ~seed:7L
      ~locks:[ "table"; "row:0"; "row:1"; "row:2"; "row:3" ]
      ()
  in
  let log fmt =
    Printf.ksprintf (fun s -> Printf.printf "[%8.1f ms] %s\n" (Core.Service.now svc) s) fmt
  in

  (* Every node reads one row twice (the second read is a cache hit). *)
  for node = 0 to nodes - 1 do
    let row = Printf.sprintf "row:%d" (node mod 4) in
    let read_once k =
      Core.Service.lock svc ~node ~name:"table" ~mode:Core.Mode.IR (fun table ->
          Core.Service.lock svc ~node ~name:row ~mode:Core.Mode.R (fun r ->
              log "node %d reads %s" node row;
              Core.Service.schedule svc ~after:15.0 (fun () ->
                  Core.Service.unlock svc r;
                  Core.Service.unlock svc table;
                  k ())))
    in
    Core.Service.schedule svc ~after:(float_of_int (10 * node)) (fun () ->
        read_once (fun () ->
            Core.Service.schedule svc ~after:50.0 (fun () -> read_once (fun () -> ()))))
  done;

  (* Node 0 eventually rewrites the whole table. *)
  Core.Service.schedule svc ~after:400.0 (fun () ->
      Core.Service.lock svc ~node:0 ~name:"table" ~mode:Core.Mode.W (fun w ->
          log "node 0 holds the exclusive table lock";
          Core.Service.schedule svc ~after:15.0 (fun () ->
              Core.Service.unlock svc w;
              log "node 0 released the table")));

  Core.Service.run svc;
  Printf.printf "\nDone at t=%.1f ms. Message totals: %s\n" (Core.Service.now svc)
    (Format.asprintf "%a" Core.Counters.pp (Core.Service.message_counters svc))
