(* The paper's motivating application: a multi-airline reservation system.

   A shared ticket-price table is accessed by every node — mostly entry
   reads (table IR + entry R), some whole-table reads (R), occasional
   upgrade-reads (U, half of which upgrade to W in place), entry writes
   (table IW + entry W) and rare whole-table writes (W). This runs the full
   §4 experiment at a modest size and prints the paper's metrics.

   Run with:  dune exec examples/airline.exe -- [nodes] *)

let () =
  let nodes =
    if Array.length Sys.argv > 1 then max 2 (int_of_string Sys.argv.(1)) else 24
  in
  Printf.printf "Airline reservation workload, %d nodes (paper §4 parameters)\n\n" nodes;
  let rows =
    List.map
      (fun driver ->
        let cfg = Core.Experiment.default_config ~driver ~nodes in
        Core.Experiment.result_row (Core.Experiment.run cfg))
      Core.Experiment.[ Hierarchical; Naimi_same_work; Naimi_pure ]
  in
  print_string (Core.Stats_table.render ~header:Core.Experiment.row_header rows);
  print_newline ();
  let ours = Core.Experiment.run (Core.Experiment.default_config ~driver:Core.Experiment.Hierarchical ~nodes) in
  Printf.printf "Hierarchical message breakdown (per operation):\n";
  List.iter
    (fun (cls, count) ->
      Printf.printf "  %-8s %6.2f\n" (Core.Msg_class.to_string cls)
        (float_of_int count /. float_of_int ours.Core.Experiment.ops))
    ours.Core.Experiment.messages;
  Printf.printf "\nPer request class (count, mean acquisition latency):\n";
  List.iter
    (fun (mode, count, mean) ->
      Printf.printf "  %-3s %5d ops  %8.1f ms\n" (Core.Mode.to_string mode) count mean)
    ours.Core.Experiment.per_class
