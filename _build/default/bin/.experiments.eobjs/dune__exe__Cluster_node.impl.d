bin/cluster_node.ml: Arg Cmd Cmdliner Dcs_modes Dcs_netkit Dcs_proto Dcs_sim Format Int64 List Logs Printf String Term Thread Unix
