bin/cluster_node.mli:
