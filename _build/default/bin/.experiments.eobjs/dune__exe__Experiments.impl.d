bin/experiments.ml: Arg Cmd Cmdliner Dcs_modes Dcs_proto Dcs_runtime Dcs_stats Dcs_workload List Printf Term
