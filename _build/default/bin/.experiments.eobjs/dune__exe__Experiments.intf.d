bin/experiments.mli:
