(* Integration tests: simulated network, clusters with runtime oracles, and
   the end-to-end experiment drivers. *)

open Dcs_runtime
module Airline = Dcs_workload.Airline
module Figures = Dcs_runtime.Figures

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* {1 Net} *)

let test_net_fifo_per_pair () =
  let engine = Dcs_sim.Engine.create () in
  let rng = Dcs_sim.Rng.create ~seed:1L in
  let net = Net.create ~engine ~latency:(Dcs_sim.Dist.uniform_around 100.0) ~rng () in
  let delivered = ref [] in
  for i = 1 to 50 do
    Net.send net ~src:0 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
      ~describe:(fun () -> "m")
      (fun () -> delivered := i :: !delivered)
  done;
  ignore (Dcs_sim.Engine.run engine);
  Alcotest.check
    Alcotest.(list int)
    "in-order delivery" (List.init 50 (fun i -> i + 1))
    (List.rev !delivered);
  checki "in flight drained" 0 (Net.in_flight net);
  checki "counted" 50 (Dcs_proto.Counters.get (Net.counters net) Dcs_proto.Msg_class.Request)

let test_counters () =
  let c = Dcs_proto.Counters.create () in
  Dcs_proto.Counters.incr c Dcs_proto.Msg_class.Request;
  Dcs_proto.Counters.incr c Dcs_proto.Msg_class.Request;
  Dcs_proto.Counters.incr c Dcs_proto.Msg_class.Freeze;
  checki "request" 2 (Dcs_proto.Counters.get c Dcs_proto.Msg_class.Request);
  checki "total" 3 (Dcs_proto.Counters.total c);
  let d = Dcs_proto.Counters.create () in
  Dcs_proto.Counters.incr d Dcs_proto.Msg_class.Freeze;
  Dcs_proto.Counters.merge_into ~dst:c ~src:d;
  checki "merged freeze" 2 (Dcs_proto.Counters.get c Dcs_proto.Msg_class.Freeze);
  Dcs_proto.Counters.reset c;
  checki "reset" 0 (Dcs_proto.Counters.total c)

(* {1 Simulated hlock cluster} *)

let test_cluster_basic_flow () =
  let engine = Dcs_sim.Engine.create () in
  let rng = Dcs_sim.Rng.create ~seed:2L in
  let net = Net.create ~engine ~latency:(Dcs_sim.Dist.uniform_around 50.0) ~rng () in
  let cluster = Hlock_cluster.create ~oracle:true ~net ~nodes:4 ~locks:2 () in
  let got = ref [] in
  let seq1 =
    Hlock_cluster.request cluster ~node:1 ~lock:0 ~mode:Dcs_modes.Mode.R ~on_granted:(fun () ->
        got := 1 :: !got)
  in
  let seq2 =
    Hlock_cluster.request cluster ~node:2 ~lock:1 ~mode:Dcs_modes.Mode.W ~on_granted:(fun () ->
        got := 2 :: !got)
  in
  ignore (Dcs_sim.Engine.run engine);
  checkb "both granted" true (List.mem 1 !got && List.mem 2 !got);
  Hlock_cluster.release cluster ~node:1 ~lock:0 ~seq:seq1;
  Hlock_cluster.release cluster ~node:2 ~lock:1 ~seq:seq2;
  ignore (Dcs_sim.Engine.run engine);
  Alcotest.check Alcotest.(list string) "quiescent" [] (Hlock_cluster.quiescent_violations cluster)

(* Randomized end-to-end simulation with the full oracle, over several
   seeds. This is the main confidence test for the protocol under
   asynchrony (message crossings, token movement, freezes, caching). *)
let sim_stress ~seed ~nodes ~locks ~ops_per_node () =
  let engine = Dcs_sim.Engine.create () in
  let rng = Dcs_sim.Rng.create ~seed in
  let net = Net.create ~engine ~latency:(Dcs_sim.Dist.uniform_around 30.0) ~rng () in
  let cluster = Hlock_cluster.create ~oracle:true ~net ~nodes ~locks () in
  let completed = ref 0 in
  let expected = nodes * ops_per_node in
  for node = 0 to nodes - 1 do
    let nrng = Dcs_sim.Rng.split rng in
    let remaining = ref ops_per_node in
    let rec idle () =
      if !remaining > 0 then
        Dcs_sim.Engine.schedule engine ~after:(Dcs_sim.Rng.uniform nrng ~lo:1.0 ~hi:80.0) start
    and start () =
      let lock = Dcs_sim.Rng.int nrng ~bound:locks in
      let mode = Dcs_sim.Rng.pick nrng Dcs_modes.Mode.all in
      let seq = ref (-1) in
      seq :=
        Hlock_cluster.request cluster ~node ~lock ~mode ~on_granted:(fun () ->
            Dcs_sim.Engine.schedule engine ~after:(Dcs_sim.Rng.uniform nrng ~lo:0.5 ~hi:8.0)
              (fun () ->
                (* Occasionally exercise Rule 7. *)
                if Dcs_modes.Mode.equal mode Dcs_modes.Mode.U && Dcs_sim.Rng.bool nrng then
                  Hlock_cluster.upgrade cluster ~node ~lock ~seq:!seq ~on_upgraded:(fun () ->
                      Dcs_sim.Engine.schedule engine ~after:2.0 (fun () ->
                          Hlock_cluster.release cluster ~node ~lock ~seq:!seq;
                          incr completed;
                          decr remaining;
                          idle ()))
                else begin
                  Hlock_cluster.release cluster ~node ~lock ~seq:!seq;
                  incr completed;
                  decr remaining;
                  idle ()
                end))
    in
    idle ()
  done;
  (match Dcs_sim.Engine.run ~max_events:10_000_000 engine with
  | Dcs_sim.Engine.Drained -> ()
  | _ -> Alcotest.fail "engine did not drain");
  checki "all ops completed (liveness)" expected !completed;
  Alcotest.check Alcotest.(list string) "quiescent" [] (Hlock_cluster.quiescent_violations cluster)

(* Heavy-tailed latency maximizes cross-pair reordering: the adversarial
   delivery schedule for the epoch/custody machinery. *)
let test_sim_stress_heavy_tail () =
  let engine = Dcs_sim.Engine.create () in
  let rng = Dcs_sim.Rng.create ~seed:31L in
  let net =
    Net.create ~engine ~latency:(Dcs_sim.Dist.Exponential { mean = 40.0 }) ~rng ()
  in
  let cluster = Hlock_cluster.create ~oracle:true ~net ~nodes:12 ~locks:3 () in
  let completed = ref 0 in
  for node = 0 to 11 do
    let nrng = Dcs_sim.Rng.split rng in
    let remaining = ref 10 in
    let rec idle () =
      if !remaining > 0 then
        Dcs_sim.Engine.schedule engine ~after:(Dcs_sim.Rng.exponential nrng ~mean:30.0) start
    and start () =
      let lock = Dcs_sim.Rng.int nrng ~bound:3 in
      let mode = Dcs_sim.Rng.pick nrng Dcs_modes.Mode.all in
      let seq = ref (-1) in
      seq :=
        Hlock_cluster.request cluster ~node ~lock ~mode ~on_granted:(fun () ->
            Dcs_sim.Engine.schedule engine ~after:2.0 (fun () ->
                Hlock_cluster.release cluster ~node ~lock ~seq:!seq;
                incr completed;
                decr remaining;
                idle ()))
    in
    idle ()
  done;
  ignore (Dcs_sim.Engine.run ~max_events:10_000_000 engine);
  checki "heavy-tail liveness" 120 !completed;
  Alcotest.check Alcotest.(list string) "quiescent" [] (Hlock_cluster.quiescent_violations cluster)

let test_sim_stress_seeds () =
  List.iter (fun seed -> sim_stress ~seed ~nodes:10 ~locks:3 ~ops_per_node:12 ()) [ 3L; 17L; 101L; 4242L ]

let test_sim_stress_bigger () = sim_stress ~seed:7L ~nodes:24 ~locks:5 ~ops_per_node:10 ()

let test_sim_stress_ablations () =
  List.iter
    (fun config ->
      let engine = Dcs_sim.Engine.create () in
      let rng = Dcs_sim.Rng.create ~seed:5L in
      let net = Net.create ~engine ~latency:(Dcs_sim.Dist.uniform_around 25.0) ~rng () in
      let cluster = Hlock_cluster.create ~config ~oracle:true ~net ~nodes:8 ~locks:2 () in
      let completed = ref 0 in
      for node = 0 to 7 do
        let nrng = Dcs_sim.Rng.split rng in
        let remaining = ref 8 in
        let rec idle () =
          if !remaining > 0 then
            Dcs_sim.Engine.schedule engine ~after:(Dcs_sim.Rng.uniform nrng ~lo:1.0 ~hi:50.0) start
        and start () =
          let lock = Dcs_sim.Rng.int nrng ~bound:2 in
          let mode = Dcs_sim.Rng.pick nrng Dcs_modes.Mode.all in
          let seq = ref (-1) in
          seq :=
            Hlock_cluster.request cluster ~node ~lock ~mode ~on_granted:(fun () ->
                Dcs_sim.Engine.schedule engine ~after:2.0 (fun () ->
                    Hlock_cluster.release cluster ~node ~lock ~seq:!seq;
                    incr completed;
                    decr remaining;
                    idle ()))
        in
        idle ()
      done;
      ignore (Dcs_sim.Engine.run ~max_events:10_000_000 engine);
      checki "ablation liveness" 64 !completed)
    [
      { Dcs_hlock.Node.default_config with Dcs_hlock.Node.caching = false };
      { Dcs_hlock.Node.default_config with Dcs_hlock.Node.freezing = false };
      { Dcs_hlock.Node.default_config with Dcs_hlock.Node.eager_release = true };
      { Dcs_hlock.Node.default_config with Dcs_hlock.Node.grant_edges = false };
      { Dcs_hlock.Node.default_config with Dcs_hlock.Node.reverse_all = true };
    ]

(* {1 Experiment drivers} *)

let test_experiments_small () =
  List.iter
    (fun driver ->
      let cfg = Experiment.default_config ~driver ~nodes:6 in
      let cfg = { cfg with Experiment.oracle = true } in
      let r = Experiment.run cfg in
      checki "all ops" (6 * cfg.Experiment.workload.Airline.ops_per_node) r.Experiment.ops;
      checkb "messages flowed" true (r.Experiment.total_messages > 0);
      checkb "latency sane" true (r.Experiment.mean_latency_ms >= 0.0))
    Experiment.[ Hierarchical; Naimi_same_work; Naimi_pure ]

let test_experiment_determinism () =
  let run () =
    let cfg = Experiment.default_config ~driver:Experiment.Hierarchical ~nodes:8 in
    Experiment.run cfg
  in
  let a = run () and b = run () in
  checki "same messages" a.Experiment.total_messages b.Experiment.total_messages;
  Alcotest.check (Alcotest.float 1e-9) "same latency" a.Experiment.mean_latency_ms
    b.Experiment.mean_latency_ms;
  let c =
    Experiment.run
      { (Experiment.default_config ~driver:Experiment.Hierarchical ~nodes:8) with Experiment.seed = 43L }
  in
  checkb "different seed differs" true (c.Experiment.total_messages <> a.Experiment.total_messages)

(* The paper's qualitative claims, at a size where they are robust:
   hierarchical locking beats Naimi-same-work on latency, and costs no more
   messages per lock request than Naimi-pure. *)
let test_paper_relationships () =
  let run driver =
    Experiment.run (Experiment.default_config ~driver ~nodes:32)
  in
  let ours = run Experiment.Hierarchical in
  let same = run Experiment.Naimi_same_work in
  let pure = run Experiment.Naimi_pure in
  checkb
    (Printf.sprintf "latency: ours %.1f < same-work %.1f" ours.Experiment.latency_factor
       same.Experiment.latency_factor)
    true
    (ours.Experiment.latency_factor < same.Experiment.latency_factor);
  checkb
    (Printf.sprintf "messages/lockreq: ours %.2f <= pure %.2f + 20%%"
       ours.Experiment.msgs_per_lock_request pure.Experiment.msgs_per_lock_request)
    true
    (ours.Experiment.msgs_per_lock_request <= pure.Experiment.msgs_per_lock_request *. 1.2)

let test_result_rows () =
  let r = Experiment.run (Experiment.default_config ~driver:Experiment.Naimi_pure ~nodes:4) in
  checki "row arity" (List.length Experiment.row_header) (List.length (Experiment.result_row r))

(* {1 Topology} *)

let test_topology_factors () =
  let open Dcs_sim in
  Alcotest.check (Alcotest.float 1e-9) "uniform" 1.0 (Topology.factor Topology.uniform ~src:0 ~dst:5);
  let racks = Topology.racks ~rack_size:4 ~remote_factor:3.0 in
  Alcotest.check (Alcotest.float 1e-9) "same rack" 1.0 (Topology.factor racks ~src:1 ~dst:3);
  Alcotest.check (Alcotest.float 1e-9) "cross rack" 3.0 (Topology.factor racks ~src:1 ~dst:4);
  let star = Topology.star ~hub:0 ~spoke_factor:2.0 in
  Alcotest.check (Alcotest.float 1e-9) "to hub" 1.0 (Topology.factor star ~src:3 ~dst:0);
  Alcotest.check (Alcotest.float 1e-9) "spoke to spoke" 2.0 (Topology.factor star ~src:3 ~dst:4);
  checkb "bad rack size" true
    (try ignore (Topology.racks ~rack_size:0 ~remote_factor:2.0); false
     with Invalid_argument _ -> true)

let test_topology_slows_latency () =
  let run topology =
    let cfg = Experiment.default_config ~driver:Experiment.Hierarchical ~nodes:12 in
    (Experiment.run { cfg with Experiment.topology }).Experiment.mean_latency_ms
  in
  let uniform = run Dcs_sim.Topology.uniform in
  let racked = run (Dcs_sim.Topology.racks ~rack_size:6 ~remote_factor:8.0) in
  checkb
    (Printf.sprintf "racked (%.0f ms) slower than uniform (%.0f ms)" racked uniform)
    true (racked > uniform)

(* {1 Figures harness} *)

let test_figures_quick () =
  let nodes = [ 2; 4 ] in
  let series, report = Figures.fig5 ~nodes () in
  checkb "three drivers" true (List.length series = 3);
  checkb "two points each" true
    (List.for_all (fun s -> List.length s.Figures.points = 2) series);
  checkb "report has a table" true (String.length report > 200);
  let csv = Figures.to_csv series in
  checkb "csv rows" true (List.length (String.split_on_char '\n' csv) >= 7);
  let _, fig7 = Figures.fig7 ~nodes () in
  checkb "fig7 rendered" true (String.length fig7 > 100);
  checkb "tables rendered" true (String.length (Figures.tables ()) > 400)

(* {1 Naimi cluster oracle} *)

let test_naimi_cluster_quiescent () =
  let engine = Dcs_sim.Engine.create () in
  let rng = Dcs_sim.Rng.create ~seed:9L in
  let net = Net.create ~engine ~latency:(Dcs_sim.Dist.uniform_around 20.0) ~rng () in
  let cluster = Naimi_cluster.create ~oracle:true ~net ~nodes:5 ~locks:2 () in
  let order = ref [] in
  for node = 0 to 4 do
    Naimi_cluster.request cluster ~node ~lock:0 ~on_acquired:(fun () ->
        order := node :: !order;
        Dcs_sim.Engine.schedule engine ~after:5.0 (fun () ->
            Naimi_cluster.release cluster ~node ~lock:0))
  done;
  ignore (Dcs_sim.Engine.run engine);
  checki "all five entered" 5 (List.length !order);
  Alcotest.check Alcotest.(list string) "quiescent" [] (Naimi_cluster.quiescent_violations cluster)

let () =
  Alcotest.run "dcs_runtime"
    [
      ( "net",
        [
          Alcotest.test_case "fifo per pair" `Quick test_net_fifo_per_pair;
          Alcotest.test_case "counters" `Quick test_counters;
        ] );
      ( "hlock-cluster",
        [
          Alcotest.test_case "basic flow" `Quick test_cluster_basic_flow;
          Alcotest.test_case "stress seeds" `Slow test_sim_stress_seeds;
          Alcotest.test_case "heavy-tail latency" `Slow test_sim_stress_heavy_tail;
          Alcotest.test_case "stress bigger" `Slow test_sim_stress_bigger;
          Alcotest.test_case "stress ablations" `Slow test_sim_stress_ablations;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "all drivers small" `Slow test_experiments_small;
          Alcotest.test_case "determinism" `Slow test_experiment_determinism;
          Alcotest.test_case "paper relationships" `Slow test_paper_relationships;
          Alcotest.test_case "result rows" `Quick test_result_rows;
        ] );
      ( "topology",
        [
          Alcotest.test_case "factors" `Quick test_topology_factors;
          Alcotest.test_case "slows latency" `Slow test_topology_slows_latency;
        ] );
      ( "figures",
        [ Alcotest.test_case "quick harness" `Slow test_figures_quick ] );
      ( "naimi-cluster",
        [ Alcotest.test_case "quiescent" `Quick test_naimi_cluster_quiescent ] );
    ]
