(* Unit tests for the Naimi–Trehel–Arnold baseline. *)

module N = Dcs_naimi.Naimi
module SN = Testkit.Sync_naimi

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let test_root_enters_immediately () =
  let c = SN.create 3 in
  N.request (SN.node c 0);
  checkb "root in CS without messages" true (N.in_cs (SN.node c 0));
  checki "no messages" 0 c.SN.sent;
  N.release (SN.node c 0);
  checkb "left CS" false (N.in_cs (SN.node c 0))

let test_token_travels () =
  let c = SN.create 3 in
  N.request (SN.node c 1);
  SN.settle c;
  checkb "n1 in CS" true (N.in_cs (SN.node c 1));
  checkb "n1 has token" true (N.has_token (SN.node c 1));
  checkb "n0 lost token" false (N.has_token (SN.node c 0));
  (* Path reversal: n0 now points at n1. *)
  Alcotest.check Alcotest.(option int) "n0 father reversed" (Some 1) (N.father (SN.node c 0));
  N.release (SN.node c 1)

let test_fifo_queue () =
  let c = SN.create 4 in
  N.request (SN.node c 1);
  SN.settle c;
  (* n2 and n3 queue behind n1 in request order. *)
  N.request (SN.node c 2);
  SN.settle c;
  N.request (SN.node c 3);
  SN.settle c;
  Alcotest.check Alcotest.(list int) "only n1 in CS" [ 1 ] (SN.in_cs c);
  N.release (SN.node c 1);
  SN.settle c;
  Alcotest.check Alcotest.(list int) "then n2" [ 2 ] (SN.in_cs c);
  N.release (SN.node c 2);
  SN.settle c;
  Alcotest.check Alcotest.(list int) "then n3" [ 3 ] (SN.in_cs c);
  N.release (SN.node c 3);
  Alcotest.check Alcotest.(list int) "acquisition order" [ 1; 2; 3 ] c.SN.acquired

let test_reentrancy_rejected () =
  let c = SN.create 2 in
  N.request (SN.node c 0);
  checkb "double request raises" true
    (try
       N.request (SN.node c 0);
       false
     with Invalid_argument _ -> true);
  N.release (SN.node c 0);
  checkb "release when idle raises" true
    (try
       N.release (SN.node c 0);
       false
     with Invalid_argument _ -> true)

let test_mutual_exclusion_stress () =
  let nodes = 8 in
  let c = SN.create nodes in
  let rng = Dcs_sim.Rng.create ~seed:77L in
  let requesting = Array.make nodes false in
  let completed = ref 0 in
  for _ = 1 to 600 do
    let n = Dcs_sim.Rng.int rng ~bound:nodes in
    let e = SN.node c n in
    if N.in_cs e then begin
      N.release e;
      requesting.(n) <- false;
      incr completed
    end
    else if not (requesting.(n) || N.in_cs e) then begin
      N.request e;
      requesting.(n) <- true
    end;
    SN.settle c;
    if List.length (SN.in_cs c) > 1 then Alcotest.fail "mutual exclusion violated"
  done;
  (* Drain all remaining holders/waiters. *)
  let rec drain guard =
    if guard > 10_000 then Alcotest.fail "drain did not converge";
    match SN.in_cs c with
    | [] -> ()
    | holders ->
        List.iter (fun n -> N.release (SN.node c n); requesting.(n) <- false) holders;
        SN.settle c;
        drain (guard + 1)
  in
  drain 0;
  checkb "work happened" true (!completed > 40)

let test_message_complexity_reasonable () =
  (* Sequential round-robin: amortized messages per CS must stay small
     (path reversal keeps chains short). *)
  let nodes = 32 in
  let c = SN.create nodes in
  let total_cs = 200 in
  let rng = Dcs_sim.Rng.create ~seed:5L in
  for _ = 1 to total_cs do
    let n = Dcs_sim.Rng.int rng ~bound:nodes in
    let e = SN.node c n in
    if not (N.in_cs e) then begin
      N.request e;
      SN.settle c;
      N.release e;
      SN.settle c
    end
  done;
  let per_cs = float_of_int c.SN.sent /. float_of_int total_cs in
  checkb (Printf.sprintf "%.2f msgs/cs < 6" per_cs) true (per_cs < 6.0)

let () =
  Alcotest.run "dcs_naimi"
    [
      ( "naimi",
        [
          Alcotest.test_case "root enters immediately" `Quick test_root_enters_immediately;
          Alcotest.test_case "token travels with reversal" `Quick test_token_travels;
          Alcotest.test_case "fifo queue" `Quick test_fifo_queue;
          Alcotest.test_case "reentrancy rejected" `Quick test_reentrancy_rejected;
          Alcotest.test_case "mutual exclusion stress" `Slow test_mutual_exclusion_stress;
          Alcotest.test_case "message complexity" `Slow test_message_complexity_reasonable;
        ] );
    ]
