test/test_runtime.ml: Alcotest Dcs_hlock Dcs_modes Dcs_proto Dcs_runtime Dcs_sim Dcs_workload Experiment Hlock_cluster List Naimi_cluster Net Printf String Topology
