test/test_hlock.mli:
