test/test_wire.ml: Alcotest Dcs_hlock Dcs_modes Dcs_naimi Dcs_netkit Dcs_wire Mode Mode_set QCheck2 QCheck_alcotest Result String Testkit Unix
