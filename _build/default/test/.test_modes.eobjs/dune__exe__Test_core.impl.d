test/test_core.ml: Alcotest Core List Option Printf QCheck2 QCheck_alcotest String Testkit
