test/test_mcheck.ml: Alcotest Dcs_hlock Dcs_mcheck Dcs_modes Mode
