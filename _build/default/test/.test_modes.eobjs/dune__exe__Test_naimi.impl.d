test/test_naimi.ml: Alcotest Array Dcs_naimi Dcs_sim List Printf Testkit
