test/test_netkit.ml: Alcotest Array Dcs_modes Dcs_netkit Dcs_proto Dcs_sim Int64 List Mutex Printf String Thread
