test/test_stats.ml: Alcotest Dcs_stats Fit Float Histogram List QCheck2 QCheck_alcotest Sample String Summary Table
