test/test_netkit.mli:
