test/test_hlock.ml: Alcotest Dcs_hlock Dcs_modes Dcs_proto Dcs_sim List Mode Mode_set Option QCheck2 QCheck_alcotest Testkit
