test/test_naimi.mli:
