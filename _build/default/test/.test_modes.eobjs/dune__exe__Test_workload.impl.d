test/test_workload.ml: Airline Alcotest Dcs_modes Dcs_sim Dcs_workload Float Hashtbl Mode Option Testkit
