test/test_modes.ml: Alcotest Compat Dcs_modes List Mode Mode_set Option Printf QCheck2 QCheck_alcotest String Testkit
