test/test_sim.ml: Alcotest Array Dcs_sim Dist Engine Float Format Int List Pqueue QCheck2 QCheck_alcotest Result Rng Trace
