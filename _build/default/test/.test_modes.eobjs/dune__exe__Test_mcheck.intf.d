test/test_mcheck.mli:
