(* Tests for the statistics library. *)

open Dcs_stats
module Q = QCheck2

let checkb = Alcotest.check Alcotest.bool
let checkf msg = Alcotest.check (Alcotest.float 1e-6) msg

let naive_mean l = List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let naive_variance l =
  let m = naive_mean l in
  List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 l /. float_of_int (List.length l - 1)

let gen_floats = Q.Gen.(list_size (int_range 2 50) (float_bound_inclusive 1000.0))

let prop_summary_matches_naive =
  Q.Test.make ~name:"summary matches naive mean/variance" ~count:300 gen_floats (fun l ->
      let s = Summary.create () in
      List.iter (Summary.add s) l;
      Float.abs (Summary.mean s -. naive_mean l) < 1e-6
      && Float.abs (Summary.variance s -. naive_variance l) < 1e-4
      && Summary.min s = List.fold_left Float.min infinity l
      && Summary.max s = List.fold_left Float.max neg_infinity l
      && Summary.count s = List.length l)

let prop_summary_merge =
  Q.Test.make ~name:"merge equals adding everything to one" ~count:300
    Q.Gen.(pair gen_floats gen_floats)
    (fun (a, b) ->
      let s1 = Summary.create () and s2 = Summary.create () and all = Summary.create () in
      List.iter (Summary.add s1) a;
      List.iter (Summary.add s2) b;
      List.iter (Summary.add all) (a @ b);
      Summary.merge_into ~dst:s1 ~src:s2;
      Float.abs (Summary.mean s1 -. Summary.mean all) < 1e-6
      && Float.abs (Summary.variance s1 -. Summary.variance all) < 1e-3
      && Summary.count s1 = Summary.count all)

let test_summary_empty () =
  let s = Summary.create () in
  checkf "mean" 0.0 (Summary.mean s);
  checkf "variance" 0.0 (Summary.variance s);
  Alcotest.check Alcotest.int "count" 0 (Summary.count s)

(* {1 Sample / percentiles} *)

let test_percentiles () =
  let s = Sample.create () in
  List.iter (Sample.add s) [ 10.0; 20.0; 30.0; 40.0; 50.0 ];
  checkf "p0" 10.0 (Sample.percentile s 0.0);
  checkf "p100" 50.0 (Sample.percentile s 100.0);
  checkf "median" 30.0 (Sample.median s);
  checkf "p25" 20.0 (Sample.percentile s 25.0);
  checkf "p10 interpolates" 14.0 (Sample.percentile s 10.0)

let prop_percentile_bounds =
  Q.Test.make ~name:"percentiles stay within min/max" ~count:300
    Q.Gen.(pair gen_floats (float_bound_inclusive 100.0))
    (fun (l, p) ->
      let s = Sample.create () in
      List.iter (Sample.add s) l;
      let v = Sample.percentile s p in
      v >= List.fold_left Float.min infinity l && v <= List.fold_left Float.max neg_infinity l)

let prop_sample_mean =
  Q.Test.make ~name:"sample mean matches naive" ~count:200 gen_floats (fun l ->
      let s = Sample.create () in
      List.iter (Sample.add s) l;
      Float.abs (Sample.mean s -. naive_mean l) < 1e-6)

(* {1 Fit} *)

let test_fit_linear_exact () =
  let points = List.init 20 (fun i -> (float_of_int i, (2.0 *. float_of_int i) +. 1.0)) in
  let { Fit.a; b; r2 } = Fit.linear points in
  checkf "slope" 2.0 a;
  checkf "intercept" 1.0 b;
  checkf "r2" 1.0 r2

let test_fit_log_exact () =
  let points = List.init 20 (fun i -> (float_of_int (i + 1), (3.0 *. log (float_of_int (i + 1))) +. 0.5)) in
  let { Fit.a; b; r2 } = Fit.logarithmic points in
  checkf "slope" 3.0 a;
  checkf "intercept" 0.5 b;
  checkf "r2" 1.0 r2

let test_fit_degenerate () =
  Alcotest.check_raises "one point" (Invalid_argument "Fit: need at least two points") (fun () ->
      ignore (Fit.linear [ (1.0, 1.0) ]));
  Alcotest.check_raises "same x" (Invalid_argument "Fit: x values are all equal") (fun () ->
      ignore (Fit.linear [ (1.0, 1.0); (1.0, 2.0) ]));
  Alcotest.check_raises "log of non-positive" (Invalid_argument "Fit.logarithmic: x <= 0")
    (fun () -> ignore (Fit.logarithmic [ (0.0, 1.0); (1.0, 2.0) ]))

(* Fits distinguish shapes: a logarithmic series is fit much better by the
   log model than a linear series is, and vice versa. Used by the
   experiment harness to verify the paper's asymptote claims. *)
let test_fit_discriminates () =
  let log_series = List.init 30 (fun i -> (float_of_int (i + 2), log (float_of_int (i + 2)))) in
  let lin_series = List.init 30 (fun i -> (float_of_int (i + 2), float_of_int (i + 2))) in
  let log_on_log = (Fit.logarithmic log_series).Fit.r2 in
  let lin_on_log = (Fit.linear log_series).Fit.r2 in
  checkb "log fits log better" true (log_on_log > lin_on_log);
  let lin_on_lin = (Fit.linear lin_series).Fit.r2 in
  checkf "line fits line" 1.0 lin_on_lin

(* {1 Histogram} *)

let test_histogram_buckets () =
  let h = Histogram.create ~base:2.0 ~min_value:1.0 () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 3.0; 3.9; 100.0 ];
  Alcotest.check Alcotest.int "count" 5 (Histogram.count h);
  let bs = Histogram.buckets h in
  checkb "bucket (0,1] holds 0.5" true (List.exists (fun (lo, hi, c) -> lo = 0.0 && hi = 1.0 && c = 1) bs);
  checkb "bucket (2,4] holds two" true (List.exists (fun (_, hi, c) -> hi = 4.0 && c = 2) bs);
  checkb "quantile monotone" true (Histogram.quantile h 0.2 <= Histogram.quantile h 0.9);
  checkb "render non-empty" true (String.length (Histogram.render h) > 10);
  Alcotest.check Alcotest.string "empty render" "(empty histogram)\n"
    (Histogram.render (Histogram.create ()))

let prop_histogram_count =
  Q.Test.make ~name:"histogram total equals insertions" ~count:200 gen_floats (fun l ->
      let h = Histogram.create ~min_value:0.5 () in
      List.iter (fun v -> Histogram.add h (Float.abs v +. 0.1)) l;
      Histogram.count h = List.length l
      && List.fold_left (fun acc (_, _, c) -> acc + c) 0 (Histogram.buckets h) = List.length l)

let test_histogram_validation () =
  checkb "bad base" true
    (try ignore (Histogram.create ~base:1.0 ()); false with Invalid_argument _ -> true);
  checkb "bad min" true
    (try ignore (Histogram.create ~min_value:0.0 ()); false with Invalid_argument _ -> true)

(* {1 Table rendering} *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_table_render () =
  let out = Table.render ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  checkb "contains cells" true (contains ~needle:"333" out);
  checkb "has separator" true (contains ~needle:"-+-" out);
  Alcotest.check_raises "ragged" (Invalid_argument "Table.render: ragged row") (fun () ->
      ignore (Table.render ~header:[ "a" ] [ [ "1"; "2" ] ]))

let test_csv_quoting () =
  let out = Table.csv ~header:[ "x" ] [ [ "a,b" ]; [ "say \"hi\"" ] ] in
  checkb "comma quoted" true (contains ~needle:"\"a,b\"" out);
  checkb "quote doubled" true (contains ~needle:"\"say \"\"hi\"\"\"" out)

let test_ascii_plot () =
  let out =
    Table.ascii_plot
      ~series:[ ("ours", [ (1.0, 1.0); (2.0, 2.0) ]); ("base", [ (1.0, 2.0); (2.0, 4.0) ]) ]
      ()
  in
  checkb "legend" true (contains ~needle:"ours" out);
  checkb "nonempty" true (String.length out > 100);
  Alcotest.check Alcotest.string "empty plot" "(empty plot)\n" (Table.ascii_plot ~series:[] ())

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dcs_stats"
    [
      ( "summary",
        [
          Alcotest.test_case "empty" `Quick test_summary_empty;
          qt prop_summary_matches_naive;
          qt prop_summary_merge;
        ] );
      ( "sample",
        [
          Alcotest.test_case "percentiles" `Quick test_percentiles;
          qt prop_percentile_bounds;
          qt prop_sample_mean;
        ] );
      ( "fit",
        [
          Alcotest.test_case "linear exact" `Quick test_fit_linear_exact;
          Alcotest.test_case "log exact" `Quick test_fit_log_exact;
          Alcotest.test_case "degenerate" `Quick test_fit_degenerate;
          Alcotest.test_case "discriminates shapes" `Quick test_fit_discriminates;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "buckets" `Quick test_histogram_buckets;
          qt prop_histogram_count;
          Alcotest.test_case "validation" `Quick test_histogram_validation;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "csv quoting" `Quick test_csv_quoting;
          Alcotest.test_case "ascii plot" `Quick test_ascii_plot;
        ] );
    ]
