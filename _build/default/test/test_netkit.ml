(* Integration tests for the real TCP transport: several runners in one
   process, talking over loopback sockets. *)

module Runner = Dcs_netkit.Runner
module Config = Dcs_netkit.Cluster_config

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let base_port = ref 7600

let make_cluster ~nodes ~locks =
  (* Fresh ports per test to dodge TIME_WAIT. *)
  base_port := !base_port + 16;
  let spec =
    String.concat ","
      (List.init nodes (fun i -> Printf.sprintf "%d:127.0.0.1:%d" i (!base_port + i)))
  in
  let config =
    match Config.parse ~locks spec with Ok c -> c | Error e -> Alcotest.fail e
  in
  let runners = Array.init nodes (fun self -> Runner.create ~config ~self ()) in
  Array.iter Runner.start runners;
  Thread.delay 0.15;
  runners

let stop_all runners = Array.iter Runner.stop runners

let test_remote_grant () =
  let runners = make_cluster ~nodes:2 ~locks:1 in
  let seq = Runner.request_sync runners.(1) ~lock:0 ~mode:Dcs_modes.Mode.R in
  Runner.release runners.(1) ~lock:0 ~seq;
  let seq0 = Runner.request_sync runners.(0) ~lock:0 ~mode:Dcs_modes.Mode.W in
  Runner.release runners.(0) ~lock:0 ~seq:seq0;
  checkb "messages flowed" true (Dcs_proto.Counters.total (Runner.counters runners.(1)) > 0);
  stop_all runners

let test_writer_mutual_exclusion () =
  let runners = make_cluster ~nodes:3 ~locks:1 in
  let in_cs = ref 0 and max_in_cs = ref 0 and m = Mutex.create () in
  let worker self () =
    for _ = 1 to 5 do
      let seq = Runner.request_sync runners.(self) ~lock:0 ~mode:Dcs_modes.Mode.W in
      Mutex.lock m;
      incr in_cs;
      if !in_cs > !max_in_cs then max_in_cs := !in_cs;
      Mutex.unlock m;
      Thread.delay 0.002;
      Mutex.lock m;
      decr in_cs;
      Mutex.unlock m;
      Runner.release runners.(self) ~lock:0 ~seq
    done
  in
  let threads = List.init 3 (fun self -> Thread.create (worker self) ()) in
  List.iter Thread.join threads;
  checki "never two writers at once" 1 !max_in_cs;
  stop_all runners

let test_concurrent_readers_across_processes () =
  let runners = make_cluster ~nodes:4 ~locks:1 in
  (* All four take R; they must all be granted while held concurrently. *)
  let seqs =
    Array.mapi (fun i r -> (i, Runner.request_sync r ~lock:0 ~mode:Dcs_modes.Mode.R)) runners
  in
  Array.iter (fun (i, seq) -> Runner.release runners.(i) ~lock:0 ~seq) seqs;
  stop_all runners

let test_upgrade_over_tcp () =
  let runners = make_cluster ~nodes:2 ~locks:1 in
  let seq = Runner.request_sync runners.(1) ~lock:0 ~mode:Dcs_modes.Mode.U in
  Runner.upgrade_sync runners.(1) ~lock:0 ~seq;
  Runner.release runners.(1) ~lock:0 ~seq;
  stop_all runners

let test_multi_lock_traffic () =
  let runners = make_cluster ~nodes:3 ~locks:3 in
  let done_count = ref 0 and m = Mutex.create () in
  let worker self () =
    let rng = Dcs_sim.Rng.create ~seed:(Int64.of_int (self + 5)) in
    for _ = 1 to 10 do
      let lock = Dcs_sim.Rng.int rng ~bound:3 in
      let mode =
        if Dcs_sim.Rng.float rng < 0.7 then Dcs_modes.Mode.R else Dcs_modes.Mode.W
      in
      let seq = Runner.request_sync runners.(self) ~lock ~mode in
      Thread.delay 0.001;
      Runner.release runners.(self) ~lock ~seq;
      Mutex.lock m;
      incr done_count;
      Mutex.unlock m
    done
  in
  let threads = List.init 3 (fun self -> Thread.create (worker self) ()) in
  List.iter Thread.join threads;
  checki "all ops done" 30 !done_count;
  stop_all runners

let () =
  Alcotest.run "dcs_netkit"
    [
      ( "tcp",
        [
          Alcotest.test_case "remote grant" `Slow test_remote_grant;
          Alcotest.test_case "writer mutual exclusion" `Slow test_writer_mutual_exclusion;
          Alcotest.test_case "concurrent readers" `Slow test_concurrent_readers_across_processes;
          Alcotest.test_case "upgrade over tcp" `Slow test_upgrade_over_tcp;
          Alcotest.test_case "multi-lock traffic" `Slow test_multi_lock_traffic;
        ] );
    ]
