(* Shared helpers for the protocol test suites. *)

open Dcs_modes

(* A tiny synchronous cluster for unit-testing the hierarchical protocol:
   messages go into a global FIFO and are pumped to destinations in order.
   This gives deterministic, perfectly-FIFO delivery — the simplest legal
   network — so unit tests can script exact scenarios (the paper's Figures
   2 and 3). Timing-dependent behaviour is covered separately by the
   discrete-event simulations. *)
module Sync_cluster = struct
  type event =
    | Granted of { node : int; seq : int; mode : Mode.t }
    | Upgraded of { node : int; seq : int }

  type t = {
    mutable nodes : Dcs_hlock.Node.t array;
    mutable wire : (int * int * Dcs_hlock.Msg.t) list;  (* src, dst, msg *)
    mutable events : event list;  (* newest first *)
    mutable sent : int;
    mutable sent_by_class : (Dcs_proto.Msg_class.t * int) list;
  }

  let create ?config n =
    let t =
      { nodes = [||]; wire = []; events = []; sent = 0; sent_by_class = [] }
    in
    let nodes =
      Array.init n (fun id ->
          let send ~dst msg =
            t.sent <- t.sent + 1;
            let cls = Dcs_hlock.Msg.class_of msg in
            let count = try List.assoc cls t.sent_by_class with Not_found -> 0 in
            t.sent_by_class <- (cls, count + 1) :: List.remove_assoc cls t.sent_by_class;
            t.wire <- t.wire @ [ (id, dst, msg) ]
          in
          let on_granted (r : Dcs_hlock.Msg.request) =
            t.events <- Granted { node = id; seq = r.seq; mode = r.mode } :: t.events
          in
          let on_upgraded seq = t.events <- Upgraded { node = id; seq } :: t.events in
          Dcs_hlock.Node.create ?config ~id ~peers:n ~is_token:(id = 0)
            ~parent:(if id = 0 then None else Some 0)
            ~send ~on_granted ~on_upgraded ())
    in
    t.nodes <- nodes;
    t

  let node t i = t.nodes.(i)

  (* Deliver queued messages until quiescent (bounded; raises on runaway). *)
  let settle ?(limit = 10_000) t =
    let steps = ref 0 in
    let rec go () =
      match t.wire with
      | [] -> ()
      | (src, dst, msg) :: rest ->
          incr steps;
          if !steps > limit then failwith "Sync_cluster.settle: message storm";
          t.wire <- rest;
          Dcs_hlock.Node.handle_msg t.nodes.(dst) ~src msg;
          go ()
    in
    go ()

  (* Deliver exactly one queued message; false when idle. *)
  let step t =
    match t.wire with
    | [] -> false
    | (src, dst, msg) :: rest ->
        t.wire <- rest;
        Dcs_hlock.Node.handle_msg t.nodes.(dst) ~src msg;
        true

  let drain_events t =
    let evs = List.rev t.events in
    t.events <- [];
    evs

  let messages_sent t = t.sent

  let sent_of_class t cls = try List.assoc cls t.sent_by_class with Not_found -> 0

  let request t ~node ~mode =
    let seq = Dcs_hlock.Node.request t.nodes.(node) ~mode in
    seq

  let release t ~node ~seq = Dcs_hlock.Node.release t.nodes.(node) ~seq

  let upgrade t ~node ~seq = Dcs_hlock.Node.upgrade t.nodes.(node) ~seq

  let granted t ~node ~seq =
    List.exists
      (function Granted g -> g.node = node && g.seq = seq | Upgraded _ -> false)
      t.events

  let upgraded t ~node ~seq =
    List.exists
      (function Upgraded u -> u.node = node && u.seq = seq | Granted _ -> false)
      t.events

  (* Request + settle + assert served. Returns the ticket. *)
  let acquire t ~node ~mode =
    let seq = request t ~node ~mode in
    settle t;
    if not (granted t ~node ~seq) then
      Alcotest.failf "node %d was not granted %s" node (Mode.to_string mode);
    seq

  (* Global safety: all held (and cached) modes pairwise compatible. *)
  let check_compat t =
    let retained =
      Array.to_list t.nodes
      |> List.concat_map (fun e ->
             List.map (fun (_, m) -> (Dcs_hlock.Node.id e, m)) (Dcs_hlock.Node.held e)
             @ List.map (fun m -> (Dcs_hlock.Node.id e, m)) (Dcs_hlock.Node.cached e))
    in
    let rec pairs = function
      | [] -> ()
      | (n1, m1) :: rest ->
          List.iter
            (fun (n2, m2) ->
              if not (Compat.compatible m1 m2) then
                Alcotest.failf "incompatible retained modes n%d:%s vs n%d:%s" n1
                  (Mode.to_string m1) n2 (Mode.to_string m2))
            rest;
          pairs rest
    in
    pairs retained

  let token_holder t =
    let holders =
      Array.to_list t.nodes |> List.filter Dcs_hlock.Node.is_token |> List.map Dcs_hlock.Node.id
    in
    match holders with
    | [ h ] -> h
    | hs -> Alcotest.failf "expected one token holder, found [%s]"
              (String.concat "," (List.map string_of_int hs))
end

(* Same idea for the Naimi baseline. *)
module Sync_naimi = struct
  type t = {
    mutable nodes : Dcs_naimi.Naimi.t array;
    mutable wire : (int * int * Dcs_naimi.Naimi.msg) list;
    mutable acquired : int list;  (* order of CS entries, oldest first *)
    mutable sent : int;
  }

  let create n =
    let t = { nodes = [||]; wire = []; acquired = []; sent = 0 } in
    let nodes =
      Array.init n (fun id ->
          let send ~dst msg =
            t.sent <- t.sent + 1;
            t.wire <- t.wire @ [ (id, dst, msg) ]
          in
          let on_acquired () = t.acquired <- t.acquired @ [ id ] in
          Dcs_naimi.Naimi.create ~id ~is_root:(id = 0)
            ~father:(if id = 0 then None else Some 0)
            ~send ~on_acquired ())
    in
    t.nodes <- nodes;
    t

  let node t i = t.nodes.(i)

  let settle ?(limit = 10_000) t =
    let steps = ref 0 in
    let rec go () =
      match t.wire with
      | [] -> ()
      | (src, dst, msg) :: rest ->
          incr steps;
          if !steps > limit then failwith "Sync_naimi.settle: message storm";
          t.wire <- rest;
          Dcs_naimi.Naimi.handle_msg t.nodes.(dst) ~src msg;
          go ()
    in
    go ()

  let in_cs t = Array.to_list t.nodes |> List.filter Dcs_naimi.Naimi.in_cs |> List.map Dcs_naimi.Naimi.id
end

(* Alcotest testables. *)
let mode = Alcotest.testable Mode.pp Mode.equal
let mode_set = Alcotest.testable Mode_set.pp Mode_set.equal

(* QCheck generators. *)
let gen_mode = QCheck2.Gen.oneofl Mode.all

let gen_mode_opt = QCheck2.Gen.(oneof [ return None; map Option.some gen_mode ])
