(* Tests for the airline workload generator (paper §4 parameters). *)

open Dcs_modes
open Dcs_workload

let checkb = Alcotest.check Alcotest.bool

let test_default_matches_paper () =
  let c = Airline.default_config in
  let wir, wr, wu, wiw, ww = c.Airline.mix in
  Alcotest.check (Alcotest.float 1e-9) "IR 80%" 0.80 wir;
  Alcotest.check (Alcotest.float 1e-9) "R 10%" 0.10 wr;
  Alcotest.check (Alcotest.float 1e-9) "U 4%" 0.04 wu;
  Alcotest.check (Alcotest.float 1e-9) "IW 5%" 0.05 wiw;
  Alcotest.check (Alcotest.float 1e-9) "W 1%" 0.01 ww;
  Alcotest.check (Alcotest.float 1e-9) "CS mean 15ms" 15.0 (Dcs_sim.Dist.mean c.Airline.cs_time);
  Alcotest.check (Alcotest.float 1e-9) "idle mean 150ms" 150.0 (Dcs_sim.Dist.mean c.Airline.idle_time)

let test_mix_statistics () =
  let c = Airline.default_config in
  let rng = Dcs_sim.Rng.create ~seed:11L in
  let counts = Hashtbl.create 5 in
  let n = 100_000 in
  for _ = 1 to n do
    let cls = Airline.op_class (Airline.sample_op c rng) in
    Hashtbl.replace counts cls (1 + Option.value ~default:0 (Hashtbl.find_opt counts cls))
  done;
  let frac m = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts m)) /. float_of_int n in
  checkb "IR ~80%" true (Float.abs (frac Mode.IR -. 0.80) < 0.01);
  checkb "R ~10%" true (Float.abs (frac Mode.R -. 0.10) < 0.01);
  checkb "U ~4%" true (Float.abs (frac Mode.U -. 0.04) < 0.005);
  checkb "IW ~5%" true (Float.abs (frac Mode.IW -. 0.05) < 0.005);
  checkb "W ~1%" true (Float.abs (frac Mode.W -. 0.01) < 0.003)

let test_op_shapes () =
  let c = Airline.default_config in
  let rng = Dcs_sim.Rng.create ~seed:3L in
  for _ = 1 to 10_000 do
    match Airline.sample_op c rng with
    | Airline.Entry_op { intent; entry_mode; entry } ->
        checkb "entry bounds" true (entry >= 0 && entry < c.Airline.entries);
        (match (intent, entry_mode) with
        | Mode.IR, Mode.R | Mode.IW, Mode.W -> ()
        | _ -> Alcotest.fail "entry op must be IR+R or IW+W")
    | Airline.Table_op { mode; upgrade } -> (
        match mode with
        | Mode.R | Mode.W -> checkb "only U upgrades" false upgrade
        | Mode.U -> ()
        | Mode.IR | Mode.IW -> Alcotest.fail "table ops use R/U/W")
  done

let test_upgrade_fraction () =
  let c = { Airline.default_config with Airline.mix = (0., 0., 1., 0., 0.); upgrade_fraction = 0.5 } in
  let rng = Dcs_sim.Rng.create ~seed:4L in
  let ups = ref 0 and n = 20_000 in
  for _ = 1 to n do
    match Airline.sample_op c rng with
    | Airline.Table_op { upgrade = true; _ } -> incr ups
    | _ -> ()
  done;
  let frac = float_of_int !ups /. float_of_int n in
  checkb "~half upgrade" true (Float.abs (frac -. 0.5) < 0.02)

let test_op_modes_and_labels () =
  Alcotest.check
    (Alcotest.list Testkit.mode)
    "entry op modes" [ Mode.IW; Mode.W ]
    (Airline.op_modes (Airline.Entry_op { intent = Mode.IW; entry_mode = Mode.W; entry = 3 }));
  Alcotest.check
    (Alcotest.list Testkit.mode)
    "table op modes" [ Mode.U ]
    (Airline.op_modes (Airline.Table_op { mode = Mode.U; upgrade = true }));
  Alcotest.check Alcotest.string "label" "IW+W(entry 3)"
    (Airline.op_to_string (Airline.Entry_op { intent = Mode.IW; entry_mode = Mode.W; entry = 3 }));
  Alcotest.check Alcotest.string "upgrade label" "U->W(table)"
    (Airline.op_to_string (Airline.Table_op { mode = Mode.U; upgrade = true }))

let () =
  Alcotest.run "dcs_workload"
    [
      ( "airline",
        [
          Alcotest.test_case "paper defaults" `Quick test_default_matches_paper;
          Alcotest.test_case "mix statistics" `Slow test_mix_statistics;
          Alcotest.test_case "op shapes" `Quick test_op_shapes;
          Alcotest.test_case "upgrade fraction" `Quick test_upgrade_fraction;
          Alcotest.test_case "modes and labels" `Quick test_op_modes_and_labels;
        ] );
    ]
