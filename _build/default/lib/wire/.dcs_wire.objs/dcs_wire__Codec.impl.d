lib/wire/codec.ml: Buf Bytes Char Dcs_hlock Dcs_modes Dcs_naimi Dcs_proto Mode Mode_set Printf String
