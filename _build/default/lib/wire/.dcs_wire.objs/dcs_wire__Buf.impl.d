lib/wire/buf.ml: Buffer Char List Printf String
