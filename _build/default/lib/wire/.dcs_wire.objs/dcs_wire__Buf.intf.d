lib/wire/buf.mli:
