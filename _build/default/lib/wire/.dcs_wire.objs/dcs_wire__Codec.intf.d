lib/wire/codec.mli: Dcs_hlock Dcs_naimi Dcs_proto
