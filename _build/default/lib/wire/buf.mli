(** Primitive binary encoding: LEB128 varints, booleans, strings.

    All integers on the wire are non-negative; signed values are mapped by
    the callers. Decoding raises {!Malformed} on truncated or invalid
    input — never an out-of-bounds exception. *)

exception Malformed of string

(** {1 Writing} *)

type writer

val writer : unit -> writer
val contents : writer -> string
val u8 : writer -> int -> unit

(** Unsigned LEB128; accepts any non-negative OCaml int. Raises
    [Invalid_argument] on negatives. *)
val varint : writer -> int -> unit

val bool : writer -> bool -> unit

(** Length-prefixed bytes. *)
val string : writer -> string -> unit

(** {1 Reading} *)

type reader

val reader : string -> reader

(** True when every byte has been consumed. *)
val at_end : reader -> bool

val read_u8 : reader -> int
val read_varint : reader -> int
val read_bool : reader -> bool
val read_string : reader -> string

(** [read_list r f] reads a varint count then [count] elements. *)
val read_list : reader -> (reader -> 'a) -> 'a list

(** [list w f l] writes a varint count then the elements. *)
val list : writer -> (writer -> 'a -> unit) -> 'a list -> unit
