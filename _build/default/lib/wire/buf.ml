exception Malformed of string

type writer = Buffer.t

let writer () = Buffer.create 64

let contents = Buffer.contents

let u8 w v = Buffer.add_char w (Char.chr (v land 0xff))

let varint w v =
  if v < 0 then invalid_arg "Buf.varint: negative";
  let rec go v =
    if v < 0x80 then u8 w v
    else begin
      u8 w (0x80 lor (v land 0x7f));
      go (v lsr 7)
    end
  in
  go v

let bool w b = u8 w (if b then 1 else 0)

let string w s =
  varint w (String.length s);
  Buffer.add_string w s

type reader = { data : string; mutable pos : int }

let reader data = { data; pos = 0 }

let at_end r = r.pos >= String.length r.data

let read_u8 r =
  if r.pos >= String.length r.data then raise (Malformed "truncated u8");
  let v = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  v

let read_varint r =
  let rec go shift acc =
    if shift > 62 then raise (Malformed "varint too long");
    let b = read_u8 r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_bool r =
  match read_u8 r with
  | 0 -> false
  | 1 -> true
  | n -> raise (Malformed (Printf.sprintf "bad bool %d" n))

let read_string r =
  let len = read_varint r in
  if r.pos + len > String.length r.data then raise (Malformed "truncated string");
  let s = String.sub r.data r.pos len in
  r.pos <- r.pos + len;
  s

let read_list r f =
  let n = read_varint r in
  if n > 1_000_000 then raise (Malformed "list too long");
  List.init n (fun _ -> f r)

let list w f l =
  varint w (List.length l);
  List.iter (f w) l
