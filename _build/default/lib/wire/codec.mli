(** Wire format for protocol messages.

    An envelope identifies the sending node and the lock object; the
    payload is either a hierarchical-protocol message or a Naimi baseline
    message. Frames are versioned: decoding rejects unknown versions with
    {!Buf.Malformed}.

    Framing for stream transports is a 4-byte big-endian length prefix
    followed by the encoded envelope ({!write_frame} / {!read_frame}). *)

type payload =
  | Hlock of Dcs_hlock.Msg.t
  | Naimi of Dcs_naimi.Naimi.msg

type envelope = {
  src : Dcs_proto.Node_id.t;
  lock : int;
  payload : payload;
}

(** Current format version, encoded into every message. *)
val version : int

val encode : envelope -> string

(** Raises {!Buf.Malformed} on garbage, truncation or version mismatch. *)
val decode : string -> envelope

(** {1 Stream framing} *)

(** Largest accepted frame (1 MiB); {!read_frame} rejects bigger ones. *)
val max_frame : int

(** Write one length-prefixed frame. *)
val write_frame : out_channel -> envelope -> unit

(** Read one frame; [None] on clean end-of-stream at a frame boundary.
    Raises {!Buf.Malformed} on mid-frame truncation or oversized frames. *)
val read_frame : in_channel -> envelope option
