(** Multi-granularity lock hierarchies.

    The paper's evaluation uses two levels (table → entries); real
    deployments want arbitrary trees (database → table → page → row, or
    store → collection → document). This module plans the intention-mode
    chains of Gray et al.'s multi-granularity protocol over any declared
    tree: accessing a resource takes [IR]/[IW] on every ancestor, top-down,
    and the requested mode on the resource itself — release is bottom-up.

    The planner is pure; {!acquire} executes a plan against a
    {!Core.Service.t} (the hierarchy's names must all be lock names of the
    service). *)

type t

(** [create specs] declares resources as [(name, parent)] pairs; [None]
    parents are roots. Raises [Invalid_argument] on duplicate names,
    unknown parents, or cycles. Order of declaration does not matter. *)
val create : (string * string option) list -> t

(** All resource names, parents before children (a valid creation order
    for {!Core.Service.create}'s [locks]). *)
val names : t -> string list

(** Ancestors of [name], outermost first (excluding [name] itself).
    Raises [Not_found] for unknown names. *)
val ancestors : t -> string -> string list

(** The access classes of multi-granularity locking. *)
type access =
  | Read  (** [R] on the target, [IR] on ancestors *)
  | Write  (** [W] on the target, [IW] on ancestors *)
  | Upgrade_read  (** [U] on the target (upgradeable later), [IW] on
                      ancestors so the upgrade never violates the
                      hierarchy *)
  | Intend_read  (** [IR] on the target and ancestors: announce finer
                      reads below without locking the target itself *)
  | Intend_write  (** [IW] on the target and ancestors *)

(** [plan t ~name ~access] is the lock sequence, top-down:
    [(lock-name, mode)] pairs ending with the target. *)
val plan : t -> name:string -> access:access -> (string * Dcs_modes.Mode.t) list

(** {1 Execution against a service} *)

(** A granted plan: the tickets for the whole chain. *)
type grant

(** [acquire t svc ~node ~name ~access k] takes the plan's locks in order
    and calls [k grant] once the whole chain is held. [priority] applies
    to every request in the chain. *)
val acquire :
  ?priority:int ->
  t ->
  Service.t ->
  node:int ->
  name:string ->
  access:access ->
  (grant -> unit) ->
  unit

(** Release every lock of the chain, finest first. *)
val release : Service.t -> grant -> unit

(** The ticket for the target resource itself (e.g. to [change_mode] an
    [Upgrade_read] grant to [W]). *)
val target_ticket : grant -> Service.ticket
