lib/core/hierarchy.mli: Dcs_modes Service
