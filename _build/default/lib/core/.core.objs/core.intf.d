lib/core/core.mli: Dcs_hlock Dcs_modes Dcs_naimi Dcs_proto Dcs_runtime Dcs_sim Dcs_stats Dcs_workload Hierarchy Service
