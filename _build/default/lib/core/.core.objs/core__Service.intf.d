lib/core/service.mli: Dcs_hlock Dcs_modes Dcs_proto Dcs_sim
