lib/core/hierarchy.ml: Dcs_modes Hashtbl List Mode Printf Service
