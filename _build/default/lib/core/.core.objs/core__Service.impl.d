lib/core/service.ml: Dcs_modes Dcs_runtime Dcs_sim Hashtbl List Printf
