module Mode = Dcs_modes.Mode
module Rng = Dcs_sim.Rng
module Dist = Dcs_sim.Dist
module Engine = Dcs_sim.Engine
module Net = Dcs_runtime.Net
module Hlock_cluster = Dcs_runtime.Hlock_cluster

  type ticket = {
    node : int;
    lock : int;
    mutable seq : int;
    mutable state : [ `Held | `Released | `Abandoned ];
  }

  type t = {
    engine : Engine.t;
    net : Net.t;
    cluster : Hlock_cluster.t;
    names : string list;
    index : (string, int) Hashtbl.t;
    mutable outstanding : int;
    kick_scheduled : bool ref;
  }

  let create ?config ?(latency = Dist.uniform_around 150.0) ?(seed = 42L) ?(oracle = false)
      ~nodes ~locks () =
    if locks = [] then invalid_arg "Service.create: need at least one lock name";
    let index = Hashtbl.create 16 in
    List.iteri
      (fun i name ->
        if Hashtbl.mem index name then
          invalid_arg (Printf.sprintf "Service.create: duplicate lock name %S" name);
        Hashtbl.replace index name i)
      locks;
    let engine = Engine.create () in
    let rng = Rng.create ~seed in
    let net = Net.create ~engine ~latency ~rng () in
    let cluster = Hlock_cluster.create ?config ~oracle ~net ~nodes ~locks:(List.length locks) () in
    { engine; net; cluster; names = locks; index; outstanding = 0; kick_scheduled = ref false }

  let lock_names t = t.names

  let lock_id t name =
    match Hashtbl.find_opt t.index name with
    | Some i -> i
    | None -> raise Not_found

  (* The custody watchdog runs while requests are outstanding. *)
  let rec ensure_kicking t =
    if not !(t.kick_scheduled) then begin
      t.kick_scheduled := true;
      Engine.schedule t.engine ~after:(8.0 *. Net.mean_latency t.net) (fun () ->
          t.kick_scheduled := false;
          if t.outstanding > 0 then begin
            Hlock_cluster.kick_all t.cluster;
            ensure_kicking t
          end)
    end

  let lock ?priority t ~node ~name ~mode k =
    let lock = lock_id t name in
    t.outstanding <- t.outstanding + 1;
    ensure_kicking t;
    (* The grant may fire synchronously inside [request], before we know
       the ticket number: bind it through the ticket record. *)
    let ticket = { node; lock; seq = -1; state = `Held } in
    let granted_early = ref false in
    let seq =
      Hlock_cluster.request ?priority t.cluster ~node ~lock ~mode ~on_granted:(fun () ->
          t.outstanding <- t.outstanding - 1;
          if ticket.seq >= 0 then k ticket else granted_early := true)
    in
    ticket.seq <- seq;
    if !granted_early then k ticket

  let try_lock t ~node ~name ~mode ~timeout k =
    let lock = lock_id t name in
    t.outstanding <- t.outstanding + 1;
    ensure_kicking t;
    let answered = ref false in
    let ticket = { node; lock; seq = -1; state = `Held } in
    let granted_early = ref false in
    let on_grant () =
      t.outstanding <- t.outstanding - 1;
      if !answered then begin
        (* The caller already gave up: release the late grant. *)
        ticket.state <- `Abandoned;
        Hlock_cluster.release t.cluster ~node ~lock ~seq:ticket.seq
      end
      else begin
        answered := true;
        k (Some ticket)
      end
    in
    let seq =
      Hlock_cluster.request t.cluster ~node ~lock ~mode ~on_granted:(fun () ->
          if ticket.seq >= 0 then on_grant () else granted_early := true)
    in
    ticket.seq <- seq;
    if !granted_early then on_grant ();
    Engine.schedule t.engine ~after:timeout (fun () ->
        if not !answered then begin
          answered := true;
          k None
        end)

  let unlock t ticket =
    (match ticket.state with
    | `Held -> ()
    | `Released | `Abandoned -> invalid_arg "Service.unlock: ticket already released");
    ticket.state <- `Released;
    Hlock_cluster.release t.cluster ~node:ticket.node ~lock:ticket.lock ~seq:ticket.seq

  let change_mode t ticket ~mode k =
    if not (Mode.equal mode Mode.W) then
      invalid_arg "Service.change_mode: only the U->W upgrade is supported";
    (match ticket.state with
    | `Held -> ()
    | `Released | `Abandoned -> invalid_arg "Service.change_mode: ticket not held");
    t.outstanding <- t.outstanding + 1;
    ensure_kicking t;
    Hlock_cluster.upgrade t.cluster ~node:ticket.node ~lock:ticket.lock ~seq:ticket.seq
      ~on_upgraded:(fun () ->
        t.outstanding <- t.outstanding - 1;
        k ())

  let now t = Engine.now t.engine

  let schedule t ~after f = Engine.schedule t.engine ~after f

  let run t =
    (match Engine.run t.engine with
    | Engine.Drained -> ()
    | Engine.Horizon_reached | Engine.Event_limit ->
        failwith "Service.run: simulation did not drain");
    if t.outstanding > 0 then
      failwith (Printf.sprintf "Service.run: %d requests never granted" t.outstanding)

  let message_counters t = Net.counters t.net

  let mean_latency t = Net.mean_latency t.net
