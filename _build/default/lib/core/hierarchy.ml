open Dcs_modes

type t = {
  parents : (string, string option) Hashtbl.t;
  ordered : string list;  (* parents before children *)
}

let create specs =
  let parents = Hashtbl.create 16 in
  List.iter
    (fun (name, parent) ->
      if Hashtbl.mem parents name then
        invalid_arg (Printf.sprintf "Hierarchy.create: duplicate resource %S" name);
      Hashtbl.replace parents name parent)
    specs;
  Hashtbl.iter
    (fun name parent ->
      match parent with
      | None -> ()
      | Some p ->
          if not (Hashtbl.mem parents p) then
            invalid_arg (Printf.sprintf "Hierarchy.create: %S has unknown parent %S" name p))
    parents;
  (* Depth computation doubles as the cycle check. *)
  let rec depth seen name =
    if List.mem name seen then
      invalid_arg (Printf.sprintf "Hierarchy.create: cycle through %S" name);
    match Hashtbl.find parents name with
    | None -> 0
    | Some p -> 1 + depth (name :: seen) p
  in
  let ordered =
    List.map fst specs
    |> List.map (fun name -> (depth [] name, name))
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
    |> List.map snd
  in
  { parents; ordered }

let names t = t.ordered

let ancestors t name =
  if not (Hashtbl.mem t.parents name) then raise Not_found;
  let rec up acc name =
    match Hashtbl.find t.parents name with
    | None -> acc
    | Some p -> up (p :: acc) p
  in
  up [] name

type access =
  | Read
  | Write
  | Upgrade_read
  | Intend_read
  | Intend_write

let modes_of = function
  | Read -> (Mode.IR, Mode.R)
  | Write -> (Mode.IW, Mode.W)
  | Upgrade_read -> (Mode.IW, Mode.U)
  | Intend_read -> (Mode.IR, Mode.IR)
  | Intend_write -> (Mode.IW, Mode.IW)

let plan t ~name ~access =
  let intent, target = modes_of access in
  List.map (fun a -> (a, intent)) (ancestors t name) @ [ (name, target) ]

type grant = {
  tickets : Service.ticket list;  (* top-down, target last *)
}

let acquire ?priority t svc ~node ~name ~access k =
  let chain = plan t ~name ~access in
  let rec go acc = function
    | [] -> k { tickets = List.rev acc }
    | (lock_name, mode) :: rest ->
        Service.lock ?priority svc ~node ~name:lock_name ~mode (fun ticket ->
            go (ticket :: acc) rest)
  in
  go [] chain

let release svc grant = List.iter (Service.unlock svc) (List.rev grant.tickets)

let target_ticket grant =
  match List.rev grant.tickets with
  | target :: _ -> target
  | [] -> invalid_arg "Hierarchy.target_ticket: empty grant"
