lib/workload/airline.mli: Dcs_modes Dcs_sim Mode
