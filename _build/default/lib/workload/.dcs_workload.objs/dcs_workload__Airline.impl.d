lib/workload/airline.ml: Dcs_modes Dcs_sim Mode Printf
