lib/hlock/msg.ml: Dcs_modes Dcs_proto Format List Mode Mode_set Msg_class Node_id Printf String
