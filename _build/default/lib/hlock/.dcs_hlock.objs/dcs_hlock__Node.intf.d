lib/hlock/node.mli: Dcs_modes Dcs_proto Format Mode Mode_set Msg Node_id
