lib/hlock/msg.mli: Dcs_modes Dcs_proto Format Mode Mode_set Msg_class Node_id
