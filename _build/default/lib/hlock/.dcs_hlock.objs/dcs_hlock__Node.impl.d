lib/hlock/node.ml: Compat Dcs_modes Dcs_proto Format Hashtbl List Mode Mode_set Msg Node_id Printf String
