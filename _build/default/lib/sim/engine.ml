type t = {
  queue : (float, unit -> unit) Pqueue.t;
  mutable clock : float;
  mutable processed : int;
}

type outcome =
  | Drained
  | Horizon_reached
  | Event_limit

let create () = { queue = Pqueue.create ~compare:Float.compare; clock = 0.0; processed = 0 }

let now t = t.clock

let schedule_at t ~time f =
  let time = if time < t.clock then t.clock else time in
  Pqueue.add t.queue time f

let schedule t ~after f =
  let after = if after < 0.0 then 0.0 else after in
  schedule_at t ~time:(t.clock +. after) f

let step t =
  match Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
      t.clock <- time;
      t.processed <- t.processed + 1;
      f ();
      true

let run ?until ?(max_events = 100_000_000) t =
  let rec loop budget =
    if budget = 0 then Event_limit
    else
      match Pqueue.peek t.queue with
      | None -> Drained
      | Some (time, _) -> (
          match until with
          | Some horizon when time > horizon ->
              t.clock <- horizon;
              Horizon_reached
          | _ ->
              ignore (step t);
              loop (budget - 1))
  in
  loop max_events

let pending t = Pqueue.length t.queue

let events_processed t = t.processed
