type ('k, 'v) entry = { key : 'k; seq : int; value : 'v }

type ('k, 'v) t = {
  compare : 'k -> 'k -> int;
  mutable data : ('k, 'v) entry option array;
  mutable size : int;
  mutable next_seq : int;
}

let create ~compare = { compare; data = Array.make 16 None; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let entry_lt t a b =
  let c = t.compare a.key b.key in
  if c <> 0 then c < 0 else a.seq < b.seq

let get t i =
  match t.data.(i) with
  | Some e -> e
  | None -> assert false

let grow t =
  if t.size = Array.length t.data then begin
    let data = Array.make (2 * Array.length t.data) None in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_lt t (get t i) (get t parent) then begin
      let tmp = t.data.(i) in
      t.data.(i) <- t.data.(parent);
      t.data.(parent) <- tmp;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && entry_lt t (get t l) (get t !smallest) then smallest := l;
  if r < t.size && entry_lt t (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(!smallest);
    t.data.(!smallest) <- tmp;
    sift_down t !smallest
  end

let add t key value =
  grow t;
  t.data.(t.size) <- Some { key; seq = t.next_seq; value };
  t.next_seq <- t.next_seq + 1;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let peek t = if t.size = 0 then None else
  let e = get t 0 in
  Some (e.key, e.value)

let pop t =
  if t.size = 0 then None
  else begin
    let e = get t 0 in
    t.size <- t.size - 1;
    t.data.(0) <- t.data.(t.size);
    t.data.(t.size) <- None;
    if t.size > 0 then sift_down t 0;
    Some (e.key, e.value)
  end

let clear t =
  Array.fill t.data 0 (Array.length t.data) None;
  t.size <- 0

let drain t =
  let rec go acc = match pop t with None -> List.rev acc | Some kv -> go (kv :: acc) in
  go []
