(** Sampling distributions for workload and network parameters.

    The paper randomizes critical-section length, inter-request idle time
    and network latency around mean values (15 ms / 150 ms / 150 ms); the
    exact distribution is unspecified, so each is configurable here. *)

type t =
  | Constant of float
      (** Always the same value. *)
  | Uniform of { lo : float; hi : float }
      (** Uniform on [lo, hi). *)
  | Exponential of { mean : float }
      (** Exponential with the given mean. *)
  | Shifted_exponential of { min : float; mean : float }
      (** [min] plus an exponential with mean [mean - min]; models a
          fixed propagation delay plus random queueing. Requires
          [mean > min]. *)

(** Draw a sample (always >= 0; negative draws are clamped to 0). *)
val sample : t -> Rng.t -> float

(** Expected value of the distribution. *)
val mean : t -> float

(** [uniform_around m] is the uniform distribution on [0.5m, 1.5m): a
    simple "randomized with mean m" model used as the default. *)
val uniform_around : float -> t

(** Parse ["const:15"], ["uniform:10:20"], ["exp:150"],
    ["sexp:50:150"] or a bare number (treated as {!uniform_around}). *)
val of_string : string -> (t, string) result

(** Inverse of {!of_string}, canonical form. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
