(** Cluster topology models: per-pair latency scaling.

    The paper's testbed is a single switched LAN (uniform latency). Real
    deployments often span racks or sites; a topology scales the base
    latency distribution per directed node pair, letting experiments
    measure how the protocol's dynamic tree adapts to locality. *)

type t

(** Every pair at the base latency. *)
val uniform : t

(** [racks ~rack_size ~remote_factor]: nodes are grouped into consecutive
    racks of [rack_size]; traffic between different racks is scaled by
    [remote_factor] (≥ 1). *)
val racks : rack_size:int -> remote_factor:float -> t

(** [star ~hub ~spoke_factor]: traffic not involving [hub] pays
    [spoke_factor] (models a well-placed coordinator machine). *)
val star : hub:int -> spoke_factor:float -> t

(** Custom scaling function. *)
val custom : (int -> int -> float) -> t

(** Latency multiplier for a directed pair. *)
val factor : t -> src:int -> dst:int -> float

val to_string : t -> string
