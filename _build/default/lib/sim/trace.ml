type t = {
  enabled : bool;
  capacity : int option;
  mutable entries : (float * string) list;  (* newest first *)
  mutable length : int;
  mutable hash : int64;
}

let create ?capacity ~enabled () = { enabled; capacity; entries = []; length = 0; hash = 0xcbf29ce484222325L }

let enabled t = t.enabled

let fnv_prime = 0x100000001b3L

let hash_string h s =
  let h = ref h in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let record t ~time msg =
  if t.enabled then begin
    let line = msg () in
    t.hash <- hash_string (hash_string t.hash (Printf.sprintf "%.6f" time)) line;
    t.entries <- (time, line) :: t.entries;
    t.length <- t.length + 1;
    match t.capacity with
    | Some cap when t.length > cap ->
        (* Drop the oldest entry; O(n) but traces are bounded and cold. *)
        t.entries <- List.filteri (fun i _ -> i < cap) t.entries;
        t.length <- cap
    | _ -> ()
  end

let entries t = List.rev t.entries

let length t = t.length

let digest t = t.hash

let pp ppf t =
  List.iter (fun (time, line) -> Format.fprintf ppf "[%10.3f] %s@." time line) (entries t)
