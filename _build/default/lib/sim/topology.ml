type t = {
  label : string;
  factor : int -> int -> float;
}

let uniform = { label = "uniform"; factor = (fun _ _ -> 1.0) }

let racks ~rack_size ~remote_factor =
  if rack_size < 1 then invalid_arg "Topology.racks: rack_size < 1";
  if remote_factor < 1.0 then invalid_arg "Topology.racks: remote_factor < 1";
  {
    label = Printf.sprintf "racks(%d,x%.1f)" rack_size remote_factor;
    factor = (fun src dst -> if src / rack_size = dst / rack_size then 1.0 else remote_factor);
  }

let star ~hub ~spoke_factor =
  if spoke_factor < 1.0 then invalid_arg "Topology.star: spoke_factor < 1";
  {
    label = Printf.sprintf "star(hub=%d,x%.1f)" hub spoke_factor;
    factor = (fun src dst -> if src = hub || dst = hub then 1.0 else spoke_factor);
  }

let custom factor = { label = "custom"; factor }

let factor t ~src ~dst = t.factor src dst

let to_string t = t.label
