(** Mutable binary min-heap priority queue.

    Used as the simulator's event queue; also exposed for reuse. Keys are
    compared with the function supplied at creation; ties are broken by
    insertion order (the queue is stable), which the simulator relies on
    for deterministic event ordering. *)

type ('k, 'v) t

(** [create ~compare] makes an empty queue ordered by [compare]. *)
val create : compare:('k -> 'k -> int) -> ('k, 'v) t

(** Number of stored elements. *)
val length : ('k, 'v) t -> int

val is_empty : ('k, 'v) t -> bool

(** Insert a binding. O(log n). *)
val add : ('k, 'v) t -> 'k -> 'v -> unit

(** Smallest binding, if any; does not remove. O(1). *)
val peek : ('k, 'v) t -> ('k * 'v) option

(** Remove and return the smallest binding. O(log n). *)
val pop : ('k, 'v) t -> ('k * 'v) option

(** Remove all elements. *)
val clear : ('k, 'v) t -> unit

(** Drain into a sorted list (destructive). *)
val drain : ('k, 'v) t -> ('k * 'v) list
