lib/sim/rng.mli:
