lib/sim/topology.ml: Printf
