lib/sim/trace.ml: Char Format Int64 List Printf String
