lib/sim/engine.ml: Float Pqueue
