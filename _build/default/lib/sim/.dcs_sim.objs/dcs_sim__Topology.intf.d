lib/sim/topology.mli:
