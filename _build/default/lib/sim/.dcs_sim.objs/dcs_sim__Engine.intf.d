lib/sim/engine.mli:
