lib/sim/pqueue.ml: Array List
