lib/sim/dist.ml: Format Printf Rng String
