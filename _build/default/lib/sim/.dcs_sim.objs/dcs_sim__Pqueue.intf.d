lib/sim/pqueue.mli:
