type t =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Shifted_exponential of { min : float; mean : float }

let sample d rng =
  let v =
    match d with
    | Constant c -> c
    | Uniform { lo; hi } -> Rng.uniform rng ~lo ~hi
    | Exponential { mean } -> Rng.exponential rng ~mean
    | Shifted_exponential { min; mean } -> min +. Rng.exponential rng ~mean:(mean -. min)
  in
  if v < 0.0 then 0.0 else v

let mean = function
  | Constant c -> c
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean
  | Shifted_exponential { mean; _ } -> mean

let uniform_around m = Uniform { lo = 0.5 *. m; hi = 1.5 *. m }

let of_string s =
  let fail () = Error (Printf.sprintf "Dist.of_string: cannot parse %S" s) in
  match String.split_on_char ':' s with
  | [ "const"; c ] -> (
      match float_of_string_opt c with Some c -> Ok (Constant c) | None -> fail ())
  | [ "uniform"; lo; hi ] -> (
      match (float_of_string_opt lo, float_of_string_opt hi) with
      | Some lo, Some hi when lo <= hi -> Ok (Uniform { lo; hi })
      | _ -> fail ())
  | [ "exp"; m ] -> (
      match float_of_string_opt m with Some mean -> Ok (Exponential { mean }) | None -> fail ())
  | [ "sexp"; min; m ] -> (
      match (float_of_string_opt min, float_of_string_opt m) with
      | Some min, Some mean when mean > min -> Ok (Shifted_exponential { min; mean })
      | _ -> fail ())
  | [ bare ] -> (
      match float_of_string_opt bare with Some m -> Ok (uniform_around m) | None -> fail ())
  | _ -> fail ()

let to_string = function
  | Constant c -> Printf.sprintf "const:%g" c
  | Uniform { lo; hi } -> Printf.sprintf "uniform:%g:%g" lo hi
  | Exponential { mean } -> Printf.sprintf "exp:%g" mean
  | Shifted_exponential { min; mean } -> Printf.sprintf "sexp:%g:%g" min mean

let pp ppf d = Format.pp_print_string ppf (to_string d)
