lib/modes/compat.ml: Array Buffer List Mode Mode_set Option Printf String
