lib/modes/mode.mli: Format
