lib/modes/mode_set.mli: Format Mode
