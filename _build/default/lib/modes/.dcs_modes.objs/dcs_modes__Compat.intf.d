lib/modes/compat.mli: Mode Mode_set
