lib/modes/mode.ml: Format Printf Stdlib String
