lib/modes/mode_set.ml: Format List Mode String
