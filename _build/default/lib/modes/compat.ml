(* One row per mode, in Mode.index order IR R U IW W; true = compatible.
   This is the OMG Concurrency Service matrix (paper Table 1a, Rule 1). *)
let matrix =
  [| (* IR *) [| true; true; true; true; false |]
   ; (* R  *) [| true; true; true; false; false |]
   ; (* U  *) [| true; true; false; false; false |]
   ; (* IW *) [| true; false; false; true; false |]
   ; (* W  *) [| false; false; false; false; false |]
  |]

let compatible (m1 : Mode.t) (m2 : Mode.t) = matrix.(Mode.index m1).(Mode.index m2)

let compatible_owned mo mr =
  match mo with
  | None -> true
  | Some m -> compatible m mr

let compatible_set m = Mode_set.of_list (List.filter (compatible m) Mode.all)

let strength = function
  | None -> 0
  | Some m -> Mode.strength m

let stronger_eq a b = strength a >= strength b

let strictly_weaker a b = strength a < strength b

let max_mode a b = if stronger_eq a b then a else b

let strongest held = List.fold_left (fun acc m -> max_mode acc (Some m)) None held

let can_child_grant ~owned m = compatible_owned owned m && stronger_eq owned (Some m)

let token_can_grant ~owned m = compatible_owned owned m

let token_must_transfer ~owned m =
  token_can_grant ~owned m && strictly_weaker owned (Some m)

let queueable ~pending m =
  match pending with
  | None -> false
  | Some Mode.W -> true
  | Some Mode.U -> ( match m with Mode.IR | Mode.R | Mode.U -> true | Mode.IW | Mode.W -> false)
  | Some _ -> can_child_grant ~owned:pending m

let freeze_set ~owned m =
  let frozen x = compatible_owned owned x && not (compatible x m) in
  Mode_set.of_list (List.filter frozen Mode.all)

let compatible_with_all held m = List.for_all (fun h -> compatible h m) held

(* Rendering of the four decision tables; rows are the "first" mode of each
   table (held/owned/pending), columns the incoming request mode. *)

let owned_rows = None :: List.map Option.some Mode.all

let pp_owned = function
  | None -> "_"
  | Some m -> Mode.to_string m

let render_grid ?(width = 4) ~title ~rows ~row_label ~cell () =
  let b = Buffer.create 256 in
  let pad s = Printf.sprintf "%-*s" width s in
  Buffer.add_string b title;
  Buffer.add_char b '\n';
  let header = "     | " ^ String.concat " " (List.map (fun m -> pad (Mode.to_string m)) Mode.all) in
  Buffer.add_string b header;
  Buffer.add_char b '\n';
  Buffer.add_string b (String.make (String.length header) '-');
  Buffer.add_char b '\n';
  List.iter
    (fun row ->
      Buffer.add_string b (Printf.sprintf "%-4s | " (row_label row));
      List.iter (fun m -> Buffer.add_string b (pad (cell row m) ^ " ")) Mode.all;
      Buffer.add_char b '\n')
    rows;
  Buffer.contents b

let render_table = function
  | `Compat ->
      render_grid ~title:"Table 1(a): compatibility (X = conflict)" ~rows:Mode.all
        ~row_label:Mode.to_string ~cell:(fun r c -> if compatible r c then "." else "X") ()
  | `Child_grant ->
      render_grid ~title:"Table 1(b): non-token grant legality (X = cannot grant)"
        ~rows:owned_rows ~row_label:pp_owned ~cell:(fun r c ->
          if can_child_grant ~owned:r c then "." else "X") ()
  | `Queue_forward ->
      render_grid ~title:"Table 2(a): queue (Q) or forward (F) at a pending non-token node"
        ~rows:owned_rows ~row_label:pp_owned ~cell:(fun r c ->
          if queueable ~pending:r c then "Q" else "F") ()
  | `Freeze ->
      render_grid ~width:11
        ~title:"Table 2(b): modes frozen at the token node (rows: owned; cols: queued request)"
        ~rows:owned_rows ~row_label:pp_owned ~cell:(fun r c ->
          if token_can_grant ~owned:r c then "-"
          else
            let s = freeze_set ~owned:r c in
            if Mode_set.is_empty s then "{}"
            else String.concat "," (List.map Mode.to_string (Mode_set.to_list s)))
        ()
