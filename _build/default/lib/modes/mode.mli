(** Lock modes of the CORBA Concurrency Service hierarchical locking model.

    The five modes, from weakest to strongest (paper §3.1, inequality (1)):
    {ul
    {- [IR] — intention read: announces reads at a finer granularity below.}
    {- [R] — read: shared read access.}
    {- [U] — upgrade: an exclusive read that will later be upgraded to [W];
       conflicts with other [U] holders to preclude upgrade deadlocks.}
    {- [IW] — intention write: announces writes at a finer granularity.}
    {- [W] — write: fully exclusive access.}}

    Strength is a total preorder: [IR < R < U = IW < W]. The absent mode
    (the paper's ⊥) is represented by [t option]'s [None] throughout this
    library. *)

type t =
  | IR  (** intention read *)
  | R   (** read *)
  | U   (** upgrade (exclusive read, upgradeable to [W]) *)
  | IW  (** intention write *)
  | W   (** write *)

(** All five modes, in increasing strength order (with [U] before [IW]). *)
val all : t list

(** Structural equality. *)
val equal : t -> t -> bool

(** Total order used for deterministic iteration (not mode strength);
    coincides with the declaration order [IR < R < U < IW < W]. *)
val compare : t -> t -> int

(** Strength rank per inequality (1) of the paper: [IR]→1, [R]→2,
    [U]→3, [IW]→3, [W]→4. The absent mode ⊥ has rank 0 (see
    {!Compat.strength}). *)
val strength : t -> int

(** [stronger_eq a b] is [strength a >= strength b]. Note [U] and [IW]
    are mutually [stronger_eq]. *)
val stronger_eq : t -> t -> bool

(** Canonical short name: ["IR"], ["R"], ["U"], ["IW"], ["W"]. *)
val to_string : t -> string

(** Inverse of {!to_string} (case-insensitive). *)
val of_string : string -> t option

(** Formatter printing the canonical short name. *)
val pp : Format.formatter -> t -> unit

(** Small dense index in [0..4], following [all]'s order. Useful for
    table-driven lookups and bitsets. *)
val index : t -> int

(** Inverse of {!index}; raises [Invalid_argument] outside [0..4]. *)
val of_index : int -> t
