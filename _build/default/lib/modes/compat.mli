(** The protocol's mode algebra: compatibility, strength over ⊥, and the
    decision tables of the paper (Tables 1a, 1b, 2a, 2b).

    Throughout, a value of type [Mode.t option] stands for a possibly-absent
    mode: [None] is the paper's ⊥ ("the node owns/holds/pends nothing"),
    which is weaker than every mode and compatible with every mode.

    Every table of the paper is implemented by a closed-form predicate over
    {!compatible} and strength; see DESIGN.md §2 for the derivations. The
    explicit enumerations used for cross-checking live in the test suite. *)

(** {1 Rule 1 — compatibility (Table 1a)} *)

(** [compatible m1 m2] is true iff locks in modes [m1] and [m2] may be held
    concurrently, per the OMG Concurrency Service matrix. The relation is
    symmetric. Conflicts: [W] with everything; [U] with [U], [IW], [W];
    [R] with [IW], [W]; [IR] with [W] only; [IW] with [R], [U], [W]. *)
val compatible : Mode.t -> Mode.t -> bool

(** [compatible_owned mo mr]: ⊥ is compatible with everything. *)
val compatible_owned : Mode.t option -> Mode.t -> bool

(** Set of modes compatible with [m]. *)
val compatible_set : Mode.t -> Mode_set.t

(** {1 Strength (Definition 1, inequality (1))} *)

(** Strength rank with ⊥ → 0 (so ⊥ < IR < R < U = IW < W). *)
val strength : Mode.t option -> int

(** [stronger_eq a b] is [strength a >= strength b]. *)
val stronger_eq : Mode.t option -> Mode.t option -> bool

(** [strictly_weaker a b] is [strength a < strength b]. *)
val strictly_weaker : Mode.t option -> Mode.t option -> bool

(** [strongest held] is the strongest mode of a list, ⊥ for the empty list.
    Among equal-strength modes ([U]/[IW]) the first encountered wins; a
    correctly maintained copyset never holds both (they conflict). *)
val strongest : Mode.t list -> Mode.t option

(** [max_mode a b] is the stronger of the two (first on ties). *)
val max_mode : Mode.t option -> Mode.t option -> Mode.t option

(** {1 Rule 3 — granting} *)

(** Table 1(b): a non-token node owning [owned] may grant a request for
    [m] iff [compatible_owned owned m && stronger_eq owned (Some m)].
    Consequently ⊥ grants nothing, and [U]/[W] requests can never be
    granted by a non-token node. *)
val can_child_grant : owned:Mode.t option -> Mode.t -> bool

(** Rule 3.2, token node: grant iff compatible with the owned mode. *)
val token_can_grant : owned:Mode.t option -> Mode.t -> bool

(** Rule 3.2 operational part: among token-grantable requests, those with
    [owned] strictly weaker than the request are served by transferring the
    token; others receive a copy grant. *)
val token_must_transfer : owned:Mode.t option -> Mode.t -> bool

(** {1 Rule 4 — queue or forward (Table 2a)} *)

(** [queueable ~pending m]: a non-token node that has issued (and not yet
    been granted) a request for [pending] queues a newly received request
    for [m] locally iff it will be able to serve [m] itself once [pending]
    comes through. For copy-bound pendings that is
    [can_child_grant ~owned:pending m]; for token-bound pendings ([U] and
    [W] are always served by token transfer) the node will hold the token
    and can serve anything after its own release, so [W] queues everything
    and [U] queues [IR]/[R]/[U] (it forwards [IW]/[W] so writers still
    reach the global FIFO queue at the token). With no pending request,
    always forward. *)
val queueable : pending:Mode.t option -> Mode.t -> bool

(** {1 Rule 6 — freezing (Table 2b)} *)

(** [freeze_set ~owned m] is the set of modes the token node (owning
    [owned]) must freeze when it queues a request for [m]: the modes that
    are still grantable under [owned] but incompatible with the waiting
    [m] — granting them would postpone [m] indefinitely.

    Closed form: [{ x | compatible_owned owned x ∧ ¬ compatible x m }].
    Reproduces all legible cells of the paper's Table 2(b), e.g.
    [freeze_set ~owned:(Some IW) R = {IW}]. *)
val freeze_set : owned:Mode.t option -> Mode.t -> Mode_set.t

(** {1 Derived helpers} *)

(** The "local-knowledge safety" lemma of paper §3.4: for any pairwise
    compatible multiset [held] of modes, a new mode [m] compatible with
    [strongest held] is compatible with every element. Exposed for tests. *)
val compatible_with_all : Mode.t list -> Mode.t -> bool

(** Pretty-print any of the four decision tables as ASCII (for the bench
    harness's table reproduction). [`Compat] = 1a, [`Child_grant] = 1b,
    [`Queue_forward] = 2a, [`Freeze] = 2b. *)
val render_table :
  [ `Compat | `Child_grant | `Queue_forward | `Freeze ] -> string
