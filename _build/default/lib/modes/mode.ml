type t =
  | IR
  | R
  | U
  | IW
  | W

let all = [ IR; R; U; IW; W ]

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let strength = function
  | IR -> 1
  | R -> 2
  | U -> 3
  | IW -> 3
  | W -> 4

let stronger_eq a b = strength a >= strength b

let to_string = function
  | IR -> "IR"
  | R -> "R"
  | U -> "U"
  | IW -> "IW"
  | W -> "W"

let of_string s =
  match String.uppercase_ascii s with
  | "IR" -> Some IR
  | "R" -> Some R
  | "U" -> Some U
  | "IW" -> Some IW
  | "W" -> Some W
  | _ -> None

let pp ppf m = Format.pp_print_string ppf (to_string m)

let index = function
  | IR -> 0
  | R -> 1
  | U -> 2
  | IW -> 3
  | W -> 4

let of_index = function
  | 0 -> IR
  | 1 -> R
  | 2 -> U
  | 3 -> IW
  | 4 -> W
  | i -> invalid_arg (Printf.sprintf "Mode.of_index: %d" i)
