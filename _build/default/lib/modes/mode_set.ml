type t = int

let empty = 0

let full = 0b11111

let bit m = 1 lsl Mode.index m

let singleton m = bit m

let add m s = s lor bit m

let remove m s = s land lnot (bit m)

let mem m s = s land bit m <> 0

let union a b = a lor b

let inter a b = a land b

let diff a b = a land lnot b

let equal (a : t) (b : t) = a = b

let subset a b = a land lnot b = 0

let cardinal s =
  let rec count acc s = if s = 0 then acc else count (acc + (s land 1)) (s lsr 1) in
  count 0 s

let is_empty s = s = 0

let of_list ms = List.fold_left (fun s m -> add m s) empty ms

let to_list s = List.filter (fun m -> mem m s) Mode.all

let exists p s = List.exists p (to_list s)

let for_all p s = List.for_all p (to_list s)

let filter p s = of_list (List.filter p (to_list s))

let fold f s acc = List.fold_left (fun acc m -> f m acc) acc (to_list s)

let pp ppf s =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map Mode.to_string (to_list s)))

let to_bits s = s

let of_bits i = i land full
