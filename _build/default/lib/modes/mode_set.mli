(** Compact sets of lock modes, used for frozen-mode bookkeeping.

    Implemented as a 5-bit bitset; all operations are O(1). Values are
    immutable. *)

type t

(** The empty set. *)
val empty : t

(** The set of all five modes. *)
val full : t

(** [singleton m] is the one-element set containing [m]. *)
val singleton : Mode.t -> t

(** [add m s] is [s ∪ {m}]. *)
val add : Mode.t -> t -> t

(** [remove m s] is [s \ {m}]. *)
val remove : Mode.t -> t -> t

(** [mem m s] tests membership. *)
val mem : Mode.t -> t -> bool

(** Set union. *)
val union : t -> t -> t

(** Set intersection. *)
val inter : t -> t -> t

(** [diff a b] is [a \ b]. *)
val diff : t -> t -> t

(** Structural equality. *)
val equal : t -> t -> bool

(** [subset a b] is true iff [a ⊆ b]. *)
val subset : t -> t -> bool

(** Number of elements. *)
val cardinal : t -> int

(** [is_empty s] is [cardinal s = 0]. *)
val is_empty : t -> bool

(** Build from a list (duplicates allowed). *)
val of_list : Mode.t list -> t

(** Elements in {!Mode.all} order. *)
val to_list : t -> Mode.t list

(** [exists p s] tests whether some element satisfies [p]. *)
val exists : (Mode.t -> bool) -> t -> bool

(** [for_all p s] tests whether every element satisfies [p]. *)
val for_all : (Mode.t -> bool) -> t -> bool

(** [filter p s] keeps the elements satisfying [p]. *)
val filter : (Mode.t -> bool) -> t -> t

(** Fold over elements in {!Mode.all} order. *)
val fold : (Mode.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Prints as [{IR,R}]. *)
val pp : Format.formatter -> t -> unit

(** Raw bits in [0..31], for wire encoding. *)
val to_bits : t -> int

(** Inverse of {!to_bits}; masks out bits ≥ 5. *)
val of_bits : int -> t
