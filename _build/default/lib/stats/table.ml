let render ~header rows =
  let cols = List.length header in
  List.iter
    (fun r -> if List.length r <> cols then invalid_arg "Table.render: ragged row")
    rows;
  let widths = Array.make cols 0 in
  let measure row = List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row in
  measure header;
  List.iter measure rows;
  let b = Buffer.create 256 in
  let pad i s = Printf.sprintf "%-*s" widths.(i) s in
  let emit_row row =
    Buffer.add_string b (String.concat " | " (List.mapi pad row));
    Buffer.add_char b '\n'
  in
  emit_row header;
  Buffer.add_string b
    (String.concat "-+-" (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  Buffer.add_char b '\n';
  List.iter emit_row rows;
  Buffer.contents b

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let csv ~header rows =
  let line row = String.concat "," (List.map csv_field row) in
  String.concat "\n" (line header :: List.map line rows) ^ "\n"

let glyphs = [| '*'; 'o'; '+'; 'x'; '#'; '@' |]

let ascii_plot ?(width = 72) ?(height = 20) ~series () =
  let all_points = List.concat_map snd series in
  if all_points = [] then "(empty plot)\n"
  else begin
    let xs = List.map fst all_points and ys = List.map snd all_points in
    let xmin = List.fold_left Float.min infinity xs
    and xmax = List.fold_left Float.max neg_infinity xs in
    let ymin = Float.min 0.0 (List.fold_left Float.min infinity ys)
    and ymax = List.fold_left Float.max neg_infinity ys in
    let xspan = if xmax -. xmin < 1e-9 then 1.0 else xmax -. xmin in
    let yspan = if ymax -. ymin < 1e-9 then 1.0 else ymax -. ymin in
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, points) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        List.iter
          (fun (x, y) ->
            let col = int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1)) in
            let row = int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1)) in
            let row = height - 1 - row in
            if row >= 0 && row < height && col >= 0 && col < width then grid.(row).(col) <- glyph)
          points)
      series;
    let b = Buffer.create 1024 in
    Array.iteri
      (fun i line ->
        let yval = ymax -. (float_of_int i /. float_of_int (height - 1) *. yspan) in
        Buffer.add_string b (Printf.sprintf "%8.1f |" yval);
        Buffer.add_string b (String.init width (fun j -> line.(j)));
        Buffer.add_char b '\n')
      grid;
    Buffer.add_string b (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
    Buffer.add_string b (Printf.sprintf "%8s  %-8.0f%*s%8.0f\n" "" xmin (width - 16) "" xmax);
    List.iteri
      (fun si (label, _) ->
        Buffer.add_string b
          (Printf.sprintf "%9s%c = %s\n" "" glyphs.(si mod Array.length glyphs) label))
      series;
    Buffer.contents b
  end
