(** Stored samples with order statistics. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** [percentile t p] with [p] in [0,100], by linear interpolation between
    closest ranks; 0 when empty. *)
val percentile : t -> float -> float

val median : t -> float

(** All samples in insertion order. *)
val values : t -> float list
