(** ASCII table and series rendering for the experiment harness. *)

(** [render ~header rows]: fixed-width ASCII table; column widths are
    computed from the contents. All rows must have the same arity as
    [header]. *)
val render : header:string list -> string list list -> string

(** [csv ~header rows]: comma-separated output (naive quoting: fields
    containing commas or quotes are double-quoted). *)
val csv : header:string list -> string list list -> string

(** [ascii_plot ~width ~height ~series] plots one or more [(label, points)]
    series on shared axes using a distinct glyph per series, with a legend.
    Intended for quick terminal inspection of the figure shapes. *)
val ascii_plot :
  ?width:int -> ?height:int -> series:(string * (float * float) list) list -> unit -> string
