type t = {
  mutable data : float array;
  mutable size : int;
  mutable sorted : float array option;  (* cache, invalidated on add *)
}

let create () = { data = Array.make 64 0.0; size = 0; sorted = None }

let add t x =
  if t.size = Array.length t.data then begin
    let data = Array.make (2 * t.size) 0.0 in
    Array.blit t.data 0 data 0 t.size;
    t.data <- data
  end;
  t.data.(t.size) <- x;
  t.size <- t.size + 1;
  t.sorted <- None

let count t = t.size

let mean t =
  if t.size = 0 then 0.0
  else begin
    let sum = ref 0.0 in
    for i = 0 to t.size - 1 do
      sum := !sum +. t.data.(i)
    done;
    !sum /. float_of_int t.size
  end

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub t.data 0 t.size in
      Array.sort Float.compare a;
      t.sorted <- Some a;
      a

let percentile t p =
  if t.size = 0 then 0.0
  else begin
    let a = sorted t in
    let p = Float.max 0.0 (Float.min 100.0 p) in
    let rank = p /. 100.0 *. float_of_int (t.size - 1) in
    let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
    if lo = hi then a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
    end
  end

let median t = percentile t 50.0

let values t = Array.to_list (Array.sub t.data 0 t.size)
