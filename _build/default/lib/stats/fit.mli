(** Least-squares curve fitting, used to check the asymptotic claims of the
    paper: Figure 5's message overhead should fit [a·ln n + b] (logarithmic
    asymptote), Figure 6's latency factor should fit [a·n + b] (linear). *)

type result = {
  a : float;  (** slope coefficient *)
  b : float;  (** intercept *)
  r2 : float;  (** coefficient of determination in [0, 1] *)
}

(** Fit [y = a·x + b]. Requires at least two distinct x values. *)
val linear : (float * float) list -> result

(** Fit [y = a·ln x + b]; all x must be positive. *)
val logarithmic : (float * float) list -> result

val pp : Format.formatter -> result -> unit
