(** Streaming summary statistics (Welford's online algorithm). *)

type t

val create : unit -> t

(** Add an observation. *)
val add : t -> float -> unit

val count : t -> int

(** Arithmetic mean; 0 when empty. *)
val mean : t -> float

(** Sample variance (n-1 denominator); 0 when count < 2. *)
val variance : t -> float

(** Sample standard deviation. *)
val stddev : t -> float

val min : t -> float
val max : t -> float

(** Sum of all observations. *)
val total : t -> float

(** Merge [src] into [dst] (Chan et al. parallel update). *)
val merge_into : dst:t -> src:t -> unit

val pp : Format.formatter -> t -> unit
