type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
}

let create () = { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x

let count t = t.n

let mean t = if t.n = 0 then 0.0 else t.mean

let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let total t = t.total

let merge_into ~dst ~src =
  if src.n > 0 then begin
    if dst.n = 0 then begin
      dst.n <- src.n;
      dst.mean <- src.mean;
      dst.m2 <- src.m2;
      dst.min <- src.min;
      dst.max <- src.max;
      dst.total <- src.total
    end
    else begin
      let n = dst.n + src.n in
      let delta = src.mean -. dst.mean in
      let mean = dst.mean +. (delta *. float_of_int src.n /. float_of_int n) in
      let m2 =
        dst.m2 +. src.m2
        +. (delta *. delta *. float_of_int dst.n *. float_of_int src.n /. float_of_int n)
      in
      dst.n <- n;
      dst.mean <- mean;
      dst.m2 <- m2;
      if src.min < dst.min then dst.min <- src.min;
      if src.max > dst.max then dst.max <- src.max;
      dst.total <- dst.total +. src.total
    end
  end

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t) (stddev t)
    (if t.n = 0 then 0.0 else t.min)
    (if t.n = 0 then 0.0 else t.max)
