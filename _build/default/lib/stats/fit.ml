type result = {
  a : float;
  b : float;
  r2 : float;
}

let linear_on points =
  let n = float_of_int (List.length points) in
  if List.length points < 2 then invalid_arg "Fit: need at least two points";
  let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0.0 points in
  let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0.0 points in
  let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0.0 points in
  let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0.0 points in
  let denom = (n *. sxx) -. (sx *. sx) in
  if Float.abs denom < 1e-12 then invalid_arg "Fit: x values are all equal";
  let a = ((n *. sxy) -. (sx *. sy)) /. denom in
  let b = (sy -. (a *. sx)) /. n in
  let mean_y = sy /. n in
  let ss_tot = List.fold_left (fun acc (_, y) -> acc +. ((y -. mean_y) ** 2.0)) 0.0 points in
  let ss_res =
    List.fold_left (fun acc (x, y) -> acc +. ((y -. ((a *. x) +. b)) ** 2.0)) 0.0 points
  in
  let r2 = if ss_tot < 1e-12 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { a; b; r2 }

let linear points = linear_on points

let logarithmic points =
  List.iter (fun (x, _) -> if x <= 0.0 then invalid_arg "Fit.logarithmic: x <= 0") points;
  linear_on (List.map (fun (x, y) -> (log x, y)) points)

let pp ppf { a; b; r2 } = Format.fprintf ppf "a=%.4f b=%.4f r2=%.4f" a b r2
