lib/stats/table.mli:
