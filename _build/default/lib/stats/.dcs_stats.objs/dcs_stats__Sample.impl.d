lib/stats/sample.ml: Array Float
