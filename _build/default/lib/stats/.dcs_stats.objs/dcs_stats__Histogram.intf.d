lib/stats/histogram.mli:
