lib/stats/sample.mli:
