type t = {
  base : float;
  min_value : float;
  counts : (int, int) Hashtbl.t;  (* bucket index -> count *)
  mutable total : int;
}

let create ?(base = 2.0) ?(min_value = 1.0) () =
  if base <= 1.0 then invalid_arg "Histogram.create: base <= 1";
  if min_value <= 0.0 then invalid_arg "Histogram.create: min_value <= 0";
  { base; min_value; counts = Hashtbl.create 32; total = 0 }

let bucket_of t v =
  if v <= t.min_value then 0
  else 1 + int_of_float (floor (log (v /. t.min_value) /. log t.base))

let bounds t i =
  if i = 0 then (0.0, t.min_value)
  else (t.min_value *. (t.base ** float_of_int (i - 1)), t.min_value *. (t.base ** float_of_int i))

let add t v =
  let i = bucket_of t v in
  Hashtbl.replace t.counts i (1 + Option.value ~default:0 (Hashtbl.find_opt t.counts i));
  t.total <- t.total + 1

let count t = t.total

let buckets t =
  Hashtbl.fold (fun i c acc -> (i, c) :: acc) t.counts []
  |> List.sort compare
  |> List.map (fun (i, c) ->
         let lo, hi = bounds t i in
         (lo, hi, c))

let quantile t q =
  if t.total = 0 then 0.0
  else begin
    let rank = q *. float_of_int t.total in
    let rec go acc = function
      | [] -> 0.0
      | (_, hi, c) :: rest ->
          let acc = acc +. float_of_int c in
          if acc >= rank then hi else go acc rest
    in
    go 0.0 (buckets t)
  end

let render ?(width = 50) t =
  match buckets t with
  | [] -> "(empty histogram)\n"
  | bs ->
      let max_count = List.fold_left (fun m (_, _, c) -> max m c) 1 bs in
      let b = Buffer.create 256 in
      List.iter
        (fun (lo, hi, c) ->
          let bar = String.make (max 1 (c * width / max_count)) '#' in
          Buffer.add_string b (Printf.sprintf "%10.1f – %-10.1f %6d %s\n" lo hi c bar))
        bs;
      Buffer.contents b
