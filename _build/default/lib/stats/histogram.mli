(** Logarithmically bucketed histograms (for latency distributions).

    Buckets are powers of [base] starting at [min_value]; everything below
    the first boundary lands in bucket 0. Memory is O(number of buckets),
    adding is O(1). *)

type t

(** [create ~base ~min_value ()] — requires [base > 1] and
    [min_value > 0]. Defaults: base 2, min 1. *)
val create : ?base:float -> ?min_value:float -> unit -> t

val add : t -> float -> unit
val count : t -> int

(** Non-empty buckets as [(lower, upper, count)], ascending. *)
val buckets : t -> (float * float * int) list

(** Approximate quantile (upper bound of the bucket holding rank
    [q·count]); [q] in [0,1]. 0 when empty. *)
val quantile : t -> float -> float

(** ASCII bar rendering, one line per non-empty bucket. *)
val render : ?width:int -> t -> string
