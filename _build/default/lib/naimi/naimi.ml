open Dcs_proto

type msg =
  | Request of { requester : Node_id.t }
  | Token

let class_of = function
  | Request _ -> Msg_class.Request
  | Token -> Msg_class.Token_transfer

let pp_msg ppf = function
  | Request { requester } -> Format.fprintf ppf "Request n%d" requester
  | Token -> Format.pp_print_string ppf "Token"

type t = {
  id : Node_id.t;
  send : dst:Node_id.t -> msg -> unit;
  on_acquired : unit -> unit;
  mutable father : Node_id.t option;
  mutable next : Node_id.t option;
  mutable token_present : bool;
  mutable requesting : bool;
  mutable in_cs : bool;
}

let create ~id ~is_root ~father ~send ~on_acquired () =
  if is_root && father <> None then invalid_arg "Naimi.create: root with a father";
  if (not is_root) && father = None then invalid_arg "Naimi.create: non-root without father";
  { id; send; on_acquired; father; next = None; token_present = is_root; requesting = false; in_cs = false }

let id t = t.id
let has_token t = t.token_present
let in_cs t = t.in_cs
let requesting t = t.requesting
let father t = t.father
let next t = t.next

let pp_state ppf t =
  Format.fprintf ppf "n%d%s father=%s next=%s%s%s" t.id
    (if t.token_present then "*" else "")
    (match t.father with None -> "_" | Some f -> string_of_int f)
    (match t.next with None -> "_" | Some n -> string_of_int n)
    (if t.requesting then " requesting" else "")
    (if t.in_cs then " in-cs" else "")

let request t =
  if t.requesting || t.in_cs then invalid_arg "Naimi.request: already requesting or in CS";
  t.requesting <- true;
  match t.father with
  | None ->
      (* We are the root holding an idle token: enter immediately. *)
      assert t.token_present;
      t.in_cs <- true;
      t.on_acquired ()
  | Some f ->
      t.send ~dst:f (Request { requester = t.id });
      t.father <- None

let release t =
  if not t.in_cs then invalid_arg "Naimi.release: not in CS";
  t.in_cs <- false;
  t.requesting <- false;
  match t.next with
  | Some n ->
      t.token_present <- false;
      t.next <- None;
      t.send ~dst:n Token
  | None -> ()

let handle_msg t ~src:_ msg =
  match msg with
  | Token ->
      assert t.requesting;
      t.token_present <- true;
      t.in_cs <- true;
      t.on_acquired ()
  | Request { requester } -> (
      match t.father with
      | Some f ->
          t.send ~dst:f (Request { requester });
          t.father <- Some requester
      | None ->
          if t.requesting || t.in_cs then begin
            (* We are the queue tail: the requester follows us. *)
            assert (t.next = None);
            t.next <- Some requester
          end
          else begin
            assert t.token_present;
            t.token_present <- false;
            t.send ~dst:requester Token
          end;
          t.father <- Some requester)
