lib/naimi/naimi.ml: Dcs_proto Format Msg_class Node_id
