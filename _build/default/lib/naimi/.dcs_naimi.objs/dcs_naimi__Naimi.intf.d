lib/naimi/naimi.mli: Dcs_proto Format Msg_class Node_id
