type peer = {
  id : Dcs_proto.Node_id.t;
  host : string;
  port : int;
}

type t = {
  peers : peer list;
  locks : int;
}

let parse ~locks spec =
  if locks < 1 then Error "locks must be >= 1"
  else
    let entries = String.split_on_char ',' spec |> List.filter (fun s -> s <> "") in
    let parse_one s =
      match String.split_on_char ':' s with
      | [ id; host; port ] -> (
          match (int_of_string_opt (String.trim id), int_of_string_opt (String.trim port)) with
          | Some id, Some port when id >= 0 && port > 0 && port < 65536 ->
              Ok { id; host = String.trim host; port }
          | _ -> Error (Printf.sprintf "bad peer entry %S" s))
      | _ -> Error (Printf.sprintf "bad peer entry %S (want id:host:port)" s)
    in
    let rec collect acc = function
      | [] -> Ok (List.rev acc)
      | e :: rest -> ( match parse_one e with Ok p -> collect (p :: acc) rest | Error e -> Error e)
    in
    match collect [] entries with
    | Error e -> Error e
    | Ok [] -> Error "empty peer list"
    | Ok peers ->
        let peers = List.sort (fun a b -> compare a.id b.id) peers in
        let ids = List.map (fun p -> p.id) peers in
        if ids <> List.init (List.length peers) (fun i -> i) then
          Error "peer ids must be dense from 0"
        else Ok { peers; locks }

let peer t id = List.nth t.peers id

let size t = List.length t.peers

let to_string t =
  String.concat ","
    (List.map (fun p -> Printf.sprintf "%d:%s:%d" p.id p.host p.port) t.peers)
