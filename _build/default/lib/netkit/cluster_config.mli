(** Static cluster membership for the real (TCP) transport. *)

type peer = {
  id : Dcs_proto.Node_id.t;
  host : string;
  port : int;
}

type t = {
  peers : peer list;  (** sorted by id; ids must be 0..n-1 *)
  locks : int;  (** number of shared lock objects *)
}

(** [parse ~locks "0:127.0.0.1:7001,1:127.0.0.1:7002"]. Validates that ids
    are dense from 0 and ports are sane. *)
val parse : locks:int -> string -> (t, string) result

val peer : t -> Dcs_proto.Node_id.t -> peer
val size : t -> int
val to_string : t -> string
