lib/netkit/cluster_config.mli: Dcs_proto
