lib/netkit/runner.ml: Array Bytes Char Cluster_config Condition Dcs_hlock Dcs_proto Dcs_wire Hashtbl Logs Mutex Printexc Queue String Thread Unix
