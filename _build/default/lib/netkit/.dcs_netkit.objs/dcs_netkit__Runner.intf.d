lib/netkit/runner.mli: Cluster_config Dcs_hlock Dcs_modes Dcs_proto
