lib/netkit/cluster_config.ml: Dcs_proto List Printf String
