lib/mcheck/mcheck.mli: Dcs_hlock Dcs_modes Format
