lib/mcheck/mcheck.ml: Array Buffer Compat Dcs_hlock Dcs_modes Digest Format Hashtbl List Mode Printf Queue String
