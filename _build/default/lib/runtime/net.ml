open Dcs_proto

type t = {
  engine : Dcs_sim.Engine.t;
  latency : Dcs_sim.Dist.t;
  topology : Dcs_sim.Topology.t;
  rng : Dcs_sim.Rng.t;
  trace : Dcs_sim.Trace.t;
  counters : Counters.t;
  last_delivery : (Node_id.t * Node_id.t, float) Hashtbl.t;
  mutable in_flight : int;
}

let create ~engine ~latency ?(topology = Dcs_sim.Topology.uniform) ~rng
    ?(trace = Dcs_sim.Trace.create ~enabled:false ()) () =
  {
    engine;
    latency;
    topology;
    rng;
    trace;
    counters = Counters.create ();
    last_delivery = Hashtbl.create 64;
    in_flight = 0;
  }

(* FIFO per directed pair: never schedule a delivery before an earlier one
   on the same link (TCP semantics). *)
let delivery_time t ~src ~dst =
  let now = Dcs_sim.Engine.now t.engine in
  let scale = Dcs_sim.Topology.factor t.topology ~src ~dst in
  let naive = now +. (scale *. Dcs_sim.Dist.sample t.latency t.rng) in
  let floor =
    match Hashtbl.find_opt t.last_delivery (src, dst) with
    | None -> naive
    | Some last -> Float.max naive (last +. 1e-6)
  in
  Hashtbl.replace t.last_delivery (src, dst) floor;
  floor

let send t ~src ~dst ~cls ~describe deliver =
  Counters.incr t.counters cls;
  t.in_flight <- t.in_flight + 1;
  let time = delivery_time t ~src ~dst in
  Dcs_sim.Trace.record t.trace ~time:(Dcs_sim.Engine.now t.engine) (fun () ->
      Printf.sprintf "send n%d->n%d %s (eta %.3f)" src dst (describe ()) time);
  Dcs_sim.Engine.schedule_at t.engine ~time (fun () ->
      t.in_flight <- t.in_flight - 1;
      Dcs_sim.Trace.record t.trace ~time (fun () ->
          Printf.sprintf "recv n%d->n%d %s" src dst (describe ()));
      deliver ())

let counters t = t.counters

let in_flight t = t.in_flight

let mean_latency t = Dcs_sim.Dist.mean t.latency
