lib/runtime/experiment.ml: Counters Dcs_hlock Dcs_modes Dcs_proto Dcs_sim Dcs_stats Dcs_workload Hashtbl Hlock_cluster Int64 List Mode Msg_class Naimi_cluster Net Printf String
