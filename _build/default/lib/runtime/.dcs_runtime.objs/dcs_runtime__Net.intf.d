lib/runtime/net.mli: Dcs_proto Dcs_sim
