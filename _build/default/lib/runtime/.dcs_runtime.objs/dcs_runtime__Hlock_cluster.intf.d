lib/runtime/hlock_cluster.mli: Dcs_hlock Dcs_modes Dcs_proto Mode Net
