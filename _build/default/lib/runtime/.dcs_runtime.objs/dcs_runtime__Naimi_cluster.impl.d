lib/runtime/naimi_cluster.ml: Array Dcs_naimi Format Hashtbl List Net Printf String
