lib/runtime/figures.mli: Dcs_hlock Dcs_proto Dcs_workload Experiment
