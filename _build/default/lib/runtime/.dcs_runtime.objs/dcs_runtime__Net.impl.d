lib/runtime/net.ml: Counters Dcs_proto Dcs_sim Float Hashtbl Node_id Printf
