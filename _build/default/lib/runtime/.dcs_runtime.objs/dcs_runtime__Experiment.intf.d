lib/runtime/experiment.mli: Dcs_hlock Dcs_modes Dcs_proto Dcs_sim Dcs_stats Dcs_workload Mode Msg_class
