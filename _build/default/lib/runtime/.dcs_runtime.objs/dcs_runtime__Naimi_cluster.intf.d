lib/runtime/naimi_cluster.mli: Dcs_naimi Net
