lib/runtime/figures.ml: Buffer Dcs_hlock Dcs_modes Dcs_proto Dcs_sim Dcs_stats Dcs_workload Experiment Format List Msg_class Option Printf String
