lib/runtime/hlock_cluster.ml: Array Compat Dcs_hlock Dcs_modes Dcs_proto Format Hashtbl List Mode Net Printf String
