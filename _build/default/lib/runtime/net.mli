(** Simulated point-to-point network over the discrete-event engine.

    Models the paper's testbed: a full-duplex switched LAN where disjoint
    point-to-point transfers proceed in parallel. Each message is delayed by
    a draw from the latency distribution (paper mean: 150 ms), scaled by an
    optional {!Dcs_sim.Topology} factor for the pair (racks, star, custom). Delivery is
    FIFO per directed node pair — the property a TCP connection gives the
    real transport, and one the protocol's release/grant epoch logic
    assumes; cross-pair ordering is arbitrary. *)

type t

val create :
  engine:Dcs_sim.Engine.t ->
  latency:Dcs_sim.Dist.t ->
  ?topology:Dcs_sim.Topology.t ->
  rng:Dcs_sim.Rng.t ->
  ?trace:Dcs_sim.Trace.t ->
  unit ->
  t

(** [send t ~src ~dst ~cls ~describe deliver] counts one message of class
    [cls], and schedules [deliver ()] after a latency draw (kept FIFO with
    earlier [src]→[dst] messages). [describe] is forced only when tracing. *)
val send :
  t ->
  src:Dcs_proto.Node_id.t ->
  dst:Dcs_proto.Node_id.t ->
  cls:Dcs_proto.Msg_class.t ->
  describe:(unit -> string) ->
  (unit -> unit) ->
  unit

(** Message counts by class since creation. *)
val counters : t -> Dcs_proto.Counters.t

(** Messages sent but not yet delivered. *)
val in_flight : t -> int

(** Mean of the latency distribution (for latency-factor normalization). *)
val mean_latency : t -> float
