(** End-to-end drivers for the paper's evaluation (§4).

    One experiment = one cluster size × one driver × the airline workload.
    The three drivers mirror the paper's comparison:

    - [Hierarchical]: the paper's protocol; entry accesses take the table
      lock in an intention mode plus the entry lock, table accesses take
      the single table lock in R/U/W.
    - [Naimi_same_work]: the baseline emulating the same functionality —
      entry accesses take the entry's (exclusive) lock; table accesses
      take {e every} entry lock one by one in ascending order (the paper's
      deadlock-avoiding total order).
    - [Naimi_pure]: the baseline in its original single-lock setting
      (every operation contends for one global exclusive lock); provides
      the protocol-overhead floor, not the same functionality. *)

open Dcs_modes
open Dcs_proto

type driver =
  | Hierarchical
  | Naimi_same_work
  | Naimi_pure

val driver_to_string : driver -> string

type config = {
  nodes : int;
  driver : driver;
  workload : Dcs_workload.Airline.config;
  latency : Dcs_sim.Dist.t;  (** network latency; paper mean 150 ms *)
  topology : Dcs_sim.Topology.t;  (** per-pair latency scaling (default uniform) *)
  seed : int64;
  protocol : Dcs_hlock.Node.config;  (** hierarchical-protocol ablations *)
  oracle : bool;  (** re-check safety invariants after every message *)
}

(** Paper-parameter configuration for a driver and cluster size. *)
val default_config : driver:driver -> nodes:int -> config

type result = {
  cfg : config;
  ops : int;  (** completed application operations *)
  lock_requests : int;  (** individual lock acquisitions issued *)
  messages : (Msg_class.t * int) list;  (** breakdown (Figure 7) *)
  total_messages : int;
  msgs_per_op : float;  (** Figure 5's y-axis (per application request) *)
  msgs_per_lock_request : float;
  mean_latency_ms : float;  (** mean time from issue to all locks held *)
  latency_factor : float;  (** Figure 6's y-axis: mean latency / mean
                               point-to-point latency *)
  p95_latency_ms : float;
  per_class : (Mode.t * int * float) list;
      (** per request class: count and mean acquisition latency (ms) *)
  latencies : Dcs_stats.Sample.t;  (** raw per-operation acquisition latencies *)
  sim_duration_ms : float;
  events : int;
}

(** Run to completion (all nodes finish their ops and the event queue
    drains). Raises [Failure] on liveness failure (operations that never
    complete), on oracle violations, and on residual structural damage
    detected at quiescence when [oracle] is set. *)
val run : config -> result

(** One row of the experiment summary table. *)
val result_row : result -> string list

val row_header : string list
