lib/proto/node_id.ml: Format Stdlib
