lib/proto/msg_class.mli: Format
