lib/proto/counters.mli: Format Msg_class
