lib/proto/msg_class.ml: Format
