lib/proto/counters.ml: Array Format List Msg_class
