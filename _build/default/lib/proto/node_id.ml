type t = int

let equal (a : t) (b : t) = a = b

let compare (a : t) (b : t) = Stdlib.compare a b

let to_string = string_of_int

let pp ppf t = Format.pp_print_int ppf t
