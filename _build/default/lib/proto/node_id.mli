(** Node identifiers.

    Nodes are numbered densely from 0; identifiers double as array indices
    in the runtime and as addresses in the transports. *)

type t = int

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit
