type t =
  | Request
  | Copy_grant
  | Token_transfer
  | Release
  | Freeze

let all = [ Request; Copy_grant; Token_transfer; Release; Freeze ]

let equal (a : t) (b : t) = a = b

let index = function
  | Request -> 0
  | Copy_grant -> 1
  | Token_transfer -> 2
  | Release -> 3
  | Freeze -> 4

let to_string = function
  | Request -> "request"
  | Copy_grant -> "grant"
  | Token_transfer -> "token"
  | Release -> "release"
  | Freeze -> "freeze"

let pp ppf t = Format.pp_print_string ppf (to_string t)
