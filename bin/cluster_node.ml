(* Run the hierarchical-locking protocol across real OS processes over TCP.

   One node:
     dune exec bin/cluster_node.exe -- node --id 0 \
       --peers "0:127.0.0.1:7101,1:127.0.0.1:7102" --locks 2 --ops 10

   Whole demo cluster on localhost (forks one process per node):
     dune exec bin/cluster_node.exe -- demo --nodes 4 --ops 10

   With --telemetry DIR each process streams a dcs-obs/2 shard to
   DIR/node-<id>.jsonl; merge them afterwards:
     dune exec bin/trace.exe -- analyze DIR/node-*.jsonl *)

open Cmdliner

let run_node ~self ~config ~ops ~seed ~telemetry ~linger =
  let shard =
    match telemetry with
    | None -> None
    | Some dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Some
          (Dcs_obs.Shard.create
             ~path:(Filename.concat dir (Printf.sprintf "node-%d.jsonl" self))
             ~meta:
               [
                 ("node", string_of_int self);
                 ("nodes", string_of_int (List.length config.Dcs_netkit.Cluster_config.peers));
                 ("locks", string_of_int config.Dcs_netkit.Cluster_config.locks);
                 ("seed", Int64.to_string seed);
               ]
             ())
  in
  let runner = Dcs_netkit.Runner.create ?telemetry:shard ~config ~self () in
  Dcs_netkit.Runner.start runner;
  (* Explicit barrier: don't fire the first request storm until every peer
     has bound its listen port (replaces a fixed startup sleep that raced
     slow peers). *)
  (match Dcs_netkit.Runner.await_peers runner ~timeout:15.0 with
  | Ok () -> ()
  | Error e ->
      Printf.eprintf "node %d: %s\n%!" self e;
      Dcs_netkit.Runner.stop runner;
      Option.iter Dcs_obs.Shard.close shard;
      exit 1);
  let rng = Dcs_sim.Rng.create ~seed:Int64.(add seed (of_int self)) in
  let locks = config.Dcs_netkit.Cluster_config.locks in
  for i = 1 to ops do
    let lock = Dcs_sim.Rng.int rng ~bound:locks in
    let mode =
      if Dcs_sim.Rng.float rng < 0.8 then Dcs_modes.Mode.R else Dcs_modes.Mode.W
    in
    let t0 = Unix.gettimeofday () in
    let seq = Dcs_netkit.Runner.request_sync runner ~lock ~mode in
    Printf.printf "node %d: op %2d/%d granted %s on lock %d in %.1f ms\n%!" self i ops
      (Dcs_modes.Mode.to_string mode) lock
      (1000.0 *. (Unix.gettimeofday () -. t0));
    Thread.delay 0.01;
    Dcs_netkit.Runner.release runner ~lock ~seq;
    Thread.delay 0.02
  done;
  Printf.printf "node %d: done; messages sent: %s\n%!" self
    (Format.asprintf "%a" Dcs_proto.Counters.pp (Dcs_netkit.Runner.counters runner));
  (* Linger so peers can still route through us while they finish. *)
  Thread.delay linger;
  Dcs_netkit.Runner.stop runner;
  Option.iter Dcs_obs.Shard.close shard

let peers_term =
  Arg.(
    value
    & opt string "0:127.0.0.1:7101,1:127.0.0.1:7102"
    & info [ "peers" ] ~docv:"PEERS" ~doc:"Comma-separated id:host:port list.")

let locks_term =
  Arg.(value & opt int 2 & info [ "locks" ] ~docv:"L" ~doc:"Number of shared lock objects.")

let ops_term =
  Arg.(value & opt int 10 & info [ "ops" ] ~docv:"OPS" ~doc:"Lock operations per node.")

let seed_term = Arg.(value & opt int64 1L & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let telemetry_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"DIR"
        ~doc:
          "Stream a live dcs-obs/2 telemetry shard to DIR/node-<id>.jsonl (created if \
           missing). Merge shards with dcs-trace analyze.")

let linger_term =
  Arg.(
    value
    & opt float 3.0
    & info [ "linger" ] ~docv:"S"
        ~doc:"Seconds to keep serving after the last local operation, so peers can still \
              route through this node while they finish.")

let node_cmd =
  let id_term =
    Arg.(required & opt (some int) None & info [ "id" ] ~docv:"ID" ~doc:"This node's id.")
  in
  let run id peers locks ops seed telemetry linger =
    match Dcs_netkit.Cluster_config.parse ~locks peers with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok config -> run_node ~self:id ~config ~ops ~seed ~telemetry ~linger
  in
  Cmd.v
    (Cmd.info "node" ~doc:"Run one node of a TCP cluster.")
    Term.(
      const run $ id_term $ peers_term $ locks_term $ ops_term $ seed_term $ telemetry_term
      $ linger_term)

let demo_cmd =
  let nodes_term =
    Arg.(value & opt int 4 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size (local processes).")
  in
  let base_port_term =
    Arg.(value & opt int 7101 & info [ "base-port" ] ~docv:"PORT" ~doc:"First TCP port.")
  in
  let run nodes base_port locks ops seed telemetry linger =
    let peers =
      String.concat ","
        (List.init nodes (fun i -> Printf.sprintf "%d:127.0.0.1:%d" i (base_port + i)))
    in
    match Dcs_netkit.Cluster_config.parse ~locks peers with
    | Error e ->
        prerr_endline e;
        exit 1
    | Ok config ->
        Printf.printf "spawning %d local nodes (%s), %d locks, %d ops each\n%!" nodes peers
          locks ops;
        let children =
          List.init nodes (fun self ->
              match Unix.fork () with
              | 0 ->
                  run_node ~self ~config ~ops ~seed ~telemetry ~linger;
                  exit 0
              | pid -> pid)
        in
        let failed = ref 0 in
        List.iter
          (fun pid ->
            match Unix.waitpid [] pid with
            | _, Unix.WEXITED 0 -> ()
            | _ -> incr failed)
          children;
        if !failed > 0 then begin
          Printf.printf "%d nodes failed\n" !failed;
          exit 1
        end
        else begin
          print_endline "demo complete: every node finished its operations";
          match telemetry with
          | Some dir -> Printf.printf "telemetry shards in %s/ (dcs-trace analyze %s/node-*.jsonl)\n" dir dir
          | None -> ()
        end
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Fork a whole localhost cluster and run the demo workload.")
    Term.(
      const run $ nodes_term $ base_port_term $ locks_term $ ops_term $ seed_term
      $ telemetry_term $ linger_term)

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level (Some Logs.Info);
  let info =
    Cmd.info "cluster-node" ~doc:"Hierarchical locking over a real TCP cluster (dcs_netkit)."
  in
  exit (Cmd.eval (Cmd.group info [ node_cmd; demo_cmd ]))
