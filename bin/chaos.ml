(* Chaos harness: the airline workload under named fault plans, with the
   runtime invariant audit and the reliable-shim overhead report.

     dcs-chaos                         all four shipped plans, 64 nodes
     dcs-chaos lossy-dup --nodes 32    one plan, custom size
     dcs-chaos --verify                rerun each plan and compare digests

   CHAOS_QUICK=1 (or --quick) shrinks the soak to a CI smoke (~seconds):
   12 nodes, 12 ops/node. The full default is a 64-node, 10240-request
   soak per plan. Exit status is non-zero if any audit violation, liveness
   failure or digest mismatch occurs. *)

open Cmdliner
module Experiment = Dcs_runtime.Experiment
module Plan = Dcs_fault.Plan

let build_config ~nodes ~ops ~entries ~seed =
  let cfg = Experiment.default_config ~driver:Experiment.Hierarchical ~nodes in
  {
    cfg with
    Experiment.seed;
    workload = { cfg.Experiment.workload with Dcs_workload.Airline.entries; ops_per_node = ops };
  }

let run_plan ~cfg ~period ~name ~events =
  let horizon = Experiment.horizon_estimate cfg in
  let plan =
    match Plan.named ~nodes:cfg.Experiment.nodes ~horizon name with
    | Some p -> p
    | None ->
        Printf.eprintf "unknown plan %S (known: %s)\n" name (String.concat ", " Plan.names);
        exit 2
  in
  let cfg = { cfg with Experiment.chaos = Some (Experiment.chaos ~audit_period:period plan) } in
  let trace = Dcs_sim.Trace.create ~capacity:64 ~enabled:true () in
  (* Metrics-only recorder by default: latency histograms and message
     accounting without the per-event log (soaks are long). With
     --telemetry the full event log is kept so the per-plan JSONL shard
     has spans to analyze. Recording is observation-only either way, so
     --verify digests are unaffected. *)
  let recorder = Dcs_obs.Recorder.create ~events ~enabled:true () in
  let result = Experiment.run ~trace ~recorder cfg in
  (result, plan, Dcs_sim.Trace.digest trace, recorder)

let telemetry recorder result =
  let module R = Dcs_obs.Recorder in
  let bytes = R.msg_bytes recorder in
  let rows =
    List.map
      (fun (cls, n) ->
        [
          Dcs_proto.Msg_class.to_string cls;
          string_of_int n;
          string_of_int (Option.value ~default:0 (List.assoc_opt cls bytes));
        ])
      result.Experiment.messages
  in
  Printf.printf "messages  :\n%s"
    (Dcs_stats.Table.render ~header:[ "class"; "count"; "bytes" ] rows);
  let stats = R.mode_stats recorder in
  if stats <> [] then begin
    let rows =
      List.map
        (fun (s : R.mode_stat) ->
          [
            Dcs_modes.Mode.to_string s.R.mode;
            string_of_int s.R.count;
            Printf.sprintf "%.1f" s.R.mean_ms;
            Printf.sprintf "%.1f" s.R.p50_ms;
            Printf.sprintf "%.1f" s.R.p95_ms;
            Printf.sprintf "%.1f" s.R.p99_ms;
          ])
        stats
    in
    Printf.printf "latency   : acquisition by mode (ms, histogram quantiles)\n%s"
      (Dcs_stats.Table.render ~header:[ "mode"; "n"; "mean"; "p50"; "p95"; "p99" ] rows)
  end

let report ~name ~cfg ~plan ~result ~digest ~recorder =
  let r = result in
  Printf.printf "== chaos plan %-14s (%d nodes, %d requests, seed %Ld) ==\n" name
    cfg.Experiment.nodes r.Experiment.ops cfg.Experiment.seed;
  List.iter (fun spec -> Printf.printf "   %s\n" (Plan.spec_to_string spec)) plan;
  print_string
    (Dcs_stats.Table.render ~header:Experiment.row_header [ Experiment.result_row r ]);
  let rep =
    match r.Experiment.chaos_report with
    | Some rep -> rep
    | None -> failwith "chaos run produced no report"
  in
  Printf.printf "audit     : %d samples, %d violations\n" rep.Experiment.audit_samples
    (List.length rep.Experiment.audit_violations);
  List.iter (fun v -> Printf.printf "  VIOLATION %s\n" v) rep.Experiment.audit_violations;
  (match rep.Experiment.reliable_stats with
  | None ->
      Printf.printf "shim      : off (plan keeps the link reliable-FIFO)\n"
  | Some s ->
      Printf.printf
        "shim      : %d data, %d retx, %d acks, %d dups dropped, %d reordered, window<=%d\n"
        s.Dcs_fault.Reliable.data_sent s.Dcs_fault.Reliable.retransmits
        s.Dcs_fault.Reliable.acks s.Dcs_fault.Reliable.duplicates_dropped
        s.Dcs_fault.Reliable.buffered_out_of_order s.Dcs_fault.Reliable.max_unacked;
      Printf.printf "overhead  : %.1f%% of protocol messages (acks + retransmits)\n"
        (100.0 *. rep.Experiment.shim_overhead));
  Printf.printf "net       : %d dropped, %d duplicated by the fault layer\n"
    rep.Experiment.net_dropped rep.Experiment.net_duplicated;
  Printf.printf "sim       : %.1f s simulated, %d events\n"
    (r.Experiment.sim_duration_ms /. 1000.0)
    r.Experiment.events;
  telemetry recorder r;
  Printf.printf "digest    : %Lx\n\n" digest;
  rep.Experiment.audit_violations = []

let write_shard ~dir ~name ~cfg ~result ~recorder =
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let path = Filename.concat dir (name ^ ".jsonl") in
  let oc = open_out path in
  Dcs_obs.Jsonl.write oc
    ~meta:
      [
        ("plan", name);
        ("nodes", string_of_int cfg.Experiment.nodes);
        ("seed", Int64.to_string cfg.Experiment.seed);
      ]
    ~counters:result.Experiment.messages recorder;
  close_out oc;
  Printf.printf "telemetry : %s\n" path

let main plans nodes ops entries seed period quick verify jobs telemetry_dir =
  let quick = quick || Sys.getenv_opt "CHAOS_QUICK" <> None in
  let nodes = if quick then min nodes 12 else nodes in
  let ops = if quick then min ops 12 else ops in
  let plans = if plans = [] then Plan.names else plans in
  (* Validate names before fanning out (run_plan exits on unknown names,
     which must not happen inside a worker domain). *)
  List.iter
    (fun name ->
      if not (List.mem name Plan.names) then begin
        Printf.eprintf "unknown plan %S (known: %s)\n" name (String.concat ", " Plan.names);
        exit 2
      end)
    plans;
  (* Each plan is an independent soak (own engine, RNGs, net): fan them
     over domains; reports print afterwards in plan order. *)
  let outcomes =
    Dcs_netkit.Parallel.map ~jobs
      (fun name ->
        let cfg = build_config ~nodes ~ops ~entries ~seed in
        let events = telemetry_dir <> None in
        let result, plan, digest, recorder = run_plan ~cfg ~period ~name ~events in
        let verified =
          if verify then
            let _, _, digest', _ = run_plan ~cfg ~period ~name ~events:false in
            Some digest'
          else None
        in
        (name, cfg, result, plan, digest, recorder, verified))
      (Array.of_list plans)
  in
  let ok = ref true in
  Array.iter
    (fun (name, cfg, result, plan, digest, recorder, verified) ->
      if not (report ~name ~cfg ~plan ~result ~digest ~recorder) then ok := false;
      Option.iter
        (fun dir -> write_shard ~dir ~name ~cfg ~result ~recorder)
        telemetry_dir;
      match verified with
      | None -> ()
      | Some digest' ->
          if Int64.equal digest digest' then
            Printf.printf "verify    : digest reproduced (%Lx)\n\n" digest'
          else begin
            Printf.printf "verify    : DIGEST MISMATCH %Lx vs %Lx\n\n" digest digest';
            ok := false
          end)
    outcomes;
  if !ok then 0 else 1

let plans_arg =
  Arg.(value & pos_all string [] & info [] ~docv:"PLAN" ~doc:"Named fault plans to run (default: all).")

let nodes_arg = Arg.(value & opt int 64 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")

let ops_arg =
  Arg.(value & opt int 160 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per node.")

let entries_arg =
  Arg.(value & opt int 10 & info [ "entries" ] ~docv:"K" ~doc:"Table size (entry locks).")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let period_arg =
  Arg.(value & opt float 2000.0 & info [ "period" ] ~docv:"MS" ~doc:"Audit sampling period (simulated ms).")

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"CI smoke: 12 nodes, 12 ops/node (also via \\$(b,CHAOS_QUICK)).")

let verify_flag =
  Arg.(value & flag & info [ "verify" ] ~doc:"Rerun each plan with the same seed and compare trace digests.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains; each fault plan soaks in its own domain. Results are \
           identical for every value.")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"DIR"
        ~doc:
          "Keep the full per-event log and write one dcs-obs/2 JSONL shard per plan to \
           DIR/<plan>.jsonl (analyzable with dcs-trace analyze). Costs memory on long soaks.")

let () =
  let doc = "Chaos soaks for the hierarchical locking protocol: fault plans + invariant audit." in
  let info = Cmd.info "dcs-chaos" ~version:"1.0.0" ~doc in
  let term =
    Term.(
      const main $ plans_arg $ nodes_arg $ ops_arg $ entries_arg $ seed_arg $ period_arg
      $ quick_flag $ verify_flag $ jobs_arg $ telemetry_arg)
  in
  exit (Cmd.eval' (Cmd.v info term))
