(* Command-line harness regenerating every table and figure of the paper's
   evaluation (see DESIGN.md §4 for the experiment index).

     dcs-experiments tables          Tables 1(a)-(b), 2(a)-(b)
     dcs-experiments fig5            message overhead vs nodes
     dcs-experiments fig6            latency factor vs nodes
     dcs-experiments fig7            message breakdown vs nodes
     dcs-experiments ablate          protocol ablations
     dcs-experiments run             one configuration in detail *)

open Cmdliner
module Figures = Dcs_runtime.Figures
module Experiment = Dcs_runtime.Experiment

let quick_flag =
  Arg.(value & flag & info [ "quick" ] ~doc:"Sweep only up to 32 nodes (fast).")

let seed_arg =
  Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Simulation seed.")

let jobs_arg =
  Arg.(
    value
    & opt int (Domain.recommended_domain_count ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Worker domains for independent sweep cells (default: recommended domain \
           count). Results are identical for every value.")

let csv_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "csv" ] ~docv:"FILE" ~doc:"Also write the series as CSV to $(docv).")

let nodes_of quick = if quick then Figures.quick_nodes else Figures.default_nodes

let emit_csv csv series =
  match csv with
  | None -> ()
  | Some file ->
      let oc = open_out file in
      output_string oc (Figures.to_csv series);
      close_out oc;
      Printf.printf "\n(wrote %s)\n" file

let fig5_cmd =
  let run quick seed jobs csv =
    let series, report = Figures.fig5 ~nodes:(nodes_of quick) ~seed ~jobs () in
    print_string report;
    emit_csv csv series
  in
  Cmd.v
    (Cmd.info "fig5" ~doc:"Reproduce Figure 5: message overhead vs number of nodes.")
    Term.(const run $ quick_flag $ seed_arg $ jobs_arg $ csv_arg)

let fig6_cmd =
  let run quick seed jobs csv =
    let series, report = Figures.fig6 ~nodes:(nodes_of quick) ~seed ~jobs () in
    print_string report;
    emit_csv csv series
  in
  Cmd.v
    (Cmd.info "fig6" ~doc:"Reproduce Figure 6: request latency factor vs number of nodes.")
    Term.(const run $ quick_flag $ seed_arg $ jobs_arg $ csv_arg)

let fig7_cmd =
  let run quick seed jobs csv =
    let series, report = Figures.fig7 ~nodes:(nodes_of quick) ~seed ~jobs () in
    print_string report;
    emit_csv csv [ series ]
  in
  Cmd.v
    (Cmd.info "fig7" ~doc:"Reproduce Figure 7: message breakdown vs number of nodes.")
    Term.(const run $ quick_flag $ seed_arg $ jobs_arg $ csv_arg)

let tables_cmd =
  Cmd.v
    (Cmd.info "tables" ~doc:"Print the protocol decision tables (paper Tables 1a-2b).")
    Term.(const (fun () -> print_string (Figures.tables ())) $ const ())

let ablate_cmd =
  let nodes_arg =
    Arg.(value & opt int 32 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let run nodes seed = print_string (Figures.ablations ~nodes ~seed ()) in
  Cmd.v
    (Cmd.info "ablate" ~doc:"Compare protocol ablations on the airline workload.")
    Term.(const run $ nodes_arg $ seed_arg)

let run_cmd =
  let nodes_arg =
    Arg.(value & opt int 32 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let driver_arg =
    let driver_conv =
      Arg.enum
        [
          ("hierarchical", Experiment.Hierarchical);
          ("naimi-same-work", Experiment.Naimi_same_work);
          ("naimi-pure", Experiment.Naimi_pure);
        ]
    in
    Arg.(value & opt driver_conv Experiment.Hierarchical & info [ "driver" ] ~docv:"DRIVER"
           ~doc:"One of hierarchical, naimi-same-work, naimi-pure.")
  in
  let oracle_flag =
    Arg.(value & flag & info [ "oracle" ] ~doc:"Check safety invariants after every message.")
  in
  let entries_arg =
    Arg.(value & opt int 10 & info [ "entries" ] ~docv:"K" ~doc:"Table size (entry locks).")
  in
  let ops_arg =
    Arg.(value & opt int 20 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per node.")
  in
  let run nodes driver seed oracle entries ops =
    let cfg = Experiment.default_config ~driver ~nodes in
    let workload =
      { cfg.Experiment.workload with Dcs_workload.Airline.entries; ops_per_node = ops }
    in
    let cfg = { cfg with Experiment.seed; oracle; workload } in
    let r = Experiment.run cfg in
    print_string
      (Dcs_stats.Table.render ~header:Experiment.row_header [ Experiment.result_row r ]);
    Printf.printf "\nmessage breakdown (per op):\n";
    List.iter
      (fun (c, k) ->
        Printf.printf "  %-8s %7.3f\n"
          (Dcs_proto.Msg_class.to_string c)
          (float_of_int k /. float_of_int r.Experiment.ops))
      r.Experiment.messages;
    Printf.printf "\nper request class (count, mean acquisition ms):\n";
    List.iter
      (fun (m, n, mean) ->
        Printf.printf "  %-3s %6d  %9.1f\n" (Dcs_modes.Mode.to_string m) n mean)
      r.Experiment.per_class;
    Printf.printf "\nacquisition latency histogram (ms):\n";
    let h = Dcs_stats.Histogram.create ~base:2.0 ~min_value:10.0 () in
    List.iter (Dcs_stats.Histogram.add h) (Dcs_stats.Sample.values r.Experiment.latencies);
    print_string (Dcs_stats.Histogram.render h);
    Printf.printf "\nsimulated %.1f s, %d engine events\n"
      (r.Experiment.sim_duration_ms /. 1000.)
      r.Experiment.events
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one experiment configuration and print details.")
    Term.(const run $ nodes_arg $ driver_arg $ seed_arg $ oracle_flag $ entries_arg $ ops_arg)

let topology_cmd =
  let nodes_arg =
    Arg.(value & opt int 32 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let run nodes seed = print_string (Figures.topology_study ~nodes ~seed ()) in
  Cmd.v
    (Cmd.info "topology" ~doc:"Locality study: uniform vs racked vs star latency topologies.")
    Term.(const run $ nodes_arg $ seed_arg)

let entries_cmd =
  let nodes_arg =
    Arg.(value & opt int 48 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
  in
  let run nodes seed = print_string (Figures.entries_study ~nodes ~seed ()) in
  Cmd.v
    (Cmd.info "entries" ~doc:"Table-size sensitivity of the same-work comparison.")
    Term.(const run $ nodes_arg $ seed_arg)

let variance_cmd =
  let run quick =
    let nodes = if quick then [ 8; 16 ] else [ 16; 48; 96 ] in
    print_string (Figures.seed_variance ~nodes ())
  in
  Cmd.v
    (Cmd.info "variance" ~doc:"Headline metrics as mean +/- sd across seeds.")
    Term.(const run $ quick_flag)

let () =
  let doc = "Reproduction harness for 'Scalable Distributed Concurrency Services for Hierarchical Locking' (ICDCS 2003)." in
  let info = Cmd.info "dcs-experiments" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ tables_cmd; fig5_cmd; fig6_cmd; fig7_cmd; ablate_cmd; topology_cmd; entries_cmd; variance_cmd; run_cmd ]))
