(* dcs-trace: capture and analyze request-lifecycle telemetry.

     dcs-trace record  -o FILE     run one instrumented experiment, write JSONL
     dcs-trace analyze FILE        per-mode latency, token paths, crosschecks

   [record] re-runs a figure-sweep cell (same seed derivation as the fig5-7
   grids) with a Dcs_obs.Recorder attached; [analyze] works from the JSONL
   alone, so traces can be captured on one machine and studied on another. *)

open Cmdliner
module Mode = Dcs_modes.Mode
module Mode_set = Dcs_modes.Mode_set
module Msg_class = Dcs_proto.Msg_class
module Experiment = Dcs_runtime.Experiment
module Figures = Dcs_runtime.Figures
module Event = Dcs_obs.Event
module Recorder = Dcs_obs.Recorder
module Jsonl = Dcs_obs.Jsonl
module Sample = Dcs_stats.Sample
module Table = Dcs_stats.Table

(* {1 record} *)

let record_cmd =
  let driver_arg =
    let driver_conv =
      Arg.enum
        [
          ("hierarchical", Experiment.Hierarchical);
          ("naimi-same-work", Experiment.Naimi_same_work);
          ("naimi-pure", Experiment.Naimi_pure);
        ]
    in
    Arg.(value & opt driver_conv Experiment.Hierarchical & info [ "driver" ] ~docv:"DRIVER"
           ~doc:"One of hierarchical, naimi-same-work, naimi-pure.")
  in
  let nodes_arg = Arg.(value & opt int 16 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.") in
  let entries_arg =
    Arg.(value & opt int 10 & info [ "entries" ] ~docv:"K" ~doc:"Table size (entry locks).")
  in
  let ops_arg =
    Arg.(value & opt int 20 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per node.")
  in
  let seed_arg =
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED"
           ~doc:"Base sweep seed; the cell seed is derived from it as in the figure sweeps.")
  in
  let out_arg =
    Arg.(value & opt string "trace.jsonl" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output JSONL file.")
  in
  let run driver nodes entries ops seed out =
    let recorder = Recorder.create ~enabled:true () in
    let workload =
      { Dcs_workload.Airline.default_config with Dcs_workload.Airline.entries; ops_per_node = ops }
    in
    let r = Figures.traced_cell ~workload ~seed ~recorder ~driver ~nodes () in
    let oc = open_out out in
    Jsonl.write oc
      ~meta:
        [
          ("driver", Experiment.driver_to_string driver);
          ("nodes", string_of_int nodes);
          ("entries", string_of_int entries);
          ("ops_per_node", string_of_int ops);
          ("seed", Int64.to_string seed);
        ]
      ~counters:r.Experiment.messages recorder;
    close_out oc;
    Printf.printf "wrote %s: %d events, %d spans (%d completed), %d messages, %.1f s simulated\n"
      out (Recorder.event_count recorder) (Recorder.requested recorder)
      (Recorder.completed recorder) r.Experiment.total_messages
      (r.Experiment.sim_duration_ms /. 1000.)
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Run one instrumented experiment and write its telemetry as JSONL.")
    Term.(const run $ driver_arg $ nodes_arg $ entries_arg $ ops_arg $ seed_arg $ out_arg)

(* {1 analyze} *)

(* One completed acquisition episode, reassembled from span events. A span
   id can carry two episodes (initial grant, then a Rule-7 upgrade). *)
type acq = {
  a_lock : int;
  a_requester : int;
  a_seq : int;
  a_mode : Mode.t;
  a_start : float;
  a_finish : float;
  a_hops : int;  (* Forwarded events observed between request and grant *)
  a_kind : [ `Local | `Token | `Upgrade ];
  a_events : Event.t list;  (* chronological, request through grant *)
}

type open_ep = { o_start : float; o_hops : int; o_rev : Event.t list }

let reassemble events =
  let open_eps : (int * int * int, open_ep) Hashtbl.t = Hashtbl.create 64 in
  let acqs = ref [] in
  List.iter
    (fun (e : Event.t) ->
      if not (Event.is_node_event e.kind) then begin
        let key = (e.lock, e.requester, e.seq) in
        let close mode kind ep =
          Hashtbl.remove open_eps key;
          acqs :=
            {
              a_lock = e.lock;
              a_requester = e.requester;
              a_seq = e.seq;
              a_mode = mode;
              a_start = ep.o_start;
              a_finish = e.time;
              a_hops = ep.o_hops;
              a_kind = kind;
              a_events = List.rev (e :: ep.o_rev);
            }
            :: !acqs
        in
        match e.kind with
        | Event.Requested _ ->
            Hashtbl.replace open_eps key { o_start = e.time; o_hops = 0; o_rev = [ e ] }
        | Forwarded _ -> (
            match Hashtbl.find_opt open_eps key with
            | Some ep ->
                Hashtbl.replace open_eps key
                  { ep with o_hops = ep.o_hops + 1; o_rev = e :: ep.o_rev }
            | None -> ())
        | Queued -> (
            match Hashtbl.find_opt open_eps key with
            | Some ep -> Hashtbl.replace open_eps key { ep with o_rev = e :: ep.o_rev }
            | None -> ())
        | Granted_local { mode; _ } -> (
            match Hashtbl.find_opt open_eps key with
            | Some ep -> close mode `Local ep
            | None -> ())
        | Granted_token { mode; _ } -> (
            match Hashtbl.find_opt open_eps key with
            | Some ep -> close mode `Token ep
            | None -> ())
        | Upgraded -> (
            match Hashtbl.find_opt open_eps key with
            | Some ep -> close Mode.W `Upgrade ep
            | None -> ())
        | Released _ | Frozen _ | Unfrozen _ -> ()
      end)
    events;
  (List.rev !acqs, Hashtbl.length open_eps)

(* Freeze episodes from Frozen/Unfrozen node events: per (lock, node),
   non-empty -> empty transitions, mirroring Recorder's online tracking. *)
let freeze_episodes events =
  let state : (int * int, Mode_set.t * float) Hashtbl.t = Hashtbl.create 16 in
  let durations = ref [] in
  List.iter
    (fun (e : Event.t) ->
      let apply ~add set =
        let key = (e.lock, e.node) in
        let cur, since =
          match Hashtbl.find_opt state key with
          | Some (c, s) -> (c, s)
          | None -> (Mode_set.empty, e.time)
        in
        let was_empty = Mode_set.is_empty cur in
        let next = if add then Mode_set.union cur set else Mode_set.diff cur set in
        if Mode_set.is_empty next then begin
          Hashtbl.remove state key;
          if not was_empty then durations := (e.time -. since) :: !durations
        end
        else Hashtbl.replace state key (next, if was_empty then e.time else since)
      in
      match e.kind with
      | Event.Frozen s -> apply ~add:true s
      | Event.Unfrozen s -> apply ~add:false s
      | _ -> ())
    events;
  (List.rev !durations, Hashtbl.length state)

let pp_span_id a = Printf.sprintf "lock%d n%d#%d" a.a_lock a.a_requester a.a_seq

let analyze file slowest check =
  match Jsonl.read_file file with
  | Error msg ->
      Printf.eprintf "dcs-trace: %s: %s\n" file msg;
      exit 2
  | Ok lines ->
      let meta =
        List.find_map (function Jsonl.Meta m -> Some m | _ -> None) lines
        |> Option.value ~default:[]
      in
      let events = List.filter_map (function Jsonl.Ev e -> Some e | _ -> None) lines in
      let gauges =
        List.filter_map (function Jsonl.Gauge { time; name; value } -> Some (time, name, value) | _ -> None) lines
      in
      let msgs =
        List.filter_map
          (function Jsonl.Msgs { cls; count; bytes } -> Some (cls, count, bytes) | _ -> None)
          lines
      in
      let counters = List.find_map (function Jsonl.Counters c -> Some c | _ -> None) lines in
      let acqs, still_open = reassemble events in
      let nodes =
        match List.assoc_opt "nodes" meta with Some s -> int_of_string_opt s | None -> None
      in
      Printf.printf "trace %s: %s\n\n" file
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) meta));
      Printf.printf "%d events, %d completed acquisitions, %d spans still open\n\n"
        (List.length events) (List.length acqs) still_open;

      (* Per-mode latency, exact percentiles from the raw episode latencies. *)
      let mode_rows =
        List.filter_map
          (fun m ->
            let ls =
              List.filter_map
                (fun a -> if Mode.equal a.a_mode m then Some (a.a_finish -. a.a_start) else None)
                acqs
            in
            if ls = [] then None
            else begin
              let s = Sample.create () in
              List.iter (Sample.add s) ls;
              Some
                [
                  Mode.to_string m;
                  string_of_int (Sample.count s);
                  Printf.sprintf "%.1f" (Sample.mean s);
                  Printf.sprintf "%.1f" (Sample.percentile s 50.0);
                  Printf.sprintf "%.1f" (Sample.percentile s 95.0);
                  Printf.sprintf "%.1f" (Sample.percentile s 99.0);
                ]
            end)
          Mode.all
      in
      print_string "Acquisition latency by mode (ms)\n";
      print_string
        (Table.render ~header:[ "mode"; "n"; "mean"; "p50"; "p95"; "p99" ] mode_rows);

      (* Grant-path economics: Rule 3.1 locality and the token-path length. *)
      let local = List.filter (fun a -> a.a_kind = `Local) acqs in
      let token = List.filter (fun a -> a.a_kind = `Token) acqs in
      let upgrades = List.filter (fun a -> a.a_kind = `Upgrade) acqs in
      let message_free = List.filter (fun a -> a.a_hops = 0) local in
      let grants = List.length local + List.length token in
      Printf.printf "\nGrant paths\n";
      Printf.printf "  local grants (Rules 2, 3, 3.1)   %6d  (%d message-free)\n"
        (List.length local) (List.length message_free);
      Printf.printf "  token transfers (Rule 3.2)       %6d\n" (List.length token);
      Printf.printf "  upgrades completed (Rule 7)      %6d\n" (List.length upgrades);
      if grants > 0 then
        Printf.printf "  local-grant ratio                %6.1f%%\n"
          (100.0 *. float_of_int (List.length local) /. float_of_int grants);
      let hop_dist which =
        let tbl = Hashtbl.create 8 in
        List.iter
          (fun a ->
            Hashtbl.replace tbl a.a_hops (1 + Option.value ~default:0 (Hashtbl.find_opt tbl a.a_hops)))
          which;
        Hashtbl.fold (fun h n acc -> (h, n) :: acc) tbl []
        |> List.sort (fun (a, _) (b, _) -> compare a b)
      in
      let mean_hops which =
        if which = [] then 0.0
        else
          float_of_int (List.fold_left (fun s a -> s + a.a_hops) 0 which)
          /. float_of_int (List.length which)
      in
      let hops_rows =
        let dl = hop_dist local and dt = hop_dist token in
        let all_h = List.sort_uniq compare (List.map fst dl @ List.map fst dt) in
        List.map
          (fun h ->
            [
              string_of_int h;
              string_of_int (Option.value ~default:0 (List.assoc_opt h dl));
              string_of_int (Option.value ~default:0 (List.assoc_opt h dt));
            ])
          all_h
      in
      if hops_rows <> [] then begin
        Printf.printf "\nRequest-path hops (relays before grant)\n";
        print_string (Table.render ~header:[ "hops"; "local"; "token" ] hops_rows)
      end;
      (match nodes with
      | Some n when token <> [] && n > 1 ->
          let log2n = log (float_of_int n) /. log 2.0 in
          Printf.printf
            "  mean token-path hops %.2f vs log2(%d) = %.2f  (O(log n) check: ratio %.2f)\n"
            (mean_hops token) n log2n
            (mean_hops token /. log2n)
      | _ -> ());

      (* Message accounting: recorder's view vs the transport's Counters. *)
      let counters_match = ref true in
      if msgs <> [] then begin
        Printf.printf "\nMessages by class (recorder vs transport counters)\n";
        let rows =
          List.map
            (fun (cls, count, bytes) ->
              let net =
                match counters with
                | None -> "-"
                | Some cs -> (
                    match List.assoc_opt cls cs with
                    | Some n ->
                        if n <> count then counters_match := false;
                        string_of_int n
                    | None ->
                        if count <> 0 then counters_match := false;
                        "0")
              in
              [ Msg_class.to_string cls; string_of_int count; string_of_int bytes; net ])
            msgs
        in
        print_string (Table.render ~header:[ "class"; "count"; "bytes"; "counters" ] rows);
        if counters <> None then
          Printf.printf "  recorder vs counters: %s\n"
            (if !counters_match then "exact match" else "MISMATCH")
      end;

      (* Gauges. *)
      if gauges <> [] then begin
        Printf.printf "\nGauges\n";
        let names = List.sort_uniq compare (List.map (fun (_, n, _) -> n) gauges) in
        let rows =
          List.map
            (fun name ->
              let vs = List.filter_map (fun (_, n, v) -> if n = name then Some v else None) gauges in
              let n = List.length vs in
              let sum = List.fold_left ( +. ) 0.0 vs in
              let mn = List.fold_left Float.min infinity vs in
              let mx = List.fold_left Float.max neg_infinity vs in
              [
                name;
                string_of_int n;
                Printf.sprintf "%.2f" (sum /. float_of_int n);
                Printf.sprintf "%.0f" mn;
                Printf.sprintf "%.0f" mx;
              ])
            names
        in
        print_string (Table.render ~header:[ "gauge"; "samples"; "mean"; "min"; "max" ] rows)
      end;

      (* Freeze episodes. *)
      let durations, open_freezes = freeze_episodes events in
      if durations <> [] || open_freezes > 0 then begin
        let n = List.length durations in
        let sum = List.fold_left ( +. ) 0.0 durations in
        let mx = List.fold_left Float.max 0.0 durations in
        Printf.printf "\nFreeze episodes (Rule 6): %d closed" n;
        if n > 0 then Printf.printf ", mean %.1f ms, max %.1f ms" (sum /. float_of_int n) mx;
        if open_freezes > 0 then Printf.printf ", %d still open" open_freezes;
        print_newline ()
      end;

      (* Slowest requests with their timelines. *)
      let by_latency =
        List.sort
          (fun a b -> compare (b.a_finish -. b.a_start) (a.a_finish -. a.a_start))
          acqs
      in
      let rec take k = function [] -> [] | x :: tl -> if k = 0 then [] else x :: take (k - 1) tl in
      let slow = take slowest by_latency in
      if slow <> [] then begin
        Printf.printf "\nSlowest %d requests\n" (List.length slow);
        List.iter
          (fun a ->
            Printf.printf "  %s %s: %.1f ms (%d hops, %s)\n" (pp_span_id a)
              (Mode.to_string a.a_mode)
              (a.a_finish -. a.a_start)
              a.a_hops
              (match a.a_kind with
              | `Local -> "local grant"
              | `Token -> "token transfer"
              | `Upgrade -> "upgrade");
            List.iter
              (fun (e : Event.t) ->
                Printf.printf "    +%8.1f ms  n%-3d %s\n" (e.time -. a.a_start) e.node
                  (Event.kind_name e.kind))
              a.a_events)
          slow
      end;

      if check then begin
        let failures = ref [] in
        if acqs = [] then failures := "no completed spans" :: !failures;
        if counters = None then failures := "no counters line" :: !failures
        else if not !counters_match then
          failures := "recorder message counts do not match transport counters" :: !failures;
        match !failures with
        | [] ->
            Printf.printf "\ncheck: OK (%d spans, counters match)\n" (List.length acqs)
        | fs ->
            Printf.printf "\ncheck: FAILED (%s)\n" (String.concat "; " (List.rev fs));
            exit 1
      end

let analyze_cmd =
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc:"JSONL trace file.")
  in
  let slowest_arg =
    Arg.(value & opt int 5 & info [ "slowest" ] ~docv:"K"
           ~doc:"Show the K slowest requests with full timelines.")
  in
  let check_flag =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Exit nonzero unless the trace has completed spans and the recorder's \
                 message counts exactly match the embedded transport counters.")
  in
  Cmd.v
    (Cmd.info "analyze" ~doc:"Analyze a JSONL trace: per-mode latency percentiles, grant-path \
                              breakdown, message and gauge accounting, slowest requests.")
    Term.(const analyze $ file_arg $ slowest_arg $ check_flag)

let () =
  let doc = "Request-lifecycle trace capture and analysis for the DCS protocols." in
  let info = Cmd.info "dcs-trace" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ record_cmd; analyze_cmd ]))
