(* dcs-trace: capture and analyze request-lifecycle telemetry.

     dcs-trace record  -o FILE       run one instrumented experiment, write JSONL
     dcs-trace analyze FILE...       merge shards, align clocks, critical paths
     dcs-trace top FILE...           live per-node view tailing shard files

   [record] re-runs a figure-sweep cell (same seed derivation as the fig5-7
   grids) with a Dcs_obs.Recorder attached; [analyze] works from the JSONL
   alone, so traces can be captured on one machine and studied on another.
   Given several files (one dcs-obs/2 shard per cluster process), [analyze]
   merges them onto one causally-aligned timeline first. *)

open Cmdliner
module Mode = Dcs_modes.Mode
module Mode_set = Dcs_modes.Mode_set
module Msg_class = Dcs_proto.Msg_class
module Experiment = Dcs_runtime.Experiment
module Figures = Dcs_runtime.Figures
module Event = Dcs_obs.Event
module Recorder = Dcs_obs.Recorder
module Jsonl = Dcs_obs.Jsonl
module Merge = Dcs_obs.Merge
module Sample = Dcs_stats.Sample
module Table = Dcs_stats.Table

(* {1 record} *)

let record_cmd =
  let driver_arg =
    let driver_conv =
      Arg.enum
        [
          ("hierarchical", Experiment.Hierarchical);
          ("naimi-same-work", Experiment.Naimi_same_work);
          ("naimi-pure", Experiment.Naimi_pure);
        ]
    in
    Arg.(value & opt driver_conv Experiment.Hierarchical & info [ "driver" ] ~docv:"DRIVER"
           ~doc:"One of hierarchical, naimi-same-work, naimi-pure.")
  in
  let nodes_arg = Arg.(value & opt int 16 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.") in
  let entries_arg =
    Arg.(value & opt int 10 & info [ "entries" ] ~docv:"K" ~doc:"Table size (entry locks).")
  in
  let ops_arg =
    Arg.(value & opt int 20 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per node.")
  in
  let seed_arg =
    Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED"
           ~doc:"Base sweep seed; the cell seed is derived from it as in the figure sweeps.")
  in
  let out_arg =
    Arg.(value & opt string "trace.jsonl" & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Output JSONL file.")
  in
  let run driver nodes entries ops seed out =
    let recorder = Recorder.create ~enabled:true () in
    let workload =
      { Dcs_workload.Airline.default_config with Dcs_workload.Airline.entries; ops_per_node = ops }
    in
    let r = Figures.traced_cell ~workload ~seed ~recorder ~driver ~nodes () in
    let oc = open_out out in
    Jsonl.write oc
      ~meta:
        [
          ("driver", Experiment.driver_to_string driver);
          ("nodes", string_of_int nodes);
          ("entries", string_of_int entries);
          ("ops_per_node", string_of_int ops);
          ("seed", Int64.to_string seed);
        ]
      ~counters:r.Experiment.messages recorder;
    close_out oc;
    Printf.printf "wrote %s: %d events, %d spans (%d completed), %d messages, %.1f s simulated\n"
      out (Recorder.event_count recorder) (Recorder.requested recorder)
      (Recorder.completed recorder) r.Experiment.total_messages
      (r.Experiment.sim_duration_ms /. 1000.)
  in
  Cmd.v
    (Cmd.info "record" ~doc:"Run one instrumented experiment and write its telemetry as JSONL.")
    Term.(const run $ driver_arg $ nodes_arg $ entries_arg $ ops_arg $ seed_arg $ out_arg)

(* {1 analyze} *)

(* Freeze episodes from Frozen/Unfrozen node events: per (lock, node),
   non-empty -> empty transitions, mirroring Recorder's online tracking. *)
let freeze_episodes events =
  let state : (int * int, Mode_set.t * float) Hashtbl.t = Hashtbl.create 16 in
  let durations = ref [] in
  List.iter
    (fun (e : Event.t) ->
      let apply ~add set =
        let key = (e.lock, e.node) in
        let cur, since =
          match Hashtbl.find_opt state key with
          | Some (c, s) -> (c, s)
          | None -> (Mode_set.empty, e.time)
        in
        let was_empty = Mode_set.is_empty cur in
        let next = if add then Mode_set.union cur set else Mode_set.diff cur set in
        if Mode_set.is_empty next then begin
          Hashtbl.remove state key;
          if not was_empty then durations := (e.time -. since) :: !durations
        end
        else Hashtbl.replace state key (next, if was_empty then e.time else since)
      in
      match e.kind with
      | Event.Frozen s -> apply ~add:true s
      | Event.Unfrozen s -> apply ~add:false s
      | _ -> ())
    events;
  (List.rev !durations, Hashtbl.length state)

let pp_span_id (b : Merge.breakdown) =
  Printf.sprintf "lock%d n%d#%d" b.Merge.b_lock b.b_requester b.b_seq

let kind_label = function
  | `Local -> "local grant"
  | `Token -> "token transfer"
  | `Upgrade -> "upgrade"

let analyze files slowest check =
  let shards, warnings =
    match Merge.load files with
    | Error msg ->
        Printf.eprintf "dcs-trace: %s\n" msg;
        exit 2
    | Ok (shards, warnings) -> (shards, warnings)
  in
  List.iter (fun w -> Printf.eprintf "dcs-trace: warning: %s\n" w) warnings;
  List.iter
    (fun (s : Merge.shard) ->
      Printf.printf "shard %s: %s%s\n" s.Merge.path
        (String.concat ", " (List.map (fun (k, v) -> k ^ "=" ^ v) s.meta))
        (if s.truncated then "  [truncated]" else ""))
    shards;
  let multi = List.length (List.filter (fun (s : Merge.shard) -> s.Merge.node >= 0) shards) > 1 in
  let offsets = if multi then Merge.align shards else [] in
  if List.exists (fun (_, o) -> o <> 0.0) offsets then begin
    Printf.printf "\nClock alignment (send/receive causality; corrected = local - offset)\n";
    List.iter (fun (node, off) -> Printf.printf "  node %d  offset %+.3f ms\n" node off) offsets
  end;
  let events = Merge.merged_events ~offsets shards in
  let breakdowns, still_open = Merge.critical_paths events in
  let nodes =
    List.find_map
      (fun (s : Merge.shard) ->
        match List.assoc_opt "nodes" s.Merge.meta with
        | Some v -> int_of_string_opt v
        | None -> None)
      shards
  in
  Printf.printf "\n%d events across %d shard(s), %d completed acquisitions, %d spans still open\n\n"
    (List.length events) (List.length shards) (List.length breakdowns) still_open;

  (* Per-mode latency, exact percentiles from the span wall clocks. *)
  let latency (b : Merge.breakdown) = b.Merge.b_finish -. b.b_start in
  let mode_rows =
    List.filter_map
      (fun m ->
        let ls =
          List.filter_map
            (fun b -> if Mode.equal b.Merge.b_mode m then Some (latency b) else None)
            breakdowns
        in
        if ls = [] then None
        else begin
          let s = Sample.create () in
          List.iter (Sample.add s) ls;
          Some
            [
              Mode.to_string m;
              string_of_int (Sample.count s);
              Printf.sprintf "%.1f" (Sample.mean s);
              Printf.sprintf "%.1f" (Sample.percentile s 50.0);
              Printf.sprintf "%.1f" (Sample.percentile s 95.0);
              Printf.sprintf "%.1f" (Sample.percentile s 99.0);
            ]
        end)
      Mode.all
  in
  print_string "Acquisition latency by mode (ms)\n";
  print_string (Table.render ~header:[ "mode"; "n"; "mean"; "p50"; "p95"; "p99" ] mode_rows);

  (* Grant-path economics: Rule 3.1 locality and the token-path length. *)
  let local = List.filter (fun b -> b.Merge.b_kind = `Local) breakdowns in
  let token = List.filter (fun b -> b.Merge.b_kind = `Token) breakdowns in
  let upgrades = List.filter (fun b -> b.Merge.b_kind = `Upgrade) breakdowns in
  let message_free = List.filter (fun b -> b.Merge.b_hops = 0) local in
  let grants = List.length local + List.length token in
  Printf.printf "\nGrant paths\n";
  Printf.printf "  local grants (Rules 2, 3, 3.1)   %6d  (%d message-free)\n" (List.length local)
    (List.length message_free);
  Printf.printf "  token transfers (Rule 3.2)       %6d\n" (List.length token);
  Printf.printf "  upgrades completed (Rule 7)      %6d\n" (List.length upgrades);
  if grants > 0 then
    Printf.printf "  local-grant ratio                %6.1f%%\n"
      (100.0 *. float_of_int (List.length local) /. float_of_int grants);
  let hop_dist which =
    let tbl = Hashtbl.create 8 in
    List.iter
      (fun (b : Merge.breakdown) ->
        Hashtbl.replace tbl b.Merge.b_hops
          (1 + Option.value ~default:0 (Hashtbl.find_opt tbl b.Merge.b_hops)))
      which;
    Hashtbl.fold (fun h n acc -> (h, n) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  let mean_hops which =
    if which = [] then 0.0
    else
      float_of_int (List.fold_left (fun s (b : Merge.breakdown) -> s + b.Merge.b_hops) 0 which)
      /. float_of_int (List.length which)
  in
  let hops_rows =
    let dl = hop_dist local and dt = hop_dist token in
    let all_h = List.sort_uniq compare (List.map fst dl @ List.map fst dt) in
    List.map
      (fun h ->
        [
          string_of_int h;
          string_of_int (Option.value ~default:0 (List.assoc_opt h dl));
          string_of_int (Option.value ~default:0 (List.assoc_opt h dt));
        ])
      all_h
  in
  if hops_rows <> [] then begin
    Printf.printf "\nRequest-path hops (relays before grant)\n";
    print_string (Table.render ~header:[ "hops"; "local"; "token" ] hops_rows)
  end;
  (match nodes with
  | Some n when token <> [] && n > 1 ->
      let log2n = log (float_of_int n) /. log 2.0 in
      Printf.printf "  mean token-path hops %.2f vs log2(%d) = %.2f  (O(log n) check: ratio %.2f)\n"
        (mean_hops token) n log2n
        (mean_hops token /. log2n)
  | _ -> ());

  (* Critical-path decomposition: where each grant kind's wait went. *)
  if breakdowns <> [] then begin
    Printf.printf "\nCritical-path decomposition (mean ms per bucket)\n";
    let rows =
      List.filter_map
        (fun (kind, which) ->
          if which = [] then None
          else begin
            let n = float_of_int (List.length which) in
            let mean f = List.fold_left (fun acc b -> acc +. f b) 0.0 which /. n in
            Some
              [
                kind_label kind;
                string_of_int (List.length which);
                Printf.sprintf "%.2f" (mean (fun b -> b.Merge.b_local_ms));
                Printf.sprintf "%.2f" (mean (fun b -> b.Merge.b_queue_ms));
                Printf.sprintf "%.2f" (mean (fun b -> b.Merge.b_freeze_ms));
                Printf.sprintf "%.2f" (mean (fun b -> b.Merge.b_net_ms));
                Printf.sprintf "%.2f" (mean (fun b -> b.Merge.b_token_ms));
                Printf.sprintf "%.2f" (mean Merge.total_wait);
              ]
          end)
        [ (`Local, local); (`Token, token); (`Upgrade, upgrades) ]
    in
    print_string
      (Table.render
         ~header:[ "grant"; "n"; "local"; "queue"; "freeze"; "net"; "token"; "total" ]
         rows)
  end;

  (* Message accounting: per-shard msgs summed vs the transports' Counters.
     The exact crosscheck covers the five protocol classes; Ack/Retransmit
     exist only below the recorder's hook (the reliable shim), so they are
     reported but never compared. *)
  let shim_class cls = cls = Msg_class.Ack || cls = Msg_class.Retransmit in
  let msgs = Merge.summed_msgs shards in
  let counters = Merge.summed_counters shards in
  let have_msgs = List.exists (fun (_, (c, _)) -> c > 0) msgs || counters <> None in
  let counters_match = ref true in
  if have_msgs then begin
    Printf.printf "\nMessages by class (shards vs transport counters)\n";
    let rows =
      List.map
        (fun (cls, (count, bytes)) ->
          let mismatch n = if n <> count && not (shim_class cls) then counters_match := false in
          let net =
            match counters with
            | None -> "-"
            | Some cs -> (
                match List.assoc_opt cls cs with
                | Some n ->
                    mismatch n;
                    string_of_int n
                | None ->
                    mismatch 0;
                    "0")
          in
          [ Msg_class.to_string cls; string_of_int count; string_of_int bytes; net ])
        msgs
    in
    print_string (Table.render ~header:[ "class"; "count"; "bytes"; "counters" ] rows);
    if counters <> None then
      Printf.printf "  shards vs counters: %s (protocol classes; ack/retx are shim-only)\n"
        (if !counters_match then "exact match" else "MISMATCH")
  end;

  (* Grant-mix cross-check: merged spans vs the grants.* metric counters
     each runner maintains independently of the event stream. *)
  let metric_totals = Merge.metric_totals shards in
  let grants_match = ref true in
  let have_grant_metrics =
    List.exists (fun (n, _) -> String.length n > 7 && String.sub n 0 7 = "grants.") metric_totals
  in
  if have_grant_metrics then begin
    Printf.printf "\nGrant mix (merged spans vs grants.* metrics)\n";
    let rows =
      List.filter_map
        (fun m ->
          let spans =
            List.length
              (List.filter
                 (fun (b : Merge.breakdown) ->
                   Mode.equal b.Merge.b_mode m && b.b_kind <> `Upgrade)
                 breakdowns)
          in
          let metric =
            int_of_float
              (Option.value ~default:0.0
                 (List.assoc_opt ("grants." ^ Mode.to_string m) metric_totals))
          in
          if spans = 0 && metric = 0 then None
          else begin
            if spans <> metric then grants_match := false;
            Some [ Mode.to_string m; string_of_int spans; string_of_int metric ]
          end)
        Mode.all
    in
    print_string (Table.render ~header:[ "mode"; "spans"; "metrics" ] rows);
    Printf.printf "  spans vs metrics: %s\n" (if !grants_match then "exact match" else "MISMATCH")
  end;
  let dropped =
    int_of_float (Option.value ~default:0.0 (List.assoc_opt "net.dropped_frames" metric_totals))
  in
  if metric_totals <> [] then begin
    Printf.printf "\nTransport metrics (summed across shards, final snapshot)\n";
    List.iter
      (fun name ->
        match List.assoc_opt name metric_totals with
        | Some v -> Printf.printf "  %-26s %10.0f\n" name v
        | None -> ())
      [
        "net.frames_sent";
        "net.bytes_sent";
        "net.batches";
        "net.partial_requeues";
        "net.connects";
        "net.reconnects";
        "net.connect_retries";
        "net.dropped_frames";
        "net.decode_errors";
        "net.frames_received";
        "net.bytes_received";
      ]
  end;

  (* Shard balance: the sharded lock-namespace service labels its
     instruments {shard=N} (Metrics.labelled), one registry per shard
     process; tabulating them shard-by-shard shows how evenly buckets and
     traffic are spread. *)
  let shard_rows =
    List.filter_map
      (fun (n, v) ->
        match Dcs_obs.Metrics.shard_label n with
        | Some (base, shard) -> Some (shard, base, v)
        | None -> None)
      metric_totals
  in
  if shard_rows <> [] then begin
    Printf.printf "\nShard balance (metrics labelled {shard=N})\n";
    let ids = List.sort_uniq compare (List.map (fun (s, _, _) -> s) shard_rows) in
    let bases = List.sort_uniq compare (List.map (fun (_, b, _) -> b) shard_rows) in
    let rows =
      List.map
        (fun id ->
          string_of_int id
          :: List.map
               (fun base ->
                 match List.find_opt (fun (s, b, _) -> s = id && b = base) shard_rows with
                 | Some (_, _, v) -> Printf.sprintf "%.0f" v
                 | None -> "-")
               bases)
        ids
    in
    print_string (Table.render ~header:("shard" :: bases) rows)
  end;

  (* Gauges (sim traces). *)
  let gauges = List.concat_map (fun (s : Merge.shard) -> s.Merge.gauges) shards in
  if gauges <> [] then begin
    Printf.printf "\nGauges\n";
    let names = List.sort_uniq compare (List.map (fun (_, n, _) -> n) gauges) in
    let rows =
      List.map
        (fun name ->
          let vs = List.filter_map (fun (_, n, v) -> if n = name then Some v else None) gauges in
          let n = List.length vs in
          let sum = List.fold_left ( +. ) 0.0 vs in
          let mn = List.fold_left Float.min infinity vs in
          let mx = List.fold_left Float.max neg_infinity vs in
          [
            name;
            string_of_int n;
            Printf.sprintf "%.2f" (sum /. float_of_int n);
            Printf.sprintf "%.0f" mn;
            Printf.sprintf "%.0f" mx;
          ])
        names
    in
    print_string (Table.render ~header:[ "gauge"; "samples"; "mean"; "min"; "max" ] rows)
  end;

  (* Freeze episodes. *)
  let durations, open_freezes = freeze_episodes events in
  if durations <> [] || open_freezes > 0 then begin
    let n = List.length durations in
    let sum = List.fold_left ( +. ) 0.0 durations in
    let mx = List.fold_left Float.max 0.0 durations in
    Printf.printf "\nFreeze episodes (Rule 6): %d closed" n;
    if n > 0 then Printf.printf ", mean %.1f ms, max %.1f ms" (sum /. float_of_int n) mx;
    if open_freezes > 0 then Printf.printf ", %d still open" open_freezes;
    print_newline ()
  end;

  (* Slowest requests with their decomposed timelines. *)
  let by_latency = List.sort (fun a b -> compare (latency b) (latency a)) breakdowns in
  let rec take k = function [] -> [] | x :: tl -> if k = 0 then [] else x :: take (k - 1) tl in
  let slow = take slowest by_latency in
  if slow <> [] then begin
    Printf.printf "\nSlowest %d requests\n" (List.length slow);
    List.iter
      (fun (b : Merge.breakdown) ->
        Printf.printf
          "  %s %s: %.1f ms (%d hops, %s; local %.1f / queue %.1f / freeze %.1f / net %.1f / \
           token %.1f)\n"
          (pp_span_id b) (Mode.to_string b.Merge.b_mode) (latency b) b.b_hops
          (kind_label b.b_kind) b.b_local_ms b.b_queue_ms b.b_freeze_ms b.b_net_ms b.b_token_ms;
        List.iter
          (fun (e : Event.t) ->
            Printf.printf "    +%8.1f ms  n%-3d %s\n" (e.time -. b.Merge.b_start) e.node
              (Event.kind_name e.kind))
          b.b_events)
      slow
  end;

  if check then begin
    let failures = ref [] in
    if breakdowns = [] then failures := "no completed spans" :: !failures;
    if counters = None then failures := "no counters line" :: !failures
    else if not !counters_match then
      failures := "shard message counts do not match transport counters" :: !failures;
    if have_grant_metrics && not !grants_match then
      failures := "merged span grant mix does not match grants.* metrics" :: !failures;
    if dropped > 0 then
      failures := Printf.sprintf "%d frame(s) dropped at shutdown" dropped :: !failures;
    match !failures with
    | [] ->
        Printf.printf "\ncheck: OK (%d spans%s%s)\n" (List.length breakdowns)
          (if counters <> None then ", counters match" else "")
          (if have_grant_metrics then ", grant mix matches" else "")
    | fs ->
        Printf.printf "\ncheck: FAILED (%s)\n" (String.concat "; " (List.rev fs));
        exit 1
  end

let files_arg =
  Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc:"JSONL trace/shard file(s).")

let analyze_cmd =
  let slowest_arg =
    Arg.(value & opt int 5 & info [ "slowest" ] ~docv:"K"
           ~doc:"Show the K slowest requests with full timelines.")
  in
  let check_flag =
    Arg.(value & flag & info [ "check" ]
           ~doc:"Exit nonzero unless the merged trace has completed spans, the shards' message \
                 counts exactly match the embedded transport counters, the merged grant mix \
                 matches the grants.* metrics, and no frames were dropped.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyze one or more JSONL shards: merge, align clocks causally, per-mode latency \
             percentiles, per-span critical-path decomposition, grant-path breakdown, message \
             and metric crosschecks, slowest requests.")
    Term.(const analyze $ files_arg $ slowest_arg $ check_flag)

(* {1 top} *)

(* Tail state for one shard file. Bytes already consumed stay consumed;
   [pending] holds a trailing partial line until its newline arrives. *)
type tail = {
  t_path : string;
  mutable t_offset : int;
  mutable t_pending : string;
  mutable t_node : int;
  mutable t_requested : int;
  mutable t_grants : int;
  mutable t_local : int;
  mutable t_mf : int;
  mutable t_grants_prev : int;  (* at the previous render *)
  t_metrics : (string, float) Hashtbl.t;  (* latest snapshot values *)
}

let tail_read st =
  match open_in_bin st.t_path with
  | exception Sys_error _ -> []
  | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let len = in_channel_length ic in
      if len <= st.t_offset then []
      else begin
        seek_in ic st.t_offset;
        let chunk = really_input_string ic (len - st.t_offset) in
        st.t_offset <- len;
        let data = st.t_pending ^ chunk in
        let parts = String.split_on_char '\n' data in
        let rec split = function
          | [] -> []
          | [ last ] ->
              st.t_pending <- last;
              []
          | x :: tl -> x :: split tl
        in
        split parts
      end

let tail_ingest st lines =
  List.iter
    (fun raw ->
      if raw <> "" then
        match Jsonl.parse_line raw with
        | Error _ -> ()
        | Ok (Jsonl.Meta meta) -> (
            match List.assoc_opt "node" meta with
            | Some v -> st.t_node <- Option.value ~default:(-1) (int_of_string_opt v)
            | None -> ())
        | Ok (Jsonl.Ev e) -> (
            match e.Event.kind with
            | Event.Requested _ -> st.t_requested <- st.t_requested + 1
            | Event.Granted_local { hops; _ } ->
                st.t_grants <- st.t_grants + 1;
                st.t_local <- st.t_local + 1;
                if hops = 0 then st.t_mf <- st.t_mf + 1
            | Event.Granted_token _ -> st.t_grants <- st.t_grants + 1
            | _ -> ())
        | Ok (Jsonl.Metric { name; value; _ }) -> Hashtbl.replace st.t_metrics name value
        | Ok _ -> ())
    lines

let render_top tails ~interval ~clear =
  if clear then print_string "\027[2J\027[H";
  let rows =
    List.map
      (fun st ->
        let rate = float_of_int (st.t_grants - st.t_grants_prev) /. interval in
        st.t_grants_prev <- st.t_grants;
        let metric name = Hashtbl.find_opt st.t_metrics name in
        let fmt_i name =
          match metric name with Some v -> Printf.sprintf "%.0f" v | None -> "-"
        in
        let pct part whole =
          if whole = 0 then "-" else Printf.sprintf "%.0f%%" (100.0 *. float_of_int part /. float_of_int whole)
        in
        [
          (if st.t_node >= 0 then string_of_int st.t_node else "?");
          Printf.sprintf "%.1f" rate;
          string_of_int st.t_requested;
          string_of_int st.t_grants;
          pct st.t_local st.t_grants;
          pct st.t_mf st.t_grants;
          fmt_i "net.outbound_queue_depth";
          fmt_i "net.dropped_frames";
          fmt_i "net.reconnects";
          (match metric "net.backoff_ms" with Some v -> Printf.sprintf "%.0f" v | None -> "-");
        ])
      tails
  in
  print_string
    (Table.render
       ~header:
         [ "node"; "grants/s"; "reqs"; "grants"; "local"; "msg-free"; "queue"; "drops"; "reconn"; "backoff" ]
       rows);
  flush stdout

let top files interval iterations no_clear =
  let tails =
    List.map
      (fun path ->
        {
          t_path = path;
          t_offset = 0;
          t_pending = "";
          t_node = -1;
          t_requested = 0;
          t_grants = 0;
          t_local = 0;
          t_mf = 0;
          t_grants_prev = 0;
          t_metrics = Hashtbl.create 16;
        })
      files
  in
  let rec loop i =
    if iterations = 0 || i < iterations then begin
      List.iter (fun st -> tail_ingest st (tail_read st)) tails;
      render_top tails ~interval ~clear:(not no_clear);
      if iterations = 0 || i + 1 < iterations then Unix.sleepf interval;
      loop (i + 1)
    end
  in
  loop 0

let top_cmd =
  let interval_arg =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"S" ~doc:"Refresh period in seconds.")
  in
  let iterations_arg =
    Arg.(value & opt int 0 & info [ "iterations" ] ~docv:"N"
           ~doc:"Stop after N refreshes (0 = run until interrupted).")
  in
  let no_clear_flag =
    Arg.(value & flag & info [ "no-clear" ]
           ~doc:"Append refreshes instead of clearing the screen (for logs and tests).")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Tail live dcs-obs/2 shard files and render per-node throughput, queue depth and \
             grant mix every refresh.")
    Term.(const top $ files_arg $ interval_arg $ iterations_arg $ no_clear_flag)

let () =
  let doc = "Request-lifecycle trace capture and analysis for the DCS protocols." in
  let info = Cmd.info "dcs-trace" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ record_cmd; analyze_cmd; top_cmd ]))
