(* dcs-fuzz: differential protocol fuzzing against the sequential oracle.

     dcs-fuzz run     --seeds N ...      fuzz N seed-deterministic schedules
     dcs-fuzz replay  FILE...            replay corpus files, check expectations
     dcs-fuzz shrink  --seed S ...       minimize a failing case to a repro file

   Each case is a generated workload script driven through the simulated
   cluster under perturbed delivery orders (and optionally a fault plan or a
   seeded protocol mutation), with per-step safety oracles on and the
   observable grant/upgrade/release trace checked against Dcs_check.Oracle
   afterwards. [shrink] delta-debugs a failing case and writes a replayable
   corpus file. *)

open Cmdliner
module Fuzz = Dcs_check.Fuzz
module Script = Dcs_check.Script
module Shrink = Dcs_check.Shrink
module Corpus = Dcs_check.Corpus

let mutation_conv =
  Arg.conv
    ( (fun s ->
        match Fuzz.mutation_of_string s with
        | Some m -> Ok m
        | None -> Error (`Msg (Printf.sprintf "unknown mutation %S (weak-freeze|ignore-frozen)" s))),
      fun ppf m -> Format.pp_print_string ppf (Fuzz.mutation_to_string m) )

let plan_arg =
  Arg.(value & opt (some string) None & info [ "plan" ] ~docv:"PLAN"
         ~doc:(Printf.sprintf "Fault plan, one of %s."
                 (String.concat ", " Dcs_fault.Plan.names)))

let mutation_arg =
  Arg.(value & opt (some mutation_conv) None & info [ "mutation" ] ~docv:"MUT"
         ~doc:"Seeded protocol mutation (weak-freeze or ignore-frozen), for \
               checking that the checker still catches planted bugs.")

let nodes_arg = Arg.(value & opt int 32 & info [ "nodes" ] ~docv:"N" ~doc:"Cluster size.")
let locks_arg = Arg.(value & opt int 1 & info [ "locks" ] ~docv:"L" ~doc:"Lock count.")
let ops_arg = Arg.(value & opt int 120 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per case.")

let zipf_arg =
  Arg.(value & opt float 0.0 & info [ "zipf" ] ~docv:"THETA"
         ~doc:"Zipfian lock-choice skew in [0,1): 0 is uniform; 0.99 (the YCSB default) \
               concentrates conflict on a few hot locks.")

let check_zipf zipf =
  if zipf < 0.0 || zipf >= 1.0 then begin
    Printf.eprintf "dcs-fuzz: --zipf must be in [0, 1)\n";
    exit 2
  end

let check_plan plan =
  match plan with
  | Some p when not (List.mem p Dcs_fault.Plan.names) ->
      Printf.eprintf "dcs-fuzz: unknown plan %S (have: %s)\n" p
        (String.concat ", " Dcs_fault.Plan.names);
      exit 2
  | _ -> ()

(* {1 run} *)

let run_cmd =
  let seeds_arg =
    Arg.(value & opt int 500 & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to fuzz.")
  in
  let seed0_arg =
    Arg.(value & opt int64 0L & info [ "seed0" ] ~docv:"S" ~doc:"First seed (inclusive).")
  in
  let max_fails_arg =
    Arg.(value & opt int 5 & info [ "max-fails" ] ~docv:"K"
           ~doc:"Stop after K failing cases (0 = never stop early).")
  in
  let verbose_flag =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print a line per case, not just failures.")
  in
  let run seeds seed0 nodes locks ops zipf plan mutation max_fails verbose =
    check_plan plan;
    check_zipf zipf;
    let fails = ref 0 and run_count = ref 0 in
    let t0 = Unix.gettimeofday () in
    (try
       for i = 0 to seeds - 1 do
         let seed = Int64.add seed0 (Int64.of_int i) in
         let case = Fuzz.case ?plan ?mutation ~zipf ~seed ~nodes ~locks ~ops () in
         let v = Fuzz.run case in
         incr run_count;
         if Fuzz.failed v then begin
           incr fails;
           Format.printf "%a@." Fuzz.pp_verdict v;
           if max_fails > 0 && !fails >= max_fails then raise Exit
         end
         else if verbose then Format.printf "%a@." Fuzz.pp_verdict v
       done
     with Exit -> ());
    let dt = Unix.gettimeofday () -. t0 in
    Printf.printf "fuzzed %d case(s) in %.1f s: %d failing\n" !run_count dt !fails;
    if !fails > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:"Fuzz seed-deterministic schedules through the distributed protocol, checking \
             safety invariants on every step and oracle conformance on the trace.")
    Term.(const run $ seeds_arg $ seed0_arg $ nodes_arg $ locks_arg $ ops_arg $ zipf_arg
          $ plan_arg $ mutation_arg $ max_fails_arg $ verbose_flag)

(* {1 replay} *)

let replay_cmd =
  let files_arg =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"FILE" ~doc:"Corpus files to replay.")
  in
  let replay files =
    let bad = ref 0 in
    List.iter
      (fun path ->
        match Corpus.read ~path with
        | Error msg ->
            incr bad;
            Printf.printf "%-40s ERROR %s\n%!" path msg
        | Ok entry -> (
            match Corpus.check entry with
            | Ok v ->
                Printf.printf "%-40s ok (%s, %d ops, digest %016Lx)\n%!" path
                  (match entry.Corpus.expect with Corpus.Pass -> "pass" | Corpus.Fail -> "fail")
                  (List.length entry.Corpus.case.Fuzz.script.Script.ops)
                  v.Fuzz.digest
            | Error (msg, v) ->
                incr bad;
                Printf.printf "%-40s MISMATCH %s\n%!" path msg;
                Format.printf "%a@." Fuzz.pp_verdict v))
      files;
    if !bad > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Replay corpus files and verify each case still produces its recorded verdict.")
    Term.(const replay $ files_arg)

(* {1 shrink} *)

let shrink_cmd =
  let seed_arg =
    Arg.(value & opt int64 0L & info [ "seed" ] ~docv:"S" ~doc:"Seed of the failing case.")
  in
  let from_arg =
    Arg.(value & opt (some string) None & info [ "from" ] ~docv:"FILE"
           ~doc:"Shrink the case in an existing corpus file instead of a generated one.")
  in
  let out_arg =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the minimized repro here (default: print to stdout).")
  in
  let budget_arg =
    Arg.(value & opt int 400 & info [ "budget" ] ~docv:"RUNS"
           ~doc:"Max fuzz runs spent shrinking.")
  in
  let shrink seed nodes locks ops zipf plan mutation from out budget =
    check_plan plan;
    check_zipf zipf;
    let case =
      match from with
      | Some path -> (
          match Corpus.read ~path with
          | Ok e -> e.Corpus.case
          | Error msg ->
              Printf.eprintf "dcs-fuzz: %s: %s\n" path msg;
              exit 2)
      | None -> Fuzz.case ?plan ?mutation ~zipf ~seed ~nodes ~locks ~ops ()
    in
    let v = Fuzz.run case in
    if not (Fuzz.failed v) then begin
      Printf.eprintf "dcs-fuzz: case passes; nothing to shrink\n";
      Format.eprintf "%a@." Fuzz.pp_verdict v;
      exit 2
    end;
    Printf.printf "shrinking %d ops (budget %d runs)...\n%!"
      (List.length case.Fuzz.script.Script.ops) budget;
    let small = Shrink.shrink ~budget ~log:(Printf.printf "  %s\n%!") case in
    let v' = Fuzz.run small in
    Format.printf "minimized to %d op(s):@.%a@." (List.length small.Fuzz.script.Script.ops)
      Fuzz.pp_verdict v';
    let entry = { Corpus.case = small; expect = Corpus.Fail } in
    match out with
    | Some path ->
        Corpus.write ~path entry;
        Printf.printf "wrote %s\n" path
    | None -> print_string (Corpus.to_string entry)
  in
  Cmd.v
    (Cmd.info "shrink"
       ~doc:"Delta-debug a failing case down to a minimal replayable repro.")
    Term.(const shrink $ seed_arg $ nodes_arg $ locks_arg $ ops_arg $ zipf_arg $ plan_arg
          $ mutation_arg $ from_arg $ out_arg $ budget_arg)

let () =
  let doc = "Differential protocol fuzzer with a sequential reference oracle." in
  let info = Cmd.info "dcs-fuzz" ~version:"1.0.0" ~doc in
  exit (Cmd.eval (Cmd.group info [ run_cmd; replay_cmd; shrink_cmd ]))
