(* dcs-shard-node: the sharded lock-namespace service across real OS
   processes.

     dune exec bin/shard_node.exe -- demo --shards 2 --rounds 3 --check

   [demo] forks one worker process per shard plus a coordinator. Workers
   derive the traffic plan deterministically from the seed and execute
   the bursts of the buckets they home on a pooled Dcs_shard.Cell —
   exactly Router.run_burst, same seeds, same at-rest format. The
   coordinator runs the round barrier over TCP (Round_done frames) and
   relays live bucket migrations: the source worker ships its bucket
   store and parked jobs in a Handoff frame, the coordinator forwards it
   to the destination, waits for the Handoff_ack, commits the ownership
   flip and broadcasts the Dir_update every replica applies
   version-monotonically.

   At the end every worker hands its final bucket states to the
   coordinator (the same Handoff path), which folds the namespace digest.
   With --check the coordinator re-runs the identical plan in-process on
   multiple domains (Router.run ~jobs:2) and requires digest, grant
   count, burst count and final bucket ownership to match exactly, and
   cross-checks the merged per-shard telemetry ({shard=N}-labelled
   metrics) against both runs.

   [local] runs the in-process router alone and prints the balance
   table.

   With --telemetry DIR each worker streams a dcs-obs/2 shard to
   DIR/shard-<id>.jsonl with {shard=N}-labelled metrics; dcs-trace
   analyze renders them as a shard-balance table. *)

open Cmdliner
module Codec = Dcs_wire.Codec
module Shard_msg = Dcs_wire.Shard_msg
module Directory = Dcs_shard.Directory
module Cell = Dcs_shard.Cell
module Traffic = Dcs_shard.Traffic
module Router = Dcs_shard.Router
module Metrics = Dcs_obs.Metrics

let send oc ~src msg =
  Codec.write_frame oc { Codec.src; lock = 0; payload = Codec.Shard msg };
  flush oc

(* {1 Worker: one shard process} *)

let run_worker ~shard ~(cfg : Router.config) ~migrations ~port ~telemetry =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  let rec connect tries =
    try Unix.connect sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
    with Unix.Unix_error _ when tries > 0 ->
      Unix.sleepf 0.05;
      connect (tries - 1)
  in
  connect 100;
  let ic = Unix.in_channel_of_descr sock and oc = Unix.out_channel_of_descr sock in
  let send m = send oc ~src:shard m in
  let tele =
    Option.map
      (fun dir ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Dcs_obs.Shard.create
          ~path:(Filename.concat dir (Printf.sprintf "shard-%d.jsonl" shard))
          ~meta:
            [
              ("node", string_of_int shard);
              ("shards", string_of_int cfg.Router.shards);
              ("buckets", string_of_int cfg.Router.buckets);
              ("lock_sets", string_of_int cfg.Router.lock_sets);
              ("seed", Int64.to_string cfg.Router.seed);
            ]
          ())
      telemetry
  in
  let reg = Metrics.create () in
  let m_bursts = Metrics.counter reg (Metrics.labelled "shard.bursts" ~shard) in
  let m_grants = Metrics.counter reg (Metrics.labelled "shard.grants" ~shard) in
  let m_msgs = Metrics.counter reg (Metrics.labelled "shard.msgs" ~shard) in
  let m_owned = Metrics.gauge reg (Metrics.labelled "shard.buckets_owned" ~shard) in
  let dir = Directory.create ~buckets:cfg.Router.buckets ~shards:cfg.Router.shards in
  let cell = Cell.create ~latency:cfg.Router.latency ~nodes:cfg.Router.nodes () in
  let stores = Array.init cfg.Router.buckets (fun _ -> Hashtbl.create 16) in
  let plan =
    Traffic.plan ~skew:cfg.Router.skew ~seed:cfg.Router.seed ~lock_sets:cfg.Router.lock_sets
      ~rounds:cfg.Router.rounds ~jobs_per_round:cfg.Router.jobs_per_round ()
  in
  let replays = ref [] in
  let owned_buckets () =
    let n = ref 0 in
    for b = 0 to cfg.Router.buckets - 1 do
      if Directory.home dir ~bucket:b = shard then incr n
    done;
    !n
  in
  let install_handoff ~bucket ~entries ~parked =
    Hashtbl.reset stores.(bucket);
    List.iter
      (fun (e : Shard_msg.handoff_entry) ->
        Hashtbl.replace stores.(bucket) e.Shard_msg.set (Router.set_state_of_entry e))
      entries;
    replays := !replays @ List.map (fun (set, burst) -> { Traffic.set; burst }) parked
  in
  for round = 0 to cfg.Router.rounds - 1 do
    (* Every replica starts the round's migrations deterministically:
       from here the bucket accepts no work, so its jobs park. *)
    List.iter
      (fun (m : Router.migration) ->
        if m.Router.round = round then
          Directory.begin_migration dir ~bucket:m.Router.bucket ~dst:m.Router.dst)
      migrations;
    let mine = ref [] in
    let parked = Array.make cfg.Router.buckets [] in
    let route (job : Traffic.job) =
      let bucket = Router.bucket_of_set ~buckets:cfg.Router.buckets job.Traffic.set in
      match Directory.migrating dir ~bucket with
      | Some _ ->
          if Directory.home dir ~bucket = shard then parked.(bucket) <- job :: parked.(bucket)
      | None -> if Directory.home dir ~bucket = shard then mine := job :: !mine
    in
    let pending = !replays in
    replays := [];
    List.iter route pending;
    Array.iter route plan.Traffic.rounds.(round);
    let round_bursts = ref 0 and round_grants = ref 0 in
    List.iter
      (fun (job : Traffic.job) ->
        let bucket = Router.bucket_of_set ~buckets:cfg.Router.buckets job.Traffic.set in
        let grants, _upgrades, msgs = Router.run_burst cfg cell stores.(bucket) job in
        incr round_bursts;
        round_grants := !round_grants + grants;
        Metrics.incr m_bursts;
        Metrics.add m_grants grants;
        Metrics.add m_msgs msgs)
      (List.rev !mine);
    (* Source side of a migration: the full bucket store and the parked
       jobs leave in one Handoff. *)
    List.iter
      (fun (m : Router.migration) ->
        if m.Router.round = round && Directory.home dir ~bucket:m.Router.bucket = shard then begin
          let bucket = m.Router.bucket in
          send
            (Shard_msg.Handoff
               {
                 bucket;
                 version = Directory.version dir ~bucket + 1;
                 entries = Router.entries_of_store stores.(bucket);
                 parked =
                   List.map
                     (fun (j : Traffic.job) -> (j.Traffic.set, j.Traffic.burst))
                     (List.rev parked.(bucket));
               });
          Hashtbl.reset stores.(bucket)
        end)
      migrations;
    send (Shard_msg.Round_done { shard; round; bursts = !round_bursts; grants = !round_grants });
    Metrics.set m_owned (float_of_int (owned_buckets ()));
    Option.iter (fun t -> Dcs_obs.Shard.snapshot t reg) tele;
    (* Barrier: consume coordinator traffic (inbound handoffs, directory
       updates) until this round's release. *)
    let rec wait () =
      match Codec.read_frame ic with
      | None -> failwith (Printf.sprintf "shard %d: coordinator closed mid-round" shard)
      | Some { Codec.payload = Codec.Shard msg; _ } -> (
          match msg with
          | Shard_msg.Handoff { bucket; version; entries; parked } ->
              install_handoff ~bucket ~entries ~parked;
              send (Shard_msg.Handoff_ack { bucket; version });
              wait ()
          | Shard_msg.Dir_update e -> (
              match Directory.apply_update dir e with
              | `Applied | `Stale -> wait ()
              | `Conflict ->
                  failwith (Printf.sprintf "shard %d: directory split-brain" shard))
          | Shard_msg.Round_done { round = r; _ } when r = round -> ()
          | _ -> wait ())
      | Some _ -> wait ()
    in
    wait ()
  done;
  (* Final report: every owned bucket's state goes back through the same
     handoff path, so the coordinator folds the digest from exactly the
     bytes a migration would ship. *)
  for bucket = 0 to cfg.Router.buckets - 1 do
    if Directory.home dir ~bucket = shard then
      send
        (Shard_msg.Handoff
           {
             bucket;
             version = Directory.version dir ~bucket;
             entries = Router.entries_of_store stores.(bucket);
             parked = [];
           })
  done;
  send
    (Shard_msg.Round_done
       {
         shard;
         round = cfg.Router.rounds;
         bursts = Metrics.value m_bursts;
         grants = Metrics.value m_grants;
       });
  Option.iter
    (fun t ->
      Dcs_obs.Shard.snapshot t reg;
      Dcs_obs.Shard.close t)
    tele;
  close_out_noerr oc

(* {1 Coordinator} *)

(* [Closed] marks a worker connection hitting EOF: expected once per
   worker after its final Round_done, fatal any earlier — the coordinator
   must fail loudly rather than wait forever for frames that can never
   arrive. *)
type inbound = Frame of { conn : int; env : Codec.envelope } | Closed of int

let run_coordinator ~(cfg : Router.config) ~migrations ~listen ~telemetry ~check =
  let queue = Queue.create () in
  let mu = Mutex.create () and cv = Condition.create () in
  let push item =
    Mutex.lock mu;
    Queue.push item queue;
    Condition.signal cv;
    Mutex.unlock mu
  in
  let next () =
    Mutex.lock mu;
    while Queue.is_empty queue do
      Condition.wait cv mu
    done;
    let m = Queue.pop queue in
    Mutex.unlock mu;
    m
  in
  let conns = Array.make cfg.Router.shards None in
  let readers =
    List.init cfg.Router.shards (fun i ->
        Thread.create
          (fun () ->
            (* Accept order is arbitrary; the envelope src names the shard. *)
            let fd, _ = Unix.accept listen in
            let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
            conns.(i) <- Some oc;
            let rec loop () =
              match Codec.read_frame ic with
              | Some env ->
                  push (Frame { conn = i; env });
                  loop ()
              | None -> push (Closed i)
              (* A killed worker resets the connection rather than closing
                 it; either way the frames stop — same signal. *)
              | exception _ -> push (Closed i)
            in
            loop ())
          ())
  in
  let shard_conn = Array.make cfg.Router.shards (-1) in
  let oc_of_shard s =
    match conns.(shard_conn.(s)) with
    | Some oc -> oc
    | None -> failwith "coordinator: shard connection lost"
  in
  let dir = Directory.create ~buckets:cfg.Router.buckets ~shards:cfg.Router.shards in
  let final = Hashtbl.create 64 in
  (* collected final set states *)
  let handoffs = Hashtbl.create 4 in
  (* bucket -> pending migration handoff *)
  let sh_bursts = Array.make cfg.Router.shards 0 in
  let sh_grants = Array.make cfg.Router.shards 0 in
  for round = 0 to cfg.Router.rounds do
    (* Round cfg.rounds is the final report: workers send their bucket
       states, then a closing Round_done. *)
    let done_from = Array.make cfg.Router.shards false in
    while Array.exists not done_from do
      match next () with
      | Closed c ->
          (* Legitimate only in the final report round, from a worker whose
             closing Round_done was already collected; any earlier EOF means
             a dead worker, and waiting for its frames would hang forever. *)
          let finished = ref false in
          for s = 0 to cfg.Router.shards - 1 do
            if shard_conn.(s) = c && done_from.(s) then finished := true
          done;
          if not (round = cfg.Router.rounds && !finished) then
            failwith "coordinator: worker disconnected mid-run"
      | Frame { conn; env } -> (
      let src = env.Codec.src in
      shard_conn.(src) <- conn;
      match env.Codec.payload with
      | Codec.Shard (Shard_msg.Round_done { shard; round = r; bursts; grants }) ->
          if r <> round then
            failwith (Printf.sprintf "coordinator: shard %d at round %d, expected %d" shard r round);
          if round = cfg.Router.rounds then begin
            sh_bursts.(shard) <- bursts;
            sh_grants.(shard) <- grants
          end;
          done_from.(shard) <- true
      | Codec.Shard (Shard_msg.Handoff { bucket; version; entries; parked }) ->
          if round = cfg.Router.rounds then
            (* Final report: fold the entries into the namespace view. *)
            List.iter
              (fun (e : Shard_msg.handoff_entry) ->
                Hashtbl.replace final e.Shard_msg.set (Router.set_state_of_entry e))
              entries
          else Hashtbl.replace handoffs bucket (version, entries, parked)
      | _ -> failwith "coordinator: unexpected frame")
    done;
    if round < cfg.Router.rounds then begin
      (* Commit this round's migrations: forward each stored handoff to
         its destination, wait for the ack, flip ownership, broadcast. *)
      List.iter
        (fun (m : Router.migration) ->
          if m.Router.round = round then begin
            let bucket = m.Router.bucket in
            let version, entries, parked =
              match Hashtbl.find_opt handoffs bucket with
              | Some h -> h
              | None -> failwith (Printf.sprintf "coordinator: no handoff for bucket %d" bucket)
            in
            Hashtbl.remove handoffs bucket;
            Directory.begin_migration dir ~bucket ~dst:m.Router.dst;
            send (oc_of_shard m.Router.dst) ~src:cfg.Router.shards
              (Shard_msg.Handoff { bucket; version; entries; parked });
            let await_ack () =
              match next () with
              | Closed _ -> failwith "coordinator: worker disconnected awaiting Handoff_ack"
              | Frame { conn; env } -> (
                  shard_conn.(env.Codec.src) <- conn;
                  match env.Codec.payload with
                  | Codec.Shard (Shard_msg.Handoff_ack { bucket = b; version = v })
                    when b = bucket && v = version ->
                      ()
                  | _ -> failwith "coordinator: expected Handoff_ack")
            in
            await_ack ();
            Directory.commit_migration dir ~bucket;
            let update = Shard_msg.Dir_update (Directory.entry dir ~bucket) in
            for s = 0 to cfg.Router.shards - 1 do
              send (oc_of_shard s) ~src:cfg.Router.shards update
            done
          end)
        migrations;
      (* Release the barrier. *)
      for s = 0 to cfg.Router.shards - 1 do
        send (oc_of_shard s) ~src:cfg.Router.shards
          (Shard_msg.Round_done { shard = cfg.Router.shards; round; bursts = 0; grants = 0 })
      done
    end
  done;
  List.iter Thread.join readers;
  let digest =
    Router.digest_of_store ~lock_sets:cfg.Router.lock_sets (fun set -> Hashtbl.find_opt final set)
  in
  let bursts = Array.fold_left ( + ) 0 sh_bursts in
  let grants = Array.fold_left ( + ) 0 sh_grants in
  Printf.printf "distributed run: %d shards, %d rounds, %d bursts, %d grants\n" cfg.Router.shards
    cfg.Router.rounds bursts grants;
  Array.iteri
    (fun s b ->
      let owned = ref 0 in
      for bk = 0 to cfg.Router.buckets - 1 do
        if Directory.home dir ~bucket:bk = s then incr owned
      done;
      Printf.printf "  shard %d: %d bursts, %d grants, %d buckets\n" s b sh_grants.(s) !owned)
    sh_bursts;
  Printf.printf "namespace digest: %Lx\n%!" digest;
  if not check then 0
  else begin
    (* The same plan, in-process, fanned over domains: byte-identical
       outcome or the distributed path is wrong. *)
    let reference = Router.run ~jobs:2 ~migrations cfg in
    let failures = ref [] in
    let expect name ok = if not ok then failures := name :: !failures in
    expect
      (Printf.sprintf "digest %Lx vs in-process %Lx" digest reference.Router.digest)
      (digest = reference.Router.digest);
    expect "burst count" (bursts = reference.Router.bursts);
    expect "grant count" (grants = reference.Router.grants);
    List.iter
      (fun (s : Router.shard_stat) ->
        expect
          (Printf.sprintf "shard %d balance" s.Router.shard)
          (s.Router.bursts = sh_bursts.(s.Router.shard)
          && s.Router.grants = sh_grants.(s.Router.shard)))
      reference.Router.shard_stats;
    (* Merged telemetry must tell the same story. *)
    (match telemetry with
    | None -> ()
    | Some dir_path ->
        let files =
          List.init cfg.Router.shards (fun s ->
              Filename.concat dir_path (Printf.sprintf "shard-%d.jsonl" s))
        in
        (match Dcs_obs.Merge.load files with
        | Error e -> expect ("telemetry load: " ^ e) false
        | Ok (shards, errors) ->
            expect "telemetry schema errors" (errors = []);
            let totals = Dcs_obs.Merge.metric_totals shards in
            let labelled_sum base =
              List.fold_left
                (fun acc (n, v) ->
                  match Metrics.shard_label n with
                  | Some (b, _) when b = base -> acc + int_of_float v
                  | _ -> acc)
                0 totals
            in
            expect "telemetry grants" (labelled_sum "shard.grants" = grants);
            expect "telemetry bursts" (labelled_sum "shard.bursts" = bursts)));
    match !failures with
    | [] ->
        Printf.printf
          "check OK: distributed = in-process multi-domain (digest, bursts, grants, balance%s)\n"
          (if telemetry = None then "" else ", merged telemetry");
        0
    | fs ->
        List.iter (fun f -> Printf.printf "check FAILED: %s\n" f) fs;
        1
  end

(* {1 Commands} *)

let cfg_of shards buckets lock_sets nodes rounds jobs_per_round ops skew seed =
  {
    Router.default_config with
    Router.shards;
    buckets;
    lock_sets;
    nodes;
    rounds;
    jobs_per_round;
    ops_per_burst = ops;
    skew;
    seed;
  }

let shards_arg = Arg.(value & opt int 2 & info [ "shards" ] ~docv:"S" ~doc:"Shard processes.")
let buckets_arg = Arg.(value & opt int 8 & info [ "buckets" ] ~docv:"B" ~doc:"Namespace buckets.")

let lock_sets_arg =
  Arg.(value & opt int 16 & info [ "lock-sets" ] ~docv:"L" ~doc:"Lock sets in the namespace.")

let nodes_arg =
  Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"N" ~doc:"Population per lock set.")

let rounds_arg = Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds to run.")

let jobs_per_round_arg =
  Arg.(value & opt int 8 & info [ "jobs-per-round" ] ~docv:"J" ~doc:"Bursts per round.")

let ops_arg = Arg.(value & opt int 4 & info [ "ops" ] ~docv:"OPS" ~doc:"Operations per burst.")

let skew_arg =
  Arg.(value & opt float 0.0 & info [ "skew" ] ~docv:"THETA" ~doc:"Zipf skew over lock sets.")

let seed_arg = Arg.(value & opt int64 42L & info [ "seed" ] ~docv:"SEED" ~doc:"Base seed.")

let port_arg =
  Arg.(value & opt int 7571 & info [ "port" ] ~docv:"PORT" ~doc:"Coordinator TCP port.")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"DIR"
        ~doc:
          "Stream one dcs-obs/2 shard per worker to DIR/shard-<id>.jsonl with \
           {shard=N}-labelled metrics (dcs-trace analyze shows the balance table).")

let check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:
          "Re-run the identical plan in-process on multiple domains and require digest, \
           bursts, grants, per-shard balance and merged telemetry to match exactly.")

let migrate_arg =
  Arg.(
    value
    & opt_all (t3 ~sep:':' int int int) []
    & info [ "migrate" ] ~docv:"ROUND:BUCKET:DST"
        ~doc:"Migrate BUCKET to shard DST at the end of ROUND. Repeatable.")

let parse_migrations ~(cfg : Router.config) specs =
  let migrations =
    List.map
      (fun (round, bucket, dst) ->
        if round < 0 || round >= cfg.Router.rounds - 1 then begin
          (* The demo has a fixed round count, so parked jobs must have a
             later round to replay in. *)
          prerr_endline "migration round must satisfy 0 <= round < rounds - 1";
          exit 2
        end;
        { Router.round; bucket; dst })
      specs
  in
  (* Reject bad schedules before forking: an invalid one (self-migration,
     out-of-range ids) would otherwise crash every worker and the
     coordinator mid-protocol. *)
  (try Router.validate_migrations cfg migrations
   with Invalid_argument msg ->
     prerr_endline msg;
     exit 2);
  migrations

let demo_cmd =
  let run shards buckets lock_sets nodes rounds jobs_per_round ops skew seed port telemetry
      check migrate =
    let cfg = cfg_of shards buckets lock_sets nodes rounds jobs_per_round ops skew seed in
    let migrations = parse_migrations ~cfg migrate in
    let listen = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt listen Unix.SO_REUSEADDR true;
    Unix.bind listen (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.listen listen shards;
    Printf.printf "spawning %d shard workers (%d buckets, %d lock sets, %d rounds)\n%!" shards
      buckets lock_sets rounds;
    let children =
      List.init shards (fun shard ->
          match Unix.fork () with
          | 0 ->
              Unix.close listen;
              run_worker ~shard ~cfg ~migrations ~port ~telemetry;
              exit 0
          | pid -> pid)
    in
    let code = run_coordinator ~cfg ~migrations ~listen ~telemetry ~check in
    let failed = ref 0 in
    List.iter
      (fun pid -> match Unix.waitpid [] pid with _, Unix.WEXITED 0 -> () | _ -> incr failed)
      children;
    Unix.close listen;
    if !failed > 0 then begin
      Printf.printf "%d workers failed\n" !failed;
      exit 1
    end;
    exit code
  in
  Cmd.v
    (Cmd.info "demo" ~doc:"Fork a sharded service across processes and run the round loop.")
    Term.(
      const run $ shards_arg $ buckets_arg $ lock_sets_arg $ nodes_arg $ rounds_arg
      $ jobs_per_round_arg $ ops_arg $ skew_arg $ seed_arg $ port_arg $ telemetry_arg
      $ check_flag $ migrate_arg)

let local_cmd =
  let jobs_arg =
    Arg.(value & opt int 2 & info [ "jobs" ] ~docv:"D" ~doc:"Worker domains per round.")
  in
  let run shards buckets lock_sets nodes rounds jobs_per_round ops skew seed jobs migrate =
    let cfg = cfg_of shards buckets lock_sets nodes rounds jobs_per_round ops skew seed in
    let migrations = parse_migrations ~cfg migrate in
    let r = Router.run ~jobs ~migrations cfg in
    Printf.printf "%d shards, %d rounds run: %d bursts, %d grants, %d upgrades, %d msgs\n"
      cfg.Router.shards r.Router.rounds_run r.Router.bursts r.Router.grants r.Router.upgrades
      r.Router.msgs;
    List.iter
      (fun (s : Router.shard_stat) ->
        Printf.printf "  shard %d: %d bursts, %d grants, %d msgs, %d buckets\n" s.Router.shard
          s.Router.bursts s.Router.grants s.Router.msgs s.Router.buckets_owned)
      r.Router.shard_stats;
    if r.Router.migrations_applied > 0 then
      Printf.printf "migrations: %d applied, %d jobs replayed, %d handoff bytes\n"
        r.Router.migrations_applied r.Router.parked_replayed r.Router.handoff_bytes;
    Printf.printf "namespace digest: %Lx\n" r.Router.digest
  in
  Cmd.v
    (Cmd.info "local" ~doc:"Run the sharded router in-process and print the balance table.")
    Term.(
      const run $ shards_arg $ buckets_arg $ lock_sets_arg $ nodes_arg $ rounds_arg
      $ jobs_per_round_arg $ ops_arg $ skew_arg $ seed_arg $ jobs_arg $ migrate_arg)

let () =
  let info =
    Cmd.info "shard-node"
      ~doc:"The sharded lock-namespace service across processes (dcs_shard over TCP)."
  in
  exit (Cmd.eval (Cmd.group info [ demo_cmd; local_cmd ]))
