(* Unit and property tests for the mode algebra: the paper's Tables 1(a),
   1(b), 2(a), 2(b) and the lemmas the protocol relies on. *)

open Dcs_modes
module Q = QCheck2

let check = Alcotest.check
let checkb = Alcotest.check Alcotest.bool

(* {1 Mode basics} *)

let test_strength_order () =
  check Alcotest.int "IR" 1 (Mode.strength Mode.IR);
  check Alcotest.int "R" 2 (Mode.strength Mode.R);
  check Alcotest.int "U" 3 (Mode.strength Mode.U);
  check Alcotest.int "IW = U" (Mode.strength Mode.U) (Mode.strength Mode.IW);
  check Alcotest.int "W" 4 (Mode.strength Mode.W);
  checkb "bottom weakest" true (Compat.strictly_weaker None (Some Mode.IR))

let test_string_roundtrip () =
  List.iter
    (fun m ->
      check Testkit.mode "roundtrip" m (Option.get (Mode.of_string (Mode.to_string m)));
      check Testkit.mode "lowercase" m
        (Option.get (Mode.of_string (String.lowercase_ascii (Mode.to_string m)))))
    Mode.all;
  check Alcotest.(option Testkit.mode) "garbage" None (Mode.of_string "X")

let test_index_roundtrip () =
  List.iter (fun m -> check Testkit.mode "index" m (Mode.of_index (Mode.index m))) Mode.all;
  Alcotest.check_raises "out of range" (Invalid_argument "Mode.of_index: 9") (fun () ->
      ignore (Mode.of_index 9))

(* {1 Table 1(a): the full compatibility matrix, cell by cell} *)

let expected_conflicts =
  (* (m1, m2) pairs that must conflict, per the OMG concurrency service. *)
  [
    (Mode.IR, Mode.W);
    (Mode.R, Mode.IW);
    (Mode.R, Mode.W);
    (Mode.U, Mode.U);
    (Mode.U, Mode.IW);
    (Mode.U, Mode.W);
    (Mode.IW, Mode.W);
    (Mode.W, Mode.W);
  ]

let conflicts m1 m2 =
  List.exists
    (fun (a, b) -> (Mode.equal a m1 && Mode.equal b m2) || (Mode.equal a m2 && Mode.equal b m1))
    expected_conflicts

let test_compat_matrix () =
  List.iter
    (fun m1 ->
      List.iter
        (fun m2 ->
          checkb
            (Printf.sprintf "%s/%s" (Mode.to_string m1) (Mode.to_string m2))
            (not (conflicts m1 m2))
            (Compat.compatible m1 m2))
        Mode.all)
    Mode.all

let test_compat_symmetric () =
  List.iter
    (fun m1 ->
      List.iter
        (fun m2 -> checkb "symmetric" (Compat.compatible m1 m2) (Compat.compatible m2 m1))
        Mode.all)
    Mode.all

let test_bottom_compatible_with_all () =
  List.iter (fun m -> checkb "bottom" true (Compat.compatible_owned None m)) Mode.all

(* Definition 1: strictly stronger modes are compatible with strictly fewer
   modes (U and IW tie in strength and cardinality but differ in set). *)
let test_strength_vs_compat_cardinality () =
  let card m = Mode_set.cardinal (Compat.compatible_set m) in
  List.iter
    (fun m1 ->
      List.iter
        (fun m2 ->
          if Mode.strength m1 < Mode.strength m2 then
            checkb
              (Printf.sprintf "|compat %s| > |compat %s|" (Mode.to_string m1) (Mode.to_string m2))
              true
              (card m1 > card m2))
        Mode.all)
    Mode.all

(* {1 Table 1(b): non-token grants} *)

let test_child_grant_table () =
  (* ⊥ grants nothing. *)
  List.iter (fun m -> checkb "bottom grants nothing" false (Compat.can_child_grant ~owned:None m)) Mode.all;
  (* U and W can never be granted by a non-token node. *)
  List.iter
    (fun owned ->
      checkb "no child grant of U" false (Compat.can_child_grant ~owned:(Some owned) Mode.U);
      checkb "no child grant of W" false (Compat.can_child_grant ~owned:(Some owned) Mode.W))
    Mode.all;
  (* The expected positive cells. *)
  let expect_yes =
    [
      (Mode.IR, Mode.IR);
      (Mode.R, Mode.IR);
      (Mode.R, Mode.R);
      (Mode.U, Mode.IR);
      (Mode.U, Mode.R);
      (Mode.IW, Mode.IR);
      (Mode.IW, Mode.IW);
    ]
  in
  List.iter
    (fun owned ->
      List.iter
        (fun m ->
          let expected = List.exists (fun (a, b) -> Mode.equal a owned && Mode.equal b m) expect_yes in
          checkb
            (Printf.sprintf "grant %s under %s" (Mode.to_string m) (Mode.to_string owned))
            expected
            (Compat.can_child_grant ~owned:(Some owned) m))
        Mode.all)
    Mode.all

(* Rule 3.2: token node grants iff compatible; transfers iff strictly
   stronger than owned. U and W can only ever be served by transfer. *)
let test_token_grant_and_transfer () =
  List.iter
    (fun owned ->
      List.iter
        (fun m ->
          checkb "token grant = compat" (Compat.compatible owned m)
            (Compat.token_can_grant ~owned:(Some owned) m))
        Mode.all)
    Mode.all;
  List.iter (fun m -> checkb "bottom token grant" true (Compat.token_can_grant ~owned:None m)) Mode.all;
  List.iter
    (fun m -> checkb "transfer from bottom" true (Compat.token_must_transfer ~owned:None m))
    Mode.all;
  (* Whenever a U or W is token-grantable, it must be by transfer. *)
  List.iter
    (fun owned ->
      List.iter
        (fun m ->
          if Compat.token_can_grant ~owned m then
            match m with
            | Mode.U | Mode.W -> checkb "U/W always transfer" true (Compat.token_must_transfer ~owned m)
            | Mode.IR | Mode.R | Mode.IW -> ())
        [ Mode.U; Mode.W ])
    (None :: List.map Option.some Mode.all)

(* {1 Table 2(a): queue or forward} *)

let test_queueable_table () =
  List.iter (fun m -> checkb "no pending, forward" false (Compat.queueable ~pending:None m)) Mode.all;
  (* W row: queue everything (token-bound). *)
  List.iter (fun m -> checkb "W queues all" true (Compat.queueable ~pending:(Some Mode.W) m)) Mode.all;
  (* U row: queue IR, R, U; forward IW, W. *)
  let u_row = [ (Mode.IR, true); (Mode.R, true); (Mode.U, true); (Mode.IW, false); (Mode.W, false) ] in
  List.iter
    (fun (m, expected) ->
      checkb (Printf.sprintf "U row %s" (Mode.to_string m)) expected
        (Compat.queueable ~pending:(Some Mode.U) m))
    u_row;
  (* Copy-bound rows follow the child-grant rule. *)
  List.iter
    (fun pending ->
      List.iter
        (fun m ->
          checkb "copy-bound row" (Compat.can_child_grant ~owned:(Some pending) m)
            (Compat.queueable ~pending:(Some pending) m))
        Mode.all)
    [ Mode.IR; Mode.R; Mode.IW ]

(* Custody-cycle freedom: cross-mode queueability strictly descends, so any
   absorption cycle would have to be same-mode (then broken by the age
   rule). This is the lemma the deadlock-freedom argument rests on. *)
let test_queueable_acyclic_across_modes () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (Mode.equal a b) then
            checkb
              (Printf.sprintf "%s/%s not mutually queueable" (Mode.to_string a) (Mode.to_string b))
              false
              (Compat.queueable ~pending:(Some a) b && Compat.queueable ~pending:(Some b) a))
        Mode.all)
    Mode.all

(* {1 Table 2(b): frozen modes} *)

(* Every legible cell of the paper's Table 2(b). *)
let test_freeze_table_paper_cells () =
  let cell owned m = Compat.freeze_set ~owned:(Some owned) m in
  let set = Mode_set.of_list in
  check Testkit.mode_set "R/IW" (set [ Mode.R; Mode.U ]) (cell Mode.R Mode.IW);
  check Testkit.mode_set "U/IW" (set [ Mode.R ]) (cell Mode.U Mode.IW);
  check Testkit.mode_set "IW/R" (set [ Mode.IW ]) (cell Mode.IW Mode.R);
  check Testkit.mode_set "IW/U" (set [ Mode.IW ]) (cell Mode.IW Mode.U);
  check Testkit.mode_set "IR/W"
    (set [ Mode.IR; Mode.R; Mode.U; Mode.IW ])
    (cell Mode.IR Mode.W);
  check Testkit.mode_set "R/W" (set [ Mode.IR; Mode.R; Mode.U ]) (cell Mode.R Mode.W);
  check Testkit.mode_set "U/W" (set [ Mode.IR; Mode.R ]) (cell Mode.U Mode.W);
  check Testkit.mode_set "IW/W" (set [ Mode.IR; Mode.IW ]) (cell Mode.IW Mode.W)

let test_freeze_set_properties () =
  List.iter
    (fun owned ->
      List.iter
        (fun m ->
          let frozen = Compat.freeze_set ~owned m in
          (* Frozen modes are grantable under owned... *)
          Mode_set.to_list frozen
          |> List.iter (fun x -> checkb "frozen grantable" true (Compat.compatible_owned owned x));
          (* ...and conflict with the waiting request. *)
          Mode_set.to_list frozen
          |> List.iter (fun x -> checkb "frozen conflicts" false (Compat.compatible x m)))
        Mode.all)
    (None :: List.map Option.some Mode.all)

(* {1 The local-knowledge safety lemma (paper §3.4)} *)

let gen_compatible_multiset =
  (* Random multiset of pairwise-compatible modes, built greedily. *)
  Q.Gen.(
    list_size (int_bound 6) Testkit.gen_mode >|= fun candidates ->
    List.fold_left
      (fun acc m -> if List.for_all (fun h -> Compat.compatible h m) acc then m :: acc else acc)
      [] candidates)

let prop_local_knowledge =
  Q.Test.make ~name:"compat with strongest implies compat with all" ~count:2000
    Q.Gen.(pair gen_compatible_multiset Testkit.gen_mode)
    (fun (held, m) ->
      match Compat.strongest held with
      | None -> true
      | Some strongest ->
          (not (Compat.compatible strongest m)) || Compat.compatible_with_all held m)

let prop_strongest_is_member =
  Q.Test.make ~name:"strongest returns a held mode of maximal strength" ~count:1000
    Q.Gen.(list_size (int_bound 8) Testkit.gen_mode)
    (fun held ->
      match Compat.strongest held with
      | None -> held = []
      | Some s ->
          List.exists (Mode.equal s) held
          && List.for_all (fun m -> Mode.strength m <= Mode.strength s) held)

(* {1 Mode_set vs a list model} *)

let prop_mode_set_model =
  Q.Test.make ~name:"Mode_set agrees with a sorted-list model" ~count:1000
    Q.Gen.(pair (list_size (int_bound 10) Testkit.gen_mode) (list_size (int_bound 10) Testkit.gen_mode))
    (fun (xs, ys) ->
      let a = Mode_set.of_list xs and b = Mode_set.of_list ys in
      let model l = List.sort_uniq Mode.compare l in
      let to_l s = Mode_set.to_list s in
      to_l (Mode_set.union a b) = model (xs @ ys)
      && to_l (Mode_set.inter a b) = model (List.filter (fun m -> List.mem m ys) xs)
      && to_l (Mode_set.diff a b) = model (List.filter (fun m -> not (List.mem m ys)) xs)
      && Mode_set.cardinal a = List.length (model xs)
      && Mode_set.subset (Mode_set.inter a b) a
      && Mode_set.equal a (Mode_set.of_bits (Mode_set.to_bits a)))

let prop_mode_set_mem =
  Q.Test.make ~name:"add/remove/mem laws" ~count:500
    Q.Gen.(pair Testkit.gen_mode (list_size (int_bound 10) Testkit.gen_mode))
    (fun (m, xs) ->
      let s = Mode_set.of_list xs in
      Mode_set.mem m (Mode_set.add m s)
      && (not (Mode_set.mem m (Mode_set.remove m s)))
      && Mode_set.is_empty Mode_set.empty
      && Mode_set.cardinal Mode_set.full = 5)

(* {1 Table rendering} *)

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let test_render_tables () =
  let t1a = Compat.render_table `Compat in
  checkb "1a mentions IR" true (contains ~needle:"IR" t1a);
  let t2b = Compat.render_table `Freeze in
  checkb "2b has the IW/R cell" true (contains ~needle:"IW" t2b);
  List.iter
    (fun k -> checkb "non-empty" true (String.length (Compat.render_table k) > 50))
    [ `Compat; `Child_grant; `Queue_forward; `Freeze ]

(* {1 Decision fast path}

   The precomputed bitmask tables must agree with the derivational Compat
   predicates on every cell: all 6 owned codes (⊥ plus the five modes) ×
   all 5 request modes per code-indexed table, and all 25 mode pairs for
   compatibility. Decision asserts this itself at init; these tests keep
   the cross-check visible and cover the bit-set helpers too. *)

let owned_options = None :: List.map (fun m -> Some m) Mode.all

let test_decision_codes () =
  List.iter
    (fun o ->
      let c = Decision.owned_code o in
      checkb "code in range" true (c >= 0 && c <= 5);
      check Alcotest.(option Testkit.mode) "decode/encode" o (Decision.decode_owned c);
      check Alcotest.int "strength" (Compat.strength o) (Decision.strength_of_code c))
    owned_options;
  List.iter
    (fun m ->
      check Alcotest.int "code_of_mode" (Decision.owned_code (Some m)) (Decision.code_of_mode m);
      check Alcotest.(option Testkit.mode) "some_mode" (Some m) (Decision.some_mode m))
    Mode.all

let test_decision_agrees_with_compat () =
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          checkb
            (Printf.sprintf "compatible %s %s" (Mode.to_string a) (Mode.to_string b))
            (Compat.compatible a b) (Decision.compatible a b))
        Mode.all)
    Mode.all;
  List.iter
    (fun o ->
      let c = Decision.owned_code o in
      let label fn m =
        Printf.sprintf "%s owned=%s req=%s" fn
          (match o with None -> "_" | Some m -> Mode.to_string m)
          (Mode.to_string m)
      in
      List.iter
        (fun m ->
          checkb (label "can_child_grant" m)
            (Compat.can_child_grant ~owned:o m)
            (Decision.can_child_grant ~owned:c m);
          checkb (label "token_can_grant" m)
            (Compat.token_can_grant ~owned:o m)
            (Decision.token_can_grant ~owned:c m);
          checkb (label "token_must_transfer" m)
            (Compat.token_must_transfer ~owned:o m)
            (Decision.token_must_transfer ~owned:c m);
          checkb (label "queueable" m)
            (Compat.queueable ~pending:o m)
            (Decision.queueable ~pending:c m);
          check Alcotest.int (label "freeze_set" m)
            (Mode_set.to_bits (Compat.freeze_set ~owned:o m))
            (Mode_set.to_bits (Decision.freeze_set ~owned:c m)))
        Mode.all)
    owned_options

let test_decision_bit_sets () =
  List.iter
    (fun m ->
      List.iter
        (fun x ->
          checkb "compatible_bits" (Compat.compatible x m)
            (Mode_set.mem x (Decision.compatible_bits m));
          checkb "incompatible_bits" (not (Compat.compatible x m))
            (Mode_set.mem x (Decision.incompatible_bits m));
          checkb "le_strength_bits"
            (Mode.strength x <= Mode.strength m)
            (Mode_set.mem x (Decision.le_strength_bits m)))
        Mode.all)
    Mode.all

(* Property form of the agreement check: any (owned, request) cell drawn
   at random decides identically through either path. *)
let prop_decision_matches_compat =
  Q.Test.make ~name:"decision tables match Compat on random cells" ~count:500
    (Q.Gen.pair (Q.Gen.int_range 0 5) (Q.Gen.int_range 0 4))
    (fun (code, mi) ->
      let o = Decision.decode_owned code in
      let m = Mode.of_index mi in
      Compat.can_child_grant ~owned:o m = Decision.can_child_grant ~owned:code m
      && Compat.token_can_grant ~owned:o m = Decision.token_can_grant ~owned:code m
      && Compat.token_must_transfer ~owned:o m = Decision.token_must_transfer ~owned:code m
      && Compat.queueable ~pending:o m = Decision.queueable ~pending:code m
      && Mode_set.to_bits (Compat.freeze_set ~owned:o m)
         = Mode_set.to_bits (Decision.freeze_set ~owned:code m))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dcs_modes"
    [
      ( "mode",
        [
          Alcotest.test_case "strength order" `Quick test_strength_order;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip;
        ] );
      ( "table-1a",
        [
          Alcotest.test_case "full matrix" `Quick test_compat_matrix;
          Alcotest.test_case "symmetric" `Quick test_compat_symmetric;
          Alcotest.test_case "bottom compatible" `Quick test_bottom_compatible_with_all;
          Alcotest.test_case "strength vs cardinality" `Quick test_strength_vs_compat_cardinality;
        ] );
      ( "table-1b",
        [
          Alcotest.test_case "child grant cells" `Quick test_child_grant_table;
          Alcotest.test_case "token grant and transfer" `Quick test_token_grant_and_transfer;
        ] );
      ( "table-2a",
        [
          Alcotest.test_case "queue/forward cells" `Quick test_queueable_table;
          Alcotest.test_case "no cross-mode custody cycles" `Quick test_queueable_acyclic_across_modes;
        ] );
      ( "table-2b",
        [
          Alcotest.test_case "paper cells" `Quick test_freeze_table_paper_cells;
          Alcotest.test_case "freeze-set properties" `Quick test_freeze_set_properties;
        ] );
      ( "properties",
        [
          qt prop_local_knowledge;
          qt prop_strongest_is_member;
          qt prop_mode_set_model;
          qt prop_mode_set_mem;
        ] );
      ( "decision",
        [
          Alcotest.test_case "owned codes" `Quick test_decision_codes;
          Alcotest.test_case "agrees with Compat on all cells" `Quick
            test_decision_agrees_with_compat;
          Alcotest.test_case "bit-set helpers" `Quick test_decision_bit_sets;
          qt prop_decision_matches_compat;
        ] );
      ("render", [ Alcotest.test_case "ascii tables" `Quick test_render_tables ]);
    ]
