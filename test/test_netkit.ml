(* Integration tests for the real TCP transport: several runners in one
   process, talking over loopback sockets. *)

module Runner = Dcs_netkit.Runner
module Config = Dcs_netkit.Cluster_config

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let base_port = ref 7600

let make_cluster ~nodes ~locks =
  (* Fresh ports per test to dodge TIME_WAIT. *)
  base_port := !base_port + 16;
  let spec =
    String.concat ","
      (List.init nodes (fun i -> Printf.sprintf "%d:127.0.0.1:%d" i (!base_port + i)))
  in
  let config =
    match Config.parse ~locks spec with Ok c -> c | Error e -> Alcotest.fail e
  in
  let runners = Array.init nodes (fun self -> Runner.create ~config ~self ()) in
  Array.iter Runner.start runners;
  Thread.delay 0.15;
  runners

let stop_all runners = Array.iter Runner.stop runners

let test_remote_grant () =
  let runners = make_cluster ~nodes:2 ~locks:1 in
  let seq = Runner.request_sync runners.(1) ~lock:0 ~mode:Dcs_modes.Mode.R in
  Runner.release runners.(1) ~lock:0 ~seq;
  let seq0 = Runner.request_sync runners.(0) ~lock:0 ~mode:Dcs_modes.Mode.W in
  Runner.release runners.(0) ~lock:0 ~seq:seq0;
  checkb "messages flowed" true (Dcs_proto.Counters.total (Runner.counters runners.(1)) > 0);
  stop_all runners

let test_writer_mutual_exclusion () =
  let runners = make_cluster ~nodes:3 ~locks:1 in
  let in_cs = ref 0 and max_in_cs = ref 0 and m = Mutex.create () in
  let worker self () =
    for _ = 1 to 5 do
      let seq = Runner.request_sync runners.(self) ~lock:0 ~mode:Dcs_modes.Mode.W in
      Mutex.lock m;
      incr in_cs;
      if !in_cs > !max_in_cs then max_in_cs := !in_cs;
      Mutex.unlock m;
      Thread.delay 0.002;
      Mutex.lock m;
      decr in_cs;
      Mutex.unlock m;
      Runner.release runners.(self) ~lock:0 ~seq
    done
  in
  let threads = List.init 3 (fun self -> Thread.create (worker self) ()) in
  List.iter Thread.join threads;
  checki "never two writers at once" 1 !max_in_cs;
  stop_all runners

let test_concurrent_readers_across_processes () =
  let runners = make_cluster ~nodes:4 ~locks:1 in
  (* All four take R; they must all be granted while held concurrently. *)
  let seqs =
    Array.mapi (fun i r -> (i, Runner.request_sync r ~lock:0 ~mode:Dcs_modes.Mode.R)) runners
  in
  Array.iter (fun (i, seq) -> Runner.release runners.(i) ~lock:0 ~seq) seqs;
  stop_all runners

let test_upgrade_over_tcp () =
  let runners = make_cluster ~nodes:2 ~locks:1 in
  let seq = Runner.request_sync runners.(1) ~lock:0 ~mode:Dcs_modes.Mode.U in
  Runner.upgrade_sync runners.(1) ~lock:0 ~seq;
  Runner.release runners.(1) ~lock:0 ~seq;
  stop_all runners

let test_multi_lock_traffic () =
  let runners = make_cluster ~nodes:3 ~locks:3 in
  let done_count = ref 0 and m = Mutex.create () in
  let worker self () =
    let rng = Dcs_sim.Rng.create ~seed:(Int64.of_int (self + 5)) in
    for _ = 1 to 10 do
      let lock = Dcs_sim.Rng.int rng ~bound:3 in
      let mode =
        if Dcs_sim.Rng.float rng < 0.7 then Dcs_modes.Mode.R else Dcs_modes.Mode.W
      in
      let seq = Runner.request_sync runners.(self) ~lock ~mode in
      Thread.delay 0.001;
      Runner.release runners.(self) ~lock ~seq;
      Mutex.lock m;
      incr done_count;
      Mutex.unlock m
    done
  in
  let threads = List.init 3 (fun self -> Thread.create (worker self) ()) in
  List.iter Thread.join threads;
  checki "all ops done" 30 !done_count;
  stop_all runners

(* {1 Runtime stats (queryable transport observability)} *)

let test_stats_clean_cluster () =
  let runners = make_cluster ~nodes:2 ~locks:1 in
  let seq = Runner.request_sync runners.(1) ~lock:0 ~mode:Dcs_modes.Mode.R in
  Runner.release runners.(1) ~lock:0 ~seq;
  let seq0 = Runner.request_sync runners.(0) ~lock:0 ~mode:Dcs_modes.Mode.W in
  Runner.release runners.(0) ~lock:0 ~seq:seq0;
  (* Stats are live: query before stop. *)
  let s = Runner.stats runners.(1) in
  checkb "frames were sent" true (s.Runner.frames_sent > 0);
  checkb "bytes cover the frames (4-byte prefix each)" true
    (s.Runner.bytes_sent >= 5 * s.Runner.frames_sent);
  checkb "batched writes happened" true (s.Runner.batches > 0);
  checkb "connected at least once" true (s.Runner.connects >= 1);
  checki "no reconnects on a clean run" 0 s.Runner.reconnects;
  checki "nothing dropped while running" 0 s.Runner.dropped_frames;
  checki "no decode errors" 0 s.Runner.decode_errors;
  checkb "inbound traffic was counted" true
    (s.Runner.frames_received > 0 && s.Runner.bytes_received > 0);
  (* The metrics registry is the same data by name. *)
  let m = Runner.metrics runners.(1) in
  checki "metrics mirror frames_sent" s.Runner.frames_sent
    (Dcs_obs.Metrics.value (Dcs_obs.Metrics.counter m "net.frames_sent"));
  checkb "grant-mix counters fired" true
    (Dcs_obs.Metrics.value (Dcs_obs.Metrics.counter m "grants.R") > 0);
  stop_all runners

let test_stats_unreachable_peer () =
  (* Node 0 alone, with a peer that never answers: the writer must keep
     retrying with growing backoff, the queue must report the stuck
     frames, and stop must count them as dropped. *)
  base_port := !base_port + 16;
  let spec =
    Printf.sprintf "0:127.0.0.1:%d,1:127.0.0.1:%d" !base_port (!base_port + 1)
  in
  let config = match Config.parse ~locks:1 spec with Ok c -> c | Error e -> Alcotest.fail e in
  let runner = Runner.create ~config ~self:1 () in
  Runner.start runner;
  (* Lock 0's token lives at node 0, so this request must go remote —
     and node 0 does not exist. Fire-and-forget the callback. *)
  ignore (Runner.request runner ~lock:0 ~mode:Dcs_modes.Mode.R ~on_granted:(fun () -> ()));
  (* Give the writer a few backoff cycles. *)
  Thread.delay 1.0;
  let s = Runner.stats runner in
  checkb "connect retries counted" true (s.Runner.connect_retries > 0);
  checkb "backoff is live and nonzero" true (s.Runner.backoff_ms > 0.0);
  checkb "frames stuck in the queue" true (s.Runner.queued_frames >= 1);
  checki "nothing dropped before stop" 0 s.Runner.dropped_frames;
  Runner.stop runner;
  (* The writer thread finishes its current backoff sleep before it
     notices the shutdown and books the drops — poll briefly. *)
  let deadline = Unix.gettimeofday () +. 3.0 in
  let rec dropped () =
    let s = Runner.stats runner in
    if s.Runner.dropped_frames >= 1 then true
    else if Unix.gettimeofday () >= deadline then false
    else begin
      Thread.delay 0.05;
      dropped ()
    end
  in
  checkb "queued frames dropped at stop" true (dropped ())

(* {1 In-process telemetry shards round-trip through the merger} *)

let test_telemetry_shards_merge () =
  base_port := !base_port + 16;
  let spec =
    Printf.sprintf "0:127.0.0.1:%d,1:127.0.0.1:%d" !base_port (!base_port + 1)
  in
  let config = match Config.parse ~locks:2 spec with Ok c -> c | Error e -> Alcotest.fail e in
  let dir = Filename.temp_file "dcs_netkit_shards" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let paths = List.init 2 (fun i -> Filename.concat dir (Printf.sprintf "node-%d.jsonl" i)) in
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) paths;
      Unix.rmdir dir)
  @@ fun () ->
  let shards =
    List.map
      (fun (i, path) ->
        Dcs_obs.Shard.create ~path
          ~meta:[ ("node", string_of_int i); ("nodes", "2"); ("locks", "2") ]
          ())
      (List.mapi (fun i p -> (i, p)) paths)
  in
  let runners =
    Array.of_list
      (List.mapi
         (fun self shard -> Runner.create ~telemetry:shard ~config ~self ())
         shards)
  in
  Array.iter Runner.start runners;
  Thread.delay 0.15;
  (* Cross traffic on both locks so both shards carry sent/received
     edges and at least one token transfer. *)
  let seq = Runner.request_sync runners.(1) ~lock:0 ~mode:Dcs_modes.Mode.W in
  Runner.release runners.(1) ~lock:0 ~seq;
  let seq = Runner.request_sync runners.(0) ~lock:0 ~mode:Dcs_modes.Mode.R in
  Runner.release runners.(0) ~lock:0 ~seq;
  let seq = Runner.request_sync runners.(1) ~lock:1 ~mode:Dcs_modes.Mode.R in
  Runner.release runners.(1) ~lock:1 ~seq;
  (* Drain the wire before stop so no frame is dropped mid-flight. *)
  Thread.delay 0.3;
  stop_all runners;
  List.iter Dcs_obs.Shard.close shards;
  match Dcs_obs.Merge.load paths with
  | Error e -> Alcotest.failf "merge load: %s" e
  | Ok (loaded, warnings) ->
      checki "no truncation warnings" 0 (List.length warnings);
      let offsets = Dcs_obs.Merge.align loaded in
      let events = Dcs_obs.Merge.merged_events ~offsets loaded in
      let breakdowns, _ = Dcs_obs.Merge.critical_paths events in
      checkb "completed spans in the merged timeline" true (List.length breakdowns >= 3);
      checkb "a remote span paid net or token time" true
        (List.exists
           (fun (b : Dcs_obs.Merge.breakdown) ->
             b.Dcs_obs.Merge.b_net_ms > 0.0 || b.Dcs_obs.Merge.b_token_ms > 0.0)
           breakdowns);
      (* Shard frame accounting equals the transports' Counters exactly. *)
      (match Dcs_obs.Merge.summed_counters loaded with
      | None -> Alcotest.fail "shards carry no counters line"
      | Some counters ->
          let msgs = Dcs_obs.Merge.summed_msgs loaded in
          List.iter
            (fun (cls, n) ->
              checki
                (Printf.sprintf "class %s matches transport"
                   (Dcs_proto.Msg_class.to_string cls))
                n
                (fst (List.assoc cls msgs)))
            counters);
      let totals = Dcs_obs.Merge.metric_totals loaded in
      checkb "no frames dropped" true
        (List.assoc_opt "net.dropped_frames" totals = Some 0.0)

let () =
  Alcotest.run "dcs_netkit"
    [
      ( "tcp",
        [
          Alcotest.test_case "remote grant" `Slow test_remote_grant;
          Alcotest.test_case "writer mutual exclusion" `Slow test_writer_mutual_exclusion;
          Alcotest.test_case "concurrent readers" `Slow test_concurrent_readers_across_processes;
          Alcotest.test_case "upgrade over tcp" `Slow test_upgrade_over_tcp;
          Alcotest.test_case "multi-lock traffic" `Slow test_multi_lock_traffic;
        ] );
      ( "stats",
        [
          Alcotest.test_case "clean cluster stats" `Slow test_stats_clean_cluster;
          Alcotest.test_case "unreachable peer" `Slow test_stats_unreachable_peer;
        ] );
      ( "telemetry",
        [ Alcotest.test_case "shards merge" `Slow test_telemetry_shards_merge ] );
    ]
