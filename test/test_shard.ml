(* Tests for the sharded lock-namespace service: bucket directory
   invariants, placement-invariant digests, live migration without grant
   loss, snapshot/handoff codec fidelity, and the pooled-cell reset
   contract the router's determinism rests on. *)

module Directory = Dcs_shard.Directory
module Cell = Dcs_shard.Cell
module Traffic = Dcs_shard.Traffic
module Router = Dcs_shard.Router
module Codec = Dcs_wire.Codec
module Shard_msg = Dcs_wire.Shard_msg
module Zipf = Dcs_workload.Zipf

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check64 = Alcotest.check Alcotest.int64

(* {1 Directory} *)

let test_directory_basics () =
  let d = Directory.create ~buckets:6 ~shards:3 in
  checki "buckets" 6 (Directory.buckets d);
  checki "initial home" 2 (Directory.home d ~bucket:5);
  checki "initial version" 0 (Directory.version d ~bucket:5);
  Alcotest.check Alcotest.(list string) "valid at creation" [] (Directory.validate d);
  (* One migration: begin parks, commit flips home and bumps version. *)
  Directory.begin_migration d ~bucket:5 ~dst:0;
  checkb "migrating" true (Directory.migrating d ~bucket:5 = Some 0);
  checki "home unchanged until commit" 2 (Directory.home d ~bucket:5);
  Alcotest.check Alcotest.(list string) "valid mid-migration" [] (Directory.validate d);
  Directory.commit_migration d ~bucket:5;
  checki "home flipped" 0 (Directory.home d ~bucket:5);
  checki "version bumped" 1 (Directory.version d ~bucket:5);
  checkb "not migrating" true (Directory.migrating d ~bucket:5 = None)

let test_directory_errors () =
  let d = Directory.create ~buckets:2 ~shards:2 in
  let expect_invalid f = checkb "rejected" true (try f (); false with Invalid_argument _ -> true) in
  expect_invalid (fun () -> Directory.begin_migration d ~bucket:0 ~dst:0);
  (* self-migration *)
  expect_invalid (fun () -> Directory.begin_migration d ~bucket:0 ~dst:7);
  expect_invalid (fun () -> Directory.commit_migration d ~bucket:0);
  (* not migrating *)
  Directory.begin_migration d ~bucket:0 ~dst:1;
  expect_invalid (fun () -> Directory.begin_migration d ~bucket:0 ~dst:1);
  (* double begin *)
  expect_invalid (fun () -> ignore (Directory.home d ~bucket:9))

(* Whole-schedule validation: self-migrations (against the ownership map
   earlier entries produce) and same-round duplicates are rejected before
   any round runs — cross-process they would crash every worker at once. *)
let test_validate_migrations () =
  let cfg = { Router.default_config with Router.shards = 2; buckets = 4; rounds = 4 } in
  let expect_invalid f = checkb "rejected" true (try f (); false with Invalid_argument _ -> true) in
  let v ms = Router.validate_migrations cfg ms in
  v [];
  v [ { Router.round = 0; bucket = 0; dst = 1 } ];
  (* Legal: bucket 0 moves away, then back. *)
  v [ { Router.round = 0; bucket = 0; dst = 1 }; { Router.round = 1; bucket = 0; dst = 0 } ];
  (* bucket 1 starts at shard 1 (b mod shards): moving it there is a no-op. *)
  expect_invalid (fun () -> v [ { Router.round = 0; bucket = 1; dst = 1 } ]);
  (* Second entry targets the home the first one just established. *)
  expect_invalid (fun () ->
      v [ { Router.round = 0; bucket = 0; dst = 1 }; { Router.round = 1; bucket = 0; dst = 1 } ]);
  expect_invalid (fun () ->
      v [ { Router.round = 0; bucket = 0; dst = 1 }; { Router.round = 0; bucket = 0; dst = 0 } ]);
  expect_invalid (fun () -> v [ { Router.round = 9; bucket = 0; dst = 1 } ]);
  expect_invalid (fun () -> v [ { Router.round = 0; bucket = 9; dst = 1 } ]);
  expect_invalid (fun () -> v [ { Router.round = 0; bucket = 0; dst = 9 } ])

let test_directory_updates () =
  let a = Directory.create ~buckets:4 ~shards:2 in
  let b = Directory.create ~buckets:4 ~shards:2 in
  Directory.begin_migration a ~bucket:1 ~dst:0;
  Directory.commit_migration a ~bucket:1;
  (* Replica converges from the wire rows, in any order. *)
  List.iter
    (fun e -> ignore (Directory.apply_update b e))
    (List.rev (Directory.entries a));
  checki "replica converged" (Directory.home a ~bucket:1) (Directory.home b ~bucket:1);
  (* Stale and conflicting updates are detected, not applied. *)
  checkb "stale" true (Directory.apply_update b { bucket = 1; home = 1; version = 0 } = `Stale);
  checkb "conflict" true (Directory.apply_update b { bucket = 1; home = 1; version = 1 } = `Conflict);
  checki "conflict not applied" 0 (Directory.home b ~bucket:1)

let test_bucket_hash () =
  (* Stable, total, single-bucket degenerate case. *)
  for set = 0 to 999 do
    let b = Directory.bucket_of_set ~buckets:7 set in
    checkb "in range" true (b >= 0 && b < 7);
    checki "stable" b (Directory.bucket_of_set ~buckets:7 set);
    checki "one bucket" 0 (Directory.bucket_of_set ~buckets:1 set)
  done

(* {1 Placement-invariant digests}

   The headline guarantee: the same namespace traffic produces the same
   digest whatever the shard count, bucket count, worker count or
   migration schedule — including the unsharded 1×1 case. *)

let base_cfg =
  {
    Router.default_config with
    Router.shards = 1;
    buckets = 4;
    lock_sets = 12;
    nodes = 6;
    rounds = 3;
    jobs_per_round = 6;
    ops_per_burst = 3;
    seed = 11L;
  }

let test_digest_invariant_under_shards () =
  let r1 = Router.run ~jobs:1 { base_cfg with Router.shards = 1 } in
  let r2 = Router.run ~jobs:1 { base_cfg with Router.shards = 2 } in
  let r4 = Router.run ~jobs:1 { base_cfg with Router.shards = 4 } in
  check64 "1 vs 2 shards" r1.Router.digest r2.Router.digest;
  check64 "1 vs 4 shards" r1.Router.digest r4.Router.digest;
  checki "grants equal" r1.Router.grants r4.Router.grants;
  checki "msgs equal" r1.Router.msgs r4.Router.msgs;
  (* Per-bucket digests do not depend on who serves the bucket either. *)
  Alcotest.check
    Alcotest.(list (pair int int64))
    "bucket digests equal" r1.Router.bucket_digests r4.Router.bucket_digests

let test_digest_invariant_under_workers () =
  let a = Router.run ~jobs:1 { base_cfg with Router.shards = 3 } in
  let b = Router.run ~jobs:4 { base_cfg with Router.shards = 3 } in
  check64 "jobs 1 vs 4" a.Router.digest b.Router.digest

let test_digest_invariant_under_buckets () =
  (* The global digest folds sets in namespace order, so even the
     partition granularity is invisible — 1 bucket vs 8. *)
  let a = Router.run ~jobs:1 { base_cfg with Router.buckets = 1 } in
  let b = Router.run ~jobs:1 { base_cfg with Router.buckets = 8; shards = 2 } in
  check64 "1 vs 8 buckets" a.Router.digest b.Router.digest

let test_unsharded_equals_single_bucket_sharded () =
  (* ISSUE acceptance: single-bucket sharded run digest-identical to the
     unsharded service (shards = buckets = 1). *)
  let unsharded = Router.run ~jobs:1 { base_cfg with Router.shards = 1; buckets = 1 } in
  let sharded = Router.run ~jobs:2 { base_cfg with Router.shards = 4; buckets = 1 } in
  check64 "unsharded = single-bucket sharded" unsharded.Router.digest sharded.Router.digest

(* {1 Live migration} *)

(* A bucket that has jobs in round [r], so parking is actually exercised. *)
let busy_bucket cfg ~round =
  let plan =
    Traffic.plan ~skew:cfg.Router.skew ~seed:cfg.Router.seed ~lock_sets:cfg.Router.lock_sets
      ~rounds:cfg.Router.rounds ~jobs_per_round:cfg.Router.jobs_per_round ()
  in
  let job = plan.Traffic.rounds.(round).(0) in
  Router.bucket_of_set ~buckets:cfg.Router.buckets job.Traffic.set

let test_migration_preserves_digest_and_grants () =
  let cfg = { base_cfg with Router.shards = 3 } in
  let baseline = Router.run ~jobs:1 cfg in
  let bucket = busy_bucket cfg ~round:1 in
  let dst = (Directory.home (Directory.create ~buckets:cfg.Router.buckets ~shards:3) ~bucket + 1) mod 3 in
  let migrated =
    Router.run ~jobs:2 ~migrations:[ { Router.round = 1; bucket; dst } ] cfg
  in
  check64 "digest unchanged by migration" baseline.Router.digest migrated.Router.digest;
  checki "migrations applied" 1 migrated.Router.migrations_applied;
  checkb "parked jobs replayed" true (migrated.Router.parked_replayed > 0);
  checkb "handoff actually shipped bytes" true (migrated.Router.handoff_bytes > 0);
  (* Zero grant loss: every planned burst ran, every request granted. *)
  checki "bursts complete" baseline.Router.bursts migrated.Router.bursts;
  checki "grants complete" baseline.Router.grants migrated.Router.grants;
  checki "grants = bursts * ops"
    (migrated.Router.bursts * cfg.Router.ops_per_burst)
    migrated.Router.grants

let test_migration_chain () =
  (* The same bucket moves twice; a round-after-last replay round may be
     needed, and the digest still cannot tell. *)
  let cfg = { base_cfg with Router.shards = 4 } in
  let baseline = Router.run ~jobs:1 cfg in
  let bucket = busy_bucket cfg ~round:0 in
  let home0 = Directory.home (Directory.create ~buckets:cfg.Router.buckets ~shards:4) ~bucket in
  let migrations =
    [
      { Router.round = 0; bucket; dst = (home0 + 1) mod 4 };
      { Router.round = 2; bucket; dst = (home0 + 2) mod 4 };
    ]
  in
  let r = Router.run ~jobs:2 ~migrations cfg in
  check64 "digest invariant across chained migrations" baseline.Router.digest r.Router.digest;
  checki "both applied" 2 r.Router.migrations_applied;
  checkb "replay rounds allowed" true (r.Router.rounds_run >= cfg.Router.rounds)

let test_skewed_traffic_and_balance () =
  let cfg = { base_cfg with Router.shards = 2; skew = 0.95; lock_sets = 32 } in
  let a = Router.run ~jobs:1 cfg in
  let b = Router.run ~jobs:3 { cfg with Router.shards = 4 } in
  check64 "skewed digest placement-invariant" a.Router.digest b.Router.digest;
  (* Zipf concentrates bursts: the busiest set must clearly beat the mean. *)
  let stats = a.Router.shard_stats in
  checki "all bursts accounted" a.Router.bursts
    (List.fold_left (fun acc (s : Router.shard_stat) -> acc + s.Router.bursts) 0 stats);
  List.iter
    (fun (s : Router.shard_stat) -> checkb "every shard owns buckets" true (s.Router.buckets_owned > 0))
    b.Router.shard_stats

(* {1 Snapshot / handoff fidelity} *)

(* Drive one cell to a non-trivial quiescent state and return its export. *)
let quiescent_state ~seed =
  let cell = Cell.create ~nodes:5 () in
  Cell.reset cell ~seed ~locks:1;
  let ops = Traffic.burst_ops ~seed ~nodes:5 ~ops:6 in
  List.iter
    (fun (op : Traffic.op) ->
      Cell.schedule cell ~after:op.Traffic.at (fun () ->
          let seq = ref (-1) in
          seq :=
            Cell.request cell ~node:op.Traffic.node ~lock:0 ~mode:op.Traffic.mode
              ~on_granted:(fun () ->
                Cell.schedule cell ~after:op.Traffic.hold (fun () ->
                    Cell.release cell ~node:op.Traffic.node ~lock:0 ~seq:!seq))))
    ops;
  (match Cell.drain cell with Ok () -> () | Error _ -> Alcotest.fail "cell did not drain");
  Cell.export_lock cell ~lock:0

let test_export_restore_export_idempotent () =
  let snaps = quiescent_state ~seed:77L in
  let bytes = Codec.encode_cluster_state snaps in
  let snaps' = Codec.decode_cluster_state bytes in
  checkb "decode = original" true (snaps = snaps');
  (* Restoring into a cell and exporting again is the identity. *)
  let cell = Cell.create ~nodes:5 () in
  Cell.reset cell ~restore:[| snaps' |] ~seed:3L ~locks:1;
  let snaps'' = Cell.export_lock cell ~lock:0 in
  checkb "restore; export = identity" true (snaps = snaps'');
  Alcotest.check Alcotest.string "bytes stable" bytes (Codec.encode_cluster_state snaps'')

let test_restored_cell_continues_protocol () =
  (* A restored population must actually serve: request after restore. *)
  let snaps = quiescent_state ~seed:99L in
  let cell = Cell.create ~nodes:5 () in
  Cell.reset cell ~restore:[| snaps |] ~seed:5L ~locks:1;
  let granted = ref 0 in
  List.iter
    (fun node ->
      let seq = ref (-1) in
      seq :=
        Cell.request cell ~node ~lock:0 ~mode:Dcs_modes.Mode.W ~on_granted:(fun () ->
            incr granted;
            (* read !seq only inside the later event: the grant may be
               synchronous, before the assignment above lands *)
            Cell.schedule cell ~after:5.0 (fun () -> Cell.release cell ~node ~lock:0 ~seq:!seq))
    )
    [ 0; 3; 4 ];
  checkb "drained" true (Cell.drain cell = Ok ());
  checki "all writers served after restore" 3 !granted;
  Alcotest.check Alcotest.(list string) "quiescent" [] (Cell.quiescent_violations cell)

let test_pooled_reset_equals_fresh () =
  (* The pooling contract: a reset cell is observationally fresh. *)
  let fresh = Codec.encode_cluster_state (quiescent_state ~seed:123L) in
  let cell = Cell.create ~nodes:5 () in
  (* Dirty the cell with an unrelated burst, then reset and rerun. *)
  Cell.reset cell ~seed:555L ~locks:1;
  let ops = Traffic.burst_ops ~seed:555L ~nodes:5 ~ops:4 in
  List.iter
    (fun (op : Traffic.op) ->
      Cell.schedule cell ~after:op.Traffic.at (fun () ->
          let seq = ref (-1) in
          seq :=
            Cell.request cell ~node:op.Traffic.node ~lock:0 ~mode:op.Traffic.mode
              ~on_granted:(fun () ->
                Cell.schedule cell ~after:op.Traffic.hold (fun () ->
                    Cell.release cell ~node:op.Traffic.node ~lock:0 ~seq:!seq))))
    ops;
  (match Cell.drain cell with Ok () -> () | Error _ -> Alcotest.fail "dirtying burst stuck");
  Cell.reset cell ~seed:123L ~locks:1;
  let ops = Traffic.burst_ops ~seed:123L ~nodes:5 ~ops:6 in
  List.iter
    (fun (op : Traffic.op) ->
      Cell.schedule cell ~after:op.Traffic.at (fun () ->
          let seq = ref (-1) in
          seq :=
            Cell.request cell ~node:op.Traffic.node ~lock:0 ~mode:op.Traffic.mode
              ~on_granted:(fun () ->
                Cell.schedule cell ~after:op.Traffic.hold (fun () ->
                    Cell.release cell ~node:op.Traffic.node ~lock:0 ~seq:!seq))))
    ops;
  (match Cell.drain cell with Ok () -> () | Error _ -> Alcotest.fail "reset burst stuck");
  Alcotest.check Alcotest.string "reset cell = fresh cell" fresh
    (Codec.encode_cluster_state (Cell.export_lock cell ~lock:0))

(* {1 Wire roundtrips for the shard payload} *)

let sample_shard_msgs () =
  let state = quiescent_state ~seed:31L in
  [
    Shard_msg.Dir_lookup { bucket = 3 };
    Shard_msg.Dir_info { bucket = 3; home = 1; version = 4 };
    Shard_msg.Dir_update { bucket = 0; home = 2; version = 1 };
    Shard_msg.Handoff
      {
        bucket = 2;
        version = 7;
        entries =
          [
            { Shard_msg.set = 9; bursts = 3; grants = 12; msgs = 48; state };
            { Shard_msg.set = 14; bursts = 1; grants = 4; msgs = 19; state = [||] };
          ];
        parked = [ (9, 3); (14, 1) ];
      };
    Shard_msg.Handoff_ack { bucket = 2; version = 7 };
    Shard_msg.Round_done { shard = 1; round = 5; bursts = 9; grants = 36 };
  ]

let test_shard_wire_roundtrip () =
  List.iter
    (fun m ->
      let env = { Codec.src = 1; lock = 0; payload = Codec.Shard m } in
      let flat = Codec.encode env in
      Alcotest.check Alcotest.string "flat = legacy" flat (Codec.encode_legacy env);
      checkb "roundtrip" true (Codec.decode flat = env);
      (* Skim validates the same bytes without materializing. *)
      Codec.skim_envelope (Dcs_wire.Buf.reader flat))
    (sample_shard_msgs ())

let test_shard_wire_rejects_garbage () =
  let env = { Codec.src = 0; lock = 0; payload = Codec.Shard (Shard_msg.Dir_lookup { bucket = 1 }) } in
  let s = Codec.encode env in
  (* Truncations must raise, never misread. *)
  for len = 0 to String.length s - 1 do
    checkb "truncation rejected" true
      (try
         ignore (Codec.decode (String.sub s 0 len));
         false
       with Dcs_wire.Buf.Malformed _ -> true)
  done

(* {1 Zipf sampler} *)

let test_zipf_skew () =
  let rng = Dcs_sim.Rng.create ~seed:7L in
  let z = Zipf.create ~n:50 ~theta:0.99 in
  let counts = Array.make 50 0 in
  let draws = 20_000 in
  for _ = 1 to draws do
    let k = Zipf.sample z rng in
    checkb "in range" true (k >= 0 && k < 50);
    counts.(k) <- counts.(k) + 1
  done;
  checkb "rank 0 is hot" true (counts.(0) > draws / 10);
  checkb "head dominates tail" true (counts.(0) > 10 * counts.(49));
  (* theta = 0 is uniform-ish: no element takes a disproportionate share. *)
  let u = Zipf.create ~n:50 ~theta:0.0 in
  let ucounts = Array.make 50 0 in
  for _ = 1 to draws do
    ucounts.(Zipf.sample u rng) <- ucounts.(Zipf.sample u rng) + 1
  done;
  Array.iter (fun c -> checkb "uniform-ish" true (c < draws / 10)) ucounts

let test_traffic_plan_deterministic () =
  let mk () = Traffic.plan ~skew:0.9 ~seed:21L ~lock_sets:40 ~rounds:5 ~jobs_per_round:7 () in
  let a = mk () and b = mk () in
  checkb "plans equal" true (a = b);
  (* Burst ordinals count up per set, in plan order. *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun round ->
      Array.iter
        (fun (j : Traffic.job) ->
          let expect = Option.value (Hashtbl.find_opt seen j.Traffic.set) ~default:0 in
          checki "burst ordinal" expect j.Traffic.burst;
          Hashtbl.replace seen j.Traffic.set (expect + 1))
        round)
    a.Traffic.rounds

(* {1 Liveness regressions} *)

(* Bursts the 1M-set capstone soak found that never drained — all
   genuine protocol liveness bugs, all placement-independent pure
   functions of (seed, salt), so they make exact regression pins:
   - set 11897: a request without local custody (forwarded past an
     unrelated pending) swept the membership forever because the sweep
     permanently excluded its requester — the node the token had
     meanwhile landed on.
   - set 26758: a copy grant from a node the grantee already recorded
     as a child closed a two-node copyset cycle whose mutual release
     reports ping-ponged unboundedly after quiescence.
   - set 46410: a grant re-used a token-era epoch (drawn from the other
     side's counter), so the pre-grant weakening release passed the
     stale-epoch guard and left the parent's record under the child's
     owned mode — the narrowed freeze then never revoked the cached R
     a queued W needed, and the writer starved. *)
let test_soak_liveness_regressions () =
  let cfg =
    {
      Router.default_config with
      Router.shards = 1;
      buckets = 64;
      lock_sets = 1_000_000;
      nodes = 64;
      rounds = 5;
      jobs_per_round = 1250;
      ops_per_burst = 8;
      skew = 0.9;
      seed = 42L;
    }
  in
  let cell = Cell.create ~nodes:cfg.Router.nodes () in
  List.iter
    (fun set ->
      let store : (int, Router.set_state) Hashtbl.t = Hashtbl.create 4 in
      let grants, _, msgs = Router.run_burst cfg cell store { Traffic.set; burst = 0 } in
      checki (Printf.sprintf "set %d grants" set) cfg.Router.ops_per_burst grants;
      checkb (Printf.sprintf "set %d sent messages" set) true (msgs > 0))
    [ 11897; 26758; 46410 ]

let () =
  Alcotest.run "shard"
    [
      ( "directory",
        [
          Alcotest.test_case "basics" `Quick test_directory_basics;
          Alcotest.test_case "errors" `Quick test_directory_errors;
          Alcotest.test_case "replica updates" `Quick test_directory_updates;
          Alcotest.test_case "migration schedules" `Quick test_validate_migrations;
          Alcotest.test_case "bucket hash" `Quick test_bucket_hash;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "digest vs shard count" `Quick test_digest_invariant_under_shards;
          Alcotest.test_case "digest vs worker count" `Quick test_digest_invariant_under_workers;
          Alcotest.test_case "digest vs bucket count" `Quick test_digest_invariant_under_buckets;
          Alcotest.test_case "unsharded = 1-bucket sharded" `Quick
            test_unsharded_equals_single_bucket_sharded;
        ] );
      ( "migration",
        [
          Alcotest.test_case "digest and grants preserved" `Quick
            test_migration_preserves_digest_and_grants;
          Alcotest.test_case "chained migrations" `Quick test_migration_chain;
          Alcotest.test_case "skewed traffic balance" `Quick test_skewed_traffic_and_balance;
        ] );
      ( "handoff state",
        [
          Alcotest.test_case "export/restore idempotent" `Quick test_export_restore_export_idempotent;
          Alcotest.test_case "restored cell serves" `Quick test_restored_cell_continues_protocol;
          Alcotest.test_case "pooled reset = fresh" `Quick test_pooled_reset_equals_fresh;
        ] );
      ( "wire",
        [
          Alcotest.test_case "shard payload roundtrip" `Quick test_shard_wire_roundtrip;
          Alcotest.test_case "garbage rejected" `Quick test_shard_wire_rejects_garbage;
        ] );
      ( "traffic",
        [
          Alcotest.test_case "zipf skew" `Quick test_zipf_skew;
          Alcotest.test_case "plan deterministic" `Quick test_traffic_plan_deterministic;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "soak regression bursts drain" `Quick
            test_soak_liveness_regressions;
        ] );
    ]
