(* Fault-injection subsystem: plan hooks and partition buffering in Net,
   the reliable-delivery shim under a scripted adversary, the invariant
   audit, and end-to-end chaos determinism. *)

open Dcs_fault
module Net = Dcs_runtime.Net
module Experiment = Dcs_runtime.Experiment
module Link = Dcs_proto.Link

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let fresh_net ?(latency = Dcs_sim.Dist.Constant 10.0) ~seed () =
  let engine = Dcs_sim.Engine.create () in
  let rng = Dcs_sim.Rng.create ~seed in
  let net = Net.create ~engine ~latency ~rng () in
  (engine, net)

(* {1 Net fault hook} *)

(* A held link buffers; flush delivers in original send order. *)
let test_net_hold_flush () =
  let engine, net = fresh_net ~seed:3L () in
  Net.set_fault net (fun ~now:_ ~src ~dst:_ ~cls:_ ->
      if src = 0 then Link.Hold else Link.pass);
  let delivered = ref [] in
  for i = 1 to 8 do
    Net.send net ~src:0 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
      ~describe:(fun () -> "held")
      (fun () -> delivered := i :: !delivered)
  done;
  Net.send net ~src:2 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
    ~describe:(fun () -> "live")
    (fun () -> delivered := 100 :: !delivered);
  ignore (Dcs_sim.Engine.run engine);
  checki "held count" 8 (Net.held_count net);
  Alcotest.check Alcotest.(list int) "only the live link delivered" [ 100 ] (List.rev !delivered);
  checki "held still in flight" 8 (Net.in_flight net);
  Net.clear_fault net;
  Net.flush_held net;
  ignore (Dcs_sim.Engine.run engine);
  Alcotest.check
    Alcotest.(list int)
    "flush preserves send order"
    (100 :: List.init 8 (fun i -> i + 1))
    (List.rev !delivered);
  checki "drained" 0 (Net.in_flight net)

(* Drop and duplicate decisions are counted and (for dups) FIFO-safe. *)
let test_net_drop_duplicate () =
  let engine, net = fresh_net ~seed:4L () in
  let n = ref 0 in
  Net.set_fault net (fun ~now:_ ~src:_ ~dst:_ ~cls:_ ->
      incr n;
      if !n = 1 then Link.Deliver { copies = 0; delay_factor = 1.0; extra_delay = 0.0 }
      else if !n = 2 then Link.Deliver { copies = 3; delay_factor = 1.0; extra_delay = 0.0 }
      else Link.pass);
  let arrivals = ref [] in
  for i = 1 to 3 do
    Net.send net ~src:0 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
      ~describe:(fun () -> "m")
      (fun () -> arrivals := i :: !arrivals)
  done;
  ignore (Dcs_sim.Engine.run engine);
  checki "dropped" 1 (Net.dropped net);
  checki "duplicated" 2 (Net.duplicated net);
  (* msg 1 dropped; msg 2 thrice; msg 3 once — copies stay FIFO. *)
  Alcotest.check Alcotest.(list int) "arrival order" [ 2; 2; 2; 3 ] (List.rev !arrivals);
  checki "counter counts sends, not copies" 3
    (Dcs_proto.Counters.get (Net.counters net) Dcs_proto.Msg_class.Request)

(* A latency spike defers affected messages but cannot reorder the pair. *)
let test_net_latency_spike_fifo () =
  let engine, net = fresh_net ~seed:5L () in
  let n = ref 0 in
  Net.set_fault net (fun ~now:_ ~src:_ ~dst:_ ~cls:_ ->
      incr n;
      if !n = 1 then Link.Deliver { copies = 1; delay_factor = 40.0; extra_delay = 0.0 }
      else Link.pass);
  let arrivals = ref [] in
  for i = 1 to 4 do
    Net.send net ~src:0 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
      ~describe:(fun () -> "m")
      (fun () -> arrivals := i :: !arrivals)
  done;
  ignore (Dcs_sim.Engine.run engine);
  Alcotest.check
    Alcotest.(list int)
    "spiked first message still delivers first" [ 1; 2; 3; 4 ] (List.rev !arrivals)

(* {1 Plan} *)

let test_plan_windows_and_shim () =
  let w = { Plan.start = 100.0; duration = 50.0 } in
  let clean = [ Plan.Latency_spike { window = w; factor = 4.0; scope = Plan.All } ] in
  let lossy = clean @ [ Plan.Drop { window = w; prob = 0.1; scope = Plan.All } ] in
  checkb "latency plan needs no shim" false (Plan.needs_shim clean);
  checkb "drop plan needs shim" true (Plan.needs_shim lossy);
  Alcotest.check (Alcotest.float 1e-9) "horizon" 150.0 (Plan.horizon lossy);
  List.iter
    (fun name ->
      match Plan.named ~nodes:16 ~horizon:10_000.0 name with
      | Some plan ->
          checkb (name ^ " non-empty") true (plan <> []);
          checkb (name ^ " fits horizon") true (Plan.horizon plan <= 10_000.0)
      | None -> Alcotest.failf "named plan %s missing" name)
    Plan.names;
  checkb "unknown plan" true (Plan.named ~nodes:16 ~horizon:1e4 "nope" = None)

(* The installed hook holds partitioned pairs exactly during the window
   and heals (flush fires) at its end. *)
let test_plan_install_partition () =
  let engine = Dcs_sim.Engine.create () in
  let rng = Dcs_sim.Rng.create ~seed:11L in
  let plan =
    [
      Plan.Partition
        { window = { Plan.start = 100.0; duration = 200.0 }; groups = [ [ 0 ]; [ 1 ] ] };
    ]
  in
  let hook = ref (fun ~now:_ ~src:_ ~dst:_ ~cls:_ -> Link.pass) in
  let flushes = ref [] in
  Plan.install plan ~engine ~rng
    ~set_fault:(fun f -> hook := f)
    ~flush:(fun () -> flushes := Dcs_sim.Engine.now engine :: !flushes);
  let decide ~now ~src ~dst = !hook ~now ~src ~dst ~cls:Dcs_proto.Msg_class.Request in
  checkb "before window passes" true (decide ~now:50.0 ~src:0 ~dst:1 = Link.pass);
  checkb "inside window holds" true (decide ~now:150.0 ~src:0 ~dst:1 = Link.Hold);
  checkb "reverse direction holds too" true (decide ~now:150.0 ~src:1 ~dst:0 = Link.Hold);
  checkb "unlisted node passes" true (decide ~now:150.0 ~src:2 ~dst:0 = Link.pass);
  checkb "after window passes" true (decide ~now:301.0 ~src:0 ~dst:1 = Link.pass);
  ignore (Dcs_sim.Engine.run engine);
  checki "one heal flush" 1 (List.length !flushes);
  checkb "flush at window end" true (List.hd !flushes >= 300.0)

(* {1 Reliable shim under a scripted adversary} *)

(* The adversary drops every 3rd transmission, duplicates every 4th, and
   alternates 5 ms / 45 ms delays so later sequence numbers overtake
   earlier ones. The shim must still deliver exactly once, in order. *)
let test_reliable_adversary () =
  let engine = Dcs_sim.Engine.create () in
  let attempts = ref 0 in
  let below ~src:_ ~dst:_ ~cls:_ ~describe:_ k =
    incr attempts;
    let n = !attempts in
    if n mod 3 = 0 then () (* dropped *)
    else begin
      let delay = if n mod 2 = 0 then 45.0 else 5.0 in
      Dcs_sim.Engine.schedule engine ~after:delay k;
      if n mod 4 = 0 then Dcs_sim.Engine.schedule engine ~after:(delay +. 13.0) k
    end
  in
  let shim = Reliable.create ~engine ~rto:100.0 ~below () in
  let delivered = ref [] in
  let total = 40 in
  for i = 1 to total do
    Reliable.send shim ~src:0 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
      ~describe:(fun () -> Printf.sprintf "payload-%d" i)
      (fun () -> delivered := i :: !delivered)
  done;
  (match Dcs_sim.Engine.run engine with
  | Dcs_sim.Engine.Drained -> ()
  | _ -> Alcotest.fail "engine did not drain");
  Alcotest.check
    Alcotest.(list int)
    "exactly-once, in-order delivery"
    (List.init total (fun i -> i + 1))
    (List.rev !delivered);
  let s = Reliable.stats shim in
  checki "all data accepted" total s.Reliable.data_sent;
  checkb "some retransmits happened" true (s.Reliable.retransmits > 0);
  checkb "dedup caught duplicates" true (s.Reliable.duplicates_dropped > 0);
  checkb "reordered arrivals were buffered" true (s.Reliable.buffered_out_of_order > 0);
  (* Bounded recovery: every loss is repaired within a handful of RTOs. *)
  checkb "retransmits bounded" true (s.Reliable.retransmits <= 4 * total);
  Alcotest.check Alcotest.(list string) "channels drained" [] (Reliable.quiescent_violations shim)

(* Two interleaved directed pairs keep independent sequence spaces. *)
let test_reliable_pairs_independent () =
  let engine = Dcs_sim.Engine.create () in
  let below ~src:_ ~dst:_ ~cls:_ ~describe:_ k = Dcs_sim.Engine.schedule engine ~after:1.0 k in
  let shim = Reliable.create ~engine ~below () in
  let got = ref [] in
  List.iter
    (fun (src, dst, tag) ->
      Reliable.send shim ~src ~dst ~cls:Dcs_proto.Msg_class.Copy_grant
        ~describe:(fun () -> tag)
        (fun () -> got := tag :: !got))
    [ (0, 1, "a1"); (1, 0, "b1"); (0, 1, "a2"); (2, 1, "c1"); (1, 0, "b2") ];
  ignore (Dcs_sim.Engine.run engine);
  checki "all delivered" 5 (List.length !got);
  let order_of tag = List.length (List.filter (fun t -> t < tag) (List.rev !got)) in
  checkb "a1 before a2" true (order_of "a1" < order_of "a2");
  checkb "b1 before b2" true (order_of "b1" < order_of "b2");
  Alcotest.check Alcotest.(list string) "drained" [] (Reliable.quiescent_violations shim)

(* A lossless link must add no retransmits and still quiesce. *)
let test_reliable_clean_link_no_overhead () =
  let engine = Dcs_sim.Engine.create () in
  let below ~src:_ ~dst:_ ~cls:_ ~describe:_ k = Dcs_sim.Engine.schedule engine ~after:2.0 k in
  let shim = Reliable.create ~engine ~below () in
  let n = ref 0 in
  for _ = 1 to 20 do
    Reliable.send shim ~src:3 ~dst:4 ~cls:Dcs_proto.Msg_class.Release
      ~describe:(fun () -> "x")
      (fun () -> incr n)
  done;
  ignore (Dcs_sim.Engine.run engine);
  checki "all delivered" 20 !n;
  let s = Reliable.stats shim in
  checki "no retransmits on a clean link" 0 s.Reliable.retransmits;
  checki "no duplicates" 0 s.Reliable.duplicates_dropped

(* {1 Audit} *)

let good_view =
  {
    Audit.lock = 0;
    token_holders = [ 2 ];
    tokens_in_flight = 0;
    held = [ (0, Dcs_modes.Mode.IR); (1, Dcs_modes.Mode.R) ];
    cached = [ (2, Dcs_modes.Mode.R) ];
    queued = 1;
    pending = 1;
  }

let audit_of views =
  let engine = Dcs_sim.Engine.create () in
  Audit.create ~engine ~max_queued:4
    ~snapshot:(fun () -> views)
    ~live:(fun () -> false)
    ()

let test_audit_clean () =
  let a = audit_of [ good_view ] in
  Audit.check_now a;
  Audit.check_now a;
  checki "samples" 2 (Audit.samples a);
  Alcotest.check Alcotest.(list string) "no violations" [] (Audit.violations a)

let test_audit_detects () =
  let dup_token = { good_view with Audit.token_holders = [ 2; 5 ] } in
  let lost_token = { good_view with Audit.token_holders = []; tokens_in_flight = 0 } in
  let incompatible =
    { good_view with Audit.held = [ (0, Dcs_modes.Mode.W) ]; cached = [ (1, Dcs_modes.Mode.R) ] }
  in
  let flooded = { good_view with Audit.queued = 99 } in
  List.iter
    (fun (label, view) ->
      let a = audit_of [ view ] in
      Audit.check_now a;
      checkb (label ^ " caught") true (Audit.violations a <> []))
    [
      ("duplicated token", dup_token);
      ("lost token", lost_token);
      ("incompatible modes", incompatible);
      ("unbounded queue", flooded);
    ];
  (* In-flight transfers count toward token conservation. *)
  let in_flight = { good_view with Audit.token_holders = []; tokens_in_flight = 1 } in
  let a = audit_of [ in_flight ] in
  Audit.check_now a;
  Alcotest.check Alcotest.(list string) "in-flight token is fine" [] (Audit.violations a)

let test_audit_caps_reports () =
  let bad = { good_view with Audit.token_holders = [ 1; 2 ] } in
  let a =
    let engine = Dcs_sim.Engine.create () in
    Audit.create ~engine ~max_violations:3
      ~snapshot:(fun () -> [ bad ])
      ~live:(fun () -> false)
      ()
  in
  for _ = 1 to 10 do
    Audit.check_now a
  done;
  checki "capped plus summary line" 4 (List.length (Audit.violations a))

(* {1 End-to-end chaos experiments} *)

let chaos_config ~seed =
  let cfg = Experiment.default_config ~driver:Experiment.Hierarchical ~nodes:8 in
  {
    cfg with
    Experiment.seed;
    workload = { cfg.Experiment.workload with Dcs_workload.Airline.ops_per_node = 8; entries = 4 };
  }

let run_chaos ~seed name =
  let cfg = chaos_config ~seed in
  let horizon = Experiment.horizon_estimate cfg in
  let plan = Option.get (Plan.named ~nodes:8 ~horizon name) in
  let cfg = { cfg with Experiment.chaos = Some (Experiment.chaos plan) } in
  let trace = Dcs_sim.Trace.create ~capacity:64 ~enabled:true () in
  let result = Experiment.run ~trace cfg in
  (result, Dcs_sim.Trace.digest trace)

(* Every shipped plan: all ops complete, zero audit violations. *)
let test_chaos_plans_clean () =
  List.iter
    (fun name ->
      let result, _ = run_chaos ~seed:21L name in
      checki (name ^ " all ops") (8 * 8) result.Experiment.ops;
      let rep = Option.get result.Experiment.chaos_report in
      checkb (name ^ " sampled") true (rep.Experiment.audit_samples > 0);
      Alcotest.check
        Alcotest.(list string)
        (name ^ " audit clean") [] rep.Experiment.audit_violations)
    Plan.names

(* Same seed + same plan ⇒ identical trace digest; and the plan actually
   perturbs the run (digest differs from the fault-free one). *)
let test_chaos_determinism () =
  List.iter
    (fun name ->
      let _, d1 = run_chaos ~seed:9L name in
      let _, d2 = run_chaos ~seed:9L name in
      Alcotest.check Alcotest.int64 (name ^ " digest reproduces") d1 d2;
      let _, d3 = run_chaos ~seed:10L name in
      checkb (name ^ " seed matters") true (not (Int64.equal d1 d3)))
    [ "heal-partition"; "lossy-dup" ]

let test_chaos_rejects_bad_configs () =
  let cfg = chaos_config ~seed:1L in
  let w = { Plan.start = 0.0; duration = 1000.0 } in
  let lossy = [ Plan.Drop { window = w; prob = 0.5; scope = Plan.All } ] in
  let unshielded =
    { cfg with Experiment.chaos = Some (Experiment.chaos ~reliable:false lossy) }
  in
  checkb "lossy plan without shim rejected" true
    (match Experiment.run unshielded with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let naimi =
    {
      (Experiment.default_config ~driver:Experiment.Naimi_pure ~nodes:4) with
      Experiment.chaos = Some (Experiment.chaos lossy);
    }
  in
  checkb "chaos under naimi rejected" true
    (match Experiment.run naimi with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* The shim's wire overhead is visible in the standard message counters
   under their own classes. *)
let test_chaos_overhead_accounted () =
  let result, _ = run_chaos ~seed:33L "lossy-dup" in
  let rep = Option.get result.Experiment.chaos_report in
  let stats = Option.get rep.Experiment.reliable_stats in
  let count cls = try List.assoc cls result.Experiment.messages with Not_found -> 0 in
  checki "acks on the wire" stats.Reliable.acks (count Dcs_proto.Msg_class.Ack);
  checki "retransmits on the wire" stats.Reliable.retransmits
    (count Dcs_proto.Msg_class.Retransmit);
  checkb "overhead reported" true (rep.Experiment.shim_overhead > 0.0);
  checkb "faults actually fired" true (rep.Experiment.net_dropped > 0)

let () =
  Alcotest.run "fault"
    [
      ( "net-faults",
        [
          Alcotest.test_case "hold and flush" `Quick test_net_hold_flush;
          Alcotest.test_case "drop and duplicate" `Quick test_net_drop_duplicate;
          Alcotest.test_case "latency spike keeps FIFO" `Quick test_net_latency_spike_fifo;
        ] );
      ( "plan",
        [
          Alcotest.test_case "windows and shim flag" `Quick test_plan_windows_and_shim;
          Alcotest.test_case "install partition" `Quick test_plan_install_partition;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "scripted adversary" `Quick test_reliable_adversary;
          Alcotest.test_case "independent pairs" `Quick test_reliable_pairs_independent;
          Alcotest.test_case "clean link no overhead" `Quick test_reliable_clean_link_no_overhead;
        ] );
      ( "audit",
        [
          Alcotest.test_case "clean views" `Quick test_audit_clean;
          Alcotest.test_case "detects violations" `Quick test_audit_detects;
          Alcotest.test_case "caps reports" `Quick test_audit_caps_reports;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "all plans clean" `Slow test_chaos_plans_clean;
          Alcotest.test_case "determinism" `Slow test_chaos_determinism;
          Alcotest.test_case "bad configs rejected" `Quick test_chaos_rejects_bad_configs;
          Alcotest.test_case "overhead accounted" `Slow test_chaos_overhead_accounted;
        ] );
    ]
