(* Unit tests for the hierarchical-locking protocol engine, scripted over a
   synchronous FIFO network (Testkit.Sync_cluster). These encode the
   observable behaviours of the paper's rules and figures, plus regression
   tests for every repair documented in DESIGN.md §2. *)

open Dcs_modes
module Node = Dcs_hlock.Node
module Msg = Dcs_hlock.Msg
module SC = Testkit.Sync_cluster

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let no_cache_config = { Node.default_config with Node.caching = false }

(* {1 Basics} *)

let test_token_self_grants () =
  let c = SC.create 1 in
  let s1 = SC.acquire c ~node:0 ~mode:Mode.IR in
  let s2 = SC.acquire c ~node:0 ~mode:Mode.R in
  checki "no messages for local grants" 0 (SC.messages_sent c);
  SC.check_compat c;
  SC.release c ~node:0 ~seq:s1;
  SC.release c ~node:0 ~seq:s2

let test_incompatible_local_queues () =
  let c = SC.create 1 in
  let s1 = SC.acquire c ~node:0 ~mode:Mode.R in
  (* W conflicts with our own R: queued until release. *)
  let s2 = SC.request c ~node:0 ~mode:Mode.W in
  SC.settle c;
  checkb "W not yet granted" false (SC.granted c ~node:0 ~seq:s2);
  SC.release c ~node:0 ~seq:s1;
  SC.settle c;
  checkb "W granted after release" true (SC.granted c ~node:0 ~seq:s2)

let test_remote_grant_and_transfer () =
  let c = SC.create 3 in
  (* R from node 1: served by token transfer (bottom < R). *)
  let s1 = SC.acquire c ~node:1 ~mode:Mode.R in
  checki "token moved to n1" 1 (SC.token_holder c);
  (* IR from node 2 is copy-granted by the new token node. *)
  let _s2 = SC.acquire c ~node:2 ~mode:Mode.IR in
  checki "token stays at n1" 1 (SC.token_holder c);
  SC.check_compat c;
  checkb "n2 is in n1's copyset" true
    (List.mem_assoc 2 (Node.children (SC.node c 1)));
  SC.release c ~node:1 ~seq:s1

let test_concurrent_readers () =
  let c = SC.create ~config:no_cache_config 5 in
  let seqs = List.init 4 (fun i -> (i + 1, SC.request c ~node:(i + 1) ~mode:Mode.R)) in
  SC.settle c;
  List.iter (fun (node, seq) -> checkb "reader granted" true (SC.granted c ~node ~seq)) seqs;
  (* All four hold R concurrently. *)
  checki "held count" 4
    (List.length (List.concat_map (fun i -> Node.held (SC.node c i)) [ 1; 2; 3; 4 ]));
  SC.check_compat c

let test_writer_excludes_readers () =
  let c = SC.create ~config:no_cache_config 3 in
  let r = SC.acquire c ~node:1 ~mode:Mode.R in
  let w = SC.request c ~node:2 ~mode:Mode.W in
  SC.settle c;
  checkb "W waits" false (SC.granted c ~node:2 ~seq:w);
  SC.check_compat c;
  SC.release c ~node:1 ~seq:r;
  SC.settle c;
  checkb "W granted after reader left" true (SC.granted c ~node:2 ~seq:w);
  checki "writer holds token" 2 (SC.token_holder c)

(* {1 Paper Figure 2: release suppression and local queues} *)

let test_release_suppression_rule_5_2 () =
  (* B holds IR and grants IR to C (C becomes B's child). When B's client
     releases, B still owns IR through C: no release message travels
     (Rule 5.2). *)
  let c = SC.create ~config:no_cache_config 3 in
  let b = 1 and cc = 2 in
  let sb = SC.acquire c ~node:b ~mode:Mode.IR in
  (* Point C's routing at B so B child-grants. *)
  let sc_ = Node.request (SC.node c cc) ~mode:Mode.IR in
  ignore sc_;
  SC.settle c;
  checkb "C granted" true (SC.granted c ~node:cc ~seq:sc_);
  checkb "C is B's child" true (List.mem_assoc cc (Node.children (SC.node c b)));
  let releases_before = SC.sent_of_class c Dcs_proto.Msg_class.Release in
  SC.release c ~node:b ~seq:sb;
  SC.settle c;
  let releases_after = SC.sent_of_class c Dcs_proto.Msg_class.Release in
  checki "no release message (still owns IR via C)" releases_before releases_after;
  Alcotest.check Testkit.mode "B still owns IR" Mode.IR (Option.get (Node.owned (SC.node c b)))

(* {1 Paper Figure 3: freezing prevents starvation} *)

let test_freezing_blocks_compatible_newcomers () =
  let c = SC.create ~config:no_cache_config 4 in
  (* Node 1 takes IW (transfer); node 2 takes IW as its child. *)
  let s1 = SC.acquire c ~node:1 ~mode:Mode.IW in
  let s2 = SC.acquire c ~node:2 ~mode:Mode.IW in
  (* Node 3 asks for R: incompatible with IW, queued at the token; IW is
     frozen (Table 2b row IW/R). *)
  let s3 = SC.request c ~node:3 ~mode:Mode.R in
  SC.settle c;
  checkb "R waits" false (SC.granted c ~node:3 ~seq:s3);
  checkb "IW frozen at token" true (Mode_set.mem Mode.IW (Node.frozen (SC.node c 1)));
  (* A new IW request must now be refused everywhere (frozen), even though
     it is compatible with the current holders. *)
  let s0 = SC.request c ~node:0 ~mode:Mode.IW in
  SC.settle c;
  checkb "new IW does not overtake" false (SC.granted c ~node:0 ~seq:s0);
  (* Releases drain; R is served first (FIFO), then the frozen IW. *)
  SC.release c ~node:1 ~seq:s1;
  SC.release c ~node:2 ~seq:s2;
  SC.settle c;
  checkb "R finally granted" true (SC.granted c ~node:3 ~seq:s3);
  SC.check_compat c;
  SC.release c ~node:3 ~seq:s3;
  SC.settle c;
  checkb "queued IW eventually granted" true (SC.granted c ~node:0 ~seq:s0)

let test_no_freezing_ablation_allows_overtaking () =
  let config = { Node.default_config with Node.freezing = false; caching = false } in
  let c = SC.create ~config 4 in
  let s1 = SC.acquire c ~node:1 ~mode:Mode.IW in
  let s3 = SC.request c ~node:3 ~mode:Mode.R in
  SC.settle c;
  checkb "R waits" false (SC.granted c ~node:3 ~seq:s3);
  (* Without Rule 6, a compatible IW newcomer overtakes the queued R. *)
  let s0 = SC.request c ~node:0 ~mode:Mode.IW in
  SC.settle c;
  checkb "IW overtakes (unfair!)" true (SC.granted c ~node:0 ~seq:s0);
  SC.release c ~node:1 ~seq:s1;
  SC.release c ~node:0 ~seq:s0;
  SC.settle c;
  checkb "R eventually served" true (SC.granted c ~node:3 ~seq:s3)

(* {1 Rule 7: upgrades} *)

let test_upgrade_immediate_when_alone () =
  let c = SC.create 2 in
  let s = SC.acquire c ~node:1 ~mode:Mode.U in
  checki "U holder is token" 1 (SC.token_holder c);
  SC.upgrade c ~node:1 ~seq:s;
  SC.settle c;
  checkb "upgrade completed" true (SC.upgraded c ~node:1 ~seq:s);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Testkit.mode))
    "now holds W"
    [ (s, Mode.W) ]
    (Node.held (SC.node c 1))

let test_upgrade_waits_for_readers () =
  let c = SC.create ~config:no_cache_config 3 in
  let u = SC.acquire c ~node:1 ~mode:Mode.U in
  let r = SC.acquire c ~node:2 ~mode:Mode.IR in
  SC.upgrade c ~node:1 ~seq:u;
  SC.settle c;
  checkb "upgrade blocked by IR holder" false (SC.upgraded c ~node:1 ~seq:u);
  SC.check_compat c;
  SC.release c ~node:2 ~seq:r;
  SC.settle c;
  checkb "upgrade completes after release" true (SC.upgraded c ~node:1 ~seq:u)

(* Regression (DESIGN.md repair 4): an upgrade must outrank queued U/W
   requests or the system deadlocks. *)
let test_upgrade_outranks_queued_requests () =
  let c = SC.create ~config:no_cache_config 3 in
  let u = SC.acquire c ~node:1 ~mode:Mode.U in
  (* Another U queues at the token (U/U conflict). *)
  let u2 = SC.request c ~node:2 ~mode:Mode.U in
  SC.settle c;
  checkb "second U waits" false (SC.granted c ~node:2 ~seq:u2);
  (* Now upgrade: must not deadlock behind the queued U. *)
  SC.upgrade c ~node:1 ~seq:u;
  SC.settle c;
  checkb "upgrade wins" true (SC.upgraded c ~node:1 ~seq:u);
  SC.release c ~node:1 ~seq:u;
  SC.settle c;
  checkb "queued U served after" true (SC.granted c ~node:2 ~seq:u2)

let test_upgrade_invalid_args () =
  let c = SC.create 2 in
  let r = SC.acquire c ~node:0 ~mode:Mode.R in
  checkb "upgrade of R raises" true
    (try
       SC.upgrade c ~node:0 ~seq:r;
       false
     with Invalid_argument _ -> true);
  checkb "upgrade of unheld raises" true
    (try
       SC.upgrade c ~node:0 ~seq:999;
       false
     with Invalid_argument _ -> true)

(* {1 Caching (DESIGN.md repair 1)} *)

let test_cached_reacquisition_is_free () =
  let c = SC.create 3 in
  (* Anchor the token at node 1 with an R hold, then give node 2 a copy
     grant so it is a plain (non-token) child. *)
  let anchor = SC.acquire c ~node:1 ~mode:Mode.R in
  let s = SC.acquire c ~node:2 ~mode:Mode.R in
  checki "token stays at n1" 1 (SC.token_holder c);
  SC.release c ~node:2 ~seq:s;
  SC.settle c;
  Alcotest.check (Alcotest.list Testkit.mode) "R cached" [ Mode.R ] (Node.cached (SC.node c 2));
  let before = SC.messages_sent c in
  let s2 = SC.acquire c ~node:2 ~mode:Mode.R in
  checki "no messages for cache hit" before (SC.messages_sent c);
  SC.release c ~node:2 ~seq:s2;
  SC.release c ~node:1 ~seq:anchor

let test_cache_revoked_by_conflict () =
  let c = SC.create 3 in
  let s = SC.acquire c ~node:1 ~mode:Mode.R in
  SC.release c ~node:1 ~seq:s;
  SC.settle c;
  (* A writer elsewhere must revoke node 1's cached R. *)
  let w = SC.request c ~node:2 ~mode:Mode.W in
  SC.settle c;
  checkb "W granted" true (SC.granted c ~node:2 ~seq:w);
  Alcotest.check (Alcotest.list Testkit.mode) "cache revoked" [] (Node.cached (SC.node c 1));
  SC.check_compat c

let test_no_caching_ablation () =
  let c = SC.create ~config:no_cache_config 3 in
  let anchor = SC.acquire c ~node:1 ~mode:Mode.R in
  let s = SC.acquire c ~node:2 ~mode:Mode.R in
  SC.release c ~node:2 ~seq:s;
  SC.settle c;
  Alcotest.check (Alcotest.list Testkit.mode) "nothing cached" [] (Node.cached (SC.node c 2));
  let before = SC.messages_sent c in
  let s2 = SC.acquire c ~node:2 ~mode:Mode.R in
  checkb "re-acquisition costs messages" true (SC.messages_sent c > before);
  SC.release c ~node:2 ~seq:s2;
  SC.release c ~node:1 ~seq:anchor

(* {1 Custody / absorption (DESIGN.md repair 10)} *)

let test_mutual_iw_requests_no_deadlock () =
  (* The historical mutual-absorption deadlock: two nodes request IW while
     routing through each other. With the ordered-absorption rule both must
     complete. *)
  let c = SC.create ~config:no_cache_config 4 in
  let a = SC.request c ~node:1 ~mode:Mode.IW in
  let b = SC.request c ~node:2 ~mode:Mode.IW in
  SC.settle c;
  checkb "first IW granted" true (SC.granted c ~node:1 ~seq:a);
  checkb "second IW granted" true (SC.granted c ~node:2 ~seq:b);
  SC.check_compat c

(* {1 Epochs: releases crossing grants} *)

let test_release_epoch_guard () =
  (* Scripted crossing: node 1 acquires IR from the token (which holds R
     itself so the grant is a copy, not a transfer), releases it, and is
     re-granted around the release. The epoch machinery must leave the
     record consistent. *)
  let c = SC.create ~config:no_cache_config 2 in
  let anchor = SC.acquire c ~node:0 ~mode:Mode.R in
  ignore anchor;
  let s1 = SC.acquire c ~node:1 ~mode:Mode.IR in
  (* Release: the Release{None} message is now on the wire. *)
  SC.release c ~node:1 ~seq:s1;
  (* Before delivering it, node 1 requests IR again; with FIFO the request
     queues behind the release, so deliver both and then confirm state is
     consistent (record present, owned IR). *)
  let s2 = SC.request c ~node:1 ~mode:Mode.IR in
  SC.settle c;
  checkb "regranted" true (SC.granted c ~node:1 ~seq:s2);
  Alcotest.check Testkit.mode "record matches owned" Mode.IR
    (List.assoc 1 (Node.children (SC.node c 0)));
  SC.release c ~node:1 ~seq:s2;
  SC.settle c;
  Alcotest.check (Alcotest.option Testkit.mode) "fully released" None (Node.owned (SC.node c 1))

(* {1 FIFO fairness across modes} *)

let test_fifo_write_then_reads () =
  let c = SC.create ~config:no_cache_config 5 in
  let r1 = SC.acquire c ~node:1 ~mode:Mode.R in
  (* Writer queues. *)
  let w = SC.request c ~node:2 ~mode:Mode.W in
  SC.settle c;
  (* Readers arriving after the writer must not overtake (R frozen). *)
  let r2 = SC.request c ~node:3 ~mode:Mode.R in
  let r3 = SC.request c ~node:4 ~mode:Mode.R in
  SC.settle c;
  checkb "late reader 1 waits" false (SC.granted c ~node:3 ~seq:r2);
  checkb "late reader 2 waits" false (SC.granted c ~node:4 ~seq:r3);
  SC.release c ~node:1 ~seq:r1;
  SC.settle c;
  checkb "writer served first" true (SC.granted c ~node:2 ~seq:w);
  SC.release c ~node:2 ~seq:w;
  SC.settle c;
  checkb "reader 1 after writer" true (SC.granted c ~node:3 ~seq:r2);
  checkb "reader 2 after writer" true (SC.granted c ~node:4 ~seq:r3);
  SC.check_compat c

(* {1 Priorities (prioritized-token extension, refs [11,12])} *)

let test_priority_service_order () =
  (* Priority ordering is exact within one queue: queue three local
     requests of different priorities at the token while it holds R. *)
  let c = SC.create ~config:no_cache_config 1 in
  let r = SC.acquire c ~node:0 ~mode:Mode.R in
  let w_low = SC.request c ~node:0 ~mode:Mode.W in
  let w_high = Node.request ~priority:5 (SC.node c 0) ~mode:Mode.W in
  let w_mid = Node.request ~priority:2 (SC.node c 0) ~mode:Mode.W in
  SC.settle c;
  checkb "all waiting" true
    (not (SC.granted c ~node:0 ~seq:w_low)
    && (not (SC.granted c ~node:0 ~seq:w_high))
    && not (SC.granted c ~node:0 ~seq:w_mid));
  SC.release c ~node:0 ~seq:r;
  SC.settle c;
  checkb "high first" true (SC.granted c ~node:0 ~seq:w_high);
  checkb "mid waits" false (SC.granted c ~node:0 ~seq:w_mid);
  SC.release c ~node:0 ~seq:w_high;
  SC.settle c;
  checkb "mid second" true (SC.granted c ~node:0 ~seq:w_mid);
  checkb "low waits" false (SC.granted c ~node:0 ~seq:w_low);
  SC.release c ~node:0 ~seq:w_mid;
  SC.settle c;
  checkb "low last" true (SC.granted c ~node:0 ~seq:w_low);
  SC.release c ~node:0 ~seq:w_low

let test_priority_across_nodes () =
  (* Distributed case: a later high-priority writer overtakes queued
     lower-priority ones wherever they share a queue; inversion is bounded
     by one custodian hold. Assert the high writer is granted no later
     than immediately after the first low release. *)
  let c = SC.create ~config:no_cache_config 5 in
  let r = SC.acquire c ~node:1 ~mode:Mode.R in
  let w1 = SC.request c ~node:2 ~mode:Mode.W in
  SC.settle c;
  let w2 = SC.request c ~node:4 ~mode:Mode.W in
  SC.settle c;
  let w_high = Node.request ~priority:5 (SC.node c 3) ~mode:Mode.W in
  SC.settle c;
  SC.release c ~node:1 ~seq:r;
  SC.settle c;
  (* One of the low writers may hold the token already (custody), but the
     high-priority writer must be served before the remaining low one. *)
  let first_low_granted =
    (SC.granted c ~node:2 ~seq:w1, SC.granted c ~node:4 ~seq:w2)
  in
  (match first_low_granted with
  | true, true -> Alcotest.fail "both low writers served before the high one"
  | _ -> ());
  (* Release whatever is held until the high one is granted; it must come
     before the second low writer. *)
  let release_granted () =
    List.iter
      (fun (node, seq) -> if SC.granted c ~node ~seq then (try SC.release c ~node ~seq with Invalid_argument _ -> ()))
      [ (2, w1); (4, w2) ];
    SC.settle c
  in
  release_granted ();
  checkb "high granted after at most one low hold" true (SC.granted c ~node:3 ~seq:w_high);
  checkb "one low writer still waiting" true
    ((not (SC.granted c ~node:2 ~seq:w1)) || not (SC.granted c ~node:4 ~seq:w2));
  SC.release c ~node:3 ~seq:w_high;
  SC.settle c;
  release_granted ();
  checkb "all eventually served" true
    (SC.granted c ~node:2 ~seq:w1 && SC.granted c ~node:4 ~seq:w2)

let test_priority_fifo_within_level () =
  let c = SC.create ~config:no_cache_config 4 in
  let r = SC.acquire c ~node:1 ~mode:Mode.R in
  let w1 = Node.request ~priority:3 (SC.node c 2) ~mode:Mode.W in
  SC.settle c;
  let w2 = Node.request ~priority:3 (SC.node c 3) ~mode:Mode.W in
  SC.settle c;
  SC.release c ~node:1 ~seq:r;
  SC.settle c;
  checkb "first same-priority writer wins" true (SC.granted c ~node:2 ~seq:w1);
  checkb "second waits" false (SC.granted c ~node:3 ~seq:w2);
  SC.release c ~node:2 ~seq:w1;
  SC.settle c;
  checkb "then the second" true (SC.granted c ~node:3 ~seq:w2);
  SC.release c ~node:3 ~seq:w2

let test_upgrade_outranks_priorities () =
  let c = SC.create ~config:no_cache_config 3 in
  let u = SC.acquire c ~node:1 ~mode:Mode.U in
  let w = Node.request ~priority:9 (SC.node c 2) ~mode:Mode.W in
  SC.settle c;
  SC.upgrade c ~node:1 ~seq:u;
  SC.settle c;
  checkb "upgrade beats priority-9 writer" true (SC.upgraded c ~node:1 ~seq:u);
  checkb "writer waits" false (SC.granted c ~node:2 ~seq:w);
  SC.release c ~node:1 ~seq:u;
  SC.settle c;
  checkb "writer after upgrade" true (SC.granted c ~node:2 ~seq:w)

let test_negative_priority_rejected () =
  let c = SC.create 2 in
  checkb "negative rejected" true
    (try
       ignore (Node.request ~priority:(-1) (SC.node c 0) ~mode:Mode.R);
       false
     with Invalid_argument _ -> true)

(* {1 Randomized stress on the synchronous network} *)

let stress ~config ~nodes ~ops ~seed () =
  let c = SC.create ~config nodes in
  let rng = Dcs_sim.Rng.create ~seed in
  let outstanding = ref [] in
  let issued = ref 0 and completed = ref 0 in
  for _ = 1 to ops do
    (* Randomly either issue a fresh request from an idle node or release a
       held ticket; settle after every step and check safety. *)
    let idle_nodes =
      List.filter
        (fun n -> not (List.exists (fun (n', _, _) -> n' = n) !outstanding))
        (List.init nodes (fun i -> i))
    in
    let can_issue = idle_nodes <> [] in
    let must_issue = !outstanding = [] in
    if must_issue || (can_issue && Dcs_sim.Rng.bool rng) then begin
      let node = Dcs_sim.Rng.pick rng idle_nodes in
      let mode = Dcs_sim.Rng.pick rng Mode.all in
      let seq = SC.request c ~node ~mode in
      incr issued;
      outstanding := (node, seq, mode) :: !outstanding
    end
    else begin
      let (node, seq, _) = Dcs_sim.Rng.pick rng !outstanding in
      if SC.granted c ~node ~seq then begin
        SC.release c ~node ~seq;
        incr completed;
        outstanding := List.filter (fun (n, s, _) -> not (n = node && s = seq)) !outstanding
      end
    end;
    SC.settle c;
    SC.check_compat c
  done;
  (* Drain: release everything granted; everything issued must eventually
     be granted and releasable. *)
  let rec drain guard =
    if guard > 10 * ops then Alcotest.fail "drain did not converge";
    match !outstanding with
    | [] -> ()
    | remaining ->
        List.iter
          (fun (node, seq, _) ->
            if SC.granted c ~node ~seq then begin
              SC.release c ~node ~seq;
              incr completed;
              outstanding := List.filter (fun (n, s, _) -> not (n = node && s = seq)) !outstanding
            end)
          remaining;
        SC.settle c;
        SC.check_compat c;
        drain (guard + 1)
  in
  drain 0;
  checki "all issued requests completed" !issued !completed;
  ignore (SC.token_holder c)

let test_stress_default = stress ~config:Node.default_config ~nodes:6 ~ops:400 ~seed:1L

let test_stress_no_cache = stress ~config:no_cache_config ~nodes:6 ~ops:400 ~seed:2L

let test_stress_no_freeze =
  stress
    ~config:{ Node.default_config with Node.freezing = false }
    ~nodes:5 ~ops:300 ~seed:3L

let test_stress_eager =
  stress
    ~config:{ Node.default_config with Node.eager_release = true }
    ~nodes:5 ~ops:300 ~seed:4L

let test_stress_larger = stress ~config:Node.default_config ~nodes:12 ~ops:600 ~seed:5L

(* {1 The custody watchdog} *)

let test_kick_recirculates_custody () =
  let c = SC.create ~config:no_cache_config 4 in
  (* Put node 2 in the vulnerable state: pending W with a remote request in
     custody. Node 1 camps on R so the Ws queue. *)
  let r = SC.acquire c ~node:1 ~mode:Mode.R in
  let w2 = SC.request c ~node:2 ~mode:Mode.W in
  SC.settle c;
  let w3 = SC.request c ~node:3 ~mode:Mode.W in
  SC.settle c;
  (* If node 2 absorbed node 3's W, two kicks re-circulate it (the first
     marks, the second flushes); the request must remain exactly-once. *)
  let custodian = SC.node c 2 in
  let had_custody = List.length (Node.queue custodian) > 0 in
  Node.kick custodian;
  Node.kick custodian;
  SC.settle c;
  if had_custody then
    checkb "custody flushed by second kick" true (Node.queue custodian = []);
  (* Idle nodes: kicking is a no-op. *)
  Node.kick (SC.node c 0);
  SC.settle c;
  (* Everything still completes exactly once. *)
  SC.release c ~node:1 ~seq:r;
  SC.settle c;
  let rec drain guard =
    if guard > 50 then Alcotest.fail "drain stalled";
    let done2 = SC.granted c ~node:2 ~seq:w2 and done3 = SC.granted c ~node:3 ~seq:w3 in
    if done2 && done3 then ()
    else begin
      if done2 then (try SC.release c ~node:2 ~seq:w2 with Invalid_argument _ -> ());
      if done3 then (try SC.release c ~node:3 ~seq:w3 with Invalid_argument _ -> ());
      SC.settle c;
      drain (guard + 1)
    end
  in
  drain 0;
  SC.check_compat c

(* {1 Defensive message handling} *)

let test_stale_messages_ignored () =
  let c = SC.create ~config:no_cache_config 3 in
  let token = SC.node c 0 in
  (* Release from a node that was never granted anything: ignored. *)
  Node.handle_msg token ~src:2 (Msg.Release { new_owned = Some Mode.R; epoch = 99 });
  Alcotest.check (Alcotest.option Testkit.mode) "no phantom record" None (Node.owned token);
  (* Freeze from a non-parent at a non-token node: granting restriction
     rejected (but caches may be dropped — none here). *)
  Node.handle_msg (SC.node c 1) ~src:2 (Msg.Freeze { frozen = Mode_set.full });
  Alcotest.check Testkit.mode_set "freeze from stranger ignored" Mode_set.empty
    (Node.frozen (SC.node c 1));
  (* A stale-epoch release must not clobber a fresh grant. *)
  let s = SC.acquire c ~node:1 ~mode:Mode.IR in
  let record_before = List.assoc_opt 1 (Node.children token) in
  Node.handle_msg token ~src:1 (Msg.Release { new_owned = None; epoch = 424242 });
  Alcotest.check (Alcotest.option Testkit.mode) "record survives stale release" record_before
    (List.assoc_opt 1 (Node.children token));
  SC.release c ~node:1 ~seq:s;
  SC.settle c

(* {1 QCheck: random operation scripts} *)

(* A script is a list of abstract steps interpreted against a synchronous
   cluster; the property is the global one: safety at every step, and
   every granted ticket eventually releasable with full completion. QCheck
   shrinks failing scripts to minimal counterexamples. *)
module Script = struct
  type step =
    | Req of { node : int; mode : Mode.t; priority : int }
    | Rel of int  (* release the i-th oldest currently-granted ticket *)
    | Upg of int  (* upgrade the i-th granted ticket if it is a U *)

  let gen ~nodes =
    QCheck2.Gen.(
      list_size (int_range 1 40)
        (oneof
           [
             (let* node = int_bound (nodes - 1) in
              let* mode = Testkit.gen_mode in
              let* priority = int_bound 3 in
              return (Req { node; mode; priority }));
             map (fun i -> Rel i) (int_bound 5);
             map (fun i -> Upg i) (int_bound 5);
           ]))

  let run ~config ~nodes script =
    let c = SC.create ~config nodes in
    let outstanding = ref [] in  (* (node, seq), oldest first *)
    let issued = ref 0 and completed = ref 0 in
    let apply = function
      | Req { node; mode; priority } ->
          (* One outstanding request per node keeps the client model sane. *)
          if not (List.exists (fun (n, _) -> n = node) !outstanding) then begin
            let seq = Node.request ~priority (SC.node c node) ~mode in
            incr issued;
            outstanding := !outstanding @ [ (node, seq) ]
          end
      | Rel i -> (
          match List.nth_opt !outstanding i with
          | Some (node, seq) when SC.granted c ~node ~seq ->
              SC.release c ~node ~seq;
              incr completed;
              outstanding := List.filter (fun p -> p <> (node, seq)) !outstanding
          | _ -> ())
      | Upg i -> (
          match List.nth_opt !outstanding i with
          | Some (node, seq)
            when SC.granted c ~node ~seq
                 && List.assoc_opt seq (Node.held (SC.node c node)) = Some Mode.U ->
              SC.upgrade c ~node ~seq
          | _ -> ())
    in
    List.iter
      (fun step ->
        apply step;
        SC.settle c;
        SC.check_compat c)
      script;
    (* Drain: release everything granted until all issued ops complete. *)
    let guard = ref 0 in
    while !outstanding <> [] do
      incr guard;
      if !guard > 5000 then Alcotest.fail "script drain did not converge";
      List.iter
        (fun (node, seq) ->
          if SC.granted c ~node ~seq then begin
            SC.release c ~node ~seq;
            incr completed;
            outstanding := List.filter (fun p -> p <> (node, seq)) !outstanding
          end)
        !outstanding;
      SC.settle c;
      SC.check_compat c
    done;
    !issued = !completed && SC.token_holder c >= 0
end

let prop_random_scripts =
  QCheck2.Test.make ~name:"random scripts are safe and live (default config)" ~count:300
    (Script.gen ~nodes:5)
    (fun script -> Script.run ~config:Node.default_config ~nodes:5 script)

let prop_random_scripts_no_cache =
  QCheck2.Test.make ~name:"random scripts are safe and live (no caching)" ~count:200
    (Script.gen ~nodes:4)
    (fun script -> Script.run ~config:no_cache_config ~nodes:4 script)

let prop_random_scripts_priorities =
  QCheck2.Test.make ~name:"random scripts are safe and live (8 nodes)" ~count:150
    (Script.gen ~nodes:8)
    (fun script -> Script.run ~config:Node.default_config ~nodes:8 script)

(* {1 Message classification} *)

let test_msg_classes () =
  let r = { Msg.requester = 1; seq = 0; mode = Mode.R; upgrade = false; timestamp = 1; priority = 0;
            hops = 0; token_only = false; hint = (0, 0); path = [ 1 ] } in
  Alcotest.check (Alcotest.testable Dcs_proto.Msg_class.pp Dcs_proto.Msg_class.equal)
    "request" Dcs_proto.Msg_class.Request
    (Msg.class_of (Msg.Request r));
  Alcotest.check (Alcotest.testable Dcs_proto.Msg_class.pp Dcs_proto.Msg_class.equal)
    "grant" Dcs_proto.Msg_class.Copy_grant
    (Msg.class_of (Msg.Grant { req = r; epoch = 1; recorded = Mode.R; ancestry = [] }))

let test_merge_queues_orders_by_timestamp () =
  let mk ts id = { Msg.requester = id; seq = 0; mode = Mode.R; upgrade = false; timestamp = ts; priority = 0;
                   hops = 0; token_only = false; hint = (0, 0); path = [ id ] } in
  let merged = Msg.merge_queues [ mk 5 1; mk 9 2 ] [ mk 3 3; mk 7 4 ] in
  Alcotest.check (Alcotest.list Alcotest.int) "by timestamp" [ 3; 1; 4; 2 ]
    (List.map (fun (r : Msg.request) -> r.Msg.requester) merged)

(* Regression for the held-grant table (an assoc list until it showed up
   in profiles; now a hash table): a node holding many compatible grants
   at once must keep every lookup, insert and removal exact, and the
   [held] view must stay sorted by sequence number. *)
let test_many_concurrent_holds () =
  (* caching off so [owned] tracks the held grants alone. *)
  let c = SC.create ~config:no_cache_config 1 in
  let n = 200 in
  let seqs =
    List.init n (fun i ->
        SC.acquire c ~node:0 ~mode:(if i mod 2 = 0 then Mode.IR else Mode.R))
  in
  let held = Node.held (SC.node c 0) in
  checki "all grants held" n (List.length held);
  checkb "sorted by seq" true (List.sort compare held = held);
  List.iteri
    (fun i seq ->
      Alcotest.check (Alcotest.option Testkit.mode) "mode by seq"
        (Some (if i mod 2 = 0 then Mode.IR else Mode.R))
        (List.assoc_opt seq held))
    seqs;
  SC.check_compat c;
  (* The strongest held grant (R) dominates the owned mode. *)
  Alcotest.check (Alcotest.option Testkit.mode) "owned is R" (Some Mode.R)
    (Node.owned (SC.node c 0));
  (* Release every other grant (all the Rs), newest first. *)
  let drop = List.rev (List.filteri (fun i _ -> i mod 2 = 1) seqs) in
  let keep = List.filteri (fun i _ -> i mod 2 = 0) seqs in
  List.iter (fun seq -> SC.release c ~node:0 ~seq) drop;
  let held = Node.held (SC.node c 0) in
  checki "half released" (List.length keep) (List.length held);
  List.iter (fun seq -> checkb "kept grant present" true (List.mem_assoc seq held)) keep;
  checkb "released grants gone" true
    (List.for_all (fun seq -> not (List.mem_assoc seq held)) drop);
  Alcotest.check (Alcotest.option Testkit.mode) "owned falls back to IR" (Some Mode.IR)
    (Node.owned (SC.node c 0));
  List.iter (fun seq -> SC.release c ~node:0 ~seq) keep;
  checki "all released" 0 (List.length (Node.held (SC.node c 0)))

(* {1 Send batching (transport-level coalescing hook)} *)

(* Two releases inside one batch scope produce two upward Release
   messages at the same epoch; the batch must deliver only the final one
   (the parent's record ends at the same owned mode either way). *)
let test_send_batch_coalesces_releases () =
  let sent = ref [] in
  let n0 = ref None and n1 = ref None in
  let deliver target src msg =
    match !target with Some n -> Node.handle_msg n ~src msg | None -> ()
  in
  let node0 =
    Node.create ~config:no_cache_config ~id:0 ~peers:2 ~is_token:true ~parent:None
      ~send:(fun ~dst:_ msg -> deliver n1 0 msg)
      ~on_granted:(fun _ -> ())
      ~on_upgraded:(fun _ -> ())
      ()
  in
  let node1 =
    Node.create ~config:no_cache_config ~id:1 ~peers:2 ~is_token:false ~parent:(Some 0)
      ~send:(fun ~dst msg ->
        sent := (dst, msg) :: !sent;
        deliver n0 1 msg)
      ~on_granted:(fun _ -> ())
      ~on_upgraded:(fun _ -> ())
      ()
  in
  n0 := Some node0;
  n1 := Some node1;
  (* The token node holds R itself so node 1's requests are served by
     copy grants (owned R can child-grant R), not by a token transfer
     that would leave node 1 parentless. *)
  ignore (Node.request node0 ~mode:Mode.R);
  let s1 = Node.request node1 ~mode:Mode.R in
  let s2 = Node.request node1 ~mode:Mode.IR in
  checki "both held" 2 (List.length (Node.held node1));
  checkb "node 1 not the token" false (Node.is_token node1);
  sent := [];
  let before = !Node.coalesced in
  Node.with_send_batch node1 (fun () ->
      Node.release node1 ~seq:s1;
      Node.release node1 ~seq:s2);
  let releases =
    List.filter (fun (_, m) -> match m with Msg.Release _ -> true | _ -> false) !sent
  in
  checki "one release on the wire" 1 (List.length releases);
  (match releases with
  | [ (dst, Msg.Release { new_owned; _ }) ] ->
      checki "to the parent" 0 dst;
      checkb "final owned report wins" true (new_owned = None)
  | _ -> Alcotest.fail "unexpected batch contents");
  checki "coalesced counter" (before + 1) !Node.coalesced;
  checkb "node0 saw the release" true (Node.children node0 = [])

(* Batching must not reorder or drop anything it cannot prove
   superseded: a single message in a batch flushes unchanged, and the
   scope's return value passes through. *)
let test_send_batch_passthrough () =
  let c = SC.create 2 in
  let node1 = SC.node c 1 in
  let v = Node.with_send_batch node1 (fun () -> Node.request node1 ~mode:Mode.R) in
  SC.settle c;
  checkb "granted after batched request" true (SC.granted c ~node:1 ~seq:v);
  SC.check_compat c

let () =
  Alcotest.run "dcs_hlock"
    [
      ( "basics",
        [
          Alcotest.test_case "token self-grants" `Quick test_token_self_grants;
          Alcotest.test_case "incompatible local queues" `Quick test_incompatible_local_queues;
          Alcotest.test_case "grant and transfer" `Quick test_remote_grant_and_transfer;
          Alcotest.test_case "concurrent readers" `Quick test_concurrent_readers;
          Alcotest.test_case "writer excludes readers" `Quick test_writer_excludes_readers;
          Alcotest.test_case "many concurrent holds" `Quick test_many_concurrent_holds;
        ] );
      ( "figure-2",
        [ Alcotest.test_case "release suppression (Rule 5.2)" `Quick test_release_suppression_rule_5_2 ] );
      ( "figure-3",
        [
          Alcotest.test_case "freezing blocks newcomers" `Quick test_freezing_blocks_compatible_newcomers;
          Alcotest.test_case "no-freeze ablation overtakes" `Quick test_no_freezing_ablation_allows_overtaking;
          Alcotest.test_case "fifo write then reads" `Quick test_fifo_write_then_reads;
        ] );
      ( "rule-7",
        [
          Alcotest.test_case "immediate upgrade" `Quick test_upgrade_immediate_when_alone;
          Alcotest.test_case "waits for readers" `Quick test_upgrade_waits_for_readers;
          Alcotest.test_case "outranks queued requests" `Quick test_upgrade_outranks_queued_requests;
          Alcotest.test_case "invalid args" `Quick test_upgrade_invalid_args;
        ] );
      ( "caching",
        [
          Alcotest.test_case "cache hit is free" `Quick test_cached_reacquisition_is_free;
          Alcotest.test_case "revoked by conflict" `Quick test_cache_revoked_by_conflict;
          Alcotest.test_case "no-caching ablation" `Quick test_no_caching_ablation;
        ] );
      ( "custody",
        [
          Alcotest.test_case "mutual IW no deadlock" `Quick test_mutual_iw_requests_no_deadlock;
          Alcotest.test_case "release epoch guard" `Quick test_release_epoch_guard;
          Alcotest.test_case "stale messages ignored" `Quick test_stale_messages_ignored;
          Alcotest.test_case "kick watchdog" `Quick test_kick_recirculates_custody;
        ] );
      ( "priorities",
        [
          Alcotest.test_case "service order" `Quick test_priority_service_order;
          Alcotest.test_case "across nodes" `Quick test_priority_across_nodes;
          Alcotest.test_case "fifo within level" `Quick test_priority_fifo_within_level;
          Alcotest.test_case "upgrade outranks" `Quick test_upgrade_outranks_priorities;
          Alcotest.test_case "negative rejected" `Quick test_negative_priority_rejected;
        ] );
      ( "stress",
        [
          Alcotest.test_case "default config" `Slow test_stress_default;
          Alcotest.test_case "no caching" `Slow test_stress_no_cache;
          Alcotest.test_case "no freezing" `Slow test_stress_no_freeze;
          Alcotest.test_case "eager releases" `Slow test_stress_eager;
          Alcotest.test_case "12 nodes" `Slow test_stress_larger;
        ] );
      ( "qcheck-scripts",
        [
          QCheck_alcotest.to_alcotest prop_random_scripts;
          QCheck_alcotest.to_alcotest prop_random_scripts_no_cache;
          QCheck_alcotest.to_alcotest prop_random_scripts_priorities;
        ] );
      ( "messages",
        [
          Alcotest.test_case "classes" `Quick test_msg_classes;
          Alcotest.test_case "queue merging" `Quick test_merge_queues_orders_by_timestamp;
        ] );
      ( "send batching",
        [
          Alcotest.test_case "coalesces releases" `Quick test_send_batch_coalesces_releases;
          Alcotest.test_case "passthrough" `Quick test_send_batch_passthrough;
        ] );
    ]
