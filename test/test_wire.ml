(* Codec tests: roundtrips for every message kind and rejection of
   malformed input. *)

open Dcs_modes
module Msg = Dcs_hlock.Msg
module Codec = Dcs_wire.Codec
module Buf = Dcs_wire.Buf
module Q = QCheck2

let checkb = Alcotest.check Alcotest.bool

let gen_request =
  Q.Gen.(
    let* requester = int_bound 200 in
    let* seq = int_bound 10_000 in
    let* mode = Testkit.gen_mode in
    let* upgrade = bool in
    let* timestamp = int_bound 1_000_000 in
    let* priority = int_bound 9 in
    let* hops = int_bound 300 in
    let* token_only = bool in
    let* tenure = int_bound 100_000 in
    let* owner = int_bound 200 in
    let* path = list_size (int_bound 20) (int_bound 200) in
    return
      {
        Msg.requester;
        seq;
        mode;
        upgrade;
        timestamp;
        priority;
        hops;
        token_only;
        hint = (tenure, owner);
        path;
      })

let gen_mode_set = Q.Gen.(map Mode_set.of_list (list_size (int_bound 5) Testkit.gen_mode))

let gen_hlock_msg =
  Q.Gen.(
    oneof
      [
        map (fun r -> Msg.Request r) gen_request;
        (let* req = gen_request in
         let* epoch = int_bound 100_000 in
         let* recorded = Testkit.gen_mode in
         let* ancestry = list_size (int_bound 10) (int_bound 200) in
         return (Msg.Grant { req; epoch; recorded; ancestry }));
        (let* serving = gen_request in
         let* sender_owned = Testkit.gen_mode_opt in
         let* sender_epoch = int_bound 100_000 in
         let* queue = list_size (int_bound 8) gen_request in
         let* frozen = gen_mode_set in
         return (Msg.Token { serving; sender_owned; sender_epoch; queue; frozen }));
        (let* new_owned = Testkit.gen_mode_opt in
         let* epoch = int_bound 100_000 in
         return (Msg.Release { new_owned; epoch }));
        map (fun frozen -> Msg.Freeze { frozen }) gen_mode_set;
      ])

let gen_envelope =
  Q.Gen.(
    let* src = int_bound 200 in
    let* lock = int_bound 50 in
    let* payload =
      oneof
        [
          map (fun m -> Codec.Hlock m) gen_hlock_msg;
          oneofl
            [
              Codec.Naimi (Dcs_naimi.Naimi.Request { requester = 3; seq = 17 });
              Codec.Naimi Dcs_naimi.Naimi.Token;
            ];
        ]
    in
    return { Codec.src; lock; payload })

let prop_roundtrip =
  Q.Test.make ~name:"encode/decode roundtrip" ~count:2000 gen_envelope (fun env ->
      Codec.decode (Codec.encode env) = env)

let prop_truncation_rejected =
  Q.Test.make ~name:"truncated input raises Malformed" ~count:500 gen_envelope (fun env ->
      let s = Codec.encode env in
      if String.length s < 2 then true
      else
        let cut = String.sub s 0 (String.length s - 1) in
        match Codec.decode cut with
        | _ -> false
        | exception Buf.Malformed _ -> true)

(* Stronger than dropping one byte: every proper prefix must be rejected,
   whatever field boundary the cut lands on. *)
let prop_every_prefix_rejected =
  Q.Test.make ~name:"every proper prefix raises Malformed" ~count:200 gen_envelope (fun env ->
      let s = Codec.encode env in
      let ok = ref true in
      for len = 0 to String.length s - 1 do
        (match Codec.decode (String.sub s 0 len) with
        | _ -> ok := false
        | exception Buf.Malformed _ -> ())
      done;
      !ok)

(* Per-class roundtrips: the mixed generator above could in principle
   drift toward some classes; these pin every wire shape individually. *)
let hlock_envelope m = { Codec.src = 1; lock = 0; payload = Codec.Hlock m }

let per_class_roundtrip name gen =
  Q.Test.make ~name:(name ^ " roundtrip") ~count:500
    Q.Gen.(map hlock_envelope gen)
    (fun env -> Codec.decode (Codec.encode env) = env)

let prop_request_roundtrip =
  per_class_roundtrip "request" Q.Gen.(map (fun r -> Msg.Request r) gen_request)

let prop_grant_roundtrip =
  per_class_roundtrip "grant"
    Q.Gen.(
      let* req = gen_request in
      let* epoch = int_bound 100_000 in
      let* recorded = Testkit.gen_mode in
      let* ancestry = list_size (int_bound 10) (int_bound 200) in
      return (Msg.Grant { req; epoch; recorded; ancestry }))

let prop_token_roundtrip =
  per_class_roundtrip "token"
    Q.Gen.(
      let* serving = gen_request in
      let* sender_owned = Testkit.gen_mode_opt in
      let* sender_epoch = int_bound 100_000 in
      let* queue = list_size (int_bound 8) gen_request in
      let* frozen = gen_mode_set in
      return (Msg.Token { serving; sender_owned; sender_epoch; queue; frozen }))

let prop_release_roundtrip =
  per_class_roundtrip "release"
    Q.Gen.(
      let* new_owned = Testkit.gen_mode_opt in
      let* epoch = int_bound 100_000 in
      return (Msg.Release { new_owned; epoch }))

let prop_freeze_roundtrip =
  per_class_roundtrip "freeze" Q.Gen.(map (fun frozen -> Msg.Freeze { frozen }) gen_mode_set)

(* {2 Flat writer vs the legacy [Buffer] writer}

   The flat path must be a pure representation change: for every message
   class, the bytes must match the historical Buffer-based encoder
   (instantiated from the same functor as [Codec.encode_legacy])
   byte-for-byte. *)

let per_class_flat_eq_legacy name gen =
  Q.Test.make ~name:(name ^ " flat = legacy bytes") ~count:500
    Q.Gen.(map hlock_envelope gen)
    (fun env -> Codec.encode env = Codec.encode_legacy env)

let prop_request_flat_eq_legacy =
  per_class_flat_eq_legacy "request" Q.Gen.(map (fun r -> Msg.Request r) gen_request)

let prop_grant_flat_eq_legacy =
  per_class_flat_eq_legacy "grant"
    Q.Gen.(
      let* req = gen_request in
      let* epoch = int_bound 100_000 in
      let* recorded = Testkit.gen_mode in
      let* ancestry = list_size (int_bound 10) (int_bound 200) in
      return (Msg.Grant { req; epoch; recorded; ancestry }))

let prop_token_flat_eq_legacy =
  per_class_flat_eq_legacy "token"
    Q.Gen.(
      let* serving = gen_request in
      let* sender_owned = Testkit.gen_mode_opt in
      let* sender_epoch = int_bound 100_000 in
      let* queue = list_size (int_bound 8) gen_request in
      let* frozen = gen_mode_set in
      return (Msg.Token { serving; sender_owned; sender_epoch; queue; frozen }))

let prop_release_flat_eq_legacy =
  per_class_flat_eq_legacy "release"
    Q.Gen.(
      let* new_owned = Testkit.gen_mode_opt in
      let* epoch = int_bound 100_000 in
      return (Msg.Release { new_owned; epoch }))

let prop_freeze_flat_eq_legacy =
  per_class_flat_eq_legacy "freeze" Q.Gen.(map (fun frozen -> Msg.Freeze { frozen }) gen_mode_set)

let prop_naimi_flat_eq_legacy =
  Q.Test.make ~name:"naimi flat = legacy bytes" ~count:100
    Q.Gen.(
      let* payload =
        oneofl
          [
            Codec.Naimi (Dcs_naimi.Naimi.Request { requester = 3; seq = 17 });
            Codec.Naimi Dcs_naimi.Naimi.Token;
          ]
      in
      let* src = int_bound 200 in
      let* lock = int_bound 50 in
      return { Codec.src; lock; payload })
    (fun env -> Codec.encode env = Codec.encode_legacy env)

(* {2 Writer reuse}

   One writer across a stream of frames — reset between frames must make
   it equivalent to a fresh writer every time, including after internal
   growth. *)

let prop_writer_reset_reuse =
  Q.Test.make ~name:"writer reset reuse across frames" ~count:100
    Q.Gen.(list_size (int_bound 20) gen_envelope)
    (fun envs ->
      let w = Buf.writer ~capacity:8 () in
      List.for_all
        (fun env ->
          Buf.reset w;
          Codec.write_envelope w env;
          let via_reuse = Bytes.create (Buf.length w) in
          Buf.blit w via_reuse 0;
          Bytes.to_string via_reuse = Codec.encode env)
        envs)

(* {2 Skim and decode_sub agree with decode}

   The skim path must accept exactly what the decoder accepts — on the
   whole frame and on every proper prefix — and [decode_sub] must honor
   its slice bounds. *)

let skims s =
  match Codec.skim_envelope (Buf.reader s) with () -> true | exception Buf.Malformed _ -> false

let decodes s =
  match Codec.decode s with _ -> true | exception Buf.Malformed _ -> false

let prop_skim_equiv_decode =
  Q.Test.make ~name:"skim accepts iff decode accepts (all prefixes)" ~count:200 gen_envelope
    (fun env ->
      let s = Codec.encode env in
      let ok = ref (skims s && decodes s) in
      for len = 0 to String.length s - 1 do
        let prefix = String.sub s 0 len in
        if skims prefix || decodes prefix then ok := false
      done;
      !ok)

let prop_decode_sub_slices =
  Q.Test.make ~name:"decode_sub decodes mid-buffer slices" ~count:200 gen_envelope (fun env ->
      let s = Codec.encode env in
      let len = String.length s in
      (* Embed with garbage on both sides: only the slice must be read. *)
      let b = Bytes.make (len + 7) '\xff' in
      Bytes.blit_string s 0 b 3 len;
      Codec.decode_sub b ~off:3 ~len = env
      && (match Codec.decode_sub b ~off:3 ~len:(len - 1) with
         | _ -> false
         | exception Buf.Malformed _ -> true)
      &&
      match Codec.decode_sub b ~off:3 ~len:(len + 1) with
      | _ -> false
      | exception Buf.Malformed _ -> true)

let test_naimi_roundtrip () =
  List.iter
    (fun payload ->
      let env = { Codec.src = 9; lock = 4; payload } in
      checkb "naimi roundtrip" true (Codec.decode (Codec.encode env) = env))
    [
      Codec.Naimi (Dcs_naimi.Naimi.Request { requester = 3; seq = 17 });
      Codec.Naimi Dcs_naimi.Naimi.Token;
    ]

let prop_trailing_rejected =
  Q.Test.make ~name:"trailing bytes raise Malformed" ~count:500 gen_envelope (fun env ->
      let s = Codec.encode env ^ "\x00" in
      match Codec.decode s with
      | _ -> false
      | exception Buf.Malformed _ -> true)

let test_version_rejected () =
  (* Exhaustive version sweep: only the current version byte decodes;
     every other value 0-255 (including all prior versions, whose request
     layout differs) must raise. *)
  let env = { Codec.src = 0; lock = 0; payload = Codec.Naimi Dcs_naimi.Naimi.Token } in
  let s = Codec.encode env in
  let rest = String.sub s 1 (String.length s - 1) in
  let current = Char.code s.[0] in
  for v = 0 to 255 do
    let doctored = String.make 1 (Char.chr v) ^ rest in
    if v = current then checkb "current version decodes" true (Codec.decode doctored = env)
    else
      checkb
        (Printf.sprintf "version %d rejected" v)
        true
        (match Codec.decode doctored with _ -> false | exception Buf.Malformed _ -> true)
  done

let prop_varint_roundtrip =
  Q.Test.make ~name:"varint roundtrip" ~count:1000
    Q.Gen.(int_bound max_int)
    (fun v ->
      let w = Buf.writer () in
      Buf.varint w v;
      let r = Buf.reader (Buf.contents w) in
      Buf.read_varint r = v && Buf.at_end r)

let test_varint_negative () =
  let w = Buf.writer () in
  Alcotest.check_raises "negative" (Invalid_argument "Buf.varint: negative") (fun () ->
      Buf.varint w (-1))

let prop_string_roundtrip =
  Q.Test.make ~name:"string roundtrip" ~count:500 Q.Gen.string (fun s ->
      let w = Buf.writer () in
      Buf.string w s;
      Buf.read_string (Buf.reader (Buf.contents w)) = s)

let test_frame_roundtrip () =
  (* Through a real pipe. *)
  let env =
    {
      Codec.src = 7;
      lock = 3;
      payload =
        Codec.Hlock
          (Msg.Request
             {
               Msg.requester = 7;
               seq = 1;
               mode = Mode.IW;
               upgrade = false;
               timestamp = 5;
               priority = 0;
               hops = 2;
               token_only = false;
               hint = (9, 4);
               path = [ 7; 3 ];
             });
    }
  in
  let rd, wr = Unix.pipe () in
  let oc = Unix.out_channel_of_descr wr and ic = Unix.in_channel_of_descr rd in
  Codec.write_frame oc env;
  close_out oc;
  (match Codec.read_frame ic with
  | Some got -> checkb "same envelope" true (got = env)
  | None -> Alcotest.fail "no frame");
  checkb "clean eof" true (Codec.read_frame ic = None);
  close_in ic

let test_cluster_config () =
  (match Dcs_netkit.Cluster_config.parse ~locks:2 "0:127.0.0.1:7001,1:127.0.0.1:7002" with
  | Ok c ->
      Alcotest.check Alcotest.int "size" 2 (Dcs_netkit.Cluster_config.size c);
      Alcotest.check Alcotest.string "roundtrip" "0:127.0.0.1:7001,1:127.0.0.1:7002"
        (Dcs_netkit.Cluster_config.to_string c)
  | Error e -> Alcotest.fail e);
  checkb "sparse ids rejected" true
    (Result.is_error (Dcs_netkit.Cluster_config.parse ~locks:1 "0:h:1,2:h:2"));
  checkb "garbage rejected" true (Result.is_error (Dcs_netkit.Cluster_config.parse ~locks:1 "x"));
  checkb "no locks rejected" true
    (Result.is_error (Dcs_netkit.Cluster_config.parse ~locks:0 "0:h:1"))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dcs_wire"
    [
      ( "codec",
        [
          qt prop_roundtrip;
          qt prop_request_roundtrip;
          qt prop_grant_roundtrip;
          qt prop_token_roundtrip;
          qt prop_release_roundtrip;
          qt prop_freeze_roundtrip;
          Alcotest.test_case "naimi roundtrip" `Quick test_naimi_roundtrip;
          qt prop_truncation_rejected;
          qt prop_every_prefix_rejected;
          qt prop_trailing_rejected;
          Alcotest.test_case "version sweep" `Quick test_version_rejected;
          Alcotest.test_case "frame via pipe" `Quick test_frame_roundtrip;
        ] );
      ( "flat path",
        [
          qt prop_request_flat_eq_legacy;
          qt prop_grant_flat_eq_legacy;
          qt prop_token_flat_eq_legacy;
          qt prop_release_flat_eq_legacy;
          qt prop_freeze_flat_eq_legacy;
          qt prop_naimi_flat_eq_legacy;
          qt prop_writer_reset_reuse;
          qt prop_skim_equiv_decode;
          qt prop_decode_sub_slices;
        ] );
      ( "buf",
        [
          qt prop_varint_roundtrip;
          Alcotest.test_case "negative varint" `Quick test_varint_negative;
          qt prop_string_roundtrip;
        ] );
      ("config", [ Alcotest.test_case "cluster config" `Quick test_cluster_config ]);
    ]
