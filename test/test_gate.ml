(* The perf regression gate (bench/gate): JSON extraction from
   dcs-bench-report output and the >tolerance verdicts that make
   @bench-smoke fail. *)

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool

(* A miniature dcs-bench-report, shaped exactly like report.ml's
   emission, including an embedded "before" report whose own
   microbench section must NOT shadow the outer one. *)
let report ~engine ~hlock =
  Printf.sprintf
    {|{
  "schema": "dcs-bench-report/1",
  "label": "test",
  "microbench_ns_per_run": {
    "dcs/engine 1k events": %f,
    "dcs/hlock round trip": %f,
    "dcs/only-after": 10.000000
  },
  "sweep_wall_clock_s": {
    "fig5_jobs1_s": 1.000000
  },
  "before": {
    "microbench_ns_per_run": {
      "dcs/engine 1k events": 99999.000000
    }
  }
}|}
    engine hlock

let test_extraction () =
  let micro = Gate.microbench_of_json (report ~engine:1000.0 ~hlock:250.5) in
  checki "three benches" 3 (List.length micro);
  checkb "first section wins, not the embedded before" true
    (List.assoc "dcs/engine 1k events" micro = 1000.0);
  checkb "fractional value" true (List.assoc "dcs/hlock round trip" micro = 250.5)

let test_extraction_missing_key () =
  Alcotest.check_raises "missing section"
    (Failure "gate: key \"microbench_ns_per_run\" not found") (fun () ->
      ignore (Gate.microbench_of_json "{}"))

let run_gate ?drift_correction ~tolerance ~before ~after () =
  Gate.regressions ?drift_correction ~tolerance
    ~before:(Gate.microbench_of_json before)
    ~after:(Gate.microbench_of_json after)
    ()

(* The acceptance scenario: a microbench regressing more than 15% must
   produce a verdict (which makes report.exe exit 1); within-tolerance
   drift must not. *)
let test_gate_fails_on_regression () =
  let before = report ~engine:1000.0 ~hlock:200.0 in
  (* engine +16%: out of tolerance; hlock +10%: within. *)
  let after = report ~engine:1160.0 ~hlock:220.0 in
  match run_gate ~tolerance:0.15 ~before ~after () with
  | [ v ] ->
      checkb "the regressed bench" true (v.Gate.name = "dcs/engine 1k events");
      checkb "ratio" true (Float.abs (v.Gate.ratio -. 1.16) < 1e-9);
      checkb "before carried" true (v.Gate.before = 1000.0);
      checkb "after carried" true (v.Gate.after = 1160.0)
  | vs -> Alcotest.failf "expected exactly one verdict, got %d" (List.length vs)

let test_gate_passes_within_tolerance () =
  let before = report ~engine:1000.0 ~hlock:200.0 in
  let after = report ~engine:1140.0 ~hlock:229.0 in
  (* +14% and +14.5%: both inside the 15% budget. *)
  checki "no verdicts" 0 (List.length (run_gate ~tolerance:0.15 ~before ~after ()));
  (* Improvements never fail the gate. *)
  let faster = report ~engine:500.0 ~hlock:100.0 in
  checki "improvements pass" 0 (List.length (run_gate ~tolerance:0.15 ~before ~after:faster ()))

let test_gate_ignores_one_sided_benches () =
  (* "dcs/only-after" has no baseline entry when the before report lacks
     it: additions and retirements are not regressions. *)
  let before =
    {|{"microbench_ns_per_run": {"dcs/engine 1k events": 100.0}}|}
  in
  let after = report ~engine:100.0 ~hlock:1.0 in
  checki "new benches ignored" 0 (List.length (run_gate ~tolerance:0.15 ~before ~after ()))

(* Median drift correction: a uniform machine slowdown is forgiven, a
   regression confined to one bench is still caught, and the median is
   clamped so a faster machine never manufactures a verdict. *)
let test_gate_drift_correction () =
  let before = {|{"microbench_ns_per_run": {"a": 100.0, "b": 100.0, "c": 100.0, "d": 100.0, "e": 100.0}}|} in
  (* Whole suite +40% (container drift), nothing individually worse. *)
  let drifted = {|{"microbench_ns_per_run": {"a": 140.0, "b": 138.0, "c": 142.0, "d": 140.0, "e": 141.0}}|} in
  checki "uniform drift forgiven" 0
    (List.length (run_gate ~drift_correction:true ~tolerance:0.15 ~before ~after:drifted ()));
  checki "without correction the same run fails" 5
    (List.length (run_gate ~tolerance:0.15 ~before ~after:drifted ()));
  (* Same drift, but one bench genuinely doubled: only it is flagged,
     and its ratio is reported net of the drift. *)
  let regressed = {|{"microbench_ns_per_run": {"a": 140.0, "b": 138.0, "c": 142.0, "d": 140.0, "e": 280.0}}|} in
  (match run_gate ~drift_correction:true ~tolerance:0.15 ~before ~after:regressed () with
  | [ v ] ->
      checkb "the real regression" true (v.Gate.name = "e");
      checkb "ratio net of drift" true (Float.abs (v.Gate.ratio -. (2.8 /. 1.4)) < 1e-9)
  | vs -> Alcotest.failf "expected exactly one verdict, got %d" (List.length vs));
  (* Machine got faster overall: the median is clamped at 1.0, so a
     within-tolerance bench is not amplified into a verdict. *)
  let faster = {|{"microbench_ns_per_run": {"a": 50.0, "b": 50.0, "c": 50.0, "d": 50.0, "e": 110.0}}|} in
  checki "clamped median never amplifies" 0
    (List.length (run_gate ~drift_correction:true ~tolerance:0.15 ~before ~after:faster ()))

let test_gate_orders_worst_first () =
  let before = {|{"microbench_ns_per_run": {"a": 100.0, "b": 100.0}}|} in
  let after = {|{"microbench_ns_per_run": {"a": 150.0, "b": 200.0}}|} in
  match run_gate ~tolerance:0.15 ~before ~after () with
  | [ first; second ] ->
      checkb "worst regression first" true (first.Gate.name = "b");
      checkb "then the next" true (second.Gate.name = "a")
  | vs -> Alcotest.failf "expected two verdicts, got %d" (List.length vs)

let () =
  Alcotest.run "dcs_bench_gate"
    [
      ( "gate",
        [
          Alcotest.test_case "json extraction" `Quick test_extraction;
          Alcotest.test_case "missing key" `Quick test_extraction_missing_key;
          Alcotest.test_case "fails on >15% regression" `Quick test_gate_fails_on_regression;
          Alcotest.test_case "passes within tolerance" `Quick test_gate_passes_within_tolerance;
          Alcotest.test_case "one-sided benches ignored" `Quick test_gate_ignores_one_sided_benches;
          Alcotest.test_case "median drift correction" `Quick test_gate_drift_correction;
          Alcotest.test_case "worst first" `Quick test_gate_orders_worst_first;
        ] );
    ]
