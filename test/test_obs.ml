(* Telemetry tests: Counters.diff / pp ordering, the Recorder's span and
   metric accounting, JSONL round-tripping, and an end-to-end crosscheck
   of recorder message counts against the transport's Counters. *)

open Dcs_modes
module Msg_class = Dcs_proto.Msg_class
module Counters = Dcs_proto.Counters
module Event = Dcs_obs.Event
module Recorder = Dcs_obs.Recorder
module Jsonl = Dcs_obs.Jsonl

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* {1 Counters satellite} *)

let test_counters_diff () =
  let before = Counters.create () and now = Counters.create () in
  Counters.incr before Msg_class.Request;
  List.iter
    (fun c -> Counters.incr now c)
    [ Msg_class.Request; Request; Request; Copy_grant; Ack ];
  let d = Counters.diff now before in
  Alcotest.check
    Alcotest.(list int)
    "per-class delta in Msg_class.all order"
    [ 2; 1; 0; 0; 0; 1; 0 ]
    (List.map snd d);
  Alcotest.check Alcotest.bool "classes in canonical order" true
    (List.map fst d = Msg_class.all)

let test_counters_pp_ordering () =
  let c = Counters.create () in
  (* Fill in reverse canonical order: pp must still render in
     Msg_class.all order, not insertion order. *)
  List.iter (Counters.incr c) (List.rev Msg_class.all);
  let rendered = Format.asprintf "%a" Counters.pp c in
  let positions =
    List.map
      (fun cls ->
        let name = Msg_class.to_string cls ^ "=" in
        let nh = String.length rendered and nn = String.length name in
        let rec go i =
          if i + nn > nh then Alcotest.failf "%s missing from %S" name rendered
          else if String.sub rendered i nn = name then i
          else go (i + 1)
        in
        go 0)
      Msg_class.all
  in
  checkb "pp renders classes in Msg_class.all order" true
    (List.sort compare positions = positions)

(* {1 Recorder} *)

let ev r ~time ~node ~requester ~seq kind =
  Recorder.record r ~time ~lock:0 ~node ~requester ~seq kind

(* One local grant (1 hop), one token grant (0 hops, then upgraded), and
   a freeze episode — exercises every accounting path. *)
let populate r =
  ev r ~time:0.0 ~node:1 ~requester:1 ~seq:0 (Event.Requested { mode = Mode.R; priority = 0 });
  ev r ~time:1.0 ~node:1 ~requester:1 ~seq:0 (Event.Forwarded { dst = 0 });
  ev r ~time:2.0 ~node:0 ~requester:1 ~seq:0 Event.Queued;
  ev r ~time:5.0 ~node:1 ~requester:1 ~seq:0 (Event.Granted_local { mode = Mode.R; hops = 1 });
  ev r ~time:6.0 ~node:2 ~requester:2 ~seq:0 (Event.Requested { mode = Mode.IW; priority = 1 });
  ev r ~time:9.0 ~node:2 ~requester:2 ~seq:0 (Event.Granted_token { mode = Mode.IW; hops = 0 });
  ev r ~time:10.0 ~node:2 ~requester:2 ~seq:0 (Event.Requested { mode = Mode.W; priority = 0 });
  ev r ~time:14.0 ~node:2 ~requester:2 ~seq:0 Event.Upgraded;
  ev r ~time:15.0 ~node:1 ~requester:1 ~seq:0 (Event.Released { mode = Mode.R });
  ev r ~time:3.0 ~node:0 ~requester:(-1) ~seq:(-1)
    (Event.Frozen (Mode_set.of_list [ Mode.IR; Mode.R ]));
  ev r ~time:8.0 ~node:0 ~requester:(-1) ~seq:(-1)
    (Event.Unfrozen (Mode_set.of_list [ Mode.IR; Mode.R ]));
  Recorder.message r ~cls:Msg_class.Request ~bytes:40;
  Recorder.message r ~cls:Msg_class.Request ~bytes:2;
  Recorder.message r ~cls:Msg_class.Token_transfer ~bytes:25;
  Recorder.gauge r ~time:1.0 ~name:"queue_depth" ~value:3.0;
  Recorder.gauge r ~time:2.0 ~name:"queue_depth" ~value:5.0

let test_recorder_accounting () =
  let r = Recorder.create ~enabled:true () in
  populate r;
  checki "events retained" 11 (Recorder.event_count r);
  checki "spans requested" 3 (Recorder.requested r);
  checki "spans completed" 3 (Recorder.completed r);
  checki "no open spans" 0 (Recorder.open_spans r);
  let g = Recorder.grants r in
  checki "local grants" 1 g.Recorder.local;
  checki "token grants" 1 g.Recorder.token;
  checki "upgrades" 1 g.Recorder.upgrades;
  Alcotest.check
    Alcotest.(list (pair int int))
    "local hop distribution" [ (1, 1) ]
    (Recorder.hop_distribution r `Local);
  Alcotest.check
    Alcotest.(list (pair int int))
    "token hop distribution" [ (0, 1) ]
    (Recorder.hop_distribution r `Token);
  checki "request msgs" 2
    (List.assoc Msg_class.Request (Recorder.msg_counts r));
  checki "request bytes" 42
    (List.assoc Msg_class.Request (Recorder.msg_bytes r));
  checki "no grant msgs" 0
    (List.assoc Msg_class.Copy_grant (Recorder.msg_counts r));
  let fr = Recorder.freeze_durations r in
  checki "one freeze episode" 1 (Dcs_stats.Summary.count fr);
  checkb "freeze duration 5ms" true (abs_float (Dcs_stats.Summary.mean fr -. 5.0) < 1e-9);
  checki "no open freezes" 0 (Recorder.open_freezes r);
  let stats = Recorder.mode_stats r in
  let find m = List.find (fun s -> Mode.equal s.Recorder.mode m) stats in
  checki "R count" 1 (find Mode.R).Recorder.count;
  checki "W count (upgrade closes as W)" 1 (find Mode.W).Recorder.count;
  checkb "R mean latency 5ms" true
    (abs_float ((find Mode.R).Recorder.mean_ms -. 5.0) < 1e-9)

let test_recorder_disabled () =
  let r = Recorder.create ~enabled:false () in
  populate r;
  checki "no events" 0 (Recorder.event_count r);
  checki "no spans" 0 (Recorder.requested r);
  checki "no messages" 0 (List.assoc Msg_class.Request (Recorder.msg_counts r));
  checkb "reports disabled" false (Recorder.enabled r)

let test_recorder_metrics_only () =
  let r = Recorder.create ~events:false ~enabled:true () in
  populate r;
  checki "event log off" 0 (List.length (Recorder.events r));
  checki "metrics still counted" 3 (Recorder.completed r);
  checki "messages still counted" 2
    (List.assoc Msg_class.Request (Recorder.msg_counts r))

(* {1 JSONL round-trip} *)

let test_jsonl_roundtrip () =
  let r = Recorder.create ~enabled:true () in
  populate r;
  let counters = [ (Msg_class.Request, 2); (Msg_class.Token_transfer, 1) ] in
  let path = Filename.temp_file "dcs_obs_test" ".jsonl" in
  let oc = open_out path in
  Jsonl.write oc ~meta:[ ("nodes", "3"); ("driver", "test") ] ~counters r;
  close_out oc;
  let lines =
    match Jsonl.read_file path with
    | Ok ls -> ls
    | Error e -> Alcotest.failf "read_file: %s" e
  in
  Sys.remove path;
  (match lines with
  | Jsonl.Meta m :: _ ->
      Alcotest.check
        Alcotest.(option string)
        "schema first" (Some Jsonl.schema) (List.assoc_opt "schema" m);
      Alcotest.check Alcotest.(option string) "meta kept" (Some "3") (List.assoc_opt "nodes" m)
  | _ -> Alcotest.fail "first line is not meta");
  let parsed = List.filter_map (function Jsonl.Ev e -> Some e | _ -> None) lines in
  let original = Recorder.events r in
  checki "event count survives" (List.length original) (List.length parsed);
  List.iter2
    (fun (a : Event.t) (b : Event.t) ->
      checkb "event round-trips" true
        (a.lock = b.lock && a.node = b.node && a.requester = b.requester && a.seq = b.seq
        && abs_float (a.time -. b.time) < 1e-6
        && a.kind = b.kind))
    original parsed;
  let span_set evs =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : Event.t) ->
           if Event.is_node_event e.kind then None else Some (e.lock, e.requester, e.seq))
         evs)
  in
  checkb "identical span set" true (span_set original = span_set parsed);
  (match List.find_map (function Jsonl.Counters c -> Some c | _ -> None) lines with
  | None -> Alcotest.fail "counters line missing"
  | Some cs ->
      checki "counters request" 2 (List.assoc Msg_class.Request cs);
      checki "counters token" 1 (List.assoc Msg_class.Token_transfer cs));
  let msgs_lines = List.filter (function Jsonl.Msgs _ -> true | _ -> false) lines in
  checki "one msgs line per class" (List.length Msg_class.all) (List.length msgs_lines)

let test_jsonl_rejects_garbage () =
  checkb "bad json" true (Result.is_error (Jsonl.parse_line "{\"k\":"));
  checkb "unknown kind" true (Result.is_error (Jsonl.parse_line "{\"k\":\"nope\"}"));
  checkb "trailing junk" true (Result.is_error (Jsonl.parse_line "{\"k\":\"meta\"} extra"))

(* Robustness: every corrupt file shape must come back as [Error _] from
   [read_file] — never an exception — with the offending line number. *)
let with_file lines f =
  let path = Filename.temp_file "dcs_obs_robust" ".jsonl" in
  let oc = open_out path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let meta_line = Printf.sprintf "{\"k\":\"meta\",\"schema\":\"%s\",\"nodes\":\"2\"}" Jsonl.schema
let ev_line =
  "{\"k\":\"ev\",\"t\":1.5,\"lock\":0,\"node\":1,\"req\":1,\"seq\":0,\"ev\":\"queued\",\
   \"mode\":\"\",\"arg\":0,\"set\":\"\"}"

let read_error lines =
  with_file lines (fun path ->
      match Jsonl.read_file path with
      | Ok _ -> Alcotest.fail "expected Error"
      | Error msg -> msg
      | exception e -> Alcotest.failf "raised %s instead of Error" (Printexc.to_string e))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_jsonl_robust_malformed_line () =
  let msg = read_error [ meta_line; ev_line; "{\"k\":\"ev\",\"t\":oops}" ] in
  checkb "names line 3" true (contains msg "line 3")

let test_jsonl_robust_unknown_schema () =
  let msg = read_error [ "{\"k\":\"meta\",\"schema\":\"dcs-obs/2\"}"; ev_line ] in
  checkb "mentions schema" true (contains msg "schema mismatch");
  let msg = read_error [ "{\"k\":\"meta\",\"nodes\":\"2\"}" ] in
  checkb "missing schema rejected" true (contains msg "schema mismatch")

let test_jsonl_robust_partial_trailing () =
  (* A crash mid-write leaves a truncated last record. *)
  let partial = String.sub ev_line 0 (String.length ev_line / 2) in
  let msg = read_error [ meta_line; ev_line; partial ] in
  checkb "names line 3" true (contains msg "line 3")

let test_jsonl_robust_field_errors () =
  (* Structurally valid JSON, semantically broken records. *)
  List.iter
    (fun broken ->
      let msg = read_error [ meta_line; broken ] in
      checkb ("line 2 error for " ^ broken) true (contains msg "line 2"))
    [
      "{\"k\":\"ev\",\"t\":1.0}" (* missing fields *);
      "{\"k\":\"ev\",\"t\":1.0,\"lock\":0,\"node\":1,\"req\":1,\"seq\":0,\"ev\":\"warped\",\
       \"mode\":\"\",\"arg\":0,\"set\":\"\"}" (* unknown event kind *);
      "{\"k\":\"ev\",\"t\":1.0,\"lock\":0,\"node\":1,\"req\":1,\"seq\":0,\"ev\":\"released\",\
       \"mode\":\"Q\",\"arg\":0,\"set\":\"\"}" (* unknown mode *);
      "{\"k\":\"msgs\",\"cls\":\"carrier-pigeon\",\"count\":1,\"bytes\":2}" (* unknown class *);
      "{\"k\":\"gauge\",\"t\":1.0,\"name\":\"q\",\"value\":\"high\"}" (* wrong type *);
    ]

let test_jsonl_robust_not_meta_first () =
  let msg = read_error [ ev_line ] in
  checkb "wants meta first" true (contains msg "meta");
  match Jsonl.read_file "/nonexistent/dcs-obs-test.jsonl" with
  | Ok _ -> Alcotest.fail "expected Error for missing file"
  | Error _ -> ()
  | exception e -> Alcotest.failf "raised %s for missing file" (Printexc.to_string e)

(* {1 End-to-end: recorder counts match the transport Counters} *)

let test_traced_run_crosschecks () =
  let module Experiment = Dcs_runtime.Experiment in
  let recorder = Recorder.create ~enabled:true () in
  let workload =
    { Dcs_workload.Airline.default_config with Dcs_workload.Airline.ops_per_node = 8 }
  in
  let result =
    Dcs_runtime.Figures.traced_cell ~workload ~recorder
      ~driver:Experiment.Hierarchical ~nodes:8 ()
  in
  checkb "spans completed" true (Recorder.completed recorder > 0);
  checki "all spans closed" 0 (Recorder.open_spans recorder);
  List.iter
    (fun (cls, n) ->
      checki
        (Printf.sprintf "class %s matches transport" (Msg_class.to_string cls))
        n
        (List.assoc cls (Recorder.msg_counts recorder)))
    result.Experiment.messages;
  (* Naimi spans close too (exclusive locks recorded as mode W). *)
  let nrec = Recorder.create ~enabled:true () in
  let nres =
    Dcs_runtime.Figures.traced_cell ~workload ~recorder:nrec
      ~driver:Experiment.Naimi_pure ~nodes:8 ()
  in
  checkb "naimi spans completed" true (Recorder.completed nrec > 0);
  List.iter
    (fun (cls, n) ->
      checki
        (Printf.sprintf "naimi class %s matches" (Msg_class.to_string cls))
        n
        (List.assoc cls (Recorder.msg_counts nrec)))
    nres.Experiment.messages

let () =
  Alcotest.run "dcs_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "diff" `Quick test_counters_diff;
          Alcotest.test_case "pp ordering" `Quick test_counters_pp_ordering;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "accounting" `Quick test_recorder_accounting;
          Alcotest.test_case "disabled records nothing" `Quick test_recorder_disabled;
          Alcotest.test_case "metrics-only" `Quick test_recorder_metrics_only;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
          Alcotest.test_case "malformed line" `Quick test_jsonl_robust_malformed_line;
          Alcotest.test_case "unknown schema" `Quick test_jsonl_robust_unknown_schema;
          Alcotest.test_case "partial trailing record" `Quick test_jsonl_robust_partial_trailing;
          Alcotest.test_case "field errors" `Quick test_jsonl_robust_field_errors;
          Alcotest.test_case "meta first + missing file" `Quick test_jsonl_robust_not_meta_first;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "recorder vs counters" `Quick test_traced_run_crosschecks ] );
    ]
