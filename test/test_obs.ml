(* Telemetry tests: Counters.diff / pp ordering, the Recorder's span and
   metric accounting, JSONL round-tripping (v2 and legacy v1), the
   Metrics registry and Clock sources, multi-shard merge with causal
   clock alignment and critical-path classification, and an end-to-end
   crosscheck of recorder message counts against the transport's
   Counters. *)

open Dcs_modes
module Msg_class = Dcs_proto.Msg_class
module Counters = Dcs_proto.Counters
module Event = Dcs_obs.Event
module Recorder = Dcs_obs.Recorder
module Jsonl = Dcs_obs.Jsonl
module Metrics = Dcs_obs.Metrics
module Clock = Dcs_obs.Clock
module Shard = Dcs_obs.Shard
module Merge = Dcs_obs.Merge

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-6)

(* {1 Counters satellite} *)

let test_counters_diff () =
  let before = Counters.create () and now = Counters.create () in
  Counters.incr before Msg_class.Request;
  List.iter
    (fun c -> Counters.incr now c)
    [ Msg_class.Request; Request; Request; Copy_grant; Ack ];
  let d = Counters.diff now before in
  Alcotest.check
    Alcotest.(list int)
    "per-class delta in Msg_class.all order"
    [ 2; 1; 0; 0; 0; 1; 0 ]
    (List.map snd d);
  Alcotest.check Alcotest.bool "classes in canonical order" true
    (List.map fst d = Msg_class.all)

let test_counters_pp_ordering () =
  let c = Counters.create () in
  (* Fill in reverse canonical order: pp must still render in
     Msg_class.all order, not insertion order. *)
  List.iter (Counters.incr c) (List.rev Msg_class.all);
  let rendered = Format.asprintf "%a" Counters.pp c in
  let positions =
    List.map
      (fun cls ->
        let name = Msg_class.to_string cls ^ "=" in
        let nh = String.length rendered and nn = String.length name in
        let rec go i =
          if i + nn > nh then Alcotest.failf "%s missing from %S" name rendered
          else if String.sub rendered i nn = name then i
          else go (i + 1)
        in
        go 0)
      Msg_class.all
  in
  checkb "pp renders classes in Msg_class.all order" true
    (List.sort compare positions = positions)

(* {1 Recorder} *)

let ev r ~time ~node ~requester ~seq kind =
  Recorder.record r ~time ~lock:0 ~node (Event.Span { requester; seq }) kind

let node_ev r ~time ~node kind = Recorder.record r ~time ~lock:0 ~node Event.Node kind

(* One local grant (1 hop), one token grant (0 hops, then upgraded), and
   a freeze episode — exercises every accounting path. *)
let populate r =
  ev r ~time:0.0 ~node:1 ~requester:1 ~seq:0 (Event.Requested { mode = Mode.R; priority = 0 });
  ev r ~time:1.0 ~node:1 ~requester:1 ~seq:0 (Event.Forwarded { dst = 0 });
  ev r ~time:2.0 ~node:0 ~requester:1 ~seq:0 Event.Queued;
  ev r ~time:5.0 ~node:1 ~requester:1 ~seq:0 (Event.Granted_local { mode = Mode.R; hops = 1 });
  ev r ~time:6.0 ~node:2 ~requester:2 ~seq:0 (Event.Requested { mode = Mode.IW; priority = 1 });
  ev r ~time:9.0 ~node:2 ~requester:2 ~seq:0 (Event.Granted_token { mode = Mode.IW; hops = 0 });
  ev r ~time:10.0 ~node:2 ~requester:2 ~seq:0 (Event.Requested { mode = Mode.W; priority = 0 });
  ev r ~time:14.0 ~node:2 ~requester:2 ~seq:0 Event.Upgraded;
  ev r ~time:15.0 ~node:1 ~requester:1 ~seq:0 (Event.Released { mode = Mode.R });
  node_ev r ~time:3.0 ~node:0 (Event.Frozen (Mode_set.of_list [ Mode.IR; Mode.R ]));
  node_ev r ~time:8.0 ~node:0 (Event.Unfrozen (Mode_set.of_list [ Mode.IR; Mode.R ]));
  Recorder.message r ~cls:Msg_class.Request ~bytes:40;
  Recorder.message r ~cls:Msg_class.Request ~bytes:2;
  Recorder.message r ~cls:Msg_class.Token_transfer ~bytes:25;
  Recorder.gauge r ~time:1.0 ~name:"queue_depth" ~value:3.0;
  Recorder.gauge r ~time:2.0 ~name:"queue_depth" ~value:5.0

let test_recorder_accounting () =
  let r = Recorder.create ~enabled:true () in
  populate r;
  checki "events retained" 11 (Recorder.event_count r);
  checki "spans requested" 3 (Recorder.requested r);
  checki "spans completed" 3 (Recorder.completed r);
  checki "no open spans" 0 (Recorder.open_spans r);
  let g = Recorder.grants r in
  checki "local grants" 1 g.Recorder.local;
  checki "token grants" 1 g.Recorder.token;
  checki "upgrades" 1 g.Recorder.upgrades;
  Alcotest.check
    Alcotest.(list (pair int int))
    "local hop distribution" [ (1, 1) ]
    (Recorder.hop_distribution r `Local);
  Alcotest.check
    Alcotest.(list (pair int int))
    "token hop distribution" [ (0, 1) ]
    (Recorder.hop_distribution r `Token);
  checki "request msgs" 2
    (List.assoc Msg_class.Request (Recorder.msg_counts r));
  checki "request bytes" 42
    (List.assoc Msg_class.Request (Recorder.msg_bytes r));
  checki "no grant msgs" 0
    (List.assoc Msg_class.Copy_grant (Recorder.msg_counts r));
  let fr = Recorder.freeze_durations r in
  checki "one freeze episode" 1 (Dcs_stats.Summary.count fr);
  checkb "freeze duration 5ms" true (abs_float (Dcs_stats.Summary.mean fr -. 5.0) < 1e-9);
  checki "no open freezes" 0 (Recorder.open_freezes r);
  let stats = Recorder.mode_stats r in
  let find m = List.find (fun s -> Mode.equal s.Recorder.mode m) stats in
  checki "R count" 1 (find Mode.R).Recorder.count;
  checki "W count (upgrade closes as W)" 1 (find Mode.W).Recorder.count;
  checkb "R mean latency 5ms" true
    (abs_float ((find Mode.R).Recorder.mean_ms -. 5.0) < 1e-9)

let test_recorder_disabled () =
  let r = Recorder.create ~enabled:false () in
  populate r;
  checki "no events" 0 (Recorder.event_count r);
  checki "no spans" 0 (Recorder.requested r);
  checki "no messages" 0 (List.assoc Msg_class.Request (Recorder.msg_counts r));
  checkb "reports disabled" false (Recorder.enabled r)

let test_recorder_metrics_only () =
  let r = Recorder.create ~events:false ~enabled:true () in
  populate r;
  checki "event log off" 0 (List.length (Recorder.events r));
  checki "metrics still counted" 3 (Recorder.completed r);
  checki "messages still counted" 2
    (List.assoc Msg_class.Request (Recorder.msg_counts r))

(* {1 JSONL round-trip} *)

let test_jsonl_roundtrip () =
  let r = Recorder.create ~enabled:true () in
  populate r;
  let counters = [ (Msg_class.Request, 2); (Msg_class.Token_transfer, 1) ] in
  let path = Filename.temp_file "dcs_obs_test" ".jsonl" in
  let oc = open_out path in
  Jsonl.write oc ~meta:[ ("nodes", "3"); ("driver", "test") ] ~counters r;
  close_out oc;
  let lines =
    match Jsonl.read_file path with
    | Ok ls -> ls
    | Error e -> Alcotest.failf "read_file: %s" e
  in
  Sys.remove path;
  (match lines with
  | Jsonl.Meta m :: _ ->
      Alcotest.check
        Alcotest.(option string)
        "schema first" (Some Jsonl.schema) (List.assoc_opt "schema" m);
      Alcotest.check Alcotest.(option string) "meta kept" (Some "3") (List.assoc_opt "nodes" m)
  | _ -> Alcotest.fail "first line is not meta");
  let parsed = List.filter_map (function Jsonl.Ev e -> Some e | _ -> None) lines in
  let original = Recorder.events r in
  checki "event count survives" (List.length original) (List.length parsed);
  List.iter2
    (fun (a : Event.t) (b : Event.t) ->
      checkb "event round-trips" true
        (a.lock = b.lock && a.node = b.node && a.scope = b.scope
        && abs_float (a.time -. b.time) < 1e-6
        && a.kind = b.kind))
    original parsed;
  let span_set evs =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : Event.t) ->
           match e.Event.scope with
           | Event.Node -> None
           | Event.Span { requester; seq } -> Some (e.lock, requester, seq))
         evs)
  in
  checkb "identical span set" true (span_set original = span_set parsed);
  (match List.find_map (function Jsonl.Counters c -> Some c | _ -> None) lines with
  | None -> Alcotest.fail "counters line missing"
  | Some cs ->
      checki "counters request" 2 (List.assoc Msg_class.Request cs);
      checki "counters token" 1 (List.assoc Msg_class.Token_transfer cs));
  let msgs_lines = List.filter (function Jsonl.Msgs _ -> true | _ -> false) lines in
  checki "one msgs line per class" (List.length Msg_class.all) (List.length msgs_lines)

let test_jsonl_rejects_garbage () =
  checkb "bad json" true (Result.is_error (Jsonl.parse_line "{\"k\":"));
  checkb "unknown kind" true (Result.is_error (Jsonl.parse_line "{\"k\":\"nope\"}"));
  checkb "trailing junk" true (Result.is_error (Jsonl.parse_line "{\"k\":\"meta\"} extra"))

(* Robustness: every corrupt file shape must come back as [Error _] from
   [read_file] — never an exception — with the offending line number. *)
let with_file lines f =
  let path = Filename.temp_file "dcs_obs_robust" ".jsonl" in
  let oc = open_out path in
  List.iter (fun l -> output_string oc l; output_char oc '\n') lines;
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let meta_line = Printf.sprintf "{\"k\":\"meta\",\"schema\":\"%s\",\"nodes\":\"2\"}" Jsonl.schema
let ev_line =
  "{\"k\":\"ev\",\"t\":1.5,\"lock\":0,\"node\":1,\"req\":1,\"seq\":0,\"ev\":\"queued\",\
   \"mode\":\"\",\"arg\":0,\"set\":\"\"}"

let read_error lines =
  with_file lines (fun path ->
      match Jsonl.read_file path with
      | Ok _ -> Alcotest.fail "expected Error"
      | Error msg -> msg
      | exception e -> Alcotest.failf "raised %s instead of Error" (Printexc.to_string e))

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_jsonl_robust_malformed_line () =
  let msg = read_error [ meta_line; ev_line; "{\"k\":\"ev\",\"t\":oops}" ] in
  checkb "names line 3" true (contains msg "line 3")

let test_jsonl_robust_unknown_schema () =
  let msg = read_error [ "{\"k\":\"meta\",\"schema\":\"dcs-obs/99\"}"; ev_line ] in
  checkb "mentions schema" true (contains msg "schema mismatch");
  let msg = read_error [ "{\"k\":\"meta\",\"nodes\":\"2\"}" ] in
  checkb "missing schema rejected" true (contains msg "schema mismatch")

let test_jsonl_robust_partial_trailing () =
  (* A crash mid-write leaves a truncated last record. *)
  let partial = String.sub ev_line 0 (String.length ev_line / 2) in
  let msg = read_error [ meta_line; ev_line; partial ] in
  checkb "names line 3" true (contains msg "line 3")

let test_jsonl_robust_field_errors () =
  (* Structurally valid JSON, semantically broken records. *)
  List.iter
    (fun broken ->
      let msg = read_error [ meta_line; broken ] in
      checkb ("line 2 error for " ^ broken) true (contains msg "line 2"))
    [
      "{\"k\":\"ev\",\"t\":1.0}" (* missing fields *);
      "{\"k\":\"ev\",\"t\":1.0,\"lock\":0,\"node\":1,\"req\":1,\"seq\":0,\"ev\":\"warped\",\
       \"mode\":\"\",\"arg\":0,\"set\":\"\"}" (* unknown event kind *);
      "{\"k\":\"ev\",\"t\":1.0,\"lock\":0,\"node\":1,\"req\":1,\"seq\":0,\"ev\":\"released\",\
       \"mode\":\"Q\",\"arg\":0,\"set\":\"\"}" (* unknown mode *);
      "{\"k\":\"msgs\",\"cls\":\"carrier-pigeon\",\"count\":1,\"bytes\":2}" (* unknown class *);
      "{\"k\":\"gauge\",\"t\":1.0,\"name\":\"q\",\"value\":\"high\"}" (* wrong type *);
    ]

let test_jsonl_robust_not_meta_first () =
  let msg = read_error [ ev_line ] in
  checkb "wants meta first" true (contains msg "meta");
  match Jsonl.read_file "/nonexistent/dcs-obs-test.jsonl" with
  | Ok _ -> Alcotest.fail "expected Error for missing file"
  | Error _ -> ()
  | exception e -> Alcotest.failf "raised %s for missing file" (Printexc.to_string e)

(* {1 Schema v1 compatibility and v2 node events} *)

let test_jsonl_v1_compat () =
  (* A legacy dcs-obs/1 file: no scope field, req = seq = -1 marks node
     events. The parser must keep reading it. *)
  let v1_meta = Printf.sprintf "{\"k\":\"meta\",\"schema\":\"%s\",\"nodes\":\"2\"}" Jsonl.schema_v1 in
  let v1_span =
    "{\"k\":\"ev\",\"t\":1.0,\"lock\":0,\"node\":1,\"req\":1,\"seq\":4,\"ev\":\"queued\",\
     \"mode\":\"\",\"arg\":0,\"set\":\"\"}"
  in
  let v1_node =
    "{\"k\":\"ev\",\"t\":2.0,\"lock\":0,\"node\":1,\"req\":-1,\"seq\":-1,\"ev\":\"frozen\",\
     \"mode\":\"\",\"arg\":0,\"set\":\"IR+R\"}"
  in
  with_file [ v1_meta; v1_span; v1_node ] (fun path ->
      match Jsonl.read_file path with
      | Error e -> Alcotest.failf "v1 file rejected: %s" e
      | Ok [ Jsonl.Meta _; Jsonl.Ev span; Jsonl.Ev node ] ->
          checkb "v1 span decoded" true
            (span.Event.scope = Event.Span { requester = 1; seq = 4 });
          checkb "v1 sentinel decodes to Node scope" true (node.Event.scope = Event.Node);
          checkb "frozen set survives" true
            (node.Event.kind = Event.Frozen (Mode_set.of_list [ Mode.IR; Mode.R ]))
      | Ok _ -> Alcotest.fail "unexpected line shapes")

let test_jsonl_v2_node_event () =
  (* v2 writes an explicit scope discriminator: node lines say so and
     carry no req/seq; span lines carry both. *)
  let r = Recorder.create ~enabled:true () in
  node_ev r ~time:1.0 ~node:3 (Event.Frozen (Mode_set.of_list [ Mode.R ]));
  ev r ~time:2.0 ~node:3 ~requester:1 ~seq:0 (Event.Requested { mode = Mode.R; priority = 0 });
  let path = Filename.temp_file "dcs_obs_v2" ".jsonl" in
  let oc = open_out path in
  Jsonl.write oc ~meta:[] r;
  close_out oc;
  let raw =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic; Sys.remove path) @@ fun () ->
    let rec go acc = match input_line ic with
      | l -> go (l :: acc)
      | exception End_of_file -> List.rev acc
    in
    go []
  in
  let frozen_line = List.find (fun l -> contains l "frozen") raw in
  checkb "node line says scope:node" true (contains frozen_line "\"scope\":\"node\"");
  checkb "node line has no req field" false (contains frozen_line "\"req\":");
  let req_line = List.find (fun l -> contains l "requested") raw in
  checkb "span line says scope:span" true (contains req_line "\"scope\":\"span\"");
  checkb "span line keeps req" true (contains req_line "\"req\":1");
  (* And both round-trip through the parser. *)
  List.iter
    (fun l ->
      match Jsonl.parse_line l with
      | Ok _ -> ()
      | Error e -> Alcotest.failf "v2 line rejected: %s (%s)" e l)
    raw

(* {1 Metrics registry} *)

let test_metrics_registry () =
  let m = Metrics.create () in
  let c = Metrics.counter m "net.frames" in
  checkb "find-or-create returns the same handle" true (c == Metrics.counter m "net.frames");
  Metrics.incr c;
  Metrics.add c 4;
  checki "counter accumulates" 5 (Metrics.value c);
  Alcotest.check Alcotest.string "counter name" "net.frames" (Metrics.counter_name c);
  let g = Metrics.gauge m "net.depth" in
  Metrics.set g 7.5;
  checkf "gauge holds last value" 7.5 (Metrics.gauge_value g);
  Metrics.set g 2.0;
  checkf "gauge overwrites" 2.0 (Metrics.gauge_value g);
  let h = Metrics.histogram m "lat" in
  List.iter (Metrics.observe h) [ 1.0; 1.0; 1.0; 100.0 ];
  checkb "histogram p50 near the bulk" true (Metrics.quantile h 0.5 < 10.0);
  checkb "histogram p99 near the tail" true (Metrics.quantile h 0.99 > 50.0);
  let snap = Metrics.snapshot m in
  let names = List.map (fun (n, _, _) -> n) snap in
  checkb "snapshot sorted by name" true (List.sort compare names = names);
  checkb "histogram expands to count row" true (List.mem "lat.count" names);
  let find name = List.find (fun (n, _, _) -> n = name) snap in
  (match find "net.frames" with
  | _, `Counter, v -> checkf "counter row" 5.0 v
  | _ -> Alcotest.fail "net.frames not a counter row");
  match find "lat.count" with
  | _, `Counter, v -> checkf "histogram count row" 4.0 v
  | _ -> Alcotest.fail "lat.count not a counter row"

let test_clock_sources () =
  let w = Clock.wall () in
  let a = w () in
  let b = w () in
  checkb "wall clock non-decreasing" true (b >= a);
  checkb "wall clock is epoch ms" true (a > 1.0e12);
  let c, set = Clock.manual 100.0 in
  checkf "manual starts where told" 100.0 (c ());
  set 250.0;
  checkf "manual advances" 250.0 (c ());
  set 50.0;
  checkf "manual never regresses" 250.0 (c ());
  let sim = Clock.of_fun (fun () -> 42.0) in
  checkf "of_fun passes through" 42.0 (sim ())

(* {1 Multi-shard merge} *)

let in_temp_dir f =
  let dir = Filename.temp_file "dcs_obs_merge" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun n -> Sys.remove (Filename.concat dir n)) (Sys.readdir dir);
      Unix.rmdir dir)
    (fun () -> f dir)

(* Three shards, one process each, with clocks skewed +50 ms (node 1) and
   -50 ms (node 2) against node 0. Two spans cross shard boundaries on
   request/token edges with symmetric 2 ms true delays, so the causal
   aligner can recover the skews exactly. All times in true ms; each
   shard stamps [true + skew]. *)
let write_skewed_shards dir =
  let skews = [| 0.0; 50.0; -50.0 |] in
  let shards =
    Array.init 3 (fun i ->
        let clock, set = Clock.manual 0.0 in
        let sh =
          Shard.create
            ~path:(Filename.concat dir (Printf.sprintf "node-%d.jsonl" i))
            ~clock
            ~meta:[ ("node", string_of_int i); ("nodes", "3") ]
            ()
        in
        (sh, set))
  in
  let at i t = snd shards.(i) (t +. skews.(i)) in
  let evt i ~lock scope kind =
    Shard.event (fst shards.(i)) ~lock ~node:i scope kind
  in
  let span1 = Event.Span { requester = 1; seq = 0 } in
  let span2 = Event.Span { requester = 2; seq = 0 } in
  (* Span 1: node 1 requests lock 0, node 0 ships the token back.
     Span 2 overlaps it in true time: node 2 requests lock 1 via node 1.
     Each shard's manual clock only moves forward, so each shard's
     events are emitted in its own local-time order. *)
  at 1 1000.0; evt 1 ~lock:0 span1 (Event.Requested { mode = Mode.R; priority = 0 });
  at 1 1001.0; evt 1 ~lock:0 span1 (Event.Sent { cls = Msg_class.Request; dst = 0 });
  at 0 1003.0; evt 0 ~lock:0 span1 (Event.Received { cls = Msg_class.Request; src = 1 });
  at 0 1004.0; evt 0 ~lock:0 span1 (Event.Sent { cls = Msg_class.Token_transfer; dst = 1 });
  at 1 1005.0; evt 1 ~lock:1 span2 (Event.Received { cls = Msg_class.Request; src = 2 });
  at 1 1006.0; evt 1 ~lock:1 span2 (Event.Sent { cls = Msg_class.Token_transfer; dst = 2 });
  at 1 1006.0; evt 1 ~lock:0 span1 (Event.Received { cls = Msg_class.Token_transfer; src = 0 });
  at 1 1007.0; evt 1 ~lock:0 span1 (Event.Granted_token { mode = Mode.R; hops = 1 });
  at 2 1002.0; evt 2 ~lock:1 span2 (Event.Requested { mode = Mode.W; priority = 0 });
  at 2 1003.0; evt 2 ~lock:1 span2 (Event.Sent { cls = Msg_class.Request; dst = 1 });
  at 2 1008.0; evt 2 ~lock:1 span2 (Event.Received { cls = Msg_class.Token_transfer; src = 1 });
  at 2 1009.0; evt 2 ~lock:1 span2 (Event.Granted_token { mode = Mode.W; hops = 1 });
  Array.iter (fun (sh, _) -> Shard.close sh) shards;
  Array.to_list (Array.init 3 (fun i -> Filename.concat dir (Printf.sprintf "node-%d.jsonl" i)))

let test_merge_aligns_skewed_clocks () =
  in_temp_dir @@ fun dir ->
  let paths = write_skewed_shards dir in
  let shards, warnings =
    match Merge.load paths with
    | Ok x -> x
    | Error e -> Alcotest.failf "load: %s" e
  in
  checki "no warnings" 0 (List.length warnings);
  let offsets = Merge.align shards in
  let off n = Option.value ~default:nan (List.assoc_opt n offsets) in
  checkf "node 0 pinned" 0.0 (off 0);
  checkf "node 1 skew recovered" 50.0 (off 1);
  checkf "node 2 skew recovered" (-50.0) (off 2);
  let events = Merge.merged_events ~offsets shards in
  let ts = List.map (fun (e : Event.t) -> e.time) events in
  checkb "corrected times are sorted" true (List.sort compare ts = ts);
  let breakdowns, incomplete = Merge.critical_paths events in
  checki "both spans complete" 2 (List.length breakdowns);
  checki "nothing open" 0 incomplete;
  List.iter
    (fun (b : Merge.breakdown) ->
      checkb "span kind is token" true (b.Merge.b_kind = `Token);
      checkf "corrected span latency is the true 7 ms" 7.0 (b.Merge.b_finish -. b.Merge.b_start);
      (* 2 ms request hop (net) + 2 ms token hop (token) + 3 ms of local
         processing gaps; the buckets must sum to the whole wait. *)
      checkf "net bucket" 2.0 b.Merge.b_net_ms;
      checkf "token bucket" 2.0 b.Merge.b_token_ms;
      checkf "local bucket" 3.0 b.Merge.b_local_ms;
      checkf "buckets sum to total" 7.0 (Merge.total_wait b))
    breakdowns

let test_merge_truncated_shard () =
  in_temp_dir @@ fun dir ->
  let paths = write_skewed_shards dir in
  (* Chop the last shard mid-line, as a killed process would. *)
  let victim = List.nth paths 2 in
  let ic = open_in victim in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  let oc = open_out victim in
  output_string oc (String.sub data 0 (n - 7));
  close_out oc;
  let shards, warnings =
    match Merge.load paths with
    | Ok x -> x
    | Error e -> Alcotest.failf "truncated shard must load: %s" e
  in
  checki "one warning" 1 (List.length warnings);
  checkb "warning names the file" true (contains (List.hd warnings) victim);
  checkb "victim flagged truncated" true
    (List.exists (fun (s : Merge.shard) -> s.Merge.path = victim && s.truncated) shards);
  (* The surviving prefix still merges and still yields span 1. *)
  let breakdowns, _ = Merge.critical_paths (Merge.merged_events shards) in
  checkb "intact span survives" true
    (List.exists (fun (b : Merge.breakdown) -> b.Merge.b_requester = 1) breakdowns)

let test_merge_classifies_queue_and_freeze () =
  (* Single node, no clock games: request queued at t=1, node frozen over
     [2,5], granted at t=8. The 7 ms out of Queued must split 3 ms freeze
     / 4 ms queue, with the 1 ms before Queued charged to local. *)
  let span = Event.Span { requester = 0; seq = 0 } in
  let e time scope kind = { Event.time; lock = 0; node = 0; scope; kind } in
  let events =
    [
      e 0.0 span (Event.Requested { mode = Mode.R; priority = 0 });
      e 1.0 span Event.Queued;
      e 2.0 Event.Node (Event.Frozen (Mode_set.of_list [ Mode.R ]));
      e 5.0 Event.Node (Event.Unfrozen (Mode_set.of_list [ Mode.R ]));
      e 8.0 span (Event.Granted_local { mode = Mode.R; hops = 0 });
    ]
  in
  let breakdowns, incomplete = Merge.critical_paths events in
  checki "one span" 1 (List.length breakdowns);
  checki "none open" 0 incomplete;
  let b = List.hd breakdowns in
  checkf "local" 1.0 b.Merge.b_local_ms;
  checkf "queue" 4.0 b.Merge.b_queue_ms;
  checkf "freeze" 3.0 b.Merge.b_freeze_ms;
  checkf "no net" 0.0 b.Merge.b_net_ms;
  checkf "total" 8.0 (Merge.total_wait b)

(* {1 End-to-end: recorder counts match the transport Counters} *)

let test_traced_run_crosschecks () =
  let module Experiment = Dcs_runtime.Experiment in
  let recorder = Recorder.create ~enabled:true () in
  let workload =
    { Dcs_workload.Airline.default_config with Dcs_workload.Airline.ops_per_node = 8 }
  in
  let result =
    Dcs_runtime.Figures.traced_cell ~workload ~recorder
      ~driver:Experiment.Hierarchical ~nodes:8 ()
  in
  checkb "spans completed" true (Recorder.completed recorder > 0);
  checki "all spans closed" 0 (Recorder.open_spans recorder);
  List.iter
    (fun (cls, n) ->
      checki
        (Printf.sprintf "class %s matches transport" (Msg_class.to_string cls))
        n
        (List.assoc cls (Recorder.msg_counts recorder)))
    result.Experiment.messages;
  (* Naimi spans close too (exclusive locks recorded as mode W). *)
  let nrec = Recorder.create ~enabled:true () in
  let nres =
    Dcs_runtime.Figures.traced_cell ~workload ~recorder:nrec
      ~driver:Experiment.Naimi_pure ~nodes:8 ()
  in
  checkb "naimi spans completed" true (Recorder.completed nrec > 0);
  List.iter
    (fun (cls, n) ->
      checki
        (Printf.sprintf "naimi class %s matches" (Msg_class.to_string cls))
        n
        (List.assoc cls (Recorder.msg_counts nrec)))
    nres.Experiment.messages

let () =
  Alcotest.run "dcs_obs"
    [
      ( "counters",
        [
          Alcotest.test_case "diff" `Quick test_counters_diff;
          Alcotest.test_case "pp ordering" `Quick test_counters_pp_ordering;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "accounting" `Quick test_recorder_accounting;
          Alcotest.test_case "disabled records nothing" `Quick test_recorder_disabled;
          Alcotest.test_case "metrics-only" `Quick test_recorder_metrics_only;
        ] );
      ( "jsonl",
        [
          Alcotest.test_case "round-trip" `Quick test_jsonl_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_jsonl_rejects_garbage;
          Alcotest.test_case "malformed line" `Quick test_jsonl_robust_malformed_line;
          Alcotest.test_case "unknown schema" `Quick test_jsonl_robust_unknown_schema;
          Alcotest.test_case "partial trailing record" `Quick test_jsonl_robust_partial_trailing;
          Alcotest.test_case "field errors" `Quick test_jsonl_robust_field_errors;
          Alcotest.test_case "meta first + missing file" `Quick test_jsonl_robust_not_meta_first;
          Alcotest.test_case "v1 compatibility" `Quick test_jsonl_v1_compat;
          Alcotest.test_case "v2 node events" `Quick test_jsonl_v2_node_event;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "registry" `Quick test_metrics_registry;
          Alcotest.test_case "clock sources" `Quick test_clock_sources;
        ] );
      ( "merge",
        [
          Alcotest.test_case "aligns skewed clocks" `Quick test_merge_aligns_skewed_clocks;
          Alcotest.test_case "truncated shard warns" `Quick test_merge_truncated_shard;
          Alcotest.test_case "queue/freeze classification" `Quick
            test_merge_classifies_queue_and_freeze;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "recorder vs counters" `Quick test_traced_run_crosschecks ] );
    ]
