(* Fuzzer-infrastructure tests: the sequential reference oracle against
   the paper's tables, the trace-conformance checker on hand-built event
   traces, determinism of the fuzz driver, corpus round-trips, and the
   end-to-end promise that a seeded protocol mutation is caught and
   shrinks to a tiny repro. *)

open Dcs_modes
module Script = Dcs_check.Script
module Oracle = Dcs_check.Oracle
module Fuzz = Dcs_check.Fuzz
module Corpus = Dcs_check.Corpus
module Shrink = Dcs_check.Shrink
module Event = Dcs_obs.Event
module Seq = Oracle.Sequential

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let check_ids = Alcotest.check (Alcotest.list Alcotest.int)

(* {1 Sequential reference oracle} *)

let test_seq_readers_share () =
  let t = Seq.create ~locks:1 in
  check_ids "r1 granted" [ 1 ] (Seq.request t ~lock:0 ~id:1 ~mode:Mode.R ());
  check_ids "r2 granted" [ 2 ] (Seq.request t ~lock:0 ~id:2 ~mode:Mode.R ());
  check_ids "writer waits" [] (Seq.request t ~lock:0 ~id:3 ~mode:Mode.W ());
  check_ids "first release frees nothing" [] (Seq.release t ~lock:0 ~id:1);
  check_ids "last release grants writer" [ 3 ] (Seq.release t ~lock:0 ~id:2);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Testkit.mode))
    "writer holds W" [ (3, Mode.W) ] (Seq.granted t ~lock:0)

let test_seq_fifo_and_priority () =
  let t = Seq.create ~locks:1 in
  ignore (Seq.request t ~lock:0 ~id:1 ~mode:Mode.W ());
  check_ids "q2" [] (Seq.request t ~lock:0 ~id:2 ~mode:Mode.R ());
  check_ids "q3" [] (Seq.request t ~lock:0 ~id:3 ~mode:Mode.W ~priority:5 ());
  check_ids "waiting order by priority" [ 3; 2 ] (Seq.waiting t ~lock:0);
  (* Priority 5 outranks the older reader; strict FIFO within rank. *)
  check_ids "high-priority W first" [ 3 ] (Seq.release t ~lock:0 ~id:1);
  check_ids "then the reader" [ 2 ] (Seq.release t ~lock:0 ~id:3)

let test_seq_freeze_table () =
  (* Table 2(b): a waiting W freezes the grantable modes incompatible with
     it — the readers that could otherwise starve it. *)
  let t = Seq.create ~locks:1 in
  ignore (Seq.request t ~lock:0 ~id:1 ~mode:Mode.R ());
  checkb "nothing frozen while compatible" true
    (Mode_set.is_empty (Seq.frozen t ~lock:0));
  ignore (Seq.request t ~lock:0 ~id:2 ~mode:Mode.W ());
  let frozen = Seq.frozen t ~lock:0 in
  checkb "waiting W freezes R" true (Mode_set.mem Mode.R frozen);
  checkb "matches Compat.freeze_set" true
    (Mode_set.equal frozen (Compat.freeze_set ~owned:(Some Mode.R) Mode.W));
  ignore (Seq.release t ~lock:0 ~id:1);
  checkb "thaw once served" true (Mode_set.is_empty (Seq.frozen t ~lock:0))

let test_seq_upgrade_outranks () =
  let t = Seq.create ~locks:1 in
  check_ids "u granted" [ 1 ] (Seq.request t ~lock:0 ~id:1 ~mode:Mode.U ());
  check_ids "reader shares with U" [ 2 ] (Seq.request t ~lock:0 ~id:2 ~mode:Mode.R ());
  check_ids "upgrade waits for reader" [] (Seq.upgrade t ~lock:0 ~id:1);
  (* Rule 7: the pending upgrade outranks every queued request. *)
  check_ids "new reader blocked behind upgrade" []
    (Seq.request t ~lock:0 ~id:3 ~mode:Mode.R ());
  check_ids "release serves the upgrade first" [ 1 ] (Seq.release t ~lock:0 ~id:2);
  Alcotest.check
    (Alcotest.list (Alcotest.pair Alcotest.int Testkit.mode))
    "upgraded to W" [ (1, Mode.W) ] (Seq.granted t ~lock:0);
  check_ids "then the reader" [ 3 ] (Seq.release t ~lock:0 ~id:1)

(* {1 Trace conformance} *)

let ev ?(node = 0) ?(req = 0) ?(seq = 0) time kind =
  { Event.time; lock = 0; node; scope = Event.Span { requester = req; seq }; kind }

let span ?(req = 0) ?(seq = 0) ?(t0 = 0.0) mode =
  [
    ev ~req ~seq t0 (Event.Requested { mode; priority = 0 });
    ev ~req ~seq (t0 +. 1.0) (Event.Granted_local { mode; hops = 0 });
    ev ~req ~seq (t0 +. 2.0) (Event.Released { mode });
  ]

let conformance ?max_overtakes ?require_complete events =
  let events = List.sort (fun a b -> compare a.Event.time b.Event.time) events in
  Oracle.conformance ?max_overtakes ?require_complete ~events ()

let test_conf_clean_trace () =
  let r = conformance (span ~req:1 Mode.R @ span ~req:2 ~t0:10.0 Mode.W) in
  Alcotest.check (Alcotest.list Alcotest.string) "no violations" [] r.Oracle.violations;
  checki "spans" 2 r.Oracle.spans;
  checki "grants" 2 r.Oracle.grants;
  checki "releases" 2 r.Oracle.releases

let test_conf_incompatible_grants () =
  (* Two W grants open at once: the hard safety violation. *)
  let r =
    conformance
      [
        ev ~req:1 0.0 (Event.Requested { mode = Mode.W; priority = 0 });
        ev ~req:2 0.5 (Event.Requested { mode = Mode.W; priority = 0 });
        ev ~req:1 1.0 (Event.Granted_local { mode = Mode.W; hops = 0 });
        ev ~req:2 1.5 (Event.Granted_token { mode = Mode.W; hops = 1 });
        ev ~req:1 2.0 (Event.Released { mode = Mode.W });
        ev ~req:2 2.5 (Event.Released { mode = Mode.W });
      ]
  in
  checkb "incompatible grants rejected" false (r.Oracle.violations = [])

let test_conf_unrequested_grant () =
  let r =
    conformance
      [
        ev ~req:1 0.0 (Event.Granted_local { mode = Mode.R; hops = 0 });
        ev ~req:1 1.0 (Event.Released { mode = Mode.R });
      ]
  in
  checkb "grant without request rejected" false (r.Oracle.violations = [])

let test_conf_upgrade_atomicity () =
  (* An Upgraded firing while another span still holds a grant breaks
     Rule 7's exclusivity. *)
  let r =
    conformance
      [
        ev ~req:1 0.0 (Event.Requested { mode = Mode.U; priority = 0 });
        ev ~req:1 1.0 (Event.Granted_local { mode = Mode.U; hops = 0 });
        ev ~req:2 2.0 (Event.Requested { mode = Mode.R; priority = 0 });
        ev ~req:2 3.0 (Event.Granted_local { mode = Mode.R; hops = 0 });
        ev ~req:1 4.0 (Event.Requested { mode = Mode.W; priority = 0 });
        ev ~req:1 5.0 Event.Upgraded;
        ev ~req:2 6.0 (Event.Released { mode = Mode.R });
        ev ~req:1 7.0 (Event.Released { mode = Mode.W });
      ]
  in
  checkb "non-exclusive upgrade rejected" false (r.Oracle.violations = [])

let test_conf_liveness_toggle () =
  let events = [ ev ~req:1 0.0 (Event.Requested { mode = Mode.R; priority = 0 }) ] in
  let strict = conformance events in
  checki "ungranted counted" 1 strict.Oracle.ungranted;
  checkb "strict flags it" false (strict.Oracle.violations = []);
  let lax = conformance ~require_complete:false events in
  Alcotest.check (Alcotest.list Alcotest.string) "lax accepts prefix traces" []
    lax.Oracle.violations

(* {1 Fuzz driver} *)

let test_script_deterministic () =
  let a = Script.generate ~seed:17L ~nodes:8 ~locks:2 ~ops:40 () in
  let b = Script.generate ~seed:17L ~nodes:8 ~locks:2 ~ops:40 () in
  checkb "same seed, same script" true (a = b);
  checkb "valid" true (Result.is_ok (Script.validate a));
  let c = Script.generate ~seed:18L ~nodes:8 ~locks:2 ~ops:40 () in
  checkb "different seed, different script" false (a = c)

let test_fuzz_deterministic () =
  let case = Fuzz.case ~seed:11L ~nodes:8 ~locks:1 ~ops:40 () in
  let v1 = Fuzz.run case and v2 = Fuzz.run case in
  checkb "unmutated protocol passes" false (Fuzz.failed v1);
  checkb "same digest" true (Int64.equal v1.Fuzz.digest v2.Fuzz.digest);
  checkb "same verdict" true (v1.Fuzz.violations = v2.Fuzz.violations);
  checki "same messages" v1.Fuzz.messages v2.Fuzz.messages

let test_fuzz_with_faults () =
  let case = Fuzz.case ~plan:"heal-partition" ~seed:11L ~nodes:8 ~locks:1 ~ops:40 () in
  checkb "clean under fault plan" false (Fuzz.failed (Fuzz.run case))

let mutation_case seed mutation =
  Fuzz.case ~mutation ~seed ~nodes:4 ~locks:1 ~ops:(if mutation = Dcs_hlock.Node.Weak_freeze then 8 else 12) ()

let test_mutation_weak_freeze_caught () =
  let v = Fuzz.run (mutation_case 2L Dcs_hlock.Node.Weak_freeze) in
  checkb "weak-freeze caught" true (Fuzz.failed v)

let test_mutation_ignore_frozen_caught () =
  let v = Fuzz.run (mutation_case 1L Dcs_hlock.Node.Ignore_frozen) in
  checkb "ignore-frozen caught" true (Fuzz.failed v)

let test_shrink_minimizes () =
  let case = mutation_case 2L Dcs_hlock.Node.Weak_freeze in
  let small = Shrink.shrink ~budget:300 case in
  checkb "shrunk case still fails" true (Fuzz.failed (Fuzz.run small));
  let n = List.length small.Fuzz.script.Script.ops in
  checkb (Printf.sprintf "minimal repro has %d ops (<= 5)" n) true (n <= 5);
  checkb "fault plan dropped" true (small.Fuzz.plan = None);
  checki "collapsed to one lock" 1 small.Fuzz.script.Script.locks

(* {1 Corpus round-trip} *)

let test_corpus_roundtrip () =
  let case = Fuzz.case ~plan:"lossy-dup" ~seed:7L ~nodes:6 ~locks:2 ~ops:12 () in
  let entry = { Corpus.case; expect = Corpus.Pass } in
  let s = Corpus.to_string entry in
  (match Corpus.of_string s with
  | Error e -> Alcotest.fail e
  | Ok back ->
      (* Serialization is the identity on its own output (op times are
         already at the format's ms precision after one round-trip). *)
      Alcotest.check Alcotest.string "fixpoint" s (Corpus.to_string back);
      checkb "same shape" true
        (back.Corpus.case.Fuzz.seed = case.Fuzz.seed
        && back.Corpus.case.Fuzz.plan = case.Fuzz.plan
        && List.length back.Corpus.case.Fuzz.script.Script.ops
           = List.length case.Fuzz.script.Script.ops));
  (match Corpus.of_string "dcs-fuzz/9\nexpect pass\nseed 1\nnodes 2\nlocks 1\n" with
  | Ok _ -> Alcotest.fail "unknown corpus version accepted"
  | Error e -> checkb "version named in error" true (String.length e > 0));
  match Corpus.of_string (s ^ "op garbage\n") with
  | Ok _ -> Alcotest.fail "malformed op line accepted"
  | Error _ -> ()

let () =
  Alcotest.run "dcs_check"
    [
      ( "oracle",
        [
          Alcotest.test_case "readers share, writer excluded" `Quick test_seq_readers_share;
          Alcotest.test_case "FIFO with priorities" `Quick test_seq_fifo_and_priority;
          Alcotest.test_case "freeze table" `Quick test_seq_freeze_table;
          Alcotest.test_case "upgrade outranks" `Quick test_seq_upgrade_outranks;
        ] );
      ( "conformance",
        [
          Alcotest.test_case "clean trace" `Quick test_conf_clean_trace;
          Alcotest.test_case "incompatible grants" `Quick test_conf_incompatible_grants;
          Alcotest.test_case "unrequested grant" `Quick test_conf_unrequested_grant;
          Alcotest.test_case "upgrade atomicity" `Quick test_conf_upgrade_atomicity;
          Alcotest.test_case "liveness toggle" `Quick test_conf_liveness_toggle;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "script deterministic" `Quick test_script_deterministic;
          Alcotest.test_case "run deterministic" `Quick test_fuzz_deterministic;
          Alcotest.test_case "clean under faults" `Quick test_fuzz_with_faults;
          Alcotest.test_case "weak-freeze caught" `Quick test_mutation_weak_freeze_caught;
          Alcotest.test_case "ignore-frozen caught" `Quick test_mutation_ignore_frozen_caught;
          Alcotest.test_case "shrink minimizes" `Slow test_shrink_minimizes;
        ] );
      ("corpus", [ Alcotest.test_case "roundtrip" `Quick test_corpus_roundtrip ]);
    ]
