(* Tests for the public facade: the CORBA-style lock-set service. *)

module S = Core.Service

let checkb = Alcotest.check Alcotest.bool

let test_basic_lock_unlock () =
  let svc = S.create ~nodes:4 ~seed:1L ~oracle:true ~locks:[ "a"; "b" ] () in
  let sequence = ref [] in
  S.lock svc ~node:1 ~name:"a" ~mode:Core.Mode.W (fun t ->
      sequence := "n1-locked" :: !sequence;
      S.schedule svc ~after:10.0 (fun () ->
          S.unlock svc t;
          sequence := "n1-released" :: !sequence));
  S.lock svc ~node:2 ~name:"a" ~mode:Core.Mode.W (fun t ->
      sequence := "n2-locked" :: !sequence;
      S.unlock svc t);
  S.run svc;
  (* Writer exclusion: n2 only after n1 released. *)
  Alcotest.check
    Alcotest.(list string)
    "serialized writers"
    [ "n1-locked"; "n1-released"; "n2-locked" ]
    (List.rev !sequence)

let test_lock_names_and_errors () =
  let svc = S.create ~nodes:2 ~locks:[ "x" ] () in
  Alcotest.check Alcotest.(list string) "names" [ "x" ] (S.lock_names svc);
  checkb "unknown name" true
    (try
       S.lock svc ~node:0 ~name:"nope" ~mode:Core.Mode.R (fun _ -> ());
       false
     with Not_found -> true);
  checkb "duplicate names rejected" true
    (try
       ignore (S.create ~nodes:2 ~locks:[ "x"; "x" ] ());
       false
     with Invalid_argument _ -> true);
  checkb "empty lock list rejected" true
    (try
       ignore (S.create ~nodes:2 ~locks:[] ());
       false
     with Invalid_argument _ -> true)

let test_double_unlock_rejected () =
  let svc = S.create ~nodes:2 ~locks:[ "x" ] () in
  let saved = ref None in
  S.lock svc ~node:0 ~name:"x" ~mode:Core.Mode.R (fun t -> saved := Some t);
  S.run svc;
  let t = Option.get !saved in
  S.unlock svc t;
  checkb "double unlock raises" true
    (try
       S.unlock svc t;
       false
     with Invalid_argument _ -> true)

let test_try_lock_timeout () =
  let svc = S.create ~nodes:3 ~seed:3L ~locks:[ "x" ] () in
  let outcome = ref `Pending in
  (* Node 1 camps on W for a long time. *)
  S.lock svc ~node:1 ~name:"x" ~mode:Core.Mode.W (fun t ->
      S.schedule svc ~after:5000.0 (fun () -> S.unlock svc t));
  (* Node 2 tries with a short timeout: must give up. *)
  S.schedule svc ~after:100.0 (fun () ->
      S.try_lock svc ~node:2 ~name:"x" ~mode:Core.Mode.W ~timeout:500.0 (function
        | Some t ->
            outcome := `Got;
            S.unlock svc t
        | None -> outcome := `Timeout));
  S.run svc;
  checkb "timed out" true (!outcome = `Timeout)

let test_try_lock_success () =
  let svc = S.create ~nodes:3 ~seed:4L ~locks:[ "x" ] () in
  let outcome = ref `Pending in
  S.try_lock svc ~node:2 ~name:"x" ~mode:Core.Mode.R ~timeout:5000.0 (function
    | Some t ->
        outcome := `Got;
        S.unlock svc t
    | None -> outcome := `Timeout);
  S.run svc;
  checkb "granted" true (!outcome = `Got)

let test_change_mode_upgrade () =
  let svc = S.create ~nodes:3 ~seed:5L ~oracle:true ~locks:[ "x" ] () in
  let upgraded = ref false in
  S.lock svc ~node:1 ~name:"x" ~mode:Core.Mode.U (fun t ->
      S.change_mode svc t ~mode:Core.Mode.W (fun () ->
          upgraded := true;
          S.unlock svc t));
  S.run svc;
  checkb "upgraded" true !upgraded

let test_change_mode_invalid () =
  let svc = S.create ~nodes:2 ~locks:[ "x" ] () in
  let saved = ref None in
  S.lock svc ~node:0 ~name:"x" ~mode:Core.Mode.R (fun t -> saved := Some t);
  S.run svc;
  checkb "R->W rejected (only U->W supported via ticket in U)" true
    (try
       S.change_mode svc (Option.get !saved) ~mode:Core.Mode.R (fun () -> ());
       false
     with Invalid_argument _ -> true)

let test_readers_share () =
  let svc = S.create ~nodes:6 ~seed:6L ~oracle:true ~locks:[ "x" ] () in
  let concurrent = ref 0 and peak = ref 0 in
  for node = 0 to 5 do
    S.lock svc ~node ~name:"x" ~mode:Core.Mode.R (fun t ->
        incr concurrent;
        if !concurrent > !peak then peak := !concurrent;
        S.schedule svc ~after:300.0 (fun () ->
            decr concurrent;
            S.unlock svc t))
  done;
  S.run svc;
  checkb "readers overlapped" true (!peak >= 2)

let test_message_accounting () =
  let svc = S.create ~nodes:4 ~seed:7L ~locks:[ "x" ] () in
  S.lock svc ~node:3 ~name:"x" ~mode:Core.Mode.W (fun t -> S.unlock svc t);
  S.run svc;
  checkb "messages counted" true (Core.Counters.total (S.message_counters svc) > 0);
  checkb "mean latency positive" true (S.mean_latency svc > 0.0)

(* {1 Priorities through the facade} *)

let test_priority_through_service () =
  (* Priority ordering is exact where requests share a queue (the token
     node); see DESIGN.md §4b for the bounded-inversion semantics inside
     custody chains. Three clients of the same node contend. *)
  let svc = S.create ~nodes:1 ~seed:8L ~oracle:true ~locks:[ "x" ] () in
  let order = ref [] in
  S.lock svc ~node:0 ~name:"x" ~mode:Core.Mode.R (fun t ->
      S.schedule svc ~after:1000.0 (fun () -> S.unlock svc t));
  S.schedule svc ~after:200.0 (fun () ->
      S.lock svc ~node:0 ~name:"x" ~mode:Core.Mode.W (fun t ->
          order := `Low :: !order;
          S.unlock svc t));
  S.schedule svc ~after:400.0 (fun () ->
      S.lock ~priority:5 svc ~node:0 ~name:"x" ~mode:Core.Mode.W (fun t ->
          order := `High :: !order;
          S.unlock svc t));
  S.run svc;
  checkb "high-priority writer served first" true (List.rev !order = [ `High; `Low ])

(* {1 Hierarchy} *)

module H = Core.Hierarchy

let store_spec =
  [
    ("store", None);
    ("users", Some "store");
    ("orders", Some "store");
    ("users/1", Some "users");
    ("users/2", Some "users");
    ("orders/1", Some "orders");
  ]

let test_hierarchy_plan () =
  let h = H.create store_spec in
  Alcotest.check
    Alcotest.(list string)
    "ancestors" [ "store"; "users" ] (H.ancestors h "users/1");
  let plan = H.plan h ~name:"users/1" ~access:H.Write in
  Alcotest.check
    Alcotest.(list (pair string Testkit.mode))
    "write plan"
    [ ("store", Core.Mode.IW); ("users", Core.Mode.IW); ("users/1", Core.Mode.W) ]
    plan;
  let rplan = H.plan h ~name:"users" ~access:H.Read in
  Alcotest.check
    Alcotest.(list (pair string Testkit.mode))
    "read plan"
    [ ("store", Core.Mode.IR); ("users", Core.Mode.R) ]
    rplan;
  let uplan = H.plan h ~name:"orders/1" ~access:H.Upgrade_read in
  Alcotest.check
    Alcotest.(list (pair string Testkit.mode))
    "upgrade plan"
    [ ("store", Core.Mode.IW); ("orders", Core.Mode.IW); ("orders/1", Core.Mode.U) ]
    uplan

let test_hierarchy_validation () =
  checkb "duplicate" true
    (try ignore (H.create [ ("a", None); ("a", None) ]); false
     with Invalid_argument _ -> true);
  checkb "unknown parent" true
    (try ignore (H.create [ ("a", Some "ghost") ]); false
     with Invalid_argument _ -> true);
  checkb "cycle" true
    (try ignore (H.create [ ("a", Some "b"); ("b", Some "a") ]); false
     with Invalid_argument _ -> true);
  let h = H.create store_spec in
  checkb "names are parent-first" true
    (let names = H.names h in
     let idx n = Option.get (List.find_index (String.equal n) names) in
     idx "store" < idx "users" && idx "users" < idx "users/1")

let test_hierarchy_end_to_end () =
  let h = H.create store_spec in
  let svc = S.create ~nodes:4 ~seed:9L ~oracle:true ~locks:(H.names h) () in
  let events = ref [] in
  (* A document write excludes a concurrent collection-wide read of the
     same collection but not of a sibling collection. *)
  H.acquire h svc ~node:1 ~name:"users/1" ~access:H.Write (fun g ->
      events := "w-start" :: !events;
      S.schedule svc ~after:500.0 (fun () ->
          events := "w-end" :: !events;
          H.release svc g));
  S.schedule svc ~after:200.0 (fun () ->
      H.acquire h svc ~node:2 ~name:"users" ~access:H.Read (fun g ->
          events := "users-read" :: !events;
          H.release svc g));
  S.schedule svc ~after:200.0 (fun () ->
      H.acquire h svc ~node:3 ~name:"orders" ~access:H.Read (fun g ->
          events := "orders-read" :: !events;
          H.release svc g));
  S.run svc;
  let order = List.rev !events in
  let idx tag = Option.get (List.find_index (( = ) tag) order) in
  checkb "sibling read ran during the write" true (idx "orders-read" < idx "w-end");
  checkb "same-collection read waited" true (idx "users-read" > idx "w-end")

let test_hierarchy_upgrade () =
  let h = H.create store_spec in
  let svc = S.create ~nodes:3 ~seed:10L ~oracle:true ~locks:(H.names h) () in
  let upgraded = ref false in
  H.acquire h svc ~node:1 ~name:"orders/1" ~access:H.Upgrade_read (fun g ->
      S.change_mode svc (H.target_ticket g) ~mode:Core.Mode.W (fun () ->
          upgraded := true;
          H.release svc g));
  S.run svc;
  checkb "upgrade via hierarchy" true !upgraded

let gen_tree =
  (* Random forests: node i's parent is a smaller index or a root. *)
  QCheck2.Gen.(
    let* n = int_range 1 12 in
    let* parents =
      flatten_l
        (List.init n (fun i ->
             if i = 0 then return None
             else
               let* is_root = bool in
               if is_root then return None
               else map (fun p -> Some (Printf.sprintf "r%d" p)) (int_bound (i - 1))))
    in
    return (List.mapi (fun i p -> (Printf.sprintf "r%d" i, p)) parents))

let prop_hierarchy_plans =
  QCheck2.Test.make ~name:"hierarchy plans are intention chains" ~count:300 gen_tree
    (fun spec ->
      let h = H.create spec in
      List.for_all
        (fun (name, _) ->
          let plan = H.plan h ~name ~access:H.Write in
          let plan_r = H.plan h ~name ~access:H.Read in
          (* The chain covers exactly ancestors + target, in order. *)
          List.map fst plan = H.ancestors h name @ [ name ]
          && List.map fst plan_r = List.map fst plan
          (* Ancestors carry intention modes, the target the real mode. *)
          && List.for_all (fun (_, m) -> Core.Mode.equal m Core.Mode.IW)
               (List.filteri (fun i _ -> i < List.length plan - 1) plan)
          && Core.Mode.equal (snd (List.nth plan (List.length plan - 1))) Core.Mode.W
          (* Every plan prefix is itself a plan for the ancestor. *)
          && List.length plan = List.length (H.ancestors h name) + 1)
        spec)

let test_enumeration_and_stats () =
  let svc = S.create ~nodes:4 ~seed:9L ~oracle:true ~locks:[ "a"; "b"; "c" ] () in
  Alcotest.check Alcotest.int "lock_count" 3 (S.lock_count svc);
  checkb "stats unknown name" true
    (try
       ignore (S.stats svc ~name:"nope");
       false
     with Not_found -> true);
  (* Take and keep grants: a held R on "a" at two nodes, a held W on "b". *)
  S.lock svc ~node:1 ~name:"a" ~mode:Core.Mode.R (fun _ -> ());
  S.lock svc ~node:2 ~name:"a" ~mode:Core.Mode.R (fun _ -> ());
  S.lock svc ~node:3 ~name:"b" ~mode:Core.Mode.W (fun _ -> ());
  (* A completed cycle on "c" leaves the mode cached (granted, unheld). *)
  S.lock svc ~node:2 ~name:"c" ~mode:Core.Mode.R (fun t -> S.unlock svc t);
  S.run svc;
  let a = S.stats svc ~name:"a" in
  Alcotest.check Alcotest.int "two readers hold a" 2 (List.length a.S.held);
  List.iter (fun (_, m) -> checkb "reader mode" true (Core.Mode.equal m Core.Mode.R)) a.S.held;
  Alcotest.check Alcotest.int "nothing waiting" 0 a.S.waiting;
  checkb "token somewhere" true (a.S.token_node >= 0 && a.S.token_node < 4);
  let b = S.stats svc ~name:"b" in
  checkb "writer holds b" true (b.S.held = [ (3, Core.Mode.W) ]);
  checkb "traffic accounted" true (Core.Counters.total b.S.messages > 0);
  (* Enumeration covers every lock in creation order; idle set is idle. *)
  let all = S.all_stats svc in
  Alcotest.check
    Alcotest.(list string)
    "all_stats order" [ "a"; "b"; "c" ]
    (List.map (fun (s : S.lock_stats) -> s.S.name) all);
  let c = S.stats svc ~name:"c" in
  checkb "released lock has no holders" true (c.S.held = [] && c.S.waiting = 0);
  checkb "released mode stays cached" true (c.S.cached_nodes >= 1)

let () =
  Alcotest.run "core_service"
    [
      ( "service",
        [
          Alcotest.test_case "lock/unlock" `Quick test_basic_lock_unlock;
          Alcotest.test_case "names and errors" `Quick test_lock_names_and_errors;
          Alcotest.test_case "double unlock" `Quick test_double_unlock_rejected;
          Alcotest.test_case "try_lock timeout" `Quick test_try_lock_timeout;
          Alcotest.test_case "try_lock success" `Quick test_try_lock_success;
          Alcotest.test_case "change_mode upgrade" `Quick test_change_mode_upgrade;
          Alcotest.test_case "change_mode invalid" `Quick test_change_mode_invalid;
          Alcotest.test_case "readers share" `Quick test_readers_share;
          Alcotest.test_case "message accounting" `Quick test_message_accounting;
          Alcotest.test_case "priority through service" `Quick test_priority_through_service;
          Alcotest.test_case "enumeration and stats" `Quick test_enumeration_and_stats;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "plans" `Quick test_hierarchy_plan;
          Alcotest.test_case "validation" `Quick test_hierarchy_validation;
          Alcotest.test_case "end to end" `Quick test_hierarchy_end_to_end;
          Alcotest.test_case "upgrade" `Quick test_hierarchy_upgrade;
          QCheck_alcotest.to_alcotest prop_hierarchy_plans;
        ] );
    ]
