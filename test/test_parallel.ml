(* Determinism of the Domain fan-out (Dcs_netkit.Parallel) and the
   parallel experiment sweeps built on it: for every jobs count the
   output — per-cell stats and trace digests included — must be
   bit-identical to the sequential run. This is the property that makes
   --jobs safe to default on in the experiment CLIs. *)

module Parallel = Dcs_netkit.Parallel
module Experiment = Dcs_runtime.Experiment
module Figures = Dcs_runtime.Figures

let checkb = Alcotest.check Alcotest.bool
let jobs_range = [ 1; 2; 3; 4 ]

(* {1 The fan-out primitive} *)

let test_map_matches_array_map () =
  let cells = Array.init 23 (fun i -> i) in
  let f i = (i * i) + 1 in
  let expect = Array.map f cells in
  List.iter
    (fun jobs ->
      Alcotest.(check (array int))
        (Printf.sprintf "jobs %d" jobs)
        expect (Parallel.map ~jobs f cells))
    jobs_range;
  Alcotest.(check (array int)) "empty" [||] (Parallel.map ~jobs:4 (fun x -> x) [||]);
  Alcotest.(check (array int)) "more jobs than cells" [| 42 |]
    (Parallel.map ~jobs:8 (fun x -> x) [| 42 |])

let test_map_propagates_exception () =
  List.iter
    (fun jobs ->
      match Parallel.map ~jobs (fun i -> if i = 5 then failwith "boom" else i) (Array.init 8 Fun.id) with
      | _ -> Alcotest.fail "expected the worker exception to propagate"
      | exception Failure msg -> Alcotest.(check string) "message" "boom" msg)
    jobs_range

let test_cell_seed_identity () =
  checkb "stable" true
    (Int64.equal (Parallel.cell_seed ~base:42L ~salt:7) (Parallel.cell_seed ~base:42L ~salt:7));
  checkb "salt-sensitive" false
    (Int64.equal (Parallel.cell_seed ~base:42L ~salt:7) (Parallel.cell_seed ~base:42L ~salt:8));
  checkb "base-sensitive" false
    (Int64.equal (Parallel.cell_seed ~base:42L ~salt:7) (Parallel.cell_seed ~base:43L ~salt:7));
  (* salt 0 still displaces the base seed *)
  checkb "salt 0 displaces" false
    (Int64.equal (Parallel.cell_seed ~base:42L ~salt:0) 42L)

(* {1 Sweep determinism} *)

(* A small drivers × nodes grid run through the fan-out, each cell fully
   traced. Cell seeds derive from semantic identity, never position, so
   the expected output is independent of work distribution. *)
let run_grid ~jobs =
  let cells =
    Array.of_list
      (List.concat_map
         (fun driver -> List.map (fun n -> (driver, n)) [ 4; 8; 12 ])
         Experiment.[ Hierarchical; Naimi_pure; Naimi_same_work ])
  in
  Parallel.map ~jobs
    (fun (driver, nodes) ->
      let cfg = Experiment.default_config ~driver ~nodes in
      let cfg = { cfg with Experiment.seed = Parallel.cell_seed ~base:7L ~salt:nodes } in
      let trace = Dcs_sim.Trace.create ~capacity:256 ~enabled:true () in
      let r = Experiment.run ~trace cfg in
      ( r.Experiment.msgs_per_op,
        r.Experiment.msgs_per_lock_request,
        r.Experiment.latency_factor,
        r.Experiment.ops,
        Dcs_sim.Trace.digest trace ))
    cells

let test_grid_bit_identical () =
  let sequential = run_grid ~jobs:1 in
  List.iter
    (fun jobs ->
      checkb
        (Printf.sprintf "stats and digests identical at jobs %d" jobs)
        true
        (run_grid ~jobs = sequential))
    [ 2; 3; 4 ]

(* The public sweep API end to end: series and rendered report both. *)
let test_figures_identical () =
  let nodes = [ 2; 4; 8 ] in
  let sequential = Figures.fig5 ~nodes ~jobs:1 () in
  List.iter
    (fun jobs ->
      checkb (Printf.sprintf "fig5 identical at jobs %d" jobs) true
        (Figures.fig5 ~nodes ~jobs () = sequential))
    [ 2; 3; 4 ];
  let seq7 = Figures.fig7 ~nodes ~jobs:1 () in
  checkb "fig7 identical at jobs 4" true (Figures.fig7 ~nodes ~jobs:4 () = seq7)

(* A one-driver sweep must equal that driver's slice of the full grid:
   cell seeds depend only on (driver, nodes), not sweep composition. *)
let test_sweep_composition_invariant () =
  let nodes = [ 2; 4; 8 ] in
  let alone = Figures.sweep ~driver:Experiment.Hierarchical ~nodes ~jobs:2 () in
  let all = Figures.fig5 ~nodes ~jobs:2 () |> fst in
  let in_grid = List.find (fun s -> s.Figures.driver = Experiment.Hierarchical) all in
  checkb "hierarchical slice matches standalone sweep" true (alone = in_grid)

let () =
  Alcotest.run "dcs_parallel"
    [
      ( "map",
        [
          Alcotest.test_case "matches Array.map" `Quick test_map_matches_array_map;
          Alcotest.test_case "propagates exceptions" `Quick test_map_propagates_exception;
          Alcotest.test_case "cell seeds" `Quick test_cell_seed_identity;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "traced grid bit-identical for jobs 1..4" `Quick
            test_grid_bit_identical;
          Alcotest.test_case "figure sweeps identical for jobs 1..4" `Quick
            test_figures_identical;
          Alcotest.test_case "composition-invariant cell seeds" `Quick
            test_sweep_composition_invariant;
        ] );
    ]
