(* Tests for the simulation substrate: PRNG, distributions, priority queue,
   event engine, traces. *)

open Dcs_sim
module Q = QCheck2

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf = Alcotest.check (Alcotest.float 1e-9)

(* {1 Rng} *)

let test_rng_determinism () =
  let a = Rng.create ~seed:123L and b = Rng.create ~seed:123L in
  for _ = 1 to 100 do
    Alcotest.check Alcotest.int64 "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done;
  let c = Rng.create ~seed:124L in
  checkb "different seed differs" true (Rng.next_int64 a <> Rng.next_int64 c)

let prop_rng_float_unit =
  Q.Test.make ~name:"float in [0,1)" ~count:200 Q.Gen.int64 (fun seed ->
      let rng = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Rng.float rng in
        if not (x >= 0.0 && x < 1.0) then ok := false
      done;
      !ok)

let prop_rng_int_bound =
  Q.Test.make ~name:"int in [0,bound)" ~count:200
    Q.Gen.(pair int64 (int_range 1 1000))
    (fun (seed, bound) ->
      let rng = Rng.create ~seed in
      let ok = ref true in
      for _ = 1 to 100 do
        let x = Rng.int rng ~bound in
        if not (x >= 0 && x < bound) then ok := false
      done;
      !ok)

let test_rng_exponential_mean () =
  let rng = Rng.create ~seed:7L in
  let sum = ref 0.0 in
  let n = 200_000 in
  for _ = 1 to n do
    sum := !sum +. Rng.exponential rng ~mean:150.0
  done;
  let mean = !sum /. float_of_int n in
  checkb "mean within 2%" true (Float.abs (mean -. 150.0) < 3.0)

let test_rng_split_independent () =
  let rng = Rng.create ~seed:9L in
  let a = Rng.split rng and b = Rng.split rng in
  checkb "split streams differ" true (Rng.next_int64 a <> Rng.next_int64 b)

let prop_shuffle_permutation =
  Q.Test.make ~name:"shuffle is a permutation" ~count:200
    Q.Gen.(pair int64 (list_size (int_bound 20) small_int))
    (fun (seed, l) ->
      let rng = Rng.create ~seed in
      let a = Array.of_list l in
      Rng.shuffle rng a;
      List.sort compare (Array.to_list a) = List.sort compare l)

let test_rng_pick () =
  let rng = Rng.create ~seed:1L in
  for _ = 1 to 50 do
    checkb "pick member" true (List.mem (Rng.pick rng [ 1; 2; 3 ]) [ 1; 2; 3 ])
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Rng.pick: empty list") (fun () ->
      ignore (Rng.pick rng []))

(* {1 Dist} *)

let test_dist_means () =
  checkf "const" 15.0 (Dist.mean (Dist.Constant 15.0));
  checkf "uniform" 150.0 (Dist.mean (Dist.uniform_around 150.0));
  checkf "exp" 42.0 (Dist.mean (Dist.Exponential { mean = 42.0 }));
  checkf "sexp" 100.0 (Dist.mean (Dist.Shifted_exponential { min = 20.0; mean = 100.0 }))

let test_dist_sample_ranges () =
  let rng = Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let u = Dist.sample (Dist.uniform_around 100.0) rng in
    checkb "uniform range" true (u >= 50.0 && u < 150.0);
    let s = Dist.sample (Dist.Shifted_exponential { min = 10.0; mean = 20.0 }) rng in
    checkb "sexp min" true (s >= 10.0);
    checkb "const" true (Dist.sample (Dist.Constant 3.0) rng = 3.0)
  done

let test_dist_parse () =
  let roundtrip s =
    match Dist.of_string s with
    | Ok d -> Dist.to_string d
    | Error e -> Alcotest.fail e
  in
  Alcotest.check Alcotest.string "const" "const:15" (roundtrip "const:15");
  Alcotest.check Alcotest.string "uniform" "uniform:10:20" (roundtrip "uniform:10:20");
  Alcotest.check Alcotest.string "exp" "exp:150" (roundtrip "exp:150");
  Alcotest.check Alcotest.string "sexp" "sexp:50:150" (roundtrip "sexp:50:150");
  Alcotest.check Alcotest.string "bare number is uniform-around" "uniform:75:225" (roundtrip "150");
  checkb "garbage rejected" true (Result.is_error (Dist.of_string "nope:1"));
  checkb "inverted uniform rejected" true (Result.is_error (Dist.of_string "uniform:9:3"))

(* {1 Pqueue} *)

let prop_pqueue_sorts =
  Q.Test.make ~name:"drain returns keys sorted" ~count:500
    Q.Gen.(list_size (int_bound 50) (int_range 0 100))
    (fun keys ->
      let q = Pqueue.create ~compare:Int.compare in
      List.iteri (fun i k -> Pqueue.add q k i) keys;
      let drained = Pqueue.drain q in
      List.map fst drained = List.sort compare keys)

let prop_pqueue_stable =
  Q.Test.make ~name:"equal keys pop in insertion order" ~count:300
    Q.Gen.(list_size (int_bound 40) (int_bound 3))
    (fun keys ->
      let q = Pqueue.create ~compare:Int.compare in
      List.iteri (fun i k -> Pqueue.add q k i) keys;
      let drained = Pqueue.drain q in
      (* Within each key, values (insertion indices) must be increasing. *)
      let by_key k = List.filter_map (fun (k', v) -> if k = k' then Some v else None) drained in
      List.for_all (fun k -> let vs = by_key k in vs = List.sort compare vs) [ 0; 1; 2; 3 ])

let test_pqueue_basics () =
  let q = Pqueue.create ~compare:Int.compare in
  checkb "empty" true (Pqueue.is_empty q);
  Alcotest.check Alcotest.(option (pair int string)) "peek empty" None (Pqueue.peek q);
  Pqueue.add q 3 "c";
  Pqueue.add q 1 "a";
  Pqueue.add q 2 "b";
  checki "length" 3 (Pqueue.length q);
  Alcotest.check Alcotest.(option (pair int string)) "peek min" (Some (1, "a")) (Pqueue.peek q);
  Alcotest.check Alcotest.(option (pair int string)) "pop min" (Some (1, "a")) (Pqueue.pop q);
  Pqueue.clear q;
  checkb "cleared" true (Pqueue.is_empty q)

(* {1 Engine} *)

let test_engine_ordering () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule e ~after:10.0 (fun () -> log := "b" :: !log);
  Engine.schedule e ~after:5.0 (fun () -> log := "a" :: !log);
  Engine.schedule e ~after:10.0 (fun () -> log := "c" :: !log);
  (* same time as "b": scheduling order preserved *)
  Alcotest.check
    (Alcotest.testable
       (fun ppf o -> Format.pp_print_string ppf (match o with Engine.Drained -> "drained" | _ -> "?"))
       ( = ))
    "drained" Engine.Drained (Engine.run e);
  Alcotest.check Alcotest.(list string) "order" [ "a"; "b"; "c" ] (List.rev !log);
  checkf "clock at last event" 10.0 (Engine.now e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~after:1.0 (fun () ->
      incr fired;
      Engine.schedule e ~after:1.0 (fun () -> incr fired));
  ignore (Engine.run e);
  checki "both fired" 2 !fired;
  checki "events processed" 2 (Engine.events_processed e)

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref 0 in
  Engine.schedule e ~after:5.0 (fun () -> incr fired);
  Engine.schedule e ~after:50.0 (fun () -> incr fired);
  (match Engine.run ~until:10.0 e with
  | Engine.Horizon_reached -> ()
  | _ -> Alcotest.fail "expected horizon");
  checki "only first fired" 1 !fired;
  checkf "clock clamped" 10.0 (Engine.now e);
  checki "one pending" 1 (Engine.pending e)

let test_engine_event_limit () =
  let e = Engine.create () in
  let rec forever () = Engine.schedule e ~after:1.0 forever in
  forever ();
  match Engine.run ~max_events:100 e with
  | Engine.Event_limit -> ()
  | _ -> Alcotest.fail "expected event limit"

let test_engine_past_clamped () =
  let e = Engine.create () in
  let times = ref [] in
  Engine.schedule e ~after:10.0 (fun () ->
      Engine.schedule_at e ~time:3.0 (fun () -> times := Engine.now e :: !times));
  ignore (Engine.run e);
  Alcotest.check Alcotest.(list (float 1e-9)) "clamped to now" [ 10.0 ] !times

(* {1 Trace} *)

let test_trace_determinism () =
  let mk () =
    let tr = Trace.create ~enabled:true () in
    Trace.record tr ~time:1.0 (fun () -> "hello");
    Trace.record tr ~time:2.0 (fun () -> "world");
    tr
  in
  Alcotest.check Alcotest.int64 "equal digests" (Trace.digest (mk ())) (Trace.digest (mk ()));
  let other = Trace.create ~enabled:true () in
  Trace.record other ~time:1.0 (fun () -> "different");
  checkb "different digest" true (Trace.digest other <> Trace.digest (mk ()))

let test_trace_disabled_is_free () =
  let tr = Trace.create ~enabled:false () in
  Trace.record tr ~time:1.0 (fun () -> Alcotest.fail "thunk must not be forced");
  checki "no entries" 0 (Trace.length tr)

let test_trace_capacity () =
  let tr = Trace.create ~capacity:3 ~enabled:true () in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i) (fun () -> string_of_int i)
  done;
  checki "ring keeps 3" 3 (Trace.length tr);
  Alcotest.check
    Alcotest.(list string)
    "keeps newest" [ "3"; "4"; "5" ]
    (List.map snd (Trace.entries tr))

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_trace_wraparound () =
  let tr = Trace.create ~capacity:4 ~enabled:true () in
  for i = 1 to 3 do
    Trace.record tr ~time:(float_of_int i) (fun () -> string_of_int i)
  done;
  (* under capacity *)
  checki "total under capacity" 3 (Trace.total tr);
  checki "nothing evicted yet" 0 (Trace.evicted tr);
  (* capacity hit exactly *)
  Trace.record tr ~time:4.0 (fun () -> "4");
  checki "total at capacity" 4 (Trace.total tr);
  checki "exact fill evicts nothing" 0 (Trace.evicted tr);
  (* capacity exceeded *)
  Trace.record tr ~time:5.0 (fun () -> "5");
  checki "total counts evicted entries" 5 (Trace.total tr);
  checki "one evicted" 1 (Trace.evicted tr);
  checki "length + evicted = total" (Trace.total tr) (Trace.length tr + Trace.evicted tr);
  (* no capacity: never evicts *)
  let un = Trace.create ~enabled:true () in
  for i = 1 to 100 do
    Trace.record un ~time:(float_of_int i) (fun () -> string_of_int i)
  done;
  checki "unbounded never evicts" 0 (Trace.evicted un);
  checki "unbounded total" 100 (Trace.total un)

let test_trace_digest_across_wrap () =
  (* The digest covers every entry ever recorded, so the ring capacity
     (including none at all) must not change it. *)
  let fill capacity =
    let tr = Trace.create ?capacity ~enabled:true () in
    for i = 1 to 20 do
      Trace.record tr ~time:(float_of_int i) (fun () -> string_of_int i)
    done;
    Trace.digest tr
  in
  Alcotest.check Alcotest.int64 "digest independent of capacity" (fill None) (fill (Some 4));
  Alcotest.check Alcotest.int64 "digest stable across wraps" (fill (Some 4)) (fill (Some 4))

let test_trace_pp_eviction_header () =
  let render tr = Format.asprintf "%a" Trace.pp tr in
  let tr = Trace.create ~capacity:2 ~enabled:true () in
  for i = 1 to 5 do
    Trace.record tr ~time:(float_of_int i) (fun () -> string_of_int i)
  done;
  checkb "eviction header present" true (contains (render tr) "3 earlier entries evicted");
  let full = Trace.create ~capacity:9 ~enabled:true () in
  Trace.record full ~time:1.0 (fun () -> "x");
  checkb "no header when nothing evicted" false (contains (render full) "evicted")

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "dcs_sim"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "pick" `Quick test_rng_pick;
          qt prop_rng_float_unit;
          qt prop_rng_int_bound;
          qt prop_shuffle_permutation;
        ] );
      ( "dist",
        [
          Alcotest.test_case "means" `Quick test_dist_means;
          Alcotest.test_case "sample ranges" `Quick test_dist_sample_ranges;
          Alcotest.test_case "parse" `Quick test_dist_parse;
        ] );
      ( "pqueue",
        [
          Alcotest.test_case "basics" `Quick test_pqueue_basics;
          qt prop_pqueue_sorts;
          qt prop_pqueue_stable;
        ] );
      ( "engine",
        [
          Alcotest.test_case "ordering" `Quick test_engine_ordering;
          Alcotest.test_case "nested" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "horizon" `Quick test_engine_horizon;
          Alcotest.test_case "event limit" `Quick test_engine_event_limit;
          Alcotest.test_case "past clamped" `Quick test_engine_past_clamped;
        ] );
      ( "trace",
        [
          Alcotest.test_case "determinism" `Quick test_trace_determinism;
          Alcotest.test_case "disabled is free" `Quick test_trace_disabled_is_free;
          Alcotest.test_case "capacity ring" `Quick test_trace_capacity;
          Alcotest.test_case "wraparound accounting" `Quick test_trace_wraparound;
          Alcotest.test_case "digest across wrap" `Quick test_trace_digest_across_wrap;
          Alcotest.test_case "pp eviction header" `Quick test_trace_pp_eviction_header;
        ] );
    ]
