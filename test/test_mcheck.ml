(* Exhaustive small-configuration model checking: every message
   interleaving of these scenarios must be safe and live. The scenarios are
   chosen around the historical bug classes (crossing requests, mutual
   absorption, upgrade deadlock, writer vs readers). *)

module M = Dcs_mcheck.Mcheck
open Dcs_modes

let checkb = Alcotest.check Alcotest.bool

let run_scenario ?config ~name ~nodes ~actions () =
  let r = M.explore ?config ~nodes ~actions () in
  Alcotest.check (Alcotest.list Alcotest.string) (name ^ ": no violations") [] r.M.violations;
  checkb (name ^ ": explored fully") false r.M.truncated;
  checkb (name ^ ": nontrivial") true (r.M.states > 0 && r.M.terminals > 0)

let test_two_writers () =
  run_scenario ~name:"two writers" ~nodes:2
    ~actions:[ M.Acquire { node = 0; mode = Mode.W }; M.Acquire { node = 1; mode = Mode.W } ]
    ()

let test_crossing_writers () =
  run_scenario ~name:"crossing writers (3 nodes)" ~nodes:3
    ~actions:[ M.Acquire { node = 1; mode = Mode.W }; M.Acquire { node = 2; mode = Mode.W } ]
    ()

let test_mutual_iw () =
  (* The mutual-absorption deadlock class. *)
  run_scenario ~name:"crossing IW" ~nodes:3
    ~actions:[ M.Acquire { node = 1; mode = Mode.IW }; M.Acquire { node = 2; mode = Mode.IW } ]
    ()

let test_readers_and_writer () =
  run_scenario ~name:"reader reader writer" ~nodes:3
    ~actions:
      [
        M.Acquire { node = 1; mode = Mode.R };
        M.Acquire { node = 2; mode = Mode.R };
        M.Acquire { node = 0; mode = Mode.W };
      ]
    ()

let test_intents_and_read () =
  run_scenario ~name:"IR IW R" ~nodes:3
    ~actions:
      [
        M.Acquire { node = 1; mode = Mode.IR };
        M.Acquire { node = 2; mode = Mode.IW };
        M.Acquire { node = 0; mode = Mode.R };
      ]
    ()

let test_upgrade_vs_readers () =
  (* The upgrade-deadlock class (Rule 7 vs queued requests). *)
  run_scenario ~name:"upgrade vs reader" ~nodes:3
    ~actions:[ M.Acquire_upgrade { node = 1 }; M.Acquire { node = 2; mode = Mode.IR } ]
    ()

let test_two_upgrades () =
  run_scenario ~name:"two upgrades" ~nodes:3
    ~actions:[ M.Acquire_upgrade { node = 1 }; M.Acquire_upgrade { node = 2 } ]
    ()

let test_no_caching_config () =
  run_scenario
    ~config:{ Dcs_hlock.Node.default_config with Dcs_hlock.Node.caching = false }
    ~name:"no caching, crossing writers" ~nodes:3
    ~actions:[ M.Acquire { node = 1; mode = Mode.W }; M.Acquire { node = 2; mode = Mode.W } ]
    ()

let test_u_and_w () =
  run_scenario ~name:"U vs W" ~nodes:3
    ~actions:[ M.Acquire { node = 1; mode = Mode.U }; M.Acquire { node = 2; mode = Mode.W } ]
    ()

let test_w_freeze () =
  (* Rule 6 / Table 2(b): a W request must freeze R everywhere before it is
     served; the trailing R exercises both the freeze propagation and the
     un-freeze on release in every interleaving. *)
  run_scenario ~name:"W freeze vs readers" ~nodes:4
    ~actions:
      [
        M.Acquire { node = 1; mode = Mode.R };
        M.Acquire { node = 2; mode = Mode.W };
        M.Acquire { node = 3; mode = Mode.R };
      ]
    ()

let test_release_suppression () =
  (* Rule 5.2: n1's IR release is subsumed by its retained R (owned mode
     unchanged, no weakening report due); the W from n2 then depends on the
     eventual R release being reported despite the earlier suppression. *)
  run_scenario ~name:"release suppression" ~nodes:3
    ~actions:
      [
        M.Acquire { node = 1; mode = Mode.R };
        M.Acquire { node = 1; mode = Mode.IR };
        M.Acquire { node = 2; mode = Mode.W };
      ]
    ()

let test_same_node_fifo () =
  (* Two identical local requests must be granted in issue order in every
     interleaving (the terminal-state grant-order check). *)
  run_scenario ~name:"same-node FIFO" ~nodes:3
    ~actions:
      [
        M.Acquire { node = 1; mode = Mode.R };
        M.Acquire { node = 1; mode = Mode.R };
        M.Acquire { node = 2; mode = Mode.W };
      ]
    ()

let run_bounded ?config ~name ~nodes ~actions ~max_states () =
  let r = M.explore ?config ~nodes ~actions ~max_states () in
  Alcotest.check (Alcotest.list Alcotest.string) (name ^ ": no violations") [] r.M.violations;
  checkb (name ^ ": nontrivial") true (r.M.states > 100)

let test_three_writers_deep () =
  run_bounded ~name:"three crossing writers (bounded)" ~nodes:4
    ~actions:
      [
        M.Acquire { node = 1; mode = Mode.W };
        M.Acquire { node = 2; mode = Mode.W };
        M.Acquire { node = 3; mode = Mode.W };
      ]
    ~max_states:30_000 ()

let test_mixed_deep () =
  run_bounded ~name:"IW, upgrade, R (bounded)" ~nodes:4
    ~actions:
      [
        M.Acquire { node = 1; mode = Mode.IW };
        M.Acquire_upgrade { node = 2 };
        M.Acquire { node = 3; mode = Mode.R };
      ]
    ~max_states:30_000 ()

let () =
  Alcotest.run "dcs_mcheck"
    [
      ( "scenarios",
        [
          Alcotest.test_case "two writers" `Quick test_two_writers;
          Alcotest.test_case "crossing writers" `Slow test_crossing_writers;
          Alcotest.test_case "crossing IW" `Slow test_mutual_iw;
          Alcotest.test_case "readers and writer" `Slow test_readers_and_writer;
          Alcotest.test_case "intents and read" `Slow test_intents_and_read;
          Alcotest.test_case "upgrade vs readers" `Slow test_upgrade_vs_readers;
          Alcotest.test_case "two upgrades" `Slow test_two_upgrades;
          Alcotest.test_case "no caching" `Slow test_no_caching_config;
          Alcotest.test_case "U vs W" `Slow test_u_and_w;
          Alcotest.test_case "W freeze vs readers" `Slow test_w_freeze;
          Alcotest.test_case "release suppression" `Slow test_release_suppression;
          Alcotest.test_case "same-node FIFO" `Slow test_same_node_fifo;
          Alcotest.test_case "three writers (bounded)" `Slow test_three_writers_deep;
          Alcotest.test_case "mixed deep (bounded)" `Slow test_mixed_deep;
        ] );
    ]
