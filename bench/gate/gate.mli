(** Perf regression gate over dcs-bench-report JSON.

    Reads the [microbench_ns_per_run] section of two reports (a
    checked-in baseline and a fresh run) and flags every microbench
    whose per-run time grew by more than a tolerance. Parsing is a
    purpose-built scanner for the report's own flat emission (string
    keys mapped to plain numbers) — not a general JSON parser; it is
    shared by [report.exe --baseline] and the gate's tests. *)

(** [microbench_of_json s] extracts the [(name, ns_per_run)] pairs of
    the {e first} ["microbench_ns_per_run"] object in [s]. The report
    emits its own section before the embedded ["before"]/["baseline"]
    reports, so the first occurrence is always the report's own.
    Raises [Failure] if the key or its object shape is missing. *)
val microbench_of_json : string -> (string * float) list

type verdict = {
  name : string;
  before : float;  (** baseline ns/run *)
  after : float;  (** fresh ns/run *)
  ratio : float;  (** after /. before *)
}

(** [regressions ~tolerance ~before ~after ()] returns a verdict for
    every benchmark present in both lists whose time grew beyond
    [tolerance] (e.g. [0.15] = fail above +15%), slowest relative
    growth first. Benchmarks present on only one side are ignored:
    adding or retiring a microbench is not a regression.

    With [~drift_correction:true], each after/before ratio is first
    divided by the {e median} ratio across all paired benches (clamped
    to at least 1.0). Uniform machine drift — every bench inflating
    together on a noisy shared host — then cancels out, while a
    regression confined to one bench still towers over the median.
    [ratio] in the verdict is the corrected ratio. *)
val regressions :
  ?drift_correction:bool ->
  tolerance:float ->
  before:(string * float) list ->
  after:(string * float) list ->
  unit ->
  verdict list

val pp_verdict : Format.formatter -> verdict -> unit
