(* The scanner leans on the report's concrete shape: after the
   ["microbench_ns_per_run"] key comes one brace-delimited object whose
   members are string keys and bare numbers, with no nested objects or
   escaped quotes inside the benchmark names the suite produces. *)

let fail fmt = Printf.ksprintf failwith fmt

let find_key s key =
  let needle = "\"" ^ key ^ "\"" in
  let n = String.length s and m = String.length needle in
  let rec go i =
    if i + m > n then fail "gate: key %S not found" key
    else if String.sub s i m = needle then i + m
    else go (i + 1)
  in
  go 0

let skip_ws s i =
  let n = String.length s in
  let rec go i =
    if i < n && (match s.[i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) then go (i + 1)
    else i
  in
  go i

let expect s i c =
  let i = skip_ws s i in
  if i >= String.length s || s.[i] <> c then fail "gate: expected %C at offset %d" c i;
  i + 1

(* A quoted string without escape handling beyond the report's needs:
   benchmark names contain no quotes or backslashes. *)
let scan_string s i =
  let i = expect s i '"' in
  let j = try String.index_from s i '"' with Not_found -> fail "gate: unterminated string" in
  (String.sub s i (j - i), j + 1)

let scan_number s i =
  let i = skip_ws s i in
  let n = String.length s in
  let j = ref i in
  while
    !j < n
    && match s.[!j] with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  do
    incr j
  done;
  if !j = i then fail "gate: expected a number at offset %d" i;
  match float_of_string_opt (String.sub s i (!j - i)) with
  | Some v -> (v, !j)
  | None -> fail "gate: bad number at offset %d" i

let microbench_of_json s =
  let i = find_key s "microbench_ns_per_run" in
  let i = expect s i ':' in
  let i = expect s i '{' in
  let rec members acc i =
    let i = skip_ws s i in
    if i < String.length s && s.[i] = '}' then List.rev acc
    else begin
      let name, i = scan_string s i in
      let i = expect s i ':' in
      let v, i = scan_number s i in
      let i = skip_ws s i in
      if i < String.length s && s.[i] = ',' then members ((name, v) :: acc) (i + 1)
      else if i < String.length s && s.[i] = '}' then List.rev ((name, v) :: acc)
      else fail "gate: expected ',' or '}' at offset %d" i
    end
  in
  members [] i

type verdict = {
  name : string;
  before : float;
  after : float;
  ratio : float;
}

(* Median after/before ratio over the benches present on both sides.
   When the whole machine drifts (shared container, frequency scaling),
   every bench inflates together; dividing each ratio by the median
   cancels the drift while a genuine single-bench regression still
   towers over it. Clamped at 1.0: a machine that got *faster* must not
   turn a within-tolerance slowdown into a verdict. *)
let median_drift ~before ~after =
  let ratios =
    List.filter_map
      (fun (name, a) ->
        match List.assoc_opt name before with
        | Some b when b > 0.0 -> Some (a /. b)
        | _ -> None)
      after
    |> List.sort Float.compare
  in
  match ratios with
  | [] -> 1.0
  | rs -> Float.max 1.0 (List.nth rs (List.length rs / 2))

let regressions ?(drift_correction = false) ~tolerance ~before ~after () =
  let scale = if drift_correction then median_drift ~before ~after else 1.0 in
  List.filter_map
    (fun (name, a) ->
      match List.assoc_opt name before with
      | Some b when b > 0.0 && a /. (b *. scale) > 1.0 +. tolerance ->
          Some { name; before = b; after = a; ratio = a /. (b *. scale) }
      | _ -> None)
    after
  |> List.sort (fun x y -> Float.compare y.ratio x.ratio)

let pp_verdict ppf v =
  Format.fprintf ppf "%s: %.0f -> %.0f ns/run (%+.1f%%)" v.name v.before v.after
    ((v.ratio -. 1.0) *. 100.0)
