(* Benchmark harness.

   Part 1 (Bechamel): microbenchmarks of the building blocks — one group
   per protocol table plus engine/protocol hot paths.
   Part 2 (figures): regenerates every figure of the paper's evaluation
   (Figures 5, 6, 7), prints the decision tables (Tables 1a-2b) and the
   ablation study. Set BENCH_QUICK=1 to sweep only up to 32 nodes.

   Run with:  dune exec bench/main.exe *)

open Bechamel
open Toolkit

(* {1 Microbenchmarks} *)

let mode_pairs =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) Dcs_modes.Mode.all) Dcs_modes.Mode.all

(* Table 1(a): compatibility lookups. *)
let bench_table_1a =
  Test.make ~name:"table-1a compatibility"
    (Staged.stage (fun () ->
         List.iter (fun (a, b) -> ignore (Dcs_modes.Compat.compatible a b)) mode_pairs))

(* Table 1(b): child-grant decisions. *)
let bench_table_1b =
  Test.make ~name:"table-1b child grant"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.can_child_grant ~owned:(Some a) b))
           mode_pairs))

(* Table 2(a): queue/forward decisions. *)
let bench_table_2a =
  Test.make ~name:"table-2a queue/forward"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.queueable ~pending:(Some a) b))
           mode_pairs))

(* Table 2(b): freeze-set computation. *)
let bench_table_2b =
  Test.make ~name:"table-2b freeze set"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.freeze_set ~owned:(Some a) b))
           mode_pairs))

let bench_mode_set =
  Test.make ~name:"mode-set algebra"
    (Staged.stage (fun () ->
         let open Dcs_modes in
         let s = Mode_set.of_list [ Mode.IR; Mode.R ] in
         let t = Mode_set.of_list [ Mode.R; Mode.W ] in
         ignore (Mode_set.union s t);
         ignore (Mode_set.inter s t);
         ignore (Mode_set.diff s t)))

let bench_engine =
  Test.make ~name:"engine 1k events"
    (Staged.stage (fun () ->
         let e = Dcs_sim.Engine.create () in
         for i = 1 to 1000 do
           Dcs_sim.Engine.schedule e ~after:(float_of_int (i mod 17)) (fun () -> ())
         done;
         ignore (Dcs_sim.Engine.run e)))

(* One full request/grant/release round trip on an 8-node simulated
   cluster: the protocol hot path end-to-end. *)
let bench_hlock_roundtrip =
  Test.make ~name:"hlock request round trip"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let engine = Dcs_sim.Engine.create () in
          let rng = Dcs_sim.Rng.create ~seed:(Int64.of_int !counter) in
          let net =
            Dcs_runtime.Net.create ~engine ~latency:(Dcs_sim.Dist.Constant 1.0) ~rng ()
          in
          let cluster = Dcs_runtime.Hlock_cluster.create ~net ~nodes:8 ~locks:1 () in
          for node = 1 to 7 do
            let seq = ref (-1) in
            seq :=
              Dcs_runtime.Hlock_cluster.request cluster ~node ~lock:0 ~mode:Dcs_modes.Mode.R
                ~on_granted:(fun () ->
                  Dcs_runtime.Hlock_cluster.release cluster ~node ~lock:0 ~seq:!seq)
          done;
          ignore (Dcs_sim.Engine.run engine)))

let bench_naimi_roundtrip =
  Test.make ~name:"naimi request round trip"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let engine = Dcs_sim.Engine.create () in
          let rng = Dcs_sim.Rng.create ~seed:(Int64.of_int !counter) in
          let net =
            Dcs_runtime.Net.create ~engine ~latency:(Dcs_sim.Dist.Constant 1.0) ~rng ()
          in
          let cluster = Dcs_runtime.Naimi_cluster.create ~net ~nodes:8 ~locks:1 () in
          for node = 1 to 7 do
            Dcs_runtime.Naimi_cluster.request cluster ~node ~lock:0 ~on_acquired:(fun () ->
                Dcs_runtime.Naimi_cluster.release cluster ~node ~lock:0)
          done;
          ignore (Dcs_sim.Engine.run engine)))

(* 100 messages through the reliable-delivery shim over a clean 1 ms
   link: the per-message cost of the seq/ack/dedup machinery alone. *)
let bench_reliable_shim =
  Test.make ~name:"reliable shim 100 msgs"
    (Staged.stage (fun () ->
         let engine = Dcs_sim.Engine.create () in
         let below ~src:_ ~dst:_ ~cls:_ ~describe:_ k =
           Dcs_sim.Engine.schedule engine ~after:1.0 k
         in
         let shim = Dcs_fault.Reliable.create ~engine ~below () in
         for _ = 1 to 100 do
           Dcs_fault.Reliable.send shim ~src:0 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
             ~describe:(fun () -> "bench") (fun () -> ())
         done;
         ignore (Dcs_sim.Engine.run engine)))

let run_microbenches () =
  let tests =
    Test.make_grouped ~name:"dcs"
      [
        bench_table_1a;
        bench_table_1b;
        bench_table_2a;
        bench_table_2b;
        bench_mode_set;
        bench_engine;
        bench_hlock_roundtrip;
        bench_naimi_roundtrip;
        bench_reliable_shim;
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Printf.printf "Microbenchmarks (monotonic clock):\n";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "  %-32s %14.1f ns/run\n" name est
      | _ -> Printf.printf "  %-32s (no estimate)\n" name)
    results;
  print_newline ()

(* {1 The paper's figures} *)

let () =
  run_microbenches ();
  let quick = Sys.getenv_opt "BENCH_QUICK" <> None in
  let nodes =
    if quick then Dcs_runtime.Figures.quick_nodes else Dcs_runtime.Figures.default_nodes
  in
  print_string (Dcs_runtime.Figures.tables ());
  print_newline ();
  print_string (Dcs_runtime.Figures.full_report ~nodes ());
  print_newline ();
  print_string (Dcs_runtime.Figures.ablations ~nodes:(if quick then 16 else 48) ())
