(* Benchmark harness.

   Part 1 (Bechamel): microbenchmarks of the building blocks — one group
   per protocol table (derivational and precomputed fast path) plus
   engine/protocol hot paths. The suite itself lives in suite.ml, shared
   with the machine-readable report (report.ml).
   Part 2 (figures): regenerates every figure of the paper's evaluation
   (Figures 5, 6, 7), prints the decision tables (Tables 1a-2b) and the
   ablation study. Set BENCH_QUICK=1 to sweep only up to 32 nodes.

   Run with:  dune exec bench/main.exe *)

let run_microbenches () =
  Printf.printf "Microbenchmarks (monotonic clock / minor heap):\n";
  List.iter
    (fun { Suite.name; ns; minor_words } ->
      Printf.printf "  %-36s %14.1f ns/run %10.1f w/run\n" name ns minor_words)
    (Suite.run ());
  print_newline ()

(* {1 The paper's figures} *)

let () =
  run_microbenches ();
  let quick = Sys.getenv_opt "BENCH_QUICK" <> None in
  let nodes =
    if quick then Dcs_runtime.Figures.quick_nodes else Dcs_runtime.Figures.default_nodes
  in
  print_string (Dcs_runtime.Figures.tables ());
  print_newline ();
  print_string (Dcs_runtime.Figures.full_report ~nodes ());
  print_newline ();
  print_string (Dcs_runtime.Figures.ablations ~nodes:(if quick then 16 else 48) ())
