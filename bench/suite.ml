(* The microbenchmark suite, shared by the human-readable harness
   (main.ml) and the machine-readable report (report.ml): one group per
   protocol decision table (derivational Compat vs precomputed Decision)
   plus the simulator and protocol hot paths. *)

open Bechamel
open Toolkit

let mode_pairs =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) Dcs_modes.Mode.all) Dcs_modes.Mode.all

(* Table 1(a): compatibility lookups. *)
let bench_table_1a =
  Test.make ~name:"table-1a compatibility"
    (Staged.stage (fun () ->
         List.iter (fun (a, b) -> ignore (Dcs_modes.Compat.compatible a b)) mode_pairs))

(* Table 1(b): child-grant decisions. *)
let bench_table_1b =
  Test.make ~name:"table-1b child grant"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.can_child_grant ~owned:(Some a) b))
           mode_pairs))

(* Table 2(a): queue/forward decisions. *)
let bench_table_2a =
  Test.make ~name:"table-2a queue/forward"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.queueable ~pending:(Some a) b))
           mode_pairs))

(* Table 2(b): freeze-set computation. *)
let bench_table_2b =
  Test.make ~name:"table-2b freeze set"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.freeze_set ~owned:(Some a) b))
           mode_pairs))

(* Fast-path counterparts: the same decisions through the precomputed
   Decision lookup arrays (owned codes kept as ints, as Node does). *)
let code_pairs =
  List.map (fun (a, b) -> (Dcs_modes.Decision.code_of_mode a, b)) mode_pairs

let bench_decision_1a =
  Test.make ~name:"decision-1a compatibility"
    (Staged.stage (fun () ->
         List.iter (fun (a, b) -> ignore (Dcs_modes.Decision.compatible a b)) mode_pairs))

let bench_decision_1b =
  Test.make ~name:"decision-1b child grant"
    (Staged.stage (fun () ->
         List.iter
           (fun (c, b) -> ignore (Dcs_modes.Decision.can_child_grant ~owned:c b))
           code_pairs))

let bench_decision_2a =
  Test.make ~name:"decision-2a queue/forward"
    (Staged.stage (fun () ->
         List.iter
           (fun (c, b) -> ignore (Dcs_modes.Decision.queueable ~pending:c b))
           code_pairs))

let bench_decision_2b =
  Test.make ~name:"decision-2b freeze set"
    (Staged.stage (fun () ->
         List.iter
           (fun (c, b) -> ignore (Dcs_modes.Decision.freeze_set ~owned:c b))
           code_pairs))

let bench_mode_set =
  Test.make ~name:"mode-set algebra"
    (Staged.stage (fun () ->
         let open Dcs_modes in
         let s = Mode_set.of_list [ Mode.IR; Mode.R ] in
         let t = Mode_set.of_list [ Mode.R; Mode.W ] in
         ignore (Mode_set.union s t);
         ignore (Mode_set.inter s t);
         ignore (Mode_set.diff s t)))

let bench_engine =
  Test.make ~name:"engine 1k events"
    (Staged.stage (fun () ->
         let e = Dcs_sim.Engine.create () in
         for i = 1 to 1000 do
           Dcs_sim.Engine.schedule e ~after:(float_of_int (i mod 17)) (fun () -> ())
         done;
         ignore (Dcs_sim.Engine.run e)))

(* 1k records into a capacity-bounded trace: the eviction path that every
   long traced soak lives on (ring overwrite, no re-filtering). *)
let bench_trace =
  Test.make ~name:"trace 1k records (cap 64)"
    (Staged.stage (fun () ->
         let tr = Dcs_sim.Trace.create ~capacity:64 ~enabled:true () in
         for i = 1 to 1000 do
           Dcs_sim.Trace.record tr ~time:(float_of_int i) (fun () -> "event")
         done;
         ignore (Dcs_sim.Trace.digest tr)))

(* 1k add/pop pairs through the generic heap (the engine uses its own
   monomorphic copy; this tracks the shared structure). *)
let bench_pqueue =
  Test.make ~name:"pqueue 1k add+pop"
    (Staged.stage (fun () ->
         let q = Dcs_sim.Pqueue.create ~compare:Int.compare in
         for i = 1 to 1000 do
           Dcs_sim.Pqueue.add q (i * 7919 mod 1000) i
         done;
         while not (Dcs_sim.Pqueue.is_empty q) do
           Dcs_sim.Pqueue.remove_min q
         done))

(* One full request/grant/release round trip on an 8-node simulated
   cluster: the protocol hot path end-to-end. *)
let bench_hlock_roundtrip =
  Test.make ~name:"hlock request round trip"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let engine = Dcs_sim.Engine.create () in
          let rng = Dcs_sim.Rng.create ~seed:(Int64.of_int !counter) in
          let net =
            Dcs_runtime.Net.create ~engine ~latency:(Dcs_sim.Dist.Constant 1.0) ~rng ()
          in
          let cluster = Dcs_runtime.Hlock_cluster.create ~net ~nodes:8 ~locks:1 () in
          for node = 1 to 7 do
            let seq = ref (-1) in
            seq :=
              Dcs_runtime.Hlock_cluster.request cluster ~node ~lock:0 ~mode:Dcs_modes.Mode.R
                ~on_granted:(fun () ->
                  Dcs_runtime.Hlock_cluster.release cluster ~node ~lock:0 ~seq:!seq)
          done;
          ignore (Dcs_sim.Engine.run engine)))

let bench_naimi_roundtrip =
  Test.make ~name:"naimi request round trip"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let engine = Dcs_sim.Engine.create () in
          let rng = Dcs_sim.Rng.create ~seed:(Int64.of_int !counter) in
          let net =
            Dcs_runtime.Net.create ~engine ~latency:(Dcs_sim.Dist.Constant 1.0) ~rng ()
          in
          let cluster = Dcs_runtime.Naimi_cluster.create ~net ~nodes:8 ~locks:1 () in
          for node = 1 to 7 do
            Dcs_runtime.Naimi_cluster.request cluster ~node ~lock:0 ~on_acquired:(fun () ->
                Dcs_runtime.Naimi_cluster.release cluster ~node ~lock:0)
          done;
          ignore (Dcs_sim.Engine.run engine)))

(* {1 Wire path}

   The zero-allocation claims the transport relies on, measured: with a
   reused writer, encoding allocates nothing; with a reused reader,
   skimming (full validation, no materialization) allocates nothing;
   materialized decode allocates only the decoded message. The request
   and token shapes bracket the format: token is the fattest message
   (embedded queue), request is the common case. *)

let sample_request : Dcs_hlock.Msg.request =
  {
    requester = 3;
    seq = 12345;
    mode = Dcs_modes.Mode.W;
    upgrade = false;
    timestamp = 987654;
    priority = 2;
    hops = 3;
    token_only = false;
    hint = (5, 2);
    path = [ 3; 5; 7 ];
  }

let request_env =
  { Dcs_wire.Codec.src = 3; lock = 1; payload = Dcs_wire.Codec.Hlock (Request sample_request) }

let token_env =
  {
    Dcs_wire.Codec.src = 0;
    lock = 1;
    payload =
      Dcs_wire.Codec.Hlock
        (Token
           {
             serving = sample_request;
             sender_owned = Some Dcs_modes.Mode.R;
             sender_epoch = 7;
             queue = [ sample_request; { sample_request with seq = 12346; requester = 5 } ];
             frozen = Dcs_modes.Mode_set.of_list [ Dcs_modes.Mode.R; Dcs_modes.Mode.W ];
           });
  }

let bench_wire_encode name env =
  let w = Dcs_wire.Buf.writer ~capacity:256 () in
  Test.make ~name
    (Staged.stage (fun () ->
         Dcs_wire.Buf.reset w;
         Dcs_wire.Codec.write_envelope w env))

let bench_wire_encode_request = bench_wire_encode "wire encode request (reused writer)" request_env
let bench_wire_encode_token = bench_wire_encode "wire encode token (reused writer)" token_env

let bench_wire_skim =
  let data = Bytes.of_string (Dcs_wire.Codec.encode token_env) in
  let len = Bytes.length data in
  let r = Dcs_wire.Buf.reader "" in
  Test.make ~name:"wire skim token (reused reader)"
    (Staged.stage (fun () ->
         Dcs_wire.Buf.attach r data ~off:0 ~len;
         Dcs_wire.Codec.skim_envelope r))

let bench_wire_decode =
  let data = Bytes.of_string (Dcs_wire.Codec.encode token_env) in
  let len = Bytes.length data in
  Test.make ~name:"wire decode token (materialized)"
    (Staged.stage (fun () -> ignore (Dcs_wire.Codec.decode_sub data ~off:0 ~len)))

(* The batched transport's inner loop without the sockets: frame 16
   envelopes back-to-back into one reused buffer (length prefix patched
   in place, as the runner's writer does), then walk the batch skimming
   each frame (as a validating reader would). *)
let bench_wire_framed_batch =
  let w = Dcs_wire.Buf.writer ~capacity:4096 () in
  let r = Dcs_wire.Buf.reader "" in
  Test.make ~name:"wire framed batch x16 roundtrip"
    (Staged.stage (fun () ->
         let open Dcs_wire in
         Buf.reset w;
         for _ = 1 to 8 do
           let at = Buf.length w in
           Buf.u32_be w 0;
           Codec.write_envelope w request_env;
           Buf.patch_u32_be w ~at (Buf.length w - at - 4);
           let at = Buf.length w in
           Buf.u32_be w 0;
           Codec.write_envelope w token_env;
           Buf.patch_u32_be w ~at (Buf.length w - at - 4)
         done;
         let data = Buf.unsafe_bytes w in
         let total = Buf.length w in
         let off = ref 0 in
         while !off < total do
           let len =
             (Char.code (Bytes.get data !off) lsl 24)
             lor (Char.code (Bytes.get data (!off + 1)) lsl 16)
             lor (Char.code (Bytes.get data (!off + 2)) lsl 8)
             lor Char.code (Bytes.get data (!off + 3))
           in
           Buf.attach r data ~off:(!off + 4) ~len;
           Codec.skim_envelope r;
           off := !off + 4 + len
         done))

(* The migration handoff's wire cost: one Handoff frame carrying a real
   two-burst bucket store (full per-node protocol state), through the
   same encoder/decoder the live migration path uses. This is the byte
   price of moving a bucket. *)
let handoff_env =
  let cfg = Dcs_shard.Router.default_config in
  let cell = Dcs_shard.Cell.create ~latency:cfg.Dcs_shard.Router.latency
      ~nodes:cfg.Dcs_shard.Router.nodes () in
  let tbl = Hashtbl.create 4 in
  ignore (Dcs_shard.Router.run_burst cfg cell tbl { Dcs_shard.Traffic.set = 0; burst = 0 });
  ignore (Dcs_shard.Router.run_burst cfg cell tbl { Dcs_shard.Traffic.set = 0; burst = 1 });
  {
    Dcs_wire.Codec.src = 0;
    lock = 0;
    payload =
      Dcs_wire.Codec.Shard
        (Dcs_wire.Shard_msg.Handoff
           {
             bucket = 0;
             version = 1;
             entries = Dcs_shard.Router.entries_of_store tbl;
             parked = [ (0, 2) ];
           });
  }

let bench_handoff_encode = bench_wire_encode "shard handoff encode (reused writer)" handoff_env

let bench_handoff_decode =
  let data = Bytes.of_string (Dcs_wire.Codec.encode handoff_env) in
  let len = Bytes.length data in
  Test.make ~name:"shard handoff decode (materialized)"
    (Staged.stage (fun () -> ignore (Dcs_wire.Codec.decode_sub data ~off:0 ~len)))

(* The transport's metrics hooks, as the runner's hot paths pay them:
   handles resolved once at create time, then per-event atomic counter
   increments, a gauge store, and one log-scaled histogram observation.
   The minor-words column is the claim: the per-event path allocates
   nothing (find-or-create runs only at registration). *)
let bench_metrics_hook =
  let m = Dcs_obs.Metrics.create () in
  let c = Dcs_obs.Metrics.counter m "bench.frames" in
  let g = Dcs_obs.Metrics.gauge m "bench.depth" in
  let h = Dcs_obs.Metrics.histogram m "bench.latency" in
  Test.make ~name:"metrics hook incr+set+observe"
    (Staged.stage (fun () ->
         Dcs_obs.Metrics.incr c;
         Dcs_obs.Metrics.add c 17;
         Dcs_obs.Metrics.set g 42.0;
         Dcs_obs.Metrics.observe h 3.5))

(* 100 messages through the reliable-delivery shim over a clean 1 ms
   link: the per-message cost of the seq/ack/dedup machinery alone. *)
let bench_reliable_shim =
  Test.make ~name:"reliable shim 100 msgs"
    (Staged.stage (fun () ->
         let engine = Dcs_sim.Engine.create () in
         let below ~src:_ ~dst:_ ~cls:_ ~describe:_ k =
           Dcs_sim.Engine.schedule engine ~after:1.0 k
         in
         let shim = Dcs_fault.Reliable.create ~engine ~below () in
         for _ = 1 to 100 do
           Dcs_fault.Reliable.send shim ~src:0 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
             ~describe:(fun () -> "bench") (fun () -> ())
         done;
         ignore (Dcs_sim.Engine.run engine)))

let all =
  [
    bench_table_1a;
    bench_table_1b;
    bench_table_2a;
    bench_table_2b;
    bench_decision_1a;
    bench_decision_1b;
    bench_decision_2a;
    bench_decision_2b;
    bench_mode_set;
    bench_engine;
    bench_trace;
    bench_pqueue;
    bench_hlock_roundtrip;
    bench_naimi_roundtrip;
    bench_wire_encode_request;
    bench_wire_encode_token;
    bench_wire_skim;
    bench_wire_decode;
    bench_wire_framed_batch;
    bench_handoff_encode;
    bench_handoff_decode;
    bench_metrics_hook;
    bench_reliable_shim;
  ]

type result = { name : string; ns : float; minor_words : float }

(* Run the whole suite; [quota] is the per-test measurement budget in
   seconds. Returns per-run time and minor-heap allocation (words; the
   zero-allocation wire-path claims are checked against the latter),
   sorted by name. *)
let run ?(quota = 0.25) () =
  let tests = Test.make_grouped ~name:"dcs" all in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock; minor_allocated ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let estimate results name =
    match Hashtbl.find_opt results name with
    | Some result -> (
        match Analyze.OLS.estimates result with
        | Some [ est ] -> Some est
        | _ -> None)
    | None -> None
  in
  let times = Analyze.all ols Instance.monotonic_clock raw in
  let allocs = Analyze.all ols Instance.minor_allocated raw in
  let out = ref [] in
  Hashtbl.iter
    (fun name _ ->
      match (estimate times name, estimate allocs name) with
      | Some ns, Some minor_words -> out := { name; ns; minor_words } :: !out
      | Some ns, None -> out := { name; ns; minor_words = 0.0 } :: !out
      | None, _ -> ())
    times;
  List.sort (fun a b -> String.compare a.name b.name) !out

(* {1 Aggregate throughput}

   End-to-end requests per second of wall-clock time on an [nodes]-node
   simulated cluster (constant 1 ms links): every non-token node chains
   [rounds] request→release cycles on a shared lock, so the figure folds
   in the protocol engines, the simulated network and the event loop —
   the implementation's capacity to push lock traffic, not the simulated
   latency. Every fourth node writes, so the load mixes cache-friendly
   reads with conflicting writes that keep revocation traffic flowing. *)
let throughput ~nodes ~rounds () =
  let engine = Dcs_sim.Engine.create () in
  let rng = Dcs_sim.Rng.create ~seed:42L in
  let net = Dcs_runtime.Net.create ~engine ~latency:(Dcs_sim.Dist.Constant 1.0) ~rng () in
  let cluster = Dcs_runtime.Hlock_cluster.create ~net ~nodes ~locks:1 () in
  let completed = ref 0 in
  for node = 1 to nodes - 1 do
    let mode = if node mod 4 = 0 then Dcs_modes.Mode.W else Dcs_modes.Mode.R in
    let remaining = ref rounds in
    (* Cached re-acquisition grants synchronously, inside [request],
       before the ticket is known — detect that and finish after. *)
    let rec go () =
      let seq = ref (-1) in
      let sync = ref false in
      let s =
        Dcs_runtime.Hlock_cluster.request cluster ~node ~lock:0 ~mode
          ~on_granted:(fun () -> if !seq >= 0 then finish !seq else sync := true)
      in
      seq := s;
      if !sync then finish s
    and finish s =
      incr completed;
      Dcs_runtime.Hlock_cluster.release cluster ~node ~lock:0 ~seq:s;
      decr remaining;
      if !remaining > 0 then go ()
    in
    go ()
  done;
  let t0 = Unix.gettimeofday () in
  ignore (Dcs_sim.Engine.run engine);
  let dt = Unix.gettimeofday () -. t0 in
  let requests = !completed in
  assert (requests = (nodes - 1) * rounds);
  float_of_int requests /. dt

(* Aggregate requests per second of the sharded lock-namespace service:
   the full round loop (traffic plan, bucket routing, pooled-cell bursts,
   namespace digest) at a given shard count, fanned over [shards] worker
   domains. Requests = grants — Router.run raises if any burst loses one.
   On a single-core host the shard counts measure the sharding machinery's
   overhead rather than parallel speedup; the determinism tests pin the
   digests equal across shard counts, so the same figures on a multi-core
   host are directly comparable. *)
let shard_throughput ~shards ~rounds () =
  (* The workload is fixed (default buckets/lock sets/burst mix); only
     the shard count varies, so the rows are directly comparable. *)
  let cfg = { Dcs_shard.Router.default_config with Dcs_shard.Router.shards; rounds } in
  let t0 = Unix.gettimeofday () in
  let r = Dcs_shard.Router.run ~jobs:shards cfg in
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int r.Dcs_shard.Router.grants /. dt

(* The capstone soak: a 64-node-per-set population over a 1M-lock-set
   namespace, Zipf-skewed traffic, millions of requests, run at each
   shard count with one worker domain per shard. Returns per-shard-count
   rows: (shards, grants, wall seconds, req/s, digest, per-shard burst
   counts). The digest must be identical across rows — the determinism
   tests pin that, and the soak re-checks it — so the rows differ only
   in how the same work was spread. *)
type soak_row = {
  soak_shards : int;
  soak_grants : int;
  soak_wall_s : float;
  soak_req_per_s : float;
  soak_digest : int64;
  soak_balance : int list;  (* bursts per shard *)
}

let soak ?(shard_counts = [ 1; 2; 4 ]) ?(lock_sets = 1_000_000) ?(nodes = 64) ?(rounds = 250)
    ?(jobs_per_round = 1250) ?(ops_per_burst = 8) ?(skew = 0.9) () =
  let cfg =
    {
      Dcs_shard.Router.default_config with
      Dcs_shard.Router.lock_sets;
      nodes;
      rounds;
      jobs_per_round;
      ops_per_burst;
      skew;
      buckets = 64;
    }
  in
  List.map
    (fun shards ->
      let cfg = { cfg with Dcs_shard.Router.shards } in
      let t0 = Unix.gettimeofday () in
      let r = Dcs_shard.Router.run ~jobs:shards cfg in
      let wall = Unix.gettimeofday () -. t0 in
      {
        soak_shards = shards;
        soak_grants = r.Dcs_shard.Router.grants;
        soak_wall_s = wall;
        soak_req_per_s = float_of_int r.Dcs_shard.Router.grants /. wall;
        soak_digest = r.Dcs_shard.Router.digest;
        soak_balance =
          List.map
            (fun (s : Dcs_shard.Router.shard_stat) -> s.Dcs_shard.Router.bursts)
            r.Dcs_shard.Router.shard_stats;
      })
    shard_counts
