(* The microbenchmark suite, shared by the human-readable harness
   (main.ml) and the machine-readable report (report.ml): one group per
   protocol decision table (derivational Compat vs precomputed Decision)
   plus the simulator and protocol hot paths. *)

open Bechamel
open Toolkit

let mode_pairs =
  List.concat_map (fun a -> List.map (fun b -> (a, b)) Dcs_modes.Mode.all) Dcs_modes.Mode.all

(* Table 1(a): compatibility lookups. *)
let bench_table_1a =
  Test.make ~name:"table-1a compatibility"
    (Staged.stage (fun () ->
         List.iter (fun (a, b) -> ignore (Dcs_modes.Compat.compatible a b)) mode_pairs))

(* Table 1(b): child-grant decisions. *)
let bench_table_1b =
  Test.make ~name:"table-1b child grant"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.can_child_grant ~owned:(Some a) b))
           mode_pairs))

(* Table 2(a): queue/forward decisions. *)
let bench_table_2a =
  Test.make ~name:"table-2a queue/forward"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.queueable ~pending:(Some a) b))
           mode_pairs))

(* Table 2(b): freeze-set computation. *)
let bench_table_2b =
  Test.make ~name:"table-2b freeze set"
    (Staged.stage (fun () ->
         List.iter
           (fun (a, b) -> ignore (Dcs_modes.Compat.freeze_set ~owned:(Some a) b))
           mode_pairs))

(* Fast-path counterparts: the same decisions through the precomputed
   Decision lookup arrays (owned codes kept as ints, as Node does). *)
let code_pairs =
  List.map (fun (a, b) -> (Dcs_modes.Decision.code_of_mode a, b)) mode_pairs

let bench_decision_1a =
  Test.make ~name:"decision-1a compatibility"
    (Staged.stage (fun () ->
         List.iter (fun (a, b) -> ignore (Dcs_modes.Decision.compatible a b)) mode_pairs))

let bench_decision_1b =
  Test.make ~name:"decision-1b child grant"
    (Staged.stage (fun () ->
         List.iter
           (fun (c, b) -> ignore (Dcs_modes.Decision.can_child_grant ~owned:c b))
           code_pairs))

let bench_decision_2a =
  Test.make ~name:"decision-2a queue/forward"
    (Staged.stage (fun () ->
         List.iter
           (fun (c, b) -> ignore (Dcs_modes.Decision.queueable ~pending:c b))
           code_pairs))

let bench_decision_2b =
  Test.make ~name:"decision-2b freeze set"
    (Staged.stage (fun () ->
         List.iter
           (fun (c, b) -> ignore (Dcs_modes.Decision.freeze_set ~owned:c b))
           code_pairs))

let bench_mode_set =
  Test.make ~name:"mode-set algebra"
    (Staged.stage (fun () ->
         let open Dcs_modes in
         let s = Mode_set.of_list [ Mode.IR; Mode.R ] in
         let t = Mode_set.of_list [ Mode.R; Mode.W ] in
         ignore (Mode_set.union s t);
         ignore (Mode_set.inter s t);
         ignore (Mode_set.diff s t)))

let bench_engine =
  Test.make ~name:"engine 1k events"
    (Staged.stage (fun () ->
         let e = Dcs_sim.Engine.create () in
         for i = 1 to 1000 do
           Dcs_sim.Engine.schedule e ~after:(float_of_int (i mod 17)) (fun () -> ())
         done;
         ignore (Dcs_sim.Engine.run e)))

(* 1k records into a capacity-bounded trace: the eviction path that every
   long traced soak lives on (ring overwrite, no re-filtering). *)
let bench_trace =
  Test.make ~name:"trace 1k records (cap 64)"
    (Staged.stage (fun () ->
         let tr = Dcs_sim.Trace.create ~capacity:64 ~enabled:true () in
         for i = 1 to 1000 do
           Dcs_sim.Trace.record tr ~time:(float_of_int i) (fun () -> "event")
         done;
         ignore (Dcs_sim.Trace.digest tr)))

(* 1k add/pop pairs through the generic heap (the engine uses its own
   monomorphic copy; this tracks the shared structure). *)
let bench_pqueue =
  Test.make ~name:"pqueue 1k add+pop"
    (Staged.stage (fun () ->
         let q = Dcs_sim.Pqueue.create ~compare:Int.compare in
         for i = 1 to 1000 do
           Dcs_sim.Pqueue.add q (i * 7919 mod 1000) i
         done;
         while not (Dcs_sim.Pqueue.is_empty q) do
           Dcs_sim.Pqueue.remove_min q
         done))

(* One full request/grant/release round trip on an 8-node simulated
   cluster: the protocol hot path end-to-end. *)
let bench_hlock_roundtrip =
  Test.make ~name:"hlock request round trip"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let engine = Dcs_sim.Engine.create () in
          let rng = Dcs_sim.Rng.create ~seed:(Int64.of_int !counter) in
          let net =
            Dcs_runtime.Net.create ~engine ~latency:(Dcs_sim.Dist.Constant 1.0) ~rng ()
          in
          let cluster = Dcs_runtime.Hlock_cluster.create ~net ~nodes:8 ~locks:1 () in
          for node = 1 to 7 do
            let seq = ref (-1) in
            seq :=
              Dcs_runtime.Hlock_cluster.request cluster ~node ~lock:0 ~mode:Dcs_modes.Mode.R
                ~on_granted:(fun () ->
                  Dcs_runtime.Hlock_cluster.release cluster ~node ~lock:0 ~seq:!seq)
          done;
          ignore (Dcs_sim.Engine.run engine)))

let bench_naimi_roundtrip =
  Test.make ~name:"naimi request round trip"
    (Staged.stage
       (let counter = ref 0 in
        fun () ->
          incr counter;
          let engine = Dcs_sim.Engine.create () in
          let rng = Dcs_sim.Rng.create ~seed:(Int64.of_int !counter) in
          let net =
            Dcs_runtime.Net.create ~engine ~latency:(Dcs_sim.Dist.Constant 1.0) ~rng ()
          in
          let cluster = Dcs_runtime.Naimi_cluster.create ~net ~nodes:8 ~locks:1 () in
          for node = 1 to 7 do
            Dcs_runtime.Naimi_cluster.request cluster ~node ~lock:0 ~on_acquired:(fun () ->
                Dcs_runtime.Naimi_cluster.release cluster ~node ~lock:0)
          done;
          ignore (Dcs_sim.Engine.run engine)))

(* 100 messages through the reliable-delivery shim over a clean 1 ms
   link: the per-message cost of the seq/ack/dedup machinery alone. *)
let bench_reliable_shim =
  Test.make ~name:"reliable shim 100 msgs"
    (Staged.stage (fun () ->
         let engine = Dcs_sim.Engine.create () in
         let below ~src:_ ~dst:_ ~cls:_ ~describe:_ k =
           Dcs_sim.Engine.schedule engine ~after:1.0 k
         in
         let shim = Dcs_fault.Reliable.create ~engine ~below () in
         for _ = 1 to 100 do
           Dcs_fault.Reliable.send shim ~src:0 ~dst:1 ~cls:Dcs_proto.Msg_class.Request
             ~describe:(fun () -> "bench") (fun () -> ())
         done;
         ignore (Dcs_sim.Engine.run engine)))

let all =
  [
    bench_table_1a;
    bench_table_1b;
    bench_table_2a;
    bench_table_2b;
    bench_decision_1a;
    bench_decision_1b;
    bench_decision_2a;
    bench_decision_2b;
    bench_mode_set;
    bench_engine;
    bench_trace;
    bench_pqueue;
    bench_hlock_roundtrip;
    bench_naimi_roundtrip;
    bench_reliable_shim;
  ]

(* Run the whole suite; [quota] is the per-test measurement budget in
   seconds. Returns (name, ns/run) sorted by name. *)
let run ?(quota = 0.25) () =
  let tests = Test.make_grouped ~name:"dcs" all in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second quota) ~kde:(Some 10) () in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let out = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> out := (name, est) :: !out
      | _ -> ())
    results;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !out
