(* Machine-readable performance report.

     dune exec bench/report.exe -- [-o FILE] [--before FILE] [--label S]
                                   [--quota S] [--smoke]

   Measures the shared microbenchmark suite (suite.ml, ns/run) and the
   figure-sweep wall clocks (quick node list, sequential and parallel),
   checks that the parallel sweep reproduces the sequential one exactly,
   and writes everything as one JSON object. With [--before FILE] the
   (JSON) contents of FILE are embedded verbatim under "before", so a
   report generated at one commit can be carried forward for
   side-by-side comparison — BENCH_baseline.json at the repo root is
   exactly such a report. [--smoke] shrinks the run to a seconds-long CI
   check (tiny quota, one 16-node sweep row fanned over 2 domains) and
   is what the @bench-smoke alias runs. *)

let now () = Unix.gettimeofday ()

(* {1 Minimal JSON emission} *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_kv b ~last key value =
  Buffer.add_string b "    \"";
  buf_escape b key;
  Buffer.add_string b "\": ";
  Buffer.add_string b value;
  if not last then Buffer.add_char b ',';
  Buffer.add_char b '\n'

let obj_of_assoc ~render kvs =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  let n = List.length kvs in
  List.iteri (fun i (k, v) -> add_kv b ~last:(i = n - 1) k (render v)) kvs;
  Buffer.add_string b "  }";
  Buffer.contents b

let fl v = Printf.sprintf "%.6f" v

(* {1 Measurements} *)

let time_it f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

type sweep_timing = { name : string; seq_s : float; par_s : float }

let sweep_timings ~jobs ~nodes () =
  let figs =
    [
      ("fig5", fun ~jobs () -> ignore (Dcs_runtime.Figures.fig5 ~nodes ~jobs ()));
      ("fig6", fun ~jobs () -> ignore (Dcs_runtime.Figures.fig6 ~nodes ~jobs ()));
      ("fig7", fun ~jobs () -> ignore (Dcs_runtime.Figures.fig7 ~nodes ~jobs ()));
    ]
  in
  List.map
    (fun (name, run) ->
      let (), seq_s = time_it (fun () -> run ~jobs:1 ()) in
      let (), par_s = time_it (fun () -> run ~jobs ()) in
      { name; seq_s; par_s })
    figs

(* The determinism gate: the same grid at jobs 1 and [jobs] must produce
   structurally identical series (every stat of every cell). *)
let parallel_matches ~jobs ~nodes () =
  let seq = Dcs_runtime.Figures.fig5 ~nodes ~jobs:1 () |> fst in
  let par = Dcs_runtime.Figures.fig5 ~nodes ~jobs () |> fst in
  seq = par

let () =
  let out = ref None
  and before = ref None
  and label = ref "current"
  and quota = ref 0.25
  and smoke = ref false in
  let rec parse = function
    | [] -> ()
    | "-o" :: f :: rest -> out := Some f; parse rest
    | "--before" :: f :: rest -> before := Some f; parse rest
    | "--label" :: s :: rest -> label := s; parse rest
    | "--quota" :: s :: rest -> quota := float_of_string s; parse rest
    | "--smoke" :: rest -> smoke := true; parse rest
    | a :: _ -> Printf.eprintf "unknown argument %S\n" a; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let smoke = !smoke || Sys.getenv_opt "BENCH_QUICK" <> None in
  let cores = Domain.recommended_domain_count () in
  let jobs = if smoke then 2 else max 2 cores in
  let nodes = if smoke then [ 16 ] else Dcs_runtime.Figures.quick_nodes in
  let quota = if smoke then min !quota 0.05 else !quota in
  let micro = Suite.run ~quota () in
  let sweeps = sweep_timings ~jobs ~nodes () in
  let matches = parallel_matches ~jobs ~nodes () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  add_kv b ~last:false "schema" "\"dcs-bench-report/1\"";
  add_kv b ~last:false "label" (let bb = Buffer.create 32 in Buffer.add_char bb '"'; buf_escape bb !label; Buffer.add_char bb '"'; Buffer.contents bb);
  add_kv b ~last:false "cores" (string_of_int cores);
  add_kv b ~last:false "jobs" (string_of_int jobs);
  add_kv b ~last:false "smoke" (string_of_bool smoke);
  add_kv b ~last:false "sweep_nodes" ("[" ^ String.concat ", " (List.map string_of_int nodes) ^ "]");
  add_kv b ~last:false "parallel_matches_sequential" (string_of_bool matches);
  add_kv b ~last:false "microbench_ns_per_run"
    (obj_of_assoc ~render:fl (List.map (fun (k, v) -> (k, v)) micro));
  let sweep_kvs =
    List.concat_map
      (fun s -> [ (s.name ^ "_jobs1_s", s.seq_s); (Printf.sprintf "%s_jobs%d_s" s.name jobs, s.par_s) ])
      sweeps
  in
  let last = !before = None in
  add_kv b ~last "sweep_wall_clock_s" (obj_of_assoc ~render:fl sweep_kvs);
  (match !before with
  | None -> ()
  | Some file ->
      let ic = open_in_bin file in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      add_kv b ~last:true "before" (String.trim contents));
  Buffer.add_string b "}\n";
  let json = Buffer.contents b in
  (match !out with
  | None -> print_string json
  | Some f ->
      let oc = open_out f in
      output_string oc json;
      close_out oc;
      Printf.eprintf "wrote %s\n" f);
  if not matches then begin
    Printf.eprintf "FAIL: parallel sweep diverged from sequential\n";
    exit 1
  end
