(* Machine-readable performance report.

     dune exec bench/report.exe -- [-o FILE] [--before FILE] [--label S]
                                   [--quota S] [--smoke] [--baseline FILE]
                                   [--gate-tolerance R] [--no-gate]
                                   [--gate-drift-correction]

   Measures the shared microbenchmark suite (suite.ml: ns/run and
   minor-heap words/run), aggregate simulated-cluster throughput
   (requests per wall-clock second at several node counts) and the
   figure-sweep wall clocks (quick node list, sequential and parallel),
   checks that the parallel sweep reproduces the sequential one exactly,
   and writes everything as one JSON object. With [--before FILE] the
   (JSON) contents of FILE are embedded verbatim under "before", so a
   report generated at one commit can be carried forward for
   side-by-side comparison — BENCH_baseline.json at the repo root is
   exactly such a report. [--smoke] shrinks the run to a seconds-long CI
   check (tiny quota, one 16-node sweep row fanned over 2 domains) and
   is what the @bench-smoke alias runs.

   [--baseline FILE] is the perf regression gate: after writing the
   report, compare each microbench against FILE's microbench_ns_per_run
   section and exit 1 if any grew more than --gate-tolerance (default
   0.15 = +15%). [--gate-drift-correction] divides every ratio by the
   suite-wide median ratio first, cancelling uniform machine drift on a
   noisy shared host (the @bench-smoke alias uses it — this container
   drifts +/-25% run-to-run). Escape hatches when a regression is
   understood and accepted: pass --no-gate, or set BENCH_NO_GATE=1 (for
   one-off runs of the @bench-smoke alias, whose command line is
   fixed). *)

let now () = Unix.gettimeofday ()

(* {1 Minimal JSON emission} *)

let buf_escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let add_kv b ~last key value =
  Buffer.add_string b "    \"";
  buf_escape b key;
  Buffer.add_string b "\": ";
  Buffer.add_string b value;
  if not last then Buffer.add_char b ',';
  Buffer.add_char b '\n'

let obj_of_assoc ~render kvs =
  let b = Buffer.create 256 in
  Buffer.add_string b "{\n";
  let n = List.length kvs in
  List.iteri (fun i (k, v) -> add_kv b ~last:(i = n - 1) k (render v)) kvs;
  Buffer.add_string b "  }";
  Buffer.contents b

let fl v = Printf.sprintf "%.6f" v

(* {1 Measurements} *)

let time_it f =
  let t0 = now () in
  let r = f () in
  (r, now () -. t0)

type sweep_timing = { name : string; seq_s : float; par_s : float }

let sweep_timings ~jobs ~nodes () =
  let figs =
    [
      ("fig5", fun ~jobs () -> ignore (Dcs_runtime.Figures.fig5 ~nodes ~jobs ()));
      ("fig6", fun ~jobs () -> ignore (Dcs_runtime.Figures.fig6 ~nodes ~jobs ()));
      ("fig7", fun ~jobs () -> ignore (Dcs_runtime.Figures.fig7 ~nodes ~jobs ()));
    ]
  in
  List.map
    (fun (name, run) ->
      let (), seq_s = time_it (fun () -> run ~jobs:1 ()) in
      let (), par_s = time_it (fun () -> run ~jobs ()) in
      { name; seq_s; par_s })
    figs

(* The determinism gate: the same grid at jobs 1 and [jobs] must produce
   structurally identical series (every stat of every cell). *)
let parallel_matches ~jobs ~nodes () =
  let seq = Dcs_runtime.Figures.fig5 ~nodes ~jobs:1 () |> fst in
  let par = Dcs_runtime.Figures.fig5 ~nodes ~jobs () |> fst in
  seq = par

let read_file file =
  let ic = open_in_bin file in
  let len = in_channel_length ic in
  let contents = really_input_string ic len in
  close_in ic;
  contents

let () =
  let out = ref None
  and before = ref None
  and label = ref "current"
  and quota = ref 0.25
  and smoke = ref false
  and baseline = ref None
  and gate_tolerance = ref 0.15
  and gate_drift = ref false
  and no_gate = ref false in
  let soak = ref false in
  let soak_scale = ref 1.0 in
  let rec parse = function
    | [] -> ()
    | "--soak" :: rest -> soak := true; parse rest
    | "--soak-scale" :: s :: rest -> soak_scale := float_of_string s; parse rest
    | "-o" :: f :: rest -> out := Some f; parse rest
    | "--before" :: f :: rest -> before := Some f; parse rest
    | "--label" :: s :: rest -> label := s; parse rest
    | "--quota" :: s :: rest -> quota := float_of_string s; parse rest
    | "--smoke" :: rest -> smoke := true; parse rest
    | "--baseline" :: f :: rest -> baseline := Some f; parse rest
    | "--gate-tolerance" :: s :: rest -> gate_tolerance := float_of_string s; parse rest
    | "--gate-drift-correction" :: rest -> gate_drift := true; parse rest
    | "--no-gate" :: rest -> no_gate := true; parse rest
    | a :: _ -> Printf.eprintf "unknown argument %S\n" a; exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  if !soak then begin
    (* The sharded-service capstone: 64 nodes per set, a 1M-lock-set
       namespace, Zipf-skewed multi-million-request traffic, at 1/2/4
       shards. --soak-scale R shrinks the round count for quick looks.
       Prints a table and exits; results are recorded in EXPERIMENTS.md
       ("Sharding"). *)
    let rounds = max 1 (int_of_float (250.0 *. !soak_scale)) in
    let rows = Suite.soak ~rounds () in
    Printf.printf "shards | grants | wall s | req/s | digest | bursts per shard\n";
    Printf.printf "-------+--------+--------+-------+--------+-----------------\n";
    List.iter
      (fun (r : Suite.soak_row) ->
        Printf.printf "%6d | %6d | %6.1f | %5.0f | %Lx | %s\n" r.Suite.soak_shards
          r.Suite.soak_grants r.Suite.soak_wall_s r.Suite.soak_req_per_s r.Suite.soak_digest
          (String.concat " " (List.map string_of_int r.Suite.soak_balance)))
      rows;
    (match rows with
    | first :: rest when List.exists (fun (r : Suite.soak_row) -> r.Suite.soak_digest <> first.Suite.soak_digest) rest ->
        prerr_endline "FAIL: digest varies with shard count";
        exit 1
    | _ -> ());
    exit 0
  end;
  let smoke = !smoke || Sys.getenv_opt "BENCH_QUICK" <> None in
  let no_gate = !no_gate || Sys.getenv_opt "BENCH_NO_GATE" <> None in
  let cores = Domain.recommended_domain_count () in
  let jobs = if smoke then 2 else max 2 cores in
  let nodes = if smoke then [ 16 ] else Dcs_runtime.Figures.quick_nodes in
  (* Smoke caps the quota rather than zeroing it: at 0.05s the OLS fit on
     sub-microsecond benches swings tens of percent run-to-run, which is
     exactly the noise a regression gate must not trip on. *)
  let quota = if smoke then min !quota 0.2 else !quota in
  let micro = Suite.run ~quota () in
  let throughput_nodes = [ 8; 16; 32; 64 ] in
  let throughput_rounds = if smoke then 20 else 200 in
  let throughput =
    List.map
      (fun n -> (Printf.sprintf "nodes%d_req_per_s" n, Suite.throughput ~nodes:n ~rounds:throughput_rounds ()))
      throughput_nodes
  in
  (* Sharded-service rows ride the same aggregate section (not gated):
     req/s through the full shard round loop at 1, 2 and 4 shards. *)
  let shard_rounds = if smoke then 4 else 40 in
  let shard_throughput =
    List.map
      (fun s ->
        (Printf.sprintf "shards%d_req_per_s" s, Suite.shard_throughput ~shards:s ~rounds:shard_rounds ()))
      [ 1; 2; 4 ]
  in
  let sweeps = sweep_timings ~jobs ~nodes () in
  let matches = parallel_matches ~jobs ~nodes () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\n";
  add_kv b ~last:false "schema" "\"dcs-bench-report/1\"";
  add_kv b ~last:false "label" (let bb = Buffer.create 32 in Buffer.add_char bb '"'; buf_escape bb !label; Buffer.add_char bb '"'; Buffer.contents bb);
  add_kv b ~last:false "cores" (string_of_int cores);
  add_kv b ~last:false "jobs" (string_of_int jobs);
  add_kv b ~last:false "smoke" (string_of_bool smoke);
  add_kv b ~last:false "sweep_nodes" ("[" ^ String.concat ", " (List.map string_of_int nodes) ^ "]");
  add_kv b ~last:false "parallel_matches_sequential" (string_of_bool matches);
  add_kv b ~last:false "microbench_ns_per_run"
    (obj_of_assoc ~render:fl (List.map (fun r -> (r.Suite.name, r.Suite.ns)) micro));
  add_kv b ~last:false "microbench_minor_words_per_run"
    (obj_of_assoc ~render:fl (List.map (fun r -> (r.Suite.name, r.Suite.minor_words)) micro));
  add_kv b ~last:false "aggregate_requests_per_sec"
    (obj_of_assoc ~render:fl (throughput @ shard_throughput));
  let sweep_kvs =
    List.concat_map
      (fun s -> [ (s.name ^ "_jobs1_s", s.seq_s); (Printf.sprintf "%s_jobs%d_s" s.name jobs, s.par_s) ])
      sweeps
  in
  let last = !before = None in
  add_kv b ~last "sweep_wall_clock_s" (obj_of_assoc ~render:fl sweep_kvs);
  (match !before with
  | None -> ()
  | Some file -> add_kv b ~last:true "before" (String.trim (read_file file)));
  Buffer.add_string b "}\n";
  let json = Buffer.contents b in
  (match !out with
  | None -> print_string json
  | Some f ->
      let oc = open_out f in
      output_string oc json;
      close_out oc;
      Printf.eprintf "wrote %s\n" f);
  if not matches then begin
    Printf.eprintf "FAIL: parallel sweep diverged from sequential\n";
    exit 1
  end;
  match !baseline with
  | None -> ()
  | Some _ when no_gate -> Printf.eprintf "perf gate: skipped (--no-gate / BENCH_NO_GATE)\n"
  | Some file -> (
      let before_micro = Gate.microbench_of_json (read_file file) in
      let after_micro = List.map (fun r -> (r.Suite.name, r.Suite.ns)) micro in
      let corrected = if !gate_drift then " (drift-corrected)" else "" in
      match
        Gate.regressions ~drift_correction:!gate_drift ~tolerance:!gate_tolerance
          ~before:before_micro ~after:after_micro ()
      with
      | [] ->
          Printf.eprintf "perf gate: ok (%d benches within %+.0f%%%s of %s)\n"
            (List.length after_micro) (!gate_tolerance *. 100.0) corrected file
      | regs ->
          Printf.eprintf "FAIL: %d microbench(es) regressed more than %.0f%%%s vs %s:\n"
            (List.length regs) (!gate_tolerance *. 100.0) corrected file;
          List.iter (fun v -> Format.eprintf "  %a@." Gate.pp_verdict v) regs;
          Printf.eprintf "(rerun with --no-gate or BENCH_NO_GATE=1 to accept)\n";
          exit 1)
